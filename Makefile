# Convenience wrappers around dune; see README.md.

.PHONY: all verify test report-schema soak-smoke serve-smoke stab-smoke m5-smoke bench bench-smoke bench-artifact perf-gate clean

all:
	dune build

# The tier-1 gate: full build, the whole test battery (which includes
# the report_schema.t cram test), an explicit artifact check, and the
# enforcing perf gate (export STP_PERF_GATE=warn to demote the gate to
# report-only on hosts whose micro timings can't be trusted).
verify:
	dune build
	dune runtest
	$(MAKE) report-schema
	$(MAKE) soak-smoke
	$(MAKE) serve-smoke
	$(MAKE) stab-smoke
	$(MAKE) m5-smoke
	$(MAKE) perf-gate

# The report-schema gate, standalone: produce --json artifacts from
# the CLI and validate them against the versioned report schema.
report-schema:
	dune build bin/stp_cli.exe
	_build/default/bin/stp_cli.exe experiments --quick --only E1 --json _build/stp_exp.json > /dev/null
	_build/default/bin/stp_cli.exe attack -p norep -d 2 --json _build/stp_attack.json > /dev/null
	_build/default/bin/stp_cli.exe soak --seed 5 --random-plans 1 --json _build/stp_soak.json > /dev/null
	_build/default/bin/stp_cli.exe serve --once examples/serve_jobs.json --json _build/stp_serve.json > /dev/null
	_build/default/bin/stp_cli.exe validate _build/stp_exp.json
	_build/default/bin/stp_cli.exe validate _build/stp_attack.json
	_build/default/bin/stp_cli.exe validate _build/stp_soak.json
	_build/default/bin/stp_cli.exe validate _build/stp_serve.json

# A tiny fault-injection battery: run it, validate its artifact, and
# require the scripted scenarios to have produced recovery verdicts.
soak-smoke:
	dune build bin/stp_cli.exe
	_build/default/bin/stp_cli.exe soak --seed 5 --random-plans 1 --json _build/stp_soak_smoke.json
	_build/default/bin/stp_cli.exe validate _build/stp_soak_smoke.json

# The serve daemon end to end: execute the committed example batch
# (three clean jobs plus a fault-plan job), validate its artifact, and
# pin the determinism contract — per-job results bit-identical across
# job counts and timeslices.
serve-smoke:
	dune build bin/stp_cli.exe
	_build/default/bin/stp_cli.exe serve --once examples/serve_jobs.json --json _build/stp_serve_smoke.json > /dev/null
	_build/default/bin/stp_cli.exe validate _build/stp_serve_smoke.json
	_build/default/bin/stp_cli.exe serve --once examples/serve_jobs.json --results-only --jobs 1 --json _build/stp_serve_j1.json > /dev/null
	_build/default/bin/stp_cli.exe serve --once examples/serve_jobs.json --results-only --jobs 4 --timeslice 7 --json _build/stp_serve_j4.json > /dev/null
	cmp _build/stp_serve_j1.json _build/stp_serve_j4.json

# The self-stabilisation gate: sweep every corrupted start of each
# stabilising family (artifact ok is load-bearing — any non-converging
# point fails it), run the multi-family corrupted-start soak battery
# (composed mid-run faults included), and validate every artifact
# against the report schema.
stab-smoke:
	dune build bin/stp_cli.exe
	_build/default/bin/stp_cli.exe stab --json _build/stp_stab_smoke.json
	_build/default/bin/stp_cli.exe validate _build/stp_stab_smoke.json
	_build/default/bin/stp_cli.exe stab -p stenning-stab --json _build/stp_stab_stn.json > /dev/null
	_build/default/bin/stp_cli.exe validate _build/stp_stab_stn.json
	_build/default/bin/stp_cli.exe stab -p gbn-stab --search --json _build/stp_stab_gbn.json > /dev/null
	_build/default/bin/stp_cli.exe validate _build/stp_stab_gbn.json
	_build/default/bin/stp_cli.exe soak --stab --seed 5 --random-plans 1 --json _build/stp_stab_soak.json
	_build/default/bin/stp_cli.exe validate _build/stp_stab_soak.json

test: verify

# Full benchmark run: reproduction tables + Bechamel timings.
bench:
	dune exec bench/main.exe

# Quick timing pass with a machine-readable artifact; ~a second per
# benchmark is replaced by a 50ms quota, so the numbers are rough but
# the plumbing (and the JSON schema) is exercised end to end.
bench-smoke:
	dune exec bench/main.exe -- --micro --quota 0.05 --json BENCH_smoke.json

# The out-of-core gate: the E16 m=5 slice (spilled vs resident sweeps
# must agree byte for byte, with the spilled run's frontier pinned to
# its budget — ok is load-bearing), then the same exactness contract
# through the CLI: two sweeps at wildly different --mem-budget values
# write byte-identical artifacts.
m5-smoke:
	dune build bin/stp_cli.exe
	_build/default/bin/stp_cli.exe experiments --quick --only E16 --json _build/stp_e16.json > /dev/null
	_build/default/bin/stp_cli.exe validate _build/stp_e16.json
	_build/default/bin/stp_cli.exe attack -p norep -c del -d 2 --symm -x 0,1 -x 1,0 -x 0 -x 1 --mem-budget 1 --json _build/stp_m5_spill.json > /dev/null
	_build/default/bin/stp_cli.exe attack -p norep -c del -d 2 --symm -x 0,1 -x 1,0 -x 0 -x 1 --mem-budget 999999999 --json _build/stp_m5_mem.json > /dev/null
	cmp _build/stp_m5_spill.json _build/stp_m5_mem.json
	_build/default/bin/stp_cli.exe validate _build/stp_m5_spill.json

# The committed perf baseline (BENCH_PR10.json): a real-quota timing
# artifact checked into the repo so future changes can be compared
# against it with `make perf-gate`.
bench-artifact:
	dune exec bench/main.exe -- --micro --quota 1.0 --json BENCH_PR10.json

# Enforcing perf gate: run three independent timing passes and diff
# the per-benchmark minimum against the committed baseline with a
# tolerance band (transient load only ever inflates a timing, so the
# fastest pass is the honest one).  Regressions beyond the tolerance —
# and baseline benchmarks missing from the fresh runs — fail the
# build; STP_PERF_GATE=warn restores the old report-only behaviour
# for hosts with untrustworthy micro timings.
perf-gate:
	dune build bench/main.exe bench/perf_gate.exe
	_build/default/bench/main.exe --micro --quota 0.5 --json _build/BENCH_latest1.json
	_build/default/bench/main.exe --micro --quota 0.5 --json _build/BENCH_latest2.json
	_build/default/bench/main.exe --micro --quota 0.5 --json _build/BENCH_latest3.json
	_build/default/bench/perf_gate.exe BENCH_PR10.json _build/BENCH_latest1.json _build/BENCH_latest2.json _build/BENCH_latest3.json

clean:
	dune clean
	rm -f BENCH_smoke.json

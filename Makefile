# Convenience wrappers around dune; see README.md.

.PHONY: all verify test bench bench-smoke clean

all:
	dune build

# The tier-1 gate: full build plus the whole test battery.
verify:
	dune build
	dune runtest

test: verify

# Full benchmark run: reproduction tables + Bechamel timings.
bench:
	dune exec bench/main.exe

# Quick timing pass with a machine-readable artifact; ~a second per
# benchmark is replaced by a 50ms quota, so the numbers are rough but
# the plumbing (and the JSON schema) is exercised end to end.
bench-smoke:
	dune exec bench/main.exe -- --micro --quota 0.05 --json BENCH_smoke.json

clean:
	dune clean
	rm -f BENCH_smoke.json

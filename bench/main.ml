(* Benchmark harness.

   Running this executable regenerates every reproduction table
   (E1–E12, see DESIGN.md §3 and EXPERIMENTS.md) at full parameters and
   then times the underlying machinery with Bechamel — one benchmark
   per experiment, measuring the work that experiment's table is built
   from, plus kernel micro-benchmarks.

     dune exec bench/main.exe               # tables + timings
     dune exec bench/main.exe -- --tables   # tables only
     dune exec bench/main.exe -- --micro    # timings only

   Options for the timing pass:

     --json PATH     also write the per-benchmark nanoseconds to PATH
                     as a machine-readable JSON document
     --quota SECONDS Bechamel time budget per benchmark (default 1.0;
                     lower it for a quick smoke run)

   The sweeps honour [STP_JOBS], so e.g. [STP_JOBS=4 ... -- --micro]
   runs the census benchmark on four domains. *)

open Bechamel
open Toolkit

(* ------------------------- the tables ------------------------- *)

let print_tables () =
  Format.printf "=================================================================@.";
  Format.printf "Reproduction tables (Wang & Zuck 1989), full parameters@.";
  Format.printf "=================================================================@.@.";
  List.iter
    (fun r -> Format.printf "%a@.@." Core.Experiments.pp_result r)
    (Core.Experiments.all ());
  Format.printf "@."

(* ------------------------- the micro-benchmarks ------------------------- *)

(* One Test.make per experiment: each stages the dominant computation
   behind that experiment's table, at a size that completes in
   milliseconds so Bechamel can sample it. *)

let e1_workload () =
  (* Exhaustive verification of the tight protocol at m=2. *)
  let p = Protocols.Norep.dup ~m:2 in
  List.iter
    (fun input ->
      ignore
        (Kernel.Runner.run p ~input:(Array.of_list input)
           ~strategy:(Kernel.Strategy.fair_random ()) ~rng:(Stdx.Rng.create 1) ~max_steps:2_000
           ()))
    (Seqspace.Norep.enumerate ~m:2)

let e2_workload () =
  ignore
    (Core.Attack.search_pair
       (Protocols.Counting.protocol_on Channel.Chan.Reorder_dup ~domain:2)
       ~x1:[ 0; 1 ] ~x2:[ 1; 0 ] ())

let e3_workload () =
  ignore
    (Core.Attack.search_pair (Protocols.Norep.del ~m:2) ~x1:[ 0; 1 ] ~x2:[ 0; 0 ] ~depth:200
       ~max_sends_per_sender:4 ~max_sends_per_receiver:4 ())

let e4_workload () =
  ignore
    (Core.Bounds.measure (Protocols.Norep.del ~m:2)
       ~xs:[ [ 0 ]; [ 1 ]; [ 0; 1 ] ]
       ~strategy:(Kernel.Strategy.fair_random ()) ~seeds:[ 1; 2 ] ~max_steps:2_000 ())

let e5_workload () =
  let xset = Seqspace.Xset.All_upto { domain = 2; max_len = 3 } in
  let p = Protocols.Hybrid.protocol ~xset ~domain:2 ~drop_budget:1 ~timeout:6 () in
  ignore
    (Kernel.Runner.run p ~input:[| 1; 0; 1 |]
       ~strategy:(Kernel.Strategy.drop_after ~at:6 1 Kernel.Strategy.round_robin)
       ~rng:(Stdx.Rng.create 1) ~max_steps:100_000 ())

let e6_universe =
  lazy
    (let p = Protocols.Norep.dup ~m:2 in
     Knowledge.Universe.of_traces
       (List.concat_map
          (fun input ->
            List.map
              (fun seed ->
                (Kernel.Runner.run p ~input:(Array.of_list input)
                   ~strategy:(Kernel.Strategy.fair_random ()) ~rng:(Stdx.Rng.create seed)
                   ~max_steps:600 ~post_roll:20 ())
                  .Kernel.Runner.trace)
              [ 1; 2; 3 ])
          (Seqspace.Norep.enumerate ~m:2)))

let e6_workload () =
  let u = Lazy.force e6_universe in
  for run = 0 to 5 do
    ignore (Knowledge.Learn.learning_times u ~run)
  done

let e7_workload () =
  let p = Protocols.Stenning.protocol ~domain:2 ~max_len:4 in
  ignore
    (Kernel.Runner.run p ~input:[| 0; 1; 1; 0 |]
       ~strategy:(Kernel.Strategy.drop_rate 0.15 (Kernel.Strategy.fair_random ()))
       ~rng:(Stdx.Rng.create 1) ~max_steps:50_000 ())

(* Kernel micro-benchmarks: the primitives everything is built from. *)

let sim_step_workload =
  let p = Protocols.Norep.dup ~m:4 in
  fun () ->
    ignore
      (Kernel.Runner.run p ~input:[| 2; 0; 3; 1 |] ~strategy:Kernel.Strategy.round_robin
         ~rng:(Stdx.Rng.create 1) ~max_steps:500 ())

let alpha_workload () = ignore (Seqspace.Alpha.alpha 100)

let code_build_workload () =
  match Seqspace.Codes.build ~m:5 (Seqspace.Norep.enumerate ~m:5) with
  | Ok _ -> ()
  | Error _ -> assert false

let e8_workload () =
  ignore
    (Core.Proba.estimate
       (Protocols.Counting.resend Channel.Chan.Reorder_dup ~domain:2)
       ~input:[ 0; 1; 1 ] ~strategy:(Kernel.Strategy.fair_random ()) ~trials:5 ~max_steps:2_000
       ())

(* 40 samples ≈ a few ms of classification — big enough that a
   multicore sweep (STP_JOBS) has real work to split. *)
let e9_workload () = ignore (Core.Census.run ~samples:40 ())

let e10_workload () =
  ignore
    (Core.Attack.search_single
       (Protocols.Stenning_mod.protocol_on
          (Channel.Chan.Bounded_reorder { lag = 1 })
          ~domain:2 ~header_space:2)
       ~x:[ 0; 0; 1 ] ~depth:80 ~max_sends_per_sender:8 ~max_sends_per_receiver:8
       ~allow_drops:false ())

let e11_workload () =
  let u = Lazy.force e6_universe in
  let phi =
    Knowledge.Formula.(Knows (Sender, Knows (Receiver, Knows (Sender, Fact (Output_ge 1)))))
  in
  let table = Knowledge.Formula.tabulate u phi in
  ignore (table { Knowledge.Universe.run = 0; time = 0 })

let e12_workload () =
  ignore (Core.Spec.recoverability (Protocols.Abp.protocol ~domain:2) ~input:[ 0; 1 ] ())

let tests =
  Test.make_grouped ~name:"stp"
    [
      Test.make ~name:"e1_alpha_tightness" (Staged.stage e1_workload);
      Test.make ~name:"e2_dup_attack" (Staged.stage e2_workload);
      Test.make ~name:"e3_del_attack" (Staged.stage e3_workload);
      Test.make ~name:"e4_boundedness" (Staged.stage e4_workload);
      Test.make ~name:"e5_weak_boundedness" (Staged.stage e5_workload);
      Test.make ~name:"e6_knowledge" (Staged.stage e6_workload);
      Test.make ~name:"e7_throughput" (Staged.stage e7_workload);
      Test.make ~name:"e8_probabilistic" (Staged.stage e8_workload);
      Test.make ~name:"e9_census" (Staged.stage e9_workload);
      Test.make ~name:"e10_crossover_cell" (Staged.stage e10_workload);
      Test.make ~name:"e11_nested_knowledge" (Staged.stage e11_workload);
      Test.make ~name:"e12_recoverability" (Staged.stage e12_workload);
      Test.make ~name:"kernel_full_run" (Staged.stage sim_step_workload);
      Test.make ~name:"alpha_100" (Staged.stage alpha_workload);
      Test.make ~name:"mu_code_build_m5" (Staged.stage code_build_workload);
    ]

(* The timings as the shared report IR (see lib/stdx/report.mli): the
   same schema-versioned artifact the CLI's --json flags produce, so
   one validator covers both. *)
let bench_report ~quota rows =
  let module R = Stdx.Report in
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  let generated =
    Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
      tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec
  in
  let t =
    R.table_cols ~title:"time per iteration"
      [ R.column "benchmark"; R.column ~align:R.Right ~unit_:"ns" "nanos_per_iter" ]
  in
  List.iter (fun (name, ns) -> R.row t [ R.str name; R.float ns ]) rows;
  R.make ~id:"bench" ~title:"micro-benchmark timings (Bechamel, monotonic clock)"
    [
      R.Metrics
        {
          title = None;
          pairs =
            [
              ("generated_utc", R.str generated);
              ("quota_seconds", R.float quota);
              ("jobs", R.int (Core.Par.default_jobs ()));
            ];
        };
      R.finish t;
    ]

let write_json path ~quota rows =
  let oc = open_out path in
  output_string oc (Stdx.Json.to_string (Stdx.Report.to_json (bench_report ~quota rows)));
  output_char oc '\n';
  close_out oc;
  Format.printf "wrote %s@." path

let run_micro ?json ~quota () =
  Format.printf "=================================================================@.";
  Format.printf "Micro-benchmarks (Bechamel, monotonic clock)@.";
  Format.printf "=================================================================@.";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~stabilize:true ~compaction:false ()
  in
  let raw = Benchmark.all cfg [ instance ] tests in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let nanos =
          match Analyze.OLS.estimates ols with Some (t :: _) -> t | Some [] | None -> nan
        in
        (name, nanos) :: acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let t =
    Stdx.Tabular.create ~title:"time per iteration"
      [ ("benchmark", Stdx.Tabular.Left); ("time", Stdx.Tabular.Right) ]
  in
  let pretty ns =
    if Float.is_nan ns then "n/a"
    else if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
    else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
    else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
    else Printf.sprintf "%.0f ns" ns
  in
  List.iter (fun (name, ns) -> Stdx.Tabular.add_row t [ name; pretty ns ]) rows;
  Stdx.Tabular.print t;
  Option.iter (fun path -> write_json path ~quota rows) json

let () =
  let args = Array.to_list Sys.argv in
  (* Pull out the valued options first; the remaining flags keep the
     original positional-free behaviour. *)
  let rec split flags json quota = function
    | [] -> (List.rev flags, json, quota)
    | "--json" :: path :: rest -> split flags (Some path) quota rest
    | "--json" :: [] -> failwith "--json needs a PATH argument"
    | "--quota" :: s :: rest -> (
        match float_of_string_opt s with
        | Some q when q > 0.0 -> split flags json q rest
        | Some _ | None -> failwith "--quota needs a positive number of seconds")
    | "--quota" :: [] -> failwith "--quota needs a SECONDS argument"
    | a :: rest -> split (a :: flags) json quota rest
  in
  let args, json, quota = split [] None 1.0 (List.tl args) in
  (* Fail on an unwritable --json path now, not after minutes of
     benchmarking. *)
  Option.iter (fun path -> close_out (open_out path)) json;
  let tables = (not (List.mem "--micro" args)) || List.mem "--tables" args in
  let micro = (not (List.mem "--tables" args)) || List.mem "--micro" args in
  if tables then print_tables ();
  if micro then run_micro ?json ~quota ()

(* Benchmark harness.

   Running this executable regenerates every registered reproduction
   table (E1–E15, see DESIGN.md §3 and EXPERIMENTS.md) at full parameters and
   then times the underlying machinery with Bechamel — one benchmark
   per experiment, measuring the work that experiment's table is built
   from, plus kernel micro-benchmarks.

     dune exec bench/main.exe               # tables + timings
     dune exec bench/main.exe -- --tables   # tables only
     dune exec bench/main.exe -- --micro    # timings only

   Options for the timing pass:

     --json PATH     also write the per-benchmark nanoseconds and
                     minor-words to PATH as a machine-readable JSON
                     document
     --quota SECONDS Bechamel time budget per benchmark (default 1.0;
                     lower it for a quick smoke run)
     --filter REGEX  only run benchmarks whose name matches REGEX
                     (unanchored Str syntax, e.g. --filter 'attack\|sweep');
                     errors out if nothing matches

   The sweeps honour [STP_JOBS], so e.g. [STP_JOBS=4 ... -- --micro]
   runs the census benchmark on four domains. *)

open Bechamel
open Toolkit

(* ------------------------- the tables ------------------------- *)

let print_tables () =
  Format.printf "=================================================================@.";
  Format.printf "Reproduction tables (Wang & Zuck 1989), full parameters@.";
  Format.printf "=================================================================@.@.";
  List.iter
    (fun r -> Format.printf "%a@.@." Core.Experiments.pp_result r)
    (Core.Experiments.all ());
  Format.printf "@."

(* ------------------------- the micro-benchmarks ------------------------- *)

(* One Test.make per experiment: each stages the dominant computation
   behind that experiment's table, at a size that completes in
   milliseconds so Bechamel can sample it. *)

let e1_workload () =
  (* Exhaustive verification of the tight protocol at m=2. *)
  let p = Protocols.Norep.dup ~m:2 in
  List.iter
    (fun input ->
      ignore
        (Kernel.Runner.run p ~input:(Array.of_list input)
           ~strategy:(Kernel.Strategy.fair_random ()) ~rng:(Stdx.Rng.create 1) ~max_steps:2_000
           ()))
    (Seqspace.Norep.enumerate ~m:2)

let e2_workload () =
  ignore
    (Core.Attack.search_pair
       (Protocols.Counting.protocol_on Channel.Chan.Reorder_dup ~domain:2)
       ~x1:[ 0; 1 ] ~x2:[ 1; 0 ] ())

let e3_workload () =
  ignore
    (Core.Attack.search_pair (Protocols.Norep.del ~m:2) ~x1:[ 0; 1 ] ~x2:[ 0; 0 ] ~depth:200
       ~max_sends_per_sender:4 ~max_sends_per_receiver:4 ())

let e4_workload () =
  ignore
    (Core.Bounds.measure (Protocols.Norep.del ~m:2)
       ~xs:[ [ 0 ]; [ 1 ]; [ 0; 1 ] ]
       ~strategy:(Kernel.Strategy.fair_random ()) ~seeds:[ 1; 2 ] ~max_steps:2_000 ())

let e5_workload () =
  let xset = Seqspace.Xset.All_upto { domain = 2; max_len = 3 } in
  let p = Protocols.Hybrid.protocol ~xset ~domain:2 ~drop_budget:1 ~timeout:6 () in
  ignore
    (Kernel.Runner.run p ~input:[| 1; 0; 1 |]
       ~strategy:(Kernel.Strategy.drop_after ~at:6 1 Kernel.Strategy.round_robin)
       ~rng:(Stdx.Rng.create 1) ~max_steps:100_000 ())

let e6_universe =
  lazy
    (let p = Protocols.Norep.dup ~m:2 in
     Knowledge.Universe.of_traces
       (List.concat_map
          (fun input ->
            List.map
              (fun seed ->
                (Kernel.Runner.run p ~input:(Array.of_list input)
                   ~strategy:(Kernel.Strategy.fair_random ()) ~rng:(Stdx.Rng.create seed)
                   ~max_steps:600 ~post_roll:20 ())
                  .Kernel.Runner.trace)
              [ 1; 2; 3 ])
          (Seqspace.Norep.enumerate ~m:2)))

let e6_workload () =
  let u = Lazy.force e6_universe in
  for run = 0 to 5 do
    ignore (Knowledge.Learn.learning_times u ~run)
  done

let e7_workload () =
  let p = Protocols.Stenning.protocol ~domain:2 ~max_len:4 in
  ignore
    (Kernel.Runner.run p ~input:[| 0; 1; 1; 0 |]
       ~strategy:(Kernel.Strategy.drop_rate 0.15 (Kernel.Strategy.fair_random ()))
       ~rng:(Stdx.Rng.create 1) ~max_steps:50_000 ())

(* Kernel micro-benchmarks: the primitives everything is built from. *)

let sim_step_workload =
  let p = Protocols.Norep.dup ~m:4 in
  fun () ->
    ignore
      (Kernel.Runner.run p ~input:[| 2; 0; 3; 1 |] ~strategy:Kernel.Strategy.round_robin
         ~rng:(Stdx.Rng.create 1) ~max_steps:500 ())

let alpha_workload () = ignore (Seqspace.Alpha.alpha 100)

let code_build_workload () =
  match Seqspace.Codes.build ~m:5 (Seqspace.Norep.enumerate ~m:5) with
  | Ok _ -> ()
  | Error _ -> assert false

let e8_workload () =
  ignore
    (Core.Proba.estimate
       (Protocols.Counting.resend Channel.Chan.Reorder_dup ~domain:2)
       ~input:[ 0; 1; 1 ] ~strategy:(Kernel.Strategy.fair_random ()) ~trials:5 ~max_steps:2_000
       ())

(* 40 samples ≈ a few ms of classification — big enough that a
   multicore sweep (STP_JOBS) has real work to split. *)
let e9_workload () = ignore (Core.Census.run ~samples:40 ())

let e10_workload () =
  ignore
    (Core.Attack.search_single
       (Protocols.Stenning_mod.protocol_on
          (Channel.Chan.Bounded_reorder { lag = 1 })
          ~domain:2 ~header_space:2)
       ~x:[ 0; 0; 1 ] ~depth:80 ~max_sends_per_sender:8 ~max_sends_per_receiver:8
       ~allow_drops:false ())

let e11_workload () =
  let u = Lazy.force e6_universe in
  let phi =
    Knowledge.Formula.(Knows (Sender, Knows (Receiver, Knows (Sender, Fact (Output_ge 1)))))
  in
  let table = Knowledge.Formula.tabulate u phi in
  ignore (table { Knowledge.Universe.run = 0; time = 0 })

let e12_workload () =
  ignore (Core.Spec.recoverability (Protocols.Abp.protocol ~domain:2) ~input:[ 0; 1 ] ())

(* The all-pairs sweep, with and without the [Attack.Runstate]
   transition memo: the same pair list either way, so the delta is
   exactly the single-run memoisation.  [Attack.search] shares one
   store per input across all its pairs; the no-memo variant runs each
   pair with caching disabled — the pre-memoisation engine, which
   re-simulates (and re-serialises) a run-side successor on every
   joint expansion that touches it.  A deleting channel with tight
   send caps gives each pair a closed joint space of a few thousand
   states, where each single-run state is revisited many times. *)
let sweep_protocol = lazy (Protocols.Norep.del ~m:3)

let sweep_xs =
  lazy (List.filter (fun x -> List.length x >= 2) (Seqspace.Norep.enumerate ~m:3))

let sweep_caps = 3

let sweep_pairs = lazy (Core.Attack.eligible_pairs ~xs:(Lazy.force sweep_xs))

(* Both arms run the identical [search_pair] loop over the identical
   pair list; only the stores differ. *)
let sweep_workload ~memo () =
  let p = Lazy.force sweep_protocol in
  let stores = Hashtbl.create 8 in
  let store x =
    if memo then (
      match Hashtbl.find_opt stores x with
      | Some rs -> rs
      | None ->
          let rs = Core.Attack.Runstate.create p ~x in
          Hashtbl.add stores x rs;
          rs)
    else Core.Attack.Runstate.create ~memo:false p ~x
  in
  List.iter
    (fun (x1, x2) ->
      let runstates = (store x1, store x2) in
      ignore
        (Core.Attack.search_pair p ~x1 ~x2 ~depth:200 ~max_sends_per_sender:sweep_caps
           ~max_sends_per_receiver:sweep_caps ~runstates ()))
    (Lazy.force sweep_pairs)

let sweep_shared_workload () = sweep_workload ~memo:true ()
let sweep_nomemo_workload () = sweep_workload ~memo:false ()

(* The quotiented sweep against its unquotiented twin, through the
   public [Attack.search] entry point: same pair list, same caps, the
   delta is the orbit dedup (plus the canonicalisation overhead it
   pays for).  Sequential so the ratio isolates the quotient, not the
   domain pool. *)
let sweep_quotient_workload ~symm ~swap_symm () =
  let p = Lazy.force sweep_protocol in
  ignore
    (Core.Attack.search p ~xs:(Lazy.force sweep_xs) ~depth:200
       ~max_sends_per_sender:sweep_caps ~max_sends_per_receiver:sweep_caps ~symm ~swap_symm
       ~jobs:1 ())

(* Three rungs of the quotient ladder: plain, alphabet permutations
   only, and permutations composed with the joint-space run swap — the
   swapsymm/symm ratio is the swap's marginal win. *)
let sweep_symm_workload () = sweep_quotient_workload ~symm:true ~swap_symm:false ()
let sweep_swapsymm_workload () = sweep_quotient_workload ~symm:true ~swap_symm:true ()
let sweep_nosymm_workload () = sweep_quotient_workload ~symm:false ~swap_symm:false ()

(* The canonicalisation kernel in isolation: first-occurrence
   relabelling of every eligible m=4 pair — the exact per-pair work
   E14's orbit dedup adds on top of the raw sweep. *)
let canon_pairs = lazy (Core.Attack.eligible_pairs ~xs:(Seqspace.Norep.enumerate ~m:4))

let state_canon_workload () =
  List.iter
    (fun (x1, x2) -> ignore (Kernel.Symm.canon_pair ~m:4 x1 x2))
    (Lazy.force canon_pairs)

(* The succinct frontier's push/pop throughput: a BFS-shaped load of
   paired int keys through the chunked varint FIFO, including the
   chunk-recycling boundary crossings. *)
let frontier_pack_workload () =
  let f = Stdx.Frontier.create () in
  for round = 0 to 3 do
    for i = 0 to 4_095 do
      Stdx.Frontier.push2 f ((round * 4096) + i) (i * 131)
    done;
    for _ = 0 to 4_095 do
      ignore (Stdx.Frontier.pop2 f : int * int)
    done
  done

(* The pager under the same BFS-shaped load: a one-byte budget clamps
   the pool to its two-chunk floor, so each round's ~20 KB of queued
   ids rotate through the unlinked spill file — the write + page-in
   overhead over [frontier_pack] is the out-of-core tax. *)
let frontier_spill_workload () =
  let f = Stdx.Frontier.create ~mem_budget_bytes:1 () in
  for round = 0 to 3 do
    for i = 0 to 4_095 do
      Stdx.Frontier.push2 f ((round * 4096) + i) (i * 131)
    done;
    for _ = 0 to 4_095 do
      ignore (Stdx.Frontier.pop2 f : int * int)
    done
  done;
  Stdx.Frontier.close f

(* A codec-layer micro: generate and fingerprint a few thousand states
   through the emit + intern_bytes hot path, isolated from the attack
   bookkeeping. *)
let fingerprint_workload =
  let p = Protocols.Norep.dup ~m:2 in
  fun () -> ignore (Kernel.Explore.reachable p ~input:[| 0; 1 |] ~depth:12 ())

(* The fault-injection pipeline end to end: battery construction,
   per-case split-RNG runs, recovery verdicts, report folding.
   Sequential (jobs=1) so the number isolates the engine, not the
   domain pool. *)
let soak_workload =
  let cases = lazy (Faults.Soak.default_battery ~random_plans:1 ~seed:5 ()) in
  fun () -> ignore (Faults.Soak.run ~jobs:1 ~seed:5 (Lazy.force cases))

(* The self-stabilisation sweep end to end: every corrupted start of
   the stabilising ABP as a scheduler session, stabilisation verdicts
   folded into a worst-case time-to-stabilise.  Sequential (jobs=1) so
   the number isolates the sweep engine, not the domain pool. *)
let stab_sweep_workload =
  let p = lazy (Protocols.Abp_stab.protocol ~domain:2 ~max_len:4) in
  fun () ->
    ignore
      (Core.Stab.sweep ~jobs:1 (Lazy.force p) ~input:[| 0; 1; 1; 0 |] ~within:256 ~seed:7 ()
        : Core.Stab.sweep)

(* The widest corrupted-start space in the registry: ladder's rank ×
   echo enumeration (13 × 19 points on the small xset) swept to
   completion.  Exercises the per-point drive loop over a perturb
   space an order of magnitude larger than abp-stab's. *)
let stab_sweep_ladder_workload =
  let p =
    lazy
      (Protocols.Ladder.protocol
         ~xset:(Seqspace.Xset.All_upto { domain = 2; max_len = 2 })
         ~drop_budget:1)
  in
  fun () ->
    ignore
      (Core.Stab.sweep ~jobs:1 (Lazy.force p) ~input:[| 0; 1 |] ~within:256 ~seed:7 ()
        : Core.Stab.sweep)

(* The event-queue scheduler at batch scale: a 1k-session mixed
   battery (three protocols × stateless strategies × split seeds)
   timesliced through one queue.  Sessions are rebuilt every iteration
   (a session is consumed by the run that retires it), so the number
   is admit + timeslice + retire throughput, single-domain — the
   per-shard work `stp serve` multiplies across the pool. *)
let sched_batch_workload =
  let abp = Protocols.Abp.protocol ~domain:2 in
  let norep = Protocols.Norep.del ~m:2 in
  let counting = Protocols.Counting.resend Channel.Chan.Reorder_dup ~domain:2 in
  fun () ->
    let sessions =
      List.init 1_000 (fun i ->
          let p, input =
            match i mod 3 with
            | 0 -> (abp, [| 0; 1 |])
            | 1 -> (norep, [| 1; 0 |])
            | _ -> (counting, [| 0; 1 |])
          in
          let strategy =
            if i mod 2 = 0 then Kernel.Strategy.round_robin else Kernel.Strategy.fair_random ()
          in
          Kernel.Sched.session p ~input ~strategy ~rng:(Stdx.Rng.create (i + 1)) ~max_steps:100
            ())
    in
    ignore (Kernel.Sched.run sessions : Kernel.Sched.result list)

let benches =
  [
    ("e1_alpha_tightness", e1_workload);
    ("e2_dup_attack", e2_workload);
    ("e3_del_attack", e3_workload);
    ("e4_boundedness", e4_workload);
    ("e5_weak_boundedness", e5_workload);
    ("e6_knowledge", e6_workload);
    ("e7_throughput", e7_workload);
    ("e8_probabilistic", e8_workload);
    ("e9_census", e9_workload);
    ("e10_crossover_cell", e10_workload);
    ("e11_nested_knowledge", e11_workload);
    ("e12_recoverability", e12_workload);
    ("soak_battery", soak_workload);
    ("stab_sweep", stab_sweep_workload);
    ("stab_sweep_ladder", stab_sweep_ladder_workload);
    ("sched_batch", sched_batch_workload);
    ("sweep_allpairs_shared", sweep_shared_workload);
    ("sweep_allpairs_nomemo", sweep_nomemo_workload);
    ("sweep_allpairs_symm", sweep_symm_workload);
    ("sweep_allpairs_swapsymm", sweep_swapsymm_workload);
    ("sweep_allpairs_nosymm", sweep_nosymm_workload);
    ("state_canon", state_canon_workload);
    ("frontier_pack", frontier_pack_workload);
    ("frontier_spill", frontier_spill_workload);
    ("state_fingerprint_bfs", fingerprint_workload);
    ("kernel_full_run", sim_step_workload);
    ("alpha_100", alpha_workload);
    ("mu_code_build_m5", code_build_workload);
  ]

(* [--filter] narrows the suite by an unanchored [Str] regexp over the
   bare benchmark names (the report rows carry the ["stp/"] prefix). *)
let tests ?filter () =
  let keep =
    match filter with
    | None -> fun _ -> true
    | Some pat ->
        let re = Str.regexp pat in
        fun name ->
          (try
             ignore (Str.search_forward re name 0 : int);
             true
           with Not_found -> false)
  in
  let selected = List.filter (fun (name, _) -> keep name) benches in
  if selected = [] then
    failwith
      (Printf.sprintf "--filter %S matches no benchmark" (Option.value ~default:"" filter));
  Test.make_grouped ~name:"stp"
    (List.map (fun (name, f) -> Test.make ~name (Staged.stage f)) selected)

(* The timings as the shared report IR (see lib/stdx/report.mli): the
   same schema-versioned artifact the CLI's --json flags produce, so
   one validator covers both. *)
let bench_report ~quota rows =
  let module R = Stdx.Report in
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  let generated =
    Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
      tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec
  in
  let t =
    R.table_cols ~title:"time per iteration"
      [
        R.column "benchmark";
        R.column ~align:R.Right ~unit_:"ns" "nanos_per_iter";
        R.column ~align:R.Right ~unit_:"words" "minor_words_per_iter";
      ]
  in
  List.iter (fun (name, ns, mw) -> R.row t [ R.str name; R.float ns; R.float mw ]) rows;
  R.make ~id:"bench" ~title:"micro-benchmark timings (Bechamel, monotonic clock)"
    [
      R.Metrics
        {
          title = None;
          pairs =
            [
              ("generated_utc", R.str generated);
              ("quota_seconds", R.float quota);
              ("jobs", R.int (Core.Par.default_jobs ()));
            ];
        };
      R.finish t;
    ]

let write_json path ~quota rows =
  let oc = open_out path in
  output_string oc (Stdx.Json.to_string (Stdx.Report.to_json (bench_report ~quota rows)));
  output_char oc '\n';
  close_out oc;
  Format.printf "wrote %s@." path

let run_micro ?json ?filter ~quota () =
  Format.printf "=================================================================@.";
  Format.printf "Micro-benchmarks (Bechamel, monotonic clock + minor words)@.";
  Format.printf "=================================================================@.";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let clock = Instance.monotonic_clock in
  let minor = Instance.minor_allocated in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~stabilize:true ~compaction:false ()
  in
  let raw = Benchmark.all cfg [ clock; minor ] (tests ?filter ()) in
  let estimate results name =
    match Hashtbl.find_opt results name with
    | None -> nan
    | Some ols -> (
        match Analyze.OLS.estimates ols with Some (t :: _) -> t | Some [] | None -> nan)
  in
  let clock_results = Analyze.all ols clock raw in
  let minor_results = Analyze.all ols minor raw in
  let rows =
    Hashtbl.fold (fun name _ acc -> name :: acc) clock_results []
    |> List.sort String.compare
    |> List.map (fun name -> (name, estimate clock_results name, estimate minor_results name))
  in
  let t =
    Stdx.Tabular.create ~title:"per iteration"
      [
        ("benchmark", Stdx.Tabular.Left);
        ("time", Stdx.Tabular.Right);
        ("minor words", Stdx.Tabular.Right);
      ]
  in
  let pretty ns =
    if Float.is_nan ns then "n/a"
    else if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
    else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
    else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
    else Printf.sprintf "%.0f ns" ns
  in
  let pretty_words w =
    if Float.is_nan w then "n/a"
    else if w > 1e6 then Printf.sprintf "%.2fM" (w /. 1e6)
    else if w > 1e3 then Printf.sprintf "%.1fk" (w /. 1e3)
    else Printf.sprintf "%.0f" w
  in
  List.iter
    (fun (name, ns, mw) -> Stdx.Tabular.add_row t [ name; pretty ns; pretty_words mw ])
    rows;
  Stdx.Tabular.print t;
  Option.iter (fun path -> write_json path ~quota rows) json

let () =
  let args = Array.to_list Sys.argv in
  (* Pull out the valued options first; the remaining flags keep the
     original positional-free behaviour. *)
  let rec split flags json quota filter = function
    | [] -> (List.rev flags, json, quota, filter)
    | "--json" :: path :: rest -> split flags (Some path) quota filter rest
    | "--json" :: [] -> failwith "--json needs a PATH argument"
    | "--quota" :: s :: rest -> (
        match float_of_string_opt s with
        | Some q when q > 0.0 -> split flags json q filter rest
        | Some _ | None -> failwith "--quota needs a positive number of seconds")
    | "--quota" :: [] -> failwith "--quota needs a SECONDS argument"
    | "--filter" :: pat :: rest -> split flags json quota (Some pat) rest
    | "--filter" :: [] -> failwith "--filter needs a REGEX argument"
    | a :: rest -> split (a :: flags) json quota filter rest
  in
  let args, json, quota, filter = split [] None 1.0 None (List.tl args) in
  (* Fail on an unwritable --json path or an unmatched --filter now,
     not after minutes of benchmarking. *)
  Option.iter (fun path -> close_out (open_out path)) json;
  Option.iter (fun f -> ignore (tests ~filter:f () : Test.t)) filter;
  let tables = (not (List.mem "--micro" args)) || List.mem "--tables" args in
  let micro = (not (List.mem "--tables" args)) || List.mem "--micro" args in
  if tables then print_tables ();
  if micro then run_micro ?json ?filter ~quota ()

(* Enforcing performance gate.

   Compares two bench JSON artifacts (as written by
   [bench/main.exe --json], schema-checked through the shared report
   IR) benchmark by benchmark and prints the deltas, flagging rows
   whose time moved outside a tolerance band.

     dune exec bench/perf_gate.exe -- BASELINE.json LATEST.json... [--tolerance PCT]

   Several LATEST artifacts may be given (independent timing passes of
   the same suite); the gate scores each benchmark by its *minimum*
   across them.  Transient host load can only inflate a timing, never
   deflate it, so the fastest observed pass is the best estimator of
   the true cost — and a spike must hit every pass to produce a false
   failure.  `make perf-gate` runs three passes.

   Exit status is 1 when any baseline benchmark regressed beyond the
   tolerance or went missing from the latest run(s), 0 otherwise (and
   2 on unreadable/invalid artifacts).  Setting [STP_PERF_GATE=warn]
   in the environment restores the old report-only behaviour — same
   table, same verdicts, always exit 0 — as the escape hatch for
   loaded CI hosts where even min-of-N micro timings aren't
   trustworthy.

   The default tolerance is 50%: min-of-N timings on warm benchmarks
   are repeatable to well within that, so a 1.5x slowdown is a real
   regression and not quota-sized noise.  New benchmarks (in the
   latest run but not the baseline) never fail the gate; they are how
   the baseline grows. *)

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("perf_gate: " ^ s); exit 2) fmt

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> s
  | exception Sys_error e -> fail "%s" e

(* Pull (benchmark → nanos, benchmark → minor words) out of a bench
   report artifact.  Older artifacts without the minor-words column
   still load — the column lookup is by header, not position. *)
let load path =
  let json =
    match Stdx.Json.parse (read_file path) with
    | Ok j -> j
    | Error e -> fail "%s: invalid JSON: %s" path e
  in
  let report =
    match Stdx.Report.of_json json with
    | Ok r -> r
    | Error e -> fail "%s: not a report artifact: %s" path e
  in
  let cell_float = function
    | Stdx.Report.Float { value; _ } -> value
    | Stdx.Report.Int i -> float_of_int i
    | _ -> nan
  in
  let nanos = Hashtbl.create 32 in
  let minor = Hashtbl.create 32 in
  let scan_table (t : Stdx.Report.table) =
    let col header =
      let rec idx i = function
        | [] -> None
        | (c : Stdx.Report.column) :: rest ->
            if String.equal c.header header then Some i else idx (i + 1) rest
      in
      idx 0 t.columns
    in
    match (col "benchmark", col "nanos_per_iter", col "minor_words_per_iter") with
    | Some name_i, Some ns_i, mw_i ->
        List.iter
          (function
            | Stdx.Report.Separator -> ()
            | Stdx.Report.Cells cells -> (
                match List.nth_opt cells name_i with
                | Some (Stdx.Report.String name) ->
                    Option.iter
                      (fun c -> Hashtbl.replace nanos name (cell_float c))
                      (List.nth_opt cells ns_i);
                    Option.iter
                      (fun i ->
                        Option.iter
                          (fun c -> Hashtbl.replace minor name (cell_float c))
                          (List.nth_opt cells i))
                      mw_i
                | Some _ | None -> ()))
          t.rows
    | _ -> ()
  in
  let rec scan_items items =
    List.iter
      (function
        | Stdx.Report.Table t -> scan_table t
        | Stdx.Report.Section { items; _ } -> scan_items items
        | Stdx.Report.Metrics _ | Stdx.Report.Text _ -> ())
      items
  in
  scan_items report.Stdx.Report.items;
  if Hashtbl.length nanos = 0 then fail "%s: no benchmark timing table found" path;
  (nanos, minor)

let () =
  let tolerance = ref 50.0 in
  let paths = ref [] in
  let rec parse = function
    | [] -> ()
    | "--tolerance" :: s :: rest -> (
        match float_of_string_opt s with
        | Some t when t > 0.0 ->
            tolerance := t;
            parse rest
        | Some _ | None -> fail "--tolerance needs a positive percentage")
    | "--tolerance" :: [] -> fail "--tolerance needs a PCT argument"
    | p :: rest ->
        paths := p :: !paths;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let baseline_path, latest_paths =
    match List.rev !paths with
    | b :: (_ :: _ as ls) -> (b, ls)
    | _ -> fail "usage: perf_gate BASELINE.json LATEST.json... [--tolerance PCT]"
  in
  let base_ns, base_mw = load baseline_path in
  (* Min-of-N across the latest passes: keep the fastest timing (and
     smallest allocation count) seen for each benchmark. *)
  let new_ns, new_mw =
    let min_merge into (tbl : (string, float) Hashtbl.t) =
      Hashtbl.iter
        (fun name v ->
          match Hashtbl.find_opt into name with
          | Some prev when Float.is_nan v || prev <= v -> ()
          | Some _ | None -> Hashtbl.replace into name v)
        tbl
    in
    let ns = Hashtbl.create 32 and mw = Hashtbl.create 32 in
    List.iter
      (fun path ->
        let pns, pmw = load path in
        min_merge ns pns;
        min_merge mw pmw)
      latest_paths;
    (ns, mw)
  in
  let latest_path =
    match latest_paths with [ l ] -> l | ls -> Printf.sprintf "min of %d passes" (List.length ls)
  in
  let names =
    Hashtbl.fold (fun k _ acc -> k :: acc) base_ns [] |> List.sort String.compare
  in
  let t =
    Stdx.Tabular.create
      ~title:
        (Printf.sprintf "perf gate: %s vs %s (tolerance %.0f%%)" baseline_path latest_path
           !tolerance)
      [
        ("benchmark", Stdx.Tabular.Left);
        ("baseline", Stdx.Tabular.Right);
        ("latest", Stdx.Tabular.Right);
        ("time", Stdx.Tabular.Right);
        ("minor words", Stdx.Tabular.Right);
        ("verdict", Stdx.Tabular.Left);
      ]
  in
  let pretty ns =
    if Float.is_nan ns then "n/a"
    else if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
    else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
    else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
    else Printf.sprintf "%.0f ns" ns
  in
  let delta older newer =
    if Float.is_nan older || Float.is_nan newer || older = 0.0 then None
    else Some (100.0 *. ((newer /. older) -. 1.0))
  in
  let pretty_delta = function
    | None -> "n/a"
    | Some d -> Printf.sprintf "%+.1f%%" d
  in
  let regressions = ref 0 and improvements = ref 0 and missing = ref 0 in
  List.iter
    (fun name ->
      let b = Hashtbl.find base_ns name in
      match Hashtbl.find_opt new_ns name with
      | None ->
          incr missing;
          Stdx.Tabular.add_row t [ name; pretty b; "-"; "n/a"; "n/a"; "MISSING" ]
      | Some n ->
          let dt = delta b n in
          let dm =
            match (Hashtbl.find_opt base_mw name, Hashtbl.find_opt new_mw name) with
            | Some bm, Some nm -> delta bm nm
            | _ -> None
          in
          let verdict =
            match dt with
            | Some d when d > !tolerance ->
                incr regressions;
                "SLOWER"
            | Some d when d < -. !tolerance ->
                incr improvements;
                "faster"
            | Some _ -> "ok"
            | None -> "n/a"
          in
          Stdx.Tabular.add_row t
            [ name; pretty b; pretty n; pretty_delta dt; pretty_delta dm; verdict ])
    names;
  Hashtbl.iter
    (fun name n ->
      if not (Hashtbl.mem base_ns name) then
        Stdx.Tabular.add_row t [ name; "-"; pretty n; "n/a"; "n/a"; "new" ])
    new_ns;
  Stdx.Tabular.print t;
  let warn_only =
    match Sys.getenv_opt "STP_PERF_GATE" with Some "warn" -> true | Some _ | None -> false
  in
  let failing = !regressions + !missing in
  Printf.printf "perf gate: %d regression(s) beyond %.0f%%, %d improvement(s), %d missing — %s\n"
    !regressions !tolerance !improvements !missing
    (if warn_only then "STP_PERF_GATE=warn, report only"
     else if failing > 0 then "FAIL"
     else "ok");
  if failing > 0 && not warn_only then exit 1

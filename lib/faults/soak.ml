module Report = Stdx.Report
module Rng = Stdx.Rng
module Chan = Channel.Chan
module Strategy = Kernel.Strategy

type case = {
  label : string;
  protocol : Kernel.Protocol.t;
  input : int array;
  plan : Plan.t;
  base : Kernel.Strategy.t;
  within : int;
  max_steps : int;
}

type outcome = { case : case; verdict : Core.Verdict.t; ttr : int option }

let session_of_case ~rng case =
  let strategy = Inject.strategy ~plan:case.plan ~base:case.base in
  Kernel.Sched.session case.protocol ~input:case.input ~strategy ~rng
    ~max_steps:case.max_steps ()

let outcome_of_result case (result : Kernel.Runner.result) =
  let last_fault = Plan.last_fault_time case.plan in
  let verdict =
    Core.Verdict.of_result result
    |> Core.Verdict.assess_recovery ~last_fault ~within:case.within
  in
  { case; verdict; ttr = Core.Verdict.time_to_recover ~last_fault verdict }

let run_case ~rng case =
  match Core.Batch.run ~jobs:1 [ session_of_case ~rng case ] with
  | [ r ] -> outcome_of_result case r
  | _ -> assert false

(* ------------------------- batteries ------------------------- *)

let drop1 = { Plan.name = "drop1"; events = [ Plan.Drop_burst { at = 6; target = Plan.To_receiver; count = 1 } ] }

let drop3 = { Plan.name = "drop3"; events = [ Plan.Drop_burst { at = 6; target = Plan.To_receiver; count = 3 } ] }

let crash_r = { Plan.name = "crashR"; events = [ Plan.Crash_restart { at = 8; who = Plan.Receiver } ] }

let default_battery ?(random_plans = 4) ~seed () =
  let xset = Seqspace.Xset.All_upto { domain = 2; max_len = 4 } in
  let abp = Protocols.Abp.protocol ~domain:2 in
  let ladder = Protocols.Ladder.protocol ~xset ~drop_budget:1 in
  let hybrid = Protocols.Hybrid.protocol ~xset ~domain:2 ~drop_budget:1 ~timeout:6 () in
  let case label protocol input plan within max_steps =
    { label; protocol; input; plan; base = Strategy.round_robin; within; max_steps }
  in
  let scripted =
    [
      case "abp/drop1" abp [| 0; 1; 1; 0 |] drop1 64 20_000;
      case "abp/crashR" abp [| 0; 1; 1; 0 |] crash_r 64 20_000;
      case "ladder/drop1" ladder [| 0; 1 |] drop1 4096 200_000;
      case "ladder/drop3" ladder [| 0; 1 |] drop3 4096 200_000;
      case "hybrid/drop1" hybrid [| 0; 1; 0; 1 |] drop1 64 200_000;
    ]
  in
  let rng = Rng.create seed in
  let random_cases =
    List.concat_map
      (fun (tag, stream, protocol, input, within, max_steps) ->
        List.init random_plans (fun i ->
            let child = Rng.split (Rng.split rng stream) i in
            let plan =
              Plan.random ~channel:protocol.Kernel.Protocol.channel ~rng:child
                ~name:(Printf.sprintf "rnd%d" i) ()
            in
            case (Printf.sprintf "%s/rnd%d" tag i) protocol input plan within max_steps))
      [
        ("abp", 0, abp, [| 0; 1; 1; 0 |], 64, 20_000);
        ("ladder", 1, ladder, [| 0; 1 |], 4096, 200_000);
        ("hybrid", 2, hybrid, [| 0; 1; 0; 1 |], 4096, 200_000);
      ]
  in
  scripted @ random_cases

let corrupt ~at ~who ~index = Plan.Corrupt_state { at; who; index }

let stab_battery ?(random_plans = 2) ~seed () =
  let abp_stab = Protocols.Abp_stab.protocol ~domain:2 ~max_len:4 in
  let stn_stab = Protocols.Stenning_stab.protocol ~domain:2 ~max_len:4 in
  let gbn_stab = Protocols.Gbn_stab.protocol ~domain:2 ~max_len:4 ~window:2 in
  let abp = Protocols.Abp.protocol ~domain:2 in
  let input = [| 0; 1; 1; 0 |] in
  let sizes p =
    match Kernel.Protocol.corrupt_space p ~input with
    | Some sp -> sp
    | None -> invalid_arg (p.Kernel.Protocol.name ^ ": no corrupted-start space")
  in
  let abp_ns, _ = sizes abp in
  (* The corrupted-start resync costs a couple of full round trips
     more than an in-protocol drop, so the window is wider than the
     default battery's. *)
  let case label protocol plan =
    { label; protocol; input; plan; base = Strategy.round_robin; within = 256; max_steps = 20_000 }
  in
  (* Scripted: every single-sided corrupted start of each stabilising
     family, sender corruptions at t=0 and receiver ones at t=1.
     Receiver corruption is legal at {e any} time under the
     written-count convention — the enumeration re-anchors to the live
     tape length — but t=1 keeps these points comparable to the
     corrupted-{e start} sweeps of E15/E17. *)
  let scripted =
    List.concat_map
      (fun (tag, p) ->
        let ns, nr = sizes p in
        List.init ns (fun i ->
            case (Printf.sprintf "%s/cS%d" tag i) p
              { Plan.name = Printf.sprintf "cS%d" i;
                events = [ corrupt ~at:0 ~who:Plan.Sender ~index:i ] })
        @ List.init nr (fun i ->
            case (Printf.sprintf "%s/cR%d" tag i) p
              { Plan.name = Printf.sprintf "cR%d" i;
                events = [ corrupt ~at:1 ~who:Plan.Receiver ~index:i ] }))
      [ ("abp-stab", abp_stab); ("stenning-stab", stn_stab); ("gbn-stab", gbn_stab) ]
  in
  (* Composed: a corrupted start followed by mid-run faults in the same
     plan — the stabiliser must resync and then ride out ordinary
     noise.  The midR cases corrupt the receiver long after writes
     have landed, exercising the mid-run re-anchoring directly. *)
  let composed =
    [
      case "abp-stab/cS4+drop3" abp_stab
        { Plan.name = "cS4+drop3";
          events =
            [ corrupt ~at:0 ~who:Plan.Sender ~index:4;
              Plan.Drop_burst { at = 10; target = Plan.To_receiver; count = 3 } ] };
      case "abp-stab/drop1+midR" abp_stab
        { Plan.name = "drop1+midR";
          events =
            [ Plan.Drop_burst { at = 4; target = Plan.To_sender; count = 1 };
              corrupt ~at:40 ~who:Plan.Receiver ~index:0 ] };
      case "stenning-stab/cS4+storm" stn_stab
        { Plan.name = "cS4+storm";
          events =
            [ corrupt ~at:0 ~who:Plan.Sender ~index:4; Plan.Reorder_storm { at = 6; len = 4 } ] };
      case "gbn-stab/cR1+crashS" gbn_stab
        { Plan.name = "cR1+crashS";
          events =
            [ corrupt ~at:1 ~who:Plan.Receiver ~index:1;
              Plan.Crash_restart { at = 12; who = Plan.Sender } ] };
      case "gbn-stab/cS2+blackout+midR" gbn_stab
        { Plan.name = "cS2+blackout+midR";
          events =
            [ corrupt ~at:0 ~who:Plan.Sender ~index:2;
              Plan.Blackout { at = 8; len = 4 };
              corrupt ~at:48 ~who:Plan.Receiver ~index:1 ] };
    ]
  in
  (* Contrast: stock ABP from the same kind of corrupted starts — the
     battery records which ones it fails to ride out. *)
  let contrast =
    List.init abp_ns (fun i ->
        case (Printf.sprintf "abp/cS%d" i) abp
          { Plan.name = Printf.sprintf "cS%d" i; events = [ corrupt ~at:0 ~who:Plan.Sender ~index:i ] })
  in
  (* Random plans draw from the full (ns, nr) corruption space — the
     written-count convention makes a randomly-timed receiver
     corruption as legal as a sender one.  Per-protocol [Rng.split]
     streams keep each family's draws independent of the others. *)
  let rng = Rng.create seed in
  let random_cases =
    List.concat_map
      (fun (stream, tag, p) ->
        List.init random_plans (fun i ->
            let plan =
              Plan.random ~channel:p.Kernel.Protocol.channel
                ~rng:(Rng.split (Rng.split rng stream) i)
                ~corrupt_space:(sizes p) ~name:(Printf.sprintf "rnd%d" i) ()
            in
            case (Printf.sprintf "%s/rnd%d" tag i) p plan))
      [ (0, "abp-stab", abp_stab); (1, "stenning-stab", stn_stab); (2, "gbn-stab", gbn_stab) ]
  in
  scripted @ composed @ contrast @ random_cases

(* ------------------------- the report ------------------------- *)

(* Dispatch in fixed chunks regardless of [jobs] so the set of cases
   that ran before a deadline does not depend on the job count more
   than the deadline itself does — and without a deadline, not at
   all. *)
let chunk_size = 8

let rec chunks n = function
  | [] -> []
  | xs ->
      let rec take k = function
        | x :: tl when k > 0 ->
            let hd, rest = take (k - 1) tl in
            (x :: hd, rest)
        | rest -> ([], rest)
      in
      let hd, rest = take n xs in
      hd :: chunks n rest

let opt_int = function Some v -> Report.int v | None -> Report.str "-"

let run ?jobs ?max_seconds ~seed cases =
  let jobs = match jobs with Some j -> j | None -> Core.Par.default_jobs () in
  let deadline =
    match max_seconds with
    | None -> fun () -> false
    | Some s ->
        let d = Sys.time () +. s in
        fun () -> Sys.time () > d
  in
  let indexed = List.mapi (fun i c -> (i, c)) cases in
  let base = Rng.create seed in
  let outcomes, skipped =
    List.fold_left
      (fun (acc, skipped) chunk ->
        if deadline () then (acc, skipped + List.length chunk)
        else begin
          (* Each chunk is one scheduler batch sharded over the domain
             pool; per-case [Rng.split] streams keep the results
             bit-identical at every job count. *)
          let sessions =
            List.map (fun (i, c) -> session_of_case ~rng:(Rng.split base i) c) chunk
          in
          let results =
            List.map2
              (fun (_, c) r -> outcome_of_result c r)
              chunk
              (Core.Batch.run ~jobs sessions)
          in
          (acc @ results, skipped)
        end)
      ([], 0)
      (chunks chunk_size indexed)
  in
  let total = List.length cases in
  let ran = List.length outcomes in
  let count f = List.length (List.filter f outcomes) in
  let safe = count (fun o -> o.verdict.Core.Verdict.safe) in
  let complete = count (fun o -> o.verdict.Core.Verdict.complete) in
  let recovered = count (fun o -> o.verdict.Core.Verdict.recovered = Some true) in
  let metrics =
    Report.Metrics
      {
        title = Some "battery";
        pairs =
          [
            ("cases", Report.int total);
            ("ran", Report.int ran);
            ("safe", Report.int safe);
            ("complete", Report.int complete);
            ("recovered", Report.int recovered);
            ("truncated", Report.bool (skipped > 0));
          ];
      }
  in
  let b =
    Report.table ~title:"per-case outcomes"
      [
        ("case", Report.Left);
        ("protocol", Report.Left);
        ("channel", Report.Left);
        ("plan", Report.Left);
        ("safe", Report.Right);
        ("complete", Report.Right);
        ("recovered", Report.Right);
        ("steps", Report.Right);
        ("ttr", Report.Right);
      ]
  in
  List.iter
    (fun o ->
      let v = o.verdict in
      Report.row b
        [
          Report.str o.case.label;
          Report.str o.case.protocol.Kernel.Protocol.name;
          Report.str (Chan.kind_name o.case.protocol.Kernel.Protocol.channel);
          Report.str (Plan.to_string o.case.plan);
          Report.bool v.Core.Verdict.safe;
          Report.bool v.Core.Verdict.complete;
          Report.bool (v.Core.Verdict.recovered = Some true);
          Report.int v.Core.Verdict.steps;
          opt_int o.ttr;
        ])
    outcomes;
  let ttrs = List.filter_map (fun o -> Option.map float_of_int o.ttr) outcomes in
  let histo =
    match Stdx.Stats.histogram ~buckets:6 ttrs with
    | [] -> []
    | hs ->
        let hb =
          Report.table ~title:"time-to-recover histogram (steps)"
            [ ("lo", Report.Right); ("hi", Report.Right); ("count", Report.Right) ]
        in
        List.iter
          (fun (lo, hi, n) ->
            Report.row hb [ Report.float lo; Report.float hi; Report.int n ])
          hs;
        [ Report.finish hb ]
  in
  let notes =
    if skipped > 0 then
      [
        Printf.sprintf
          "TRUNCATED: wall-clock budget exhausted after %d/%d cases; %d skipped" ran
          total skipped;
      ]
    else []
  in
  Report.make ~id:"soak"
    ~title:(Printf.sprintf "fault-injection soak battery (seed %d)" seed)
    ~ok:(skipped = 0) ~notes
    (metrics :: Report.finish b :: histo)

(** Declarative fault plans.

    A plan is a serializable script of localized fault bursts: at
    global time [at] (for a window of one or more steps), drop copies,
    force duplicate deliveries, reorder aggressively (oldest delivered
    last), black out all deliveries, or crash-restart a process.  The
    soak runner compiles a plan into a {!Kernel.Strategy} wrapper
    ({!Inject.strategy}) and the shrinker searches the space of
    smaller plans ({!Shrink.run}).

    Every plan is checked against the channel's capability flags
    ({!Channel.Chan.deletes} / [duplicates] / [reorders]) before it
    runs: a drop burst on a non-deleting channel is a {e static} error
    ({!validate}), never a silently ignored event — the
    fault/capability qcheck suite pins this. *)

type target = To_receiver  (** faults on the S→R channel *) | To_sender

type proc = Sender | Receiver

type event =
  | Drop_burst of { at : int; target : target; count : int }
      (** delete up to [count] in-flight copies, one per step from
          [at]; requires a deleting channel *)
  | Dup_burst of { at : int; target : target; count : int }
      (** force [count] extra deliveries of already-deliverable
          copies; requires a duplicating channel *)
  | Reorder_storm of { at : int; len : int }
      (** for [len] steps deliver newest-first, forcing the oldest
          copies to arrive last; requires a reordering channel *)
  | Blackout of { at : int; len : int }
      (** withhold every delivery for [len] steps (always legal: the
          adversary may starve deliveries on any channel) *)
  | Crash_restart of { at : int; who : proc }
      (** reset the process to its initial state at time [at]; the
          channels keep their in-flight contents (always legal) *)
  | Corrupt_state of { at : int; who : proc; index : int }
      (** replace the process's local state with entry [index] of the
          protocol's declared corrupted-start enumeration
          ({!Kernel.Protocol.perturb}) at time [at]; legal only for
          protocols with that seam — {!validate} needs the enumeration
          sizes via [?corrupt_space] *)

type t = { name : string; events : event list }

val drop_grace : int
(** How many steps past its nominal span a drop burst stays armed
    waiting for an in-flight copy to appear (8): the scripted moment
    may find the channel empty, and a burst that never fires would
    make the schedule silently fault-free. *)

val window : event -> int * int
(** [window e] is the inclusive time span [(first, last)] the event is
    active in; for {!Drop_burst} the span includes {!drop_grace}. *)

val last_fault_time : t -> int
(** The last step at which any event of the plan is active; [0] for
    the empty plan.  Recovery verdicts count from here. *)

val validate :
  channel:Channel.Chan.kind -> ?corrupt_space:int * int -> t -> (unit, string) result
(** Static legality: every event's shape is well-formed ([at >= 0],
    positive spans) and within the channel's capabilities.
    [corrupt_space] is the protocol's [(sender, receiver)] enumeration
    sizes ({!Kernel.Protocol.corrupt_space}); without it (default) any
    {!Corrupt_state} event is rejected — corruption is a protocol
    capability exactly as drops are a channel one.  The error names
    the offending event. *)

val random :
  channel:Channel.Chan.kind ->
  rng:Stdx.Rng.t ->
  ?max_events:int ->
  ?horizon:int ->
  ?corrupt_space:int * int ->
  ?name:string ->
  unit ->
  t
(** A seeded random plan drawing only events legal on [channel]
    (always at least {!Blackout} and {!Crash_restart}), with start
    times below [horizon] (default 40) and at most [max_events]
    (default 3) events.  Passing [corrupt_space] adds
    {!Corrupt_state} to the pool (and to the later draws — the
    default draw stream is unchanged, keeping seeded batteries
    stable).  [validate ~channel ?corrupt_space (random ...)] is
    [Ok ()] by construction — property-tested. *)

val pp : Format.formatter -> t -> unit
(** Compact one-line rendering, e.g.
    ["1-fault[drop(->R)@6x1]"]. *)

val to_string : t -> string

val to_json : t -> Stdx.Json.t
val of_json : Stdx.Json.t -> (t, string) result
(** Round-trip: [of_json (to_json p) = Ok p]. *)

module Move = Kernel.Move
module Strategy = Kernel.Strategy
module Global = Kernel.Global

(* A drop burst is live while its window is open AND it still has
   drops to land: the channel's cumulative drop counter, minus the
   budget of earlier bursts on the same side, tells a stateless
   strategy how many of THIS burst's drops already happened.  (The
   accounting assumes the base schedule itself never drops — true of
   every base the soak batteries use.) *)
let active plan ~time ~dropped =
  let rec go prior_r prior_s = function
    | [] -> None
    | e :: rest ->
        let first, last = Plan.window e in
        let in_window = first <= time && time <= last in
        let live =
          match e with
          | Plan.Drop_burst { target; count; _ } ->
              let prior =
                match target with Plan.To_receiver -> prior_r | Plan.To_sender -> prior_s
              in
              in_window && dropped target - prior < count
          | _ -> in_window
        in
        if live then Some e
        else
          let prior_r, prior_s =
            match e with
            | Plan.Drop_burst { target = Plan.To_receiver; count; _ } -> (prior_r + count, prior_s)
            | Plan.Drop_burst { target = Plan.To_sender; count; _ } -> (prior_r, prior_s + count)
            | _ -> (prior_r, prior_s)
          in
          go prior_r prior_s rest
  in
  go 0 0 plan.Plan.events

let is_delivery target = function
  | Move.Deliver_to_receiver _ -> target = Plan.To_receiver
  | Move.Deliver_to_sender _ -> target = Plan.To_sender
  | _ -> false

let is_drop target = function
  | Move.Drop_to_receiver _ -> target = Plan.To_receiver
  | Move.Drop_to_sender _ -> target = Plan.To_sender
  | _ -> false

let delivery_symbol = function
  | Move.Deliver_to_receiver m | Move.Deliver_to_sender m -> m
  | _ -> -1

let strategy ~plan ~base =
  {
    Strategy.name = Printf.sprintf "%s+%s" base.Strategy.name plan.Plan.name;
    choose =
      (fun rng p (g : Global.t) enabled ->
        let dropped = function
          | Plan.To_receiver -> Channel.Chan.dropped_total g.Global.chan_sr
          | Plan.To_sender -> Channel.Chan.dropped_total g.Global.chan_rs
        in
        match active plan ~time:g.Global.time ~dropped with
        | None -> base.Strategy.choose rng p g enabled
        | Some (Plan.Crash_restart { who = Plan.Sender; _ }) -> Some Move.Restart_sender
        | Some (Plan.Crash_restart { who = Plan.Receiver; _ }) -> Some Move.Restart_receiver
        | Some (Plan.Corrupt_state { who = Plan.Sender; index; _ }) ->
            Some (Move.Corrupt_sender index)
        | Some (Plan.Corrupt_state { who = Plan.Receiver; index; _ }) ->
            Some (Move.Corrupt_receiver index)
        | Some (Plan.Drop_burst { target; _ }) -> (
            match List.filter (is_drop target) enabled with
            | m :: _ -> Some m
            | [] -> base.Strategy.choose rng p g enabled)
        | Some (Plan.Dup_burst { target; _ }) -> (
            (* On a duplicating channel a delivery leaves the copy
               deliverable, so forcing deliveries inside the window
               lands the same message repeatedly. *)
            match List.filter (is_delivery target) enabled with
            | m :: _ -> Some m
            | [] -> base.Strategy.choose rng p g enabled)
        | Some (Plan.Reorder_storm _) -> (
            (* Newest-first: delivering the largest symbols first
               forces the oldest in-flight copies to arrive last. *)
            match
              List.sort
                (fun a b -> Int.compare (delivery_symbol b) (delivery_symbol a))
                (List.filter (fun m -> delivery_symbol m >= 0) enabled)
            with
            | m :: _ -> Some m
            | [] -> base.Strategy.choose rng p g enabled)
        | Some (Plan.Blackout _) ->
            base.Strategy.choose rng p g
              (List.filter (fun m -> delivery_symbol m < 0) enabled));
  }

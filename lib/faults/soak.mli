(** Soak batteries: many protocol × channel × plan runs, in parallel.

    A soak case is one seeded run of a protocol under an injected
    fault plan.  [run] fans a battery out over {!Core.Par} and folds
    the per-run {!Core.Verdict} recovery verdicts into a single
    {!Stdx.Report} (id ["soak"]) carrying safe / complete / recovered
    counts, the per-case outcome table, and a time-to-recover
    histogram — renderable as text, JSON, or CSV by the existing
    pipeline.

    Determinism: case [i] always runs with [Rng.split base i], a pure
    function of the battery seed and the position, so the report is
    bit-identical at every [--jobs] count (pinned by test).

    Budget: [max_seconds] caps wall time.  Cases are dispatched in
    fixed-size chunks; once the deadline passes, the remaining chunks
    are skipped and the report's [ok] drops to [false] with a
    truncation note saying how many cases ran.  An un-truncated
    battery has [ok = true] {e regardless of how many runs recovered}:
    fault injection exists to find non-recovering runs (a receiver
    crash legitimately breaks safety), so the data is the deliverable
    and only a truncated sweep is a failed sweep. *)

type case = {
  label : string;
  protocol : Kernel.Protocol.t;
  input : int array;
  plan : Plan.t;
  base : Kernel.Strategy.t;  (** schedule outside fault windows *)
  within : int;  (** recovery deadline in steps after the last fault *)
  max_steps : int;
}

type outcome = {
  case : case;
  verdict : Core.Verdict.t;  (** with [recovered = Some _] *)
  ttr : int option;  (** steps from last fault to completion *)
}

val run_case : rng:Stdx.Rng.t -> case -> outcome
(** One run: inject [case.plan] over [case.base], drive the protocol,
    assess recovery against [case.within]. *)

val default_battery : ?random_plans:int -> seed:int -> unit -> case list
(** The standing battery: scripted §5 scenarios (ABP, ladder, and the
    hybrid under a single drop; a receiver crash-restart) plus
    [random_plans] (default 4) generated plans per protocol, drawn
    from split streams of [seed] and pre-validated against each
    protocol's channel. *)

val stab_battery : ?random_plans:int -> seed:int -> unit -> case list
(** The corrupted-start battery over the stabilising families
    (abp-stab, stenning-stab, gbn-stab): every single-sided corrupted
    start as a scripted {!Plan.Corrupt_state} plan (sender corruptions
    injected at t=0, receiver at t=1), composed plans pairing a
    corrupted start with mid-run faults — including mid-run receiver
    corruptions, legal at any tape length under the written-count
    convention — the same sender corruptions against stock ABP for
    contrast, plus [random_plans] (default 2) seeded plans per family
    drawing from the full (sender × receiver) corruption space
    alongside the ordinary fault kinds.  Deterministic under {!run}
    at every job count like the default battery. *)

val run :
  ?jobs:int -> ?max_seconds:float -> seed:int -> case list -> Stdx.Report.t
(** Run the battery and fold the outcomes into the ["soak"] report.
    [jobs] defaults to {!Core.Par.default_jobs}(); the result does not
    depend on it. *)

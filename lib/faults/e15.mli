(** Experiment E15: self-stabilisation, both halves.

    The positive half sweeps the stabilising indexed ABP over its
    whole declared corrupted-start space ({!Core.Stab.sweep}) and
    reports the worst-case time-to-stabilise, then closes the same
    space exhaustively under send caps ({!Core.Stab.search}) — no
    corrupted start reaches a safety violation.

    The negative half runs the identical capped search against stock
    ABP and finds a corrupted start it drives to a real violation;
    the witness is checked by replay, and again after relabelling
    through the data symmetry on the permuted input.

    [ok] iff every sweep point stabilises, the abp-stab search closes
    violation-free, and the ABP witness exists and survives both
    replays. *)

val report :
  ?within:int ->
  ?max_steps:int ->
  ?depth:int ->
  ?max_states:int ->
  ?max_sends:int ->
  unit ->
  Stdx.Report.t
(** [within] (default 256) is the stabilisation window for the sweep;
    [max_sends] (default 4) caps sends per side in both searches. *)

(** Experiment E13: recovery verdicts under injected faults (§5).

    The §5 contrast, replayed through the fault-plan machinery instead
    of hand-rolled adversaries:

    - ABP on its FIFO-lossy channel recovers from a single drop burst
      within a constant window (it retransmits);
    - the counting ladder recovers from faults within its deletion
      tolerance and never completes once the forced drops exceed it;
    - the weakly-bounded hybrid completes after a single drop but
      {e never recovers}: the ladder fallback transmits the rank of
      the whole input, blowing any per-item recovery window.

    A final stage feeds a seeded multi-event failing plan for the
    hybrid to {!Shrink.run} and checks it reduces to a one-event
    schedule — the §5 "a single fault suffices" claim, extracted
    mechanically. *)

val report :
  ?within:int -> ?max_steps:int -> ?shrink_trials:int -> unit -> Stdx.Report.t
(** [within] (default 64) is the recovery window for the
    constant-recovery protocols; the ladder's window is scaled
    internally by its [Θ(rank·W)] learning cost.  [ok] iff every
    scenario matches its expected verdict and the shrunk plan has
    exactly one event. *)

module Report = Stdx.Report
module Rng = Stdx.Rng
module Chan = Channel.Chan
module Strategy = Kernel.Strategy
module Verdict = Core.Verdict
module Xset = Seqspace.Xset

let drop ~at ~count =
  Plan.Drop_burst { at; target = Plan.To_receiver; count }

let report ?(within = 64) ?(max_steps = 200_000) ?(shrink_trials = 400) () =
  let xset = Xset.All_upto { domain = 2; max_len = 4 } in
  let abp = Protocols.Abp.protocol ~domain:2 in
  let ladder = Protocols.Ladder.protocol ~xset ~drop_budget:1 in
  let hybrid = Protocols.Hybrid.protocol ~xset ~domain:2 ~drop_budget:1 ~timeout:6 () in
  (* The ladder re-learns everything through counts: its honest
     recovery window is its whole Θ(rank·W) learning time, not a
     per-item constant. *)
  let ladder_within = 64 * within in
  let scenarios =
    [
      ( "abp+drop1", abp, [| 0; 1; 0; 1 |],
        { Plan.name = "drop1"; events = [ drop ~at:6 ~count:2 ] }, within, true );
      ( "ladder+drop1", ladder, [| 0; 1 |],
        { Plan.name = "drop1"; events = [ drop ~at:6 ~count:2 ] }, ladder_within, true );
      ( "ladder+drop3", ladder, [| 0; 1 |],
        { Plan.name = "drop3"; events = [ drop ~at:6 ~count:6 ] }, ladder_within, false );
      ( "hybrid+drop1", hybrid, [| 0; 1; 0; 1 |],
        { Plan.name = "drop1"; events = [ drop ~at:6 ~count:2 ] }, within, false );
    ]
  in
  let t =
    Report.table ~title:"E13: recovery verdicts under injected fault plans"
      [
        ("scenario", Report.Left);
        ("channel", Report.Left);
        ("plan", Report.Left);
        ("safe", Report.Right);
        ("complete", Report.Right);
        ("recovered", Report.Right);
        ("expected", Report.Right);
        ("ttr", Report.Right);
      ]
  in
  let all_ok = ref true in
  List.iter
    (fun (label, protocol, input, plan, within, expect) ->
      let case =
        {
          Soak.label; protocol; input; plan;
          base = Strategy.round_robin; within; max_steps;
        }
      in
      let o = Soak.run_case ~rng:(Rng.create 1) case in
      let v = o.Soak.verdict in
      let recovered = v.Verdict.recovered = Some true in
      if recovered <> expect then all_ok := false;
      Report.row t
        [
          Report.str label;
          Report.str (Chan.kind_name protocol.Kernel.Protocol.channel);
          Report.str (Plan.to_string plan);
          Report.bool v.Verdict.safe;
          Report.bool v.Verdict.complete;
          Report.bool recovered;
          Report.bool expect;
          (match o.Soak.ttr with Some s -> Report.int s | None -> Report.str "-");
        ])
    scenarios;
  (* Shrinker stage: a noisy three-event failing plan for the hybrid
     must reduce to a single event. *)
  let channel = hybrid.Kernel.Protocol.channel in
  let seed_plan =
    {
      Plan.name = "noisy";
      events =
        [
          Plan.Blackout { at = 2; len = 2 };
          drop ~at:6 ~count:2;
          Plan.Reorder_storm { at = 12; len = 2 };
        ];
    }
  in
  let still_failing plan =
    let case =
      {
        Soak.label = "shrink-probe"; protocol = hybrid; input = [| 0; 1; 0; 1 |];
        plan; base = Strategy.round_robin; within; max_steps;
      }
    in
    let v = (Soak.run_case ~rng:(Rng.create 1) case).Soak.verdict in
    (* Failing means the run experienced the fault and still missed
       the window: a candidate whose events were delayed past the
       trace end is a vacuous non-recovery, not a smaller failure. *)
    v.Verdict.recovered = Some false && Plan.last_fault_time plan <= v.Verdict.steps
  in
  let shrunk, stats =
    Shrink.run ~channel ~still_failing ~max_trials:shrink_trials seed_plan
  in
  let n_shrunk = List.length shrunk.Plan.events in
  let shrink_ok = n_shrunk = 1 in
  let metrics =
    Report.Metrics
      {
        title = Some "shrinker (hybrid, noisy 3-event plan)";
        pairs =
          [
            ("initial events", Report.int (List.length seed_plan.Plan.events));
            ("shrunk events", Report.int n_shrunk);
            ("shrunk plan", Report.str (Plan.to_string shrunk));
            ("trials", Report.int stats.Shrink.trials);
            ("improved", Report.int stats.Shrink.improved);
          ];
      }
  in
  Report.make ~id:"E13" ~title:"Sec 5 via fault injection: who recovers, and from what"
    ~ok:(!all_ok && shrink_ok)
    ~notes:
      [
        Printf.sprintf
          "recovered = safe, complete, and done within k steps of the last fault (k=%d \
           constant-recovery, k=%d ladder — its recovery is its whole rank-encoded relearning)"
          within ladder_within;
        "the ladder tolerates drops within its deletion budget and never completes beyond it; \
         the hybrid completes but blows every constant window — Sec 5's weak-boundedness gap";
        "shrinker: delta-debugging the noisy failing plan must land on a one-event schedule \
         (a single fault suffices)";
      ]
    [ Report.finish t; metrics ]

let () =
  Kernel.Registry.register_experiment ~id:"E13"
    ~doc:"fault injection: recovery verdicts and plan shrinking (Sec 5)"
    ~quick:(fun () -> report ~max_steps:60_000 ~shrink_trials:80 ())
    ~full:(fun () -> report ())

module Report = Stdx.Report
module Stab = Core.Stab
module Protocol = Kernel.Protocol

(* The Dolev-style contrast, executable: the indexed variant with
   absolute resync stabilises from every corrupted start (the sweep
   maximises its time-to-stabilise and the capped BFS closes with no
   reachable violation), while stock ABP — whose one alternating bit
   cannot tell a corrupted peer from a duplicate — has a corrupted
   start the same searcher drives to a real safety violation.  The
   witness is replayed through {!Kernel.Sim.apply} and, relabelled
   through the data symmetry, replayed again on the permuted input:
   it is a schedule, not a search artefact. *)

let swap01 d = match d with 0 -> 1 | 1 -> 0 | d -> d

let report ?(within = 256) ?(max_steps = 20_000) ?(depth = 64) ?(max_states = 200_000)
    ?(max_sends = 4) () =
  let stab_p = Protocols.Abp_stab.protocol ~domain:2 ~max_len:4 in
  let sweep_input = [| 0; 1; 1; 0 |] in
  let sweep = Stab.sweep stab_p ~input:sweep_input ~within ~max_steps ~seed:7 () in
  (* Adversarial half, same caps for both protocols. *)
  let search p input =
    Stab.search ~depth ~max_states ~max_sends_per_sender:max_sends
      ~max_sends_per_receiver:max_sends p ~input ()
  in
  let abp = Protocols.Abp.protocol ~domain:2 in
  let w_input = [| 0; 1 |] in
  let abp_outcome = search abp w_input in
  let witness_found, replayed, relabel_replayed =
    match abp_outcome with
    | Stab.Violation w ->
        let replayed = Stab.replay abp ~input:w_input w in
        let eq = Option.get abp.Protocol.symmetry in
        let w' = Stab.relabel_witness eq swap01 w in
        let relabel_replayed = Stab.replay abp ~input:(Array.map swap01 w_input) w' in
        (true, replayed, relabel_replayed)
    | Stab.No_violation _ -> (false, false, false)
  in
  let stab_outcome = search stab_p w_input in
  let stab_closed, stab_states =
    match stab_outcome with
    | Stab.No_violation { closed; states } -> (closed, states)
    | Stab.Violation _ -> (false, 0)
  in
  let checks =
    Report.Metrics
      {
        title = Some "contrast checks";
        pairs =
          [
            ("abp-stab all stabilised", Report.bool sweep.Stab.all_stabilised);
            ( "abp-stab worst tts",
              match sweep.Stab.worst_tts with
              | Some n -> Report.int n
              | None -> Report.str "-" );
            ("abp-stab search closed, no violation", Report.bool stab_closed);
            ("abp-stab states explored", Report.int stab_states);
            ("abp witness found", Report.bool witness_found);
            ("abp witness replays to violation", Report.bool replayed);
            ("abp witness replays after relabel", Report.bool relabel_replayed);
          ];
      }
  in
  let ok =
    sweep.Stab.all_stabilised
    && sweep.Stab.worst_tts <> None
    && stab_closed && witness_found && replayed && relabel_replayed
  in
  Report.make ~id:"E15"
    ~title:"Self-stabilisation: corrupted-start sweep vs stock-ABP witness" ~ok
    ~notes:
      [
        Printf.sprintf
          "abp-stab: every corrupted start in the declared space converges (within=%d); \
           worst_tts is the maximum time-to-stabilise over the space"
          within;
        Printf.sprintf
          "capped BFS (sends<=%d/side, depth<=%d) closes abp-stab's corrupted-root space \
           with no reachable violation, and finds a corrupted ABP start it drives to a \
           real one"
          max_sends depth;
        "the ABP witness is replayed move-by-move, then relabelled through the data \
         symmetry and replayed on the permuted input — relabel-replayability";
      ]
    (checks
     :: Report.Section
          {
            heading = "abp-stab corrupted-start sweep";
            items = (Stab.sweep_report sweep).Report.items;
          }
     :: Stab.outcome_items abp_outcome)

let () =
  Kernel.Registry.register_experiment ~id:"E15"
    ~doc:"self-stabilisation: corrupted-start sweep and non-stabilising witness"
    ~quick:(fun () -> report ~within:256 ~max_steps:20_000 ())
    ~full:(fun () -> report ~within:512 ~max_steps:60_000 ~max_sends:5 ())

(** Delta-debugging fault plans.

    Given a plan under which a run fails (by whatever predicate the
    caller cares about — typically "not recovered"), [run] greedily
    reduces it to a locally-minimal failing plan: it tries dropping
    whole events, then shrinking burst sizes and window lengths, then
    pushing events to later start times, restarting after every
    successful reduction until a fixpoint.  Every candidate is
    re-validated against the channel before the predicate runs, so the
    shrinker can never hand back an illegal plan.

    "Locally minimal" means: removing any single remaining event,
    shrinking any single span by one, or delaying any single event
    further makes the failure disappear (or the trial budget ran
    out) — the standard ddmin guarantee, which turns "soak found a
    failure under this 7-event plan" into a one-line counterexample. *)

type stats = { trials : int; improved : int }

val run :
  channel:Channel.Chan.kind ->
  ?corrupt_space:int * int ->
  still_failing:(Plan.t -> bool) ->
  ?max_trials:int ->
  ?max_delay:int ->
  Plan.t ->
  Plan.t * stats
(** [run ~channel ~still_failing plan] requires [still_failing plan]
    to hold on entry (otherwise the plan is returned unchanged with
    zero trials).  [max_trials] (default 400) bounds predicate
    evaluations; [max_delay] (default 16) bounds how far an event is
    pushed later.  [corrupt_space] is threaded to {!Plan.validate} so
    plans carrying {!Plan.Corrupt_state} events stay legal while
    shrinking; for those the "smaller" move is the corruption index
    toward [0] — the designated state. *)

(** Compiling a fault plan into an environment strategy.

    [strategy ~plan ~base] wraps a base schedule: outside every fault
    window it defers to [base] untouched (the wrapper is zero-cost for
    the empty plan — the E1–E12 byte-identity pin relies on this), and
    inside a window it overrides the choice with the scripted fault.
    The wrapper is stateless, like every {!Kernel.Strategy}: the only
    clock is [Global.time], so one strategy value drives any number of
    runs.

    Legality: drop and duplicate bursts only ever pick moves the
    simulator lists in [Sim.enabled], and crash-restarts map to the
    restart moves [Sim.apply] accepts unconditionally — an injected
    run can never raise [Model_violation] (property-tested).  A fault
    whose window arrives when no matching move is enabled (e.g. a drop
    burst on an empty channel) falls through to [base]: the plan
    [validate] gate rejects statically-impossible faults, while
    dynamically-vacuous ones are simply inert. *)

val strategy : plan:Plan.t -> base:Kernel.Strategy.t -> Kernel.Strategy.t
(** The name is ["<base>+<plan>"]. *)

val active : Plan.t -> time:int -> dropped:(Plan.target -> int) -> Plan.event option
(** The first event (in plan order) live at [time] — the dispatch rule
    [strategy] uses, exposed for tests.  [dropped] reports the
    channel's cumulative drop count towards that target; a drop burst
    is live while its {!Plan.window} is open {e and} the drops beyond
    earlier same-target bursts are still short of its [count], so a
    burst that finds the channel empty waits (up to the window) for
    the next in-flight copy instead of silently missing. *)

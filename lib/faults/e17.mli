(** Experiment E17: stabilisation beyond ABP, across the
    bounded-counter families.

    The positive half sweeps each stabilising family (abp-stab,
    stenning-stab, gbn-stab) over its declared corrupted-start space
    on a grid of alphabet sizes and input lengths and reports the
    worst-case time-to-stabilise curves — every point must converge.
    The negative half runs the capped corrupted-root BFS
    ({!Core.Stab.search}) against each stock family: abp,
    stenning-mod, go-back-n, selective-repeat, and ladder each yield
    a violation witness checked by replay (and by relabel-replay
    where the perturb enumeration is data-independent), while stock
    stenning is the control — its search closes clean yet its sweep
    does not converge, separating safety-from-any-start from
    stabilisation proper.

    [ok] iff every curve point stabilises, every victim's witness
    replays (and relabel-replays where claimed), stenning's search
    closes, and stenning's sweep does {e not} fully converge. *)

val report :
  ?within:int ->
  ?max_steps:int ->
  ?depth:int ->
  ?max_states:int ->
  ?max_sends:int ->
  ?domains:int list ->
  ?lens:int list ->
  ?window:int ->
  unit ->
  Stdx.Report.t
(** [domains] (default [[2; 3]]) and [lens] (default [[2; 3; 4]])
    define the scaling grid; [window] (default 2) sizes gbn-stab's
    pipeline; the remaining knobs match {!E15.report}. *)

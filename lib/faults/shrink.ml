type stats = { trials : int; improved : int }

let remove_nth i xs = List.filteri (fun j _ -> j <> i) xs

let replace_nth i x xs = List.mapi (fun j y -> if j = i then x else y) xs

(* Smaller-span variants of one event: halve, then decrement — the
   classic ddmin step sizes, largest reduction attempted first. *)
let span_shrinks e =
  let variants span rebuild =
    List.filter_map
      (fun v -> if v >= 1 && v < span then Some (rebuild v) else None)
      (List.sort_uniq compare [ span / 2; span - 1 ])
  in
  match e with
  | Plan.Drop_burst { at; target; count } ->
      variants count (fun count -> Plan.Drop_burst { at; target; count })
  | Plan.Dup_burst { at; target; count } ->
      variants count (fun count -> Plan.Dup_burst { at; target; count })
  | Plan.Reorder_storm { at; len } -> variants len (fun len -> Plan.Reorder_storm { at; len })
  | Plan.Blackout { at; len } -> variants len (fun len -> Plan.Blackout { at; len })
  | Plan.Crash_restart _ -> []
  (* A smaller corruption is one closer to the designated state —
     index 0 by the perturb contract — so shrink the index, not a
     span. *)
  | Plan.Corrupt_state { at; who; index } ->
      List.filter_map
        (fun v -> if v >= 0 && v < index then Some (Plan.Corrupt_state { at; who; index = v }) else None)
        (List.sort_uniq compare [ 0; index / 2; index - 1 ])

let delayed delta = function
  | Plan.Drop_burst e -> Plan.Drop_burst { e with at = e.at + delta }
  | Plan.Dup_burst e -> Plan.Dup_burst { e with at = e.at + delta }
  | Plan.Reorder_storm e -> Plan.Reorder_storm { e with at = e.at + delta }
  | Plan.Blackout e -> Plan.Blackout { e with at = e.at + delta }
  | Plan.Crash_restart e -> Plan.Crash_restart { e with at = e.at + delta }
  | Plan.Corrupt_state e -> Plan.Corrupt_state { e with at = e.at + delta }

let run ~channel ?corrupt_space ~still_failing ?(max_trials = 400) ?(max_delay = 16) plan =
  let trials = ref 0 in
  let improved = ref 0 in
  let attempt candidate =
    !trials < max_trials
    && Result.is_ok (Plan.validate ~channel ?corrupt_space candidate)
    && begin
         incr trials;
         still_failing candidate
       end
  in
  if not (Result.is_ok (Plan.validate ~channel ?corrupt_space plan) && still_failing plan) then
    (plan, { trials = 0; improved = 0 })
  else begin
    let current = ref plan in
    (* One greedy pass: the first candidate that still fails is
       adopted and the whole pass restarts from the reduced plan. *)
    let adopt_first candidates =
      match List.find_opt attempt candidates with
      | Some c ->
          current := c;
          incr improved;
          true
      | None -> false
    in
    let with_events events = { !current with Plan.events } in
    let candidates () =
      let events = (!current).Plan.events in
      let removals = List.mapi (fun i _ -> with_events (remove_nth i events)) events in
      let shrinks =
        List.concat
          (List.mapi
             (fun i e -> List.map (fun e' -> with_events (replace_nth i e' events)) (span_shrinks e))
             events)
      in
      let delays =
        List.concat
          (List.mapi
             (fun i e ->
               List.filter_map
                 (fun delta ->
                   if delta <= max_delay then
                     Some (with_events (replace_nth i (delayed delta e) events))
                   else None)
                 [ 16; 8; 4; 2; 1 ])
             events)
      in
      removals @ shrinks @ delays
    in
    let progress = ref true in
    while !progress && !trials < max_trials do
      progress := adopt_first (candidates ())
    done;
    (!current, { trials = !trials; improved = !improved })
  end

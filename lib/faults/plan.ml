module Chan = Channel.Chan
module Json = Stdx.Json

type target = To_receiver | To_sender

type proc = Sender | Receiver

type event =
  | Drop_burst of { at : int; target : target; count : int }
  | Dup_burst of { at : int; target : target; count : int }
  | Reorder_storm of { at : int; len : int }
  | Blackout of { at : int; len : int }
  | Crash_restart of { at : int; who : proc }
  | Corrupt_state of { at : int; who : proc; index : int }

type t = { name : string; events : event list }

(* A drop burst stays armed for a few steps past its nominal span: the
   scripted moment may find the channel empty, and the fault then
   lands on the next in-flight copy instead of silently missing. *)
let drop_grace = 8

let window = function
  | Drop_burst { at; count; _ } -> (at, at + count - 1 + drop_grace)
  | Dup_burst { at; count; _ } -> (at, at + count - 1)
  | Reorder_storm { at; len } | Blackout { at; len } -> (at, at + len - 1)
  | Crash_restart { at; _ } | Corrupt_state { at; _ } -> (at, at)

let last_fault_time t =
  List.fold_left (fun acc e -> max acc (snd (window e))) 0 t.events

let target_name = function To_receiver -> "->R" | To_sender -> "->S"

let proc_name = function Sender -> "S" | Receiver -> "R"

let pp_event ppf = function
  | Drop_burst { at; target; count } ->
      Format.fprintf ppf "drop(%s)@%dx%d" (target_name target) at count
  | Dup_burst { at; target; count } ->
      Format.fprintf ppf "dup(%s)@%dx%d" (target_name target) at count
  | Reorder_storm { at; len } -> Format.fprintf ppf "storm@%dx%d" at len
  | Blackout { at; len } -> Format.fprintf ppf "blackout@%dx%d" at len
  | Crash_restart { at; who } -> Format.fprintf ppf "crash-%s@%d" (proc_name who) at
  | Corrupt_state { at; who; index } ->
      Format.fprintf ppf "corrupt-%s@%d#%d" (proc_name who) at index

let pp ppf t =
  Format.fprintf ppf "%s[%a]" t.name
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ") pp_event)
    t.events

let to_string t = Format.asprintf "%a" pp t

(* ------------------------- validation ------------------------- *)

let validate ~channel ?corrupt_space t =
  let bad e msg = Error (Format.asprintf "%a: %s" pp_event e msg) in
  let check e =
    let at, _ = window e in
    if at < 0 then bad e "negative start time"
    else
      match e with
      | Drop_burst { count; _ } when count <= 0 -> bad e "non-positive burst size"
      | Dup_burst { count; _ } when count <= 0 -> bad e "non-positive burst size"
      | (Reorder_storm { len; _ } | Blackout { len; _ }) when len <= 0 ->
          bad e "non-positive window length"
      | Drop_burst _ when not (Chan.deletes channel) ->
          bad e (Printf.sprintf "channel %s cannot delete" (Chan.kind_name channel))
      | Dup_burst _ when not (Chan.duplicates channel) ->
          bad e (Printf.sprintf "channel %s cannot duplicate" (Chan.kind_name channel))
      | Reorder_storm _ when not (Chan.reorders channel) ->
          bad e (Printf.sprintf "channel %s cannot reorder" (Chan.kind_name channel))
      | Corrupt_state { index; _ } when index < 0 -> bad e "negative corruption index"
      (* Corruption legality is a protocol capability, not a channel
         one: the caller passes the protocol's declared enumeration
         sizes ([Protocol.corrupt_space]); no seam means no corrupt
         events. *)
      | Corrupt_state { who; index; _ } -> (
          match corrupt_space with
          | None -> bad e "protocol declares no corrupted-start space"
          | Some (ns, nr) ->
              let n = match who with Sender -> ns | Receiver -> nr in
              if index >= n then
                bad e (Printf.sprintf "corruption index outside enumeration of %d" n)
              else Ok ())
      | Drop_burst _ | Dup_burst _ | Reorder_storm _ | Blackout _ | Crash_restart _ -> Ok ()
  in
  List.fold_left (fun acc e -> match acc with Error _ -> acc | Ok () -> check e) (Ok ()) t.events

(* ------------------------- generation ------------------------- *)

let random ~channel ~rng ?(max_events = 3) ?(horizon = 40) ?corrupt_space ?name () =
  (* [corrupt_space] is opt-in: adding a kind to the default pool would
     shift every draw after it and silently re-deal all the pinned
     seeded batteries (E13, soak, serve). *)
  let legal_kinds =
    [ `Blackout; `Crash ]
    @ (if Chan.deletes channel then [ `Drop ] else [])
    @ (if Chan.duplicates channel then [ `Dup ] else [])
    @ (if Chan.reorders channel then [ `Storm ] else [])
    @ (match corrupt_space with
      | Some (ns, nr) when ns > 0 || nr > 0 -> [ `Corrupt ]
      | _ -> [])
  in
  let n = 1 + Stdx.Rng.int rng (max max_events 1) in
  let event () =
    let at = Stdx.Rng.int rng (max horizon 1) in
    let target = if Stdx.Rng.bool rng then To_receiver else To_sender in
    match Stdx.Rng.pick rng legal_kinds with
    | `Drop -> Drop_burst { at; target; count = 1 + Stdx.Rng.int rng 3 }
    | `Dup -> Dup_burst { at; target; count = 1 + Stdx.Rng.int rng 3 }
    | `Storm -> Reorder_storm { at; len = 1 + Stdx.Rng.int rng 6 }
    | `Blackout -> Blackout { at; len = 1 + Stdx.Rng.int rng 6 }
    | `Crash -> Crash_restart { at; who = (if Stdx.Rng.bool rng then Sender else Receiver) }
    | `Corrupt ->
        let ns, nr = Option.get corrupt_space in
        let who = if (nr = 0 || Stdx.Rng.bool rng) && ns > 0 then Sender else Receiver in
        let n = match who with Sender -> ns | Receiver -> nr in
        Corrupt_state { at; who; index = Stdx.Rng.int rng (max n 1) }
  in
  let events =
    List.sort
      (fun a b -> compare (window a) (window b))
      (List.init n (fun _ -> event ()))
  in
  let name = match name with Some n -> n | None -> Printf.sprintf "random-%d" n in
  { name; events }

(* ------------------------- serialization ------------------------- *)

let target_to_string = function To_receiver -> "to-receiver" | To_sender -> "to-sender"

let target_of_string = function
  | "to-receiver" -> Ok To_receiver
  | "to-sender" -> Ok To_sender
  | s -> Error (Printf.sprintf "unknown fault target %S" s)

let proc_to_string = function Sender -> "sender" | Receiver -> "receiver"

let proc_of_string = function
  | "sender" -> Ok Sender
  | "receiver" -> Ok Receiver
  | s -> Error (Printf.sprintf "unknown process %S" s)

let event_to_json e =
  let open Json in
  match e with
  | Drop_burst { at; target; count } ->
      Obj
        [
          ("kind", String "drop-burst");
          ("at", Int at);
          ("target", String (target_to_string target));
          ("count", Int count);
        ]
  | Dup_burst { at; target; count } ->
      Obj
        [
          ("kind", String "dup-burst");
          ("at", Int at);
          ("target", String (target_to_string target));
          ("count", Int count);
        ]
  | Reorder_storm { at; len } ->
      Obj [ ("kind", String "reorder-storm"); ("at", Int at); ("len", Int len) ]
  | Blackout { at; len } ->
      Obj [ ("kind", String "blackout"); ("at", Int at); ("len", Int len) ]
  | Crash_restart { at; who } ->
      Obj [ ("kind", String "crash-restart"); ("at", Int at); ("who", String (proc_to_string who)) ]
  | Corrupt_state { at; who; index } ->
      Obj
        [
          ("kind", String "corrupt-state");
          ("at", Int at);
          ("who", String (proc_to_string who));
          ("index", Int index);
        ]

let to_json t =
  Json.Obj
    [ ("name", Json.String t.name); ("events", Json.List (List.map event_to_json t.events)) ]

let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e

let int_field j k =
  match Json.member k j with
  | Some (Json.Int v) -> Ok v
  | _ -> Error (Printf.sprintf "fault event: missing int field %S" k)

let str_field j k =
  match Json.member k j with
  | Some (Json.String v) -> Ok v
  | _ -> Error (Printf.sprintf "fault event: missing string field %S" k)

let event_of_json j =
  let* kind = str_field j "kind" in
  let* at = int_field j "at" in
  match kind with
  | "drop-burst" | "dup-burst" ->
      let* target = str_field j "target" in
      let* target = target_of_string target in
      let* count = int_field j "count" in
      Ok
        (if kind = "drop-burst" then Drop_burst { at; target; count }
         else Dup_burst { at; target; count })
  | "reorder-storm" ->
      let* len = int_field j "len" in
      Ok (Reorder_storm { at; len })
  | "blackout" ->
      let* len = int_field j "len" in
      Ok (Blackout { at; len })
  | "crash-restart" ->
      let* who = str_field j "who" in
      let* who = proc_of_string who in
      Ok (Crash_restart { at; who })
  | "corrupt-state" ->
      let* who = str_field j "who" in
      let* who = proc_of_string who in
      let* index = int_field j "index" in
      Ok (Corrupt_state { at; who; index })
  | k -> Error (Printf.sprintf "unknown fault event kind %S" k)

let of_json j =
  let* name = str_field j "name" in
  match Json.member "events" j with
  | Some (Json.List es) ->
      let* events =
        List.fold_left
          (fun acc e ->
            let* acc = acc in
            let* e = event_of_json e in
            Ok (e :: acc))
          (Ok []) es
      in
      Ok { name; events = List.rev events }
  | _ -> Error "fault plan: missing events list"

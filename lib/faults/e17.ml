module Report = Stdx.Report
module Stab = Core.Stab
module Protocol = Kernel.Protocol

(* E15 established the stabilisation contrast for one protocol pair;
   E17 runs it across the bounded-counter families.  The positive
   half sweeps every stabilising family's corrupted-start space over
   a grid of alphabet sizes and input lengths and reports the
   worst-case time-to-stabilise curve — the scaling data behind the
   claim that absolute resync converges in O(round trips) while
   pipelining (gbn-stab) flattens the growth.  The negative half runs
   the capped corrupted-root BFS against each stock family: every
   bounded-counter protocol that aliases sequence numbers (or counts
   in unary) yields a replayable violation witness, while stock
   Stenning — unbounded headers, forward-only acks — is the control
   that is safe from every corrupted start yet refuses to converge. *)

let swap01 d = match d with 0 -> 1 | 1 -> 0 | d -> d

(* The scaling input: the first [len] symbols cycling through the
   alphabet, so every domain value occurs once the length allows. *)
let cycle_input ~domain ~len = Array.init len (fun i -> i mod domain)

type curve_point = {
  family : string;
  domain : int;
  len : int;
  space : int;
  stabilised : int;
  worst_tts : int option;
  all : bool;
}

let curve ~within ~max_steps ~domains ~lens ~window =
  let families =
    [
      ("abp-stab", fun ~domain ~max_len -> Protocols.Abp_stab.protocol ~domain ~max_len);
      ( "stenning-stab",
        fun ~domain ~max_len -> Protocols.Stenning_stab.protocol ~domain ~max_len );
      ( "gbn-stab",
        fun ~domain ~max_len -> Protocols.Gbn_stab.protocol ~domain ~max_len ~window );
    ]
  in
  List.concat_map
    (fun (family, mk) ->
      List.concat_map
        (fun domain ->
          List.map
            (fun len ->
              let p = mk ~domain ~max_len:len in
              let input = cycle_input ~domain ~len in
              let s = Stab.sweep p ~input ~within ~max_steps ~seed:7 () in
              {
                family;
                domain;
                len;
                space = s.Stab.space_size;
                stabilised = s.Stab.stabilised;
                worst_tts = s.Stab.worst_tts;
                all = s.Stab.all_stabilised;
              })
            lens)
        domains)
    families

(* One stock victim: search its corrupted-root space, replay any
   witness, and — when the family's perturb enumeration is
   data-independent and it declares an equivariance — relabel-replay
   it on the permuted input. *)
type victim_row = {
  v_family : string;
  outcome : string;
  found : bool;
  replayed : bool;
  relabel : string; (* "yes" | "no" | "n/a" *)
}

let run_victim ~depth ~max_states ~max_sends (v_family, p, input, relabelable) =
  let outcome =
    Stab.search ~depth ~max_states ~max_sends_per_sender:max_sends
      ~max_sends_per_receiver:max_sends p ~input ()
  in
  match outcome with
  | Stab.Violation w ->
      let replayed = Stab.replay p ~input w in
      let relabel =
        if not relabelable then "n/a"
        else
          match p.Protocol.symmetry with
          | None -> "n/a"
          | Some eq ->
              let w' = Stab.relabel_witness eq swap01 w in
              if Stab.replay p ~input:(Array.map swap01 input) w' then "yes" else "no"
      in
      {
        v_family;
        outcome = Printf.sprintf "VIOLATION@%d from (%s, %s)" w.Stab.violation_depth
            w.Stab.w_s_label w.Stab.w_r_label;
        found = true;
        replayed;
        relabel;
      }
  | Stab.No_violation { closed; states } ->
      {
        v_family;
        outcome = Printf.sprintf "%s (%d states)" (if closed then "closed" else "TRUNCATED") states;
        found = false;
        replayed = false;
        relabel = "n/a";
      }

let report ?(within = 256) ?(max_steps = 20_000) ?(depth = 64) ?(max_states = 200_000)
    ?(max_sends = 4) ?(domains = [ 2; 3 ]) ?(lens = [ 2; 3; 4 ]) ?(window = 2) () =
  let points = curve ~within ~max_steps ~domains ~lens ~window in
  let ct =
    Report.table ~title:"worst time-to-stabilise over the corrupted-start space"
      [
        ("family", Report.Left);
        ("m", Report.Right);
        ("n", Report.Right);
        ("space", Report.Right);
        ("stabilised", Report.Right);
        ("worst_tts", Report.Right);
      ]
  in
  List.iter
    (fun c ->
      Report.row ct
        [
          Report.str c.family;
          Report.int c.domain;
          Report.int c.len;
          Report.int c.space;
          Report.int c.stabilised;
          (match c.worst_tts with Some t -> Report.int t | None -> Report.str "-");
        ])
    points;
  let curves_ok = List.for_all (fun c -> c.all && c.worst_tts <> None) points in
  (* The stock victims.  stenning-mod and go-back-n corrupt only
     counters (relabel-replayable); selective-repeat's poisoned
     buffers carry literal data and ladder has no data symmetry at
     all, so those witnesses are replay-checked only. *)
  let input4 = [| 0; 1; 1; 0 |] in
  let xset = Seqspace.Xset.All_upto { domain = 2; max_len = 2 } in
  let victims =
    [
      ("abp", Protocols.Abp.protocol ~domain:2, [| 0; 1 |], true);
      ( "stenning-mod",
        Protocols.Stenning_mod.protocol_on Channel.Chan.Fifo_lossy ~domain:2 ~header_space:2,
        input4,
        true );
      ("go-back-n", Protocols.Go_back_n.protocol ~domain:2 ~window:2, input4, true);
      ("selective-repeat", Protocols.Selective_repeat.protocol ~domain:2 ~window:2, input4, false);
      ("ladder", Protocols.Ladder.protocol ~xset ~drop_budget:1, [| 0; 1 |], false);
    ]
  in
  let rows = List.map (run_victim ~depth ~max_states ~max_sends) victims in
  let vt =
    Report.table ~title:"corrupted-root witness search per stock family"
      [
        ("family", Report.Left);
        ("outcome", Report.Left);
        ("replayed", Report.Right);
        ("relabel-replayed", Report.Right);
      ]
  in
  List.iter
    (fun r ->
      Report.row vt
        [
          Report.str r.v_family;
          Report.str r.outcome;
          Report.bool r.replayed;
          Report.str r.relabel;
        ])
    rows;
  let victims_ok =
    List.for_all (fun r -> r.found && r.replayed && r.relabel <> "no") rows
  in
  (* The control: stock Stenning is safe from every corrupted start
     (the capped BFS closes clean) but does not converge (a corrupted
     cursor deadlocks the sweep's fair scheduler too). *)
  let stn = Protocols.Stenning.protocol ~domain:2 ~max_len:4 in
  let stn_search =
    Stab.search ~depth ~max_states ~max_sends_per_sender:max_sends
      ~max_sends_per_receiver:max_sends stn ~input:input4 ()
  in
  let stn_closed =
    match stn_search with
    | Stab.No_violation { closed; _ } -> closed
    | Stab.Violation _ -> false
  in
  let stn_sweep = Stab.sweep stn ~input:input4 ~within ~max_steps ~seed:7 () in
  let checks =
    Report.Metrics
      {
        title = Some "family checks";
        pairs =
          [
            ("stabilising curves all converge", Report.bool curves_ok);
            ("curve points", Report.int (List.length points));
            ("stock victims witnessed and replayed", Report.bool victims_ok);
            ("stenning search closed, no violation", Report.bool stn_closed);
            ( "stenning converges from corrupted starts",
              Report.bool stn_sweep.Stab.all_stabilised );
          ];
      }
  in
  let ok = curves_ok && victims_ok && stn_closed && not stn_sweep.Stab.all_stabilised in
  Report.make ~id:"E17"
    ~title:"Stabilisation beyond ABP: family scaling curves and per-family witnesses" ~ok
    ~notes:
      [
        Printf.sprintf
          "positive half: worst-case time-to-stabilise for each stabilising family over \
           alphabet sizes m in {%s} and input lengths n in {%s} (within=%d); every \
           corrupted start must converge"
          (String.concat "," (List.map string_of_int domains))
          (String.concat "," (List.map string_of_int lens))
          within;
        Printf.sprintf
          "negative half: capped BFS (sends<=%d/side, depth<=%d) over each stock \
           family's corrupted roots; every aliasing family yields a replayed violation \
           witness, relabel-replayed where the enumeration is data-independent"
          max_sends depth;
        "control: stock stenning closes clean (unbounded headers are safe from any \
         start) yet fails to converge — forward-only acks cannot rewind a corrupted \
         cursor, the liveness half of the stabilisation bound";
      ]
    [ checks; Report.finish ct; Report.finish vt ]

let () =
  Kernel.Registry.register_experiment ~id:"E17"
    ~doc:"stabilisation scaling curves and witnesses across the bounded-counter families"
    ~quick:(fun () -> report ())
    ~full:(fun () ->
      report ~within:512 ~max_steps:60_000 ~max_sends:5 ~lens:[ 2; 3; 4; 5 ] ())

(** Batch verification harness: a protocol against an allowable set.

    Runs every sequence of [𝒳] under a battery of schedules and
    aggregates verdicts — the positive side of the experiments
    ("the §3 protocol really does transmit all [α(m)] repetition-free
    sequences", E1) and the workload driver for the throughput sweep
    (E7). *)

type spec = {
  strategies : Kernel.Strategy.t list;
  seeds : int list;  (** each strategy runs once per seed *)
  max_steps : int;
}

val default_spec : ?max_steps:int -> ?n_seeds:int -> unit -> spec
(** Fair-random plus round-robin plus newest-first, seeds [1..n_seeds]
    (default 5), [max_steps] default 20_000. *)

type failure = {
  input : int list;
  strategy_name : string;
  seed : int;
  verdict : Verdict.t;
}

type report = {
  protocol_name : string;
  runs : int;
  safe_runs : int;
  complete_runs : int;
  audit_failures : int;
      (** runs whose final channel counters failed the Property-1
          model audit ({!Kernel.Audit}) — always 0 unless the
          simulator itself is broken, which is exactly why it is
          checked on every run *)
  failures : failure list;
      (** runs that were unsafe or incomplete, in chronological order
          (the order the harness executed them); possibly truncated to
          the [max_failures] earliest *)
  failures_total : int;  (** failing runs encountered, never truncated *)
  steps : Stdx.Stats.summary option;  (** over completed runs *)
  messages : Stdx.Stats.summary option;
  messages_per_item : Stdx.Stats.summary option;
}

val verify :
  Kernel.Protocol.t -> xs:int list list -> ?max_failures:int -> ?jobs:int -> spec -> report
(** Every input × strategy × seed, executed as one {!Batch} of
    scheduler sessions; results are folded in the historical
    chronological order, so the report is bit-identical at every
    [jobs] count.  [jobs] defaults to 1 — {e not} [STP_JOBS] — because
    {!Census} runs verify from inside a [Par.map] task and batches do
    not nest; pass [~jobs] explicitly (the CLI's [--jobs]) to fan out.
    [max_failures] caps how many failure records are retained (the
    earliest ones); the [failures_total] count and the [clean] verdict
    are unaffected, and {!to_report} notes the truncation. *)

val verify_one :
  Kernel.Protocol.t -> input:int list -> spec -> Verdict.t list
(** All verdicts for a single input. *)

val clean : report -> bool
(** No failures and no audit violations at all. *)

val pp_report : Format.formatter -> report -> unit

val to_report : report -> Stdx.Report.t
(** The report as typed IR (id ["verify"]): a metrics block, the
    failure table when non-empty, and a truncation note when
    [max_failures] dropped records. *)

(** Scheduler batches sharded over the domain pool.

    {!Kernel.Sched} timeslices many sessions inside one domain; this
    module is the multicore face: split a session list into [jobs]
    contiguous shards, drive each shard as its own scheduler queue on
    a {!Par} worker, and concatenate the results back in input order.
    Because sessions are independent (see the determinism note in
    {!Kernel.Sched}), every job count and every timeslice produces the
    identical result list — the deterministic-interleaving tests pin
    jobs 1/2/4/7 against sequential {!Kernel.Runner.run} calls.

    Job count resolution matches {!Par.map}: an explicit [~jobs] wins,
    otherwise [STP_JOBS], otherwise 1.  Like [Par.map], batches are
    not nestable — a task already running on the pool must pass
    [~jobs:1] (as {!Harness.verify} defaults to, since {!Census} calls
    it from inside a sweep). *)

val shard : jobs:int -> 'a list -> 'a list list
(** Split into at most [jobs] contiguous runs whose lengths differ by
    at most one, preserving order; [List.concat (shard ~jobs xs) = xs].
    Exposed for engines that need chunk-aligned bookkeeping. *)

val run_stats :
  ?jobs:int ->
  ?timeslice:int ->
  Kernel.Sched.session list ->
  Kernel.Sched.result list * Kernel.Sched.stats
(** Results in input order plus the merged telemetry of all shards. *)

val run :
  ?jobs:int -> ?timeslice:int -> Kernel.Sched.session list -> Kernel.Sched.result list

module Chan = Channel.Chan
module Global = Kernel.Global
module Move = Kernel.Move
module Sim = Kernel.Sim
module Proc = Kernel.Proc
module Protocol = Kernel.Protocol

type recoverability = {
  states : int;
  completed : int;
  dead : int;
  frontier : int;
  closed : bool;
}

let recoverability (p : Protocol.t) ~input ?(depth = 80) ?(max_states = 200_000)
    ?(max_sends_per_sender = 12) ?(max_sends_per_receiver = 12) ?allow_drops () =
  let allow_drops =
    match allow_drops with Some b -> b | None -> Chan.deletes p.Protocol.channel
  in
  let keep (g : Global.t) = function
    | Move.Wake_sender -> Chan.sent_total g.Global.chan_sr < max_sends_per_sender
    | Move.Wake_receiver -> Chan.sent_total g.Global.chan_rs < max_sends_per_receiver
    | Move.Drop_to_receiver _ | Move.Drop_to_sender _ -> allow_drops
    | Move.Deliver_to_receiver _ | Move.Deliver_to_sender _ -> true
    | Move.Restart_sender | Move.Restart_receiver | Move.Corrupt_sender _
    | Move.Corrupt_receiver _ ->
        false
  in
  (* Forward exploration, remembering each state's successors.  States
     are keyed by interned ids of their binary fingerprints (emitted
     into one reusable codec buffer), so the fingerprint bytes are
     hashed once per generated state and the graph plumbing below —
     successor lists, reversed edges, mark queues — is all over ints.
     The send caps keep deleting channels finite but also hide
     behaviours (a retransmitting sender is not really out of copies),
     so states where the cap filtered a move are marked capped: they
     and their ancestors must not be declared dead. *)
  let intern = Stdx.Intern.create ~size:4096 () in
  let scratch = Stdx.Codec.create ~size:256 () in
  let gid g =
    Stdx.Codec.reset scratch;
    Global.emit scratch g;
    fst
      (Stdx.Intern.intern_bytes intern (Stdx.Codec.buffer scratch) ~pos:0
         ~len:(Stdx.Codec.length scratch))
  in
  let nodes :
      (int, Global.t * int list * bool (* fully expanded *) * bool (* capped *)) Hashtbl.t =
    Hashtbl.create 4096
  in
  (* (key, depth) pairs varint-packed into chunked buffers — no boxed
     queue cells or tuples on the BFS hot path. *)
  let queue = Stdx.Frontier.create () in
  let g0 = Global.initial p ~input:(Array.of_list input) in
  let key0 = gid g0 in
  Hashtbl.replace nodes key0 (g0, [], false, false);
  Stdx.Frontier.push2 queue key0 0;
  let truncated = ref false in
  while not (Stdx.Frontier.is_empty queue) do
    let key, d = Stdx.Frontier.pop2 queue in
    let g, _, _, _ = Hashtbl.find nodes key in
    if d >= depth then truncated := true
    else begin
      let capped = ref false in
      let succs =
        List.filter_map
          (fun move ->
            if not (keep g move) then begin
              capped := true;
              None
            end
            else begin
              let g' = Sim.apply p g move in
              let key' = gid g' in
              if not (Hashtbl.mem nodes key') then begin
                if Hashtbl.length nodes >= max_states then begin
                  truncated := true;
                  None
                end
                else begin
                  Hashtbl.replace nodes key' (g', [], false, false);
                  Stdx.Frontier.push2 queue key' (d + 1);
                  Some key'
                end
              end
              else Some key'
            end)
          (Sim.enabled p g)
      in
      let _, _, _, was_capped = Hashtbl.find nodes key in
      Hashtbl.replace nodes key (g, succs, true, was_capped || !capped)
    end
  done;
  (* Backward marking over reversed edges: which states can still
     complete, and which are tainted by a cap (they, or something they
     can reach, had behaviour hidden by the budget). *)
  let preds : (int, int list) Hashtbl.t = Hashtbl.create 4096 in
  Hashtbl.iter
    (fun key (_, succs, _, _) ->
      List.iter
        (fun s ->
          Hashtbl.replace preds s (key :: Option.value ~default:[] (Hashtbl.find_opt preds s)))
        succs)
    nodes;
  (* Interned ids are dense, so each mark set is a bitset — one bit per
     state instead of a unit hash table entry. *)
  let mark seed_of =
    let marked = Stdx.Bitset.create ~size:(Hashtbl.length nodes) () in
    let q = Stdx.Frontier.create () in
    Hashtbl.iter
      (fun key node ->
        if seed_of key node then begin
          ignore (Stdx.Bitset.add marked key : bool);
          Stdx.Frontier.push q key
        end)
      nodes;
    while not (Stdx.Frontier.is_empty q) do
      let key = Stdx.Frontier.pop q in
      List.iter
        (fun p -> if Stdx.Bitset.add marked p then Stdx.Frontier.push q p)
        (Option.value ~default:[] (Hashtbl.find_opt preds key))
    done;
    marked
  in
  let can_complete = mark (fun _ (g, _, _, _) -> Global.complete g) in
  let tainted = mark (fun _ (_, _, expanded, capped) -> capped || not expanded) in
  let completed = ref 0 and dead = ref 0 and frontier = ref 0 in
  Hashtbl.iter
    (fun key (g, _, expanded, _) ->
      if Global.complete g then incr completed;
      if not expanded then incr frontier
      else if
        (not (Stdx.Bitset.mem can_complete key)) && not (Stdx.Bitset.mem tainted key)
      then incr dead)
    nodes;
  {
    states = Hashtbl.length nodes;
    completed = !completed;
    dead = !dead;
    frontier = !frontier;
    closed = not !truncated;
  }

let recoverable r = r.closed && r.dead = 0 && r.completed > 0

let receiver_deterministic (p : Protocol.t) ~trials =
  let fingerprint () = Proc.encode (p.Protocol.make_receiver ()) in
  let base = fingerprint () in
  List.for_all (fun _ -> String.equal (fingerprint ()) base) (List.init (max 0 (trials - 1)) Fun.id)

let pp_recoverability ppf r =
  Format.fprintf ppf "%d states (%d completed, %d dead, %d frontier, %s)" r.states r.completed
    r.dead r.frontier
    (if r.closed then "closed" else "truncated")

let recoverability_report ?protocol r =
  let module R = Stdx.Report in
  let pairs =
    (match protocol with Some p -> [ ("protocol", R.str p) ] | None -> [])
    @ [
        ("states", R.int r.states);
        ("completed", R.int r.completed);
        ("dead", R.int r.dead);
        ("frontier", R.int r.frontier);
        ("closed", R.bool r.closed);
        ("recoverable", R.bool (recoverable r));
      ]
  in
  R.make ~id:"recover" ~title:"dead-state (Property 2) analysis"
    ~ok:(recoverable r)
    [ R.Metrics { title = None; pairs } ]

module Alpha = Seqspace.Alpha
module Norep_seq = Seqspace.Norep
module Xset = Seqspace.Xset
module Delta = Seqspace.Delta
module Chan = Channel.Chan
module Strategy = Kernel.Strategy
module Runner = Kernel.Runner
module Report = Stdx.Report
module Stats = Stdx.Stats

type result = Report.t

let id (r : result) = r.Report.id
let title (r : result) = r.Report.title
let ok (r : result) = match r.Report.ok with Some b -> b | None -> false
let table (r : result) = Report.to_text_body r
let notes (r : result) = r.Report.notes

let pp_result ppf (r : result) =
  Format.fprintf ppf "@[<v>== %s: %s [%s]@,%s%a@]" (id r) (title r)
    (if ok r then "shape holds" else "SHAPE VIOLATED")
    (table r)
    (Format.pp_print_list (fun ppf n -> Format.fprintf ppf "note: %s@," n))
    (notes r)

(* ------------------------------------------------------------------ *)
(* E1: α(m) and tightness — the §3/§4 protocols transmit all α(m)
   repetition-free sequences. *)

let e1_alpha_tightness ?(m_max = 12) ?(m_verify = 3) ?(seeds = 3) () =
  let t =
    Report.table ~title:"E1: alpha(m) and exhaustive verification of the tight protocols"
      [
        ("m", Report.Right);
        ("alpha(m)", Report.Right);
        ("alpha/(e*m!)", Report.Right);
        ("dup verified", Report.Right);
        ("del verified", Report.Right);
      ]
  in
  let ok = ref true in
  let dup_spec =
    {
      Harness.strategies =
        [ Strategy.fair_random (); Strategy.round_robin; Strategy.dup_flood () ];
      seeds = List.init seeds (fun i -> i + 1);
      max_steps = 5_000;
    }
  in
  let del_spec =
    {
      Harness.strategies =
        [
          Strategy.fair_random ();
          Strategy.round_robin;
          Strategy.drop_first 2 (Strategy.fair_random ());
        ];
      seeds = List.init seeds (fun i -> i + 1);
      max_steps = 5_000;
    }
  in
  for m = 0 to m_max do
    let a = Alpha.alpha m in
    let ratio =
      match Stdx.Bignat.to_int a with
      | Some v -> Printf.sprintf "%.4f" (float_of_int v /. Alpha.e_times_fact m)
      | None -> "~1"
    in
    let verify spec make =
      if m > m_verify then "-"
      else begin
        let xs = Norep_seq.enumerate ~m in
        let report = Harness.verify (make m) ~xs spec in
        if not (Harness.clean report) then ok := false;
        Printf.sprintf "%d/%d seqs, %d/%d runs"
          (List.length xs
          - List.length
              (List.sort_uniq compare
                 (List.map (fun f -> f.Harness.input) report.Harness.failures)))
          (List.length xs) report.Harness.safe_runs report.Harness.runs
      end
    in
    Report.row t
      [
        Report.int m;
        Report.bignat a;
        Report.str ratio;
        Report.str (verify dup_spec (fun m -> Protocols.Norep.dup ~m));
        Report.str (verify del_spec (fun m -> Protocols.Norep.del ~m));
      ]
  done;
  Report.make ~id:"E1" ~title:"Theorem 1/2 tightness: alpha(m) sequences all transmitted"
    ~ok:!ok
    ~notes:
      [
        Printf.sprintf
          "exhaustive verification for m <= %d: every repetition-free sequence, %d seeds x 3 \
           schedules (incl. duplication flood resp. 2 deletions)"
          m_verify seeds;
        "alpha/(e*m!) -> 1: the bound is asymptotically e*m!";
      ]
    [ Report.finish t ]

(* ------------------------------------------------------------------ *)
(* Attack-row plumbing shared by E2 and E3. *)

let outcome_cell = function
  | Attack.Witness w ->
      let kind =
        match w.Attack.kind with
        | Attack.Safety { violated_run } -> Printf.sprintf "SAFETY(run %d)" violated_run
        | Attack.Starvation { starved_run } -> Printf.sprintf "STARVATION(run %d)" starved_run
      in
      (Printf.sprintf "%s @ depth %d" kind w.Attack.depth, `Witness)
  | Attack.No_violation { closed; states_explored } ->
      ( Printf.sprintf "none (%s, %d states)"
          (if closed then "space closed" else "truncated")
          states_explored,
        if closed then `Closed else `Truncated )

type expectation = Expect_witness | Expect_closed

let attack_table ~title rows =
  let t =
    Report.table ~title
      [
        ("protocol", Report.Left);
        ("|X| vs alpha(m)", Report.Left);
        ("search", Report.Left);
        ("outcome", Report.Left);
        ("as predicted", Report.Right);
      ]
  in
  let ok = ref true in
  List.iter
    (fun (name, xsize, search_kind, outcome, expectation) ->
      let cell, verdict = outcome_cell outcome in
      let good =
        match (expectation, verdict) with
        | Expect_witness, `Witness -> true
        | Expect_closed, `Closed -> true
        | Expect_witness, (`Closed | `Truncated) | Expect_closed, (`Witness | `Truncated) ->
            false
      in
      if not good then ok := false;
      Report.row t
        [ Report.str name; Report.str xsize; Report.str search_kind; Report.str cell;
          Report.bool good ])
    rows;
  (Report.finish t, !ok)

let first_outcome outcomes =
  (* Worst outcome across pairs: a witness dominates; otherwise a
     truncation dominates a closure. *)
  List.fold_left
    (fun acc (_, _, o) ->
      match (acc, o) with
      | Attack.Witness _, _ -> acc
      | _, Attack.Witness _ -> o
      | Attack.No_violation { closed = false; _ }, _ -> acc
      | _, Attack.No_violation { closed = false; _ } -> o
      | Attack.No_violation _, Attack.No_violation _ -> acc)
    (Attack.No_violation { closed = true; states_explored = 0 })
    outcomes

(* ------------------------------------------------------------------ *)
(* E2: Theorem 1 impossibility over reorder+dup. *)

let e2_dup_attacks ?(m = 2) () =
  let alpha_m = Alpha.alpha_exn m in
  let norep_xs = Norep_seq.enumerate ~m in
  let vs n = Printf.sprintf "%d vs %d" n alpha_m in
  let repeats_xs = [ []; [ 0 ]; [ 0; 0 ]; [ 1 ]; [ 1; 1 ] ] in
  let all_len2 = (Xset.All_upto { domain = m; max_len = 2 } |> Xset.to_list) in
  let rows = ref [] in
  let add row = rows := row :: !rows in
  (* 1. The tight protocol at the bound: every pair closes clean. *)
  let p_norep = Protocols.Norep.dup ~m in
  let outcomes, _ = Attack.search p_norep ~xs:norep_xs ~depth:200 () in
  add ("norep-dup (paper, Sec 3)", vs (List.length norep_xs), "all pairs", first_outcome outcomes, Expect_closed);
  (* 2. One sequence beyond the bound: a witness appears. *)
  let o2 = Attack.search_pair p_norep ~x1:[ 0; 1 ] ~x2:[ 0; 0 ] ~depth:200 () in
  add ("norep-dup + <0 0>", vs (List.length norep_xs + 1), "pair <0 1>/<0 0>", o2, Expect_witness);
  (* 3. The coded protocol moves the *same* bound onto a repeat-ful X. *)
  (match Protocols.Coded.dup ~m ~xs:repeats_xs with
  | Ok p ->
      let outcomes, _ = Attack.search p ~xs:repeats_xs ~depth:200 () in
      add
        ( "coded-dup on repeats",
          vs (List.length repeats_xs),
          "all pairs",
          first_outcome outcomes,
          Expect_closed )
  | Error _ -> add ("coded-dup on repeats", vs (List.length repeats_xs), "build", Attack.No_violation { closed = false; states_explored = 0 }, Expect_closed));
  (* 4. Counting: claims all sequences; reordering kills it. *)
  let p_count = Protocols.Counting.protocol_on Chan.Reorder_dup ~domain:m in
  add
    ( "counting",
      "all seqs (> alpha)",
      "pair <0 1>/<1 0>",
      Attack.search_pair p_count ~x1:[ 0; 1 ]
        ~x2:[ 1; 0 ] ~depth:64 (),
      Expect_witness );
  (* 5. Counting with retransmission: duplication kills it. *)
  let p_resend = Protocols.Counting.resend Chan.Reorder_dup ~domain:m in
  add
    ( "counting-resend",
      "all seqs (> alpha)",
      "single <0 1>",
      Attack.search_single p_resend ~x:[ 0; 1 ] ~depth:64 (),
      Expect_witness );
  (* 6. Alternating Bit under reordering+duplication. *)
  let p_abp = Protocols.Abp.protocol_on Chan.Reorder_dup ~domain:m in
  add
    ( "abp",
      "all seqs (> alpha)",
      "single <0 0>",
      Attack.search_single p_abp ~x:[ 0; 0 ] ~depth:64 (),
      Expect_witness );
  (* 7. Stenning with bounded headers: the LMF88 victim. *)
  let p_smod = Protocols.Stenning_mod.protocol_on Chan.Reorder_dup ~domain:m ~header_space:2 in
  add
    ( "stenning-mod (h=2)",
      "all seqs (> alpha)",
      "single <0 1 0 1>",
      Attack.search_single p_smod ~x:[ 0; 1; 0; 1 ] ~depth:64 (),
      Expect_witness );
  (* 8. Go-Back-N: a window buys pipelining, not immunity — its
     headers are still finite. *)
  let p_gbn = Protocols.Go_back_n.protocol_on Chan.Reorder_dup ~domain:m ~window:2 in
  add
    ( "go-back-2",
      "all seqs (> alpha)",
      "single <0 1 1 1>",
      Attack.search_single p_gbn ~x:[ 0; 1; 1; 1 ] ~depth:64 (),
      Expect_witness );
  (* 9. Stenning with true (unbounded) headers escapes the bound. *)
  let p_sten = Protocols.Stenning.protocol_on Chan.Reorder_dup ~domain:m ~max_len:2 in
  let outcomes, _ = Attack.search p_sten ~xs:all_len2 ~depth:200 () in
  add
    ( "stenning (unbounded headers)",
      Printf.sprintf "%d, alphabet grows" (List.length all_len2),
      "all pairs",
      first_outcome outcomes,
      Expect_closed );
  (* The coded protocol *cannot* be built past the bound: the trie runs
     out of symbols — the combinatorial face of Theorem 1. *)
  let over_xs = Xset.to_list (Xset.All_upto { domain = m; max_len = 2 }) in
  let code_fails =
    match Protocols.Coded.dup ~m ~xs:over_xs with Ok _ -> false | Error _ -> true
  in
  let table, rows_ok = attack_table ~title:"E2: attacks over reorder+dup" (List.rev !rows) in
  Report.make ~id:"E2" ~title:"Theorem 1 impossibility: |X| > alpha(m) breaks every candidate"
    ~ok:(rows_ok && code_fails)
    ~notes:
      [
        Printf.sprintf "m = %d, alpha(m) = %d" m alpha_m;
        Printf.sprintf
          "mu-code construction for all %d sequences of length <= 2 over %d symbols: %s (no \
           repetition-free prefix-monotone code exists beyond alpha(m))"
          (List.length over_xs) m
          (if code_fails then "fails as predicted" else "UNEXPECTEDLY SUCCEEDED");
        "witness kinds: SAFETY = receiver writes data violating the input prefix; STARVATION = \
         fair-for-one-run cycle in the closed joint graph that never writes past the common \
         prefix";
      ]
    [ table ]

(* ------------------------------------------------------------------ *)
(* E3: Theorem 2 impossibility over reorder+del (bounded candidates). *)

let e3_del_attacks ?(m = 2) ?(f_const = 4) () =
  let alpha_m = Alpha.alpha_exn m in
  let norep_xs = Norep_seq.enumerate ~m in
  let vs n = Printf.sprintf "%d vs %d" n alpha_m in
  let repeats_xs = [ []; [ 0 ]; [ 0; 0 ]; [ 1 ]; [ 1; 1 ] ] in
  let caps = (4, 4) in
  let cap_s, cap_r = caps in
  let rows = ref [] in
  let add row = rows := row :: !rows in
  let p_norep = Protocols.Norep.del ~m in
  let outcomes, _ =
    Attack.search p_norep ~xs:norep_xs ~depth:200 ~max_sends_per_sender:cap_s
      ~max_sends_per_receiver:cap_r ()
  in
  add ("norep-del (paper, Sec 4)", vs (List.length norep_xs), "all pairs", first_outcome outcomes, Expect_closed);
  let o2 =
    Attack.search_pair p_norep ~x1:[ 0; 1 ] ~x2:[ 0; 0 ] ~depth:200 ~max_sends_per_sender:cap_s
      ~max_sends_per_receiver:cap_r ()
  in
  add ("norep-del + <0 0>", vs (List.length norep_xs + 1), "pair <0 1>/<0 0>", o2, Expect_witness);
  (match Protocols.Coded.del ~m ~xs:repeats_xs with
  | Ok p ->
      let outcomes, _ =
        Attack.search p ~xs:repeats_xs ~depth:200 ~max_sends_per_sender:cap_s
          ~max_sends_per_receiver:cap_r ()
      in
      add
        ( "coded-del on repeats",
          vs (List.length repeats_xs),
          "all pairs",
          first_outcome outcomes,
          Expect_closed )
  | Error _ ->
      add
        ( "coded-del on repeats",
          vs (List.length repeats_xs),
          "build",
          Attack.No_violation { closed = false; states_explored = 0 },
          Expect_closed ));
  let p_count = Protocols.Counting.protocol_on Chan.Reorder_del ~domain:m in
  add
    ( "counting",
      "all seqs (> alpha)",
      "pair <0 1>/<1 0>",
      Attack.search_pair p_count ~x1:[ 0; 1 ] ~x2:[ 1; 0 ] ~depth:64 (),
      Expect_witness );
  let p_resend = Protocols.Counting.resend Chan.Reorder_del ~domain:m in
  add
    ( "counting-resend",
      "all seqs (> alpha)",
      "single <0 1>",
      Attack.search_single p_resend ~x:[ 0; 1 ] ~depth:64 ~max_sends_per_sender:6
        ~max_sends_per_receiver:6 (),
      Expect_witness );
  let p_smod = Protocols.Stenning_mod.protocol_on Chan.Reorder_del ~domain:m ~header_space:2 in
  add
    ( "stenning-mod (h=2)",
      "all seqs (> alpha)",
      "single <0 1 0 1>",
      Attack.search_single p_smod ~x:[ 0; 1; 0; 1 ] ~depth:64 ~max_sends_per_sender:8
        ~max_sends_per_receiver:8 (),
      Expect_witness );
  let p_gbn = Protocols.Go_back_n.protocol_on Chan.Reorder_del ~domain:m ~window:2 in
  add
    ( "go-back-2",
      "all seqs (> alpha)",
      "single <0 1 1 1>",
      Attack.search_single p_gbn ~x:[ 0; 1; 1; 1 ] ~depth:64 ~max_sends_per_sender:8
        ~max_sends_per_receiver:8 (),
      Expect_witness );
  let table, rows_ok = attack_table ~title:"E3: attacks over reorder+del" (List.rev !rows) in
  (* The ladder protocol shows the *unbounded* escape hatch exists. *)
  let xset = Xset.All_upto { domain = 2; max_len = 2 } in
  let p_ladder = Protocols.Ladder.protocol ~xset ~drop_budget:1 in
  let ladder_report =
    Harness.verify p_ladder ~xs:(Xset.to_list xset)
      {
        Harness.strategies =
          [ Strategy.fair_random (); Strategy.drop_first 1 (Strategy.fair_random ()) ];
        seeds = [ 1; 2; 3 ];
        max_steps = 20_000;
      }
  in
  let ladder_ok = Harness.clean ladder_report in
  (* Lemma 4's resource: the delta recursion. *)
  let dt =
    Report.table ~title:(Printf.sprintf "Lemma 4 resource: delta_l for f(i)=%d" f_const)
      [ ("l", Report.Right); ("delta_l", Report.Right) ]
  in
  let beta = 2 (* norep sequences over m=2 are identified by 2 prefixes *) in
  let c = Delta.c_of_f ~f:(fun _ -> f_const) ~beta in
  Array.iteri
    (fun l d -> Report.row dt [ Report.int l; Report.bignat d ])
    (Delta.deltas ~m ~c);
  Report.make ~id:"E3" ~title:"Theorem 2 impossibility: no bounded solution beyond alpha(m)"
    ~ok:(rows_ok && ladder_ok)
    ~notes:
      [
        Printf.sprintf "m = %d, alpha(m) = %d; send caps %d/%d make the joint spaces finite" m
          alpha_m cap_s cap_r;
        Printf.sprintf
          "unbounded escape (AFWZ89 role, here the counting ladder): %s on all sequences of \
           length <= 2 under <= 1 deletion"
          (if ladder_ok then "verified live and safe" else "FAILED");
        Printf.sprintf "c = sum f(i) over i <= beta = %d" c;
      ]
    [ table; Report.finish dt ]

(* ------------------------------------------------------------------ *)
(* E4: boundedness profiles (Definition 2). *)

let e4_boundedness ?(domain = 3) ?(max_len = 3) ?(seeds = 4) () =
  let seed_list = List.init seeds (fun i -> i + 1) in
  (* Bounded: the paper's del protocol over every repetition-free
     sequence of length <= max_len. *)
  let norep_inputs =
    List.filter (fun x -> List.length x <= max_len && x <> []) (Norep_seq.enumerate ~m:domain)
  in
  let bounded =
    Bounds.measure (Protocols.Norep.del ~m:domain) ~xs:norep_inputs
      ~strategy:(Strategy.fair_random ()) ~seeds:seed_list ~max_steps:3_000 ()
  in
  (* Unbounded: the ladder over all sequences of length <= max_len. *)
  let xset = Xset.All_upto { domain = 2; max_len } in
  let ladder_inputs = List.filter (fun x -> x <> []) (Xset.to_list xset) in
  let unbounded =
    Bounds.measure
      (Protocols.Ladder.protocol ~xset ~drop_budget:1)
      ~xs:ladder_inputs ~strategy:(Strategy.fair_random ()) ~seeds:seed_list ~max_steps:20_000
      ~post_roll:60 ()
  in
  let t =
    Report.table ~title:"E4: max learning gap max_i (t_i - t_{i-1}) by input length"
      [
        ("|X|", Report.Right);
        ("norep-del gap (mean)", Report.Right);
        ("norep-del gap (max)", Report.Right);
        ("ladder gap (mean)", Report.Right);
        ("ladder gap (max)", Report.Right);
      ]
  in
  let b_series = Bounds.gap_by_length bounded in
  let u_series = Bounds.gap_by_length unbounded in
  let lens =
    List.sort_uniq Int.compare (List.map fst b_series @ List.map fst u_series)
  in
  let cell series len f =
    match List.assoc_opt len series with
    | Some s -> Report.float (f s)
    | None -> Report.str "-"
  in
  List.iter
    (fun len ->
      Report.row t
        [
          Report.int len;
          cell b_series len (fun s -> s.Stats.mean);
          cell b_series len (fun s -> s.Stats.max);
          cell u_series len (fun s -> s.Stats.mean);
          cell u_series len (fun s -> s.Stats.max);
        ])
    lens;
  let slope series = Bounds.growth_slope (List.map (fun (l, s) -> (l, s.Stats.mean)) series) in
  let b_slope = slope b_series and u_slope = slope u_series in
  Report.sep t;
  Report.row t
    [ Report.str "slope"; Report.float b_slope; Report.str "-"; Report.float u_slope;
      Report.str "-" ];
  let ok = u_slope > (2.0 *. Float.max 1.0 b_slope) +. 2.0 in
  Report.make ~id:"E4" ~title:"Definition 2: bounded vs unbounded learning-gap profiles" ~ok
    ~notes:
      [
        "learning times are knowledge-based (t_i over a mixed-input sampled universe), not \
         write-based";
        Printf.sprintf "growth slopes: bounded %.2f vs unbounded %.2f — the unbounded \
                        protocol's gap grows with the input (through its rank), the bounded \
                        one's does not"
          b_slope u_slope;
      ]
    [ Report.finish t ]

(* ------------------------------------------------------------------ *)
(* E5: weak boundedness — recovery from a single fault (§5). *)

let e5_weak_boundedness ?(domain = 2) ?(max_len = 5) ?(seeds = 3) () =
  let seed_list = List.init seeds (fun i -> i + 1) in
  let fault_at = 6 in
  let alternating n = List.init n (fun i -> i mod domain) in
  let xset = Xset.All_upto { domain; max_len } in
  let hybrid =
    Protocols.Hybrid.protocol ~xset ~domain ~drop_budget:1 ~timeout:6 ()
  in
  let recovery p input strategy =
    let samples =
      List.filter_map
        (fun seed ->
          let r =
            Runner.run p ~input:(Array.of_list input) ~strategy ~rng:(Stdx.Rng.create seed)
              ~max_steps:200_000 ()
          in
          match Kernel.Trace.completed_at r.Runner.trace with
          | Some t when t > fault_at -> Some (float_of_int (t - fault_at))
          | Some _ | None -> None)
        seed_list
    in
    Stats.summarize samples
  in
  let t =
    Report.table ~title:"E5: steps to recover after one fault injected at t=6"
      [
        ("|X|", Report.Right);
        ("hybrid (weakly bounded)", Report.Right);
        ("norep-del (bounded)", Report.Right);
      ]
  in
  let hybrid_pts = ref [] and bounded_pts = ref [] in
  for n = 1 to max_len do
    let h_cell =
      match
        recovery hybrid (alternating n)
          (Strategy.drop_after ~at:fault_at 1 Strategy.round_robin)
      with
      | Some s ->
          hybrid_pts := (n, s.Stats.mean) :: !hybrid_pts;
          Report.float s.Stats.mean
      | None -> Report.str "-"
    in
    let b_cell =
      (* The bounded comparator needs a repetition-free input of length
         n, hence domain max_len. *)
      match
        recovery
          (Protocols.Norep.del ~m:max_len)
          (List.init n Fun.id)
          (Strategy.drop_after ~at:fault_at 1 (Strategy.fair_random ()))
      with
      | Some s ->
          bounded_pts := (n, s.Stats.mean) :: !bounded_pts;
          Report.float s.Stats.mean
      | None -> Report.str "-"
    in
    Report.row t [ Report.int n; h_cell; b_cell ]
  done;
  let h_slope = Bounds.growth_slope !hybrid_pts in
  let b_slope = Bounds.growth_slope !bounded_pts in
  Report.sep t;
  Report.row t [ Report.str "slope"; Report.float h_slope; Report.float b_slope ];
  let ok = h_slope > (2.0 *. Float.max 1.0 b_slope) +. 2.0 in
  Report.make ~id:"E5" ~title:"Sec 5: the weakly-bounded hybrid never fully recovers cheaply"
    ~ok
    ~notes:
      [
        "recovery = completion time minus fault time; the hybrid's recovery transmits the rank \
         of the whole input through the ladder, so it grows with the sequence (here \
         exponentially in its length), while the bounded protocol resumes in O(1)";
        "a '-' cell means every run finished before the fault could land (short inputs \
         complete within the fault delay)";
        Printf.sprintf "slopes: hybrid %.2f vs bounded %.2f" h_slope b_slope;
      ]
    [ Report.finish t ]

(* ------------------------------------------------------------------ *)
(* E6: knowledge timelines (§2.3–2.4). *)

let e6_knowledge_timeline ?(m = 3) ?(seeds = 10) () =
  let xs = Norep_seq.enumerate ~m in
  let p = Protocols.Norep.dup ~m in
  let traces =
    List.concat_map
      (fun input ->
        List.concat_map
          (fun strategy ->
            List.map
              (fun seed ->
                (Runner.run p ~input:(Array.of_list input) ~strategy
                   ~rng:(Stdx.Rng.create seed) ~max_steps:600 ~post_roll:30 ())
                  .Runner.trace)
              (List.init seeds (fun i -> i + 1)))
          [ Strategy.fair_random (); Strategy.round_robin ])
      xs
  in
  let u = Knowledge.Universe.of_traces traces in
  let full = Norep_seq.longest ~m in
  let t =
    Report.table
      ~title:
        (Format.asprintf "E6: learning vs writing for input %a (norep-dup, m=%d)"
           Xset.pp_sequence full m)
      [
        ("i", Report.Right);
        ("t_i (learn, p50)", Report.Right);
        ("write_i (p50)", Report.Right);
        ("lead (p50)", Report.Right);
      ]
  in
  let tarr = Knowledge.Universe.traces u in
  let runs_of_full =
    List.filter
      (fun i -> Array.to_list (Kernel.Trace.input tarr.(i)) = full)
      (List.init (Array.length tarr) Fun.id)
  in
  let ok = ref (runs_of_full <> []) in
  let stab_ok = ref true in
  let lead_nonneg = ref true in
  for i = 1 to List.length full do
    let learns = ref [] and writes = ref [] and leads = ref [] in
    List.iter
      (fun run ->
        let lt = Knowledge.Learn.learning_times u ~run in
        let wt = Knowledge.Learn.write_times u ~run in
        (match lt.(i - 1) with Some v -> learns := float_of_int v :: !learns | None -> ok := false);
        (match wt.(i - 1) with Some v -> writes := float_of_int v :: !writes | None -> ok := false);
        match (lt.(i - 1), wt.(i - 1)) with
        | Some l, Some w ->
            leads := float_of_int (w - l) :: !leads;
            if w < l then lead_nonneg := false
        | _ -> ())
      runs_of_full;
    let p50 xs =
      match Stats.summarize xs with Some s -> Report.float s.Stats.p50 | None -> Report.str "-"
    in
    Report.row t [ Report.int i; p50 !learns; p50 !writes; p50 !leads ]
  done;
  List.iter
    (fun run -> if not (Knowledge.Learn.stability_ok u ~run) then stab_ok := false)
    runs_of_full;
  let ok = !ok && !stab_ok && !lead_nonneg in
  Report.make ~id:"E6" ~title:"Knowledge timelines: t_i is well-defined, stable, and precedes writing"
    ~ok
    ~notes:
      [
        Printf.sprintf "universe: %d traces, %d points, %d distinct receiver views"
          (Array.length tarr) (Knowledge.Universe.n_points u) (Knowledge.Universe.n_classes u);
        Printf.sprintf "K_R(x_i) stability audit: %s" (if !stab_ok then "holds" else "VIOLATED");
        Printf.sprintf "knowledge precedes writing in every run: %s"
          (if !lead_nonneg then "holds" else "VIOLATED");
        "sampled universe: computed knowledge over-approximates true knowledge; the stability \
         and ordering checks are sound regardless";
      ]
    [ Report.finish t ]

(* ------------------------------------------------------------------ *)
(* E7: throughput / cost context. *)

let e7_throughput ?(seeds = 3) ?(max_len = 3) () =
  let seed_list = List.init seeds (fun i -> i + 1) in
  let t =
    Report.table ~title:"E7: protocol cost (messages and steps per delivered item)"
      [
        ("protocol", Report.Left);
        ("channel", Report.Left);
        ("|M_S|", Report.Right);
        ("|M_R|", Report.Right);
        ("runs", Report.Right);
        ("clean", Report.Right);
        ("msgs/item", Report.Right);
        ("steps", Report.Right);
      ]
  in
  let ok = ref true in
  let row p xs strategies =
    let report =
      Harness.verify p ~xs { Harness.strategies; seeds = seed_list; max_steps = 100_000 }
    in
    if not (Harness.clean report) then ok := false;
    let fcell f =
      match f with Some (s : Stats.summary) -> Report.float s.Stats.mean | None -> Report.str "-"
    in
    Report.row t
      [
        Report.str p.Kernel.Protocol.name;
        Report.str (Chan.kind_name p.Kernel.Protocol.channel);
        Report.int p.Kernel.Protocol.sender_alphabet;
        Report.int p.Kernel.Protocol.receiver_alphabet;
        Report.int report.Harness.runs;
        Report.bool (Harness.clean report);
        fcell report.Harness.messages_per_item;
        fcell report.Harness.steps;
      ]
  in
  let norep3 = List.filter (fun x -> x <> []) (Norep_seq.enumerate ~m:3) in
  let all_seqs = List.filter (fun x -> x <> []) (Xset.to_list (Xset.All_upto { domain = 2; max_len })) in
  row (Protocols.Trivial.protocol ~domain:3) all_seqs [ Strategy.round_robin ];
  row (Protocols.Abp.protocol ~domain:2) all_seqs
    [ Strategy.drop_rate 0.15 (Strategy.fair_random ()) ];
  row
    (Protocols.Go_back_n.protocol ~domain:2 ~window:3)
    all_seqs
    [ Strategy.drop_rate 0.15 (Strategy.fair_random ()) ];
  row
    (Protocols.Selective_repeat.protocol ~domain:2 ~window:3)
    all_seqs
    [ Strategy.drop_rate 0.15 (Strategy.fair_random ()) ];
  row (Protocols.Norep.dup ~m:3) norep3 [ Strategy.dup_flood (); Strategy.fair_random () ];
  row (Protocols.Norep.del ~m:3) norep3
    [ Strategy.drop_first 2 (Strategy.fair_random ()) ];
  (match Protocols.Coded.dup ~m:2 ~xs:[ []; [ 0 ]; [ 0; 0 ]; [ 1 ]; [ 1; 1 ] ] with
  | Ok p -> row p [ [ 0 ]; [ 0; 0 ]; [ 1 ]; [ 1; 1 ] ] [ Strategy.fair_random () ]
  | Error _ -> ok := false);
  row
    (Protocols.Stenning.protocol ~domain:2 ~max_len)
    all_seqs
    [ Strategy.drop_rate 0.15 (Strategy.fair_random ()) ];
  let xset = Xset.All_upto { domain = 2; max_len = min 2 max_len } in
  row
    (Protocols.Ladder.protocol ~xset ~drop_budget:1)
    (List.filter (fun x -> x <> []) (Xset.to_list xset))
    [ Strategy.fair_random (); Strategy.drop_first 1 (Strategy.fair_random ()) ];
  row
    (Protocols.Hybrid.protocol ~xset ~domain:2 ~drop_budget:1 ~timeout:6 ())
    (List.filter (fun x -> x <> []) (Xset.to_list xset))
    [ Strategy.round_robin; Strategy.drop_after ~at:6 1 Strategy.round_robin ];
  Report.make ~id:"E7" ~title:"Cost context: what the alpha(m) bound buys and what escaping it costs"
    ~ok:!ok
    ~notes:
      [
        "Stenning escapes the bound with an alphabet that grows with the input; the ladder \
         escapes it with traffic that grows with the input's rank; the tight protocols stay \
         at m symbols and O(1) messages per item";
      ]
    [ Report.finish t ]

(* ------------------------------------------------------------------ *)
(* E8: probabilistic X-STP — the §6 future-work question. *)

let e8_probabilistic ?(trials = 40) ?(max_len = 5) () =
  let t =
    Report.table
      ~title:"E8: Monte-Carlo failure probability under random (non-adversarial) schedules"
      [
        ("|X|", Report.Right);
        ("counting-resend p_fail", Report.Right);
        ("  of which safety", Report.Right);
        ("norep-dup p_fail", Report.Right);
        ("norep 95% upper", Report.Right);
      ]
  in
  let strategy = Strategy.fair_random () in
  let over = Protocols.Counting.resend Chan.Reorder_dup ~domain:2 in
  let at_bound = Protocols.Norep.dup ~m:max_len in
  let rng = Stdx.Rng.create 99 in
  let over_pts = ref [] in
  let norep_zero = ref true in
  for n = 1 to max_len do
    (* A few random inputs of length n over {0,1} for the over-bound
       protocol; the repetition-free prefix of the same length for the
       tight one. *)
    let over_inputs =
      List.init 3 (fun _ -> List.init n (fun _ -> Stdx.Rng.int rng 2))
    in
    let eo =
      Proba.failure_by_length over ~inputs:over_inputs ~strategy ~trials ~max_steps:4_000 ()
    in
    let en =
      Proba.estimate at_bound ~input:(List.init n Fun.id) ~strategy ~trials:(trials * 3)
        ~max_steps:4_000 ()
    in
    if en.Proba.p_fail > 0.0 then norep_zero := false;
    let o = match eo with [ (_, e) ] -> e | _ -> assert false in
    over_pts := (n, o.Proba.p_fail) :: !over_pts;
    Report.row t
      [
        Report.int n;
        Report.float o.Proba.p_fail;
        Report.float o.Proba.p_safety;
        Report.float en.Proba.p_fail;
        Report.float ~decimals:3 en.Proba.wilson_upper;
      ]
  done;
  let p_first = List.assoc 1 !over_pts and p_last = List.assoc max_len !over_pts in
  let ok = !norep_zero && p_last > 0.5 && p_last >= p_first in
  Report.make ~id:"E8"
    ~title:"Sec 6 extension: low-probability-of-failure solutions do not come free" ~ok
    ~notes:
      [
        "the paper's Sec 6 asks whether |X| > alpha(m) becomes acceptable if failures are \
         merely improbable; under a *random* fair schedule the over-bound protocol's failure \
         probability is already large and grows with the input, while the tight protocol's \
         failure set is empty (p = 0 with the shown 95% Wilson upper bound)";
        Printf.sprintf "counting-resend p_fail: %.2f at |X|=1 -> %.2f at |X|=%d" p_first p_last
          max_len;
      ]
    [ Report.finish t ]

(* ------------------------------------------------------------------ *)
(* E9: protocol-space census at m = 1. *)

let e9_census ?(samples = 300) ?(states = 3) () =
  let control_clean = Census.control_is_clean () in
  let r = Census.run ~samples ~states () in
  let t =
    Report.table
      ~title:
        (Printf.sprintf
           "E9: census of %d random non-uniform protocols (m=1, |X|=3 > alpha(1)=2, %d states)"
           samples states)
      [ ("classification", Report.Left); ("count", Report.Right) ]
  in
  Report.row t [ Report.str "broken directly (battery)"; Report.int r.Census.broken_directly ];
  Report.row t [ Report.str "witnessed (attack search)"; Report.int r.Census.witnessed ];
  Report.row t [ Report.str "undecided (truncated)"; Report.int r.Census.undecided ];
  Report.row t [ Report.str "SURVIVORS (would refute Thm 1)"; Report.int r.Census.survivors ];
  Report.sep t;
  Report.row t [ Report.str "control at the bound clean"; Report.bool control_clean ];
  Report.make ~id:"E9" ~title:"Theorem 1 universality probe: no sampled protocol survives"
    ~ok:(Census.ok r && control_clean)
    ~notes:
      [
        "every sampled candidate for {<>, <0>, <1>}-STP(dup) fails; the hand-written control \
         at |X| = alpha(1) = 2 passes the identical classifier, so the census machinery can \
         tell correct protocols from broken ones";
      ]
    [ Report.finish t ]

(* ------------------------------------------------------------------ *)
(* E10: the header/lag crossover on lag-bounded reordering channels. *)

let e10_crossover ?(h_max = 4) ?(lag_max = 3) () =
  (* Stenning-mod with header space h over a channel whose copies can
     overtake at most [lag] predecessors.  Prediction: a stale frame
     for item i can be accepted as item i+h only if it overtakes the
     h−1 intervening frames plus one fresh copy — possible iff
     lag >= h − 1.  So each column flips from witness to closed-clean
     exactly at h = lag + 2. *)
  let t =
    Report.table
      ~title:"E10: stenning-mod(h) over lag-bounded reordering — SAFETY witness or closed-clean"
      (("header space h", Report.Right)
      :: List.init (lag_max + 1) (fun k -> (Printf.sprintf "lag %d" k, Report.Left)))
  in
  let ok = ref true in
  for h = 1 to h_max do
    let input = List.init h (fun _ -> 0) @ [ 1 ] in
    let cells =
      List.init (lag_max + 1) (fun lag ->
          let p =
            Protocols.Stenning_mod.protocol_on (Chan.Bounded_reorder { lag }) ~domain:2
              ~header_space:h
          in
          (* Pure bounded reordering, no deletion: drops only inflate
             the joint space and the collision attack never needs
             them (retransmissions supply the stale copies). *)
          let cap = (2 * (h + 1)) + 2 in
          let outcome =
            Attack.search_single p ~x:input ~depth:150 ~max_sends_per_sender:cap
              ~max_sends_per_receiver:cap ~max_states:1_500_000 ~allow_drops:false ()
          in
          let expected_witness = lag >= h - 1 in
          match outcome with
          | Attack.Witness w ->
              if not expected_witness then ok := false;
              Report.str
                (Printf.sprintf "WITNESS@%d%s" w.Attack.depth
                   (if expected_witness then "" else " (!)"))
          | Attack.No_violation { closed = true; _ } ->
              if expected_witness then ok := false;
              Report.str (if expected_witness then "clean (!)" else "clean")
          | Attack.No_violation { closed = false; _ } ->
              ok := false;
              Report.str "truncated (!)")
    in
    Report.row t (Report.int h :: cells)
  done;
  (* Companion boundary: Selective Repeat's sequence space over plain
     FIFO-lossy must be at least 2·window — below that, a
     retransmitted frame from the old window is accepted into the new
     one.  Another exhaustive crossover, this one from the data-link
     textbooks rather than the lag axis. *)
  let sr =
    Report.table
      ~title:"E10b: selective repeat over fifo-lossy — sequence space M vs window w"
      [
        ("window w", Report.Right);
        ("M = w+1", Report.Left);
        ("M = 2w-1", Report.Left);
        ("M = 2w", Report.Left);
      ]
  in
  List.iter
    (fun w ->
      let input = List.init w (fun _ -> 0) @ [ 1; 1 ] in
      let cell modulus ~expect_witness =
        if modulus <= w then Report.str "-"
        else begin
          let p =
            Protocols.Selective_repeat.protocol_mod Chan.Fifo_lossy ~domain:2 ~window:w
              ~modulus
          in
          match
            Attack.search_single p ~x:input ~depth:120 ~max_sends_per_sender:12
              ~max_sends_per_receiver:12 ~max_states:800_000 ()
          with
          | Attack.Witness wtn ->
              if not expect_witness then ok := false;
              Report.str
                (Printf.sprintf "WITNESS@%d%s" wtn.Attack.depth
                   (if expect_witness then "" else " (!)"))
          | Attack.No_violation { closed = true; _ } ->
              if expect_witness then ok := false;
              Report.str (if expect_witness then "clean (!)" else "clean")
          | Attack.No_violation { closed = false; _ } ->
              ok := false;
              Report.str "truncated (!)"
        end
      in
      Report.row sr
        [
          Report.int w;
          cell (w + 1) ~expect_witness:(w + 1 < 2 * w);
          cell ((2 * w) - 1) ~expect_witness:((2 * w) - 1 < 2 * w && (2 * w) - 1 > w);
          cell (2 * w) ~expect_witness:false;
        ])
    [ 2; 3 ];
  Report.make ~id:"E10"
    ~title:"Header space vs reordering lag: the bound dissolves exactly at h = lag + 2" ~ok:!ok
    ~notes:
      [
        "the paper's theorems concern unbounded reordering; on lag-bounded channels \
         (interpolating towards the synchronous models of [AUY79, AUWY82]) finite headers \
         regain correctness once h > lag + 1 — each cell is an exhaustive joint-space verdict, \
         not a sampled one";
        "input for header space h is 0^h 1, making the first wrap-around collision a genuine \
         value error";
      ]
    [ Report.finish t; Report.finish sr ]

(* ------------------------------------------------------------------ *)
(* E11: the mutual-knowledge ladder — each level costs a round trip. *)

let e11_knowledge_ladder ?(m = 2) ?(seeds = 6) ?(depth = 5) () =
  let module F = Knowledge.Formula in
  let xs = Norep_seq.enumerate ~m in
  let p = Protocols.Norep.del ~m in
  let traces =
    List.concat_map
      (fun input ->
        List.map
          (fun seed ->
            (Runner.run p ~input:(Array.of_list input) ~strategy:(Strategy.fair_random ())
               ~rng:(Stdx.Rng.create seed) ~max_steps:2_000 ~post_roll:40 ())
              .Runner.trace)
          (List.init seeds (fun i -> i + 1)))
      xs
  in
  let u = Knowledge.Universe.of_traces traces in
  let tarr = Knowledge.Universe.traces u in
  let target = Norep_seq.longest ~m in
  let run =
    match
      List.find_opt
        (fun i -> Array.to_list (Kernel.Trace.input tarr.(i)) = target)
        (List.init (Array.length tarr) Fun.id)
    with
    | Some r -> r
    | None -> 0
  in
  (* φ = "the receiver has written the first item".  Level k of the
     ladder alternates K_S, K_R on top: K_S φ needs the first
     acknowledgement, K_R K_S φ needs evidence that acknowledgement
     arrived (the second item's message), and so on — one causal hop
     per level, until the input runs out of material and the next
     level becomes unattainable in any finite run. *)
  let phi = F.Fact (F.Output_ge 1) in
  let t =
    Report.table
      ~title:
        (Format.asprintf "E11: first time of nested knowledge of |Y|>=1 (norep-del, input %a)"
           Xset.pp_sequence target)
      [ ("formula", Report.Left); ("first time", Report.Right) ]
  in
  (* Level k wraps level k−1 so the outermost operator alternates
     K_S, K_R, K_S, … as k grows. *)
  let rec build k =
    if k = 0 then phi
    else begin
      let outer = if k mod 2 = 1 then F.Sender else F.Receiver in
      F.Knows (outer, build (k - 1))
    end
  in
  let times =
    List.init (depth + 1) (fun k ->
        let formula = build k in
        let table = F.tabulate u formula in
        let horizon = Kernel.Trace.length tarr.(run) in
        let rec scan time =
          if time > horizon then None
          else if table { Knowledge.Universe.run; time } then Some time
          else scan (time + 1)
        in
        (formula, scan 0))
  in
  List.iter
    (fun (formula, time) ->
      Report.row t
        [
          Report.str (Format.asprintf "%a" F.pp formula);
          (match time with
          | Some v -> Report.int v
          | None -> Report.str "never (in any sampled run)");
        ])
    times;
  (* The limit of the ladder: common knowledge, computed exactly as a
     greatest fixpoint on the universe.  It must hold nowhere — the
     time-0 points of all runs are receiver-indistinguishable and φ
     fails there, so no point's ~_S ∪ ~_R component is all-φ. *)
  let c_table = F.common u phi in
  let c_anywhere = List.exists (fun p -> c_table p) (Knowledge.Universe.points u) in
  Report.sep t;
  Report.row t
    [
      Report.str "C |Y|>=1 (common knowledge)";
      Report.str (if c_anywhere then "ATTAINED (!)" else "never, provably");
    ];
  (* Shape: every attained level is strictly later than its
     predecessor (one more causal hop each), and unattained levels
     only occur as a suffix.  At any fixed time only finitely many
     levels hold — common knowledge, the ω-limit of the ladder, is
     never attained at a point. *)
  let rec strictly_increasing prev = function
    | [] -> true
    | (_, Some v) :: rest -> v > prev && strictly_increasing v rest
    | (_, None) :: rest -> List.for_all (fun (_, t) -> t = None) rest
  in
  let attained = List.filter (fun (_, t) -> t <> None) times in
  let ok =
    strictly_increasing (-1) times && List.length attained >= 3 && not c_anywhere
  in
  Report.make ~id:"E11"
    ~title:"Knowledge ladder: each level of mutual knowledge costs a causal round trip" ~ok
    ~notes:
      [
        Printf.sprintf
          "universe: %d sampled runs over all %d repetition-free inputs (m=%d); ladder \
           evaluated on a run of the longest input"
          (Array.length tarr) (List.length xs) m;
        "strictly increasing attainment times: level k+1 needs one more acknowledgement hop \
         than level k; common knowledge — the ladder's limit, computed exactly as a greatest \
         fixpoint over the universe — holds at no point whatsoever";
      ]
    [ Report.finish t ]

(* ------------------------------------------------------------------ *)
(* E12: recoverability — the executable face of Property 2. *)

let e12_recoverability ?(input = [ 0; 1 ]) () =
  let t =
    Report.table
      ~title:
        (Format.asprintf "E12: reachable dead states (completion unreachable) on input %a"
           Xset.pp_sequence input)
      [
        ("protocol", Report.Left);
        ("channel", Report.Left);
        ("states", Report.Right);
        ("dead", Report.Right);
        ("closed", Report.Right);
        ("recoverable", Report.Right);
        ("as predicted", Report.Right);
      ]
  in
  let ok = ref true in
  let row p ~expect_recoverable =
    let r = Spec.recoverability p ~input () in
    let good = Spec.recoverable r = expect_recoverable && r.Spec.closed in
    if not good then ok := false;
    if not (Spec.receiver_deterministic p ~trials:4) then ok := false;
    Report.row t
      [
        Report.str p.Kernel.Protocol.name;
        Report.str (Chan.kind_name p.Kernel.Protocol.channel);
        Report.int r.Spec.states;
        Report.int r.Spec.dead;
        Report.bool r.Spec.closed;
        Report.bool (Spec.recoverable r);
        Report.bool good;
      ]
  in
  row (Protocols.Norep.dup ~m:2) ~expect_recoverable:true;
  row (Protocols.Norep.del ~m:2) ~expect_recoverable:true;
  row (Protocols.Abp.protocol ~domain:2) ~expect_recoverable:true;
  row (Protocols.Go_back_n.protocol ~domain:2 ~window:2) ~expect_recoverable:true;
  row (Protocols.Stenning.protocol ~domain:2 ~max_len:2) ~expect_recoverable:true;
  (* One-shot senders die with the first deletion: dead states. *)
  row (Protocols.Counting.protocol_on Chan.Reorder_del ~domain:2) ~expect_recoverable:false;
  row (Protocols.Counting.protocol_on Chan.Fifo_lossy ~domain:2) ~expect_recoverable:false;
  Report.make ~id:"E12"
    ~title:"Property 2's executable face: retransmission keeps every prefix extendable" ~ok:!ok
    ~notes:
      [
        "dead = states from which no schedule completes, excluding anything the exploration \
         budget could have hidden (cap-tainted states are never counted dead)";
        "a protocol with reachable dead states cannot satisfy liveness under any fairness \
         notion with Property 2: some fair extension of the dead prefix exists, and it never \
         delivers the missing items";
        "Property 1a residue (deterministic receiver construction) checked for every row";
      ]
    [ Report.finish t ]

(* ------------------------------------------------------------------ *)
(* E14: the m=4 frontier.  alpha(4) = 65 repetition-free sequences give
   ~2000 eligible input pairs — an order of magnitude past what E2/E3
   swept — and the symmetry quotient is what makes the battery finish:
   the norep protocols are equivariant under data-alphabet
   permutations, so only one representative per orbit of pairs is
   actually searched (up to 4! = 24 of the pairs share one search). *)

let e14_m4_sweep ?(m = 4) ?(caps = 3) ?(depth = 200) () =
  let t0 = Sys.time () in
  let alpha_m = Alpha.alpha_exn m in
  let xs = Norep_seq.enumerate ~m in
  let pairs = Attack.eligible_pairs ~xs in
  let orbits = Hashtbl.create 256 in
  let swap_orbits = Hashtbl.create 256 in
  List.iter
    (fun (x1, x2) ->
      let key, _ = Kernel.Symm.canon_pair ~m x1 x2 in
      Hashtbl.replace orbits key ();
      (* The search quotient composes the run swap with the alphabet
         permutations, so the representatives actually searched are the
         composed-orbit canonical forms. *)
      let skey, _, _ = Attack.canon_pair_swap ~m x1 x2 in
      Hashtbl.replace swap_orbits skey ())
    pairs;
  let n_orbits = Hashtbl.length orbits in
  let n_swap_orbits = Hashtbl.length swap_orbits in
  let p = Protocols.Norep.del ~m in
  let outcomes, witness =
    Attack.search p ~xs ~depth ~max_sends_per_sender:caps ~max_sends_per_receiver:caps
      ~symm:true ()
  in
  let elapsed = Sys.time () -. t0 in
  (* One row per unordered length class: the pair count explodes with
     m, so the table aggregates — per-pair rows are E2/E3's job. *)
  let classes : (int * int, (int * int * int * int) ref) Hashtbl.t = Hashtbl.create 16 in
  let class_order = ref [] in
  List.iter
    (fun (x1, x2, o) ->
      let l1 = List.length x1 and l2 = List.length x2 in
      let cls = (min l1 l2, max l1 l2) in
      let cell =
        match Hashtbl.find_opt classes cls with
        | Some c -> c
        | None ->
            let c = ref (0, 0, 0, 0) in
            Hashtbl.add classes cls c;
            class_order := cls :: !class_order;
            c
      in
      let n, closed, truncated, max_states = !cell in
      let closed, truncated, states =
        match o with
        | Attack.No_violation { closed = true; states_explored } ->
            (closed + 1, truncated, states_explored)
        | Attack.No_violation { closed = false; states_explored } ->
            (closed, truncated + 1, states_explored)
        | Attack.Witness w -> (closed, truncated, w.Attack.states_explored)
      in
      cell := (n + 1, closed, truncated, max max_states states))
    outcomes;
  let t =
    Report.table ~title:(Printf.sprintf "E14: all-pairs sweep at m=%d, by length class" m)
      [
        ("|x1| x |x2|", Report.Left);
        ("pairs", Report.Right);
        ("closed", Report.Right);
        ("truncated", Report.Right);
        ("max states", Report.Right);
      ]
  in
  List.iter
    (fun ((l1, l2) as cls) ->
      let n, closed, truncated, max_states = !(Hashtbl.find classes cls) in
      Report.row t
        [
          Report.str (Printf.sprintf "%d x %d" l1 l2);
          Report.int n;
          Report.int closed;
          Report.int truncated;
          Report.int max_states;
        ])
    (List.sort compare !class_order);
  let n_closed =
    List.length
      (List.filter
         (function _, _, Attack.No_violation { closed = true; _ } -> true | _ -> false)
         outcomes)
  in
  let ok = witness = None && n_closed = List.length outcomes in
  let metrics =
    Report.Metrics
      {
        title = Some "sweep scale";
        pairs =
          [
            ("m", Report.int m);
            ("alpha(m)", Report.int alpha_m);
            ("eligible pairs", Report.int (List.length pairs));
            ("perm-orbit representatives", Report.int n_orbits);
            ("orbit representatives searched", Report.int n_swap_orbits);
            ( "quotient ratio",
              Report.str
                (Printf.sprintf "%.1fx"
                   (float_of_int (List.length pairs) /. float_of_int (max 1 n_swap_orbits))) );
            ("send/recv caps", Report.int caps);
            ("wall seconds", Report.str (Printf.sprintf "%.1f" elapsed));
          ];
      }
  in
  Report.make ~id:"E14"
    ~title:
      (Printf.sprintf "Theorem 2 tightness at m=%d: alpha(%d) sequences, all pairs close" m m)
    ~ok
    ~notes:
      [
        Printf.sprintf
          "every eligible pair of the %d repetition-free sequences closes clean under \
           reorder+del with send caps %d — the tight bound, exhaustively, at m=%d"
          alpha_m caps m;
        "searched with ~symm: one BFS per orbit of input pairs under alphabet permutation \
         composed with the run swap (soundness: DESIGN.md, 'The symmetry quotient' and \
         'Out-of-core search'); outcomes are relabelled and mirrored back per pair, so the \
         table covers every pair";
        "wall seconds is measured, so E14 bytes are not digest-pinned (the artifact is \
         schema-gated instead)";
      ]
    [ Report.finish t; metrics ]

(* ------------------------------------------------------------------ *)
(* E16: the road to m=5.  A full all-pairs sweep at m=5 is out of
   reach for now (alpha(5) = 326 sequences, ~10^5 eligible pairs), but
   the out-of-core frontier makes the individual searches memory-flat:
   this experiment runs a fixed representative slice — length-4
   siblings off a shared prefix, the widest joint spaces the del
   channel admits at these caps — twice, once under a deliberately
   tiny frontier budget (the BFS pages whole chunks through an
   unlinked spill file) and once effectively unbounded, and pins that
   the two sweeps write byte-identical artifacts while the spilled
   run's resident frontier stays under its budget. *)

let e16_m5_spill ?(caps = 4) ?(depth = 200) ?(budget = 20_000) () =
  let m = 5 in
  let p = Protocols.Norep.del ~m in
  (* The slice: composed-quotient canonical pairs of length-4
     repetition-free sequences over the 5-letter alphabet, diverging
     as late as eligibility allows.  Shared prefixes maximise the
     joint space the adversary can keep synchronised, so these are the
     widest frontiers reachable at m=5 under the caps. *)
  let xs = [ [ 0; 1; 2; 3 ]; [ 0; 1; 2; 4 ]; [ 0; 1; 3; 4 ] ] in
  let pairs = Attack.eligible_pairs ~xs in
  let run mem_budget_bytes =
    let stats = Attack.Stats.create () in
    let t0 = Sys.time () in
    let outcomes, witness =
      Attack.search p ~xs ~depth ~max_sends_per_sender:caps ~max_sends_per_receiver:caps
        ~mem_budget_bytes ~stats ()
    in
    let elapsed = Sys.time () -. t0 in
    (outcomes, witness, Attack.Stats.snapshot stats, elapsed)
  in
  let o_spill, w_spill, s_spill, t_spill = run budget in
  let o_mem, w_mem, s_mem, t_mem = run max_int in
  let artifact_bytes outcomes witness =
    Stdx.Json.to_string (Report.to_json (Attack.search_report outcomes witness))
  in
  let identical = artifact_bytes o_spill w_spill = artifact_bytes o_mem w_mem in
  let n_closed =
    List.length
      (List.filter
         (function _, _, Attack.No_violation { closed = true; _ } -> true | _ -> false)
         o_spill)
  in
  (* Two default-size chunk buffers (8192 B payload + 16 B slack each)
     are always resident — the documented Stdx.Frontier floor. *)
  let budget_floor b = max b (2 * 8208) in
  let under_budget = s_spill.Attack.Stats.peak_resident_bytes <= budget_floor budget in
  let spilled = s_spill.Attack.Stats.spill_chunks > 0 in
  let mem_resident = s_mem.Attack.Stats.spill_chunks = 0 in
  let t =
    Report.table ~title:"E16: m=5 representative slice, spilled vs resident"
      [
        ("", Report.Left);
        ("spilled", Report.Right);
        ("resident", Report.Right);
      ]
  in
  let row label f =
    Report.row t [ Report.str label; f s_spill; f s_mem ]
  in
  row "peak frontier bytes (queued)" (fun s -> Report.int s.Attack.Stats.peak_frontier_bytes);
  row "peak frontier length (ids)" (fun s -> Report.int s.Attack.Stats.peak_frontier_len);
  row "peak resident bytes" (fun s -> Report.int s.Attack.Stats.peak_resident_bytes);
  row "spilled bytes (total)" (fun s -> Report.int s.Attack.Stats.spilled_bytes);
  row "spill chunks" (fun s -> Report.int s.Attack.Stats.spill_chunks);
  row "peak joint states" (fun s -> Report.int s.Attack.Stats.peak_joint_states);
  let ok =
    identical && under_budget && spilled && mem_resident
    && w_spill = None && w_mem = None
    && n_closed = List.length o_spill
  in
  let metrics =
    Report.Metrics
      {
        title = Some "slice scale";
        pairs =
          [
            ("m", Report.int m);
            ("slice pairs", Report.int (List.length pairs));
            ("send/recv caps", Report.int caps);
            ("mem budget (bytes)", Report.int budget);
            ("artifacts byte-identical", Report.bool identical);
            ("all pairs closed", Report.bool (n_closed = List.length o_spill));
            ( "wall seconds (spilled/resident)",
              Report.str (Printf.sprintf "%.1f/%.1f" t_spill t_mem) );
          ];
      }
  in
  Report.make ~id:"E16"
    ~title:"Out-of-core exactness: an m=5 slice under a spilled frontier" ~ok
    ~notes:
      [
        Printf.sprintf
          "the same slice searched twice: frontier budget %d B (chunks page through an \
           unlinked spill file) vs effectively unbounded — outcomes and artifact bytes \
           are identical, the exactness contract of the pager"
          budget;
        "peak resident bytes stays within max(budget, two chunks) while peak queued bytes \
         exceeds it — the spilled search is memory-flat where the resident one grows";
        "wall seconds is measured and budget-variant counters differ by design, so E16 \
         bytes are not digest-pinned; the artifact embeds only the verdict envelope";
      ]
    [ Report.finish t; metrics ]

(* The one place experiments are registered: the registry feeds the
   CLI, the bench tables, and [all] alike. *)
let () =
  let reg id doc quick full = Kernel.Registry.register_experiment ~id ~doc ~quick ~full in
  reg "E1" "alpha(m) values and exhaustive tightness verification"
    (fun () -> e1_alpha_tightness ~m_max:6 ~m_verify:2 ~seeds:2 ())
    (fun () -> e1_alpha_tightness ());
  reg "E2" "Theorem 1 impossibility attacks over reorder+dup"
    (fun () -> e2_dup_attacks ~m:2 ())
    (fun () -> e2_dup_attacks ());
  reg "E3" "Theorem 2 impossibility attacks over reorder+del"
    (fun () -> e3_del_attacks ~m:2 ())
    (fun () -> e3_del_attacks ());
  reg "E4" "bounded vs unbounded learning-gap profiles (Definition 2)"
    (fun () -> e4_boundedness ~domain:3 ~max_len:2 ~seeds:2 ())
    (fun () -> e4_boundedness ());
  reg "E5" "weak boundedness: recovery cost after one fault (Sec 5)"
    (fun () -> e5_weak_boundedness ~domain:2 ~max_len:4 ~seeds:2 ())
    (fun () -> e5_weak_boundedness ());
  reg "E6" "knowledge timelines t_i: stability and lead over writing"
    (fun () -> e6_knowledge_timeline ~m:2 ~seeds:4 ())
    (fun () -> e6_knowledge_timeline ());
  reg "E7" "protocol cost: messages and steps per delivered item"
    (fun () -> e7_throughput ~seeds:2 ~max_len:2 ())
    (fun () -> e7_throughput ());
  reg "E8" "Monte-Carlo failure probability of over-bound protocols"
    (fun () -> e8_probabilistic ~trials:10 ~max_len:3 ())
    (fun () -> e8_probabilistic ());
  reg "E9" "protocol-space census at m=1 (Theorem 1 universality)"
    (fun () -> e9_census ~samples:40 ())
    (fun () -> e9_census ());
  reg "E10" "header space vs reordering lag crossover"
    (fun () -> e10_crossover ~h_max:3 ~lag_max:2 ())
    (fun () -> e10_crossover ());
  reg "E11" "nested mutual knowledge: one round trip per level"
    (fun () -> e11_knowledge_ladder ~m:2 ~seeds:3 ~depth:4 ())
    (fun () -> e11_knowledge_ladder ());
  reg "E12" "recoverability: dead-state analysis (Property 2)"
    (fun () -> e12_recoverability ~input:[ 0 ] ())
    (fun () -> e12_recoverability ());
  reg "E14" "m=4 all-pairs attack sweep via the symmetry quotient"
    (fun () -> e14_m4_sweep ())
    (fun () -> e14_m4_sweep ~caps:4 ());
  reg "E16" "out-of-core exactness: an m=5 slice under a spilled frontier"
    (fun () -> e16_m5_spill ())
    (* Full: a one-byte budget clamps the pager to its two-chunk floor
       — the hardest paging regime — with the same exactness pin. *)
    (fun () -> e16_m5_spill ~budget:1 ())

let all ?(quick = false) () =
  List.map
    (fun e -> if quick then e.Kernel.Registry.e_quick () else e.Kernel.Registry.e_full ())
    (Kernel.Registry.experiments ())

module Runner = Kernel.Runner
module Trace = Kernel.Trace

type estimate = {
  trials : int;
  safety_failures : int;
  liveness_failures : int;
  p_fail : float;
  p_safety : float;
  wilson_upper : float;
}

let wilson_upper ~failures ~trials =
  if trials = 0 then 1.0
  else begin
    let z = 1.96 in
    let n = float_of_int trials in
    let p = float_of_int failures /. n in
    let z2 = z *. z in
    let denom = 1.0 +. (z2 /. n) in
    let centre = p +. (z2 /. (2.0 *. n)) in
    let margin = z *. sqrt ((p *. (1.0 -. p) /. n) +. (z2 /. (4.0 *. n *. n))) in
    Float.min 1.0 ((centre +. margin) /. denom)
  end

let of_counts ~trials ~safety_failures ~liveness_failures =
  let failures = safety_failures + liveness_failures in
  {
    trials;
    safety_failures;
    liveness_failures;
    p_fail = (if trials = 0 then 0.0 else float_of_int failures /. float_of_int trials);
    p_safety = (if trials = 0 then 0.0 else float_of_int safety_failures /. float_of_int trials);
    wilson_upper = wilson_upper ~failures ~trials;
  }

let estimate p ~input ~strategy ~trials ~max_steps ?(seed = 1) ?(post_roll = 25) ?jobs () =
  (* One scheduler session per trial.  The post-roll keeps each run
     alive past completion: stale deliveries that overshoot the output
     tape are failures too, and stopping at the first complete state
     would hide them.  Trials are seeded independently by index, so
     the batch shards over domains with bit-identical counts. *)
  let sessions =
    List.init trials (fun i ->
        Kernel.Sched.session p ~input:(Array.of_list input) ~strategy
          ~rng:(Stdx.Rng.create (seed + (i * 7919)))
          ~max_steps ~post_roll ())
  in
  let classify (r : Runner.result) =
    let trace = r.Runner.trace in
    if Trace.first_safety_violation trace <> None then `Safety
    else if Trace.completed_at trace = None then `Liveness
    else `Ok
  in
  let outcomes = List.map classify (Batch.run ?jobs sessions) in
  let count k = List.length (List.filter (( = ) k) outcomes) in
  of_counts ~trials ~safety_failures:(count `Safety) ~liveness_failures:(count `Liveness)

let failure_by_length p ~inputs ~strategy ~trials ~max_steps ?(seed = 1) ?post_roll ?jobs () =
  let by_len = Hashtbl.create 8 in
  List.iter
    (fun input ->
      let e = estimate p ~input ~strategy ~trials ~max_steps ~seed ?post_roll ?jobs () in
      let len = List.length input in
      let acc =
        Option.value ~default:(0, 0, 0) (Hashtbl.find_opt by_len len)
      in
      let t, s, l = acc in
      Hashtbl.replace by_len len
        (t + e.trials, s + e.safety_failures, l + e.liveness_failures))
    inputs;
  Hashtbl.fold
    (fun len (t, s, l) acc ->
      (len, of_counts ~trials:t ~safety_failures:s ~liveness_failures:l) :: acc)
    by_len []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let to_report series =
  let module R = Stdx.Report in
  let t =
    R.table ~title:"Monte-Carlo failure estimates by input length"
      [
        ("|X|", R.Right);
        ("trials", R.Right);
        ("p_fail", R.Right);
        ("p_safety", R.Right);
        ("wilson 95% upper", R.Right);
      ]
  in
  List.iter
    (fun (len, e) ->
      R.row t
        [
          R.int len;
          R.int e.trials;
          R.float e.p_fail;
          R.float e.p_safety;
          R.float ~decimals:3 e.wilson_upper;
        ])
    series;
  R.make ~id:"proba" ~title:"probabilistic X-STP estimates" [ R.finish t ]

module Strategy = Kernel.Strategy
module Runner = Kernel.Runner

type spec = {
  strategies : Strategy.t list;
  seeds : int list;
  max_steps : int;
}

let default_spec ?(max_steps = 20_000) ?(n_seeds = 5) () =
  {
    strategies = [ Strategy.fair_random (); Strategy.round_robin; Strategy.newest_first ];
    seeds = List.init n_seeds (fun i -> i + 1);
    max_steps;
  }

type failure = {
  input : int list;
  strategy_name : string;
  seed : int;
  verdict : Verdict.t;
}

type report = {
  protocol_name : string;
  runs : int;
  safe_runs : int;
  complete_runs : int;
  audit_failures : int;
  failures : failure list;
  failures_total : int;
  steps : Stdx.Stats.summary option;
  messages : Stdx.Stats.summary option;
  messages_per_item : Stdx.Stats.summary option;
}

let run_one p ~input ~strategy ~seed ~max_steps =
  let result =
    Runner.run p ~input:(Array.of_list input) ~strategy ~rng:(Stdx.Rng.create seed) ~max_steps ()
  in
  (Verdict.of_result result, (Kernel.Audit.run result.Runner.trace).Kernel.Audit.ok)

let verify_one p ~input spec =
  List.concat_map
    (fun strategy ->
      List.map
        (fun seed -> fst (run_one p ~input ~strategy ~seed ~max_steps:spec.max_steps))
        spec.seeds)
    spec.strategies

let verify (p : Kernel.Protocol.t) ~xs ?max_failures ?(jobs = 1) spec =
  (* All (input, strategy, seed) cells become one scheduler batch; the
     fold below walks the results in the historical nested-loop order,
     so counts, stats, and the chronological failure list are
     unchanged.  [jobs] defaults to 1 (not [STP_JOBS]) because
     {!Census} calls verify from inside a [Par.map] task and batches
     do not nest; pass an explicit [~jobs] to fan out. *)
  let cells =
    List.concat_map
      (fun input ->
        List.concat_map
          (fun strategy -> List.map (fun seed -> (input, strategy, seed)) spec.seeds)
          spec.strategies)
      xs
  in
  let sessions =
    List.map
      (fun (input, strategy, seed) ->
        Kernel.Sched.session p ~input:(Array.of_list input) ~strategy
          ~rng:(Stdx.Rng.create seed) ~max_steps:spec.max_steps ())
      cells
  in
  let results = Batch.run ~jobs sessions in
  let runs = ref 0 and safe = ref 0 and complete = ref 0 and audit_bad = ref 0 in
  (* Failures are kept in chronological order; [max_failures] caps how
     many are *stored* (the earliest ones), never how many are
     counted. *)
  let failures = ref [] and stored = ref 0 and failures_total = ref 0 in
  let steps = ref [] and messages = ref [] and per_item = ref [] in
  List.iter2
    (fun (input, strategy, seed) (result : Runner.result) ->
      let v = Verdict.of_result result in
      let audit_ok = (Kernel.Audit.run result.Runner.trace).Kernel.Audit.ok in
      if not audit_ok then incr audit_bad;
      incr runs;
      if v.Verdict.safe then incr safe;
      if v.Verdict.complete then incr complete;
      if Verdict.all_good v then begin
        steps := float_of_int v.Verdict.steps :: !steps;
        messages := float_of_int v.Verdict.messages :: !messages;
        let n = List.length input in
        if n > 0 then
          per_item := (float_of_int v.Verdict.messages /. float_of_int n) :: !per_item
      end
      else begin
        incr failures_total;
        if match max_failures with Some cap -> !stored < cap | None -> true then begin
          incr stored;
          failures :=
            { input; strategy_name = strategy.Strategy.name; seed; verdict = v } :: !failures
        end
      end)
    cells results;
  {
    protocol_name = p.Kernel.Protocol.name;
    runs = !runs;
    safe_runs = !safe;
    complete_runs = !complete;
    audit_failures = !audit_bad;
    failures = List.rev !failures;
    failures_total = !failures_total;
    steps = Stdx.Stats.summarize !steps;
    messages = Stdx.Stats.summarize !messages;
    messages_per_item = Stdx.Stats.summarize !per_item;
  }

let clean r = r.failures_total = 0 && r.audit_failures = 0

let pp_report ppf r =
  Format.fprintf ppf "%s: %d runs, %d safe, %d complete, %d failures" r.protocol_name r.runs
    r.safe_runs r.complete_runs r.failures_total;
  match r.messages_per_item with
  | Some s -> Format.fprintf ppf " (msgs/item mean %.1f)" s.Stdx.Stats.mean
  | None -> ()

let seq_text xs = "<" ^ String.concat " " (List.map string_of_int xs) ^ ">"

let to_report r =
  let module R = Stdx.Report in
  let fcell = function Some (s : Stdx.Stats.summary) -> R.float s.mean | None -> R.str "-" in
  let metrics =
    R.Metrics
      {
        title = None;
        pairs =
          [
            ("protocol", R.str r.protocol_name);
            ("runs", R.int r.runs);
            ("safe_runs", R.int r.safe_runs);
            ("complete_runs", R.int r.complete_runs);
            ("audit_failures", R.int r.audit_failures);
            ("failures", R.int r.failures_total);
            ("steps_mean", fcell r.steps);
            ("messages_mean", fcell r.messages);
            ("messages_per_item_mean", fcell r.messages_per_item);
          ];
      }
  in
  let items =
    if r.failures = [] then [ metrics ]
    else begin
      let t =
        R.table ~title:"failures (chronological)"
          [
            ("input", R.Left);
            ("strategy", R.Left);
            ("seed", R.Right);
            ("verdict", R.Left);
          ]
      in
      List.iter
        (fun f ->
          R.row t
            [
              R.str (seq_text f.input);
              R.str f.strategy_name;
              R.int f.seed;
              R.str (Format.asprintf "%a" Verdict.pp f.verdict);
            ])
        r.failures;
      [ metrics; R.finish t ]
    end
  in
  let notes =
    if r.failures_total > List.length r.failures then
      [
        Printf.sprintf "failure list truncated: showing the first %d of %d"
          (List.length r.failures) r.failures_total;
      ]
    else []
  in
  R.make ~id:"verify"
    ~title:(Printf.sprintf "batch verification of %s" r.protocol_name)
    ~ok:(clean r) ~notes items

module Protocol = Kernel.Protocol
module Global = Kernel.Global
module Move = Kernel.Move
module Sim = Kernel.Sim
module Sched = Kernel.Sched
module Strategy = Kernel.Strategy
module Symm = Kernel.Symm
module Chan = Channel.Chan
module Report = Stdx.Report
module Rng = Stdx.Rng

let space p ~input =
  match p.Protocol.perturb with
  | None -> invalid_arg (p.Protocol.name ^ ": protocol declares no corrupted-start space")
  | Some pe ->
      (match Protocol.validate_perturb p ~input with
      | Ok () -> ()
      | Error e -> invalid_arg (p.Protocol.name ^ ": invalid corrupted-start space: " ^ e));
      (* Corrupted starts: the output tape is empty, so the receiver
         enumeration is taken at written = 0. *)
      let rs = pe.Protocol.receiver_states ~written:0 in
      List.concat_map
        (fun s -> List.map (fun r -> (s, r)) rs)
        (pe.Protocol.sender_states ~input)

(* ------------------------- the sweep ------------------------- *)

type point = {
  s_label : string;
  r_label : string;
  verdict : Verdict.t;
  tts : int option;
}

type sweep = {
  protocol_name : string;
  input : int list;
  space_size : int;
  stabilised : int;
  worst_tts : int option;
  all_stabilised : bool;
  points : point list;
}

let sweep ?jobs ?timeslice ?(strategy = Strategy.round_robin) ?(max_steps = 20_000) p ~input
    ~within ~seed () =
  let pairs = space p ~input in
  let sessions =
    List.mapi
      (fun i (s, r) ->
        Sched.session p ~input ~strategy
          ~rng:(Rng.split (Rng.create seed) i)
          ~max_steps ~corrupt_sender:s.Protocol.proc ~corrupt_receiver:r.Protocol.proc ())
      pairs
  in
  let results = Batch.run ?jobs ?timeslice sessions in
  let points =
    List.map2
      (fun (s, r) result ->
        let verdict =
          Verdict.of_result result |> Verdict.assess_stabilisation ~within
        in
        {
          s_label = s.Protocol.label;
          r_label = r.Protocol.label;
          verdict;
          tts = Verdict.time_to_stabilise verdict;
        })
      pairs results
  in
  let stabilised =
    List.length (List.filter (fun pt -> pt.verdict.Verdict.stabilised = Some true) points)
  in
  let worst_tts =
    List.fold_left
      (fun acc pt ->
        match (acc, pt.tts) with
        | None, t -> t
        | Some a, Some t -> Some (max a t)
        | Some a, None -> Some a)
      None points
  in
  {
    protocol_name = p.Protocol.name;
    input = Array.to_list input;
    space_size = List.length points;
    stabilised;
    worst_tts;
    all_stabilised = stabilised = List.length points;
    points;
  }

(* --------------------- corrupted-root search --------------------- *)

type witness = {
  w_s_label : string;
  w_r_label : string;
  moves : Move.t list;
  violation_depth : int;
}

type outcome = No_violation of { closed : bool; states : int } | Violation of witness

let search ?(depth = 200) ?(max_states = 200_000) ?(allow_drops = true)
    ?(max_sends_per_sender = 16) ?(max_sends_per_receiver = 16) ?mem_budget_bytes ?stats
    p ~input () =
  let pairs = space p ~input in
  let rs = Attack.Runstate.create p ~x:(Array.to_list input) in
  (* One BFS over the union of every corrupted root's reachable space:
     the shared transition store dedups states across roots exactly as
     the all-pairs sweep shares it across pairs, and the visited
     bitset keys on the store's dense ids. *)
  let table : (int, Global.t * (int * Move.t) option * int) Hashtbl.t =
    Hashtbl.create 1024
  in
  let visited = Stdx.Bitset.create () in
  let frontier = Stdx.Frontier.create ?mem_budget_bytes () in
  let result = ref None in
  let truncated = ref false in
  List.iteri
    (fun ri (s, r) ->
      if !result = None then begin
        let g =
          Global.initial ~sender:s.Protocol.proc ~receiver:r.Protocol.proc p ~input
        in
        let id = Attack.Runstate.seed rs g in
        if Stdx.Bitset.add visited id then begin
          Hashtbl.replace table id (g, None, ri);
          if not (Global.safety_ok g) then result := Some (id, 0)
          else Stdx.Frontier.push frontier id
        end
      end)
    pairs;
  let this_level = ref (Stdx.Frontier.length frontier) in
  let next_level = ref 0 in
  let level = ref 0 in
  while (not (Stdx.Frontier.is_empty frontier)) && !result = None do
    if !this_level = 0 then begin
      this_level := !next_level;
      next_level := 0;
      incr level
    end;
    let id = Stdx.Frontier.pop frontier in
    decr this_level;
    let g, _, root = Hashtbl.find table id in
    if !level >= depth then truncated := true
    else
      List.iter
        (fun move ->
          if !result = None then begin
            let keep =
              match move with
              | Move.Wake_sender ->
                  Chan.sent_total g.Global.chan_sr < max_sends_per_sender
              | Move.Wake_receiver ->
                  Chan.sent_total g.Global.chan_rs < max_sends_per_receiver
              | Move.Drop_to_receiver _ | Move.Drop_to_sender _ -> allow_drops
              | Move.Deliver_to_receiver _ | Move.Deliver_to_sender _ -> true
              | Move.Restart_sender | Move.Restart_receiver | Move.Corrupt_sender _
              | Move.Corrupt_receiver _ ->
                  false
            in
            if keep then
              match Attack.Runstate.apply rs g id move with
              | None -> ()
              | Some (g', id') ->
                  if Stdx.Bitset.add visited id' then begin
                    if Hashtbl.length table >= max_states then truncated := true
                    else begin
                      Hashtbl.replace table id' (g', Some (id, move), root);
                      if not (Global.safety_ok g') then result := Some (id', !level + 1)
                      else Stdx.Frontier.push frontier id';
                      incr next_level
                    end
                  end
          end)
        (Sim.enabled p g)
  done;
  (match stats with
  | Some s ->
      Attack.Stats.note s (Stdx.Frontier.stats frontier)
        ~joint_states:(Hashtbl.length table)
  | None -> ());
  Stdx.Frontier.close frontier;
  match !result with
  | None -> No_violation { closed = not !truncated; states = Hashtbl.length table }
  | Some (id, d) ->
      let rec unwind id acc =
        match Hashtbl.find table id with
        | _, None, root -> (root, acc)
        | _, Some (parent, move), _ -> unwind parent (move :: acc)
      in
      let root, moves = unwind id [] in
      let s, r = List.nth pairs root in
      Violation
        {
          w_s_label = s.Protocol.label;
          w_r_label = r.Protocol.label;
          moves;
          violation_depth = d;
        }

(* ------------------------ witness replay ------------------------ *)

let find_corruption p ~input ~s_label ~r_label =
  match
    List.find_opt
      (fun (s, r) -> s.Protocol.label = s_label && r.Protocol.label = r_label)
      (space p ~input)
  with
  | Some (s, r) -> (s, r)
  | None ->
      invalid_arg
        (Printf.sprintf "%s: no corrupted start labelled (%s, %s)" p.Protocol.name s_label
           r_label)

let replay p ~input w =
  let s, r = find_corruption p ~input ~s_label:w.w_s_label ~r_label:w.w_r_label in
  let g0 = Global.initial ~sender:s.Protocol.proc ~receiver:r.Protocol.proc p ~input in
  let g = List.fold_left (fun g move -> Sim.apply p g move) g0 w.moves in
  not (Global.safety_ok g)

let relabel_witness eq pi w =
  { w with moves = List.map (Symm.relabel_move eq pi) w.moves }

(* ------------------------- reporting ------------------------- *)

let margins s =
  let agg key_of =
    let tbl = Hashtbl.create 16 in
    let order = ref [] in
    List.iter
      (fun pt ->
        let k = key_of pt in
        let cell =
          match Hashtbl.find_opt tbl k with
          | Some c -> c
          | None ->
              let c = ref (0, 0, None) in
              Hashtbl.add tbl k c;
              order := k :: !order;
              c
        in
        let n, st, wt = !cell in
        let st = if pt.verdict.Verdict.stabilised = Some true then st + 1 else st in
        let wt =
          match (wt, pt.tts) with
          | None, t -> t
          | Some a, Some t -> Some (max a t)
          | Some a, None -> Some a
        in
        cell := (n + 1, st, wt))
      s.points;
    List.rev_map
      (fun k ->
        let n, st, wt = !(Hashtbl.find tbl k) in
        (k, n, st, wt))
      !order
  in
  (agg (fun pt -> pt.s_label), agg (fun pt -> pt.r_label))

let sweep_report ?(title = "corrupted-start stabilisation sweep") s =
  let t =
    Report.table ~title:"per-point verdicts over the corrupted-start space"
      [
        ("sender start", Report.Left);
        ("receiver start", Report.Left);
        ("safe", Report.Right);
        ("complete", Report.Right);
        ("stabilised", Report.Right);
        ("tts", Report.Right);
      ]
  in
  List.iter
    (fun pt ->
      let v = pt.verdict in
      Report.row t
        [
          Report.str pt.s_label;
          Report.str pt.r_label;
          Report.bool v.Verdict.safe;
          Report.bool v.Verdict.complete;
          Report.bool (v.Verdict.stabilised = Some true);
          (match pt.tts with Some n -> Report.int n | None -> Report.str "-");
        ])
    s.points;
  let metrics =
    Report.Metrics
      {
        title = None;
        pairs =
          [
            ("protocol", Report.str s.protocol_name);
            ( "input",
              Report.str
                ("[" ^ String.concat "," (List.map string_of_int s.input) ^ "]") );
            ("corrupted_starts", Report.int s.space_size);
            ("stabilised", Report.int s.stabilised);
            ("all_stabilised", Report.bool s.all_stabilised);
            ( "worst_tts",
              match s.worst_tts with Some n -> Report.int n | None -> Report.str "-" );
          ];
      }
  in
  (* The marginals: which single-register corruption is the slowest
     (or non-converging) one, without scanning the product table. *)
  let mt =
    Report.table ~title:"per-start marginals (worst tts over the opposite side)"
      [
        ("side", Report.Left);
        ("start", Report.Left);
        ("points", Report.Right);
        ("stabilised", Report.Right);
        ("worst_tts", Report.Right);
      ]
  in
  let s_margin, r_margin = margins s in
  List.iter
    (fun (side, rows) ->
      List.iter
        (fun (label, n, st, wt) ->
          Report.row mt
            [
              Report.str side;
              Report.str label;
              Report.int n;
              Report.int st;
              (match wt with Some t -> Report.int t | None -> Report.str "-");
            ])
        rows)
    [ ("S", s_margin); ("R", r_margin) ];
  Report.make ~id:"stab" ~title ~ok:s.all_stabilised
    ~notes:
      [
        "stabilised = safe, complete, and done within the step budget from a corrupted \
         start; worst_tts maximises time-to-stabilise over the enumerated space";
      ]
    [ metrics; Report.finish t; Report.finish mt ]

let outcome_items o =
  match o with
  | No_violation { closed; states } ->
      [
        Report.Metrics
          {
            title = Some "corrupted-root witness search";
            pairs =
              [
                ("violation", Report.bool false);
                ("closed", Report.bool closed);
                ("states", Report.int states);
              ];
          };
      ]
  | Violation w ->
      [
        Report.Metrics
          {
            title = Some "corrupted-root witness search";
            pairs =
              [
                ("violation", Report.bool true);
                ("sender start", Report.str w.w_s_label);
                ("receiver start", Report.str w.w_r_label);
                ("violation_depth", Report.int w.violation_depth);
                ( "moves",
                  Report.str (String.concat "; " (List.map Move.to_string w.moves)) );
              ];
          };
      ]

(** The §2 model conditions as executable checks.

    Most of Property 1 is enforced online by the simulator (messages
    are never created, wakes are always enabled, deliverability is
    exact).  Two conditions are worth checking *about protocols* after
    the fact:

    - {b Property 1a} — every initial receiver state is the same.
      The [Protocol.make_receiver] signature already prevents input
      dependence; what remains checkable is that the constructor is
      deterministic (no hidden mutable or random state), which the
      product attack search relies on when it assumes the two runs'
      receivers start identical.  {!receiver_deterministic} checks
      it.

    - {b Property 2} — every point extends to a fair run.  Its
      executable protocol-facing face is {e recoverability}: from every
      reachable global state, a schedule completing the transmission
      still exists.  A protocol with reachable dead states needs the
      adversary's cooperation to be live — the §2 fairness machinery
      can't save it.  {!recoverability} explores the (move-capped)
      state graph forward, then marks backward reachability from
      completed states.

    Recoverability separates the zoo sharply: the paper's protocols
    and the retransmitting classics have none (every state can still
    complete, whatever the adversary did so far), while the one-shot
    naive protocol is dead the moment a deletion lands.  Experiment
    E12 tabulates this. *)

type recoverability = {
  states : int;  (** distinct reachable states explored *)
  completed : int;  (** states with [Y = X] *)
  dead : int;
      (** states from which completion is unreachable even though
          nothing about them was hidden by the exploration budget —
          every state they can reach was fully expanded with no move
          filtered by a send cap *)
  frontier : int;  (** states cut off by the depth/state budget (unknown status) *)
  closed : bool;  (** the graph was exhausted: [dead] is exact, not a lower bound *)
}

val recoverability :
  Kernel.Protocol.t ->
  input:int list ->
  ?depth:int ->
  ?max_states:int ->
  ?max_sends_per_sender:int ->
  ?max_sends_per_receiver:int ->
  ?allow_drops:bool ->
  unit ->
  recoverability
(** Forward BFS under the same send caps as the attack search (so
    deleting channels stay finite), then backward marking from the
    completed states.  Defaults mirror {!Attack.search_pair}. *)

val recoverable : recoverability -> bool
(** [closed], no dead states, and completion reachable at all. *)

val receiver_deterministic : Kernel.Protocol.t -> trials:int -> bool
(** Property 1a's residue: repeated construction yields the same
    initial receiver fingerprint. *)

val pp_recoverability : Format.formatter -> recoverability -> unit

val recoverability_report : ?protocol:string -> recoverability -> Stdx.Report.t
(** The analysis as typed IR (id ["recover"], [ok = recoverable]). *)

let default_jobs () =
  match Sys.getenv_opt "STP_JOBS" with
  | None -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with Some n when n >= 1 -> n | Some _ | None -> 1)

(* Persistent worker pool.  [Domain.spawn] costs ~1ms on a typical
   box, which would swamp the sub-millisecond sweeps this module
   exists to speed up, so domains are spawned once (on demand, up to
   the largest job count ever requested) and parked on a condition
   variable between batches.  The pool is never torn down: parked
   domains hold no batch state and die with the process. *)

let pool_mutex = Mutex.create ()
let pool_nonempty = Condition.create ()
let pool_queue : (unit -> unit) Queue.t = Queue.create ()
let pool_size = ref 0

let worker_loop () =
  while true do
    Mutex.lock pool_mutex;
    while Queue.is_empty pool_queue do
      Condition.wait pool_nonempty pool_mutex
    done;
    let job = Queue.pop pool_queue in
    Mutex.unlock pool_mutex;
    job ()
  done

(* Enqueue [k] copies of [job], growing the pool to [k] workers
   first.  Each copy is a pull-loop over the batch's shared cursor, so
   it is correct for any number of them to run (or for a stale worker
   to pick one up late — the cursor is already drained and the copy
   exits immediately). *)
let submit k job =
  Mutex.lock pool_mutex;
  let missing = k - !pool_size in
  if missing > 0 then pool_size := k;
  for _ = 1 to k do
    Queue.push job pool_queue
  done;
  Condition.broadcast pool_nonempty;
  Mutex.unlock pool_mutex;
  for _ = 1 to missing do
    ignore (Domain.spawn worker_loop : unit Domain.t)
  done

let map ?jobs f xs =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ when jobs = 1 -> List.map f xs
  | _ ->
      let tasks = Array.of_list xs in
      let n = Array.length tasks in
      let jobs = min jobs n in
      let results = Array.make n None in
      let cursor = Atomic.make 0 in
      let failure = Atomic.make None in
      let done_mutex = Mutex.create () in
      let done_cond = Condition.create () in
      let outstanding = ref jobs in
      let participate () =
        (try
           let continue = ref true in
           while !continue do
             let i = Atomic.fetch_and_add cursor 1 in
             if i >= n || Atomic.get failure <> None then continue := false
             else
               match f tasks.(i) with
               | v -> results.(i) <- Some v
               | exception e ->
                   ignore (Atomic.compare_and_set failure None (Some e));
                   continue := false
           done
         with e -> ignore (Atomic.compare_and_set failure None (Some e)));
        Mutex.lock done_mutex;
        decr outstanding;
        if !outstanding = 0 then Condition.broadcast done_cond;
        Mutex.unlock done_mutex
      in
      (* The calling domain is worker number [jobs]; the pool runs the
         rest.  The batch is finished only when every participant has
         stopped touching it, which is what [outstanding] counts. *)
      submit (jobs - 1) participate;
      participate ();
      Mutex.lock done_mutex;
      while !outstanding > 0 do
        Condition.wait done_cond done_mutex
      done;
      Mutex.unlock done_mutex;
      (match Atomic.get failure with Some e -> raise e | None -> ());
      Array.to_list (Array.map (function Some v -> v | None -> assert false) results)

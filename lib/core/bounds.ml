module Runner = Kernel.Runner
module Trace = Kernel.Trace

type measurement = {
  input : int list;
  learning_gaps : int option list;
  max_gap : int option;
  total_learning_time : int option;
}

let measure p ~xs ~strategy ~seeds ~max_steps ?(post_roll = 40) ?jobs () =
  (* Each (input, seed) run is an independent scheduler session — own
     rng, stateless strategy — so the simulation sweep runs as one
     batch sharded over domains; the universe build below stays
     sequential. *)
  let cells = List.concat_map (fun input -> List.map (fun seed -> (input, seed)) seeds) xs in
  let sessions =
    List.map
      (fun (input, seed) ->
        Kernel.Sched.session p ~input:(Array.of_list input) ~strategy
          ~rng:(Stdx.Rng.create seed) ~max_steps ~post_roll ())
      cells
  in
  let runs =
    List.map2
      (fun (input, _) (r : Runner.result) -> (input, r.Runner.trace))
      cells
      (Batch.run ?jobs sessions)
  in
  let universe = Knowledge.Universe.of_traces (List.map snd runs) in
  List.mapi
    (fun run_idx (input, _) ->
      let times = Knowledge.Learn.learning_times universe ~run:run_idx in
      let gaps = Knowledge.Learn.gaps times in
      let finite = List.filter_map Fun.id gaps in
      let n = Array.length times in
      {
        input;
        learning_gaps = gaps;
        max_gap = (match finite with [] -> None | _ -> Some (List.fold_left max 0 finite));
        total_learning_time = (if n = 0 then Some 0 else times.(n - 1));
      })
    runs

let gap_by_length measurements =
  let by_len = Hashtbl.create 16 in
  List.iter
    (fun m ->
      match m.max_gap with
      | None -> ()
      | Some g ->
          let len = List.length m.input in
          let cur = Option.value ~default:[] (Hashtbl.find_opt by_len len) in
          Hashtbl.replace by_len len (float_of_int g :: cur))
    measurements;
  Hashtbl.fold
    (fun len gs acc ->
      match Stdx.Stats.summarize gs with Some s -> (len, s) :: acc | None -> acc)
    by_len []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let growth_slope points =
  match points with
  | [] | [ _ ] -> 0.0
  | _ ->
      let n = float_of_int (List.length points) in
      let sx = List.fold_left (fun acc (x, _) -> acc +. float_of_int x) 0.0 points in
      let sy = List.fold_left (fun acc (_, y) -> acc +. y) 0.0 points in
      let sxx = List.fold_left (fun acc (x, _) -> acc +. (float_of_int x ** 2.0)) 0.0 points in
      let sxy = List.fold_left (fun acc (x, y) -> acc +. (float_of_int x *. y)) 0.0 points in
      let denom = (n *. sxx) -. (sx *. sx) in
      if Float.abs denom < 1e-9 then 0.0 else ((n *. sxy) -. (sx *. sy)) /. denom

let to_report ~title measurements =
  let module R = Stdx.Report in
  let t =
    R.table ~title:"learning-gap summary by input length"
      [ ("|X|", R.Right); ("gap mean", R.Right); ("gap max", R.Right) ]
  in
  List.iter
    (fun (len, (s : Stdx.Stats.summary)) ->
      R.row t [ R.int len; R.float s.mean; R.float s.max ])
    (gap_by_length measurements);
  R.make ~id:"bounds" ~title [ R.finish t ]

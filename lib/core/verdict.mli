(** Per-run verdicts against the STP specification (§2.1/§2.4).

    Safety: at every point of the run, [Y] is a prefix of [X].
    Liveness (relative to the schedule actually played): every data
    item was written before the run ended.  A truncated-but-safe run
    that simply ran out of budget is reported as such, distinct from a
    quiescent deadlock. *)

type t = {
  safe : bool;  (** no point violated the prefix property *)
  complete : bool;  (** [|Y| = |X|] at the end *)
  deadlocked : bool;  (** the run stopped because nothing could ever change *)
  steps : int;
  messages : int;  (** total sends on both channels *)
  first_violation : int option;  (** earliest unsafe time, if any *)
  completed_at : int option;
}

val of_result : Kernel.Runner.result -> t

val all_good : t -> bool
(** Safe and complete. *)

val pp : Format.formatter -> t -> unit

val to_report : t -> Stdx.Report.t
(** The verdict as typed IR (id ["verdict"], [ok = all_good]). *)

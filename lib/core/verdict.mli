(** Per-run verdicts against the STP specification (§2.1/§2.4).

    Safety: at every point of the run, [Y] is a prefix of [X].
    Liveness (relative to the schedule actually played): every data
    item was written before the run ended.  A truncated-but-safe run
    that simply ran out of budget is reported as such, distinct from a
    quiescent deadlock. *)

type t = {
  safe : bool;  (** no point violated the prefix property *)
  complete : bool;  (** [|Y| = |X|] at the end *)
  deadlocked : bool;  (** the run stopped because nothing could ever change *)
  steps : int;
  messages : int;  (** total sends on both channels *)
  first_violation : int option;  (** earliest unsafe time, if any *)
  completed_at : int option;
  recovered : bool option;
      (** the recovery verdict, once {!assess_recovery} has been
          applied; [None] for ordinary (fault-free) runs *)
  stabilised : bool option;
      (** the stabilisation verdict, once {!assess_stabilisation} has
          been applied; [None] for runs that started in the designated
          states *)
}

val of_result : Kernel.Runner.result -> t
(** [recovered] starts as [None]; fault-injection callers refine it
    with {!assess_recovery}. *)

val all_good : t -> bool
(** Safe and complete. *)

val assess_recovery : last_fault:int -> within:int -> t -> t
(** The §5 recovery notion made executable: the run {e recovered} when
    it stayed safe, completed, and did so within [within] steps of the
    last injected fault ([completed_at <= last_fault + within]).
    Returns the verdict with [recovered = Some _].  A [last_fault]
    beyond the trace end ([> steps]) yields [Some false], not a
    vacuous pass — the claimed fault never landed inside the run;
    [within = 0] is the defined boundary "completed at the fault
    itself".  Negative arguments raise [Invalid_argument]. *)

val time_to_recover : last_fault:int -> t -> int option
(** Steps from the last injected fault to completion for a safe,
    completed run ([0] when the run finished before the fault landed);
    [None] when the run was unsafe, never completed, or the claimed
    fault time lies beyond the trace end. *)

val assess_stabilisation : within:int -> t -> t
(** The corrupted-start analogue of {!assess_recovery}: the run
    {e stabilised} when it stayed safe, completed, and did so within
    [within] steps of its (possibly corrupted) start
    ([completed_at <= within]).  Returns the verdict with
    [stabilised = Some _]; negative [within] raises. *)

val time_to_stabilise : t -> int option
(** Steps from the corrupted start to completion for a safe, completed
    run — the stabilisation time the E15 sweep maximises; [None] when
    the run was unsafe or never completed. *)

val pp : Format.formatter -> t -> unit

val to_report : t -> Stdx.Report.t
(** The verdict as typed IR (id ["verdict"], [ok = all_good], further
    required to have recovered when a recovery verdict is present). *)

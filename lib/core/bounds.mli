(** Empirical boundedness (Definition 2 and §5).

    A solution is [f]-bounded when, from any point after [t_{i−1}],
    some extension lets the receiver learn item [i] within [f(i)]
    steps without relying on long-lost messages.  Unbounded protocols
    — the paper's AFWZ89 stand-in — have learning times that grow with
    the run's history and the input's identity instead.

    These functions measure the distinction on simulated runs: build a
    mixed-input point universe (knowledge is only meaningful against
    the other inputs the receiver must distinguish), extract learning
    times, and aggregate the gaps [t_i − t_{i−1}].  A bounded protocol
    shows a gap profile that is flat in the input length; an unbounded
    one shows gaps growing with it. *)

type measurement = {
  input : int list;
  learning_gaps : int option list;  (** [t_i − t_{i−1}] per item *)
  max_gap : int option;  (** largest finite gap, [None] if nothing was learned *)
  total_learning_time : int option;  (** [t_n], if every item was learned *)
}

val measure :
  Kernel.Protocol.t ->
  xs:int list list ->
  strategy:Kernel.Strategy.t ->
  seeds:int list ->
  max_steps:int ->
  ?post_roll:int ->
  ?jobs:int ->
  unit ->
  measurement list
(** One measurement per (input, seed): runs every input under every
    seed, pools *all* traces into one universe (so indistinguishable
    views across inputs properly mask knowledge), and reads learning
    times per run.  [post_roll] (default 40) keeps recording after the
    output completes so late knowledge still lands inside the trace.
    [jobs] (default: [STP_JOBS] or 1) parallelises the independent
    seeded runs via {!Par.map}; results are order-stable across job
    counts. *)

val gap_by_length : measurement list -> (int * Stdx.Stats.summary) list
(** Group measurements by input length; summarise the max gap of each.
    The E4 series: flat for bounded protocols, growing for unbounded
    ones. *)

val growth_slope : (int * float) list -> float
(** Least-squares slope of [(x, y)] points — the single number E4/E5
    quote to separate "flat" from "growing".  Returns 0 for fewer than
    two distinct x values. *)

val to_report : title:string -> measurement list -> Stdx.Report.t
(** The {!gap_by_length} aggregation as typed IR (id ["bounds"]). *)

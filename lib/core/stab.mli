(** Self-stabilisation sweeps over corrupted-start state spaces.

    Dolev–Dubois–Potop-Butucaru–Tixeuil ask, for exactly our
    unreliable non-FIFO channels, which protocols converge when the
    machines boot in {e arbitrary} local states and how fast.  This
    module makes the question executable against a protocol's declared
    {!Kernel.Protocol.perturb} enumeration: {!sweep} runs every
    corrupted-start pair as a scheduler session over {!Batch} (exact,
    bit-identical at every job count) and folds per-point
    {!Verdict.assess_stabilisation} verdicts into a worst-case
    time-to-stabilise; {!search} does the adversarial half, a
    single-run BFS rooted at {e every} corruption simultaneously that
    hunts for a reachable safety violation — the witness that a
    protocol is not self-stabilising. *)

val space :
  Kernel.Protocol.t ->
  input:int array ->
  (Kernel.Protocol.corrupted * Kernel.Protocol.corrupted) list
(** The full corrupted-start product (sender × receiver enumerations),
    validated via {!Kernel.Protocol.validate_perturb} first.  Raises
    [Invalid_argument] for protocols without a [perturb] seam or with
    an ill-formed one. *)

type point = {
  s_label : string;
  r_label : string;
  verdict : Verdict.t;  (** with [stabilised] assessed *)
  tts : int option;  (** {!Verdict.time_to_stabilise} *)
}

type sweep = {
  protocol_name : string;
  input : int list;
  space_size : int;  (** corrupted-start pairs swept *)
  stabilised : int;  (** points that converged within the window *)
  worst_tts : int option;
      (** max time-to-stabilise over converging points; [None] when no
          point was safe and complete *)
  all_stabilised : bool;
  points : point list;  (** in enumeration order, deterministic *)
}

val sweep :
  ?jobs:int ->
  ?timeslice:int ->
  ?strategy:Kernel.Strategy.t ->
  ?max_steps:int ->
  Kernel.Protocol.t ->
  input:int array ->
  within:int ->
  seed:int ->
  unit ->
  sweep
(** Run one session per corrupted-start pair (rng [Rng.split seed i]
    per point, round-robin strategy by default) and assess
    stabilisation within [within] steps of the start.  Results are
    bit-identical at every [jobs]/[timeslice] by the {!Batch}
    determinism contract. *)

type witness = {
  w_s_label : string;
  w_r_label : string;  (** which corrupted start the violation grows from *)
  moves : Kernel.Move.t list;  (** schedule from that root to the violation *)
  violation_depth : int;
}

type outcome = No_violation of { closed : bool; states : int } | Violation of witness

val search :
  ?depth:int ->
  ?max_states:int ->
  ?allow_drops:bool ->
  ?max_sends_per_sender:int ->
  ?max_sends_per_receiver:int ->
  ?mem_budget_bytes:int ->
  ?stats:Attack.Stats.t ->
  Kernel.Protocol.t ->
  input:int array ->
  unit ->
  outcome
(** Exact BFS over the union of every corrupted root's reachable
    single-run space (send caps bound it), sharing one
    {!Attack.Runstate} transition store across all roots and keeping
    the bookkeeping succinct ({!Stdx.Frontier} queue, {!Stdx.Bitset}
    visited marks over store ids).  [No_violation {closed = true}]
    means no corrupted start can reach a safety violation under the
    caps — the exhaustive half of a stabilisation argument.
    [mem_budget_bytes] spills the frontier to disk past the budget
    exactly as in {!Attack.search_pair} — outcomes are byte-identical
    either way; [stats] merges the search's resource counters into an
    {!Attack.Stats} accumulator. *)

val replay : Kernel.Protocol.t -> input:int array -> witness -> bool
(** Rebuild the witness's corrupted root (by label) and replay its
    moves through {!Kernel.Sim.apply}; [true] iff the final state
    violates safety — the check that a reported witness is a real
    violation, not a search artefact. *)

val relabel_witness : Kernel.Symm.equivariance -> (int -> int) -> witness -> witness
(** Translate a witness through a data-alphabet permutation (moves via
    {!Kernel.Symm.relabel_move}; corruption labels pass through, which
    is sound exactly when the protocol's perturb enumeration is
    data-independent — true of the counter-and-flag enumerations
    (abp, abp-stab, stenning, stenning-mod, stenning-stab, go-back-n,
    gbn-stab), NOT of selective-repeat, whose poisoned buffers hold
    literal data values).  With {!replay} this is the
    relabel-replayability contract: a witness found on input [x]
    replays to a real violation on [π(x)]. *)

val margins : sweep -> (string * int * int * int option) list * (string * int * int * int option) list
(** Per-start marginal aggregates [(label, points, stabilised,
    worst_tts)], first grouped by sender start and then by receiver
    start, in enumeration order — which single-register corruption is
    the slowest to recover from, without scanning the product table. *)

val sweep_report : ?title:string -> sweep -> Stdx.Report.t
(** The sweep as typed IR (id ["stab"], [ok = all_stabilised] — a
    non-converging corrupted start fails the artifact gate, mirroring
    [stp verify]). *)

val outcome_items : outcome -> Stdx.Report.item list
(** Report items for a {!search} outcome, appended to a sweep report
    by [stp stab --search]. *)

module Proc = Kernel.Proc
module Protocol = Kernel.Protocol
module Event = Kernel.Event
module Action = Kernel.Action
module Strategy = Kernel.Strategy
module Chan = Channel.Chan

type classification = Broken_directly | Witnessed | Undecided | Survivor

type report = {
  samples : int;
  broken_directly : int;
  witnessed : int;
  undecided : int;
  survivors : int;
}

let xs = [ []; [ 0 ]; [ 1 ] ]

(* Table-driven processes.  Events for both processes are Wake and
   Deliver 0 (single-symbol alphabets); actions are drawn from small
   per-process menus. *)

type sender_cell = { s_next : int; s_send : bool }
type receiver_cell = { r_next : int; r_write : int option; r_ack : bool }

let run_sender_table table state event =
  let row = match event with Event.Wake -> fst table.(state) | Event.Deliver _ -> snd table.(state) in
  (row.s_next, if row.s_send then [ Action.Send 0 ] else [])

let run_receiver_table table state event =
  let row = match event with Event.Wake -> fst table.(state) | Event.Deliver _ -> snd table.(state) in
  let actions =
    (match row.r_write with Some d -> [ Action.Write d ] | None -> [])
    @ (if row.r_ack then [ Action.Send 0 ] else [])
  in
  (row.r_next, actions)

let random_sender_table rng ~states =
  Array.init states (fun _ ->
      let cell () = { s_next = Stdx.Rng.int rng states; s_send = Stdx.Rng.bool rng } in
      (cell (), cell ()))

let random_receiver_table rng ~states =
  Array.init states (fun _ ->
      let cell () =
        {
          r_next = Stdx.Rng.int rng states;
          r_write = (match Stdx.Rng.int rng 3 with 0 -> None | 1 -> Some 0 | _ -> Some 1);
          r_ack = Stdx.Rng.bool rng;
        }
      in
      (cell (), cell ()))

let sample_protocol rng ~states =
  (* Non-uniform: an independent sender table per allowable input. *)
  let sender_tables = List.map (fun x -> (x, random_sender_table rng ~states)) xs in
  let receiver_table = random_receiver_table rng ~states in
  {
    Protocol.name = "census-sample";
    sender_alphabet = 1;
    receiver_alphabet = 1;
    channel = Chan.Reorder_dup;
    make_sender =
      (fun ~input ->
        let table =
          match List.assoc_opt (Array.to_list input) sender_tables with
          | Some t -> t
          | None -> random_sender_table rng ~states
        in
        Proc.make ~state:0 ~step:(run_sender_table table) ());
    make_receiver = (fun () -> Proc.make ~state:0 ~step:(run_receiver_table receiver_table) ());
    (* Random lookup tables are identity-sensitive by construction. *)
    symmetry = None;
    perturb = None;
  }

let battery_spec =
  {
    Harness.strategies = [ Strategy.fair_random (); Strategy.round_robin; Strategy.dup_flood () ];
    seeds = [ 1; 2 ];
    max_steps = 400;
  }

let classify p =
  let report = Harness.verify p ~xs battery_spec in
  if not (Harness.clean report) then Broken_directly
  else begin
    (* Battery passed: by Theorem 1 the adversary must still win.  The
       only non-prefix pair in 𝒳 is (<0>, <1>). *)
    match Attack.search_pair p ~x1:[ 0 ] ~x2:[ 1 ] ~depth:100 ~max_states:50_000 () with
    | Attack.Witness _ -> Witnessed
    | Attack.No_violation { closed = true; _ } -> Survivor
    | Attack.No_violation { closed = false; _ } -> Undecided
  end

let run ~samples ?(states = 3) ?(seed = 1) ?jobs () =
  (* Sampling stays sequential (one rng stream, same protocols at any
     job count); classification — battery plus attack search, each
     with its own per-seed rngs — fans out over domains. *)
  let rng = Stdx.Rng.create seed in
  let rec draw n acc =
    if n = 0 then List.rev acc else draw (n - 1) (sample_protocol rng ~states :: acc)
  in
  let classes = Par.map ?jobs classify (draw samples []) in
  List.fold_left
    (fun r c ->
      match c with
      | Broken_directly -> { r with broken_directly = r.broken_directly + 1 }
      | Witnessed -> { r with witnessed = r.witnessed + 1 }
      | Undecided -> { r with undecided = r.undecided + 1 }
      | Survivor -> { r with survivors = r.survivors + 1 })
    { samples; broken_directly = 0; witnessed = 0; undecided = 0; survivors = 0 }
    classes

(* The at-the-bound control: 𝒳 = {⟨⟩, ⟨0⟩}, m = 1.  Sender: send the
   single symbol iff the input is non-empty; receiver: write 0 on the
   first delivery.  Correct over reorder+dup. *)
let control =
  {
    Protocol.name = "census-control";
    sender_alphabet = 1;
    receiver_alphabet = 1;
    channel = Chan.Reorder_dup;
    make_sender =
      (fun ~input ->
        Proc.make ~state:false
          ~step:(fun sent -> function
            | Event.Wake when (not sent) && Array.length input > 0 -> (true, [ Action.Send 0 ])
            | Event.Wake | Event.Deliver _ -> (sent, []))
          ());
    make_receiver =
      (fun () ->
        Proc.make ~state:false
          ~step:(fun written -> function
            | Event.Deliver _ when not written -> (true, [ Action.Write 0 ])
            | Event.Deliver _ | Event.Wake -> (written, []))
          ());
    symmetry = None;
    perturb = None;
  }

let control_is_clean () =
  let report = Harness.verify control ~xs:[ []; [ 0 ] ] battery_spec in
  Harness.clean report
  &&
  (* No non-prefix pair exists in {⟨⟩, ⟨0⟩}; run the single-run safety
     search on both inputs instead. *)
  List.for_all
    (fun x ->
      match Attack.search_single control ~x ~depth:60 () with
      | Attack.No_violation { closed = true; _ } -> true
      | Attack.No_violation { closed = false; _ } | Attack.Witness _ -> false)
    [ []; [ 0 ] ]

let ok r = r.survivors = 0 && r.undecided = 0

let to_report ~control r =
  let module R = Stdx.Report in
  R.make ~id:"census" ~title:"protocol-space census at m=1"
    ~ok:(ok r && control)
    [
      R.Metrics
        {
          title = None;
          pairs =
            [
              ("samples", R.int r.samples);
              ("broken_directly", R.int r.broken_directly);
              ("witnessed", R.int r.witnessed);
              ("undecided", R.int r.undecided);
              ("survivors", R.int r.survivors);
              ("control_clean", R.bool control);
            ];
        };
    ]

module Sched = Kernel.Sched

let shard ~jobs xs =
  let n = List.length xs in
  if jobs <= 1 || n <= 1 then [ xs ]
  else begin
    let k = min jobs n in
    let base = n / k and extra = n mod k in
    let rec take k xs =
      if k = 0 then ([], xs)
      else
        match xs with
        | [] -> ([], [])
        | x :: tl ->
            let hd, rest = take (k - 1) tl in
            (x :: hd, rest)
    in
    let rec go i xs acc =
      if i = k then List.rev acc
      else begin
        let size = base + if i < extra then 1 else 0 in
        let hd, rest = take size xs in
        go (i + 1) rest (hd :: acc)
      end
    in
    go 0 xs []
  end

let run_stats ?jobs ?timeslice sessions =
  let jobs = match jobs with Some j -> j | None -> Par.default_jobs () in
  match shard ~jobs sessions with
  | [ one ] -> Sched.run_stats ?timeslice one
  | shards ->
      let parts = Par.map ~jobs (Sched.run_stats ?timeslice) shards in
      ( List.concat_map fst parts,
        List.fold_left (fun acc (_, s) -> Sched.stats_merge acc s) Sched.stats_zero parts )

let run ?jobs ?timeslice sessions = fst (run_stats ?jobs ?timeslice sessions)

(** Protocol-space census: the theorems hold for *every* protocol, so
    sample the space and watch them all fall.

    E2/E3 attack a zoo of hand-written candidates.  The theorems are
    stronger — {e no} protocol, uniform or not, solves [𝒳]-STP(dup)
    with [|𝒳| > α(m)] — and this module probes that universality on
    the smallest interesting slice: sender alphabet [m = 1]
    ([α(1) = 2]), data domain [{0,1}], allowable set
    [𝒳 = {⟨⟩, ⟨0⟩, ⟨1⟩}] of size [3 > α(1)].

    A candidate is a pair of random transition tables (one sender
    table {e per input} — the paper's non-uniform senders — and one
    receiver table) over a bounded number of control states.  Each
    sampled candidate is classified:

    - [Broken_directly]: a fair schedule already exhibits a safety or
      liveness failure (the fate of most random tables);
    - [Witnessed]: the schedule battery passes but the product attack
      search produces a safety or starvation witness;
    - [Undecided]: the attack search was truncated (never observed at
      the census's sizes — reported so a truncation can never
      masquerade as a counterexample);
    - [Survivor]: clean battery and clean closed attack — a
      counterexample to Theorem 1.  The census's claim is that this
      count is zero.

    A hand-written control protocol at the bound ([𝒳 = {⟨⟩, ⟨0⟩}],
    size [α(1)]) keeps the census honest: the same classifier must
    declare it clean. *)

type classification = Broken_directly | Witnessed | Undecided | Survivor

type report = {
  samples : int;
  broken_directly : int;
  witnessed : int;
  undecided : int;
  survivors : int;
}

val sample_protocol : Stdx.Rng.t -> states:int -> Kernel.Protocol.t
(** One random table-driven candidate (non-uniform: an independent
    sender table per allowable input) with [states] control states per
    process, targeting the reorder+dup channel. *)

val classify : Kernel.Protocol.t -> classification
(** The battery-then-attack classifier described above, over
    [𝒳 = {⟨⟩, ⟨0⟩, ⟨1⟩}]. *)

val run : samples:int -> ?states:int -> ?seed:int -> ?jobs:int -> unit -> report
(** [run ~samples ()] samples and classifies.  [states] defaults to 3,
    [seed] to 1.  [jobs] (default: [STP_JOBS] or 1) parallelises the
    per-sample classification over that many domains; sampling itself
    stays sequential on one rng stream, so the report is identical at
    every job count. *)

val control_is_clean : unit -> bool
(** The at-the-bound control: a hand-written solution to
    [{⟨⟩, ⟨0⟩}]-STP(dup) with [m = 1] passes the battery and closes
    the attack search clean. *)

val ok : report -> bool
(** No survivors and nothing undecided. *)

val to_report : control:bool -> report -> Stdx.Report.t
(** The census as typed IR (id ["census"]); [control] is
    {!control_is_clean}'s verdict and participates in [ok]. *)

(** Constructive impossibility: the product attack search.

    The proofs of Theorems 1 and 2 steer two runs with different
    inputs into points the receiver cannot tell apart, then extend one
    until the receiver commits to output the other input's data —
    violating safety.  This module performs that construction on a
    concrete protocol: a breadth-first search over *pairs* of
    executions constrained so the receiver observes exactly the same
    events in both.

    - Receiver-visible moves ([Wake_receiver], [Deliver_to_receiver μ])
      are synchronised: a delivery is jointly enabled only if [μ] is
      deliverable in both runs.  Because the receiver is deterministic
      and starts in the same state (Property 1a), its states — and the
      output tape — remain identical in both runs throughout.
    - Sender-side moves (sender wake-ups, deliveries to the sender,
      drops) proceed independently per run, exactly as in the proofs
      ("for each run [r'] ∈ ℛ' we can find an extension …").

    A joint state where the common output violates the prefix property
    for either input is a {b safety witness}: a concrete pair of
    schedules under which the protocol writes wrong data.  A joint
    graph that closes (no unexplored states) without a violation and
    contains a fair-for-one-run cycle that cannot write past the
    common prefix is a {b starvation witness}: the adversary can keep
    one run's receiver ignorant forever while honouring that run's
    fairness.  For protocols meeting the [α(m)] bound the search
    closes with neither — the experimental face of tightness.

    Engine internals: both searches emit every generated global state
    into a reusable binary codec buffer ({!Stdx.Codec}) and hash-cons
    the bytes in place into a compact int id
    ({!Stdx.Intern.intern_bytes}), keying their tables, queues, and
    parent pointers on those ids — [(int * int)] pairs for the joint
    search — so a state's fingerprint is hashed at most once, never
    re-built for an already-seen state, and never re-compared.  The
    joint BFS additionally caches each node's expansion; the
    starvation pass consumes the cached graph instead of
    re-simulating the closed table.  Single-run transitions are
    memoised per input in a {!Runstate} store that {!search} shares
    across all pairs of a sweep.  BFS frontiers are chunked varint
    queues ({!Stdx.Frontier}) of bare ids rather than boxed queues.

    With [~symm:true], searches on protocols declaring an
    {!Kernel.Symm.equivariance} are quotiented by data-alphabet
    permutations: inputs are canonicalised by first-occurrence
    relabelling before searching, {!search} searches one
    representative per orbit of input pairs, and witness paths are
    translated back through the inverse permutation.  Outcomes are
    unchanged — up to m! of the work disappears.  See {!Kernel.Symm}
    and DESIGN.md ("The symmetry quotient"). *)

type joint_move =
  | Sync of Kernel.Move.t  (** receiver-visible; applied to both runs *)
  | Only1 of Kernel.Move.t  (** sender-side move of run 1 *)
  | Only2 of Kernel.Move.t

type kind =
  | Safety of { violated_run : int }
      (** 1 or 2: whose input the common output betrayed *)
  | Starvation of { starved_run : int }
      (** the graph closed; this run can be scheduled fairly forever
          while its receiver never writes past the common prefix *)

type witness = {
  x1 : int list;
  x2 : int list;
  kind : kind;
  joint_moves : joint_move list;  (** path from the initial joint state *)
  depth : int;
  states_explored : int;
}

type outcome =
  | Witness of witness
  | No_violation of { closed : bool; states_explored : int }
      (** [closed = true]: the whole joint space was exhausted —
          a proof (for this pair and these move bounds) that the
          adversary cannot win.  [closed = false]: search cut off by
          the depth or state budget. *)

(** Per-input memoised single-run transitions.

    A joint move decomposes into [Sim.apply] calls on one run, and a
    run's successor under a move depends only on that run's state — so
    an all-pairs sweep can compute each (state, move) successor once
    per {e input} and share it across every pair the input appears in.
    Store ids are interned {!Kernel.Global.emit_run_key} keys — the
    state fingerprint refined with the channel counters and safety
    bit, which is every observable the searches read and is closed
    under stepping — so the memo is exact for the search semantics:
    sharing a store can never change what any search computes, only
    how often the simulator runs.  A store is tied to one input:
    protocols may close over their input tape (the census families
    do), so stores are never shared across inputs.

    Stores are mutex-guarded; sharing one across the domains of a
    parallel sweep is safe, and at [jobs = 1] the uncontended lock is
    noise. *)
module Runstate : sig
  type t

  val create : ?memo:bool -> Kernel.Protocol.t -> x:int list -> t
  (** A fresh store for runs of [p] on input [x]; the initial state is
      interned as id 0.  [memo:false] disables the cache — every
      {!apply} simulates, reproducing the pre-memoisation engine's
      cost profile.  A diagnostic/benchmarking knob; the outcome of
      any search is the same either way. *)

  val initial : t -> Kernel.Global.t * int
  (** The initial global state and its id (always 0). *)

  val seed : t -> Kernel.Global.t -> int
  (** Intern an arbitrary root state and return its id — the
      corrupted-start seam: a stabilisation search seeds one id per
      enumerated corruption ({!Kernel.Global.initial} with perturbed
      processes) and shares the one transition store across every
      root's BFS, exactly as the all-pairs sweep shares it across
      pairs.  In [memo:false] mode ids are vestigial and [0] is
      returned. *)

  val apply :
    t -> Kernel.Global.t -> int -> Kernel.Move.t -> (Kernel.Global.t * int) option
  (** [apply t g id move] is the successor of [g] (whose store id is
      [id]) under [move], with its id — memoised per [(id, move)].
      [None] when the simulator rejects the move
      ([Sim.Model_violation]); the rejection is cached too. *)

  val states : t -> int
  (** Distinct states interned so far. *)

  val hits : t -> int
  (** Memo hits so far — the [Sim.apply] calls the store saved. *)
end

(** Lifetime resource counters for searches and sweeps.

    A [Stats.t] accumulator is threaded through any number of searches
    (it is mutex-guarded, so the parallel sweep merges into it from
    every domain): per-search peaks max-merge, spill volumes sum.  The
    frontier peaks ([peak_frontier_bytes], [peak_frontier_len]) and
    [peak_joint_states] are {e budget-invariant} — identical whether
    the frontier spilled or stayed resident — which is what lets
    {!outcome_report}/{!search_report} surface them in artifacts that
    must stay byte-identical across [mem_budget_bytes] settings.  The
    spill counters ([peak_resident_bytes], [spilled_bytes],
    [spill_chunks]) are budget-variant by design: they are what E16
    and the smoke targets assert against the budget, and they are
    deliberately kept out of report IR. *)
module Stats : sig
  type t

  type snapshot = {
    peak_frontier_bytes : int;
        (** worst single search's peak queued frontier bytes *)
    peak_frontier_len : int;  (** worst single search's peak queued ints *)
    peak_resident_bytes : int;
        (** worst single search's peak in-memory frontier footprint;
            under a budget, stays within
            [max mem_budget_bytes (2 * chunk capacity)] *)
    spilled_bytes : int;  (** total bytes written to spill files *)
    spill_chunks : int;  (** total chunks written to spill files *)
    peak_joint_states : int;  (** largest per-search state table *)
  }

  val create : unit -> t
  val snapshot : t -> snapshot

  val note : t -> Stdx.Frontier.stats -> joint_states:int -> unit
  (** Merge one finished search's frontier counters and state-table
      size into the accumulator — the seam other engines
      ({!Core.Stab}'s corrupted-root BFS) use to report through the
      same channel as the pair searches. *)
end

val search_pair :
  Kernel.Protocol.t ->
  x1:int list ->
  x2:int list ->
  ?depth:int ->
  ?max_states:int ->
  ?allow_drops:bool ->
  ?max_sends_per_sender:int ->
  ?max_sends_per_receiver:int ->
  ?max_seconds:float ->
  ?runstates:Runstate.t * Runstate.t ->
  ?mem_budget_bytes:int ->
  ?stats:Stats.t ->
  ?symm:bool ->
  unit ->
  outcome
(** [search_pair p ~x1 ~x2 ()] explores the joint system.
    [max_sends_per_sender] (default 24) caps each sender's total
    sends, keeping deletion-channel state spaces finite; the cap is
    generous relative to the input lengths used by the experiments
    and never binds on duplication channels (whose state saturates).
    [max_sends_per_receiver] (default 24) likewise caps the
    receiver's acknowledgement sends — necessary on deleting
    channels, where the reverse channel's multiset would otherwise
    grow without bound and the joint space would never close.
    Defaults: [depth = 64], [max_states = 200_000], [allow_drops]
    follows the protocol's channel kind.  [max_seconds] adds a
    CPU-time guard: an exceeded budget truncates the search
    ([closed = false]) like the state budget does, so a partial
    outcome comes back instead of an open-ended run.  [runstates]
    supplies the two
    runs' transition stores (run 1's first) — pass stores shared with
    other pairs to reuse their memoised transitions, as {!search}
    does; when omitted, fresh private stores are created.  Sharing
    never changes the outcome, only the work.  [mem_budget_bytes]
    bounds the BFS frontier's resident memory: past the budget, full
    chunks spill to an unlinked temp file and page back in FIFO order
    — the outcome (and any report built from it) is byte-identical to
    the unbounded search's, only where frontier bytes live changes.
    [stats] names an accumulator to merge this search's resource
    counters into (see {!Stats}).  [symm] (default
    [false]) searches the canonical relabelling of [(x1, x2)] and
    translates any witness back — a no-op unless the protocol
    declares an equivariance; ignored when [runstates] is supplied
    (caller stores are tied to the literal inputs). *)

val search_single :
  Kernel.Protocol.t ->
  x:int list ->
  ?depth:int ->
  ?max_states:int ->
  ?allow_drops:bool ->
  ?max_sends_per_sender:int ->
  ?max_sends_per_receiver:int ->
  ?max_seconds:float ->
  ?mem_budget_bytes:int ->
  ?stats:Stats.t ->
  ?symm:bool ->
  unit ->
  outcome
(** Single-run safety search: BFS over *one* run's full adversary
    choice space for a reachable unsafe state.  Catches violations
    that need no confuser pair — e.g. duplication making the
    Alternating Bit receiver write a third item on a two-item input.
    The witness's [x1 = x2 = x] and all moves are [Only1].  [symm]
    as in {!search_pair}. *)

val eligible_pairs : xs:int list list -> (int list * int list) list
(** The unordered pairs of distinct sequences in [xs] where neither is
    a prefix of the other — exactly the pairs {!search} sweeps (prefix
    pairs cannot produce safety witnesses: the shorter input is
    consistent with everything the receiver sees).  Exposed so
    experiments and benchmarks can report sweep sizes without
    duplicating the eligibility rule. *)

val canon_pair_swap :
  m:int ->
  int list ->
  int list ->
  (int list * int list) * Kernel.Symm.perm * bool
(** Canonical form of an input pair under the {e composed} quotient
    group — data-alphabet permutations × run swap: the smaller of
    [Symm.canon_pair ~m x1 x2] and [Symm.canon_pair ~m x2 x1].  The
    boolean is [true] when the swapped ordering won, i.e. the
    representative's outcome must be mirrored (runs exchanged) after
    relabelling.  Exposed so experiments can count composed-orbit
    representatives without re-deriving the rule {!search} applies. *)

val search :
  Kernel.Protocol.t ->
  xs:int list list ->
  ?depth:int ->
  ?max_states:int ->
  ?allow_drops:bool ->
  ?max_sends_per_sender:int ->
  ?max_sends_per_receiver:int ->
  ?max_seconds:float ->
  ?jobs:int ->
  ?mem_budget_bytes:int ->
  ?stats:Stats.t ->
  ?symm:bool ->
  ?swap_symm:bool ->
  unit ->
  (int list * int list * outcome) list * witness option
(** Runs {!search_pair} on every pair in [eligible_pairs ~xs].
    Returns all per-pair outcomes and the first witness found, if
    any.  One {!Runstate} store per distinct input is shared across
    all its pairs, so each single-run transition is simulated once
    per input rather than once per pair.  [jobs] (default: [STP_JOBS]
    or 1) fans the independent pair searches out over that many
    domains via {!Par.map}; the stores are safely shared and the
    outcomes and first witness are identical at every job count.

    [symm] (default [false]), on a protocol declaring an
    equivariance, searches one representative per orbit of eligible
    pairs under joint first-occurrence canonicalisation and expands
    the representative outcomes back over the full pair list in the
    original order, relabelling witnesses through each member's
    inverse permutation — the outcome list keeps exactly the
    unquotiented sweep's shape while up to m! of the pair searches
    are skipped.  Stores are then keyed by canonical inputs, which
    collide (and so share) far more often than raw inputs.
    [swap_symm] (default [true], meaningful only under [symm])
    composes the run-swap symmetry into the quotient: both orderings
    of a pair share one representative ({!canon_pair_swap}) and
    members whose orientation lost the canonical race get mirrored
    outcomes — sound because the joint system is run-exchange
    symmetric (see DESIGN.md, "Out-of-core search").
    [mem_budget_bytes] and [stats] are threaded to every pair search
    as in {!search_pair}. *)

val run_moves : witness -> which:int -> Kernel.Move.t list
(** Project the joint path onto one run's schedule ([which] ∈ {1,2}) —
    a replayable script for {!Kernel.Strategy.scripted}. *)

val pp_witness : Format.formatter -> witness -> unit

val outcome_report :
  x1:int list -> x2:int list -> ?stats:Stats.t -> outcome -> Stdx.Report.t
(** A single search outcome as typed IR (id ["attack"]); includes the
    witness metrics block when one was found.  [ok] is [None] — a
    witness is the expected result when probing past the bound.
    [stats] appends a "search resources" metrics block carrying the
    budget-invariant counters only (peak frontier bytes/length, peak
    joint states) — artifacts stay byte-identical across
    [mem_budget_bytes] settings. *)

val search_report :
  ?stats:Stats.t ->
  (int list * int list * outcome) list ->
  witness option ->
  Stdx.Report.t
(** The all-pairs sweep as typed IR: one row per pair plus the first
    witness, if any.  [stats] as in {!outcome_report}. *)

(** Probabilistic [𝒳]-STP — the paper's §6 future work, made
    executable.

    §6: "it is conceivable that we sometimes can be satisfied with
    'solutions' to [𝒳]-STP with [|𝒳| > α(m)] that, although having
    the *possibility* of failure, present an acceptably low
    *probability* of failure."  The paper notes the deterministic
    framework cannot express this; here we bolt a probabilistic
    environment onto the same simulator and measure: under a random
    (rather than adversarial) schedule, how often do the over-bound
    protocols actually fail?

    The answer the experiments (E8) show: the failure probability of
    the naive protocols is far from negligible and grows quickly with
    the input length — random reordering finds the bad interleavings
    all by itself — while protocols at the bound fail with probability
    exactly 0 (their failure set is empty, not just unlikely).  So the
    §6 relaxation does not rescue the simple candidates; a real
    probabilistic solution would need protocol-side randomness, which
    the paper leaves (and we leave) open. *)

type estimate = {
  trials : int;
  safety_failures : int;  (** runs that wrote wrong data *)
  liveness_failures : int;  (** runs that did not complete in budget *)
  p_fail : float;  (** (safety + liveness failures) / trials *)
  p_safety : float;  (** safety failures / trials *)
  wilson_upper : float;
      (** 95% Wilson upper bound on the failure probability — the
          honest claim when zero failures are observed *)
}

val estimate :
  Kernel.Protocol.t ->
  input:int list ->
  strategy:Kernel.Strategy.t ->
  trials:int ->
  max_steps:int ->
  ?seed:int ->
  ?post_roll:int ->
  ?jobs:int ->
  unit ->
  estimate
(** Monte-Carlo over independent seeded schedules.  [post_roll]
    (default 25) keeps each run alive past completion so overshoot
    violations (stale deliveries writing past the end of the input)
    are counted.  [jobs] (default: [STP_JOBS] or 1) fans the
    independently seeded trials out over domains; counts are identical
    at every job count. *)

val failure_by_length :
  Kernel.Protocol.t ->
  inputs:int list list ->
  strategy:Kernel.Strategy.t ->
  trials:int ->
  max_steps:int ->
  ?seed:int ->
  ?post_roll:int ->
  ?jobs:int ->
  unit ->
  (int * estimate) list
(** Group the inputs by length and pool the per-length estimates —
    the E8 series. *)

val wilson_upper : failures:int -> trials:int -> float
(** 95% (z = 1.96) Wilson score upper bound for a binomial
    proportion. *)

val to_report : (int * estimate) list -> Stdx.Report.t
(** A {!failure_by_length} series as typed IR (id ["proba"]). *)

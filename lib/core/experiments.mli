(** The reproduction experiments E1–E7.

    The paper (PODC 1989) is pure theory — no tables or figures — so
    each experiment operationalises one theorem or claim; DESIGN.md §3
    holds the index and EXPERIMENTS.md the paper-vs-measured record.
    Every driver returns both a rendered table and a boolean verdict
    stating whether the *shape* the paper predicts held on this
    execution; the test suite asserts the verdicts at small parameters
    and the benchmark harness prints the tables at full parameters.

    - {b E1} (Theorem 1 tightness): [α(m)] values and exhaustive
      verification that the §3 protocol transmits all [α(m)]
      repetition-free sequences over reorder+dup (and its §4 variant
      over reorder+del).
    - {b E2} (Theorem 1 impossibility): attack-search outcomes over
      reorder+dup — clean closures at the bound, concrete safety or
      starvation witnesses beyond it and for every zoo protocol that
      claims [|𝒳| > α(m)].
    - {b E3} (Theorem 2): the same over reorder+del against *bounded*
      protocols, plus the [c]/[δ_ℓ] resource table of Lemma 4.
    - {b E4} (Definition 2): learning-gap profiles — flat for the
      bounded §4 protocol, growing with input length for the unbounded
      ladder protocol.
    - {b E5} (§5): recovery time after a single injected fault — flat
      for the bounded protocol, growing with the input length for the
      weakly-bounded hybrid.
    - {b E6} (§2.3–2.4): knowledge timelines [t_i], their stability,
      and the lead of knowledge over writing.
    - {b E7}: cost context — messages per delivered item across the
      protocol zoo (alphabet size vs. traffic trade-off).  The paper
      makes no quantitative claim here; the verdict only checks that
      every correct protocol completed its runs.
    - {b E8} (§6 future work): Monte-Carlo failure probabilities of
      over-bound protocols under random fair schedules.
    - {b E9}: protocol-space census at [m = 1] — universality of
      Theorem 1 on sampled candidates.
    - {b E10}: the header-space / reordering-lag crossover on
      lag-bounded channels.
    - {b E11}: nested mutual knowledge — one causal round trip per
      level.
    - {b E12}: recoverability (dead-state analysis), Property 2's
      executable face. *)

type result = Stdx.Report.t
(** Each experiment now builds a typed {!Stdx.Report} instead of a
    rendered string: the text renderer reproduces the old
    {!Stdx.Tabular} output byte-for-byte, and the same value feeds the
    JSON/CSV artifact writers.  The legacy field reads are available
    as accessors below. *)

val id : result -> string
(** "E1" … "E12". *)

val title : result -> string

val ok : result -> bool
(** The paper-predicted shape held. *)

val table : result -> string
(** The rendered text body — identical bytes to the pre-IR [table]
    field. *)

val notes : result -> string list
(** Caveats, parameters, deviations. *)

val e1_alpha_tightness : ?m_max:int -> ?m_verify:int -> ?seeds:int -> unit -> result
(** [m_max] (default 12) rows of the α table; exhaustive protocol
    verification for [m ≤ m_verify] (default 3; 4 is still fast). *)

val e2_dup_attacks : ?m:int -> unit -> result
(** Attack table over reorder+dup instances with domain/alphabet size
    [m] (default 2). *)

val e3_del_attacks : ?m:int -> ?f_const:int -> unit -> result
(** Attack table over reorder+del, plus the [δ_ℓ] resource column for
    an [f(i) = f_const] bound (default 4). *)

val e4_boundedness : ?domain:int -> ?max_len:int -> ?seeds:int -> unit -> result

val e5_weak_boundedness : ?domain:int -> ?max_len:int -> ?seeds:int -> unit -> result

val e6_knowledge_timeline : ?m:int -> ?seeds:int -> unit -> result

val e7_throughput : ?seeds:int -> ?max_len:int -> unit -> result

val e8_probabilistic : ?trials:int -> ?max_len:int -> unit -> result
(** The §6 extension: Monte-Carlo failure probabilities of over-bound
    protocols under random fair schedules vs. the tight protocol's
    empty failure set. *)

val e9_census : ?samples:int -> ?states:int -> unit -> result
(** The universality probe: random non-uniform protocols at [m = 1]
    against [|𝒳| = 3 > α(1)], plus the at-the-bound control. *)

val e10_crossover : ?h_max:int -> ?lag_max:int -> unit -> result
(** Bounded-header Stenning over lag-bounded reordering channels: each
    (header space, lag) cell is an exhaustive attack verdict; the
    witness/clean boundary sits at [h = lag + 2]. *)

val e11_knowledge_ladder : ?m:int -> ?seeds:int -> ?depth:int -> unit -> result
(** Nested mutual knowledge [K_S φ], [K_R K_S φ], … of a delivery
    fact: each level's first-attainment time is one causal round trip
    later, and the ladder falls off — the finite-run face of the
    common-knowledge impossibility. *)

val e12_recoverability : ?input:int list -> unit -> result
(** Property 2's executable face: exhaustive dead-state analysis —
    retransmitting protocols keep completion reachable from every
    state, one-shot senders die with the first deletion. *)

val all : ?quick:bool -> unit -> result list
(** Every experiment; [quick] (default false) shrinks parameters to
    test-suite scale. *)

val pp_result : Format.formatter -> result -> unit

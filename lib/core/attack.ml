module Chan = Channel.Chan
module Global = Kernel.Global
module Move = Kernel.Move
module Sim = Kernel.Sim
module Protocol = Kernel.Protocol
module Symm = Kernel.Symm
module Xset = Seqspace.Xset
module IntSet = Set.Make (Int)

type joint_move = Sync of Move.t | Only1 of Move.t | Only2 of Move.t

let run_debt (g : Global.t) = Chan.debt g.Global.chan_sr + Chan.debt g.Global.chan_rs

type kind = Safety of { violated_run : int } | Starvation of { starved_run : int }

type witness = {
  x1 : int list;
  x2 : int list;
  kind : kind;
  joint_moves : joint_move list;
  depth : int;
  states_explored : int;
}

type outcome =
  | Witness of witness
  | No_violation of { closed : bool; states_explored : int }

(* Joint states are keyed by pairs of interned ids: each run's global
   state is hash-consed (by its canonical binary fingerprint, emitted
   into a reusable codec buffer) into a compact int the moment it is
   first generated, and every table, queue, and parent pointer in the
   search works over [(int * int)] keys from then on.  The fingerprint
   — which embeds marshalled process states — is hashed at most once
   per generated successor, never copied for an already-seen state,
   and not built at all for the side an [Only1]/[Only2] move leaves
   untouched (that side inherits the parent's id). *)
type key = int * int

type node = {
  g1 : Global.t;
  g2 : Global.t;
  rsid1 : int;  (* per-x Runstate ids of [g1]/[g2]: the successor-cache
                   keys, distinct from the per-pair joint ids *)
  rsid2 : int;
  parent : (key * joint_move) option;
  node_depth : int;
  mutable edges : (joint_move * key) list;
      (* Expansion cache: the node's non-violating [(move, successor)]
         list, filled when the BFS expands it.  The starvation pass
         reuses it instead of re-running [Sim.apply] over the whole
         closed table a second time. *)
}

(* A per-input single-run transition store.  Every joint move
   decomposes into [Sim.apply] calls on one run, and a run's successor
   under a move depends only on its own state — not on which pair the
   search happens to be exploring.  So an all-pairs sweep over α(m)
   inputs can compute each (state, move) successor once per *input*
   and share it across the α(m)−1 pairs that input participates in,
   instead of recomputing it per pair.

   Store ids are interned [Global.emit_run_key] keys: the state
   fingerprint refined with the channel counters and the safety bit —
   every observable an engine decision reads.  That key is closed
   under stepping (histories and the clock, the only excluded fields,
   are write-only accumulators that never feed back into evolution),
   so memoising on [(parent key id, move)] returns a successor that
   is behaviourally interchangeable with the one a fresh [Sim.apply]
   would build, for this pair and every other: joint keys, safety
   checks, cap checks, and the starvation analysis all read through
   the key.  Note a plain fingerprint would NOT be a sound memo key —
   it quotients away the send counters that the cap checks observe.
   The store is keyed by the input value as well: protocols may close
   over their input tape (the census families do), so equal keys
   under different inputs are not interchangeable and stores are
   never shared across inputs.

   The store is mutex-guarded so the parallel pair sweep can share it
   across domains; at the default [jobs = 1] the lock is uncontended
   and costs a few nanoseconds per hit.  Cached [Global.t] values are
   shared freely: they are persistent, and their lazily-memoised
   component encodings are write-once with equal values on every
   writer. *)
module Runstate = struct
  type t = {
    p : Protocol.t;
    x : int list;
    intern : Stdx.Intern.t;  (* run-key bytes → dense state id *)
    scratch : Stdx.Codec.t;
    stride : int;
        (* distinct move codes for this protocol's alphabets: memo keys
           are the flat int [id * stride + move code], so lookups hash
           one immediate int instead of a boxed (int, Move.t) pair *)
    succ : (int, (Global.t * int) option) Hashtbl.t;
        (* packed (parent state id, move) → successor and its id, or
           None when the simulator rejects the move
           ([Sim.Model_violation]). *)
    lock : Mutex.t;
    g0 : Global.t;
    memo : bool;
    mutable hits : int;  (* cache hits — the work the sweep shares *)
  }

  (* Every move a search can feed the store, numbered densely: message
     values are bounded by the declared alphabets ([validate_action]
     enforces this), so the code space has a fixed stride per state. *)
  let move_code ~sa ~ra = function
    | Move.Wake_sender -> 0
    | Move.Wake_receiver -> 1
    | Move.Restart_sender -> 2
    | Move.Restart_receiver -> 3
    | Move.Deliver_to_receiver m -> 4 + m
    | Move.Drop_to_receiver m -> 4 + sa + m
    | Move.Deliver_to_sender m -> 4 + (2 * sa) + m
    | Move.Drop_to_sender m -> 4 + (2 * sa) + ra + m
    (* Corruption happens at search roots (seeded via [seed]), never
       as a searched transition, so no caller ever feeds these here. *)
    | Move.Corrupt_sender _ | Move.Corrupt_receiver _ ->
        invalid_arg "Runstate: corrupt-state moves are roots, not transitions"

  (* Caller must hold [lock]. *)
  let sid t g =
    Stdx.Codec.reset t.scratch;
    Global.emit_run_key t.scratch g;
    fst
      (Stdx.Intern.intern_bytes t.intern (Stdx.Codec.buffer t.scratch) ~pos:0
         ~len:(Stdx.Codec.length t.scratch))

  let create ?(memo = true) p ~x =
    let t =
      {
        p;
        x;
        intern = Stdx.Intern.create ~size:64 ();
        scratch = Stdx.Codec.create ~size:256 ();
        stride = 4 + (2 * (p.Protocol.sender_alphabet + p.Protocol.receiver_alphabet));
        succ = Hashtbl.create 64;
        lock = Mutex.create ();
        g0 = Global.initial p ~input:(Array.of_list x);
        memo;
        hits = 0;
      }
    in
    if memo then ignore (sid t t.g0 : int);
    t

  let initial t = (t.g0, 0)

  (* Intern an arbitrary root state — the corrupted-start seam: a
     stabilisation search seeds one id per enumerated corruption and
     then shares the one transition store across every root's BFS,
     exactly as the all-pairs sweep shares it across pairs. *)
  let seed t g =
    if not t.memo then 0
    else begin
      Mutex.lock t.lock;
      Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) (fun () -> sid t g)
    end

  let apply t g id move =
    if not t.memo then
      (* The pre-memoisation engine: simulate unconditionally, no
         table, no lock (nothing is mutated).  Kept for benchmarking
         the memo's effect; ids are vestigial in this mode. *)
      match Sim.apply t.p g move with
      | exception Sim.Model_violation _ -> None
      | g' -> Some (g', 0)
    else begin
      Mutex.lock t.lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.lock)
        (fun () ->
          let sa = t.p.Protocol.sender_alphabet in
          let ra = t.p.Protocol.receiver_alphabet in
          let k = (id * t.stride) + move_code ~sa ~ra move in
          match Hashtbl.find_opt t.succ k with
          | Some r ->
              t.hits <- t.hits + 1;
              r
          | None ->
              let r =
                match Sim.apply t.p g move with
                | exception Sim.Model_violation _ -> None
                | g' -> Some (g', sid t g')
              in
              Hashtbl.add t.succ k r;
              r)
    end

  let states t = Stdx.Intern.length t.intern

  let hits t = t.hits
end

(* Lifetime resource counters for a search or sweep.  The peaks are
   budget-invariant — a spilled frontier queues exactly the bytes an
   unbounded one does, and the joint table never depends on where the
   frontier lives — so they are safe to surface in reports that must
   stay byte-identical across [mem_budget_bytes] settings.  The spill
   counters ([peak_resident_bytes], [spilled_bytes], [spill_chunks])
   are budget-*variant* by design: they are what E16 and the smoke
   targets assert against the budget, and they stay out of report IR.
   The accumulator is mutex-guarded because [search] merges into it
   from every domain of the parallel pair sweep. *)
module Stats = struct
  type snapshot = {
    peak_frontier_bytes : int;
    peak_frontier_len : int;
    peak_resident_bytes : int;
    spilled_bytes : int;
    spill_chunks : int;
    peak_joint_states : int;
  }

  type t = { lock : Mutex.t; mutable s : snapshot }

  let create () =
    {
      lock = Mutex.create ();
      s =
        {
          peak_frontier_bytes = 0;
          peak_frontier_len = 0;
          peak_resident_bytes = 0;
          spilled_bytes = 0;
          spill_chunks = 0;
          peak_joint_states = 0;
        };
    }

  (* Per-search peaks max-merge (the sweep-wide peak is the worst
     single search); spill volumes sum (total I/O the sweep did). *)
  let note t (fs : Stdx.Frontier.stats) ~joint_states =
    Mutex.lock t.lock;
    let s = t.s in
    t.s <-
      {
        peak_frontier_bytes = max s.peak_frontier_bytes fs.Stdx.Frontier.peak_bytes;
        peak_frontier_len = max s.peak_frontier_len fs.Stdx.Frontier.peak_len;
        peak_resident_bytes =
          max s.peak_resident_bytes fs.Stdx.Frontier.peak_resident_bytes;
        spilled_bytes = s.spilled_bytes + fs.Stdx.Frontier.spilled_bytes;
        spill_chunks = s.spill_chunks + fs.Stdx.Frontier.spill_chunks;
        peak_joint_states = max s.peak_joint_states joint_states;
      };
    Mutex.unlock t.lock

  let snapshot t =
    Mutex.lock t.lock;
    let s = t.s in
    Mutex.unlock t.lock;
    s
end

(* Both arguments ascending (the [Chan.deliverable] contract): a
   sorted merge instead of the quadratic [List.mem] scan. *)
let intersect xs ys =
  let rec go xs ys =
    match (xs, ys) with
    | [], _ | _, [] -> []
    | x :: xs', y :: ys' ->
        if x = y then x :: go xs' ys' else if x < y then go xs' ys else go xs ys'
  in
  go xs ys

(* Candidate joint moves from a joint state.  Receiver-visible moves
   are synchronised; sender-side moves act on one run. *)
let expansions ~allow_drops ~send_cap ~recv_cap (g1 : Global.t) (g2 : Global.t) =
  (* The receiver acts identically in both runs, so capping its sends
     by run 1's reverse-channel total caps both. *)
  let wake_r =
    if Chan.sent_total g1.Global.chan_rs < recv_cap then [ Sync Move.Wake_receiver ] else []
  in
  let sync =
    wake_r
    @ List.map
         (fun m -> Sync (Move.Deliver_to_receiver m))
         (intersect (Chan.deliverable g1.Global.chan_sr) (Chan.deliverable g2.Global.chan_sr))
  in
  let side tag (g : Global.t) =
    let wake =
      if Chan.sent_total g.Global.chan_sr < send_cap then [ tag Move.Wake_sender ] else []
    in
    let acks = List.map (fun m -> tag (Move.Deliver_to_sender m)) (Chan.deliverable g.Global.chan_rs) in
    let drops =
      if allow_drops then
        List.map (fun m -> tag (Move.Drop_to_receiver m)) (Chan.droppable g.Global.chan_sr)
        @ List.map (fun m -> tag (Move.Drop_to_sender m)) (Chan.droppable g.Global.chan_rs)
      else []
    in
    wake @ acks @ drops
  in
  sync @ side (fun m -> Only1 m) g1 @ side (fun m -> Only2 m) g2

(* Starvation analysis over a *closed* joint graph.

   A component (SCC) of the joint graph certifies starvation of run i
   when the adversary can cycle in it forever while remaining fair to
   run i, with the output tape — constant across any cycle — leaving
   run i incomplete.  Fairness of the projected run i requires, within
   the component:
   - an [Only_i Wake_sender] edge and a [Sync Wake_receiver] edge
     (both processes keep taking steps);
   - on duplication channels: a [Sync (Deliver_to_receiver μ)] edge
     for every μ the run-i forward channel holds (the set is constant
     across the component) and an [Only_i (Deliver_to_sender μ)] edge
     for every μ its reverse channel holds — every send keeps being
     matched by deliveries (Property 1c);
   - on deleting channels: a state in the component where run i's
     channels are empty (everything sent was delivered).

   Drop edges are excluded from the graph before the component
   analysis: a fair cycle must not owe its progress to the adversary
   eating messages, and the adversary is free never to play them. *)
module Starved = struct
  let no_key : key = (-1, -1)

  type comp_stats = {
    mutable wake1 : bool;
    mutable wake2 : bool;
    mutable wake_r : bool;
    mutable sync_dlv : IntSet.t;
    mutable ack1 : IntSet.t;
    mutable ack2 : IntSet.t;
    mutable has_edge : bool;
    mutable debt0_key_1 : key option; (* a state with run-1 channels empty *)
    mutable debt0_key_2 : key option;
    mutable rep : key;
  }

  let fresh_stats rep =
    {
      wake1 = false;
      wake2 = false;
      wake_r = false;
      sync_dlv = IntSet.empty;
      ack1 = IntSet.empty;
      ack2 = IntSet.empty;
      has_edge = false;
      debt0_key_1 = None;
      debt0_key_2 = None;
      rep;
    }

  (* Iterative Tarjan SCC over an integer-indexed graph.  The on-stack
     flags live in a bit-packed set rather than a [bool array] — one
     bit per vertex instead of a byte, and the GC never scans it. *)
  let tarjan n succs =
    let index = Array.make n (-1) in
    let lowlink = Array.make n 0 in
    let on_stack = Stdx.Bitset.create ~size:(max 1 n) () in
    let comp = Array.make n (-1) in
    let stack = ref [] in
    let next_index = ref 0 in
    let next_comp = ref 0 in
    let strongconnect v =
      (* Explicit work stack: (vertex, iterator position). *)
      let work = Stack.create () in
      Stack.push (v, 0) work;
      index.(v) <- !next_index;
      lowlink.(v) <- !next_index;
      incr next_index;
      stack := v :: !stack;
      ignore (Stdx.Bitset.add on_stack v : bool);
      while not (Stack.is_empty work) do
        let u, i = Stack.pop work in
        let children = succs.(u) in
        if i < Array.length children then begin
          Stack.push (u, i + 1) work;
          let w = children.(i) in
          if index.(w) = -1 then begin
            index.(w) <- !next_index;
            lowlink.(w) <- !next_index;
            incr next_index;
            stack := w :: !stack;
            ignore (Stdx.Bitset.add on_stack w : bool);
            Stack.push (w, 0) work
          end
          else if Stdx.Bitset.mem on_stack w then
            lowlink.(u) <- min lowlink.(u) index.(w)
        end
        else begin
          if lowlink.(u) = index.(u) then begin
            let rec pop () =
              match !stack with
              | [] -> ()
              | w :: rest ->
                  stack := rest;
                  Stdx.Bitset.remove on_stack w;
                  comp.(w) <- !next_comp;
                  if w <> u then pop ()
            in
            pop ();
            incr next_comp
          end;
          match Stack.top_opt work with
          | Some (parent, _) -> lowlink.(parent) <- min lowlink.(parent) lowlink.(u)
          | None -> ()
        end
      done
    in
    for v = 0 to n - 1 do
      if index.(v) = -1 then strongconnect v
    done;
    (comp, !next_comp)

  let find ~table_keys ~expand ~channel =
    (* Index the states. *)
    let keys = ref [] in
    let globals : (key, Global.t * Global.t) Hashtbl.t = Hashtbl.create 1024 in
    table_keys (fun key g1 g2 ->
        keys := key :: !keys;
        Hashtbl.replace globals key (g1, g2));
    let key_arr = Array.of_list !keys in
    let n = Array.length key_arr in
    let idx_of : (key, int) Hashtbl.t = Hashtbl.create n in
    Array.iteri (fun i k -> Hashtbl.replace idx_of k i) key_arr;
    let is_drop = function
      | Move.Drop_to_receiver _ | Move.Drop_to_sender _ -> true
      | Move.Wake_sender | Move.Wake_receiver | Move.Deliver_to_receiver _
      | Move.Deliver_to_sender _ | Move.Restart_sender | Move.Restart_receiver
      | Move.Corrupt_sender _ | Move.Corrupt_receiver _ ->
          false
    in
    let is_drop_jm = function Sync m | Only1 m | Only2 m -> is_drop m in
    let edges =
      Array.map
        (fun k -> Array.of_list (List.filter (fun (jm, _) -> not (is_drop_jm jm)) (expand k)))
        key_arr
    in
    let succs =
      Array.map
        (fun es ->
          Array.of_list
            (List.filter_map (fun (_, k') -> Hashtbl.find_opt idx_of k') (Array.to_list es)))
        edges
    in
    let comp, n_comps = tarjan n succs in
    let stats = Array.init n_comps (fun _ -> fresh_stats no_key) in
    Array.iteri
      (fun i k -> if stats.(comp.(i)).rep = no_key then stats.(comp.(i)).rep <- k)
      key_arr;
    (* Intra-component edge statistics. *)
    Array.iteri
      (fun u es ->
        let cu = comp.(u) in
        Array.iter
          (fun (jm, k') ->
            match Hashtbl.find_opt idx_of k' with
            | Some v when comp.(v) = cu -> begin
                let s = stats.(cu) in
                s.has_edge <- true;
                match jm with
                | Only1 Move.Wake_sender -> s.wake1 <- true
                | Only2 Move.Wake_sender -> s.wake2 <- true
                | Sync Move.Wake_receiver -> s.wake_r <- true
                | Sync (Move.Deliver_to_receiver m) -> s.sync_dlv <- IntSet.add m s.sync_dlv
                | Only1 (Move.Deliver_to_sender m) -> s.ack1 <- IntSet.add m s.ack1
                | Only2 (Move.Deliver_to_sender m) -> s.ack2 <- IntSet.add m s.ack2
                | _ -> ()
              end
            | _ -> ())
          es)
      edges;
    (* Debt-free states per component (deleting channels only). *)
    Array.iteri
      (fun i k ->
        let g1, g2 = Hashtbl.find globals k in
        let s = stats.(comp.(i)) in
        if run_debt g1 = 0 && s.debt0_key_1 = None then s.debt0_key_1 <- Some k;
        if run_debt g2 = 0 && s.debt0_key_2 = None then s.debt0_key_2 <- Some k)
      key_arr;
    let dup = Chan.duplicates channel in
    let check s which =
      let rep_g1, rep_g2 = Hashtbl.find globals s.rep in
      let g = if which = 1 then rep_g1 else rep_g2 in
      let wake_i = if which = 1 then s.wake1 else s.wake2 in
      let acks_i = if which = 1 then s.ack1 else s.ack2 in
      let debt0_i = if which = 1 then s.debt0_key_1 else s.debt0_key_2 in
      if (not s.has_edge) || Global.complete g || (not wake_i) || not s.wake_r then None
      else if dup then begin
        let fwd_ok =
          List.for_all (fun m -> IntSet.mem m s.sync_dlv) (Chan.deliverable g.Global.chan_sr)
        in
        let rev_ok =
          List.for_all (fun m -> IntSet.mem m acks_i) (Chan.deliverable g.Global.chan_rs)
        in
        if fwd_ok && rev_ok then Some (s.rep, which) else None
      end
      else begin
        match debt0_i with Some key -> Some (key, which) | None -> None
      end
    in
    let result = ref None in
    Array.iter
      (fun s ->
        if !result = None then begin
          match check s 1 with
          | Some r -> result := Some r
          | None -> ( match check s 2 with Some r -> result := Some r | None -> ())
        end)
      stats;
    !result
end

let path_to table key =
  let rec go key acc =
    match (Hashtbl.find table key).parent with
    | None -> acc
    | Some (pkey, move) -> go pkey (move :: acc)
  in
  go key []

let is_prefix = Xset.is_prefix

(* Wall-clock resource guard shared by the two searches: a [None]
   budget never fires; an exceeded budget truncates the search exactly
   like the state budget does ([closed = false]), so callers get a
   partial outcome instead of an open-ended run. *)
let make_deadline = function
  | None -> fun () -> false
  | Some seconds ->
      let d = Sys.time () +. seconds in
      fun () -> Sys.time () > d

let search_pair_raw (p : Protocol.t) ~x1 ~x2 ?(depth = 64) ?(max_states = 200_000)
    ?allow_drops ?(max_sends_per_sender = 24) ?(max_sends_per_receiver = 24) ?max_seconds
    ?runstates ?mem_budget_bytes ?stats () =
  let allow_drops =
    match allow_drops with Some b -> b | None -> Chan.deletes p.Protocol.channel
  in
  let over_deadline = make_deadline max_seconds in
  let rs1, rs2 =
    match runstates with
    | Some rr -> rr
    | None -> (Runstate.create p ~x:x1, Runstate.create p ~x:x2)
  in
  (* The per-pair joint namespace: ids here number states in the exact
     order this pair's BFS generates them (the starvation pass's
     representative choice iterates the table, so the numbering is
     part of the observable behaviour).  Runstate ids live in a
     separate per-x namespace and never leak into joint keys. *)
  let intern = Stdx.Intern.create ~size:64 () in
  let scratch = Stdx.Codec.create ~size:256 () in
  let gid g =
    Stdx.Codec.reset scratch;
    Global.emit scratch g;
    fst
      (Stdx.Intern.intern_bytes intern (Stdx.Codec.buffer scratch) ~pos:0
         ~len:(Stdx.Codec.length scratch))
  in
  let table : (key, node) Hashtbl.t = Hashtbl.create 64 in
  (* The frontier holds only the joint ids, varint-packed into chunked
     codec buffers — the node (globals, parent, depth) already lives in
     [table], so queueing boxed keys or tuples would pay twice.  Under
     a byte budget it spills full chunks to disk; [close] in the
     [finally] releases the spill fd on every exit path. *)
  let frontier = Stdx.Frontier.create ?mem_budget_bytes () in
  Fun.protect
    ~finally:(fun () ->
      (match stats with
      | Some s ->
          Stats.note s (Stdx.Frontier.stats frontier)
            ~joint_states:(Hashtbl.length table)
      | None -> ());
      Stdx.Frontier.close frontier)
  @@ fun () ->
  let g1_0, rsid1_0 = Runstate.initial rs1 in
  let g2_0, rsid2_0 = Runstate.initial rs2 in
  (* Historical id order: the g2 side of a joint key is interned
     first (the original tuple construction evaluated right to
     left). *)
  let b0 = gid g2_0 in
  let a0 = gid g1_0 in
  let key0 = (a0, b0) in
  Hashtbl.replace table key0
    {
      g1 = g1_0;
      g2 = g2_0;
      rsid1 = rsid1_0;
      rsid2 = rsid2_0;
      parent = None;
      node_depth = 0;
      edges = [];
    };
  Stdx.Frontier.push2 frontier a0 b0;
  let result = ref None in
  let truncated = ref false in
  let check_safety key (node : node) =
    if !result = None then begin
      if not (Global.safety_ok node.g1) then
        result := Some (key, Safety { violated_run = 1 })
      else if not (Global.safety_ok node.g2) then
        result := Some (key, Safety { violated_run = 2 })
    end
  in
  check_safety key0 (Hashtbl.find table key0);
  while (not (Stdx.Frontier.is_empty frontier)) && !result = None do
    if over_deadline () then begin
      truncated := true;
      Stdx.Frontier.clear frontier
    end
    else begin
    let key = Stdx.Frontier.pop2 frontier in
    let node = Hashtbl.find table key in
    if node.node_depth >= depth then truncated := true
    else begin
      let edges = ref [] in
      List.iter
        (fun jm ->
          if !result = None then begin
            (* Each side steps through the shared per-x store, so the
               [Sim.apply] under this (state, move) runs once per input
               across the whole sweep.  An [Only1]/[Only2] move leaves
               the other run's state physically unchanged: reuse the
               parent's ids for that side instead of re-encoding it.
               A [None] successor is a simulator-rejected move; the
               joint move is skipped, as the violation used to be. *)
            let succ =
              match jm with
              | Sync m -> (
                  match Runstate.apply rs2 node.g2 node.rsid2 m with
                  | None -> None
                  | Some (g2', r2) -> (
                      match Runstate.apply rs1 node.g1 node.rsid1 m with
                      | None -> None
                      | Some (g1', r1) ->
                          let b = gid g2' in
                          let a = gid g1' in
                          Some (g1', g2', r1, r2, (a, b))))
              | Only1 m -> (
                  match Runstate.apply rs1 node.g1 node.rsid1 m with
                  | None -> None
                  | Some (g1', r1) ->
                      let a = gid g1' in
                      Some (g1', node.g2, r1, node.rsid2, (a, snd key)))
              | Only2 m -> (
                  match Runstate.apply rs2 node.g2 node.rsid2 m with
                  | None -> None
                  | Some (g2', r2) ->
                      let b = gid g2' in
                      Some (node.g1, g2', node.rsid1, r2, (fst key, b)))
            in
            match succ with
            | None -> ()
            | Some (g1', g2', rsid1, rsid2, key') ->
                edges := (jm, key') :: !edges;
                if not (Hashtbl.mem table key') then begin
                  if Hashtbl.length table >= max_states then truncated := true
                  else begin
                    let node' =
                      {
                        g1 = g1';
                        g2 = g2';
                        rsid1;
                        rsid2;
                        parent = Some (key, jm);
                        node_depth = node.node_depth + 1;
                        edges = [];
                      }
                    in
                    Hashtbl.replace table key' node';
                    check_safety key' node';
                    Stdx.Frontier.push2 frontier (fst key') (snd key')
                  end
                end
          end)
        (expansions ~allow_drops ~send_cap:max_sends_per_sender
           ~recv_cap:max_sends_per_receiver node.g1 node.g2);
      node.edges <- List.rev !edges
    end
    end
  done;
  let states_explored = Hashtbl.length table in
  match !result with
  | Some (key, kind) ->
      let moves = path_to table key in
      Witness
        { x1; x2; kind; joint_moves = moves; depth = List.length moves; states_explored }
  | None ->
      let closed = not !truncated in
      if not closed then No_violation { closed = false; states_explored }
      else begin
        (* The joint space is exhausted with no safety violation, so no
           reachable joint output passes the common prefix.  Look for a
           starvation witness: a cycle the adversary can spin forever
           that is *fair* for one run — its sender and the receiver
           keep being scheduled and everything it sends keeps being
           delivered — while the (frozen) output leaves that run
           incomplete.  Projected on that run, the lasso is a fair run
           violating liveness.  Every node of the closed graph was
           expanded by the BFS, so its cached edges are the full
           (non-violating) successor list — no second [Sim.apply]
           sweep. *)
        match
          Starved.find ~table_keys:(fun f -> Hashtbl.iter (fun k n -> f k n.g1 n.g2) table)
            ~expand:(fun key -> (Hashtbl.find table key).edges)
            ~channel:p.Protocol.channel
        with
        | Some (key, starved_run) ->
            let moves = path_to table key in
            Witness
              {
                x1;
                x2;
                kind = Starvation { starved_run };
                joint_moves = moves;
                depth = List.length moves;
                states_explored;
              }
        | None -> No_violation { closed = true; states_explored }
      end

let search_single_raw (p : Protocol.t) ~x ?(depth = 64) ?(max_states = 200_000)
    ?allow_drops ?(max_sends_per_sender = 24) ?(max_sends_per_receiver = 24) ?max_seconds
    ?mem_budget_bytes ?stats () =
  let allow_drops =
    match allow_drops with Some b -> b | None -> Chan.deletes p.Protocol.channel
  in
  let over_deadline = make_deadline max_seconds in
  let intern = Stdx.Intern.create ~size:64 () in
  let scratch = Stdx.Codec.create ~size:256 () in
  let gid g =
    Stdx.Codec.reset scratch;
    Global.emit scratch g;
    fst
      (Stdx.Intern.intern_bytes intern (Stdx.Codec.buffer scratch) ~pos:0
         ~len:(Stdx.Codec.length scratch))
  in
  let table : (int, Global.t * (int * Move.t) option * int) Hashtbl.t =
    Hashtbl.create 64
  in
  let frontier = Stdx.Frontier.create ?mem_budget_bytes () in
  Fun.protect
    ~finally:(fun () ->
      (match stats with
      | Some s ->
          Stats.note s (Stdx.Frontier.stats frontier)
            ~joint_states:(Hashtbl.length table)
      | None -> ());
      Stdx.Frontier.close frontier)
  @@ fun () ->
  let g0 = Global.initial p ~input:(Array.of_list x) in
  let key0 = gid g0 in
  Hashtbl.replace table key0 (g0, None, 0);
  Stdx.Frontier.push frontier key0;
  let result = ref None in
  let truncated = ref false in
  while (not (Stdx.Frontier.is_empty frontier)) && !result = None do
    if over_deadline () then begin
      truncated := true;
      Stdx.Frontier.clear frontier
    end
    else begin
    let key = Stdx.Frontier.pop frontier in
    let g, _, d = Hashtbl.find table key in
    if d >= depth then truncated := true
    else
      List.iter
        (fun move ->
          if !result = None then begin
            let keep =
              match move with
              | Move.Wake_sender -> Chan.sent_total g.Global.chan_sr < max_sends_per_sender
              | Move.Wake_receiver -> Chan.sent_total g.Global.chan_rs < max_sends_per_receiver
              | Move.Drop_to_receiver _ | Move.Drop_to_sender _ -> allow_drops
              | Move.Deliver_to_receiver _ | Move.Deliver_to_sender _ -> true
              | Move.Restart_sender | Move.Restart_receiver
              | Move.Corrupt_sender _ | Move.Corrupt_receiver _ ->
                  false
            in
            if keep then begin
              let g' = Sim.apply p g move in
              let key' = gid g' in
              if not (Hashtbl.mem table key') then begin
                if Hashtbl.length table >= max_states then truncated := true
                else begin
                  Hashtbl.replace table key' (g', Some (key, move), d + 1);
                  if not (Global.safety_ok g') then result := Some key';
                  Stdx.Frontier.push frontier key'
                end
              end
            end
          end)
        (Sim.enabled p g)
    end
  done;
  let states_explored = Hashtbl.length table in
  match !result with
  | Some key ->
      let rec unwind key acc =
        match Hashtbl.find table key with
        | _, None, _ -> acc
        | _, Some (pkey, move), _ -> unwind pkey (Only1 move :: acc)
      in
      let moves = unwind key [] in
      Witness
        {
          x1 = x;
          x2 = x;
          kind = Safety { violated_run = 1 };
          joint_moves = moves;
          depth = List.length moves;
          states_explored;
        }
  | None -> No_violation { closed = not !truncated; states_explored }

(* --- The symmetry quotient -------------------------------------------

   For a protocol declaring an {!Symm.equivariance}, relabelling the
   data alphabet by a permutation π maps the whole transition system on
   input(s) X onto the system on π(X): same shape, same state counts,
   same witnesses with message values mapped through the protocol's
   lifts.  So a search on the orbit's canonical representative (the
   first-occurrence relabelling, see {!Symm}) answers for every member:
   run the canonical search, then translate any witness path back
   through π⁻¹.  [No_violation] outcomes carry no symbols and
   [states_explored] is π-invariant, so they pass through unchanged. *)

(* Smallest alphabet covering every symbol that occurs — permutations
   of symbols no input mentions cannot affect any run. *)
let infer_m xss =
  List.fold_left (List.fold_left (fun acc s -> max acc (s + 1))) 0 xss

let relabel_joint eq f = function
  | Sync m -> Sync (Symm.relabel_move eq f m)
  | Only1 m -> Only1 (Symm.relabel_move eq f m)
  | Only2 m -> Only2 (Symm.relabel_move eq f m)

(* Translate the canonical representative's outcome back to the orbit
   member [(x1, x2)] whose canonicalising permutation was [pi]. *)
let relabel_outcome eq pi ~x1 ~x2 = function
  | No_violation _ as o -> o
  | Witness w ->
      let f = Symm.apply (Symm.invert pi) in
      Witness { w with x1; x2; joint_moves = List.map (relabel_joint eq f) w.joint_moves }

(* --- The swap quotient -----------------------------------------------

   The joint system is symmetric under exchanging its two runs: the
   map [(s1, s2) ↦ (s2, s1)] carries the initial joint state of
   [J(x1, x2)] to that of [J(x2, x1)] and is a bijection on joint
   moves — [Sync] moves are self-corresponding (the deliverable
   intersection is commutative, and the receiver-send cap reads run
   1's reverse-channel total, which equals run 2's because the
   synchronised deterministic receiver sends identically in both
   runs), while [Only1]/[Only2] moves trade places.  Safety and
   fairness conditions are exchanged with the run index.  So a search
   of [J(x2, x1)] answers for [(x1, x2)]: mirror the witness — swap
   the inputs, flip the [Only] tags, flip the violated/starved run —
   and, because the reachable joint sets biject, closed and truncated
   [No_violation] outcomes (and their state counts) pass through
   unchanged.  Composed with the alphabet quotient this halves the
   representatives for orbits that are not swap-self-symmetric. *)

let mirror_joint = function
  | Sync m -> Sync m
  | Only1 m -> Only2 m
  | Only2 m -> Only1 m

let mirror_outcome = function
  | No_violation _ as o -> o
  | Witness w ->
      let kind =
        match w.kind with
        | Safety { violated_run } -> Safety { violated_run = 3 - violated_run }
        | Starvation { starved_run } -> Starvation { starved_run = 3 - starved_run }
      in
      Witness
        {
          w with
          x1 = w.x2;
          x2 = w.x1;
          kind;
          joint_moves = List.map mirror_joint w.joint_moves;
        }

(* Canonical form for the composed group (alphabet permutations ×
   run swap): the smaller of the two orderings' alphabet-canonical
   images.  Each [Symm.canon_pair] is invariant on its π-orbit, so the
   minimum is invariant on the whole composed orbit.  [swapped] tells
   the caller the representative searches [(x2, x1)]'s image, so its
   outcome must be mirrored after relabelling. *)
let canon_pair_swap ~m x1 x2 =
  let ck, pi = Symm.canon_pair ~m x1 x2 in
  let cks, pis = Symm.canon_pair ~m x2 x1 in
  if compare cks ck < 0 then (cks, pis, true) else (ck, pi, false)

let search_pair (p : Protocol.t) ~x1 ~x2 ?depth ?max_states ?allow_drops
    ?max_sends_per_sender ?max_sends_per_receiver ?max_seconds ?runstates
    ?mem_budget_bytes ?stats ?(symm = false) () =
  let quotient =
    (* Caller-supplied stores are tied to the literal inputs, so the
       canonical rewrite only applies to self-contained searches
       ({!search} canonicalises before building its shared stores). *)
    match (runstates, if symm then p.Protocol.symmetry else None) with
    | None, Some eq -> Some eq
    | _ -> None
  in
  match quotient with
  | None ->
      search_pair_raw p ~x1 ~x2 ?depth ?max_states ?allow_drops ?max_sends_per_sender
        ?max_sends_per_receiver ?max_seconds ?runstates ?mem_budget_bytes ?stats ()
  | Some eq ->
      let m = infer_m [ x1; x2 ] in
      let (cx1, cx2), pi = Symm.canon_pair ~m x1 x2 in
      search_pair_raw p ~x1:cx1 ~x2:cx2 ?depth ?max_states ?allow_drops
        ?max_sends_per_sender ?max_sends_per_receiver ?max_seconds ?mem_budget_bytes
        ?stats ()
      |> relabel_outcome eq pi ~x1 ~x2

let search_single (p : Protocol.t) ~x ?depth ?max_states ?allow_drops
    ?max_sends_per_sender ?max_sends_per_receiver ?max_seconds ?mem_budget_bytes ?stats
    ?(symm = false) () =
  match (if symm then p.Protocol.symmetry else None) with
  | None ->
      search_single_raw p ~x ?depth ?max_states ?allow_drops ?max_sends_per_sender
        ?max_sends_per_receiver ?max_seconds ?mem_budget_bytes ?stats ()
  | Some eq ->
      let cx, pi = Symm.canon_seq ~m:(infer_m [ x ]) x in
      search_single_raw p ~x:cx ?depth ?max_states ?allow_drops ?max_sends_per_sender
        ?max_sends_per_receiver ?max_seconds ?mem_budget_bytes ?stats ()
      |> relabel_outcome eq pi ~x1:x ~x2:x

let eligible_pairs ~xs =
  let rec pairs = function
    | [] -> []
    | x :: rest ->
        List.filter_map
          (fun y -> if is_prefix x y || is_prefix y x then None else Some (x, y))
          rest
        @ pairs rest
  in
  pairs xs

let search p ~xs ?depth ?max_states ?allow_drops ?max_sends_per_sender
    ?max_sends_per_receiver ?max_seconds ?jobs ?mem_budget_bytes ?stats ?(symm = false)
    ?(swap_symm = true) () =
  let all_pairs = eligible_pairs ~xs in
  (* One transition store per distinct input, built up front and
     shared by every pair that input participates in: the α(m)² sweep
     computes each single-run (state, move) successor once per input
     instead of once per pair.  The stores are mutex-guarded, so the
     pair searches stay embarrassingly parallel — disjoint joint
     tables, shared read-mostly caches.  Par.map preserves order, so
     the outcome list and the first witness are identical at any job
     count. *)
  let stores : (int list, Runstate.t) Hashtbl.t = Hashtbl.create 8 in
  let store x =
    match Hashtbl.find_opt stores x with
    | Some rs -> rs
    | None ->
        let rs = Runstate.create p ~x in
        Hashtbl.add stores x rs;
        rs
  in
  let outcomes =
    match (if symm then p.Protocol.symmetry else None) with
    | None ->
        let tagged = List.map (fun (x1, x2) -> (x1, x2, store x1, store x2)) all_pairs in
        Par.map ?jobs
          (fun (x1, x2, rs1, rs2) ->
            ( x1,
              x2,
              search_pair_raw p ~x1 ~x2 ?depth ?max_states ?allow_drops
                ?max_sends_per_sender ?max_sends_per_receiver ?max_seconds
                ~runstates:(rs1, rs2) ?mem_budget_bytes ?stats () ))
          tagged
    | Some eq ->
        (* Orbit quotient: tag every eligible pair with its canonical
           image and permutation, search only the first occurrence of
           each canonical pair, and expand the representative outcomes
           back over the full pair list in the original order — so the
           report is shaped exactly like the unquotiented sweep's, and
           the saved work is the whole point.  Stores are keyed by
           *canonical* inputs, which also overlap far more than raw
           inputs do.  With [swap_symm] (the default) the quotient
           composes with the run-swap symmetry: both orderings of a
           pair share one representative, and members whose orientation
           lost the canonical race get mirrored outcomes. *)
        let m = infer_m xs in
        let canon x1 x2 =
          if swap_symm then canon_pair_swap ~m x1 x2
          else
            let ckey, pi = Symm.canon_pair ~m x1 x2 in
            (ckey, pi, false)
        in
        let tagged =
          List.map
            (fun (x1, x2) ->
              let ckey, pi, swapped = canon x1 x2 in
              (x1, x2, ckey, pi, swapped))
            all_pairs
        in
        let rep_index : (int list * int list, int) Hashtbl.t = Hashtbl.create 16 in
        let reps = ref [] in
        List.iter
          (fun (_, _, ckey, _, _) ->
            if not (Hashtbl.mem rep_index ckey) then begin
              Hashtbl.add rep_index ckey (Hashtbl.length rep_index);
              reps := ckey :: !reps
            end)
          tagged;
        let rep_tagged =
          List.rev_map (fun ((cx1, cx2) as ck) -> (ck, store cx1, store cx2)) !reps
        in
        let rep_outcomes =
          Array.make (Hashtbl.length rep_index) (No_violation { closed = false; states_explored = 0 })
        in
        List.iter2
          (fun (ck, _, _) o -> rep_outcomes.(Hashtbl.find rep_index ck) <- o)
          rep_tagged
          (Par.map ?jobs
             (fun ((cx1, cx2), rs1, rs2) ->
               search_pair_raw p ~x1:cx1 ~x2:cx2 ?depth ?max_states ?allow_drops
                 ?max_sends_per_sender ?max_sends_per_receiver ?max_seconds
                 ~runstates:(rs1, rs2) ?mem_budget_bytes ?stats ())
             rep_tagged);
        List.map
          (fun (x1, x2, ckey, pi, swapped) ->
            let o = rep_outcomes.(Hashtbl.find rep_index ckey) in
            let o =
              if swapped then
                (* The representative is [(x2, x1)]'s canonical image:
                   relabel back to [(x2, x1)], then mirror the runs. *)
                mirror_outcome (relabel_outcome eq pi ~x1:x2 ~x2:x1 o)
              else relabel_outcome eq pi ~x1 ~x2 o
            in
            (x1, x2, o))
          tagged
  in
  let first_witness =
    List.find_map (function _, _, Witness w -> Some w | _, _, No_violation _ -> None) outcomes
  in
  (outcomes, first_witness)

let run_moves w ~which =
  List.filter_map
    (fun jm ->
      match (jm, which) with
      | Sync m, _ -> Some m
      | Only1 m, 1 -> Some m
      | Only2 m, 2 -> Some m
      | Only1 _, _ | Only2 _, _ -> None)
    w.joint_moves

let pp_joint_move ppf = function
  | Sync m -> Format.fprintf ppf "both: %a" Move.pp m
  | Only1 m -> Format.fprintf ppf "run1: %a" Move.pp m
  | Only2 m -> Format.fprintf ppf "run2: %a" Move.pp m

let pp_witness ppf w =
  let kind_str =
    match w.kind with
    | Safety { violated_run } -> Printf.sprintf "SAFETY violation in run %d" violated_run
    | Starvation { starved_run } -> Printf.sprintf "STARVATION of run %d" starved_run
  in
  Format.fprintf ppf "@[<v>%s after %d joint moves (%d states) for X1=%a X2=%a@,%a@]" kind_str
    w.depth w.states_explored Xset.pp_sequence w.x1 Xset.pp_sequence w.x2
    (Format.pp_print_list pp_joint_move)
    w.joint_moves

let seq_text xs = "<" ^ String.concat " " (List.map string_of_int xs) ^ ">"

let kind_text = function
  | Safety { violated_run } -> Printf.sprintf "safety(run %d)" violated_run
  | Starvation { starved_run } -> Printf.sprintf "starvation(run %d)" starved_run

let witness_item w =
  let module R = Stdx.Report in
  R.Metrics
    {
      title = Some "witness";
      pairs =
        [
          ("kind", R.str (kind_text w.kind));
          ("x1", R.str (seq_text w.x1));
          ("x2", R.str (seq_text w.x2));
          ("depth", R.int w.depth);
          ("states_explored", R.int w.states_explored);
          ("joint_moves", R.int (List.length w.joint_moves));
        ];
    }

let outcome_text = function
  | Witness w -> Printf.sprintf "WITNESS (%s, depth %d)" (kind_text w.kind) w.depth
  | No_violation { closed; states_explored } ->
      Printf.sprintf "none (%s, %d states)"
        (if closed then "space closed" else "truncated")
        states_explored

(* Only the budget-invariant counters go into report IR: artifacts
   must stay byte-identical across [mem_budget_bytes] settings (the
   spill exactness contract E16 and m5-smoke pin with [cmp]).  The
   budget-variant spill counters stay on {!Stats.snapshot} for callers
   that assert against the budget. *)
let stats_item (s : Stats.snapshot) =
  let module R = Stdx.Report in
  R.Metrics
    {
      title = Some "search resources";
      pairs =
        [
          ("peak_frontier_bytes", R.int s.Stats.peak_frontier_bytes);
          ("peak_frontier_len", R.int s.Stats.peak_frontier_len);
          ("peak_joint_states", R.int s.Stats.peak_joint_states);
        ];
    }

let stats_items = function None -> [] | Some s -> [ stats_item (Stats.snapshot s) ]

let outcome_report ~x1 ~x2 ?stats outcome =
  let module R = Stdx.Report in
  let base =
    R.Metrics
      {
        title = None;
        pairs =
          [
            ("x1", R.str (seq_text x1));
            ("x2", R.str (seq_text x2));
            ("outcome", R.str (outcome_text outcome));
          ];
      }
  in
  let items =
    match outcome with Witness w -> [ base; witness_item w ] | No_violation _ -> [ base ]
  in
  R.make ~id:"attack" ~title:"impossibility attack search" (items @ stats_items stats)

let search_report ?stats outcomes witness =
  let module R = Stdx.Report in
  let t =
    R.table ~title:"all-pairs attack sweep"
      [ ("x1", R.Left); ("x2", R.Left); ("outcome", R.Left) ]
  in
  List.iter
    (fun (a, b, o) ->
      R.row t [ R.str (seq_text a); R.str (seq_text b); R.str (outcome_text o) ])
    outcomes;
  let items =
    match witness with Some w -> [ R.finish t; witness_item w ] | None -> [ R.finish t ]
  in
  R.make ~id:"attack" ~title:"impossibility attack search"
    ~notes:
      [
        (match witness with
        | Some _ -> "a witness was found"
        | None -> Printf.sprintf "no witness over %d pairs" (List.length outcomes));
      ]
    (items @ stats_items stats)

(** Multicore fan-out for the embarrassingly parallel outer loops.

    The sweeps this repo runs — {!Attack.search} over input pairs,
    {!Census.run} over sampled protocols, {!Bounds.measure} and
    {!Proba.estimate} over seeded schedules — are lists of independent
    pure tasks.  [Par.map] distributes such a list over OCaml 5
    domains: a shared atomic cursor hands out indices, each worker
    writes results into its own slots, and the caller gets the results
    back in input order, so every job count produces the identical
    value (the jobs=1 vs jobs=4 census-equality test pins this down).

    Tasks must not share mutable state: each attack search owns its
    tables, each simulated run owns its {!Stdx.Rng.t}, and the
    {!Kernel.Strategy} values are stateless by contract.

    Workers are a persistent pool: domains are spawned on first use
    (up to the largest job count ever requested) and parked between
    batches, so a [map] pays the ~1ms [Domain.spawn] cost once per
    process rather than once per call.  Tasks must not call [map]
    themselves — batches are not nestable.

    Job count resolution: an explicit [~jobs] wins; otherwise the
    [STP_JOBS] environment variable; otherwise 1.  At [jobs <= 1] (or
    on single-element lists) no domain is involved — the sequential
    fallback is a plain [List.map], so the default behaviour is
    bit-identical to the pre-parallel code. *)

val default_jobs : unit -> int
(** [STP_JOBS] parsed as a positive integer, else 1. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] is [List.map f xs] computed by up to [jobs]
    domains (including the calling one).  Order-preserving.  If any
    task raises, the remaining tasks are abandoned and the first
    observed exception is re-raised in the caller after all domains
    have joined. *)

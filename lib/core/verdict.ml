module Runner = Kernel.Runner
module Trace = Kernel.Trace

type t = {
  safe : bool;
  complete : bool;
  deadlocked : bool;
  steps : int;
  messages : int;
  first_violation : int option;
  completed_at : int option;
  recovered : bool option;
}

let of_result (r : Runner.result) =
  let trace = r.Runner.trace in
  let violation = Trace.first_safety_violation trace in
  {
    safe = Option.is_none violation;
    complete = Option.is_some (Trace.completed_at trace);
    deadlocked = (r.Runner.stop = Runner.Quiescent);
    steps = r.Runner.steps;
    messages = Trace.messages_sent trace;
    first_violation = violation;
    completed_at = Trace.completed_at trace;
    recovered = None;
  }

let all_good t = t.safe && t.complete

(* Recovery (the §5 notion made executable): the run is back to
   quiescent-and-correct within [within] steps of the last injected
   fault — it stayed safe, it completed, and the completion landed no
   later than [last_fault + within].  A run that completed before the
   fault even landed trivially recovered. *)
let assess_recovery ~last_fault ~within t =
  let recovered =
    t.safe && t.complete
    && match t.completed_at with Some c -> c <= last_fault + within | None -> false
  in
  { t with recovered = Some recovered }

let time_to_recover ~last_fault t =
  match t.completed_at with
  | Some c when t.safe -> Some (max 0 (c - last_fault))
  | Some _ | None -> None

let pp ppf t =
  Format.fprintf ppf "%s%s steps=%d msgs=%d"
    (if t.safe then "safe" else "UNSAFE")
    (if t.complete then ",complete" else if t.deadlocked then ",DEADLOCK" else ",incomplete")
    t.steps t.messages;
  match t.recovered with
  | None -> ()
  | Some true -> Format.pp_print_string ppf " recovered"
  | Some false -> Format.pp_print_string ppf " NOT-RECOVERED"

let to_report t =
  let module R = Stdx.Report in
  let opt_int = function Some v -> R.int v | None -> R.str "-" in
  let ok = match t.recovered with None -> all_good t | Some r -> all_good t && r in
  R.make ~id:"verdict" ~title:"single-run verdict" ~ok
    [
      R.Metrics
        {
          title = None;
          pairs =
            ([
               ("safe", R.bool t.safe);
               ("complete", R.bool t.complete);
               ("deadlocked", R.bool t.deadlocked);
               ("steps", R.int t.steps);
               ("messages", R.int t.messages);
               ("first_violation", opt_int t.first_violation);
               ("completed_at", opt_int t.completed_at);
             ]
            @ match t.recovered with None -> [] | Some r -> [ ("recovered", R.bool r) ]);
        };
    ]

module Runner = Kernel.Runner
module Trace = Kernel.Trace

type t = {
  safe : bool;
  complete : bool;
  deadlocked : bool;
  steps : int;
  messages : int;
  first_violation : int option;
  completed_at : int option;
  recovered : bool option;
  stabilised : bool option;
}

let of_result (r : Runner.result) =
  let trace = r.Runner.trace in
  let violation = Trace.first_safety_violation trace in
  {
    safe = Option.is_none violation;
    complete = Option.is_some (Trace.completed_at trace);
    deadlocked = (r.Runner.stop = Runner.Quiescent);
    steps = r.Runner.steps;
    messages = Trace.messages_sent trace;
    first_violation = violation;
    completed_at = Trace.completed_at trace;
    recovered = None;
    stabilised = None;
  }

let all_good t = t.safe && t.complete

(* Recovery (the §5 notion made executable): the run is back to
   quiescent-and-correct within [within] steps of the last injected
   fault — it stayed safe, it completed, and the completion landed no
   later than [last_fault + within].  A run that completed before the
   fault even landed trivially recovered. *)
let assess_recovery ~last_fault ~within t =
  if last_fault < 0 then invalid_arg "assess_recovery: negative last_fault";
  if within < 0 then invalid_arg "assess_recovery: negative within";
  (* A fault time beyond the trace end means the claimed fault never
     landed inside the run; the old formula passed such runs
     vacuously (the run completed "within" a window that never
     opened).  Requiring [last_fault <= steps] makes the verdict a
     statement about a fault the run actually saw.  [within = 0]
     stays a defined boundary: recovered iff the run completed at the
     fault itself. *)
  let recovered =
    t.safe && t.complete && last_fault <= t.steps
    && match t.completed_at with Some c -> c <= last_fault + within | None -> false
  in
  { t with recovered = Some recovered }

let time_to_recover ~last_fault t =
  if last_fault < 0 then invalid_arg "time_to_recover: negative last_fault";
  if last_fault > t.steps then None
  else
    match t.completed_at with
    | Some c when t.safe -> Some (max 0 (c - last_fault))
    | Some _ | None -> None

(* Stabilisation (Dolev et al. made executable): the run began in a
   possibly-corrupted local state and must be back to safe-and-done
   within [within] steps of the start — the corrupted-start analogue
   of [assess_recovery], with the whole run as the fault window. *)
let assess_stabilisation ~within t =
  if within < 0 then invalid_arg "assess_stabilisation: negative within";
  let stabilised =
    t.safe && t.complete && match t.completed_at with Some c -> c <= within | None -> false
  in
  { t with stabilised = Some stabilised }

let time_to_stabilise t =
  match t.completed_at with Some c when t.safe -> Some c | Some _ | None -> None

let pp ppf t =
  Format.fprintf ppf "%s%s steps=%d msgs=%d"
    (if t.safe then "safe" else "UNSAFE")
    (if t.complete then ",complete" else if t.deadlocked then ",DEADLOCK" else ",incomplete")
    t.steps t.messages;
  (match t.recovered with
  | None -> ()
  | Some true -> Format.pp_print_string ppf " recovered"
  | Some false -> Format.pp_print_string ppf " NOT-RECOVERED");
  match t.stabilised with
  | None -> ()
  | Some true -> Format.pp_print_string ppf " stabilised"
  | Some false -> Format.pp_print_string ppf " NOT-STABILISED"

let to_report t =
  let module R = Stdx.Report in
  let opt_int = function Some v -> R.int v | None -> R.str "-" in
  let ok =
    all_good t
    && (match t.recovered with None -> true | Some r -> r)
    && match t.stabilised with None -> true | Some s -> s
  in
  R.make ~id:"verdict" ~title:"single-run verdict" ~ok
    [
      R.Metrics
        {
          title = None;
          pairs =
            ([
               ("safe", R.bool t.safe);
               ("complete", R.bool t.complete);
               ("deadlocked", R.bool t.deadlocked);
               ("steps", R.int t.steps);
               ("messages", R.int t.messages);
               ("first_violation", opt_int t.first_violation);
               ("completed_at", opt_int t.completed_at);
             ]
            @ (match t.recovered with None -> [] | Some r -> [ ("recovered", R.bool r) ])
            @ match t.stabilised with None -> [] | Some s -> [ ("stabilised", R.bool s) ]);
        };
    ]

module Runner = Kernel.Runner
module Trace = Kernel.Trace

type t = {
  safe : bool;
  complete : bool;
  deadlocked : bool;
  steps : int;
  messages : int;
  first_violation : int option;
  completed_at : int option;
}

let of_result (r : Runner.result) =
  let trace = r.Runner.trace in
  let violation = Trace.first_safety_violation trace in
  {
    safe = Option.is_none violation;
    complete = Option.is_some (Trace.completed_at trace);
    deadlocked = (r.Runner.stop = Runner.Quiescent);
    steps = r.Runner.steps;
    messages = Trace.messages_sent trace;
    first_violation = violation;
    completed_at = Trace.completed_at trace;
  }

let all_good t = t.safe && t.complete

let pp ppf t =
  Format.fprintf ppf "%s%s steps=%d msgs=%d"
    (if t.safe then "safe" else "UNSAFE")
    (if t.complete then ",complete" else if t.deadlocked then ",DEADLOCK" else ",incomplete")
    t.steps t.messages

let to_report t =
  let module R = Stdx.Report in
  let opt_int = function Some v -> R.int v | None -> R.str "-" in
  R.make ~id:"verdict" ~title:"single-run verdict" ~ok:(all_good t)
    [
      R.Metrics
        {
          title = None;
          pairs =
            [
              ("safe", R.bool t.safe);
              ("complete", R.bool t.complete);
              ("deadlocked", R.bool t.deadlocked);
              ("steps", R.int t.steps);
              ("messages", R.int t.messages);
              ("first_violation", opt_int t.first_violation);
              ("completed_at", opt_int t.completed_at);
            ];
        };
    ]

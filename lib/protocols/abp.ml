open Kernel

let encode_msg ~domain ~bit ~data = (bit * domain) + data

let decode_msg ~domain m = (m / domain, m mod domain)

type sender_state = {
  input : int array;
  domain : int;
  next : int; (* index of the item being transmitted *)
  bit : int;
}

let sender_step s event =
  let n = Array.length s.input in
  match event with
  | Event.Wake ->
      if s.next < n then
        (s, [ Action.Send (encode_msg ~domain:s.domain ~bit:s.bit ~data:s.input.(s.next)) ])
      else (s, [])
  | Event.Deliver ack ->
      if s.next < n && ack = s.bit then ({ s with next = s.next + 1; bit = 1 - s.bit }, [])
      else (s, [])

type receiver_state = {
  r_domain : int;
  expected : int; (* bit expected on the next new item *)
  started : bool; (* whether anything has been received yet *)
}

let receiver_step r event =
  match event with
  | Event.Deliver m ->
      let bit, data = decode_msg ~domain:r.r_domain m in
      if bit = r.expected then
        ({ r with expected = 1 - r.expected; started = true },
         [ Action.Write data; Action.Send bit ])
      else (r, [ Action.Send bit ]) (* duplicate of the previous item: re-ack it *)
  | Event.Wake ->
      (* Re-send the last acknowledgement so a lost ack cannot wedge
         the sender.  Before anything arrived there is nothing to ack. *)
      if r.started then (r, [ Action.Send (1 - r.expected) ]) else (r, [])

let protocol_on channel ~domain =
  {
    Protocol.name = Printf.sprintf "abp(d=%d,%s)" domain (Channel.Chan.kind_name channel);
    sender_alphabet = 2 * domain;
    receiver_alphabet = 2;
    channel;
    make_sender =
      (fun ~input -> Proc.make ~state:{ input; domain; next = 0; bit = 0 } ~step:sender_step ());
    make_receiver =
      (fun () ->
        Proc.make ~state:{ r_domain = domain; expected = 0; started = false } ~step:receiver_step ());
    (* Forward messages are (bit, data) with the data slot generic;
       acknowledgements carry only the bit. *)
    symmetry =
      Some
        {
          Symm.on_sender_msg =
            (fun pi m ->
              let bit, data = decode_msg ~domain m in
              encode_msg ~domain ~bit ~data:(pi data));
          on_receiver_msg = (fun _ bit -> bit);
        };
    (* The corrupted-start space: every (next, bit) sender cursor and
       every (expected, started) receiver flag combination — the data-
       independent local state a transient fault can scramble.  The
       designated initial states lead each enumeration (index 0 ≡
       clean boot).  ABP is famously NOT self-stabilising: a receiver
       corrupted to expected=1 re-acks bit 0, the bit-0 sender advances
       without a write, and the tape skips an item (E15 exhibits the
       witness). *)
    perturb =
      Some
        {
          Protocol.sender_states =
            (fun ~input ->
              let n = Array.length input in
              List.concat_map
                (fun next ->
                  List.map
                    (fun bit ->
                      {
                        Protocol.label = Printf.sprintf "S:next=%d,bit=%d" next bit;
                        proc =
                          Proc.make ~state:{ input; domain; next; bit } ~step:sender_step ();
                      })
                    [ 0; 1 ])
                (List.init (n + 1) Fun.id));
          (* The ABP receiver keeps no mirror of the output tape — its
             whole local state (expected bit, started flag) is fair
             game at any written count, which is exactly why it cannot
             stabilise. *)
          receiver_states =
            (fun ~written:_ ->
              List.concat_map
                (fun expected ->
                  List.map
                    (fun started ->
                      {
                        Protocol.label =
                          Printf.sprintf "R:expected=%d,started=%b" expected started;
                        proc =
                          Proc.make
                            ~state:{ r_domain = domain; expected; started }
                            ~step:receiver_step ();
                      })
                    [ false; true ])
                [ 0; 1 ]);
        };
  }

let protocol ~domain = protocol_on Channel.Chan.Fifo_lossy ~domain

let () =
  Kernel.Registry.register_protocol ~name:"abp" ~doc:"Alternating Bit protocol"
    (fun cfg -> Ok (protocol_on cfg.Kernel.Registry.channel ~domain:cfg.Kernel.Registry.domain))

open Kernel

let encode_msg ~domain ~index ~data = (index * domain) + data

let decode_msg ~domain m = (m / domain, m mod domain)

type sender_state = {
  input : int array;
  domain : int;
  next : int; (* cursor being transmitted; resynced by every ack *)
}

let sender_step s event =
  let n = Array.length s.input in
  match event with
  | Event.Wake ->
      if n = 0 then (s, [])
      else
        (* Keep-alive past the end: a corrupted cursor at [n] opposite
           a receiver that heard nothing would otherwise go quiescent
           incomplete.  Retransmitting the last item pokes the
           receiver into re-acking its true count. *)
        let i = if s.next < n then s.next else n - 1 in
        (s, [ Action.Send (encode_msg ~domain:s.domain ~index:i ~data:s.input.(i)) ])
  | Event.Deliver ack ->
      (* Stock Stenning only moves forward ([ack > next]) — exactly the
         rule that wedges a corrupted-high cursor forever.  The
         stabilising variant adopts the receiver's count wholesale,
         rewinding when the ack says so.  Over a reordering channel a
         stale ack can drag the cursor backwards, costing retransmits
         but never safety, and the stale copies in flight are finite. *)
      if ack >= 0 && ack <= n then ({ s with next = ack }, []) else (s, [])

type receiver_state = {
  r_domain : int;
  got : int; (* mirror of the output-tape length *)
  started : bool;
}

let receiver_step r event =
  match event with
  | Event.Deliver m ->
      let seq, data = decode_msg ~domain:r.r_domain m in
      if seq = r.got then
        ( { r with got = r.got + 1; started = true },
          [ Action.Write data; Action.Send (r.got + 1) ] )
      else ({ r with started = true }, [ Action.Send r.got ])
  | Event.Wake -> if r.started then (r, [ Action.Send r.got ]) else (r, [])

let protocol_on channel ~domain ~max_len =
  {
    Protocol.name =
      Printf.sprintf "stenning-stab(d=%d,n<=%d,%s)" domain max_len
        (Channel.Chan.kind_name channel);
    sender_alphabet = max 1 (max_len * domain);
    receiver_alphabet = max_len + 1;
    channel;
    make_sender =
      (fun ~input ->
        assert (Array.length input <= max_len);
        Proc.make ~state:{ input; domain; next = 0 } ~step:sender_step ());
    make_receiver =
      (fun () ->
        Proc.make ~state:{ r_domain = domain; got = 0; started = false } ~step:receiver_step ());
    (* Data messages are (index, data) with the data slot generic;
       acknowledgements carry only the written count. *)
    symmetry =
      Some
        {
          Symm.on_sender_msg =
            (fun pi m ->
              let index, data = decode_msg ~domain m in
              encode_msg ~domain ~index ~data:(pi data));
          on_receiver_msg = (fun _ count -> count);
        };
    (* The corrupted-start space: every cursor position the sender's
       register can hold and the receiver's started flag; the
       receiver's [got] mirrors the append-only tape and is anchored
       by the {!Protocol.perturb} convention.  Safety survives every
       point (writes are gated on an exact index match against the
       true count) and the first ack to arrive resyncs any cursor, so
       the sweep pins a finite worst-case time-to-stabilise where the
       stock protocol deadlocks safe-but-incomplete. *)
    perturb =
      Some
        {
          Protocol.sender_states =
            (fun ~input ->
              List.init (Array.length input + 1) (fun next ->
                  {
                    Protocol.label = Printf.sprintf "S:next=%d" next;
                    proc = Proc.make ~state:{ input; domain; next } ~step:sender_step ();
                  }));
          receiver_states =
            (fun ~written ->
              List.map
                (fun started ->
                  {
                    Protocol.label = (if started then "R:started" else "R:fresh");
                    proc =
                      Proc.make
                        ~state:{ r_domain = domain; got = written; started }
                        ~step:receiver_step ();
                  })
                [ false; true ]);
        };
  }

let protocol ~domain ~max_len = protocol_on Channel.Chan.Reorder_del ~domain ~max_len

let () =
  Kernel.Registry.register_protocol ~name:"stenning-stab"
    ~doc:"self-stabilising Stenning (absolute resync over reordering)" (fun cfg ->
      Ok
        (protocol_on cfg.Kernel.Registry.channel ~domain:cfg.Kernel.Registry.domain
           ~max_len:cfg.Kernel.Registry.max_len))

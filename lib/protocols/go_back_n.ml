open Kernel

(* Wire format: frame for item [i] is [(i mod M)·domain + x_i] with
   [M = window + 1]; acknowledgement [a] means "the receiver's next
   expected sequence number is ≡ a (mod M)" — cumulative. *)

type sender_state = {
  input : int array;
  domain : int;
  window : int;
  modulus : int;
  base : int; (* lowest unacknowledged item *)
  cursor : int; (* next outstanding frame to (re)transmit *)
}

let sender_step s event =
  let n = Array.length s.input in
  match event with
  | Event.Wake ->
      if s.base >= n then (s, [])
      else begin
        let hi = min (s.base + s.window) n in
        let cursor = if s.cursor < s.base || s.cursor >= hi then s.base else s.cursor in
        let frame = (cursor mod s.modulus * s.domain) + s.input.(cursor) in
        ({ s with cursor = cursor + 1 }, [ Action.Send frame ])
      end
  | Event.Deliver ack ->
      if s.base >= n then (s, [])
      else begin
        (* Cumulative ack: advance by (ack − base) mod M, but never
           past what was actually sent (at most the window). *)
        let advance = (ack - (s.base mod s.modulus) + s.modulus) mod s.modulus in
        let outstanding = min s.window (n - s.base) in
        if advance >= 1 && advance <= outstanding then
          ({ s with base = s.base + advance }, [])
        else (s, [])
      end

type receiver_state = {
  r_domain : int;
  r_modulus : int;
  expected : int; (* absolute count of in-order items received *)
}

let receiver_step r event =
  match event with
  | Event.Deliver frame ->
      let seq = frame / r.r_domain and data = frame mod r.r_domain in
      if seq = r.expected mod r.r_modulus then
        ( { r with expected = r.expected + 1 },
          [ Action.Write data; Action.Send ((r.expected + 1) mod r.r_modulus) ] )
      else (r, [ Action.Send (r.expected mod r.r_modulus) ])
  | Event.Wake ->
      if r.expected > 0 then (r, [ Action.Send (r.expected mod r.r_modulus) ]) else (r, [])

let protocol_on channel ~domain ~window =
  if window < 1 then invalid_arg "Go_back_n.protocol: window must be >= 1";
  let modulus = window + 1 in
  {
    Protocol.name =
      Printf.sprintf "go-back-%d(d=%d,%s)" window domain (Channel.Chan.kind_name channel);
    sender_alphabet = modulus * domain;
    receiver_alphabet = modulus;
    channel;
    make_sender =
      (fun ~input ->
        Proc.make ~state:{ input; domain; window; modulus; base = 0; cursor = 0 }
          ~step:sender_step ());
    make_receiver =
      (fun () ->
        Proc.make ~state:{ r_domain = domain; r_modulus = modulus; expected = 0 }
          ~step:receiver_step ());
    (* Frames are (seq, data) with the data slot generic;
       acknowledgements carry only a sequence number. *)
    symmetry =
      Some
        {
          Kernel.Symm.on_sender_msg =
            (fun pi m ->
              let seq = m / domain and data = m mod domain in
              (seq * domain) + pi data);
          on_receiver_msg = (fun _ a -> a);
        };
    (* The corrupted-start space: every sender [base] position (cursor
       re-anchored to base) and every receiver counter phase.  As with
       stenning-mod, the receiver's [expected] register mirrors the
       tape length but only its residue mod M is visible on the wire,
       so corruption is an offset in [0, M) against the anchored
       mirror.  A base-aliased sender paired with a clean receiver
       writes a frame from the wrong window residue: the sequence
       space M = window+1 that suffices from a clean start is too
       small to recover from a scrambled one (E17 finds the witness). *)
    perturb =
      Some
        {
          Protocol.sender_states =
            (fun ~input ->
              let n = Array.length input in
              List.init (n + 1) (fun base ->
                  {
                    Protocol.label = Printf.sprintf "S:base=%d" base;
                    proc =
                      Proc.make
                        ~state:{ input; domain; window; modulus; base; cursor = base }
                        ~step:sender_step ();
                  }));
          receiver_states =
            (fun ~written ->
              List.init modulus (fun offset ->
                  {
                    Protocol.label = Printf.sprintf "R:offset=%d" offset;
                    proc =
                      Proc.make
                        ~state:
                          { r_domain = domain; r_modulus = modulus; expected = written + offset }
                        ~step:receiver_step ();
                  }));
        };
  }

let protocol ~domain ~window = protocol_on Channel.Chan.Fifo_lossy ~domain ~window

let () =
  Kernel.Registry.register_protocol ~name:"go-back-n" ~doc:"Go-Back-N sliding window"
    (fun cfg ->
      let { Kernel.Registry.channel; domain; window; _ } = cfg in
      Ok (protocol_on channel ~domain ~window))

(** Self-stabilising indexed ABP — the stabilisation contrast to {!Abp}.

    Dolev–Dubois–Potop-Butucaru–Tixeuil show that stabilising sequence
    transmission needs strictly more sequence-number room than the
    alternating bit: a protocol whose control state is one bit cannot
    recover from an adversarial boot, because a flipped bit is
    indistinguishable from a legitimate phase.  This variant spends
    that room explicitly.  Data messages carry the full item index
    ([(index, data)], sender alphabet [max_len·domain], Stenning-style
    bounded sequence numbers); acknowledgements carry the receiver's
    absolute written count ([max_len+1] symbols).  The sender adopts
    every ack wholesale — an {e absolute resync} rather than ABP's
    relative bit flip — and past the end it keeps retransmitting the
    last item as a keep-alive, so any corrupted cursor position is
    overwritten by the first round trip and no corrupted flag can
    deadlock the pair.

    Safety holds from {e every} corrupted start (writes are gated on
    an exact index match against the receiver's true count; the sender
    only sends truthful [(i, x_i)] pairs), and convergence is bounded:
    E15 sweeps the whole declared {!Kernel.Protocol.perturb} space and
    pins the finite worst-case time-to-stabilise, against a concrete
    non-stabilising witness for stock ABP. *)

val protocol : domain:int -> max_len:int -> Kernel.Protocol.t
(** Inputs of length at most [max_len] over a [Fifo_lossy] channel;
    the declared alphabets (and the corrupted-start enumeration) are
    sized accordingly. *)

val protocol_on : Channel.Chan.kind -> domain:int -> max_len:int -> Kernel.Protocol.t

val encode_msg : domain:int -> index:int -> data:int -> int
(** The wire encoding of data messages: [index·domain + data]. *)

val decode_msg : domain:int -> int -> int * int
(** Inverse of {!encode_msg}: [(index, data)]. *)

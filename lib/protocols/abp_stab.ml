open Kernel

let encode_msg ~domain ~index ~data = (index * domain) + data

let decode_msg ~domain m = (m / domain, m mod domain)

type sender_state = {
  input : int array;
  domain : int;
  cursor : int; (* index of the item being transmitted; resynced by every ack *)
}

let sender_step s event =
  let n = Array.length s.input in
  match event with
  | Event.Wake ->
      if n = 0 then (s, [])
      else
        (* Past the end the sender keeps retransmitting the last item
           as a keep-alive: a receiver whose corrupted flags left it
           behind gets poked, mismatches, and re-acks its true count —
           without this a corrupted cursor at [n] deadlocks opposite a
           silent receiver. *)
        let i = if s.cursor < n then s.cursor else n - 1 in
        (s, [ Action.Send (encode_msg ~domain:s.domain ~index:i ~data:s.input.(i)) ])
  | Event.Deliver ack ->
      (* The ack is the receiver's written count: adopt it wholesale
         (clamped to the input length).  Unlike ABP's relative bit
         flip, the absolute resync is what makes the protocol
         stabilising — any corrupted cursor is overwritten by the first
         ack that arrives. *)
      if ack >= 0 && ack <= n then ({ s with cursor = ack }, []) else (s, [])

type receiver_state = {
  r_domain : int;
  written : int; (* mirror of the output-tape length *)
  started : bool;
}

let receiver_step r event =
  match event with
  | Event.Deliver m ->
      let index, data = decode_msg ~domain:r.r_domain m in
      if index = r.written then
        ( { r with written = r.written + 1; started = true },
          [ Action.Write data; Action.Send (r.written + 1) ] )
      else ({ r with started = true }, [ Action.Send r.written ])
  | Event.Wake -> if r.started then (r, [ Action.Send r.written ]) else (r, [])

let protocol_on channel ~domain ~max_len =
  {
    Protocol.name =
      Printf.sprintf "abp-stab(d=%d,n<=%d,%s)" domain max_len (Channel.Chan.kind_name channel);
    sender_alphabet = max_len * domain;
    receiver_alphabet = max_len + 1;
    channel;
    make_sender =
      (fun ~input ->
        assert (Array.length input <= max_len);
        Proc.make ~state:{ input; domain; cursor = 0 } ~step:sender_step ());
    make_receiver =
      (fun () ->
        Proc.make ~state:{ r_domain = domain; written = 0; started = false } ~step:receiver_step ());
    (* Data messages are (index, data) with the data slot generic;
       acknowledgements carry only the written count. *)
    symmetry =
      Some
        {
          Symm.on_sender_msg =
            (fun pi m ->
              let index, data = decode_msg ~domain m in
              encode_msg ~domain ~index ~data:(pi data));
          on_receiver_msg = (fun _ count -> count);
        };
    (* The corrupted-start space: every cursor position the sender's
       register can hold (including past-the-end values a fault can
       fabricate) and the receiver's started flag.  The receiver's
       written count is excluded by the {!Protocol.perturb} convention
       — it mirrors the append-only output tape, which the corruption
       model cannot touch.  Safety survives every point (writes are
       gated on an exact index match against the true count, and the
       sender only ever sends truthful (i, x_i) pairs), and the first
       ack resyncs any cursor, so the sweep shows a finite worst-case
       time-to-stabilise where stock ABP exhibits a violation. *)
    perturb =
      Some
        {
          Protocol.sender_states =
            (fun ~input ->
              List.init (max_len + 1) (fun cursor ->
                  {
                    Protocol.label = Printf.sprintf "S:cursor=%d" cursor;
                    proc = Proc.make ~state:{ input; domain; cursor } ~step:sender_step ();
                  }));
          receiver_states =
            (fun ~written ->
              List.map
                (fun started ->
                  {
                    Protocol.label =
                      (if started then "R:started" else "R:fresh");
                    proc =
                      Proc.make
                        ~state:{ r_domain = domain; written; started }
                        ~step:receiver_step ();
                  })
                [ false; true ]);
        };
  }

let protocol ~domain ~max_len = protocol_on Channel.Chan.Fifo_lossy ~domain ~max_len

let () =
  Kernel.Registry.register_protocol ~name:"abp-stab"
    ~doc:"self-stabilising indexed ABP (absolute resync)" (fun cfg ->
      Ok
        (protocol_on cfg.Kernel.Registry.channel ~domain:cfg.Kernel.Registry.domain
           ~max_len:cfg.Kernel.Registry.max_len))

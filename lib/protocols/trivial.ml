open Kernel

type sender_state = { input : int array; next : int }

let sender_step s event =
  match event with
  | Event.Wake when s.next < Array.length s.input ->
      ({ s with next = s.next + 1 }, [ Action.Send s.input.(s.next) ])
  | Event.Wake | Event.Deliver _ -> (s, [])

let receiver_step () event =
  match event with
  | Event.Deliver d -> ((), [ Action.Write d ])
  | Event.Wake -> ((), [])

let protocol ~domain =
  {
    Protocol.name = "trivial";
    sender_alphabet = domain;
    receiver_alphabet = 1;
    channel = Channel.Chan.Perfect;
    make_sender = (fun ~input -> Proc.make ~state:{ input; next = 0 } ~step:sender_step ());
    make_receiver = (fun () -> Proc.make ~state:() ~step:receiver_step ());
    symmetry =
      Some { Symm.on_sender_msg = (fun pi m -> pi m); on_receiver_msg = (fun _ m -> m) };
    perturb = None;
  }

let () =
  Kernel.Registry.register_protocol ~name:"trivial" ~doc:"perfect-channel baseline"
    (fun cfg -> Ok (protocol ~domain:cfg.Kernel.Registry.domain))

(** Self-stabilising Go-Back-N — windowed pipelining with the
    absolute-resync discipline, the stabilisation contrast to
    {!Go_back_n}.

    Stock Go-Back-N runs its headers and cumulative acks mod
    [window+1] — the smallest sequence space that works from a clean
    start, and one that aliases fatally under a scrambled one: E17
    exhibits a corrupted base writing the wrong item through a
    colliding residue.  This variant spends the sequence-number room
    the stabilisation lower bound demands: frames carry the full item
    index ([(index, data)], sender alphabet [max_len·domain]),
    acknowledgements carry the receiver's absolute written count, the
    sender adopts every ack wholesale and keeps retransmitting the
    last item past the end as a keep-alive.  Unlike the stop-and-wait
    stabilisers ({!Abp_stab}, {!Stenning_stab}) the sender still
    pipelines up to [window] outstanding frames, so worst-case
    time-to-stabilise grows measurably slower with the input length —
    the scaling contrast E17's curves are built to show. *)

val protocol : domain:int -> max_len:int -> window:int -> Kernel.Protocol.t
(** Inputs of length at most [max_len] over a [Fifo_lossy] channel.

    @raise Invalid_argument if [window < 1]. *)

val protocol_on :
  Channel.Chan.kind -> domain:int -> max_len:int -> window:int -> Kernel.Protocol.t

val encode_msg : domain:int -> index:int -> data:int -> int
(** The wire encoding of data frames: [index·domain + data]. *)

val decode_msg : domain:int -> int -> int * int
(** Inverse of {!encode_msg}: [(index, data)]. *)

(** Self-stabilising Stenning — the stabilisation contrast to
    {!Stenning}, over Stenning's home reordering channel.

    Stock Stenning is already safe from every corrupted start
    (unbounded headers make stale frames unambiguous) but it does not
    {e converge}: the sender's ack rule only moves forward
    ([ack > next]), so a cursor corrupted past the receiver's count
    retransmits an item the receiver keeps nacking, forever.  The
    stabilising variant makes two changes, the same discipline as
    {!Abp_stab}: the sender adopts every acknowledged count wholesale
    (an absolute resync that rewinds as happily as it advances), and
    past the end it keeps retransmitting the last item as a
    keep-alive so a corrupted done-flag cannot go quiescent opposite
    a silent receiver.  Over a reordering channel a stale ack drags
    the cursor backwards — costing retransmissions, never safety —
    and the stale copies in flight are finite, so convergence holds
    where FIFO-dependent {!Abp_stab} makes no claim. *)

val protocol : domain:int -> max_len:int -> Kernel.Protocol.t
(** Inputs of length at most [max_len] over a [Reorder_del] channel;
    the declared alphabets (and the corrupted-start enumeration) are
    sized accordingly. *)

val protocol_on : Channel.Chan.kind -> domain:int -> max_len:int -> Kernel.Protocol.t

val encode_msg : domain:int -> index:int -> data:int -> int
(** The wire encoding of data messages: [index·domain + data]. *)

val decode_msg : domain:int -> int -> int * int
(** Inverse of {!encode_msg}: [(index, data)]. *)

open Kernel
module Xset = Seqspace.Xset

let sym_a = 0
let sym_b = 1
let sym_y = 0

let window ~drop_budget = (2 * drop_budget) + 1

let rank_of xset x =
  let rec find i = function
    | [] -> None
    | y :: rest -> if y = x then Some i else find (i + 1) rest
  in
  find 0 (Xset.to_list xset)

type sender_state = {
  k : int; (* rank of the input in the enumeration of 𝒳 *)
  w : int;
  sent_a : int;
  sent_b : int;
  got_y : int;
}

let sender_step s event =
  match event with
  | Event.Deliver m -> if m = sym_y then ({ s with got_y = s.got_y + 1 }, []) else (s, [])
  | Event.Wake ->
      if s.got_y > (s.k - 1) * s.w then begin
        (* Phase 2: the receiver provably holds > (k−1)·W copies of a. *)
        if s.sent_b < s.w then ({ s with sent_b = s.sent_b + 1 }, [ Action.Send sym_b ])
        else (s, [])
      end
      else if s.sent_a < s.k * s.w then
        ({ s with sent_a = s.sent_a + 1 }, [ Action.Send sym_a ])
      else (s, []) (* cap reached: wait for echoes still in flight *)

type receiver_state = {
  r_w : int;
  got_a : int;
  decoded : bool;
}

let receiver_step xset r event =
  match event with
  | Event.Wake -> (r, [])
  | Event.Deliver m ->
      if m = sym_a then ({ r with got_a = r.got_a + 1 }, [ Action.Send sym_y ])
      else if r.decoded then (r, [])
      else begin
        (* First terminator: (k−1)·W < got_a ≤ k·W, so k is exact.
           From a clean start got_a never exceeds kmax·W; a corrupted
           counter can, so the decode saturates at the top rank — it
           still decodes (wrongly) instead of stepping outside the
           enumeration. *)
        let kmax = List.length (Xset.to_list xset) - 1 in
        let k = min ((r.got_a + r.r_w - 1) / r.r_w) kmax in
        let x = List.nth (Xset.to_list xset) k in
        ({ r with decoded = true }, List.map (fun d -> Action.Write d) x)
      end

let protocol ~xset ~drop_budget =
  let w = window ~drop_budget in
  {
    Protocol.name = Printf.sprintf "ladder(B=%d)" drop_budget;
    sender_alphabet = 2;
    receiver_alphabet = 1;
    channel = Channel.Chan.Reorder_del;
    make_sender =
      (fun ~input ->
        match rank_of xset (Array.to_list input) with
        | None -> invalid_arg "Ladder.protocol: input not in the allowable set"
        | Some k ->
            Proc.make ~state:{ k; w; sent_a = 0; sent_b = 0; got_y = 0 } ~step:sender_step ());
    make_receiver =
      (fun () ->
        Proc.make ~state:{ r_w = w; got_a = 0; decoded = false } ~step:(receiver_step xset) ());
    (* Encodes the input's rank in the allowable set: identity-sensitive. *)
    symmetry = None;
    (* The corrupted-start space: the unary counters on both sides.
       The sender's [got_y] echo count decides when to fire the
       terminator — corrupted past (k−1)·W it enters phase 2 before
       the receiver holds enough a's.  The receiver's [got_a] count IS
       the message; scrambled, the first terminator decodes the wrong
       rank outright.  The [decoded] flag is tied to the anchored tape
       (decoding is the only write), so the enumeration sets it from
       the written count.  Unary counting buys the tight alphabet at
       the price of maximal fragility: E17 finds violations from
       single-register corruptions, the contrast to the indexed
       families where only paired corruptions bite. *)
    perturb =
      Some
        {
          Protocol.sender_states =
            (fun ~input ->
              match rank_of xset (Array.to_list input) with
              | None -> invalid_arg "Ladder.perturb: input not in the allowable set"
              | Some k ->
                  List.init ((k * w) + 1) (fun got_y ->
                      {
                        Protocol.label = Printf.sprintf "S:got_y=%d" got_y;
                        proc =
                          Proc.make
                            ~state:{ k; w; sent_a = 0; sent_b = 0; got_y }
                            ~step:sender_step ();
                      }));
          receiver_states =
            (fun ~written ->
              let kmax = List.length (Xset.to_list xset) - 1 in
              List.init ((kmax * w) + 1) (fun got_a ->
                  {
                    Protocol.label = Printf.sprintf "R:got_a=%d" got_a;
                    proc =
                      Proc.make
                        ~state:{ r_w = w; got_a; decoded = written > 0 }
                        ~step:(receiver_step xset) ();
                  }));
        };
  }

let expected_learning_steps ~xset ~drop_budget x =
  let w = window ~drop_budget in
  match rank_of xset x with
  | None -> invalid_arg "Ladder.expected_learning_steps: input not in the allowable set"
  | Some k ->
      (* k·W copies of a out, k·W echoes back, one terminator. *)
      (2 * k * w) + 1

let () =
  Kernel.Registry.register_protocol ~name:"ladder"
    ~doc:"unbounded counting ladder (AFWZ89 role)"
    (fun cfg ->
      let { Kernel.Registry.domain; max_len; drop_budget; _ } = cfg in
      let xset = Seqspace.Xset.All_upto { domain; max_len } in
      Ok (protocol ~xset ~drop_budget))

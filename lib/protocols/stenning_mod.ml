open Kernel

(* Wire format: data message for item [i] is [(i mod header_space)·domain + x_i];
   acknowledgement [j] means "an item with header [j] was just accepted". *)

type sender_state = {
  input : int array;
  domain : int;
  hs : int;
  next : int;
}

let sender_step s event =
  let n = Array.length s.input in
  let header i = i mod s.hs in
  match event with
  | Event.Wake ->
      if s.next < n then (s, [ Action.Send ((header s.next * s.domain) + s.input.(s.next)) ])
      else (s, [])
  | Event.Deliver ack -> if s.next < n && ack = header s.next then ({ s with next = s.next + 1 }, []) else (s, [])

type receiver_state = {
  r_domain : int;
  r_hs : int;
  got : int;
}

let receiver_step r event =
  let expected = r.got mod r.r_hs in
  match event with
  | Event.Deliver m ->
      let h = m / r.r_domain and data = m mod r.r_domain in
      if h = expected then ({ r with got = r.got + 1 }, [ Action.Write data; Action.Send h ])
      else (r, [ Action.Send ((r.got - 1 + r.r_hs) mod r.r_hs) ])
  | Event.Wake ->
      if r.got > 0 then (r, [ Action.Send ((r.got - 1) mod r.r_hs) ]) else (r, [])

let protocol_on channel ~domain ~header_space =
  {
    Protocol.name =
      Printf.sprintf "stenning-mod(d=%d,h=%d,%s)" domain header_space
        (Channel.Chan.kind_name channel);
    sender_alphabet = header_space * domain;
    receiver_alphabet = header_space;
    channel;
    make_sender =
      (fun ~input -> Proc.make ~state:{ input; domain; hs = header_space; next = 0 } ~step:sender_step ());
    make_receiver =
      (fun () ->
        Proc.make ~state:{ r_domain = domain; r_hs = header_space; got = 0 } ~step:receiver_step ());
    (* Data messages are (header, data) with the data slot generic;
       acknowledgements carry only a header. *)
    symmetry =
      Some
        {
          Kernel.Symm.on_sender_msg =
            (fun pi m ->
              let h = m / domain and data = m mod domain in
              (h * domain) + pi data);
          on_receiver_msg = (fun _ h -> h);
        };
    (* The corrupted-start space: every sender [next] cursor and every
       receiver counter phase.  The receiver's [got] register mirrors
       the output-tape length, but only [got mod hs] (and [got > 0]) is
       behaviourally visible — a transient fault scrambling the counter
       amounts to an offset against the anchored mirror, so the
       enumeration at written count [w] is [got = w + offset] for
       offset in [0, hs).  A phase-corrupted receiver accepts the wrong
       item under the aliased header: E17 exhibits the violation
       witness — bounded headers are not self-stabilising. *)
    perturb =
      Some
        {
          Protocol.sender_states =
            (fun ~input ->
              let n = Array.length input in
              List.init (n + 1) (fun next ->
                  {
                    Protocol.label = Printf.sprintf "S:next=%d" next;
                    proc =
                      Proc.make
                        ~state:{ input; domain; hs = header_space; next }
                        ~step:sender_step ();
                  }));
          receiver_states =
            (fun ~written ->
              List.init header_space (fun offset ->
                  {
                    Protocol.label = Printf.sprintf "R:offset=%d" offset;
                    proc =
                      Proc.make
                        ~state:{ r_domain = domain; r_hs = header_space; got = written + offset }
                        ~step:receiver_step ();
                  }));
        };
  }

let () =
  Kernel.Registry.register_protocol ~name:"stenning-mod"
    ~doc:"Stenning with headers mod header-space (the LMF88 victim)"
    (fun cfg ->
      let { Kernel.Registry.channel; domain; header_space; _ } = cfg in
      Ok (protocol_on channel ~domain ~header_space))

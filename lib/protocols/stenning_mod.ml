open Kernel

(* Wire format: data message for item [i] is [(i mod header_space)·domain + x_i];
   acknowledgement [j] means "an item with header [j] was just accepted". *)

type sender_state = {
  input : int array;
  domain : int;
  hs : int;
  next : int;
}

let sender_step s event =
  let n = Array.length s.input in
  let header i = i mod s.hs in
  match event with
  | Event.Wake ->
      if s.next < n then (s, [ Action.Send ((header s.next * s.domain) + s.input.(s.next)) ])
      else (s, [])
  | Event.Deliver ack -> if s.next < n && ack = header s.next then ({ s with next = s.next + 1 }, []) else (s, [])

type receiver_state = {
  r_domain : int;
  r_hs : int;
  got : int;
}

let receiver_step r event =
  let expected = r.got mod r.r_hs in
  match event with
  | Event.Deliver m ->
      let h = m / r.r_domain and data = m mod r.r_domain in
      if h = expected then ({ r with got = r.got + 1 }, [ Action.Write data; Action.Send h ])
      else (r, [ Action.Send ((r.got - 1 + r.r_hs) mod r.r_hs) ])
  | Event.Wake ->
      if r.got > 0 then (r, [ Action.Send ((r.got - 1) mod r.r_hs) ]) else (r, [])

let protocol_on channel ~domain ~header_space =
  {
    Protocol.name =
      Printf.sprintf "stenning-mod(d=%d,h=%d,%s)" domain header_space
        (Channel.Chan.kind_name channel);
    sender_alphabet = header_space * domain;
    receiver_alphabet = header_space;
    channel;
    make_sender =
      (fun ~input -> Proc.make ~state:{ input; domain; hs = header_space; next = 0 } ~step:sender_step ());
    make_receiver =
      (fun () ->
        Proc.make ~state:{ r_domain = domain; r_hs = header_space; got = 0 } ~step:receiver_step ());
    symmetry = None;
    perturb = None;
  }

let () =
  Kernel.Registry.register_protocol ~name:"stenning-mod"
    ~doc:"Stenning with headers mod header-space (the LMF88 victim)"
    (fun cfg ->
      let { Kernel.Registry.channel; domain; header_space; _ } = cfg in
      Ok (protocol_on channel ~domain ~header_space))

open Kernel

(* Wire format: data message for item [i] (0-based) is [i·domain + x_i];
   acknowledgement [k] means "items 0..k−1 all received". *)

type sender_state = {
  input : int array;
  domain : int;
  next : int; (* lowest unacknowledged item *)
}

let sender_step s event =
  let n = Array.length s.input in
  match event with
  | Event.Wake ->
      if s.next < n then (s, [ Action.Send ((s.next * s.domain) + s.input.(s.next)) ])
      else (s, [])
  | Event.Deliver ack -> if ack > s.next then ({ s with next = ack }, []) else (s, [])

type receiver_state = {
  r_domain : int;
  got : int; (* number of in-order items written *)
}

let receiver_step r event =
  match event with
  | Event.Deliver m ->
      let seq = m / r.r_domain and data = m mod r.r_domain in
      if seq = r.got then ({ r with got = r.got + 1 }, [ Action.Write data; Action.Send (r.got + 1) ])
      else (r, [ Action.Send r.got ])
  | Event.Wake -> if r.got > 0 then (r, [ Action.Send r.got ]) else (r, [])

let protocol_on channel ~domain ~max_len =
  {
    Protocol.name =
      Printf.sprintf "stenning(d=%d,n<=%d,%s)" domain max_len (Channel.Chan.kind_name channel);
    sender_alphabet = max 1 (max_len * domain);
    receiver_alphabet = max_len + 1;
    channel;
    make_sender =
      (fun ~input ->
        assert (Array.length input <= max_len);
        Proc.make ~state:{ input; domain; next = 0 } ~step:sender_step ());
    make_receiver = (fun () -> Proc.make ~state:{ r_domain = domain; got = 0 } ~step:receiver_step ());
    symmetry = None;
    (* The corrupted-start space: every value the sender's [next]
       register can hold.  The receiver's whole local state is [got],
       which mirrors the output-tape length — by the {!Protocol.perturb}
       convention that component is environment-anchored, so the
       receiver enumeration is the clean state alone.  Stenning is safe
       from every corrupted start (unbounded headers make stale frames
       unambiguous) but does NOT converge: a sender corrupted past the
       receiver's count retransmits item [next] forever while the
       receiver nacks a count the sender refuses to rewind to — the
       sweep shows safe-but-incomplete points and the witness search
       closes clean. *)
    perturb =
      Some
        {
          Protocol.sender_states =
            (fun ~input ->
              let n = Array.length input in
              List.init (n + 1) (fun next ->
                  {
                    Protocol.label = Printf.sprintf "S:next=%d" next;
                    proc = Proc.make ~state:{ input; domain; next } ~step:sender_step ();
                  }));
          receiver_states =
            (fun ~written ->
              [
                {
                  Protocol.label = "R:clean";
                  proc =
                    Proc.make ~state:{ r_domain = domain; got = written } ~step:receiver_step ();
                };
              ]);
        };
  }

let protocol ~domain ~max_len = protocol_on Channel.Chan.Reorder_del ~domain ~max_len

let () =
  Kernel.Registry.register_protocol ~name:"stenning"
    ~doc:"Stenning with unbounded headers"
    (fun cfg ->
      let { Kernel.Registry.channel; domain; max_len; _ } = cfg in
      Ok (protocol_on channel ~domain ~max_len))

open Kernel
module Codes = Seqspace.Codes

module IntSet = Set.Make (Int)

type sender_state = {
  path : int array; (* μ(input): the message symbols along the input's trie path *)
  next : int; (* index of the symbol awaiting acknowledgement *)
}

let sender_step s event =
  let n = Array.length s.path in
  match event with
  | Event.Wake -> if s.next < n then (s, [ Action.Send s.path.(s.next) ]) else (s, [])
  | Event.Deliver ack ->
      if s.next < n && ack = s.path.(s.next) then ({ s with next = s.next + 1 }, []) else (s, [])

type receiver_state = {
  node : Codes.node;
  seen : IntSet.t;
  last : int option;
}

let receiver_step code r event =
  match event with
  | Event.Deliver sym ->
      if IntSet.mem sym r.seen then (r, [ Action.Send sym ])
      else begin
        (* Fresh symbols arrive in path order (same causality argument
           as the norep protocol), so they always label an edge out of
           the current node. *)
        match (Codes.step_by_msg code r.node sym, Codes.data_of_edge code r.node sym) with
        | Some node, Some data ->
            ({ node; seen = IntSet.add sym r.seen; last = Some sym },
             [ Action.Write data; Action.Send sym ])
        | _ ->
            (* Unreachable for inputs in 𝒳; tolerate gracefully by
               ignoring, so foreign inputs surface as liveness (not
               crash) failures in experiments probing misuse. *)
            ({ r with seen = IntSet.add sym r.seen }, [])
      end
  | Event.Wake -> (
      match r.last with Some sym -> (r, [ Action.Send sym ]) | None -> (r, []))

let make ~name ~channel ~m ~xs =
  match Codes.build ~m xs with
  | Error e -> Error e
  | Ok code ->
      Ok
        {
          Protocol.name;
          sender_alphabet = m;
          receiver_alphabet = m;
          channel;
          make_sender =
            (fun ~input ->
              let path =
                match Codes.encode code (Array.to_list input) with
                | Some path -> Array.of_list path
                | None ->
                    invalid_arg
                      (Printf.sprintf "%s: input sequence is not in the allowable set" name)
              in
              Proc.make ~state:{ path; next = 0 } ~step:sender_step ());
          make_receiver =
            (fun () ->
              Proc.make
                ~state:{ node = Codes.root code; seen = IntSet.empty; last = None }
                ~step:(receiver_step code) ());
          (* The code table inspects symbol identities: not equivariant. *)
          symmetry = None;
          perturb = None;
        }

let dup ~m ~xs =
  make ~name:(Printf.sprintf "coded-dup(m=%d,|X|=%d)" m (List.length xs))
    ~channel:Channel.Chan.Reorder_dup ~m ~xs

let del ~m ~xs =
  make ~name:(Printf.sprintf "coded-del(m=%d,|X|=%d)" m (List.length xs))
    ~channel:Channel.Chan.Reorder_del ~m ~xs

let () =
  Kernel.Registry.register_protocol ~name:"coded"
    ~doc:"mu-coded protocol for an explicit allowable set"
    (fun cfg ->
      let { Kernel.Registry.channel; domain; _ } = cfg in
      let xs = [] :: List.map (fun d -> [ d ]) (List.init domain Fun.id) in
      match
        if Channel.Chan.deletes channel then del ~m:domain ~xs else dup ~m:domain ~xs
      with
      | Ok p -> Ok p
      | Error e -> Error (Format.asprintf "coded: %a" Seqspace.Codes.pp_error e))

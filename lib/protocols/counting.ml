open Kernel

type sender_state = { input : int array; next : int }

let oneshot_sender_step s event =
  match event with
  | Event.Wake when s.next < Array.length s.input ->
      ({ s with next = s.next + 1 }, [ Action.Send s.input.(s.next) ])
  | Event.Wake | Event.Deliver _ -> (s, [])

let oneshot_receiver_step () event =
  match event with
  | Event.Deliver d -> ((), [ Action.Write d ])
  | Event.Wake -> ((), [])

let protocol_on channel ~domain =
  {
    Protocol.name = Printf.sprintf "counting(d=%d,%s)" domain (Channel.Chan.kind_name channel);
    sender_alphabet = domain;
    receiver_alphabet = 1;
    channel;
    make_sender =
      (fun ~input -> Proc.make ~state:{ input; next = 0 } ~step:oneshot_sender_step ());
    make_receiver = (fun () -> Proc.make ~state:() ~step:oneshot_receiver_step ());
    (* Data symbols on the wire; the receiver never sends. *)
    symmetry =
      Some { Symm.on_sender_msg = (fun pi m -> pi m); on_receiver_msg = (fun _ m -> m) };
    perturb = None;
  }

(* Retransmitting variant: wait for an echo of the current item before
   advancing.  Unlike the norep protocol there is no freshness test on
   the receiving side, so stale copies still break it. *)

let resend_sender_step s event =
  let n = Array.length s.input in
  match event with
  | Event.Wake -> if s.next < n then (s, [ Action.Send s.input.(s.next) ]) else (s, [])
  | Event.Deliver ack ->
      if s.next < n && ack = s.input.(s.next) then ({ s with next = s.next + 1 }, []) else (s, [])

type resend_receiver_state = { last_written : int option }

let resend_receiver_step r event =
  match event with
  | Event.Deliver d ->
      (* Consecutive duplicates are suppressed (the obvious patch), but
         anything else is trusted blindly. *)
      if r.last_written = Some d then (r, [ Action.Send d ])
      else ({ last_written = Some d }, [ Action.Write d; Action.Send d ])
  | Event.Wake -> (r, [])

let resend channel ~domain =
  {
    Protocol.name =
      Printf.sprintf "counting-resend(d=%d,%s)" domain (Channel.Chan.kind_name channel);
    sender_alphabet = domain;
    receiver_alphabet = domain;
    channel;
    make_sender = (fun ~input -> Proc.make ~state:{ input; next = 0 } ~step:resend_sender_step ());
    make_receiver =
      (fun () -> Proc.make ~state:{ last_written = None } ~step:resend_receiver_step ());
    (* Echo acknowledgements carry the data symbol itself. *)
    symmetry = Some Symm.data_messages;
    perturb = None;
  }

let () =
  Kernel.Registry.register_protocol ~name:"counting" ~doc:"one-shot counting sender"
    (fun cfg -> Ok (protocol_on cfg.Kernel.Registry.channel ~domain:cfg.Kernel.Registry.domain));
  Kernel.Registry.register_protocol ~name:"counting-resend"
    ~doc:"counting sender with retransmission"
    (fun cfg -> Ok (resend cfg.Kernel.Registry.channel ~domain:cfg.Kernel.Registry.domain))

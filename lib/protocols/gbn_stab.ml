open Kernel

let encode_msg ~domain ~index ~data = (index * domain) + data

let decode_msg ~domain m = (m / domain, m mod domain)

type sender_state = {
  input : int array;
  domain : int;
  window : int;
  base : int; (* lowest unacknowledged item; resynced by every ack *)
  cursor : int; (* next outstanding frame to (re)transmit *)
}

let sender_step s event =
  let n = Array.length s.input in
  match event with
  | Event.Wake ->
      if n = 0 then (s, [])
      else if s.base >= n then
        (* Keep-alive past the end (cf. {!Stenning_stab}): poke the
           receiver so a corrupted base cannot go quiescent. *)
        (s, [ Action.Send (encode_msg ~domain:s.domain ~index:(n - 1) ~data:s.input.(n - 1)) ])
      else begin
        let hi = min (s.base + s.window) n in
        let cursor = if s.cursor < s.base || s.cursor >= hi then s.base else s.cursor in
        ( { s with cursor = cursor + 1 },
          [ Action.Send (encode_msg ~domain:s.domain ~index:cursor ~data:s.input.(cursor)) ] )
      end
  | Event.Deliver ack ->
      (* The ack is the receiver's absolute written count: adopt it
         wholesale.  Unlike stock Go-Back-N's modular cumulative ack —
         whose tiny sequence space is exactly what aliases under a
         scrambled base — the absolute resync makes any corrupted
         window position recoverable in one round trip. *)
      if ack >= 0 && ack <= n then ({ s with base = ack }, []) else (s, [])

type receiver_state = {
  r_domain : int;
  written : int; (* mirror of the output-tape length *)
  started : bool;
}

let receiver_step r event =
  match event with
  | Event.Deliver m ->
      let index, data = decode_msg ~domain:r.r_domain m in
      if index = r.written then
        ( { r with written = r.written + 1; started = true },
          [ Action.Write data; Action.Send (r.written + 1) ] )
      else ({ r with started = true }, [ Action.Send r.written ])
  | Event.Wake -> if r.started then (r, [ Action.Send r.written ]) else (r, [])

let protocol_on channel ~domain ~max_len ~window =
  if window < 1 then invalid_arg "Gbn_stab.protocol: window must be >= 1";
  {
    Protocol.name =
      Printf.sprintf "gbn-stab(w=%d,d=%d,n<=%d,%s)" window domain max_len
        (Channel.Chan.kind_name channel);
    sender_alphabet = max 1 (max_len * domain);
    receiver_alphabet = max_len + 1;
    channel;
    make_sender =
      (fun ~input ->
        assert (Array.length input <= max_len);
        Proc.make ~state:{ input; domain; window; base = 0; cursor = 0 } ~step:sender_step ());
    make_receiver =
      (fun () ->
        Proc.make ~state:{ r_domain = domain; written = 0; started = false }
          ~step:receiver_step ());
    (* Frames are (index, data) with the data slot generic;
       acknowledgements carry only the written count. *)
    symmetry =
      Some
        {
          Symm.on_sender_msg =
            (fun pi m ->
              let index, data = decode_msg ~domain m in
              encode_msg ~domain ~index ~data:(pi data));
          on_receiver_msg = (fun _ count -> count);
        };
    (* The corrupted-start space: every window base (cursor re-anchored
       to it) and the receiver's started flag; the receiver's [written]
       mirrors the tape and is anchored by the {!Protocol.perturb}
       convention.  Same resync argument as {!Stenning_stab} — writes
       are gated on an exact index match, the first ack repositions any
       base — but the window pipelines up to [window] frames per round
       trip, so the stabilisation-time curve grows measurably slower
       with the input length than the stop-and-wait variants (E17). *)
    perturb =
      Some
        {
          Protocol.sender_states =
            (fun ~input ->
              List.init (Array.length input + 1) (fun base ->
                  {
                    Protocol.label = Printf.sprintf "S:base=%d" base;
                    proc =
                      Proc.make
                        ~state:{ input; domain; window; base; cursor = base }
                        ~step:sender_step ();
                  }));
          receiver_states =
            (fun ~written ->
              List.map
                (fun started ->
                  {
                    Protocol.label = (if started then "R:started" else "R:fresh");
                    proc =
                      Proc.make
                        ~state:{ r_domain = domain; written; started }
                        ~step:receiver_step ();
                  })
                [ false; true ]);
        };
  }

let protocol ~domain ~max_len ~window =
  protocol_on Channel.Chan.Fifo_lossy ~domain ~max_len ~window

let () =
  Kernel.Registry.register_protocol ~name:"gbn-stab"
    ~doc:"self-stabilising Go-Back-N (absolute headers and acks, windowed)" (fun cfg ->
      Ok
        (protocol_on cfg.Kernel.Registry.channel ~domain:cfg.Kernel.Registry.domain
           ~max_len:cfg.Kernel.Registry.max_len ~window:cfg.Kernel.Registry.window))

open Kernel
module Xset = Seqspace.Xset

let recovery_symbol_a ~domain = 2 * domain
let recovery_symbol_b ~domain = (2 * domain) + 1
let recovery_echo = 2

let rank_of xset x =
  let rec find i = function
    | [] -> None
    | y :: rest -> if y = x then Some i else find (i + 1) rest
  in
  find 0 (Xset.to_list xset)

type sender_mode =
  | S_abp of { next : int; bit : int; outstanding : bool; idle_wakes : int }
  | S_ladder of { sent_a : int; sent_b : int; got_y : int }

type sender_state = {
  input : int array;
  domain : int;
  timeout : int;
  k : int; (* rank of the full input, for recovery *)
  w : int;
  mode : sender_mode;
}

let sender_step s event =
  let n = Array.length s.input in
  match (s.mode, event) with
  | S_abp a, Event.Wake ->
      if a.next >= n then (s, [])
      else if not a.outstanding then
        ( { s with mode = S_abp { a with outstanding = true; idle_wakes = 0 } },
          [ Action.Send ((a.bit * s.domain) + s.input.(a.next)) ] )
      else if a.idle_wakes + 1 >= s.timeout then
        (* Fault detected: abandon ABP, start the recovery ladder. *)
        ({ s with mode = S_ladder { sent_a = 0; sent_b = 0; got_y = 0 } }, [])
      else ({ s with mode = S_abp { a with idle_wakes = a.idle_wakes + 1 } }, [])
  | S_abp a, Event.Deliver ack ->
      if ack = a.bit && a.outstanding then
        ( { s with mode = S_abp { next = a.next + 1; bit = 1 - a.bit; outstanding = false; idle_wakes = 0 } },
          [] )
      else (s, [])
  | S_ladder l, Event.Deliver m ->
      if m = recovery_echo then ({ s with mode = S_ladder { l with got_y = l.got_y + 1 } }, [])
      else (s, []) (* stale ABP acknowledgement *)
  | S_ladder l, Event.Wake ->
      if l.got_y > (s.k - 1) * s.w then begin
        if l.sent_b < s.w then
          ( { s with mode = S_ladder { l with sent_b = l.sent_b + 1 } },
            [ Action.Send (recovery_symbol_b ~domain:s.domain) ] )
        else (s, [])
      end
      else if l.sent_a < s.k * s.w then
        ( { s with mode = S_ladder { l with sent_a = l.sent_a + 1 } },
          [ Action.Send (recovery_symbol_a ~domain:s.domain) ] )
      else (s, [])

type receiver_state = {
  r_domain : int;
  r_w : int;
  expected : int;
  written : int;
  in_recovery : bool;
  got_a : int;
  decoded : bool;
}

let receiver_step xset r event =
  match event with
  | Event.Wake -> (r, [])
  | Event.Deliver m ->
      let sym_a = recovery_symbol_a ~domain:r.r_domain in
      let sym_b = recovery_symbol_b ~domain:r.r_domain in
      if m = sym_a then
        ({ r with in_recovery = true; got_a = r.got_a + 1 }, [ Action.Send recovery_echo ])
      else if m = sym_b then begin
        if r.decoded then (r, [])
        else begin
          let k = (r.got_a + r.r_w - 1) / r.r_w in
          let x = List.nth (Xset.to_list xset) k in
          let suffix = List.filteri (fun i _ -> i >= r.written) x in
          ( { r with decoded = true; written = List.length x },
            List.map (fun d -> Action.Write d) suffix )
        end
      end
      else if r.in_recovery then (r, []) (* stale ABP data message *)
      else begin
        let bit = m / r.r_domain and data = m mod r.r_domain in
        if bit = r.expected then
          ( { r with expected = 1 - r.expected; written = r.written + 1 },
            [ Action.Write data; Action.Send bit ] )
        else (r, [ Action.Send bit ])
      end

let protocol ~xset ~domain ~drop_budget ?(timeout = 8) () =
  let w = Ladder.window ~drop_budget in
  {
    Protocol.name = Printf.sprintf "hybrid(d=%d,B=%d,T=%d)" domain drop_budget timeout;
    sender_alphabet = (2 * domain) + 2;
    receiver_alphabet = 3;
    channel = Channel.Chan.Reorder_del;
    make_sender =
      (fun ~input ->
        match rank_of xset (Array.to_list input) with
        | None -> invalid_arg "Hybrid.protocol: input not in the allowable set"
        | Some k ->
            Proc.make
              ~state:
                {
                  input;
                  domain;
                  timeout;
                  k;
                  w;
                  mode = S_abp { next = 0; bit = 0; outstanding = false; idle_wakes = 0 };
                }
              ~step:sender_step ());
    make_receiver =
      (fun () ->
        Proc.make
          ~state:
            {
              r_domain = domain;
              r_w = w;
              expected = 0;
              written = 0;
              in_recovery = false;
              got_a = 0;
              decoded = false;
            }
          ~step:(receiver_step xset) ());
    symmetry = None;
    perturb = None;
  }

let () =
  Kernel.Registry.register_protocol ~name:"hybrid"
    ~doc:"weakly bounded ABP-then-ladder hybrid (Sec 5)"
    (fun cfg ->
      let { Kernel.Registry.domain; max_len; drop_budget; _ } = cfg in
      let xset = Seqspace.Xset.All_upto { domain; max_len } in
      Ok (protocol ~xset ~domain ~drop_budget ()))

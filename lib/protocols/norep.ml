open Kernel

module IntSet = Set.Make (Int)

type sender_state = {
  input : int array;
  next : int; (* index of the item awaiting acknowledgement *)
}

let sender_step s event =
  let n = Array.length s.input in
  match event with
  | Event.Wake ->
      if s.next < n then (s, [ Action.Send s.input.(s.next) ]) else (s, [])
  | Event.Deliver ack ->
      if s.next < n && ack = s.input.(s.next) then ({ s with next = s.next + 1 }, [])
      else (s, [])

type receiver_state = {
  seen : IntSet.t; (* symbols received so far *)
  last : int option; (* most recent fresh symbol, re-acknowledged on wake *)
}

let receiver_step r event =
  match event with
  | Event.Deliver d ->
      if IntSet.mem d r.seen then (r, [ Action.Send d ]) (* stale: re-ack only *)
      else ({ seen = IntSet.add d r.seen; last = Some d }, [ Action.Write d; Action.Send d ])
  | Event.Wake -> (
      match r.last with Some d -> (r, [ Action.Send d ]) | None -> (r, []))

let make ~name ~channel ~m =
  {
    Protocol.name;
    sender_alphabet = m;
    receiver_alphabet = m;
    channel;
    make_sender =
      (fun ~input -> Proc.make ~state:{ input; next = 0 } ~step:sender_step ());
    make_receiver =
      (fun () -> Proc.make ~state:{ seen = IntSet.empty; last = None } ~step:receiver_step ());
    (* Messages on both channels are bare data symbols, and both step
       functions compare symbols only for equality/membership — the
       textbook equivariant protocol. *)
    symmetry = Some Symm.data_messages;
    perturb = None;
  }

let dup ~m = make ~name:(Printf.sprintf "norep-dup(m=%d)" m) ~channel:Channel.Chan.Reorder_dup ~m

let del ~m = make ~name:(Printf.sprintf "norep-del(m=%d)" m) ~channel:Channel.Chan.Reorder_del ~m

let () =
  Kernel.Registry.register_protocol ~name:"norep"
    ~doc:"the paper's tight repetition-free protocol (Sec 3/4)"
    (fun cfg ->
      let { Kernel.Registry.channel; domain; _ } = cfg in
      Ok (if Channel.Chan.deletes channel then del ~m:domain else dup ~m:domain))

open Kernel

module IntMap = Map.Make (Int)

(* Wire format: frame for item [i] is [(i mod M)·domain + x_i];
   acknowledgement [a] confirms the single frame whose sequence number
   is ≡ a (mod M) within the sender's window. *)

type sender_state = {
  input : int array;
  domain : int;
  window : int;
  modulus : int;
  base : int; (* lowest unacknowledged item *)
  acked : bool IntMap.t; (* absolute index -> acknowledged, for [base, base+window) *)
  cursor : int; (* retransmission rotation *)
}

let rec advance_base s =
  match IntMap.find_opt s.base s.acked with
  | Some true -> advance_base { s with base = s.base + 1; acked = IntMap.remove s.base s.acked }
  | Some false | None -> s

let sender_step s event =
  let n = Array.length s.input in
  match event with
  | Event.Wake ->
      if s.base >= n then (s, [])
      else begin
        let hi = min (s.base + s.window) n in
        (* Send the next unacknowledged frame in the window, rotating. *)
        let candidates =
          List.filter
            (fun i -> not (Option.value ~default:false (IntMap.find_opt i s.acked)))
            (List.init (hi - s.base) (fun k -> s.base + k))
        in
        match candidates with
        | [] -> (s, [])
        | _ ->
            let pick =
              match List.filter (fun i -> i >= s.cursor) candidates with
              | i :: _ -> i
              | [] -> List.hd candidates
            in
            ( { s with cursor = pick + 1 },
              [ Action.Send ((pick mod s.modulus * s.domain) + s.input.(pick)) ] )
      end
  | Event.Deliver a ->
      if s.base >= n then (s, [])
      else begin
        let hi = min (s.base + s.window) n in
        let matching =
          List.find_opt
            (fun i -> i mod s.modulus = a)
            (List.init (hi - s.base) (fun k -> s.base + k))
        in
        match matching with
        | Some i -> (advance_base { s with acked = IntMap.add i true s.acked }, [])
        | None -> (s, [])
      end

type receiver_state = {
  r_domain : int;
  r_window : int;
  r_modulus : int;
  expected : int; (* absolute count of in-order items written *)
  buffer : int IntMap.t; (* absolute index -> data, within (expected, expected+window) *)
}

let rec flush r writes =
  match IntMap.find_opt r.expected r.buffer with
  | Some data ->
      flush
        { r with expected = r.expected + 1; buffer = IntMap.remove r.expected r.buffer }
        (Action.Write data :: writes)
  | None -> (r, List.rev writes)

let receiver_step r event =
  match event with
  | Event.Deliver frame ->
      let seq = frame / r.r_domain and data = frame mod r.r_domain in
      let offset = (seq - (r.expected mod r.r_modulus) + r.r_modulus) mod r.r_modulus in
      if offset < r.r_window then begin
        (* Within the receive window: buffer, flush, ack. *)
        let r = { r with buffer = IntMap.add (r.expected + offset) data r.buffer } in
        let r, writes = flush r [] in
        (r, writes @ [ Action.Send seq ])
      end
      else
        (* A retransmission of an already-delivered frame (assuming the
           2·window sequence space): re-acknowledge it. *)
        (r, [ Action.Send seq ])
  | Event.Wake -> (r, [])

let protocol_mod channel ~domain ~window ~modulus =
  if window < 1 then invalid_arg "Selective_repeat.protocol: window must be >= 1";
  if modulus <= window then invalid_arg "Selective_repeat.protocol: modulus must exceed window";
  {
    Protocol.name =
      Printf.sprintf "selective-repeat(w=%d,M=%d,d=%d,%s)" window modulus domain
        (Channel.Chan.kind_name channel);
    sender_alphabet = modulus * domain;
    receiver_alphabet = modulus;
    channel;
    make_sender =
      (fun ~input ->
        Proc.make
          ~state:{ input; domain; window; modulus; base = 0; acked = IntMap.empty; cursor = 0 }
          ~step:sender_step ());
    make_receiver =
      (fun () ->
        Proc.make
          ~state:
            {
              r_domain = domain;
              r_window = window;
              r_modulus = modulus;
              expected = 0;
              buffer = IntMap.empty;
            }
          ~step:receiver_step ());
    (* Frames are (seq, data) with the data slot generic;
       acknowledgements carry only a sequence number.  Note the
       corrupted-start space below is NOT data-independent (poisoned
       buffers hold literal values), so witnesses from it are outside
       the relabel-replay guarantee — the equivariance licenses the
       clean-start symmetry quotient only. *)
    symmetry =
      Some
        {
          Kernel.Symm.on_sender_msg =
            (fun pi m ->
              let seq = m / domain and data = m mod domain in
              (seq * domain) + pi data);
          on_receiver_msg = (fun _ a -> a);
        };
    (* The corrupted-start space: every sender [base] position (pending
       acks forgotten, cursor re-anchored) and receiver buffer poison.
       The receiver's [expected] register mirrors the tape length and
       is anchored by the {!Protocol.perturb} convention; what a
       transient fault CAN scramble is the out-of-order buffer, so the
       enumeration plants one phantom frame [expected+o -> v] per
       in-window offset o >= 1 and datum v.  The phantom flushes as
       soon as the in-order frame arrives and writes a value the sender
       never sent — selective repeat trusts its buffer and is not
       self-stabilising (E17 finds the witness). *)
    perturb =
      Some
        {
          Protocol.sender_states =
            (fun ~input ->
              let n = Array.length input in
              List.init (n + 1) (fun base ->
                  {
                    Protocol.label = Printf.sprintf "S:base=%d" base;
                    proc =
                      Proc.make
                        ~state:
                          { input; domain; window; modulus; base; acked = IntMap.empty;
                            cursor = base }
                        ~step:sender_step ();
                  }));
          receiver_states =
            (fun ~written ->
              let clean buffer =
                {
                  r_domain = domain;
                  r_window = window;
                  r_modulus = modulus;
                  expected = written;
                  buffer;
                }
              in
              {
                Protocol.label = "R:clean";
                proc = Proc.make ~state:(clean IntMap.empty) ~step:receiver_step ();
              }
              :: List.concat_map
                   (fun o ->
                     List.init domain (fun v ->
                         {
                           Protocol.label = Printf.sprintf "R:poison+%d=%d" o v;
                           proc =
                             Proc.make
                               ~state:(clean (IntMap.singleton (written + o) v))
                               ~step:receiver_step ();
                         }))
                   (List.init (window - 1) (fun k -> k + 1)));
        };
  }

let protocol ~domain ~window =
  protocol_mod Channel.Chan.Fifo_lossy ~domain ~window ~modulus:(2 * window)

let () =
  Kernel.Registry.register_protocol ~name:"selective-repeat"
    ~doc:"Selective Repeat sliding window (M = 2w)"
    (fun cfg ->
      let { Kernel.Registry.channel; domain; window; _ } = cfg in
      Ok (protocol_mod channel ~domain ~window ~modulus:(2 * window)))

open Kernel

module IntMap = Map.Make (Int)

(* Wire format: frame for item [i] is [(i mod M)·domain + x_i];
   acknowledgement [a] confirms the single frame whose sequence number
   is ≡ a (mod M) within the sender's window. *)

type sender_state = {
  input : int array;
  domain : int;
  window : int;
  modulus : int;
  base : int; (* lowest unacknowledged item *)
  acked : bool IntMap.t; (* absolute index -> acknowledged, for [base, base+window) *)
  cursor : int; (* retransmission rotation *)
}

let rec advance_base s =
  match IntMap.find_opt s.base s.acked with
  | Some true -> advance_base { s with base = s.base + 1; acked = IntMap.remove s.base s.acked }
  | Some false | None -> s

let sender_step s event =
  let n = Array.length s.input in
  match event with
  | Event.Wake ->
      if s.base >= n then (s, [])
      else begin
        let hi = min (s.base + s.window) n in
        (* Send the next unacknowledged frame in the window, rotating. *)
        let candidates =
          List.filter
            (fun i -> not (Option.value ~default:false (IntMap.find_opt i s.acked)))
            (List.init (hi - s.base) (fun k -> s.base + k))
        in
        match candidates with
        | [] -> (s, [])
        | _ ->
            let pick =
              match List.filter (fun i -> i >= s.cursor) candidates with
              | i :: _ -> i
              | [] -> List.hd candidates
            in
            ( { s with cursor = pick + 1 },
              [ Action.Send ((pick mod s.modulus * s.domain) + s.input.(pick)) ] )
      end
  | Event.Deliver a ->
      if s.base >= n then (s, [])
      else begin
        let hi = min (s.base + s.window) n in
        let matching =
          List.find_opt
            (fun i -> i mod s.modulus = a)
            (List.init (hi - s.base) (fun k -> s.base + k))
        in
        match matching with
        | Some i -> (advance_base { s with acked = IntMap.add i true s.acked }, [])
        | None -> (s, [])
      end

type receiver_state = {
  r_domain : int;
  r_window : int;
  r_modulus : int;
  expected : int; (* absolute count of in-order items written *)
  buffer : int IntMap.t; (* absolute index -> data, within (expected, expected+window) *)
}

let rec flush r writes =
  match IntMap.find_opt r.expected r.buffer with
  | Some data ->
      flush
        { r with expected = r.expected + 1; buffer = IntMap.remove r.expected r.buffer }
        (Action.Write data :: writes)
  | None -> (r, List.rev writes)

let receiver_step r event =
  match event with
  | Event.Deliver frame ->
      let seq = frame / r.r_domain and data = frame mod r.r_domain in
      let offset = (seq - (r.expected mod r.r_modulus) + r.r_modulus) mod r.r_modulus in
      if offset < r.r_window then begin
        (* Within the receive window: buffer, flush, ack. *)
        let r = { r with buffer = IntMap.add (r.expected + offset) data r.buffer } in
        let r, writes = flush r [] in
        (r, writes @ [ Action.Send seq ])
      end
      else
        (* A retransmission of an already-delivered frame (assuming the
           2·window sequence space): re-acknowledge it. *)
        (r, [ Action.Send seq ])
  | Event.Wake -> (r, [])

let protocol_mod channel ~domain ~window ~modulus =
  if window < 1 then invalid_arg "Selective_repeat.protocol: window must be >= 1";
  if modulus <= window then invalid_arg "Selective_repeat.protocol: modulus must exceed window";
  {
    Protocol.name =
      Printf.sprintf "selective-repeat(w=%d,M=%d,d=%d,%s)" window modulus domain
        (Channel.Chan.kind_name channel);
    sender_alphabet = modulus * domain;
    receiver_alphabet = modulus;
    channel;
    make_sender =
      (fun ~input ->
        Proc.make
          ~state:{ input; domain; window; modulus; base = 0; acked = IntMap.empty; cursor = 0 }
          ~step:sender_step ());
    make_receiver =
      (fun () ->
        Proc.make
          ~state:
            {
              r_domain = domain;
              r_window = window;
              r_modulus = modulus;
              expected = 0;
              buffer = IntMap.empty;
            }
          ~step:receiver_step ());
    symmetry = None;
    perturb = None;
  }

let protocol ~domain ~window =
  protocol_mod Channel.Chan.Fifo_lossy ~domain ~window ~modulus:(2 * window)

let () =
  Kernel.Registry.register_protocol ~name:"selective-repeat"
    ~doc:"Selective Repeat sliding window (M = 2w)"
    (fun cfg ->
      let { Kernel.Registry.channel; domain; window; _ } = cfg in
      Ok (protocol_mod channel ~domain ~window ~modulus:(2 * window)))

module Json = Stdx.Json
module Report = Stdx.Report
module Registry = Kernel.Registry
module Sched = Kernel.Sched
module Chan = Channel.Chan

type job = {
  label : string;
  protocol : Kernel.Protocol.t;
  protocol_name : string;
  channel : Chan.kind;
  input : int array;
  strategy : Kernel.Strategy.t;
  strategy_name : string;
  seed : int;
  max_steps : int;
  post_roll : int;
  max_seconds : float option;
  plan : Faults.Plan.t option;
  within : int;
}

type outcome = {
  job : job;
  result : Kernel.Runner.result;
  verdict : Core.Verdict.t;
  ttr : int option;
}

(* ------------------------- job parsing ------------------------- *)

let ( let* ) = Result.bind

let str_field j key ~default =
  match Json.member key j with
  | None -> Ok default
  | Some (Json.String s) -> Ok s
  | Some _ -> Error (Printf.sprintf "%S must be a string" key)

let int_field j key ~default =
  match Json.member key j with
  | None -> Ok default
  | Some (Json.Int i) -> Ok i
  | Some _ -> Error (Printf.sprintf "%S must be an integer" key)

let float_opt_field j key =
  match Json.member key j with
  | None -> Ok None
  | Some (Json.Float f) -> Ok (Some f)
  | Some (Json.Int i) -> Ok (Some (float_of_int i))
  | Some _ -> Error (Printf.sprintf "%S must be a number" key)

let input_field j =
  match Json.member "input" j with
  | None -> Error "missing required field \"input\""
  | Some (Json.List cells) ->
      let* xs =
        List.fold_left
          (fun acc c ->
            let* acc = acc in
            match c with
            | Json.Int i -> Ok (i :: acc)
            | _ -> Error "\"input\" must be a list of integers")
          (Ok []) cells
      in
      Ok (Array.of_list (List.rev xs))
  | Some _ -> Error "\"input\" must be a list of integers"

let job_of_json ~index j =
  let d = Registry.default in
  let located e = Error (Printf.sprintf "job %d: %s" index e) in
  match
    let* label = str_field j "label" ~default:(Printf.sprintf "job%d" index) in
    let* protocol_name =
      match Json.member "protocol" j with
      | Some (Json.String s) -> Ok s
      | Some _ -> Error "\"protocol\" must be a string"
      | None -> Error "missing required field \"protocol\""
    in
    let* input = input_field j in
    let* channel_name = str_field j "channel" ~default:(Chan.to_string d.Registry.channel) in
    let* channel =
      match Chan.of_string channel_name with
      | Some k -> Ok k
      | None -> Error (Printf.sprintf "unknown channel %S" channel_name)
    in
    let* domain = int_field j "domain" ~default:d.Registry.domain in
    let* max_len = int_field j "max_len" ~default:d.Registry.max_len in
    let* header_space = int_field j "header_space" ~default:d.Registry.header_space in
    let* drop_budget = int_field j "drop_budget" ~default:d.Registry.drop_budget in
    let* window = int_field j "window" ~default:d.Registry.window in
    let* protocol =
      Registry.build_protocol ~name:protocol_name
        { Registry.channel; domain; max_len; header_space; drop_budget; window }
    in
    let* strategy_name = str_field j "strategy" ~default:"fair-random" in
    let* base = Kernel.Strategy.of_string strategy_name in
    let* seed = int_field j "seed" ~default:1 in
    let* max_steps = int_field j "max_steps" ~default:50_000 in
    let* post_roll = int_field j "post_roll" ~default:0 in
    let* max_seconds = float_opt_field j "max_seconds" in
    let* within = int_field j "within" ~default:64 in
    let* plan =
      match Json.member "plan" j with
      | None -> Ok None
      | Some pj ->
          let* plan = Faults.Plan.of_json pj in
          (* The protocol's declared corrupted-start space (if any)
             legalises corrupt-state events exactly as the channel's
             capability flags legalise drops. *)
          let* () =
            Faults.Plan.validate ~channel:protocol.Kernel.Protocol.channel
              ?corrupt_space:(Kernel.Protocol.corrupt_space protocol ~input)
              plan
          in
          Ok (Some plan)
    in
    let strategy =
      match plan with
      | None -> base
      | Some plan -> Faults.Inject.strategy ~plan ~base
    in
    Ok
      {
        label;
        protocol;
        protocol_name;
        channel = protocol.Kernel.Protocol.channel;
        input;
        strategy;
        strategy_name;
        seed;
        max_steps;
        post_roll;
        max_seconds;
        plan;
        within;
      }
  with
  | Ok job -> Ok job
  | Error e -> located e

let batch_of_json j =
  let jobs_json =
    match j with
    | Json.List l -> Ok l
    | Json.Obj _ -> (
        match Json.member "jobs" j with
        | Some (Json.List l) -> Ok l
        | Some _ -> Error "\"jobs\" must be a list"
        | None -> Error "batch object has no \"jobs\" field")
    | _ -> Error "a batch is a JSON object with a \"jobs\" list, or a bare list of jobs"
  in
  let* jobs_json = jobs_json in
  let* rev =
    List.fold_left
      (fun acc (i, j) ->
        let* acc = acc in
        let* job = job_of_json ~index:i j in
        Ok (job :: acc))
      (Ok [])
      (List.mapi (fun i j -> (i, j)) jobs_json)
  in
  Ok (List.rev rev)

let load_batch path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error e
  | contents ->
      let* j = Json.parse contents in
      batch_of_json j

(* ------------------------- execution ------------------------- *)

let run_batch ?jobs ?timeslice batch =
  let sessions =
    List.map
      (fun j ->
        Sched.session j.protocol ~input:j.input ~strategy:j.strategy
          ~rng:(Stdx.Rng.create j.seed) ~max_steps:j.max_steps ?max_seconds:j.max_seconds
          ~post_roll:j.post_roll ())
      batch
  in
  let results, stats = Core.Batch.run_stats ?jobs ?timeslice sessions in
  let outcomes =
    List.map2
      (fun job (result : Kernel.Runner.result) ->
        let verdict = Core.Verdict.of_result result in
        match job.plan with
        | None -> { job; result; verdict; ttr = None }
        | Some plan ->
            let last_fault = Faults.Plan.last_fault_time plan in
            let verdict = Core.Verdict.assess_recovery ~last_fault ~within:job.within verdict in
            { job; result; verdict; ttr = Core.Verdict.time_to_recover ~last_fault verdict })
      batch results
  in
  (outcomes, stats)

(* ------------------------- reports ------------------------- *)

let opt_int = function Some v -> Report.int v | None -> Report.str "-"

let results_report ~label outcomes =
  let n = List.length outcomes in
  let count f = List.length (List.filter f outcomes) in
  let completed = count (fun o -> o.result.Kernel.Runner.stop = Kernel.Runner.Completed) in
  let safe = count (fun o -> o.verdict.Core.Verdict.safe) in
  let complete = count (fun o -> o.verdict.Core.Verdict.complete) in
  let with_plan = count (fun o -> o.job.plan <> None) in
  let recovered = count (fun o -> o.verdict.Core.Verdict.recovered = Some true) in
  let metrics =
    Report.Metrics
      {
        title = Some "batch";
        pairs =
          [
            ("jobs", Report.int n);
            ("stop_completed", Report.int completed);
            ("safe", Report.int safe);
            ("complete", Report.int complete);
            ("with_plan", Report.int with_plan);
            ("recovered", Report.int recovered);
          ];
      }
  in
  let b =
    Report.table ~title:"per-job results"
      [
        ("job", Report.Left);
        ("protocol", Report.Left);
        ("channel", Report.Left);
        ("strategy", Report.Left);
        ("seed", Report.Right);
        ("stop", Report.Left);
        ("steps", Report.Right);
        ("safe", Report.Right);
        ("complete", Report.Right);
        ("recovered", Report.Left);
        ("ttr", Report.Right);
      ]
  in
  List.iter
    (fun o ->
      let v = o.verdict in
      Report.row b
        [
          Report.str o.job.label;
          Report.str o.job.protocol_name;
          Report.str (Chan.kind_name o.job.channel);
          Report.str o.job.strategy_name;
          Report.int o.job.seed;
          Report.str (Format.asprintf "%a" Sched.pp_stop o.result.Kernel.Runner.stop);
          Report.int v.Core.Verdict.steps;
          Report.bool v.Core.Verdict.safe;
          Report.bool v.Core.Verdict.complete;
          (match v.Core.Verdict.recovered with
          | None -> Report.str "-"
          | Some r -> Report.bool r);
          opt_int o.ttr;
        ])
    outcomes;
  (* ok means "the batch drained": a job whose protocol loses is a
     result the artifact reports, not a service failure — otherwise an
     adversarial battery could never validate. *)
  Report.make ~id:"serve"
    ~title:(Printf.sprintf "serve batch %s (%d jobs)" label n)
    ~ok:true
    [ metrics; Report.finish b ]

type telemetry = { batches : int; stats : Sched.stats; wall_seconds : float }

let telemetry_zero = { batches = 0; stats = Sched.stats_zero; wall_seconds = 0.0 }

let observe t stats ~wall_seconds =
  {
    batches = t.batches + 1;
    stats = Sched.stats_merge t.stats stats;
    wall_seconds = t.wall_seconds +. wall_seconds;
  }

let telemetry_report t =
  let s = t.stats in
  let steps_per_sec =
    if t.wall_seconds > 0.0 then float_of_int s.Sched.steps /. t.wall_seconds else 0.0
  in
  Report.make ~id:"serve-telemetry" ~title:"scheduler telemetry (cumulative)"
    [
      Report.Section
        {
          heading = "telemetry";
          items =
            [
              Report.Metrics
                {
                  title = Some "scheduler";
                  pairs =
                    [
                      ("batches", Report.int t.batches);
                      ("sessions", Report.int s.Sched.sessions);
                      ("steps", Report.int s.Sched.steps);
                      ("ticks", Report.int s.Sched.ticks);
                      ("peak_queue_depth", Report.int s.Sched.peak_live);
                      ("stop_completed", Report.int s.Sched.completed);
                      ("stop_quiescent", Report.int s.Sched.quiescent);
                      ("stop_budget", Report.int s.Sched.budget);
                      ("stop_strategy_end", Report.int s.Sched.strategy_end);
                      ("wall_seconds", Report.float ~decimals:3 t.wall_seconds);
                      ("steps_per_sec", Report.float ~decimals:0 steps_per_sec);
                    ];
                };
            ];
        };
    ]

let artifact ?(results_only = false) ~results ~telemetry () =
  Report.set_to_json (if results_only then [ results ] else [ results; telemetry ])

(* ------------------------- the daemon ------------------------- *)

(* Crash-safe artifact write: a reader polling the spool directory
   must never observe a half-written report, and a daemon killed
   mid-write must not leave a plausible-looking truncated artifact
   behind — so write to a dotted temp name (invisible to the
   *.json pickup glob) and atomically rename into place. *)
let write_file path contents =
  let tmp = Filename.concat (Filename.dirname path) ("." ^ Filename.basename path ^ ".tmp") in
  Out_channel.with_open_bin tmp (fun oc ->
      Out_channel.output_string oc contents;
      Out_channel.output_char oc '\n');
  Sys.rename tmp path

let spool ?jobs ?timeslice ?(poll_seconds = 0.5) ?max_batches ?idle_exit ~dir () =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    Error (Printf.sprintf "%s: not a directory" dir)
  else begin
    let telemetry = ref telemetry_zero in
    let batches = ref 0 in
    let idle_since = ref (Unix.gettimeofday ()) in
    let stop = ref false in
    while not !stop do
      let next_batch =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f ->
               Filename.check_suffix f ".json" && not (Filename.check_suffix f ".report.json"))
        |> List.sort String.compare
        |> function
        | [] -> None
        | f :: _ -> Some f
      in
      match next_batch with
      | None -> (
          match idle_exit with
          | Some s when Unix.gettimeofday () -. !idle_since >= s -> stop := true
          | _ -> Unix.sleepf poll_seconds)
      | Some f -> (
          let path = Filename.concat dir f in
          idle_since := Unix.gettimeofday ();
          match load_batch path with
          | Error e ->
              Format.printf "batch %s: REJECTED (%s)@." f e;
              Sys.rename path (path ^ ".failed");
              incr batches;
              (match max_batches with Some m when !batches >= m -> stop := true | _ -> ())
          | Ok batch ->
              let t0 = Unix.gettimeofday () in
              let outcomes, stats = run_batch ?jobs ?timeslice batch in
              telemetry := observe !telemetry stats ~wall_seconds:(Unix.gettimeofday () -. t0);
              let results = results_report ~label:f outcomes in
              let out = Filename.chop_suffix path ".json" ^ ".report.json" in
              write_file out
                (Json.to_string
                   (artifact ~results ~telemetry:(telemetry_report !telemetry) ()));
              Sys.rename path (path ^ ".done");
              let completed =
                List.length
                  (List.filter
                     (fun o -> o.result.Kernel.Runner.stop = Kernel.Runner.Completed)
                     outcomes)
              in
              Format.printf "batch %s: %d jobs, %d completed, %d steps -> %s@." f
                (List.length outcomes) completed stats.Sched.steps (Filename.basename out);
              incr batches;
              (match max_batches with Some m when !batches >= m -> stop := true | _ -> ()))
    done;
    Ok !telemetry
  end

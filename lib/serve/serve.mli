(** The [stp serve] batch service: JSON job specs in, report-IR
    artifacts out, over the {!Kernel.Sched} event-queue core.

    A {e job} is one scheduler session described as data: protocol ×
    channel × input × strategy × seed × budgets, plus an optional
    fault plan (validated against the channel's capabilities and
    compiled through {!Faults.Inject}).  A {e batch} is a JSON file of
    jobs; executing it builds one session per job, shards them over
    the domain pool via [Core.Batch], and renders two reports:

    - [serve] — per-job verdicts (stop reason, steps, safety,
      completeness, recovery), fully deterministic: bit-identical at
      every [--jobs] count and timeslice;
    - [serve-telemetry] — the cumulative scheduler counters (sessions
      served, steps, ticks, peak queue depth, stop-reason histogram)
      plus wall-clock throughput, as a typed {!Stdx.Report} section.
      Clock-derived numbers vary run to run, which is why telemetry
      lives in its own report: the determinism pin compares
      results-only artifacts.

    Two entry points: {!spool} is the long-lived daemon (poll a
    directory, execute each batch file, stream one artifact per batch,
    accumulate telemetry); a [--once] run executes a single batch file
    and exits, which is what the cram tests drive. *)

type job = {
  label : string;
  protocol : Kernel.Protocol.t;
  protocol_name : string;
  channel : Channel.Chan.kind;
  input : int array;
  strategy : Kernel.Strategy.t;
  strategy_name : string;
  seed : int;
  max_steps : int;
  post_roll : int;
  max_seconds : float option;
  plan : Faults.Plan.t option;
  within : int;  (** recovery window when [plan] is present *)
}

type outcome = {
  job : job;
  result : Kernel.Runner.result;
  verdict : Core.Verdict.t;
  ttr : int option;  (** time to recover, for fault-plan jobs *)
}

val batch_of_json : Stdx.Json.t -> (job list, string) result
(** Parse a batch: either [{"jobs": [...]}] or a bare list of job
    objects.  Strict: any malformed job fails the whole batch with an
    error naming the job.  See README for the field-by-field schema;
    everything except ["protocol"] and ["input"] has a default. *)

val load_batch : string -> (job list, string) result
(** Read and parse a batch file. *)

val run_batch :
  ?jobs:int -> ?timeslice:int -> job list -> outcome list * Kernel.Sched.stats
(** Execute the batch as scheduler sessions sharded over the pool.
    Outcomes are in job order and independent of [jobs]/[timeslice]. *)

(* ------------------------- reports ------------------------- *)

val results_report : label:string -> outcome list -> Stdx.Report.t
(** The deterministic per-job report (id ["serve"], [ok = true]: the
    batch drained; failing jobs are data, not service failures). *)

type telemetry
(** Cumulative service counters across batches. *)

val telemetry_zero : telemetry

val observe : telemetry -> Kernel.Sched.stats -> wall_seconds:float -> telemetry
(** Fold one executed batch into the running totals. *)

val telemetry_report : telemetry -> Stdx.Report.t
(** Id ["serve-telemetry"]: a [telemetry] section with the scheduler
    counters, queue depth, stop-reason histogram, and steps/sec. *)

val artifact : ?results_only:bool -> results:Stdx.Report.t -> telemetry:Stdx.Report.t -> unit -> Stdx.Json.t
(** The report-set artifact a batch emits; [results_only] drops the
    telemetry report so artifacts can be byte-compared across job
    counts. *)

(* ------------------------- the daemon ------------------------- *)

val spool :
  ?jobs:int ->
  ?timeslice:int ->
  ?poll_seconds:float ->
  ?max_batches:int ->
  ?idle_exit:float ->
  dir:string ->
  unit ->
  (telemetry, string) result
(** Poll [dir] for batch files ([*.json], lexicographic order),
    execute each, write [<name>.report.json] beside it, and rename the
    input to [<name>.json.done] ([.failed] on a parse error, which
    does not stop the daemon).  Reports land atomically: the bytes go
    to a dotted [.<name>.report.json.tmp] first and are renamed into
    place, so a concurrent reader (or a crash mid-write) can never
    observe a truncated artifact.  Stops after [max_batches] batch files
    (rejected ones count: the bound is on files processed) or
    after [idle_exit] seconds with nothing to do (default: run
    forever); returns the cumulative telemetry.  [poll_seconds]
    (default 0.5) is the idle sleep. *)

module Multiset = Stdx.Multiset
module Deque = Stdx.Deque
module IntSet = Set.Make (Int)

type kind = Perfect | Fifo_lossy | Reorder_dup | Reorder_del | Bounded_reorder of { lag : int }

let kind_name = function
  | Perfect -> "perfect"
  | Fifo_lossy -> "fifo-lossy"
  | Reorder_dup -> "reorder+dup"
  | Reorder_del -> "reorder+del"
  | Bounded_reorder { lag } -> Printf.sprintf "reorder<=%d+del" lag

(* Parse-canonical names: the short CLI spellings, distinct from the
   display names above so table output does not move. *)
let to_string = function
  | Perfect -> "perfect"
  | Fifo_lossy -> "fifo-lossy"
  | Reorder_dup -> "dup"
  | Reorder_del -> "del"
  | Bounded_reorder { lag } -> Printf.sprintf "lag:%d" lag

let of_string s =
  match s with
  | "perfect" -> Some Perfect
  | "fifo-lossy" | "fifo" | "lossy" -> Some Fifo_lossy
  | "dup" | "reorder+dup" | "reorder-dup" -> Some Reorder_dup
  | "del" | "reorder+del" | "reorder-del" -> Some Reorder_del
  | _ ->
      let lag_of prefix =
        let pl = String.length prefix in
        if String.length s > pl && String.sub s 0 pl = prefix then
          match int_of_string_opt (String.sub s pl (String.length s - pl)) with
          | Some lag when lag >= 0 -> Some (Bounded_reorder { lag })
          | Some _ | None -> None
        else None
      in
      (match lag_of "lag:" with Some _ as r -> r | None -> lag_of "lag=")

let reorders = function
  | Reorder_dup | Reorder_del -> true
  | Bounded_reorder { lag } -> lag > 0
  | Perfect | Fifo_lossy -> false

let deletes = function
  | Fifo_lossy | Reorder_del | Bounded_reorder _ -> true
  | Perfect | Reorder_dup -> false

let duplicates = function
  | Reorder_dup -> true
  | Perfect | Fifo_lossy | Reorder_del | Bounded_reorder _ -> false

type body =
  | Fifo of int Deque.t (* Perfect and Fifo_lossy *)
  | Dup of IntSet.t (* ever-sent set *)
  | Del of Multiset.t (* in-flight copies *)
  | Lag of { lag : int; flight : (int * int) list }
      (* send order, oldest first; each copy carries the number of
         times it has already been overtaken *)

type t = {
  k : kind;
  body : body;
  mutable enc : string option;
      (* Memoised [encode] of [body].  Channel values are shared across
         the many globals an explorer branches over, so each distinct
         body is serialised once.  Benign under parallel sweeps:
         concurrent writers store the same value. *)
  sent : Multiset.t; (* cumulative counters, not part of the transition state *)
  delivered : Multiset.t;
  dropped : Multiset.t;
}

let create k =
  let body =
    match k with
    | Perfect | Fifo_lossy -> Fifo Deque.empty
    | Reorder_dup -> Dup IntSet.empty
    | Reorder_del -> Del Multiset.empty
    | Bounded_reorder { lag } -> Lag { lag; flight = [] }
  in
  { k; body; enc = None; sent = Multiset.empty; delivered = Multiset.empty; dropped = Multiset.empty }

let kind t = t.k

let send t m =
  let body =
    match t.body with
    | Fifo q -> Fifo (Deque.push_back q m)
    | Dup s -> Dup (IntSet.add m s)
    | Del ms -> Del (Multiset.add ms m)
    | Lag l -> Lag { l with flight = l.flight @ [ (m, 0) ] }
  in
  { t with body; enc = None; sent = Multiset.add t.sent m }

(* Delivering (or dropping past) a copy overtakes every older copy
   still in flight; a copy may be overtaken at most [lag] times.  So a
   copy is reachable exactly when every strictly older copy has been
   overtaken fewer than [lag] times — [lag = 0] degenerates to FIFO. *)
let lag_reachable lag flight =
  let rec go blocked acc = function
    | [] -> List.rev acc
    | (m, c) :: rest ->
        let acc = if blocked then acc else (m, c) :: acc in
        go (blocked || c >= lag) acc rest
  in
  go false [] flight

(* Remove the first reachable copy of [x], charging one overtake to
   every older copy left behind. *)
let lag_take lag x flight =
  let rec go acc = function
    | [] -> None
    | (m, c) :: rest ->
        if m = x then Some (List.rev_append (List.map (fun (m', c') -> (m', c' + 1)) acc) rest)
        else if c >= lag then None (* this copy blocks everything younger *)
        else go ((m, c) :: acc) rest
  in
  go [] flight

let deliverable t =
  match t.body with
  | Fifo q -> ( match Deque.peek_front q with Some m -> [ m ] | None -> [])
  | Dup s -> IntSet.elements s
  | Del ms -> Multiset.support ms
  | Lag { lag; flight } -> List.sort_uniq Int.compare (List.map fst (lag_reachable lag flight))

let can_deliver t m = List.mem m (deliverable t)

let deliver t m =
  if not (can_deliver t m) then None
  else begin
    let body =
      match t.body with
      | Fifo q -> (
          match Deque.pop_front q with
          | Some (_, q') -> Fifo q'
          | None -> assert false)
      | Dup s -> Dup s (* duplication: delivery consumes nothing *)
      | Del ms -> (
          match Multiset.remove ms m with Some ms' -> Del ms' | None -> assert false)
      | Lag l -> (
          match lag_take l.lag m l.flight with
          | Some flight -> Lag { l with flight }
          | None -> assert false)
    in
    (* A duplicating delivery leaves the body untouched, so its
       memoised encoding stays valid. *)
    let enc = match t.body with Dup _ -> t.enc | Fifo _ | Del _ | Lag _ -> None in
    Some { t with body; enc; delivered = Multiset.add t.delivered m }
  end

let droppable t =
  match (t.k, t.body) with
  | Fifo_lossy, Fifo q -> ( match Deque.peek_front q with Some m -> [ m ] | None -> [])
  | Reorder_del, Del ms -> Multiset.support ms
  | Bounded_reorder _, Lag { flight; _ } ->
      (* Deletion can strike any in-flight copy regardless of order. *)
      List.sort_uniq Int.compare (List.map fst flight)
  | (Perfect | Fifo_lossy | Reorder_dup | Reorder_del | Bounded_reorder _), _ -> []

let drop t m =
  if not (List.mem m (droppable t)) then None
  else begin
    let body =
      match t.body with
      | Fifo q -> (
          match Deque.pop_front q with
          | Some (_, q') -> Fifo q'
          | None -> assert false)
      | Del ms -> (
          match Multiset.remove ms m with Some ms' -> Del ms' | None -> assert false)
      | Lag l ->
          (* A drop destroys the copy in place: nothing overtakes
             anything, so no counters change. *)
          let rec remove acc = function
            | [] -> assert false
            | (m', c') :: rest ->
                if m' = m then List.rev_append acc rest else remove ((m', c') :: acc) rest
          in
          Lag { l with flight = remove [] l.flight }
      | Dup _ -> assert false
    in
    Some { t with body; enc = None; dropped = Multiset.add t.dropped m }
  end

let dlvrble t =
  match t.body with
  | Fifo q -> Deque.fold (fun acc m -> Multiset.add acc m) Multiset.empty q
  | Dup s -> IntSet.fold (fun m acc -> Multiset.add acc m) s Multiset.empty
  | Del ms -> ms
  | Lag { flight; _ } -> Multiset.of_list (List.map fst flight)

let sent_count t m = Multiset.count t.sent m
let delivered_count t m = Multiset.count t.delivered m
let dropped_count t m = Multiset.count t.dropped m

let sent_total t = Multiset.cardinal t.sent
let delivered_total t = Multiset.cardinal t.delivered
let dropped_total t = Multiset.cardinal t.dropped

let observed t =
  List.sort_uniq Int.compare
    (Multiset.support t.sent @ Multiset.support t.delivered @ Multiset.support t.dropped)

let debt t =
  match t.body with
  | Dup _ ->
      (* Property 1c: every send must eventually be matched by a
         delivery of the same message; extra duplicated deliveries can
         cover the debt. *)
      Multiset.fold
        (fun m n acc -> acc + max 0 (n - Multiset.count t.delivered m))
        t.sent 0
  | Fifo q -> Deque.length q
  | Del ms -> Multiset.cardinal ms
  | Lag { flight; _ } -> List.length flight

(* Binary body fingerprint: a tag byte for the body form, a count,
   then the contents as varints.  The count makes each form a prefix
   code, so the fingerprint is injective per body type; the tag keeps
   the forms apart.  Built once per distinct body (memoised below) via
   a throwaway writer — the per-state hot path only blits the memo. *)
let encode_body body =
  let c = Stdx.Codec.create ~size:24 () in
  (match body with
  | Fifo q ->
      Stdx.Codec.add_char c 'F';
      Stdx.Codec.add_varint c (Deque.length q);
      Deque.fold (fun () m -> Stdx.Codec.add_varint c m) () q
  | Dup s ->
      Stdx.Codec.add_char c 'U';
      Stdx.Codec.add_varint c (IntSet.cardinal s);
      IntSet.iter (fun m -> Stdx.Codec.add_varint c m) s
  | Del ms ->
      Stdx.Codec.add_char c 'D';
      Multiset.emit c ms
  | Lag { flight; _ } ->
      Stdx.Codec.add_char c 'L';
      Stdx.Codec.add_varint c (List.length flight);
      List.iter
        (fun (m, ov) ->
          Stdx.Codec.add_varint c m;
          Stdx.Codec.add_varint c ov)
        flight);
  Stdx.Codec.contents c

let encode t =
  match t.enc with
  | Some s -> s
  | None ->
      let s = encode_body t.body in
      t.enc <- Some s;
      s

let emit c t = Stdx.Codec.add_blob c (encode t)

(* The body fingerprint plus the cumulative counters: everything about
   the channel that any engine decision reads (deliverable/droppable
   sets, send-cap totals, debt).  Unlike [emit], two values equal
   under this key may still differ in their construction history. *)
let emit_run_key c t =
  emit c t;
  Multiset.emit c t.sent;
  Multiset.emit c t.delivered;
  Multiset.emit c t.dropped

let pp ppf t =
  match t.body with
  | Fifo q ->
      Format.fprintf ppf "%s[%a]" (kind_name t.k)
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ") Format.pp_print_int)
        (Deque.to_list q)
  | Dup s ->
      Format.fprintf ppf "%s{%a}" (kind_name t.k)
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ") Format.pp_print_int)
        (IntSet.elements s)
  | Del ms -> Format.fprintf ppf "%s%a" (kind_name t.k) Multiset.pp ms
  | Lag { flight; _ } ->
      Format.fprintf ppf "%s[%a]" (kind_name t.k)
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
           (fun ppf (m, c) -> Format.fprintf ppf "%d^%d" m c))
        flight

(** Unidirectional unreliable channels (§2.2, Property 1).

    A channel carries message symbols (small non-negative integers
    drawn from the sending process's finite alphabet).  Four semantics
    are provided:

    - {b Perfect}: FIFO, no loss — the trivial baseline of §1.
    - {b Fifo_lossy}: FIFO order, the adversary may drop the head —
      the classic data-link setting where the Alternating Bit protocol
      is correct.
    - {b Reorder_dup}: the §3 channel.  Delivery never consumes
      anything: once a message has been sent, the channel can deliver
      a copy of it at every later step ([dlvrble] is a 0/1 vector).
      Nothing is ever lost (Property 1c).
    - {b Reorder_del}: the §4 channel.  The channel holds a multiset
      of in-flight copies ([dlvrble] counts sends minus deliveries);
      delivery consumes a copy and the adversary may delete copies.

    States are persistent so the exhaustive explorer and the product
    attack search can branch cheaply.  Cumulative send/deliver/drop
    counters support the fairness audits of Property 1b–c. *)

type kind =
  | Perfect
  | Fifo_lossy
  | Reorder_dup
  | Reorder_del
  | Bounded_reorder of { lag : int }
      (** Lag-bounded reordering with deletion: an in-flight copy may
          overtake at most [lag] of its predecessors (only the oldest
          [lag + 1] copies are deliverable or droppable at any moment).
          [lag = 0] coincides with {!Fifo_lossy}; [lag = ∞] would be
          {!Reorder_del}.  This interpolation is where the bounded-
          header protocols the theorems kill become correct again —
          experiment E10 locates the crossover. *)

val kind_name : kind -> string
(** Display name used in tables and pretty-printing, e.g.
    ["reorder+dup"], ["reorder<=2+del"]. *)

val to_string : kind -> string
(** Parse-canonical name: ["perfect"], ["fifo-lossy"], ["dup"],
    ["del"], ["lag:K"].  [of_string (to_string k) = Some k]. *)

val of_string : string -> kind option
(** Inverse of {!to_string}; also accepts the aliases ["fifo"],
    ["lossy"], ["reorder+dup"]/["reorder-dup"],
    ["reorder+del"]/["reorder-del"], and ["lag=K"]. *)

val reorders : kind -> bool
(** Whether the adversary controls delivery order. *)

val deletes : kind -> bool
(** Whether the adversary may drop copies. *)

val duplicates : kind -> bool
(** Whether delivery leaves the message deliverable again. *)

type t

val create : kind -> t

val kind : t -> kind

val send : t -> int -> t
(** [send t m] puts one copy of [m] in flight. *)

val deliverable : t -> int list
(** Distinct messages a delivery move may carry right now, ascending.
    For FIFO kinds this is the head (or nothing); for reordering kinds
    it is the support of the deliverable vector. *)

val can_deliver : t -> int -> bool

val deliver : t -> int -> t option
(** [deliver t m] performs a delivery of [m]; [None] if [m] is not
    currently deliverable.  On [Reorder_dup] the deliverable vector is
    unchanged (duplication); on the others one copy is consumed. *)

val droppable : t -> int list
(** Messages a drop move may target ([Fifo_lossy]: the head;
    [Reorder_del]: any in-flight message; empty otherwise). *)

val drop : t -> int -> t option
(** [drop t m] deletes one in-flight copy of [m]; [None] if the kind
    does not delete or no copy is in flight. *)

val dlvrble : t -> Stdx.Multiset.t
(** The paper's [dlvrble] vector: for [Reorder_dup] a 0/1 vector over
    ever-sent messages, for the others the in-flight multiset. *)

val sent_count : t -> int -> int
(** Cumulative copies of [m] sent. *)

val delivered_count : t -> int -> int

val dropped_count : t -> int -> int

val sent_total : t -> int
val delivered_total : t -> int
val dropped_total : t -> int

val observed : t -> int list
(** Every distinct message that was ever sent, delivered, or dropped
    on this channel, ascending — the support the audits quantify
    over. *)

val debt : t -> int
(** Fairness debt: deliveries still owed.  [Reorder_dup]: total sends
    minus total deliveries (Property 1c owes one delivery per send);
    others: copies currently in flight.  A finite execution is
    considered channel-fair when the adversary stopped with zero debt
    or the run completed. *)

val encode : t -> string
(** Canonical binary fingerprint of the transition-relevant body
    (cumulative counters excluded).  Two states with equal encodings
    are observationally identical for every future behaviour.
    Memoised per distinct body: computed on first demand, then
    answered from a cache for the lifetime of the value. *)

val emit : Stdx.Codec.t -> t -> unit
(** Append the (memoised) fingerprint to a codec as a length-prefixed
    blob — the {!Kernel.Global.emit} component path; allocates nothing
    once the memo is warm. *)

val emit_run_key : Stdx.Codec.t -> t -> unit
(** {!emit} followed by the three cumulative counter multisets — the
    channel component of {!Kernel.Global.emit_run_key}.  Equal keys
    mean the channels are interchangeable for every decision the
    engines make (deliverable/droppable sets, send-cap totals, debt),
    even when their construction histories differ. *)

val pp : Format.formatter -> t -> unit

type corrupted = { label : string; proc : Proc.t }

type perturb = {
  sender_states : input:int array -> corrupted list;
  receiver_states : written:int -> corrupted list;
}

type t = {
  name : string;
  sender_alphabet : int;
  receiver_alphabet : int;
  channel : Channel.Chan.kind;
  make_sender : input:int array -> Proc.t;
  make_receiver : unit -> Proc.t;
  symmetry : Symm.equivariance option;
  perturb : perturb option;
}

let corrupt_space t ~input =
  match t.perturb with
  | None -> None
  | Some pe ->
      Some
        (List.length (pe.sender_states ~input), List.length (pe.receiver_states ~written:0))

let validate_action ~is_sender ~alphabet action =
  match action with
  | Action.Write _ when is_sender -> Error "sender attempted to write the output tape"
  | Action.Write _ -> Ok ()
  | Action.Send m ->
      if m < 0 || m >= alphabet then
        Error
          (Printf.sprintf "message symbol %d outside declared alphabet of size %d" m alphabet)
      else Ok ()

let validate_perturb t ~input =
  match t.perturb with
  | None -> Ok ()
  | Some pe ->
      let check ~is_sender ~alphabet who cs =
        if cs = [] then Error (Printf.sprintf "%s corrupted-start enumeration is empty" who)
        else
          let labels = List.map (fun c -> c.label) cs in
          if List.length (List.sort_uniq compare labels) <> List.length labels then
            Error (Printf.sprintf "%s corrupted-start labels are not distinct" who)
          else
            List.fold_left
              (fun acc c ->
                match acc with
                | Error _ -> acc
                | Ok () ->
                    let _, actions = Proc.step c.proc Event.Wake in
                    List.fold_left
                      (fun acc a ->
                        match acc with
                        | Error _ -> acc
                        | Ok () -> (
                            match validate_action ~is_sender ~alphabet a with
                            | Ok () -> Ok ()
                            | Error e ->
                                Error (Printf.sprintf "%s state %S: %s" who c.label e)))
                      acc actions)
              (Ok ()) cs
      in
      let rs0 = pe.receiver_states ~written:0 in
      let rsn = pe.receiver_states ~written:(Array.length input) in
      Result.bind
        (check ~is_sender:true ~alphabet:t.sender_alphabet "sender" (pe.sender_states ~input))
        (fun () ->
          Result.bind (check ~is_sender:false ~alphabet:t.receiver_alphabet "receiver" rs0)
            (fun () ->
              Result.bind
                (check ~is_sender:false ~alphabet:t.receiver_alphabet "receiver (mid-run)" rsn)
                (fun () ->
                  (* The written-count convention: indices must name the
                     same corruption at every injection time, so the
                     label sequence may not depend on [written]. *)
                  if List.map (fun c -> c.label) rs0 <> List.map (fun c -> c.label) rsn then
                    Error
                      "receiver corrupted-start labels depend on the written count (the \
                       enumeration must be written-invariant)"
                  else Ok ())))

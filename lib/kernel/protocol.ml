type corrupted = { label : string; proc : Proc.t }

type perturb = {
  sender_states : input:int array -> corrupted list;
  receiver_states : unit -> corrupted list;
}

type t = {
  name : string;
  sender_alphabet : int;
  receiver_alphabet : int;
  channel : Channel.Chan.kind;
  make_sender : input:int array -> Proc.t;
  make_receiver : unit -> Proc.t;
  symmetry : Symm.equivariance option;
  perturb : perturb option;
}

let corrupt_space t ~input =
  match t.perturb with
  | None -> None
  | Some pe -> Some (List.length (pe.sender_states ~input), List.length (pe.receiver_states ()))

let validate_action ~is_sender ~alphabet action =
  match action with
  | Action.Write _ when is_sender -> Error "sender attempted to write the output tape"
  | Action.Write _ -> Ok ()
  | Action.Send m ->
      if m < 0 || m >= alphabet then
        Error
          (Printf.sprintf "message symbol %d outside declared alphabet of size %d" m alphabet)
      else Ok ()

let validate_perturb t ~input =
  match t.perturb with
  | None -> Ok ()
  | Some pe ->
      let check ~is_sender ~alphabet who cs =
        if cs = [] then Error (Printf.sprintf "%s corrupted-start enumeration is empty" who)
        else
          let labels = List.map (fun c -> c.label) cs in
          if List.length (List.sort_uniq compare labels) <> List.length labels then
            Error (Printf.sprintf "%s corrupted-start labels are not distinct" who)
          else
            List.fold_left
              (fun acc c ->
                match acc with
                | Error _ -> acc
                | Ok () ->
                    let _, actions = Proc.step c.proc Event.Wake in
                    List.fold_left
                      (fun acc a ->
                        match acc with
                        | Error _ -> acc
                        | Ok () -> (
                            match validate_action ~is_sender ~alphabet a with
                            | Ok () -> Ok ()
                            | Error e ->
                                Error (Printf.sprintf "%s state %S: %s" who c.label e)))
                      acc actions)
              (Ok ()) cs
      in
      Result.bind
        (check ~is_sender:true ~alphabet:t.sender_alphabet "sender" (pe.sender_states ~input))
        (fun () ->
          check ~is_sender:false ~alphabet:t.receiver_alphabet "receiver" (pe.receiver_states ()))

type t = {
  name : string;
  sender_alphabet : int;
  receiver_alphabet : int;
  channel : Channel.Chan.kind;
  make_sender : input:int array -> Proc.t;
  make_receiver : unit -> Proc.t;
  symmetry : Symm.equivariance option;
}

let validate_action ~is_sender ~alphabet action =
  match action with
  | Action.Write _ when is_sender -> Error "sender attempted to write the output tape"
  | Action.Write _ -> Ok ()
  | Action.Send m ->
      if m < 0 || m >= alphabet then
        Error
          (Printf.sprintf "message symbol %d outside declared alphabet of size %d" m alphabet)
      else Ok ()

type config = {
  channel : Channel.Chan.kind;
  domain : int;
  max_len : int;
  header_space : int;
  drop_budget : int;
  window : int;
}

let default =
  {
    channel = Channel.Chan.Reorder_dup;
    domain = 2;
    max_len = 3;
    header_space = 2;
    drop_budget = 1;
    window = 2;
  }

type protocol_entry = {
  p_name : string;
  p_doc : string;
  p_build : config -> (Protocol.t, string) result;
}

(* Registration order is meaningful (it drives CLI listings), so keep
   a list rather than a hash table; both tables stay tiny. *)
let protocol_table : protocol_entry list ref = ref []

let register_protocol ~name ~doc build =
  if List.exists (fun e -> e.p_name = name) !protocol_table then
    invalid_arg (Printf.sprintf "Registry.register_protocol: duplicate %S" name);
  protocol_table := !protocol_table @ [ { p_name = name; p_doc = doc; p_build = build } ]

let protocol_names () = List.map (fun e -> e.p_name) !protocol_table

let find_protocol name = List.find_opt (fun e -> e.p_name = name) !protocol_table

let build_protocol ~name config =
  match find_protocol name with
  | Some e -> e.p_build config
  | None -> Error (Printf.sprintf "unknown protocol %S" name)

let channel_forms () = [ "perfect"; "fifo-lossy"; "dup"; "del"; "lag:K" ]

type experiment_entry = {
  e_id : string;
  e_doc : string;
  e_quick : unit -> Stdx.Report.t;
  e_full : unit -> Stdx.Report.t;
}

let experiment_table : experiment_entry list ref = ref []

let register_experiment ~id ~doc ~quick ~full =
  if List.exists (fun e -> e.e_id = id) !experiment_table then
    invalid_arg (Printf.sprintf "Registry.register_experiment: duplicate %S" id);
  experiment_table :=
    !experiment_table @ [ { e_id = id; e_doc = doc; e_quick = quick; e_full = full } ]

(* Registration order follows library link order (core's experiments
   initialise before the fault layer's), so the listing sorts E<n> ids
   numerically to keep the E1..En story in reading order regardless of
   which library contributed which entry. *)
let experiment_order e =
  if String.length e.e_id > 1 && e.e_id.[0] = 'E' then
    match int_of_string_opt (String.sub e.e_id 1 (String.length e.e_id - 1)) with
    | Some n -> (n, e.e_id)
    | None -> (max_int, e.e_id)
  else (max_int, e.e_id)

let experiments () =
  List.sort (fun a b -> compare (experiment_order a) (experiment_order b)) !experiment_table

let experiment_ids () = List.map (fun e -> e.e_id) (experiments ())

let find_experiment id =
  let id = String.lowercase_ascii id in
  List.find_opt (fun e -> String.lowercase_ascii e.e_id = id) !experiment_table

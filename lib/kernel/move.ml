type t =
  | Wake_sender
  | Wake_receiver
  | Deliver_to_receiver of int
  | Deliver_to_sender of int
  | Drop_to_receiver of int
  | Drop_to_sender of int
  | Restart_sender
  | Restart_receiver
  | Corrupt_sender of int
  | Corrupt_receiver of int

let is_receiver_visible = function
  | Wake_receiver | Deliver_to_receiver _ | Restart_receiver | Corrupt_receiver _ -> true
  | Wake_sender | Deliver_to_sender _ | Drop_to_receiver _ | Drop_to_sender _ | Restart_sender
  | Corrupt_sender _ ->
      false

let pp ppf = function
  | Wake_sender -> Format.pp_print_string ppf "wake S"
  | Wake_receiver -> Format.pp_print_string ppf "wake R"
  | Deliver_to_receiver m -> Format.fprintf ppf "deliver %d to R" m
  | Deliver_to_sender m -> Format.fprintf ppf "deliver %d to S" m
  | Drop_to_receiver m -> Format.fprintf ppf "drop %d (to R)" m
  | Drop_to_sender m -> Format.fprintf ppf "drop %d (to S)" m
  | Restart_sender -> Format.pp_print_string ppf "restart S"
  | Restart_receiver -> Format.pp_print_string ppf "restart R"
  | Corrupt_sender i -> Format.fprintf ppf "corrupt S #%d" i
  | Corrupt_receiver i -> Format.fprintf ppf "corrupt R #%d" i

let equal a b =
  match (a, b) with
  | Wake_sender, Wake_sender
  | Wake_receiver, Wake_receiver
  | Restart_sender, Restart_sender
  | Restart_receiver, Restart_receiver ->
      true
  | Deliver_to_receiver m, Deliver_to_receiver n
  | Deliver_to_sender m, Deliver_to_sender n
  | Drop_to_receiver m, Drop_to_receiver n
  | Drop_to_sender m, Drop_to_sender n
  | Corrupt_sender m, Corrupt_sender n
  | Corrupt_receiver m, Corrupt_receiver n ->
      m = n
  | ( ( Wake_sender | Wake_receiver | Deliver_to_receiver _ | Deliver_to_sender _
      | Drop_to_receiver _ | Drop_to_sender _ | Restart_sender | Restart_receiver
      | Corrupt_sender _ | Corrupt_receiver _ ),
      _ ) ->
      false

let to_string t = Format.asprintf "%a" pp t

type t =
  | Wake_sender
  | Wake_receiver
  | Deliver_to_receiver of int
  | Deliver_to_sender of int
  | Drop_to_receiver of int
  | Drop_to_sender of int
  | Restart_sender
  | Restart_receiver

let is_receiver_visible = function
  | Wake_receiver | Deliver_to_receiver _ | Restart_receiver -> true
  | Wake_sender | Deliver_to_sender _ | Drop_to_receiver _ | Drop_to_sender _ | Restart_sender ->
      false

let pp ppf = function
  | Wake_sender -> Format.pp_print_string ppf "wake S"
  | Wake_receiver -> Format.pp_print_string ppf "wake R"
  | Deliver_to_receiver m -> Format.fprintf ppf "deliver %d to R" m
  | Deliver_to_sender m -> Format.fprintf ppf "deliver %d to S" m
  | Drop_to_receiver m -> Format.fprintf ppf "drop %d (to R)" m
  | Drop_to_sender m -> Format.fprintf ppf "drop %d (to S)" m
  | Restart_sender -> Format.pp_print_string ppf "restart S"
  | Restart_receiver -> Format.pp_print_string ppf "restart R"

let equal a b =
  match (a, b) with
  | Wake_sender, Wake_sender
  | Wake_receiver, Wake_receiver
  | Restart_sender, Restart_sender
  | Restart_receiver, Restart_receiver ->
      true
  | Deliver_to_receiver m, Deliver_to_receiver n
  | Deliver_to_sender m, Deliver_to_sender n
  | Drop_to_receiver m, Drop_to_receiver n
  | Drop_to_sender m, Drop_to_sender n ->
      m = n
  | ( ( Wake_sender | Wake_receiver | Deliver_to_receiver _ | Deliver_to_sender _
      | Drop_to_receiver _ | Drop_to_sender _ | Restart_sender | Restart_receiver ),
      _ ) ->
      false

let to_string t = Format.asprintf "%a" pp t

(** Complete local histories (the complete-history interpretation, §2.3).

    The kernel — not the protocol — records everything a process has
    observed and done.  Two points of two runs are indistinguishable to
    a process, [(r,t) ~_p (r',t')], exactly when the process's recorded
    histories are equal.  Recording at the kernel level guarantees the
    complete-history interpretation regardless of how forgetful a
    protocol's own state is, which is what the paper's impossibility
    arguments assume ("we are losing no generality in doing so"). *)

type entry =
  | Woke  (** the scheduler gave the process a local step *)
  | Got of int  (** a message was delivered to the process *)
  | Sent of int  (** the process sent a message *)
  | Wrote of int  (** the process wrote a data item (receiver only) *)

type t
(** A history; grows by appending entries.  Persistent. *)

val empty : t

val length : t -> int

val add : t -> entry -> t

val add_event : t -> Event.t -> t
(** Records [Wake] as [Woke] and [Deliver m] as [Got m]. *)

val add_action : t -> Action.t -> t
(** Records [Send m] as [Sent m] and [Write d] as [Wrote d]. *)

val to_list : t -> entry list
(** Oldest first. *)

val prefix : t -> int -> t
(** [prefix t n] is the history truncated to its first [n] entries.
    @raise Invalid_argument if [n] exceeds [length t]. *)

val encode : t -> string
(** Canonical encoding; equal strings iff equal histories.  Views are
    compared and hashed through this, millions of times per
    experiment, so the encoding is computed incrementally as entries
    are appended. *)

val emit : Stdx.Codec.t -> t -> unit
(** Append the canonical binary form (length header, then tagged
    varint entries, oldest first) — the view-distinguishing component
    of {!Global.encode_with_r_view}. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

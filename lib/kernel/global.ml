module Chan = Channel.Chan

type t = {
  input : int array;
  sender : Proc.t;
  receiver : Proc.t;
  s_hist : Hist.t;
  r_hist : Hist.t;
  chan_sr : Chan.t;
  chan_rs : Chan.t;
  output_rev : int list;
  output_len : int;
  output_ok : bool;
  time : int;
}

let initial ?sender ?receiver (p : Protocol.t) ~input =
  {
    input;
    sender = (match sender with Some s -> s | None -> p.Protocol.make_sender ~input);
    receiver = (match receiver with Some r -> r | None -> p.Protocol.make_receiver ());
    s_hist = Hist.empty;
    r_hist = Hist.empty;
    chan_sr = Chan.create p.Protocol.channel;
    chan_rs = Chan.create p.Protocol.channel;
    output_rev = [];
    output_len = 0;
    output_ok = true;
    time = 0;
  }

let output t = List.rev t.output_rev

let output_length t = t.output_len

(* [output_len] and [output_ok] are maintained incrementally by the
   simulator on every Write, so the per-step safety check is O(1)
   instead of rescanning the output tape. *)
let safety_ok t = t.output_ok

let write t d =
  {
    t with
    output_rev = d :: t.output_rev;
    output_len = t.output_len + 1;
    output_ok = t.output_ok && t.output_len < Array.length t.input && t.input.(t.output_len) = d;
  }

let complete t = output_length t = Array.length t.input

(* The hot fingerprint path: every component append is a memo blit
   (Proc/Chan serialise each distinct value once), so emitting an
   already-encoded state into the engine's reusable codec allocates
   nothing. *)
let emit c t =
  Proc.emit c t.sender;
  Proc.emit c t.receiver;
  Chan.emit c t.chan_sr;
  Chan.emit c t.chan_rs;
  Stdx.Codec.add_varint c (output_length t)

let encode t =
  let c = Stdx.Codec.create ~size:128 () in
  emit c t;
  Stdx.Codec.contents c

let emit_with_r_view c t =
  emit c t;
  Hist.emit c t.r_hist

(* Everything a state-space engine's *decisions* can read: the
   fingerprint plus the channel counters (send caps, debt) and the
   safety bit.  Histories and the clock are excluded — they are
   write-only accumulators that never feed back into process or
   channel evolution — so equal keys certify that stepping either
   state produces successors that are again equal under this key and
   indistinguishable to every search. *)
let emit_run_key c t =
  Proc.emit c t.sender;
  Proc.emit c t.receiver;
  Chan.emit_run_key c t.chan_sr;
  Chan.emit_run_key c t.chan_rs;
  Stdx.Codec.add_varint c (output_length t);
  Stdx.Codec.add_byte c (if t.output_ok then 1 else 0)

let encode_with_r_view t =
  let c = Stdx.Codec.create ~size:160 () in
  emit_with_r_view c t;
  Stdx.Codec.contents c

module Chan = Channel.Chan

type t = {
  input : int array;
  sender : Proc.t;
  receiver : Proc.t;
  s_hist : Hist.t;
  r_hist : Hist.t;
  chan_sr : Chan.t;
  chan_rs : Chan.t;
  output_rev : int list;
  output_len : int;
  output_ok : bool;
  time : int;
}

let initial (p : Protocol.t) ~input =
  {
    input;
    sender = p.Protocol.make_sender ~input;
    receiver = p.Protocol.make_receiver ();
    s_hist = Hist.empty;
    r_hist = Hist.empty;
    chan_sr = Chan.create p.Protocol.channel;
    chan_rs = Chan.create p.Protocol.channel;
    output_rev = [];
    output_len = 0;
    output_ok = true;
    time = 0;
  }

let output t = List.rev t.output_rev

let output_length t = t.output_len

(* [output_len] and [output_ok] are maintained incrementally by the
   simulator on every Write, so the per-step safety check is O(1)
   instead of rescanning the output tape. *)
let safety_ok t = t.output_ok

let write t d =
  {
    t with
    output_rev = d :: t.output_rev;
    output_len = t.output_len + 1;
    output_ok = t.output_ok && t.output_len < Array.length t.input && t.input.(t.output_len) = d;
  }

let complete t = output_length t = Array.length t.input

let encode t =
  String.concat "|"
    [
      Proc.encode t.sender;
      Proc.encode t.receiver;
      Chan.encode t.chan_sr;
      Chan.encode t.chan_rs;
      string_of_int (output_length t);
    ]

let encode_with_r_view t = encode t ^ "|" ^ Hist.encode t.r_hist

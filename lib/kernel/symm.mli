(** Alphabet-symmetry quotients for the state-space engines.

    Relabelling the data alphabet by a permutation [π] commutes with
    every channel semantics (channels move message values without
    inspecting them) and — for protocols that treat data generically,
    comparing symbols only for equality — with both process step
    functions.  For such {e equivariant} protocols the entire
    transition system on input [X] is the [π]-image of the system on
    [π⁻¹(X)]: same shape, same state counts, same witnesses up to
    relabelling.  The engines therefore never need to explore two
    inputs (or input pairs) in the same orbit; it suffices to search
    the orbit's canonical representative and translate any witness
    back through [π⁻¹].

    The canonical representative is computed by {e first-occurrence
    relabelling}: scanning the input (for pair sweeps: both inputs,
    first one then the other), the first distinct symbol becomes [0],
    the second [1], and so on.  The map is idempotent and constant on
    orbits, which makes it a sound orbit key — the properties the
    qcheck laws pin.

    Per-state canonical fingerprint emission is {e deliberately not}
    offered: a global state embeds marshalled process states, and a
    generic engine cannot relabel data buried inside an opaque blob.
    Canonicalising the input before the run starts achieves exactly
    the same quotient for equivariant protocols — every reachable
    state of the original run is the [π]-image of a reachable state of
    the canonical run — and is sound by construction.  See DESIGN.md
    ("The symmetry quotient"). *)

type perm = int array
(** A permutation of the data alphabet [\[0, m)]: [p.(i)] is the image
    of symbol [i]. *)

(** How a data-symbol permutation lifts to this protocol's wire
    messages.  Declaring a value of this type (in
    {!Protocol.t.symmetry}) asserts that the protocol's step functions
    commute with every alphabet permutation when messages are mapped
    through these lifts — the contract the symmetry quotient relies
    on.  Protocols whose behaviour depends on symbol identities (coded
    protocols, anything comparing symbols for order) must declare
    [None] instead. *)
type equivariance = {
  on_sender_msg : (int -> int) -> int -> int;
      (** Lift a symbol permutation to sender-alphabet messages. *)
  on_receiver_msg : (int -> int) -> int -> int;
      (** Lift to receiver-alphabet messages. *)
}

val data_messages : equivariance
(** The common case: messages {e are} data symbols on both channels
    (the norep and counting families). *)

val identity : int -> perm

val apply : perm -> int -> int
(** [apply p i] = [p.(i)]; ints outside the permutation's domain pass
    through unchanged (lifts may be handed header values legitimately
    outside the data alphabet). *)

val invert : perm -> perm

val apply_seq : perm -> int list -> int list

val is_perm : perm -> bool
(** Whether the array is a permutation of [\[0, length)]. *)

(** Streaming first-occurrence relabeller — the canonicalisation
    kernel, exposed for the micro-benchmarks and tests. *)
module Relabel : sig
  type t

  val create : unit -> t

  val map : t -> int -> int
  (** Canonical label of [v]: a fresh next label on first sight, the
      remembered one afterwards. *)

  val assigned : t -> int
  (** Distinct symbols seen so far. *)
end

val canon_seqs : m:int -> int list list -> int list list * perm
(** Jointly canonicalise a list of sequences over the alphabet
    [\[0, m)] by first-occurrence order (scanning the sequences in
    list order), returning the relabelled sequences and the full
    permutation [π] (original symbol → canonical label; unseen symbols
    take the remaining labels in ascending order).  Idempotent, and
    invariant under pre-permutation of the alphabet — the orbit-key
    property.
    @raise Invalid_argument if a symbol falls outside [\[0, m)]. *)

val canon_seq : m:int -> int list -> int list * perm

val canon_pair : m:int -> int list -> int list -> (int list * int list) * perm
(** The pair-sweep orbit key: [canon_pair ~m x1 x2] scans [x1] then
    [x2].  Two pairs have equal canonical images exactly when some
    alphabet permutation maps one pair (componentwise) onto the
    other. *)

val relabel_move : equivariance -> (int -> int) -> Move.t -> Move.t
(** Map the message value carried by a move through the protocol's
    lift of [pi] — how a canonical witness path is translated back to
    the original input pair. *)

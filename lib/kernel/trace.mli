(** Finite runs (prefixes of the infinite runs of §2.2).

    A trace records everything the knowledge layer and the verdict
    checkers need about one execution: the input tape, the move
    sequence, per-time history lengths (so the local view at any point
    [(r,t)] can be reconstructed), output growth, and the final global
    state.  Traces are immutable once finished. *)

type t

(** {1 Construction} *)

type builder

val start : ?sender:Proc.t -> ?receiver:Proc.t -> Protocol.t -> input:int array -> builder
(** A builder positioned at the initial global state; the optional
    process overrides are the corrupted-start seam of
    {!Global.initial}. *)

val current : builder -> Global.t

val record : builder -> Move.t -> Global.t -> unit
(** [record b move g'] appends one transition.  [g'] must be the
    result of [Sim.apply _ (current b) move]. *)

val finish : builder -> t

(** {1 Accessors} *)

val protocol_name : t -> string
val input : t -> int array
val length : t -> int
(** Number of moves (so there are [length + 1] points, [0..length]). *)

val moves : t -> Move.t array
val final : t -> Global.t

val r_view : t -> int -> Hist.t
(** [r_view t time] is the receiver's complete local history at point
    [(t, time)], [0 <= time <= length t]. *)

val s_view : t -> int -> Hist.t

val output_at : t -> int -> int list
(** The output tape at a point. *)

val output_length_at : t -> int -> int

val completed_at : t -> int option
(** First time at which the whole input had been written, if any. *)

val first_safety_violation : t -> int option
(** First time at which the output stopped being a prefix of the
    input, if ever (a correct protocol never has one). *)

val messages_sent : t -> int
(** Total sends on both channels over the run. *)

val pp_summary : Format.formatter -> t -> unit

module Chan = Channel.Chan

exception Model_violation of string

let enabled (_p : Protocol.t) (g : Global.t) =
  let deliveries_r = List.map (fun m -> Move.Deliver_to_receiver m) (Chan.deliverable g.chan_sr) in
  let deliveries_s = List.map (fun m -> Move.Deliver_to_sender m) (Chan.deliverable g.chan_rs) in
  let drops_r = List.map (fun m -> Move.Drop_to_receiver m) (Chan.droppable g.chan_sr) in
  let drops_s = List.map (fun m -> Move.Drop_to_sender m) (Chan.droppable g.chan_rs) in
  (Move.Wake_sender :: Move.Wake_receiver :: deliveries_r)
  @ deliveries_s @ drops_r @ drops_s

let check_action ~is_sender ~alphabet action =
  match Protocol.validate_action ~is_sender ~alphabet action with
  | Ok () -> ()
  | Error msg -> raise (Model_violation msg)

(* Step the sender with [event]; route its actions. *)
let step_sender (p : Protocol.t) (g : Global.t) event =
  let sender, actions = Proc.step g.sender event in
  let g = { g with sender; s_hist = Hist.add_event g.s_hist event } in
  List.fold_left
    (fun (g : Global.t) action ->
      check_action ~is_sender:true ~alphabet:p.Protocol.sender_alphabet action;
      match action with
      | Action.Send m ->
          { g with chan_sr = Chan.send g.chan_sr m; s_hist = Hist.add_action g.s_hist action }
      | Action.Write _ -> assert false)
    g actions

let step_receiver (p : Protocol.t) (g : Global.t) event =
  let receiver, actions = Proc.step g.receiver event in
  let g = { g with receiver; r_hist = Hist.add_event g.r_hist event } in
  List.fold_left
    (fun (g : Global.t) action ->
      check_action ~is_sender:false ~alphabet:p.Protocol.receiver_alphabet action;
      match action with
      | Action.Send m ->
          { g with chan_rs = Chan.send g.chan_rs m; r_hist = Hist.add_action g.r_hist action }
      | Action.Write d -> { (Global.write g d) with r_hist = Hist.add_action g.r_hist action })
    g actions

let apply (p : Protocol.t) (g : Global.t) move =
  let g' =
    match move with
    | Move.Wake_sender -> step_sender p g Event.Wake
    | Move.Wake_receiver -> step_receiver p g Event.Wake
    | Move.Deliver_to_receiver m -> (
        match Chan.deliver g.chan_sr m with
        | None -> raise (Model_violation (Printf.sprintf "message %d not deliverable to R" m))
        | Some chan_sr -> step_receiver p { g with chan_sr } (Event.Deliver m))
    | Move.Deliver_to_sender m -> (
        match Chan.deliver g.chan_rs m with
        | None -> raise (Model_violation (Printf.sprintf "message %d not deliverable to S" m))
        | Some chan_rs -> step_sender p { g with chan_rs } (Event.Deliver m))
    | Move.Drop_to_receiver m -> (
        match Chan.drop g.chan_sr m with
        | None -> raise (Model_violation (Printf.sprintf "message %d not droppable (to R)" m))
        | Some chan_sr -> { g with chan_sr })
    | Move.Drop_to_sender m -> (
        match Chan.drop g.chan_rs m with
        | None -> raise (Model_violation (Printf.sprintf "message %d not droppable (to S)" m))
        | Some chan_rs -> { g with chan_rs })
    (* Crash-restart faults: the process loses its local state and
       comes back up in its initial state; the channels keep every
       in-flight copy and the kernel histories (the observer's record,
       not the process's memory) are untouched.  These moves are never
       listed by [enabled] — only a fault injector plays them. *)
    | Move.Restart_sender -> { g with sender = p.Protocol.make_sender ~input:g.input }
    | Move.Restart_receiver -> { g with receiver = p.Protocol.make_receiver () }
    (* State corruption: replace the process's local state with entry
       [i] of the protocol's declared corrupted-start enumeration.
       Like the restarts, channels and histories are untouched and the
       move is never listed by [enabled].  A protocol without a
       [perturb] seam — or an index outside the enumeration — is a
       model violation, not a silent no-op: a fault plan that names a
       corruption the protocol cannot express must fail loudly. *)
    | Move.Corrupt_sender i -> (
        match p.Protocol.perturb with
        | None ->
            raise (Model_violation "corrupt S: protocol declares no corrupted-start space")
        | Some pe -> (
            let cs = pe.Protocol.sender_states ~input:g.input in
            match List.nth_opt cs i with
            | None ->
                raise
                  (Model_violation
                     (Printf.sprintf "corrupt S: index %d outside enumeration of %d" i
                        (List.length cs)))
            | Some c -> { g with sender = c.Protocol.proc }))
    | Move.Corrupt_receiver i -> (
        match p.Protocol.perturb with
        | None ->
            raise (Model_violation "corrupt R: protocol declares no corrupted-start space")
        | Some pe -> (
            (* The written-count convention: the receiver's mirror of
               the output tape is environment-anchored, so a mid-run
               corruption is drawn from the enumeration at the live
               tape length — the fault scrambles phase flags and
               buffers around a mirror it cannot touch. *)
            let cs = pe.Protocol.receiver_states ~written:(Global.output_length g) in
            match List.nth_opt cs i with
            | None ->
                raise
                  (Model_violation
                     (Printf.sprintf "corrupt R: index %d outside enumeration of %d" i
                        (List.length cs)))
            | Some c -> { g with receiver = c.Protocol.proc }))
  in
  { g' with time = g.time + 1 }

let wake_only_complete (p : Protocol.t) (g : Global.t) =
  match enabled p g with
  | [ Move.Wake_sender; Move.Wake_receiver ] ->
      (* Quiescent iff waking either process is a no-op. *)
      let after_s = apply p g Move.Wake_sender in
      let after_r = apply p g Move.Wake_receiver in
      (* [Proc.step] returns the parent process value unchanged on a
         self-loop, so a quiescent wake leaves the process physically
         equal — the common case, checked without serialising
         anything.  Only a state that actually moved falls back to
         comparing the (memoised) encodings. *)
      let same_proc (a : Proc.t) (b : Proc.t) =
        a == b || String.equal (Proc.encode a) (Proc.encode b)
      in
      let silent (before : Global.t) (after : Global.t) =
        Chan.sent_total after.chan_sr = Chan.sent_total before.chan_sr
        && Chan.sent_total after.chan_rs = Chan.sent_total before.chan_rs
        && Global.output_length after = Global.output_length before
        && same_proc after.sender before.sender
        && same_proc after.receiver before.receiver
      in
      silent g after_s && silent g after_r
  | _ -> false

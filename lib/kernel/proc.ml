type t =
  | Proc : {
      state : 's;
      step : 's -> Event.t -> 's * Action.t list;
      encode : 's -> string;
      mutable enc : string option;
          (* Memoised [encode state].  Process values are physically
             shared across the many global states the explorers branch
             over, so each distinct process state is serialised once
             instead of once per state-table probe.  Benign under
             parallel sweeps: concurrent writers store the same
             value. *)
    }
      -> t

let default_encode s = Marshal.to_string s []

let make ?(encode = default_encode) ~state ~step () = Proc { state; step; encode; enc = None }

let step (Proc p as t) event =
  let state, actions = p.step p.state event in
  (* A self-loop step keeps the same process value (and its memoised
     encoding) instead of allocating an identical copy. *)
  ((if state == p.state then t else Proc { p with state; enc = None }), actions)

let encode (Proc p) =
  match p.enc with
  | Some s -> s
  | None ->
      let s = p.encode p.state in
      p.enc <- Some s;
      s

let emit c t = Stdx.Codec.add_blob c (encode t)

type stop_reason = Sched.stop_reason = Completed | Quiescent | Budget | Strategy_end

type result = Sched.result = { trace : Trace.t; stop : stop_reason; steps : int }

(* A run is a one-session scheduler batch: the per-session stepping in
   [Sched.step] is the historical run loop verbatim, so these wrappers
   produce byte-identical traces (pinned by the deterministic-
   interleaving tests and the engine baselines). *)

let run p ~input ~strategy ~rng ~max_steps ?max_seconds ?(post_roll = 0) () =
  match
    Sched.run [ Sched.session p ~input ~strategy ~rng ~max_steps ?max_seconds ~post_roll () ]
  with
  | [ r ] -> r
  | _ -> assert false

let run_seeds p ~input ~strategy ~seeds ~max_steps ?max_seconds ?(post_roll = 0) () =
  List.map
    (fun seed ->
      run p ~input ~strategy ~rng:(Stdx.Rng.create seed) ~max_steps ?max_seconds ~post_roll ())
    seeds

let pp_stop = Sched.pp_stop

type stop_reason = Completed | Quiescent | Budget | Strategy_end

type result = { trace : Trace.t; stop : stop_reason; steps : int }

let run p ~input ~strategy ~rng ~max_steps ?max_seconds ?(post_roll = 0) () =
  let builder = Trace.start p ~input in
  (* The wall-clock guard is checked every 256 steps so the hot loop
     stays syscall-free; [Sys.time] is CPU time, which is what a
     budgeted soak battery wants to bound. *)
  let deadline = Option.map (fun s -> Sys.time () +. s) max_seconds in
  let over_deadline steps =
    match deadline with
    | Some d -> steps land 255 = 0 && Sys.time () > d
    | None -> false
  in
  let rec loop steps roll_left =
    if steps >= max_steps || over_deadline steps then Budget
    else begin
      let g = Trace.current builder in
      if Global.complete g && roll_left <= 0 then Completed
      else begin
        let enabled = Sim.enabled p g in
        if (not (Global.complete g)) && List.length enabled = 2 && Sim.wake_only_complete p g
        then Quiescent
        else match strategy.Strategy.choose rng p g enabled with
        | None -> Strategy_end
        | Some move ->
            let g' = Sim.apply p g move in
            Trace.record builder move g';
            let roll_left' =
              if Global.complete g' then (if Global.complete g then roll_left - 1 else post_roll)
              else roll_left
            in
            loop (steps + 1) roll_left'
      end
    end
  in
  let stop = loop 0 (if Global.complete (Trace.current builder) then post_roll else -1) in
  let trace = Trace.finish builder in
  { trace; stop; steps = Trace.length trace }

let run_seeds p ~input ~strategy ~seeds ~max_steps ?(post_roll = 0) () =
  List.map
    (fun seed ->
      run p ~input ~strategy ~rng:(Stdx.Rng.create seed) ~max_steps ~post_roll ())
    seeds

let pp_stop ppf = function
  | Completed -> Format.pp_print_string ppf "completed"
  | Quiescent -> Format.pp_print_string ppf "quiescent"
  | Budget -> Format.pp_print_string ppf "budget-exhausted"
  | Strategy_end -> Format.pp_print_string ppf "strategy-ended"

(** Run driver: one protocol, one input, one strategy, one trace.

    Since the scheduler refactor this is a thin single-session wrapper
    over {!Sched}: [run] admits exactly one session and drains the
    queue, so its traces are byte-identical to the historical
    monolithic loop, and batch engines that want many concurrent runs
    use {!Sched} (or [Core.Batch]) directly. *)

type stop_reason = Sched.stop_reason =
  | Completed  (** the whole input was written and the post-roll ran out *)
  | Quiescent  (** nothing can ever change again (see {!Sim.wake_only_complete}) *)
  | Budget  (** the step budget was exhausted before completion *)
  | Strategy_end  (** the strategy returned [None] *)

type result = Sched.result = {
  trace : Trace.t;
  stop : stop_reason;
  steps : int;
}

val run :
  Protocol.t ->
  input:int array ->
  strategy:Strategy.t ->
  rng:Stdx.Rng.t ->
  max_steps:int ->
  ?max_seconds:float ->
  ?post_roll:int ->
  unit ->
  result
(** Drives the system until the output is complete (then for
    [post_roll] extra moves, default 0 — knowledge measurements want a
    tail), quiescence, step budget, or strategy surrender.  Every
    transition is recorded in the trace.  [max_seconds] adds a
    CPU-time guard on top of the step budget (checked every 256
    steps); exceeding either reports [Budget]. *)

val run_seeds :
  Protocol.t ->
  input:int array ->
  strategy:Strategy.t ->
  seeds:int list ->
  max_steps:int ->
  ?max_seconds:float ->
  ?post_roll:int ->
  unit ->
  result list
(** One run per seed.  [max_seconds] bounds {e each} run's CPU time,
    exactly as on {!run} — a battery of [n] seeds may therefore use up
    to [n * max_seconds] in total. *)

val pp_stop : Format.formatter -> stop_reason -> unit

(** The transition relation of the global system.

    [enabled] lists the moves available to the environment in a global
    state; [apply] performs one, stepping the relevant process,
    routing its actions through the channels, and appending to the
    kernel-recorded complete histories.

    Invariants enforced here (violations raise [Model_violation]):
    senders never write; all message symbols stay within the declared
    alphabets; deliveries only happen for deliverable messages.  These
    are exactly the modelling assumptions under which the paper's
    bounds apply. *)

exception Model_violation of string

val enabled : Protocol.t -> Global.t -> Move.t list
(** All moves the environment may take, deterministic order: wakes
    first, then deliveries (ascending message), then drops.  Wake
    moves are always enabled (Property 1(b)i: there is always an
    extension in which no message is delivered).  Restart moves are
    {e not} listed: they model injected faults, outside the
    environment protocol the bounds quantify over, and are only played
    by the fault layer via {!apply}. *)

val apply : Protocol.t -> Global.t -> Move.t -> Global.t
(** Perform one move.
    @raise Model_violation on a protocol or scheduling fault. *)

val wake_only_complete : Protocol.t -> Global.t -> bool
(** True when only wake moves are enabled and neither process sends or
    writes on wake — the system has reached a quiescent configuration
    from which no adversary choice changes anything.  Used by run
    drivers to stop early. *)

type t = {
  protocol_name : string;
  input : int array;
  moves : Move.t array;
  r_hist_final : Hist.t;
  s_hist_final : Hist.t;
  r_view_len : int array; (* per point, length = moves + 1 *)
  s_view_len : int array;
  out_len : int array;
  outputs : int array; (* final output tape *)
  final : Global.t;
  completed_at : int option;
  first_safety_violation : int option;
}

type builder = {
  name : string;
  b_input : int array;
  mutable rev_moves : Move.t list;
  mutable rev_r_len : int list; (* per point *)
  mutable rev_s_len : int list;
  mutable rev_out_len : int list;
  mutable state : Global.t;
  mutable completed : int option;
  mutable violated : int option;
  mutable steps : int;
}

let start ?sender ?receiver (p : Protocol.t) ~input =
  let g0 = Global.initial ?sender ?receiver p ~input in
  {
    name = p.Protocol.name;
    b_input = input;
    rev_moves = [];
    rev_r_len = [ 0 ];
    rev_s_len = [ 0 ];
    rev_out_len = [ 0 ];
    state = g0;
    completed = (if Global.complete g0 then Some 0 else None);
    violated = None;
    steps = 0;
  }

let current b = b.state

let record b move (g' : Global.t) =
  b.rev_moves <- move :: b.rev_moves;
  b.rev_r_len <- Hist.length g'.Global.r_hist :: b.rev_r_len;
  b.rev_s_len <- Hist.length g'.Global.s_hist :: b.rev_s_len;
  b.rev_out_len <- Global.output_length g' :: b.rev_out_len;
  b.state <- g';
  b.steps <- b.steps + 1;
  (match b.completed with
  | None when Global.complete g' -> b.completed <- Some b.steps
  | _ -> ());
  match b.violated with
  | None when not (Global.safety_ok g') -> b.violated <- Some b.steps
  | _ -> ()

let finish b =
  {
    protocol_name = b.name;
    input = b.b_input;
    moves = Array.of_list (List.rev b.rev_moves);
    r_hist_final = b.state.Global.r_hist;
    s_hist_final = b.state.Global.s_hist;
    r_view_len = Array.of_list (List.rev b.rev_r_len);
    s_view_len = Array.of_list (List.rev b.rev_s_len);
    out_len = Array.of_list (List.rev b.rev_out_len);
    outputs = Array.of_list (Global.output b.state);
    final = b.state;
    completed_at = b.completed;
    first_safety_violation = b.violated;
  }

let protocol_name t = t.protocol_name
let input t = t.input
let length t = Array.length t.moves
let moves t = t.moves
let final t = t.final

let r_view t time = Hist.prefix t.r_hist_final t.r_view_len.(time)
let s_view t time = Hist.prefix t.s_hist_final t.s_view_len.(time)

let output_length_at t time = t.out_len.(time)

let output_at t time = Array.to_list (Array.sub t.outputs 0 t.out_len.(time))

let completed_at t = t.completed_at
let first_safety_violation t = t.first_safety_violation

let messages_sent t =
  Channel.Chan.sent_total t.final.Global.chan_sr + Channel.Chan.sent_total t.final.Global.chan_rs

let pp_summary ppf t =
  Format.fprintf ppf "%s: |X|=%d steps=%d msgs=%d %s%s" t.protocol_name
    (Array.length t.input) (length t) (messages_sent t)
    (match t.completed_at with
    | Some n -> Printf.sprintf "completed@%d" n
    | None -> "incomplete")
    (match t.first_safety_violation with
    | Some n -> Printf.sprintf " SAFETY-VIOLATION@%d" n
    | None -> "")

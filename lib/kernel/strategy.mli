(** Environment strategies (adversaries and fair schedulers).

    A strategy picks the next environment move.  The paper's
    environment is an implicit protocol (§2.2); here it is explicit
    and pluggable, covering both the *fair* schedulers needed to
    exercise liveness and the *adversarial* ones that realise
    worst-case reordering, duplication flooding, and targeted
    deletion. *)

type t = {
  name : string;
  choose : Stdx.Rng.t -> Protocol.t -> Global.t -> Move.t list -> Move.t option;
      (** [choose rng p g enabled] picks among [enabled] (never empty:
          wakes are always enabled).  [None] ends the run early. *)
}

val fair_random : ?deliver_weight:int -> ?wake_weight:int -> ?drop_weight:int -> unit -> t
(** Weighted random choice.  Defaults ([deliver_weight = 4],
    [wake_weight = 2], [drop_weight = 0]) favour progress: deliveries
    are preferred when available and nothing is dropped, so every
    finite prefix keeps extending towards a fair completion
    (Property 2). *)

val round_robin : t
(** Deterministic rotation: wake S, deliver the smallest deliverable
    message to R, wake R, deliver the smallest to S.  A simple fair
    scheduler for reproducible examples. *)

val newest_first : t
(** Prefers delivering the *largest* message symbol available — a
    deterministic reordering adversary (symbols sent later in the §3
    protocol carry larger ranks, so this maximises disorder). *)

val dup_flood : ?burst:int -> unit -> t
(** Reorder+dup adversary: re-delivers already-deliverable messages in
    bursts before letting the system progress — exercises the
    "channel can deliver an unbounded number of copies" behaviour
    driving Theorem 1. *)

val drop_rate : float -> t -> t
(** [drop_rate p inner] deletes a droppable copy with probability [p]
    at each step (when one exists) and otherwise defers to [inner]. *)

val drop_first : int -> t -> t
(** [drop_first n inner] deletes the first [n] droppable copies it
    sees, then behaves as [inner] — the "single fault at a chosen
    moment" adversary of §5 when [n = 1]. *)

val drop_after : at:int -> int -> t -> t
(** [drop_after ~at n inner] behaves as [inner] until global time
    [at], then deletes the next [n] droppable copies, then reverts to
    [inner].  Used by E5 to inject a fault right after [t_i]. *)

val of_string : string -> (t, string) result
(** Resolve a strategy by its CLI spelling: [fair-random],
    [round-robin], [newest-first], [dup-flood], [drop:P] (e.g.
    [drop:0.2] over fair-random), [drop-first:N].  The one parser the
    CLI's [--strategy] flag and the serve daemon's job specs share. *)

val forms : string list
(** The spellings {!of_string} accepts, for help text. *)

val scripted : Move.t list -> t
(** Replays a fixed move list, ending the run when exhausted or when a
    scripted move is not enabled. *)

val starve_receiver : until:int -> t -> t
(** Withholds all deliveries to R before global time [until], then
    defers to the inner strategy — a pure-delay adversary. *)

(** Tick-driven event-queue scheduler: many live sessions per domain.

    Every engine in the repo used to drive exactly one run at a time
    through a monolithic while-loop; the scheduler inverts that.  A
    {e session} is the full specification of one run (protocol ×
    input × strategy × rng × budgets).  The scheduler admits a batch
    of sessions into a FIFO queue of live runs and round-robins over
    it: each {e tick} pops one session, advances it by at most
    [timeslice] {!Sim.apply} steps, and either retires it (on the
    usual stop reasons) or re-enqueues it.  One domain therefore
    timeslices arbitrarily many concurrent runs, which is what a
    million-session battery needs — runs-per-domain stops being the
    unit of concurrency; states-per-second is.

    {b Determinism.}  Sessions are independent by construction: each
    owns its rng and trace builder, strategies are stateless by the
    {!Strategy} contract, and {!Sim.apply} is a pure function of the
    per-run state.  A session's steps therefore depend only on its own
    spec, never on how its slices interleave with other sessions', so
    a batch of [n] sessions produces traces {e byte-identical} to [n]
    sequential {!Runner.run} calls, at every timeslice and in any
    interleaving (the deterministic-interleaving tests pin this at
    several [--jobs] counts).  The one advisory exception is
    [max_seconds]: the CPU-time guard reads the process clock, which
    in a batch also advances while {e other} sessions run, so a
    wall-budgeted session may retire earlier in a crowded batch —
    traces up to that point are still identical.

    The queue policy is deliberately a seam: round-robin is the only
    policy today, but weighted and adversarial-priority schedules slot
    in here (pick the next live session differently) without touching
    the per-session stepping. *)

type stop_reason =
  | Completed  (** the whole input was written and the post-roll ran out *)
  | Quiescent  (** nothing can ever change again (see {!Sim.wake_only_complete}) *)
  | Budget  (** the step budget (or [max_seconds]) was exhausted *)
  | Strategy_end  (** the strategy returned [None] *)

type result = {
  trace : Trace.t;
  stop : stop_reason;
  steps : int;
}

type session
(** One run, fully specified and not yet started. *)

val session :
  Protocol.t ->
  input:int array ->
  strategy:Strategy.t ->
  rng:Stdx.Rng.t ->
  max_steps:int ->
  ?max_seconds:float ->
  ?post_roll:int ->
  ?corrupt_sender:Proc.t ->
  ?corrupt_receiver:Proc.t ->
  unit ->
  session
(** The session owns [rng] from here on: reusing one generator across
    two sessions of a batch makes their streams interleaving-dependent
    and forfeits the determinism guarantee.
    [?corrupt_sender]/[?corrupt_receiver] root the run at corrupted
    local states (the {!Global.initial} overrides) — the step-0
    injection seam stabilisation sweeps use. *)

type stats = {
  sessions : int;  (** sessions admitted *)
  steps : int;  (** total {!Sim.apply} steps across all sessions *)
  ticks : int;  (** queue pops (scheduling quanta) *)
  peak_live : int;  (** maximum queue depth *)
  completed : int;
  quiescent : int;
  budget : int;
  strategy_end : int;  (** stop-reason histogram; the four sum to [sessions] *)
}
(** Batch telemetry, exact and deterministic (no clocks): what a
    long-lived service accumulates across batches. *)

val stats_zero : stats

val stats_merge : stats -> stats -> stats
(** Componentwise sums; [peak_live] is the max (shards run
    concurrently). *)

val default_timeslice : int
(** 128 steps per tick: long enough that queue rotation is noise next
    to the simulation work, short enough that a thousand-session batch
    rotates every few hundred microseconds. *)

val run_stats : ?timeslice:int -> session list -> result list * stats
(** Admit the sessions, drive the queue until empty, and return the
    results in admission order plus the batch telemetry.
    @raise Invalid_argument if [timeslice < 1]. *)

val run : ?timeslice:int -> session list -> result list
(** [run ss = fst (run_stats ss)]. *)

val pp_stop : Format.formatter -> stop_reason -> unit

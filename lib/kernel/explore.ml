module Chan = Channel.Chan

type stats = {
  states : int;
  transitions : int;
  safety_violations : int;
  complete_states : int;
  truncated : bool;
}

let all_moves _g _m = true

let reachable p ~input ~depth ?(move_filter = all_moves) ?max_states ?starts () =
  (* The intern table doubles as the seen-set: a state is new exactly
     when its fingerprint gets a fresh id.  Each generated state is
     emitted into one reusable codec buffer and interned in place —
     no fingerprint string is ever materialised for a repeat state,
     and the BFS never touches the (long) fingerprint again
     afterwards. *)
  let seen = Stdx.Intern.create () in
  let scratch = Stdx.Codec.create ~size:256 () in
  let intern g =
    Stdx.Codec.reset scratch;
    Global.emit scratch g;
    Stdx.Intern.intern_bytes seen (Stdx.Codec.buffer scratch) ~pos:0
      ~len:(Stdx.Codec.length scratch)
  in
  (* The frontier is a flat ring of states.  Depth needs no per-node
     record: a strict BFS drains whole levels in order, so two
     counters — states left in the current level, states queued for
     the next — recover each popped state's depth without boxing a
     [(state, depth)] tuple per node. *)
  let frontier = Stdx.Ring.create () in
  (* Multi-root BFS: corrupted-start sweeps seed the frontier with the
     whole enumerated corruption space at level 0 and measure the union
     of the per-root reachable graphs in one pass (dedup across roots
     is the intern table's job). *)
  let roots =
    match starts with Some gs -> gs | None -> [ Global.initial p ~input ]
  in
  let level = ref 0 in
  let this_level = ref 0 in
  let next_level = ref 0 in
  let transitions = ref 0 in
  let violations = ref 0 in
  let completes = ref 0 in
  let truncated = ref false in
  (* The state budget is a resource guard, not a semantic bound: once
     the seen-set reaches it the BFS stops enqueueing fresh states and
     reports the partial statistics with [truncated] set, so callers
     can attach a truncation note instead of running unbounded. *)
  let over_budget () =
    match max_states with Some m -> Stdx.Intern.length seen >= m | None -> false
  in
  List.iter
    (fun g0 ->
      let _, fresh = intern g0 in
      if fresh then begin
        if not (Global.safety_ok g0) then incr violations;
        if Global.complete g0 then incr completes;
        Stdx.Ring.push frontier g0;
        incr this_level
      end)
    roots;
  while not (Stdx.Ring.is_empty frontier) do
    if !this_level = 0 then begin
      this_level := !next_level;
      next_level := 0;
      incr level
    end;
    let g = Stdx.Ring.pop frontier in
    decr this_level;
    if !level < depth then
      List.iter
        (fun move ->
          if move_filter g move then begin
            incr transitions;
            let g' = Sim.apply p g move in
            if over_budget () then truncated := true
            else begin
              let _, fresh = intern g' in
              if fresh then begin
                if not (Global.safety_ok g') then incr violations;
                if Global.complete g' then incr completes;
                Stdx.Ring.push frontier g';
                incr next_level
              end
            end
          end)
        (Sim.enabled p g)
  done;
  {
    states = Stdx.Intern.length seen;
    transitions = !transitions;
    safety_violations = !violations;
    complete_states = !completes;
    truncated = !truncated;
  }

exception Enough

let iter_runs p ~input ~depth ?(move_filter = all_moves) ?max_runs f =
  let emitted = ref 0 in
  (* Replay the (reversed) move path from the initial state into a
     fresh trace builder and hand the finished run to [f].  Shared by
     the two leaf cases below — depth/quiescence stop and dead end —
     which used to duplicate the rebuild. *)
  let emit_path path =
    let builder = Trace.start p ~input in
    List.iter
      (fun m ->
        let g' = Sim.apply p (Trace.current builder) m in
        Trace.record builder m g')
      (List.rev path);
    f (Trace.finish builder);
    incr emitted;
    match max_runs with Some m when !emitted >= m -> raise Enough | _ -> ()
  in
  (* DFS; the trace builder is mutable, so we rebuild along the path by
     replaying prefixes: instead we carry the path of moves and rebuild
     only on emit, keeping the hot loop allocation-light. *)
  let rec go g d path =
    let stop_here =
      d >= depth || (Global.complete g && Sim.wake_only_complete p g)
    in
    if stop_here then emit_path path
    else begin
      let moves = List.filter (move_filter g) (Sim.enabled p g) in
      match moves with
      | [] -> emit_path path
      | _ -> List.iter (fun m -> go (Sim.apply p g m) (d + 1) (m :: path)) moves
    end
  in
  try go (Global.initial p ~input) 0 [] with Enough -> ()

let no_drops _g = function
  | Move.Drop_to_receiver _ | Move.Drop_to_sender _ -> false
  | Move.Wake_sender | Move.Wake_receiver | Move.Deliver_to_receiver _ | Move.Deliver_to_sender _
  | Move.Restart_sender | Move.Restart_receiver | Move.Corrupt_sender _ | Move.Corrupt_receiver _
    ->
      true

let bounded_flight k (g : Global.t) = function
  | Move.Wake_sender -> Chan.debt g.Global.chan_sr < k
  | Move.Wake_receiver -> Chan.debt g.Global.chan_rs < k
  | Move.Deliver_to_receiver _ | Move.Deliver_to_sender _ | Move.Drop_to_receiver _
  | Move.Drop_to_sender _ | Move.Restart_sender | Move.Restart_receiver
  | Move.Corrupt_sender _ | Move.Corrupt_receiver _ ->
      true

(** Scheduler/environment moves.

    Each transition of the global system is one move, chosen by the
    environment (the adversary): wake a process, deliver a deliverable
    message to a process, or — on deleting channels — drop an in-flight
    copy.  This is the paper's implicit environment protocol made
    explicit. *)

type t =
  | Wake_sender
  | Wake_receiver
  | Deliver_to_receiver of int  (** deliver a copy of this S-message *)
  | Deliver_to_sender of int  (** deliver a copy of this R-message *)
  | Drop_to_receiver of int  (** delete an in-flight S-message copy *)
  | Drop_to_sender of int
  | Restart_sender
      (** crash-restart: reset the sender to its initial state; the
          channels keep their in-flight contents.  Never offered by
          {!Sim.enabled} — only a fault plan ({!Faults.Plan}) injects
          it, so ordinary searches and schedules are unaffected. *)
  | Restart_receiver
  | Corrupt_sender of int
      (** state corruption: replace the sender's local state with entry
          [i] of the protocol's declared corrupted-start enumeration
          ({!Protocol.t.perturb}); channels and histories keep their
          in-flight contents.  Like the restarts, never offered by
          {!Sim.enabled} — only a fault plan or a stabilisation sweep
          injects it.  [Sim.apply] rejects the move on protocols that
          declare no corruption seam, or an index outside the
          enumeration. *)
  | Corrupt_receiver of int

val is_receiver_visible : t -> bool
(** Moves the receiver can observe (its wake-ups and deliveries to
    it).  The product attack search synchronises exactly these across
    the two runs it steers. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val to_string : t -> string

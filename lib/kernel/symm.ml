type perm = int array

type equivariance = {
  on_sender_msg : (int -> int) -> int -> int;
  on_receiver_msg : (int -> int) -> int -> int;
}

let data_messages = { on_sender_msg = (fun pi m -> pi m); on_receiver_msg = (fun pi m -> pi m) }

let identity m = Array.init m (fun i -> i)

let apply p i = if i >= 0 && i < Array.length p then p.(i) else i

let invert p =
  let inv = Array.make (Array.length p) 0 in
  Array.iteri (fun i j -> inv.(j) <- i) p;
  inv

let apply_seq p xs = List.map (apply p) xs

let is_perm p =
  let n = Array.length p in
  let seen = Array.make n false in
  Array.for_all
    (fun j ->
      j >= 0 && j < n
      &&
      if seen.(j) then false
      else begin
        seen.(j) <- true;
        true
      end)
    p

(* Streaming first-occurrence relabelling: the first distinct symbol
   fed in becomes 0, the second 1, and so on.  This is the whole
   canonicalisation — the canonical member of a sequence's orbit under
   alphabet permutations is its image under this map, because any
   permutation that produces a lexicographically-least label pattern
   must assign labels in first-occurrence order. *)
module Relabel = struct
  type t = { tbl : (int, int) Hashtbl.t; mutable next : int }

  let create () = { tbl = Hashtbl.create 8; next = 0 }

  let map t v =
    match Hashtbl.find_opt t.tbl v with
    | Some c -> c
    | None ->
        let c = t.next in
        Hashtbl.add t.tbl v c;
        t.next <- c + 1;
        c

  let assigned t = t.next
end

let canon_seqs ~m xss =
  let r = Relabel.create () in
  let css =
    List.map
      (List.map (fun v ->
           if v < 0 || v >= m then invalid_arg "Symm.canon_seqs: symbol outside [0, m)";
           Relabel.map r v))
      xss
  in
  (* Complete the first-occurrence assignment to a full permutation of
     [0, m): symbols that never occurred take the remaining labels in
     ascending order, so equal occurring parts always yield equal
     permutations. *)
  let p = Array.make m (-1) in
  Hashtbl.iter (fun v c -> p.(v) <- c) r.Relabel.tbl;
  let next = ref r.Relabel.next in
  Array.iteri
    (fun v c ->
      if c < 0 then begin
        p.(v) <- !next;
        incr next
      end)
    p;
  (css, p)

let canon_seq ~m xs =
  match canon_seqs ~m [ xs ] with
  | [ c ], p -> (c, p)
  | _ -> assert false

let canon_pair ~m x1 x2 =
  match canon_seqs ~m [ x1; x2 ] with
  | [ c1; c2 ], p -> ((c1, c2), p)
  | _ -> assert false

let relabel_move eq pi move =
  match move with
  (* Corrupt indices name positions in the perturb enumeration, not
     alphabet symbols, so relabelling passes them through — protocols
     that declare both [symmetry] and [perturb] must keep their
     enumerations data-independent for this to be sound. *)
  | Move.Wake_sender | Move.Wake_receiver | Move.Restart_sender | Move.Restart_receiver
  | Move.Corrupt_sender _ | Move.Corrupt_receiver _ ->
      move
  | Move.Deliver_to_receiver m -> Move.Deliver_to_receiver (eq.on_sender_msg pi m)
  | Move.Drop_to_receiver m -> Move.Drop_to_receiver (eq.on_sender_msg pi m)
  | Move.Deliver_to_sender m -> Move.Deliver_to_sender (eq.on_receiver_msg pi m)
  | Move.Drop_to_sender m -> Move.Drop_to_sender (eq.on_receiver_msg pi m)

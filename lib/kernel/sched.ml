type stop_reason = Completed | Quiescent | Budget | Strategy_end

type result = { trace : Trace.t; stop : stop_reason; steps : int }

type session = {
  protocol : Protocol.t;
  input : int array;
  strategy : Strategy.t;
  rng : Stdx.Rng.t;
  max_steps : int;
  max_seconds : float option;
  post_roll : int;
  corrupt_sender : Proc.t option;
  corrupt_receiver : Proc.t option;
}

let session protocol ~input ~strategy ~rng ~max_steps ?max_seconds ?(post_roll = 0)
    ?corrupt_sender ?corrupt_receiver () =
  { protocol; input; strategy; rng; max_steps; max_seconds; post_roll; corrupt_sender;
    corrupt_receiver }

type stats = {
  sessions : int;
  steps : int;
  ticks : int;
  peak_live : int;
  completed : int;
  quiescent : int;
  budget : int;
  strategy_end : int;
}

let stats_zero =
  {
    sessions = 0;
    steps = 0;
    ticks = 0;
    peak_live = 0;
    completed = 0;
    quiescent = 0;
    budget = 0;
    strategy_end = 0;
  }

let stats_merge a b =
  {
    sessions = a.sessions + b.sessions;
    steps = a.steps + b.steps;
    ticks = a.ticks + b.ticks;
    peak_live = max a.peak_live b.peak_live;
    completed = a.completed + b.completed;
    quiescent = a.quiescent + b.quiescent;
    budget = a.budget + b.budget;
    strategy_end = a.strategy_end + b.strategy_end;
  }

(* A live session: the spec plus the in-flight trace and budget
   counters.  [index] remembers the admission slot so results come
   back in input order whatever the retirement order. *)
type live = {
  spec : session;
  index : int;
  builder : Trace.builder;
  deadline : float option;
  mutable steps : int;
  mutable roll_left : int;
}

let admit index (spec : session) =
  let builder =
    Trace.start ?sender:spec.corrupt_sender ?receiver:spec.corrupt_receiver spec.protocol
      ~input:spec.input
  in
  {
    spec;
    index;
    builder;
    (* CPU-time deadline, fixed at admission; checked every 256 steps
       so the hot loop stays syscall-free. *)
    deadline = Option.map (fun s -> Sys.time () +. s) spec.max_seconds;
    steps = 0;
    roll_left = (if Global.complete (Trace.current builder) then spec.post_roll else -1);
  }

(* One step of one session.  [Some stop] retires it; [None] means a
   move was applied and recorded.  The branch structure replicates the
   single-run driver this scheduler replaced, so a one-session batch
   reproduces its traces byte for byte. *)
let step l =
  let p = l.spec.protocol in
  let over_deadline =
    match l.deadline with
    | Some d -> l.steps land 255 = 0 && Sys.time () > d
    | None -> false
  in
  if l.steps >= l.spec.max_steps || over_deadline then Some Budget
  else begin
    let g = Trace.current l.builder in
    if Global.complete g && l.roll_left <= 0 then Some Completed
    else begin
      let enabled = Sim.enabled p g in
      if (not (Global.complete g)) && List.length enabled = 2 && Sim.wake_only_complete p g
      then Some Quiescent
      else
        match l.spec.strategy.Strategy.choose l.spec.rng p g enabled with
        | None -> Some Strategy_end
        | Some move ->
            let g' = Sim.apply p g move in
            Trace.record l.builder move g';
            if Global.complete g' then
              l.roll_left <- (if Global.complete g then l.roll_left - 1 else l.spec.post_roll);
            l.steps <- l.steps + 1;
            None
    end
  end

let default_timeslice = 128

let run_stats ?(timeslice = default_timeslice) sessions =
  if timeslice < 1 then invalid_arg "Sched.run: timeslice must be >= 1";
  let n = List.length sessions in
  let results = Array.make (max n 1) None in
  let queue = Queue.create () in
  List.iteri (fun i spec -> Queue.add (admit i spec) queue) sessions;
  let steps_total = ref 0 and ticks = ref 0 in
  let completed = ref 0 and quiescent = ref 0 and budget = ref 0 and strategy_end = ref 0 in
  let retire l stop =
    let trace = Trace.finish l.builder in
    results.(l.index) <- Some { trace; stop; steps = Trace.length trace };
    steps_total := !steps_total + l.steps;
    incr
      (match stop with
      | Completed -> completed
      | Quiescent -> quiescent
      | Budget -> budget
      | Strategy_end -> strategy_end)
  in
  while not (Queue.is_empty queue) do
    let l = Queue.pop queue in
    incr ticks;
    let rec slice k =
      if k = 0 then Queue.add l queue
      else
        match step l with
        | None -> slice (k - 1)
        | Some stop -> retire l stop
    in
    slice timeslice
  done;
  let results = List.init n (fun i -> Option.get results.(i)) in
  ( results,
    {
      sessions = n;
      steps = !steps_total;
      ticks = !ticks;
      peak_live = n;
      completed = !completed;
      quiescent = !quiescent;
      budget = !budget;
      strategy_end = !strategy_end;
    } )

let run ?timeslice sessions = fst (run_stats ?timeslice sessions)

let pp_stop ppf = function
  | Completed -> Format.pp_print_string ppf "completed"
  | Quiescent -> Format.pp_print_string ppf "quiescent"
  | Budget -> Format.pp_print_string ppf "budget-exhausted"
  | Strategy_end -> Format.pp_print_string ppf "strategy-ended"

(** Self-registration of protocols and experiments.

    The CLI, the benchmark harness, and the examples used to each
    carry their own hard-coded protocol list and channel parser;
    adding a protocol meant touching all of them.  Instead, every
    protocol module and the experiment suite register themselves here
    at module-initialisation time, and every consumer resolves names
    through this table.  Adding a protocol or experiment now means
    registering it in exactly one place — its own module.

    The registering libraries are linked with [-linkall] so the
    side-effecting registrations are never dropped by the linker. *)

type config = {
  channel : Channel.Chan.kind;
  domain : int;  (** data alphabet size [m] *)
  max_len : int;  (** allowable-sequence length bound where needed *)
  header_space : int;  (** bounded-header size for stenning-mod *)
  drop_budget : int;  (** deletions the ladder/hybrid tolerate *)
  window : int;  (** pipelining window for go-back-n / selective-repeat *)
}
(** Everything a registered builder may draw on.  Builders ignore the
    fields they do not need. *)

val default : config
(** The CLI defaults: reorder+dup, [domain = 2], [max_len = 3],
    [header_space = 2], [drop_budget = 1], [window = 2]. *)

(* ------------------------- protocols ------------------------- *)

type protocol_entry = {
  p_name : string;
  p_doc : string;
  p_build : config -> (Protocol.t, string) result;
}

val register_protocol :
  name:string -> doc:string -> (config -> (Protocol.t, string) result) -> unit
(** @raise Invalid_argument on a duplicate name. *)

val protocol_names : unit -> string list
(** Registration order. *)

val find_protocol : string -> protocol_entry option

val build_protocol : name:string -> config -> (Protocol.t, string) result
(** [Error] for unknown names as well as failing builders. *)

(* ------------------------- channel kinds ------------------------- *)

val channel_forms : unit -> string list
(** The canonical spellings {!Channel.Chan.of_string} accepts,
    including the parameterised ["lag:K"] form — for CLI help and the
    enum cross-check test. *)

(* ------------------------- experiments ------------------------- *)

type experiment_entry = {
  e_id : string;  (** "E1" … "E12" *)
  e_doc : string;
  e_quick : unit -> Stdx.Report.t;  (** test-suite-scale parameters *)
  e_full : unit -> Stdx.Report.t;  (** paper-scale parameters *)
}

val register_experiment :
  id:string ->
  doc:string ->
  quick:(unit -> Stdx.Report.t) ->
  full:(unit -> Stdx.Report.t) ->
  unit
(** @raise Invalid_argument on a duplicate id. *)

val experiment_ids : unit -> string list
(** Registration order — E1 … E12. *)

val experiments : unit -> experiment_entry list

val find_experiment : string -> experiment_entry option
(** Lookup is case-insensitive on the id ("e3" finds "E3"). *)

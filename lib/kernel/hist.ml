type entry = Woke | Got of int | Sent of int | Wrote of int

(* Reversed entry list.  The encoding is computed on demand: appends
   stay O(1), and the knowledge layer — the only heavy consumer of
   encodings — calls [encode] once per point. *)
type t = { rev : entry list; len : int }

let empty = { rev = []; len = 0 }

let length t = t.len

let add t e = { rev = e :: t.rev; len = t.len + 1 }

let add_event t = function
  | Event.Wake -> add t Woke
  | Event.Deliver m -> add t (Got m)

let add_action t = function
  | Action.Send m -> add t (Sent m)
  | Action.Write d -> add t (Wrote d)

let to_list t = List.rev t.rev

let prefix t n =
  if n < 0 || n > t.len then invalid_arg "Hist.prefix: bad length";
  let rec drop k rev = if k = 0 then rev else match rev with [] -> [] | _ :: rest -> drop (k - 1) rest in
  { rev = drop (t.len - n) t.rev; len = n }

let add_entry_code buf = function
  | Woke -> Buffer.add_string buf "w;"
  | Got m ->
      Buffer.add_char buf 'g';
      Buffer.add_string buf (string_of_int m);
      Buffer.add_char buf ';'
  | Sent m ->
      Buffer.add_char buf 's';
      Buffer.add_string buf (string_of_int m);
      Buffer.add_char buf ';'
  | Wrote d ->
      Buffer.add_char buf 'o';
      Buffer.add_string buf (string_of_int d);
      Buffer.add_char buf ';'

let encode t =
  let buf = Buffer.create (t.len * 3) in
  List.iter (add_entry_code buf) (to_list t);
  Buffer.contents buf

(* Binary form for codec-based fingerprints: length header, then one
   tag byte + payload varint per entry, oldest first. *)
let emit c t =
  Stdx.Codec.add_varint c t.len;
  List.iter
    (fun e ->
      match e with
      | Woke -> Stdx.Codec.add_char c 'w'
      | Got m ->
          Stdx.Codec.add_char c 'g';
          Stdx.Codec.add_varint c m
      | Sent m ->
          Stdx.Codec.add_char c 's';
          Stdx.Codec.add_varint c m
      | Wrote d ->
          Stdx.Codec.add_char c 'o';
          Stdx.Codec.add_varint c d)
    (to_list t)

let equal a b = a.len = b.len && a.rev = b.rev

let pp_entry ppf = function
  | Woke -> Format.pp_print_string ppf "wake"
  | Got m -> Format.fprintf ppf "got %d" m
  | Sent m -> Format.fprintf ppf "sent %d" m
  | Wrote d -> Format.fprintf ppf "wrote %d" d

let pp ppf t =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ") pp_entry)
    (to_list t)

let chart_window trace ~from ~upto =
  let buf = Buffer.create 1024 in
  let n = Trace.length trace in
  let from = max 0 from and upto = min n upto in
  Buffer.add_string buf
    (Printf.sprintf "%-4s %-18s %-12s %-18s %s\n" "t" "sender" "channel" "receiver" "output");
  let out_at t = Trace.output_at trace t in
  Array.iteri
    (fun t move ->
      if t >= from && t < upto then begin
        let wrote = Trace.output_length_at trace (t + 1) - Trace.output_length_at trace t in
        let lane_s, lane_mid, lane_r =
          match move with
          | Move.Wake_sender -> ("wake", "", "")
          | Move.Wake_receiver -> ("", "", "wake")
          | Move.Deliver_to_receiver m ->
              ("", Printf.sprintf "--[%d]-->" m, if wrote > 0 then "recv, write" else "recv")
          | Move.Deliver_to_sender m -> ("recv", Printf.sprintf "<--[%d]--" m, "")
          | Move.Drop_to_receiver m -> ("", Printf.sprintf "--[%d]--X" m, "")
          | Move.Drop_to_sender m -> ("", Printf.sprintf "X--[%d]--" m, "")
          | Move.Restart_sender -> ("CRASH/restart", "", "")
          | Move.Restart_receiver -> ("", "", "CRASH/restart")
          | Move.Corrupt_sender i -> (Printf.sprintf "CORRUPT #%d" i, "", "")
          | Move.Corrupt_receiver i -> ("", "", Printf.sprintf "CORRUPT #%d" i)
        in
        let output =
          if wrote > 0 then
            "Y = <" ^ String.concat " " (List.map string_of_int (out_at (t + 1))) ^ ">"
          else ""
        in
        Buffer.add_string buf
          (Printf.sprintf "%-4d %-18s %-12s %-18s %s\n" t lane_s lane_mid lane_r output)
      end)
    (Trace.moves trace);
  Buffer.contents buf

let chart trace = chart_window trace ~from:0 ~upto:(Trace.length trace)

let moves_of_witness_run (p : Protocol.t) ~input ~moves =
  let builder = Trace.start p ~input in
  let rec go = function
    | [] -> ()
    | move :: rest ->
        let g = Trace.current builder in
        if List.exists (Move.equal move) (Sim.enabled p g) then begin
          Trace.record builder move (Sim.apply p g move);
          go rest
        end
  in
  go moves;
  Trace.finish builder

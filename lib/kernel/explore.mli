(** Exhaustive exploration of the run space.

    For small instances the entire truncated system — every adversary
    choice at every step, up to a depth bound — can be enumerated.
    [reachable] computes the reachable global-state graph with
    memoisation (channel states saturate on reorder+dup channels, so
    this converges quickly); [iter_runs] enumerates complete move
    sequences, which the knowledge layer turns into an *exact* point
    universe for the truncated system. *)

type stats = {
  states : int;  (** distinct reachable states (by {!Global.encode}) *)
  transitions : int;
  safety_violations : int;  (** reachable states violating Safety *)
  complete_states : int;  (** reachable states with [Y = X] *)
  truncated : bool;  (** the [max_states] budget cut the BFS short *)
}

val reachable :
  Protocol.t ->
  input:int array ->
  depth:int ->
  ?move_filter:(Global.t -> Move.t -> bool) ->
  ?max_states:int ->
  ?starts:Global.t list ->
  unit ->
  stats
(** BFS over distinct states to the given depth.  [max_states] is a
    resource guard: when the seen-set reaches it, no further fresh
    states are recorded and the partial statistics come back with
    [truncated = true].  [starts] replaces the designated initial
    state with an explicit list of roots, all at depth 0 — the
    corrupted-start sweep measures the union space of a whole
    perturb enumeration in one BFS (duplicate roots dedup). *)

val iter_runs :
  Protocol.t ->
  input:int array ->
  depth:int ->
  ?move_filter:(Global.t -> Move.t -> bool) ->
  ?max_runs:int ->
  (Trace.t -> unit) ->
  unit
(** DFS enumerating every move sequence of length exactly [depth]
    (runs that complete and quiesce earlier are emitted at their
    natural length).  [move_filter] prunes adversary choices — e.g.
    forbidding drops recovers the no-deletion subsystem.  Stops after
    [max_runs] traces when given (a safety valve: the run count is
    exponential in [depth]). *)

val no_drops : Global.t -> Move.t -> bool
(** The filter excluding deletion moves. *)

val bounded_flight : int -> Global.t -> Move.t -> bool
(** [bounded_flight k] refuses wake moves that would be taken while a
    process already has [k] undelivered messages in flight towards its
    peer — a standard partial-order-style reduction that keeps the
    branching of exhaustive runs manageable without hiding any
    receiver-observable behaviour for the protocols studied here. *)

(** Global states [(s_E, s_S, s_R)] of §2.2.

    The environment component [s_E] is the input tape, the output tape,
    and the two channel states; [s_S] and [s_R] are the process states
    together with their kernel-recorded complete histories.  Global
    states are persistent: the simulator, explorer, and attack search
    all branch over them. *)

type t = {
  input : int array;  (** the input tape [X], fixed for the run *)
  sender : Proc.t;
  receiver : Proc.t;
  s_hist : Hist.t;  (** sender's complete local history *)
  r_hist : Hist.t;  (** receiver's complete local history *)
  chan_sr : Channel.Chan.t;  (** sender → receiver channel *)
  chan_rs : Channel.Chan.t;  (** receiver → sender channel *)
  output_rev : int list;  (** the output tape [Y], newest first *)
  output_len : int;  (** [List.length output_rev], maintained on Write *)
  output_ok : bool;
      (** whether [Y] is a prefix of [X], maintained on Write — makes
          the per-step safety check O(1) instead of a tape rescan *)
  time : int;  (** number of moves taken from the initial state *)
}

val initial : ?sender:Proc.t -> ?receiver:Proc.t -> Protocol.t -> input:int array -> t
(** The initial global state [𝒢₀] for this protocol and input: both
    channels empty, fresh processes, empty histories and output.
    [?sender]/[?receiver] override the designated process values — the
    corrupted-start seam ({!Protocol.t.perturb}): a stabilisation sweep
    roots a run at an adversarially chosen local state while the rest
    of the system (channels, output, histories) still boots clean. *)

val output : t -> int list
(** The output tape [Y], oldest first. *)

val output_length : t -> int

val safety_ok : t -> bool
(** Whether [Y] is currently a prefix of [X] — the Safety condition.
    O(1): reads the incrementally maintained [output_ok] field. *)

val write : t -> int -> t
(** [write t d] appends [d] to the output tape, maintaining
    [output_len] and [output_ok].  The only legal way to extend the
    tape — the simulator routes every receiver [Write] action through
    it. *)

val complete : t -> bool
(** Whether [|Y| = |X|]: every data item has been written. *)

val emit : Stdx.Codec.t -> t -> unit
(** Append the canonical binary fingerprint of the
    *transition-relevant* part of the state (process states, channel
    contents, output length) to a codec.  Histories and cumulative
    counters are excluded: two states with equal fingerprints generate
    identical future behaviours.  The engine hot path: component
    encodings are memoised per distinct value, so emitting into a
    reusable buffer (then {!Stdx.Intern.intern_bytes}) materialises no
    fresh string per generated state. *)

val encode : t -> string
(** [emit] into a throwaway codec, copied out — for callers that want
    the fingerprint as a standalone string key. *)

val emit_with_r_view : Stdx.Codec.t -> t -> unit
(** Like {!emit} but additionally distinguishes receiver views —
    for searches that must not merge states the receiver can tell
    apart. *)

val emit_run_key : Stdx.Codec.t -> t -> unit
(** {!emit} refined with the channel counter multisets and the safety
    bit: the complete set of observables engine decisions read (move
    enabling, send-cap checks, fairness debt, safety).  Histories and
    the move clock are excluded — write-only accumulators that never
    feed back into evolution — so states equal under this key have
    behaviourally interchangeable futures.  The memo key of
    {!Core.Attack.Runstate}. *)

val encode_with_r_view : t -> string
(** String form of {!emit_with_r_view}. *)

(** Processes as pure step functions over hidden state.

    A process is a deterministic state machine: given an event it
    produces a new state and a batch of actions.  The state type is
    existentially hidden so the simulator can drive any protocol
    uniformly; an [encode] function exposes a canonical fingerprint of
    the state for the explorer's memo tables (protocol states must be
    pure marshalable data — no closures inside states). *)

type t

val make :
  ?encode:('s -> string) ->
  state:'s ->
  step:('s -> Event.t -> 's * Action.t list) ->
  unit ->
  t
(** [make ~state ~step ()] wraps a state machine.  The default
    [encode] marshals the state, which is correct for any pure-data
    state type. *)

val step : t -> Event.t -> t * Action.t list
(** Advance the machine by one event. *)

val encode : t -> string
(** Canonical fingerprint of the current state.  Memoised: each
    distinct process value is serialised at most once, however many
    global states share it. *)

val emit : Stdx.Codec.t -> t -> unit
(** Append the (memoised) fingerprint to a codec as a length-prefixed
    blob — the {!Global.emit} component path; allocation-free once the
    memo is warm. *)

(** Protocol descriptors: a solution candidate for [𝒳]-STP.

    A protocol is the pair [(P_S, P_R)] of §2.1 plus the metadata the
    harness and the impossibility machinery need: the finite alphabet
    sizes [|M^S|] and [|M^R|] and the channel semantics the protocol
    is designed for.

    Senders receive the whole input tape at construction time.  This
    is the paper's *non-uniform* convention (footnote 2: the sender's
    protocol may have all of [X] built into its code); uniform
    protocols simply consume the array left to right.  Receivers start
    in a state independent of the input (Property 1a). *)

type corrupted = { label : string; proc : Proc.t }
(** One corrupted local state: a human-readable label (stable across
    runs — it names sweep points and witnesses) and the process value
    itself.  [Proc.t] state is existential, so only the protocol module
    can build these; the [perturb] seam is how it publishes them. *)

type perturb = {
  sender_states : input:int array -> corrupted list;
  receiver_states : written:int -> corrupted list;
}
(** The protocol's declared corrupted-start space: the finite
    enumerations of local states a transient fault may leave each
    machine in.  Contract: the first element of each enumeration is the
    designated initial state (index 0 ≡ a clean boot when [written = 0],
    and the uncorrupted-equivalent state at any later point), so
    [Move.Corrupt_sender 0] is always a no-op corruption; receivers may
    not depend on the input (Property 1a) and neither may their
    corrupted states.

    {b The written-count convention.}  The receiver's mirror of the
    output tape is environment-anchored: the tape itself is append-only
    and unreadable, so no protocol could stabilise from a corruption of
    it, and a mid-run corruption that rewound the mirror beneath a
    non-empty tape would manufacture violations no transient fault can
    cause.  [receiver_states ~written] therefore enumerates corruptions
    {e around} the anchored mirror: every enumerated state's
    tape-mirror component equals [written], while everything else
    (phase flags, header offsets, reassembly buffers, auxiliary
    counters) varies.  Corrupted {e starts} use [written = 0]; a fault
    plan's mid-run [corrupt-state] event is applied at the live tape
    length — which is what makes receiver corruption drawable at any
    time by {!Faults.Plan.random}.  The enumeration's length and label
    sequence must not depend on [written] (checked by
    {!validate_perturb}), so plan validation against {!corrupt_space}
    is sound at every injection time. *)

type t = {
  name : string;
  sender_alphabet : int;  (** [|M^S|]: sender messages are in [\[0, sender_alphabet)] *)
  receiver_alphabet : int;  (** [|M^R|] *)
  channel : Channel.Chan.kind;  (** the channel semantics the protocol targets *)
  make_sender : input:int array -> Proc.t;
  make_receiver : unit -> Proc.t;
  symmetry : Symm.equivariance option;
      (** [Some eq] declares the protocol equivariant under data-alphabet
          permutations with [eq] lifting symbol permutations to wire
          messages — the licence for the {!Symm} orbit quotients in the
          attack sweeps.  [None] (protocols that inspect symbol
          identities, e.g. via a code table) disables every symmetry
          reduction for the protocol. *)
  perturb : perturb option;
      (** [Some pe] declares the corrupted-start space self-stabilisation
          sweeps enumerate; [None] opts the protocol out of corruption
          moves entirely ({!Sim.apply} rejects them). *)
}

val corrupt_space : t -> input:int array -> (int * int) option
(** Sizes [(sender_states, receiver_states)] of the declared
    corrupted-start enumerations for this input (receiver sizes taken
    at [written = 0] — invariant in [written] by the perturb contract),
    or [None] when the protocol has no [perturb] seam — the bound
    fault-plan validation checks [corrupt-state] indices against. *)

val validate_perturb : t -> input:int array -> (unit, string) result
(** Sanity-checks the declared corrupted-start space: both enumerations
    non-empty with distinct labels, every enumerated state emits
    only alphabet-legal actions when woken — the same
    {!validate_action} discipline the simulator applies to every step,
    so a corruption can never smuggle an out-of-alphabet message into
    a sweep — and the receiver enumeration's label sequence is
    invariant across written counts (checked at [written = 0] and
    [written = length input]), so mid-run corruption indices mean the
    same corruption at every injection time. *)

val validate_action : is_sender:bool -> alphabet:int -> Action.t -> (unit, string) result
(** Checks an emitted action against the model: senders never [Write];
    message symbols stay inside the declared finite alphabet.  The
    simulator applies this to every action and fails loudly on
    violation — a protocol that leaves its declared alphabet would
    void the theorems being tested. *)

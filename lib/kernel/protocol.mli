(** Protocol descriptors: a solution candidate for [𝒳]-STP.

    A protocol is the pair [(P_S, P_R)] of §2.1 plus the metadata the
    harness and the impossibility machinery need: the finite alphabet
    sizes [|M^S|] and [|M^R|] and the channel semantics the protocol
    is designed for.

    Senders receive the whole input tape at construction time.  This
    is the paper's *non-uniform* convention (footnote 2: the sender's
    protocol may have all of [X] built into its code); uniform
    protocols simply consume the array left to right.  Receivers start
    in a state independent of the input (Property 1a). *)

type t = {
  name : string;
  sender_alphabet : int;  (** [|M^S|]: sender messages are in [\[0, sender_alphabet)] *)
  receiver_alphabet : int;  (** [|M^R|] *)
  channel : Channel.Chan.kind;  (** the channel semantics the protocol targets *)
  make_sender : input:int array -> Proc.t;
  make_receiver : unit -> Proc.t;
  symmetry : Symm.equivariance option;
      (** [Some eq] declares the protocol equivariant under data-alphabet
          permutations with [eq] lifting symbol permutations to wire
          messages — the licence for the {!Symm} orbit quotients in the
          attack sweeps.  [None] (protocols that inspect symbol
          identities, e.g. via a code table) disables every symmetry
          reduction for the protocol. *)
}

val validate_action : is_sender:bool -> alphabet:int -> Action.t -> (unit, string) result
(** Checks an emitted action against the model: senders never [Write];
    message symbols stay inside the declared finite alphabet.  The
    simulator applies this to every action and fails loudly on
    violation — a protocol that leaves its declared alphabet would
    void the theorems being tested. *)

module Chan = Channel.Chan

type t = {
  name : string;
  choose : Stdx.Rng.t -> Protocol.t -> Global.t -> Move.t list -> Move.t option;
}

(* Strategies are stateless: anything they need to remember (time,
   drop counts) is read back from the global state's counters, so one
   strategy value can drive any number of runs. *)

let is_wake = function Move.Wake_sender | Move.Wake_receiver -> true | _ -> false

let is_delivery = function
  | Move.Deliver_to_receiver _ | Move.Deliver_to_sender _ -> true
  | _ -> false

let is_drop = function Move.Drop_to_receiver _ | Move.Drop_to_sender _ -> true | _ -> false

let fair_random ?(deliver_weight = 4) ?(wake_weight = 2) ?(drop_weight = 0) () =
  let weight m =
    if is_wake m then wake_weight else if is_delivery m then deliver_weight else drop_weight
  in
  {
    name = "fair-random";
    choose =
      (fun rng _p _g enabled ->
        let weighted = List.filter_map (fun m -> let w = weight m in if w > 0 then Some (m, w) else None) enabled in
        match weighted with
        | [] -> None
        | _ -> Some (Stdx.Rng.pick_weighted rng weighted));
  }

(* Rotate through the deliverable set by time so that, on duplication
   channels (whose deliverable set never shrinks), every message keeps
   being delivered — always taking the smallest would starve the rest. *)
let rotating_delivery_to p ~time enabled =
  let candidates =
    List.filter_map
      (fun m ->
        match (p, m) with
        | `R, Move.Deliver_to_receiver x -> Some (x, m)
        | `S, Move.Deliver_to_sender x -> Some (x, m)
        | _ -> None)
      enabled
  in
  match List.sort (fun (a, _) (b, _) -> Int.compare a b) candidates with
  | [] -> None
  | sorted ->
      let _, m = List.nth sorted (time / 4 mod List.length sorted) in
      Some m

let round_robin =
  {
    name = "round-robin";
    choose =
      (fun _rng _p (g : Global.t) enabled ->
        let phase = g.Global.time mod 4 in
        let preference =
          match phase with
          | 0 -> Some Move.Wake_sender
          | 1 -> rotating_delivery_to `R ~time:g.Global.time enabled
          | 2 -> Some Move.Wake_receiver
          | _ -> rotating_delivery_to `S ~time:g.Global.time enabled
        in
        match preference with
        | Some m when List.exists (Move.equal m) enabled -> Some m
        | _ ->
            (* Fall back: next wake in the rotation. *)
            if phase < 2 then Some Move.Wake_sender else Some Move.Wake_receiver);
  }

let newest_first =
  {
    name = "newest-first";
    choose =
      (fun _rng _p (g : Global.t) enabled ->
        let deliveries =
          List.filter_map
            (fun m ->
              match m with
              | Move.Deliver_to_receiver x -> Some (x, m)
              | Move.Deliver_to_sender x -> Some (x, m)
              | _ -> None)
            enabled
        in
        (* Largest symbols first, but rotate through the whole set over
           time: a pure "always newest" rule would starve the rest on
           duplication channels, whose deliverable set never shrinks. *)
        match List.sort (fun (a, _) (b, _) -> Int.compare b a) deliveries with
        | [] -> if g.Global.time mod 2 = 0 then Some Move.Wake_sender else Some Move.Wake_receiver
        | sorted when g.Global.time mod 3 <> 0 ->
            let _, m = List.nth sorted (g.Global.time / 9 mod List.length sorted) in
            Some m
        | _ -> if g.Global.time mod 2 = 0 then Some Move.Wake_sender else Some Move.Wake_receiver);
  }

let dup_flood ?(burst = 3) () =
  {
    name = Printf.sprintf "dup-flood(%d)" burst;
    choose =
      (fun rng _p (g : Global.t) enabled ->
        let deliveries = List.filter is_delivery enabled in
        (* Within a burst window re-deliver; outside it let a process
           take a step so the system makes progress. *)
        if g.Global.time mod (burst + 2) < burst && deliveries <> [] then
          Some (Stdx.Rng.pick rng deliveries)
        else if Stdx.Rng.bool rng then Some Move.Wake_sender
        else Some Move.Wake_receiver);
  }

let total_dropped (g : Global.t) =
  Chan.dropped_total g.Global.chan_sr + Chan.dropped_total g.Global.chan_rs

let drop_rate p inner =
  {
    name = Printf.sprintf "%s+drop(%.2f)" inner.name p;
    choose =
      (fun rng proto g enabled ->
        let drops = List.filter is_drop enabled in
        if drops <> [] && Stdx.Rng.float rng < p then Some (Stdx.Rng.pick rng drops)
        else inner.choose rng proto g (List.filter (fun m -> not (is_drop m)) enabled));
  }

let drop_first n inner =
  {
    name = Printf.sprintf "%s+drop-first(%d)" inner.name n;
    choose =
      (fun rng proto g enabled ->
        let drops = List.filter is_drop enabled in
        if total_dropped g < n && drops <> [] then Some (List.hd drops)
        else inner.choose rng proto g (List.filter (fun m -> not (is_drop m)) enabled));
  }

let drop_after ~at n inner =
  {
    name = Printf.sprintf "%s+drop-after(%d,%d)" inner.name at n;
    choose =
      (fun rng proto (g : Global.t) enabled ->
        let drops = List.filter is_drop enabled in
        if g.Global.time >= at && total_dropped g < n && drops <> [] then Some (List.hd drops)
        else inner.choose rng proto g (List.filter (fun m -> not (is_drop m)) enabled));
  }

let scripted moves =
  let arr = Array.of_list moves in
  {
    name = "scripted";
    choose =
      (fun _rng _p (g : Global.t) enabled ->
        let i = g.Global.time in
        if i >= Array.length arr then None
        else begin
          let m = arr.(i) in
          if List.exists (Move.equal m) enabled then Some m else None
        end);
  }

let forms =
  [ "fair-random"; "round-robin"; "newest-first"; "dup-flood"; "drop:P"; "drop-first:N" ]

(* The one name->strategy parser: the CLI's --strategy flag and the
   serve daemon's job specs both resolve through here. *)
let of_string s =
  match String.split_on_char ':' s with
  | [ "fair-random" ] -> Ok (fair_random ())
  | [ "round-robin" ] -> Ok round_robin
  | [ "newest-first" ] -> Ok newest_first
  | [ "dup-flood" ] -> Ok (dup_flood ())
  | [ "drop"; p ] -> (
      match float_of_string_opt p with
      | Some p -> Ok (drop_rate p (fair_random ()))
      | None -> Error "drop:P needs a float probability")
  | [ "drop-first"; n ] -> (
      match int_of_string_opt n with
      | Some n -> Ok (drop_first n (fair_random ()))
      | None -> Error "drop-first:N needs an integer")
  | _ -> Error (Printf.sprintf "unknown strategy %S" s)

let starve_receiver ~until inner =
  {
    name = Printf.sprintf "%s+starve-R(%d)" inner.name until;
    choose =
      (fun rng proto (g : Global.t) enabled ->
        if g.Global.time < until then begin
          let allowed =
            List.filter (function Move.Deliver_to_receiver _ -> false | _ -> true) enabled
          in
          inner.choose rng proto g allowed
        end
        else inner.choose rng proto g enabled);
  }

(** Persistent multisets over machine integers.

    Deletion channels carry a multiset of in-flight message copies
    (the [dlvrble] vector of Wang & Zuck §2.2): sending adds a copy,
    delivery removes one, deletion removes one.  The structure is
    persistent because the exhaustive run-space explorer and the
    product attack search branch over channel states and need cheap
    sharing. *)

type t

val empty : t

val is_empty : t -> bool

val count : t -> int -> int
(** [count t x] is the multiplicity of [x] (0 when absent). *)

val add : ?times:int -> t -> int -> t
(** [add ~times t x] inserts [times] copies of [x] (default 1).
    @raise Invalid_argument if [times < 0]. *)

val remove : t -> int -> t option
(** [remove t x] removes one copy of [x]; [None] when [count t x = 0]. *)

val remove_all : t -> int -> t
(** [remove_all t x] drops every copy of [x]. *)

val support : t -> int list
(** Distinct elements with positive multiplicity, ascending. *)

val cardinal : t -> int
(** Total number of copies. *)

val distinct : t -> int
(** Number of distinct elements. *)

val fold : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a
(** [fold f t init] folds [f elt multiplicity] over the support in
    ascending element order. *)

val union : t -> t -> t
(** Multiplicities add. *)

val leq : t -> t -> bool
(** [leq a b] is pointwise [count a x <= count b x] — the sub-multiset
    order used to audit that deletion channels never create messages. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val of_list : int list -> t
val to_list : t -> int list
(** Ascending, with repetitions. *)

val encode : t -> string
(** Canonical compact encoding, used as a hash-consing key by the
    explorer's memo table. *)

val emit : Codec.t -> t -> unit
(** Append the canonical binary form (distinct-count header, then
    ascending [(element, multiplicity)] varint pairs) — the
    {!Channel.Chan} fingerprint path. *)

val pp : Format.formatter -> t -> unit

module IntMap = Map.Make (Int)

type t = int IntMap.t (* invariant: all bound multiplicities are > 0 *)

let empty = IntMap.empty

let is_empty = IntMap.is_empty

let count t x = match IntMap.find_opt x t with Some n -> n | None -> 0

let add ?(times = 1) t x =
  if times < 0 then invalid_arg "Multiset.add: negative multiplicity";
  if times = 0 then t else IntMap.add x (count t x + times) t

let remove t x =
  match IntMap.find_opt x t with
  | None -> None
  | Some 1 -> Some (IntMap.remove x t)
  | Some n -> Some (IntMap.add x (n - 1) t)

let remove_all t x = IntMap.remove x t

let support t = IntMap.fold (fun x _ acc -> x :: acc) t [] |> List.rev

let cardinal t = IntMap.fold (fun _ n acc -> acc + n) t 0

let distinct t = IntMap.cardinal t

let fold f t init = IntMap.fold f t init

let union a b = IntMap.union (fun _ m n -> Some (m + n)) a b

let leq a b = IntMap.for_all (fun x n -> n <= count b x) a

let equal a b = IntMap.equal Int.equal a b

let compare a b = IntMap.compare Int.compare a b

let of_list xs = List.fold_left (fun t x -> add t x) empty xs

let to_list t =
  IntMap.fold (fun x n acc -> List.rev_append (List.init n (fun _ -> x)) acc) t []
  |> List.rev

let encode t =
  let buf = Buffer.create 32 in
  IntMap.iter (fun x n -> Buffer.add_string buf (Printf.sprintf "%d:%d;" x n)) t;
  Buffer.contents buf

(* Binary form: distinct-count header, then (element, multiplicity)
   varint pairs in ascending element order — canonical because the map
   iterates in key order and multiplicities are always positive. *)
let emit c t =
  Codec.add_varint c (IntMap.cardinal t);
  IntMap.iter
    (fun x n ->
      Codec.add_varint c x;
      Codec.add_varint c n)
    t

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (x, n) -> Format.fprintf ppf "%d^%d" x n))
    (IntMap.bindings t)

type t = { mutable words : Bytes.t; mutable cardinal : int }

(* Bytes rather than an int array: the GC never scans it, and the
   doubling growth keeps amortised insertion O(1).  Bit [i] lives in
   byte [i lsr 3] at position [i land 7]. *)

let create ?(size = 1024) () =
  { words = Bytes.make (max 1 ((size + 7) lsr 3)) '\000'; cardinal = 0 }

let ensure t i =
  let need = (i lsr 3) + 1 in
  let cap = Bytes.length t.words in
  if need > cap then begin
    let cap' = ref (cap * 2) in
    while need > !cap' do
      cap' := !cap' * 2
    done;
    let w = Bytes.make !cap' '\000' in
    Bytes.blit t.words 0 w 0 cap;
    t.words <- w
  end

let mem t i =
  if i < 0 then invalid_arg "Bitset.mem: negative index";
  let byte = i lsr 3 in
  byte < Bytes.length t.words
  && Char.code (Bytes.unsafe_get t.words byte) land (1 lsl (i land 7)) <> 0

let add t i =
  if i < 0 then invalid_arg "Bitset.add: negative index";
  ensure t i;
  let byte = i lsr 3 in
  let bit = 1 lsl (i land 7) in
  let w = Char.code (Bytes.unsafe_get t.words byte) in
  if w land bit = 0 then begin
    Bytes.unsafe_set t.words byte (Char.unsafe_chr (w lor bit));
    t.cardinal <- t.cardinal + 1;
    true
  end
  else false

let remove t i =
  if i < 0 then invalid_arg "Bitset.remove: negative index";
  let byte = i lsr 3 in
  if byte < Bytes.length t.words then begin
    let bit = 1 lsl (i land 7) in
    let w = Char.code (Bytes.unsafe_get t.words byte) in
    if w land bit <> 0 then begin
      Bytes.unsafe_set t.words byte (Char.unsafe_chr (w land lnot bit));
      t.cardinal <- t.cardinal - 1
    end
  end

let cardinal t = t.cardinal

let clear t =
  Bytes.fill t.words 0 (Bytes.length t.words) '\000';
  t.cardinal <- 0

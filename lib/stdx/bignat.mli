(** Arbitrary-precision natural numbers.

    The bound [α(m) = m!·Σ 1/k!] of Wang & Zuck grows like [e·m!] and
    overflows a 63-bit integer at [m = 20].  The repository avoids
    external dependencies (no zarith), so this module provides the small
    slice of bignum arithmetic the combinatorics need: addition,
    multiplication and division by machine integers, comparison, and
    decimal printing.  Values are immutable. *)

type t

val zero : t
val one : t

val of_int : int -> t
(** [of_int n] converts a non-negative machine integer.
    @raise Invalid_argument if [n < 0]. *)

val to_int : t -> int option
(** [to_int t] is [Some n] when [t] fits a non-negative OCaml [int],
    [None] otherwise. *)

val add : t -> t -> t
val mul : t -> t -> t

val mul_int : t -> int -> t
(** [mul_int t k] multiplies by a non-negative machine integer. *)

val divmod_int : t -> int -> t * int
(** [divmod_int t k] is the quotient and remainder of division by a
    positive machine integer. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val to_string : t -> string
(** Decimal rendering, e.g. [to_string (factorial 25)]. *)

val of_string : string -> t option
(** Inverse of {!to_string}: parse a non-empty all-digit decimal
    string.  [None] on anything else.  Leading zeros are accepted and
    normalised away. *)

val pp : Format.formatter -> t -> unit

val factorial : int -> t
(** [factorial n] is [n!] for [n >= 0]. *)

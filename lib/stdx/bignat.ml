(* Little-endian limbs in base 10^9.  Base-1e9 keeps limb products inside
   62 bits and makes decimal printing trivial. *)

let base = 1_000_000_000

type t = int array (* invariant: no trailing zero limb; [||] is zero *)

let zero : t = [||]
let one : t = [| 1 |]

let normalize a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int n =
  if n < 0 then invalid_arg "Bignat.of_int: negative";
  let rec limbs n = if n = 0 then [] else (n mod base) :: limbs (n / base) in
  Array.of_list (limbs n)

let to_int t =
  let rec go i acc =
    if i < 0 then Some acc
    else if acc > (max_int - t.(i)) / base then None
    else go (i - 1) ((acc * base) + t.(i))
  in
  go (Array.length t - 1) 0

let add a b =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb + 1 in
  let out = Array.make n 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    out.(i) <- s mod base;
    carry := s / base
  done;
  normalize out

let mul_int a k =
  if k < 0 then invalid_arg "Bignat.mul_int: negative";
  if k = 0 || Array.length a = 0 then zero
  else begin
    let la = Array.length a in
    let out = Array.make (la + 2) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let p = (a.(i) * k) + !carry in
      out.(i) <- p mod base;
      carry := p / base
    done;
    let i = ref la in
    while !carry > 0 do
      out.(!i) <- !carry mod base;
      carry := !carry / base;
      incr i
    done;
    normalize out
  end

let mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let out = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      for j = 0 to lb - 1 do
        let p = out.(i + j) + (a.(i) * b.(j)) + !carry in
        out.(i + j) <- p mod base;
        carry := p / base
      done;
      (* Propagate the final carry; it always fits one extra limb here
         because a.(i)*b.(j) < base^2 and out stays < base. *)
      let k = ref (i + lb) in
      while !carry > 0 do
        let p = out.(!k) + !carry in
        out.(!k) <- p mod base;
        carry := p / base;
        incr k
      done
    done;
    normalize out
  end

let divmod_int a k =
  if k <= 0 then invalid_arg "Bignat.divmod_int: non-positive divisor";
  let la = Array.length a in
  let out = Array.make la 0 in
  let rem = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!rem * base) + a.(i) in
    out.(i) <- cur / k;
    rem := cur mod k
  done;
  (normalize out, !rem)

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let equal a b = compare a b = 0

let to_string t =
  let n = Array.length t in
  if n = 0 then "0"
  else begin
    let buf = Buffer.create (n * 9) in
    Buffer.add_string buf (string_of_int t.(n - 1));
    for i = n - 2 downto 0 do
      Buffer.add_string buf (Printf.sprintf "%09d" t.(i))
    done;
    Buffer.contents buf
  end

let of_string s =
  let len = String.length s in
  if len = 0 then None
  else begin
    (* Chunks of 9 decimal digits map directly onto base-1e9 limbs. *)
    let rec chunks stop acc =
      if stop <= 0 then Some acc
      else begin
        let start = max 0 (stop - 9) in
        let chunk = String.sub s start (stop - start) in
        if String.for_all (fun c -> c >= '0' && c <= '9') chunk then
          chunks start (int_of_string chunk :: acc)
        else None
      end
    in
    match chunks len [] with
    | Some limbs -> Some (normalize (Array.of_list (List.rev limbs)))
    | None -> None
  end

let pp ppf t = Format.pp_print_string ppf (to_string t)

let factorial n =
  if n < 0 then invalid_arg "Bignat.factorial: negative";
  let rec go acc i = if i > n then acc else go (mul_int acc i) (i + 1) in
  go one 1

(** Chunked, compactly-encoded FIFO of ints for BFS frontiers.

    The attack searches queue interned state ids — small ints — and a
    boxed queue spends an order of magnitude more memory on cells and
    tuples than the payload needs.  A [Frontier.t] varint-packs pushed
    ints into fixed-size {!Codec} chunks and recycles each chunk once
    drained, so steady-state BFS traffic costs ~1–2 bytes per id and
    reuses a small rotating pool of buffers instead of allocating per
    node.  FIFO order is preserved exactly; the joint searches push and
    pop ids in pairs via {!push2}/{!pop2}. *)

type t

val create : ?chunk_bytes:int -> unit -> t
(** Fresh empty frontier; chunks hold [chunk_bytes] (default 8192)
    bytes of encoded ids before rotating. *)

val is_empty : t -> bool

val length : t -> int
(** Number of ints currently queued. *)

val push : t -> int -> unit

val pop : t -> int
(** Dequeue the oldest int.
    @raise Invalid_argument when empty. *)

val push2 : t -> int -> int -> unit
(** Enqueue a pair (first then second) — the joint-key convenience. *)

val pop2 : t -> int * int
(** Dequeue a pair pushed by {!push2}. *)

val clear : t -> unit
(** Drop all queued ints, keeping the chunk pool for reuse. *)

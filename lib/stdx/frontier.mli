(** Chunked, compactly-encoded FIFO of ints for BFS frontiers, with an
    optional disk-spill mode for out-of-core searches.

    The attack searches queue interned state ids — small ints — and a
    boxed queue spends an order of magnitude more memory on cells and
    tuples than the payload needs.  A [Frontier.t] varint-packs pushed
    ints into fixed-size {!Codec} chunks and recycles each chunk once
    drained (through a bounded free pool), so steady-state BFS traffic
    costs ~1–2 bytes per id and reuses a small rotating pool of buffers
    instead of allocating per node.  FIFO order is preserved exactly;
    the joint searches push and pop ids in pairs via {!push2}/{!pop2}.

    With [mem_budget_bytes] set, the frontier becomes memory-oblivious:
    once keeping another chunk resident would exceed the budget, full
    chunks are appended verbatim to an unlinked temp file and paged
    back in FIFO order on demand.  The pop sequence is bit-identical to
    the unbounded frontier's — spilling changes where bytes live, never
    what they decode to — and {!stats} exposes the counters that let
    callers assert the budget actually held. *)

type t

type stats = {
  peak_bytes : int;
      (** Peak encoded bytes queued at once, resident or spilled.
          Budget-invariant: identical for spilled and in-memory runs. *)
  peak_len : int;
      (** Peak number of ints queued at once.  Budget-invariant. *)
  peak_resident_bytes : int;
      (** Peak in-memory chunk-pool footprint (capacity of the read and
          write chunks plus pending and free resident chunks).  Under a
          budget this stays ≤ [max mem_budget_bytes (2 * chunk
          capacity)] — the read and write chunks are always resident. *)
  spilled_bytes : int;  (** Total bytes ever written to the spill file. *)
  spill_chunks : int;  (** Chunks ever written to the spill file. *)
}

val create : ?chunk_bytes:int -> ?mem_budget_bytes:int -> unit -> t
(** Fresh empty frontier; chunks hold [chunk_bytes] (default 8192)
    bytes of encoded ids before rotating.  [mem_budget_bytes] bounds
    the resident chunk pool: [0] (the default) never spills; any
    positive budget spills full chunks to an unlinked temp file once
    the resident pool would outgrow [max mem_budget_bytes (2 * chunk
    capacity)].  The spill file is opened lazily on first spill and
    needs no fsync — it never has to survive the process. *)

val is_empty : t -> bool

val length : t -> int
(** Number of ints currently queued. *)

val push : t -> int -> unit

val pop : t -> int
(** Dequeue the oldest int.
    @raise Invalid_argument when empty. *)

val push2 : t -> int -> int -> unit
(** Enqueue a pair (first then second) — the joint-key convenience. *)

val pop2 : t -> int * int
(** Dequeue a pair pushed by {!push2}. *)

val clear : t -> unit
(** Drop all queued ints, keeping the chunk pool (and the spill file
    descriptor, its write offset rewound) for reuse. *)

val close : t -> unit
(** {!clear}, then release the spill file descriptor if one was ever
    opened.  Idempotent; a no-op for frontiers that never spilled.
    Because the file is unlinked at creation, a missed [close] costs an
    fd until process exit, never disk space afterwards. *)

val stats : t -> stats
(** Lifetime counters; see {!type-stats}.  Cheap — a record copy. *)

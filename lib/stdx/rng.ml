type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

(* Pure indexed splitting: the child stream is a function of the
   parent's *current* state and the index alone — the parent is not
   advanced — so [split base i] is the same generator no matter how
   many other children were split off first, or on which domain.  The
   double mix decorrelates children whose pre-mix states differ by a
   small multiple of the golden gamma. *)
let split t i =
  let base = Int64.add t.state (Int64.mul (Int64.of_int (i + 1)) golden_gamma) in
  { state = mix (Int64.add (mix base) golden_gamma) }

let int t n =
  assert (n > 0);
  (* Rejection-free for our purposes: modulo bias is negligible for the
     small ranges used in simulation (n << 2^62).  Shift by 2 so the
     value fits OCaml's 63-bit int without touching the sign bit. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod n

let bool t = Int64.logand (bits64 t) 1L = 1L

let float t =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  v /. 9007199254740992.0 (* 2^53 *)

let pick t xs =
  match xs with
  | [] -> invalid_arg "Rng.pick: empty list"
  | _ -> List.nth xs (int t (List.length xs))

let pick_weighted t choices =
  let total = List.fold_left (fun acc (_, w) -> acc + w) 0 choices in
  if total <= 0 then invalid_arg "Rng.pick_weighted: non-positive total weight";
  let target = int t total in
  let rec go acc = function
    | [] -> invalid_arg "Rng.pick_weighted: unreachable"
    | (x, w) :: rest -> if target < acc + w then x else go (acc + w) rest
  in
  go 0 choices

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let schema_version = 1

type align = Left | Right

type cell =
  | Int of int
  | Float of { value : float; decimals : int }
  | Bool of bool
  | String of string
  | Bignat of Bignat.t

type column = { header : string; align : align; unit_ : string option }

type row = Cells of cell list | Separator

type table = { title : string; columns : column list; rows : row list }

type item =
  | Table of table
  | Metrics of { title : string option; pairs : (string * cell) list }
  | Text of string
  | Section of { heading : string; items : item list }

type t = {
  id : string;
  title : string;
  ok : bool option;
  notes : string list;
  items : item list;
}

(* ------------------------- construction ------------------------- *)

let int n = Int n
let float ?(decimals = 2) value = Float { value; decimals }
let bool b = Bool b
let str s = String s
let bignat b = Bignat b

let column ?unit_ ?(align = Left) header = { header; align; unit_ }

let make ~id ~title ?ok ?(notes = []) items = { id; title; ok; notes; items }

type builder = {
  b_title : string;
  b_columns : column list;
  mutable b_rows : row list; (* reversed *)
}

let table_cols ~title columns = { b_title = title; b_columns = columns; b_rows = [] }

let table ~title cols =
  table_cols ~title (List.map (fun (header, align) -> column ~align header) cols)

let row b cells =
  if List.length cells <> List.length b.b_columns then
    invalid_arg "Report.row: arity mismatch";
  b.b_rows <- Cells cells :: b.b_rows

let sep b = b.b_rows <- Separator :: b.b_rows

let finish b = Table { title = b.b_title; columns = b.b_columns; rows = List.rev b.b_rows }

(* ------------------------- text renderer ------------------------- *)

let cell_text = function
  | Int n -> string_of_int n
  | Float { value; decimals } -> Printf.sprintf "%.*f" decimals value
  | Bool b -> if b then "yes" else "no"
  | String s -> s
  | Bignat b -> Bignat.to_string b

(* Byte-for-byte the old [Tabular.render]: the EXPERIMENTS.md tables
   and the engine-baseline text output must not move. *)
let table_to_text (t : table) =
  let headers = List.map (fun c -> c.header) t.columns in
  let aligns = List.map (fun c -> c.align) t.columns in
  let widths = Array.of_list (List.map String.length headers) in
  let note_row = function
    | Separator -> ()
    | Cells cells ->
        List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length (cell_text c))) cells
  in
  List.iter note_row t.rows;
  let pad align width s =
    let gap = width - String.length s in
    match align with
    | Left -> s ^ String.make gap ' '
    | Right -> String.make gap ' ' ^ s
  in
  let buf = Buffer.create 256 in
  let rule () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let line cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i c ->
        let align = List.nth aligns i in
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad align widths.(i) c);
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  rule ();
  line headers;
  rule ();
  List.iter
    (function Cells cells -> line (List.map cell_text cells) | Separator -> rule ())
    t.rows;
  rule ();
  Buffer.contents buf

let rec item_to_text = function
  | Table t -> table_to_text t
  | Metrics { title; pairs } ->
      let buf = Buffer.create 64 in
      Option.iter
        (fun t ->
          Buffer.add_string buf t;
          Buffer.add_char buf '\n')
        title;
      List.iter
        (fun (k, v) ->
          Buffer.add_string buf "  ";
          Buffer.add_string buf k;
          Buffer.add_string buf ": ";
          Buffer.add_string buf (cell_text v);
          Buffer.add_char buf '\n')
        pairs;
      Buffer.contents buf
  | Text s -> if s = "" || s.[String.length s - 1] = '\n' then s else s ^ "\n"
  | Section { heading; items } ->
      heading ^ "\n" ^ String.concat "\n" (List.map item_to_text items)

let to_text_body r = String.concat "\n" (List.map item_to_text r.items)

let to_text r =
  let verdict =
    match r.ok with Some true -> " [ok]" | Some false -> " [FAILED]" | None -> ""
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "== %s: %s%s\n" r.id r.title verdict);
  Buffer.add_string buf (to_text_body r);
  List.iter (fun n -> Buffer.add_string buf (Printf.sprintf "note: %s\n" n)) r.notes;
  Buffer.contents buf

(* ------------------------- JSON renderer ------------------------- *)

let json_of_cell = function
  | Int n -> Json.Obj [ ("type", Json.String "int"); ("value", Json.Int n) ]
  | Float { value; decimals } ->
      Json.Obj
        [
          ("type", Json.String "float");
          ("value", if Float.is_finite value then Json.Float value else Json.Null);
          ("decimals", Json.Int decimals);
        ]
  | Bool b -> Json.Obj [ ("type", Json.String "bool"); ("value", Json.Bool b) ]
  | String s -> Json.Obj [ ("type", Json.String "string"); ("value", Json.String s) ]
  | Bignat b ->
      Json.Obj [ ("type", Json.String "bignat"); ("value", Json.String (Bignat.to_string b)) ]

let json_of_column c =
  Json.Obj
    [
      ("header", Json.String c.header);
      ("align", Json.String (match c.align with Left -> "left" | Right -> "right"));
      ("unit", match c.unit_ with Some u -> Json.String u | None -> Json.Null);
    ]

let json_of_row = function
  | Separator -> Json.Obj [ ("kind", Json.String "separator") ]
  | Cells cells ->
      Json.Obj
        [ ("kind", Json.String "cells"); ("cells", Json.List (List.map json_of_cell cells)) ]

let rec json_of_item = function
  | Table t ->
      Json.Obj
        [
          ("kind", Json.String "table");
          ("title", Json.String t.title);
          ("columns", Json.List (List.map json_of_column t.columns));
          ("rows", Json.List (List.map json_of_row t.rows));
        ]
  | Metrics { title; pairs } ->
      Json.Obj
        [
          ("kind", Json.String "metrics");
          ("title", match title with Some t -> Json.String t | None -> Json.Null);
          ( "pairs",
            Json.List
              (List.map
                 (fun (k, v) ->
                   Json.Obj [ ("key", Json.String k); ("value", json_of_cell v) ])
                 pairs) );
        ]
  | Text s -> Json.Obj [ ("kind", Json.String "text"); ("text", Json.String s) ]
  | Section { heading; items } ->
      Json.Obj
        [
          ("kind", Json.String "section");
          ("heading", Json.String heading);
          ("items", Json.List (List.map json_of_item items));
        ]

let to_json r =
  Json.Obj
    [
      ("schema_version", Json.Int schema_version);
      ("id", Json.String r.id);
      ("title", Json.String r.title);
      ("ok", match r.ok with Some b -> Json.Bool b | None -> Json.Null);
      ("notes", Json.List (List.map (fun n -> Json.String n) r.notes));
      ("items", Json.List (List.map json_of_item r.items));
    ]

let set_to_json reports =
  Json.Obj
    [
      ("schema_version", Json.Int schema_version);
      ("kind", Json.String "report-set");
      ("reports", Json.List (List.map to_json reports));
    ]

(* ------------------------- JSON reader ------------------------- *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let field name j =
  match Json.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let as_string what = function
  | Json.String s -> Ok s
  | _ -> Error (Printf.sprintf "%s: expected a string" what)

let as_int what = function
  | Json.Int n -> Ok n
  | _ -> Error (Printf.sprintf "%s: expected an integer" what)

let as_list what = function
  | Json.List l -> Ok l
  | _ -> Error (Printf.sprintf "%s: expected a list" what)

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let cell_of_json j =
  let* ty = field "type" j in
  let* ty = as_string "cell type" ty in
  let* v = field "value" j in
  match (ty, v) with
  | "int", Json.Int n -> Ok (Int n)
  | "float", (Json.Float _ | Json.Int _ | Json.Null) ->
      let value =
        match v with
        | Json.Float f -> f
        | Json.Int n -> float_of_int n
        | _ -> Float.nan
      in
      let* d = field "decimals" j in
      let* decimals = as_int "decimals" d in
      Ok (Float { value; decimals })
  | "bool", Json.Bool b -> Ok (Bool b)
  | "string", Json.String s -> Ok (String s)
  | "bignat", Json.String s -> (
      match Bignat.of_string s with
      | Some b -> Ok (Bignat b)
      | None -> Error (Printf.sprintf "bignat cell: bad digits %S" s))
  | ty, _ -> Error (Printf.sprintf "cell: bad type/value combination for %S" ty)

let column_of_json j =
  let* h = field "header" j in
  let* header = as_string "column header" h in
  let* a = field "align" j in
  let* align =
    match a with
    | Json.String "left" -> Ok Left
    | Json.String "right" -> Ok Right
    | _ -> Error "column align: expected \"left\" or \"right\""
  in
  let* unit_ =
    match Json.member "unit" j with
    | Some (Json.String u) -> Ok (Some u)
    | Some Json.Null | None -> Ok None
    | Some _ -> Error "column unit: expected a string or null"
  in
  Ok { header; align; unit_ }

let row_of_json j =
  let* k = field "kind" j in
  let* kind = as_string "row kind" k in
  match kind with
  | "separator" -> Ok Separator
  | "cells" ->
      let* cs = field "cells" j in
      let* cs = as_list "row cells" cs in
      let* cells = map_result cell_of_json cs in
      Ok (Cells cells)
  | k -> Error (Printf.sprintf "row: unknown kind %S" k)

let rec item_of_json j =
  let* k = field "kind" j in
  let* kind = as_string "item kind" k in
  match kind with
  | "table" ->
      let* t = field "title" j in
      let* title = as_string "table title" t in
      let* cs = field "columns" j in
      let* cs = as_list "table columns" cs in
      let* columns = map_result column_of_json cs in
      let* rs = field "rows" j in
      let* rs = as_list "table rows" rs in
      let* rows = map_result row_of_json rs in
      Ok (Table { title; columns; rows })
  | "metrics" ->
      let* title =
        match Json.member "title" j with
        | Some (Json.String t) -> Ok (Some t)
        | Some Json.Null | None -> Ok None
        | Some _ -> Error "metrics title: expected a string or null"
      in
      let* ps = field "pairs" j in
      let* ps = as_list "metrics pairs" ps in
      let* pairs =
        map_result
          (fun p ->
            let* k = field "key" p in
            let* key = as_string "pair key" k in
            let* v = field "value" p in
            let* value = cell_of_json v in
            Ok (key, value))
          ps
      in
      Ok (Metrics { title; pairs })
  | "text" ->
      let* t = field "text" j in
      let* text = as_string "text item" t in
      Ok (Text text)
  | "section" ->
      let* h = field "heading" j in
      let* heading = as_string "section heading" h in
      let* is = field "items" j in
      let* is = as_list "section items" is in
      let* items = map_result item_of_json is in
      Ok (Section { heading; items })
  | k -> Error (Printf.sprintf "item: unknown kind %S" k)

let of_json j =
  let* v = field "schema_version" j in
  let* v = as_int "schema_version" v in
  if v <> schema_version then
    Error (Printf.sprintf "unsupported schema_version %d (expected %d)" v schema_version)
  else
    let* id = field "id" j in
    let* id = as_string "id" id in
    let* title = field "title" j in
    let* title = as_string "title" title in
    let* ok =
      match Json.member "ok" j with
      | Some (Json.Bool b) -> Ok (Some b)
      | Some Json.Null -> Ok None
      | Some _ -> Error "ok: expected a boolean or null"
      | None -> Error "missing field \"ok\""
    in
    let* notes = field "notes" j in
    let* notes = as_list "notes" notes in
    let* notes = map_result (as_string "note") notes in
    let* items = field "items" j in
    let* items = as_list "items" items in
    let* items = map_result item_of_json items in
    Ok { id; title; ok; notes; items }

let set_of_json j =
  match Json.member "kind" j with
  | Some (Json.String "report-set") ->
      let* v = field "schema_version" j in
      let* v = as_int "schema_version" v in
      if v <> schema_version then
        Error (Printf.sprintf "unsupported schema_version %d (expected %d)" v schema_version)
      else
        let* rs = field "reports" j in
        let* rs = as_list "reports" rs in
        map_result of_json rs
  | Some _ | None ->
      let* r = of_json j in
      Ok [ r ]

(* ------------------------- CSV renderer ------------------------- *)

let csv_quote s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let to_csv r =
  let buf = Buffer.create 512 in
  let line cells = Buffer.add_string buf (String.concat "," (List.map csv_quote cells) ^ "\n") in
  Buffer.add_string buf (Printf.sprintf "# report: %s: %s\n" r.id r.title);
  (match r.ok with
  | Some b -> Buffer.add_string buf (Printf.sprintf "# ok: %s\n" (if b then "yes" else "no"))
  | None -> ());
  List.iter (fun n -> Buffer.add_string buf (Printf.sprintf "# note: %s\n" n)) r.notes;
  let rec item = function
    | Table t ->
        Buffer.add_string buf (Printf.sprintf "# table: %s\n" t.title);
        line
          (List.map
             (fun c ->
               match c.unit_ with Some u -> c.header ^ " (" ^ u ^ ")" | None -> c.header)
             t.columns);
        List.iter
          (function Cells cells -> line (List.map cell_text cells) | Separator -> ())
          t.rows
    | Metrics { title; pairs } ->
        Buffer.add_string buf
          (Printf.sprintf "# metrics%s\n"
             (match title with Some t -> ": " ^ t | None -> ""));
        List.iter (fun (k, v) -> line [ k; cell_text v ]) pairs
    | Text s -> Buffer.add_string buf (Printf.sprintf "# %s\n" s)
    | Section { heading; items } ->
        Buffer.add_string buf (Printf.sprintf "# section: %s\n" heading);
        List.iter item items
  in
  List.iter item r.items;
  Buffer.contents buf

let validate_artifact s =
  let* j = Json.parse s in
  let* reports = set_of_json j in
  (* The round-trip is part of the contract: anything we accept must
     re-serialize to the same artifact shape. *)
  let* reparsed = set_of_json (set_to_json reports) in
  if List.length reparsed <> List.length reports then Error "round-trip changed report count"
  else Ok (List.length reports)

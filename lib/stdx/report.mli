(** Typed report intermediate representation.

    Every table, metric set, and verdict the reproduction produces —
    the E1–E12 experiment tables, verify/attack/census/bounds/proba
    reports, and the bench timings — is built as a value of this IR
    and only then rendered.  Three renderers share the one
    representation:

    - {b text} ({!to_text_body}): ASCII boxes pixel-compatible with
      the original {!Tabular} renderer, so EXPERIMENTS.md diffs stay
      reviewable and the engine-baseline output is byte-identical;
    - {b JSON} ({!to_json} / {!of_json}): a stable, versioned schema
      ({!schema_version}) suitable for [--json PATH] artifacts, CI
      regression gates, and downstream tooling;
    - {b CSV} ({!to_csv}): flat table exports.

    The JSON renderer round-trips: [of_json (to_json r)] recovers [r]
    exactly, and rendering again is a fixpoint — the property the
    golden schema tests pin so the schema cannot drift silently. *)

val schema_version : int
(** Version stamp written into (and required from) every artifact. *)

type align = Left | Right

type cell =
  | Int of int
  | Float of { value : float; decimals : int }
      (** [decimals] is display precision for the text renderer; JSON
          carries the full value *)
  | Bool of bool
  | String of string
  | Bignat of Bignat.t

type column = {
  header : string;
  align : align;
  unit_ : string option;  (** e.g. ["ns"]; carried in JSON/CSV only *)
}

type row = Cells of cell list | Separator

type table = { title : string; columns : column list; rows : row list }

type item =
  | Table of table
  | Metrics of { title : string option; pairs : (string * cell) list }
  | Text of string
  | Section of { heading : string; items : item list }

type t = {
  id : string;  (** stable producer id: "E1" … "E12", "verify", "attack", … *)
  title : string;
  ok : bool option;
      (** the report's verdict envelope; [None] when the producer has
          no pass/fail notion (e.g. the alpha table) *)
  notes : string list;
  items : item list;
}

(* ------------------------- construction ------------------------- *)

val int : int -> cell
val float : ?decimals:int -> float -> cell
(** [decimals] defaults to 2, matching [Tabular.cell_float]. *)

val bool : bool -> cell
val str : string -> cell
val bignat : Bignat.t -> cell

val column : ?unit_:string -> ?align:align -> string -> column

val make : id:string -> title:string -> ?ok:bool -> ?notes:string list -> item list -> t

type builder
(** Mutable table accumulation, mirroring the old [Tabular] API so
    producers stay a mechanical translation. *)

val table : title:string -> (string * align) list -> builder
val table_cols : title:string -> column list -> builder
val row : builder -> cell list -> unit
(** @raise Invalid_argument on arity mismatch with the header. *)

val sep : builder -> unit
val finish : builder -> item

(* ------------------------- renderers ------------------------- *)

val cell_text : cell -> string
(** The text renderer's cell formatting: ["yes"]/["no"] booleans,
    [%.*f] floats, decimal bignats. *)

val table_to_text : table -> string
(** Byte-identical to [Tabular.render] on the same content. *)

val to_text_body : t -> string
(** The report's items rendered to text, joined with newlines — for
    experiment reports this is exactly the pre-IR [table] string. *)

val to_text : t -> string
(** Header line ([== id: title [ok]]), body, and notes — the full
    human-facing report. *)

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result

val set_to_json : t list -> Json.t
(** Multi-report artifact: [{schema_version; kind = "report-set";
    reports}] — what [stp experiments --json] writes. *)

val set_of_json : Json.t -> (t list, string) result
(** Accepts both a single report object and a report-set. *)

val to_csv : t -> string
(** Flat export: [# ]-prefixed context lines, then one header+rows
    block per table and [key,value] lines per metric set. *)

val validate_artifact : string -> (int, string) result
(** Parse and schema-check a serialized artifact (single report or
    report-set).  Returns the number of reports on success — the CI
    [report-schema] gate. *)

type t = { mutable buf : Bytes.t; mutable len : int }

let create ?(size = 64) () = { buf = Bytes.create (max 1 size); len = 0 }

let reset t = t.len <- 0

let length t = t.len

let buffer t = t.buf

let ensure t extra =
  let need = t.len + extra in
  let cap = Bytes.length t.buf in
  if need > cap then begin
    let cap' = ref (2 * cap) in
    while need > !cap' do
      cap' := 2 * !cap'
    done;
    let grown = Bytes.create !cap' in
    Bytes.blit t.buf 0 grown 0 t.len;
    t.buf <- grown
  end

let set_length t len =
  if len < 0 then invalid_arg "Codec.set_length: negative length";
  if len > t.len then ensure t (len - t.len);
  t.len <- len

let add_char t c =
  ensure t 1;
  Bytes.unsafe_set t.buf t.len c;
  t.len <- t.len + 1

let add_byte t b = add_char t (Char.unsafe_chr (b land 0xff))

(* Zigzag folds the sign into the low bit ([0, -1, 1, -2, …] ↦
   [0, 1, 2, 3, …]); LEB128 then spends one byte per 7 significant
   bits.  [lsr] in the loop keeps the folded value non-negative, so
   the loop terminates for every int. *)
let add_varint t n =
  let z = ref ((n lsl 1) lxor (n asr (Sys.int_size - 1))) in
  ensure t 10;
  let continue = ref true in
  while !continue do
    if !z land lnot 0x7f = 0 then begin
      Bytes.unsafe_set t.buf t.len (Char.unsafe_chr !z);
      t.len <- t.len + 1;
      continue := false
    end
    else begin
      Bytes.unsafe_set t.buf t.len (Char.unsafe_chr (0x80 lor (!z land 0x7f)));
      t.len <- t.len + 1;
      z := !z lsr 7
    end
  done

let add_substring t s pos len =
  ensure t len;
  Bytes.blit_string s pos t.buf t.len len;
  t.len <- t.len + len

let add_blob t s =
  add_varint t (String.length s);
  add_substring t s 0 (String.length s)

let contents t = Bytes.sub_string t.buf 0 t.len

let varint_at s off =
  let n = String.length s in
  let rec go z shift off =
    if off >= n then invalid_arg "Codec.varint_at: truncated varint"
    else begin
      let b = Char.code (String.unsafe_get s off) in
      let z = z lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then ((z lsr 1) lxor (-(z land 1)), off + 1)
      else go z (shift + 7) (off + 1)
    end
  in
  go 0 0 off

let varint_at_bytes b off =
  let n = Bytes.length b in
  let rec go z shift off =
    if off >= n then invalid_arg "Codec.varint_at_bytes: truncated varint"
    else begin
      let c = Char.code (Bytes.unsafe_get b off) in
      let z = z lor ((c land 0x7f) lsl shift) in
      if c land 0x80 = 0 then ((z lsr 1) lxor (-(z land 1)), off + 1)
      else go z (shift + 7) (off + 1)
    end
  in
  go 0 0 off

let blob_at s off =
  let len, off = varint_at s off in
  if len < 0 || off + len > String.length s then invalid_arg "Codec.blob_at: truncated blob"
  else (String.sub s off len, off + len)

(** Hash-consing of state fingerprints into compact integer ids.

    The state-space engines key their tables and queues on canonical
    encodings ({!Kernel.Global.emit} and friends).  Those fingerprints
    are long — they embed marshalled process states — so using them
    directly as hash keys means every lookup re-hashes the whole
    fingerprint and every comparison walks it.  An [Intern.t] assigns
    each distinct fingerprint a dense id ([0, 1, 2, …] in first-seen
    order); the searches then work over ints (or pairs of ints for
    joint states), touching the fingerprint bytes exactly once per
    distinct state.

    The hot entry point is {!intern_bytes}: the engine emits each
    generated state into a reusable {!Codec} buffer and interns the
    byte range in place — an already-seen state (the common case in a
    saturating BFS) costs one hash and one compare with no allocation;
    only a genuinely fresh state copies the range out to a stored
    string.

    Ids are stable for the lifetime of the table: interning the same
    fingerprint twice returns the same id, and [name] recovers the
    string (the round-trip the unit tests pin down).  A table is not
    thread-safe; the parallel sweeps in {!Core.Par} keep one table per
    task (or guard a shared one, as {!Core.Attack.Runstate} does). *)

type t

val create : ?size:int -> unit -> t
(** Fresh empty table.  [size] is the initial hash-table capacity
    (default 1024). *)

val intern : t -> string -> int * bool
(** [intern t s] returns [(id, fresh)]: the id for [s], allocating the
    next dense id when [s] is new ([fresh = true]).  The single-lookup
    combination of membership test and id allocation the BFS loops
    want. *)

val intern_bytes : t -> Bytes.t -> pos:int -> len:int -> int * bool
(** [intern_bytes t b ~pos ~len] interns the byte range
    [b[pos, pos+len)] — typically [Codec.buffer c, 0, Codec.length c]
    right after emitting a state.  Equivalent to
    [intern t (Bytes.sub_string b pos len)] but allocates nothing when
    the range was already interned.  The range is only read; the table
    keeps its own copy on a fresh insert.
    @raise Invalid_argument if the range exceeds [b]. *)

val id : t -> string -> int
(** [id t s = fst (intern t s)]. *)

val find_opt : t -> string -> int option
(** The id of [s] if already interned; never allocates. *)

val name : t -> int -> string
(** The string that was assigned this id.
    @raise Invalid_argument if the id was never allocated. *)

val length : t -> int
(** Number of distinct strings interned so far; also the next fresh
    id. *)

(** Hash-consing of string fingerprints into compact integer ids.

    The state-space engines key their tables and queues on canonical
    string encodings ({!Kernel.Global.encode} and friends).  Those
    strings are long — they embed marshalled process states — so using
    them directly as hash keys means every lookup re-hashes the whole
    fingerprint and every comparison walks it.  An [Intern.t] assigns
    each distinct string a dense id ([0, 1, 2, …] in first-seen
    order); the searches then work over ints (or pairs of ints for
    joint states), touching the string exactly once per distinct
    state.

    Ids are stable for the lifetime of the table: interning the same
    string twice returns the same id, and [name] recovers the string
    (the round-trip the unit tests pin down).  A table is not
    thread-safe; the parallel sweeps in {!Core.Par} keep one table per
    task. *)

type t

val create : ?size:int -> unit -> t
(** Fresh empty table.  [size] is the initial hash-table capacity
    (default 1024). *)

val intern : t -> string -> int * bool
(** [intern t s] returns [(id, fresh)]: the id for [s], allocating the
    next dense id when [s] is new ([fresh = true]).  The single-lookup
    combination of membership test and id allocation the BFS loops
    want. *)

val id : t -> string -> int
(** [id t s = fst (intern t s)]. *)

val find_opt : t -> string -> int option
(** The id of [s] if already interned; never allocates. *)

val name : t -> int -> string
(** The string that was assigned this id.
    @raise Invalid_argument if the id was never allocated. *)

val length : t -> int
(** Number of distinct strings interned so far; also the next fresh
    id. *)

(** Growable bit-packed sets of small non-negative integers.

    The state-space engines hand out dense ids ({!Intern}), and several
    passes then need a plain membership set over those ids — the SCC
    stack flags of the starvation analysis, the backward "can still
    complete" / "cap-tainted" markings of the recoverability pass.  A
    hash table spends ~3 words per member on boxing and bucket
    plumbing; a bitset spends one bit per id in a buffer the GC never
    scans.  Growth is by doubling, so membership far beyond the current
    capacity is cheap to ask ([mem] past the end is just [false]). *)

type t

val create : ?size:int -> unit -> t
(** Fresh empty set with initial capacity for ids in [\[0, size)]
    (default 1024).  The set grows transparently on [add]. *)

val mem : t -> int -> bool
(** Membership.  Never grows the set.
    @raise Invalid_argument on a negative id. *)

val add : t -> int -> bool
(** [add t i] inserts [i] and returns whether it was fresh — the
    combined test-and-set the visited-set loops want.
    @raise Invalid_argument on a negative id. *)

val remove : t -> int -> unit
(** Delete [i] if present; no-op otherwise.
    @raise Invalid_argument on a negative id. *)

val cardinal : t -> int
(** Number of members. *)

val clear : t -> unit
(** Empty the set, keeping the capacity. *)

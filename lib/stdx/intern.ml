(* Open-addressing hash-cons table.  The generic [Hashtbl] forced
   every probe to present a [string] key, which meant the engines had
   to materialise a fresh fingerprint string per *generated* state
   just to ask "seen before?".  This table hashes and compares
   directly against a caller-owned byte range, so a duplicate state
   (the overwhelmingly common case in a saturating BFS) costs one hash
   and one byte-compare — zero allocation. *)

type t = {
  mutable slots : int array;  (* id + 1; 0 = empty.  Power-of-two sized. *)
  mutable mask : int;  (* Array.length slots - 1 *)
  mutable hashes : int array;  (* hashes.(i) is the cached hash of names.(i) *)
  mutable names : string array;  (* names.(i) is the string with id i, for i < n *)
  mutable n : int;
}

let rec pow2_above k n = if n >= k then n else pow2_above k (2 * n)

let create ?(size = 1024) () =
  let cap = pow2_above (max 16 size) 16 in
  { slots = Array.make cap 0; mask = cap - 1; hashes = Array.make 64 0; names = Array.make 64 ""; n = 0 }

(* Polynomial rolling hash (Java-style 31x).  Collisions are resolved
   by the byte-compare below, so quality only affects probe lengths. *)
let hash_sub b pos len =
  let h = ref len in
  for i = pos to pos + len - 1 do
    h := (!h * 31) + Char.code (Bytes.unsafe_get b i)
  done;
  !h land max_int

let eq_sub name b pos len =
  String.length name = len
  &&
  let rec go i =
    i = len || (String.unsafe_get name i = Bytes.unsafe_get b (pos + i) && go (i + 1))
  in
  go 0

let grow_slots t =
  let cap = 2 * Array.length t.slots in
  let slots = Array.make cap 0 in
  let mask = cap - 1 in
  for id = 0 to t.n - 1 do
    let i = ref (t.hashes.(id) land mask) in
    while slots.(!i) <> 0 do
      i := (!i + 1) land mask
    done;
    slots.(!i) <- id + 1
  done;
  t.slots <- slots;
  t.mask <- mask

let grow_names t =
  let cap = Array.length t.names in
  let names = Array.make (2 * cap) "" in
  let hashes = Array.make (2 * cap) 0 in
  Array.blit t.names 0 names 0 cap;
  Array.blit t.hashes 0 hashes 0 cap;
  t.names <- names;
  t.hashes <- hashes

(* Core probe: find the id of [b[pos, pos+len)] or the empty slot
   where it belongs.  [alloc] decides whether a miss allocates the
   next dense id (copying the range to a fresh string) or reports
   absence. *)
let probe t b pos len ~alloc =
  let h = hash_sub b pos len in
  let i = ref (h land t.mask) in
  let found = ref (-1) in
  let continue = ref true in
  while !continue do
    let s = t.slots.(!i) in
    if s = 0 then continue := false
    else begin
      let id = s - 1 in
      if t.hashes.(id) = h && eq_sub t.names.(id) b pos len then begin
        found := id;
        continue := false
      end
      else i := (!i + 1) land t.mask
    end
  done;
  if !found >= 0 then (!found, false)
  else if not alloc then (-1, false)
  else begin
    let id = t.n in
    if id >= Array.length t.names then grow_names t;
    t.names.(id) <- Bytes.sub_string b pos len;
    t.hashes.(id) <- h;
    t.slots.(!i) <- id + 1;
    t.n <- id + 1;
    (* Resize at 50% load; re-probing is cheap with cached hashes. *)
    if 2 * t.n > Array.length t.slots then grow_slots t;
    (id, true)
  end

let intern_bytes t b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Intern.intern_bytes: range out of bounds";
  probe t b pos len ~alloc:true

(* [Bytes.unsafe_of_string] is a read-only borrow: [probe] never
   writes through it, and on a miss the stored name is a fresh
   [sub_string] copy. *)
let intern t s = probe t (Bytes.unsafe_of_string s) 0 (String.length s) ~alloc:true

let id t s = fst (intern t s)

let find_opt t s =
  match probe t (Bytes.unsafe_of_string s) 0 (String.length s) ~alloc:false with
  | -1, _ -> None
  | id, _ -> Some id

let name t i =
  if i < 0 || i >= t.n then invalid_arg (Printf.sprintf "Intern.name: id %d not allocated" i);
  t.names.(i)

let length t = t.n

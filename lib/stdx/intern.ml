type t = {
  ids : (string, int) Hashtbl.t;
  mutable names : string array;  (* names.(i) is the string with id i, for i < n *)
  mutable n : int;
}

let create ?(size = 1024) () = { ids = Hashtbl.create size; names = Array.make 64 ""; n = 0 }

let intern t s =
  match Hashtbl.find t.ids s with
  | id -> (id, false)
  | exception Not_found ->
      let id = t.n in
      Hashtbl.replace t.ids s id;
      let cap = Array.length t.names in
      if id >= cap then begin
        let grown = Array.make (2 * cap) "" in
        Array.blit t.names 0 grown 0 cap;
        t.names <- grown
      end;
      t.names.(id) <- s;
      t.n <- id + 1;
      (id, true)

let id t s = fst (intern t s)

let find_opt t s = Hashtbl.find_opt t.ids s

let name t i =
  if i < 0 || i >= t.n then invalid_arg (Printf.sprintf "Intern.name: id %d not allocated" i);
  t.names.(i)

let length t = t.n

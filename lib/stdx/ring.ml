type 'a t = { mutable buf : 'a array; mutable head : int; mutable len : int }

let create () = { buf = [||]; head = 0; len = 0 }

let is_empty t = t.len = 0

let length t = t.len

let grow t x =
  let cap = Array.length t.buf in
  if cap = 0 then t.buf <- Array.make 16 x
  else begin
    (* Unroll the circular contents to the front of a doubled buffer. *)
    let buf = Array.make (cap * 2) x in
    let tail = cap - t.head in
    Array.blit t.buf t.head buf 0 (min t.len tail);
    if t.len > tail then Array.blit t.buf 0 buf tail (t.len - tail);
    t.buf <- buf;
    t.head <- 0
  end

let push t x =
  if t.len = Array.length t.buf then grow t x;
  t.buf.((t.head + t.len) mod Array.length t.buf) <- x;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then invalid_arg "Ring.pop: empty";
  let v = t.buf.(t.head) in
  t.len <- t.len - 1;
  (* Point the vacated slot at the current head element so the ring
     never retains more than one stale value (the last pop before it
     goes empty); no option boxing, no dummy element. *)
  let head' = (t.head + 1) mod Array.length t.buf in
  if t.len > 0 then t.buf.(t.head) <- t.buf.(head');
  t.head <- head';
  v

let clear t =
  t.head <- 0;
  t.len <- 0;
  t.buf <- [||]

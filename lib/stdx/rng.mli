(** Deterministic pseudo-random number generation.

    All randomness in the repository flows through this module so that
    every simulation, adversary schedule, and experiment is reproducible
    bit-for-bit from a seed.  The generator is SplitMix64 (Steele,
    Lea & Flood, OOPSLA 2014): tiny state, excellent statistical
    quality for simulation purposes, and cheap splitting. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from [seed].  Equal seeds give
    equal streams. *)

val copy : t -> t
(** [copy t] is an independent generator that will replay exactly the
    stream [t] would have produced from this point. *)

val split : t -> int -> t
(** [split t i] derives the [i]-th child generator from [t]'s current
    state {e without advancing [t]}: the result depends only on the
    parent state and the index, so child [i] is the same stream
    whether the children are derived in order, out of order, or on
    different domains — the property that makes the soak runner's
    per-plan streams bit-identical at every job count.  Distinct
    indices give statistically independent streams. *)

val bits64 : t -> int64
(** [bits64 t] is the next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)].  Requires [n > 0]. *)

val bool : t -> bool
(** [bool t] is a fair coin flip. *)

val float : t -> float
(** [float t] is uniform in [\[0, 1)]. *)

val pick : t -> 'a list -> 'a
(** [pick t xs] is a uniformly random element of [xs].
    Requires [xs] non-empty. *)

val pick_weighted : t -> ('a * int) list -> 'a
(** [pick_weighted t choices] picks proportionally to the attached
    non-negative integer weights.  Requires total weight positive. *)

val shuffle : t -> 'a array -> unit
(** [shuffle t a] permutes [a] in place, uniformly (Fisher–Yates). *)

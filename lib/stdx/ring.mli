(** Mutable FIFO over a growable circular array.

    The BFS frontiers used to live in [Stdlib.Queue], which allocates a
    three-word cons cell per enqueue (plus the tuple when the payload
    is a pair).  A ring buffer stores the elements flat: pushes write
    into a doubling array, pops read from the head, and steady-state
    traffic allocates nothing.  Not thread-safe — each search owns its
    frontier. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> 'a -> unit
(** Enqueue at the back; amortised O(1). *)

val pop : 'a t -> 'a
(** Dequeue from the front.
    @raise Invalid_argument when empty. *)

val clear : 'a t -> unit
(** Drop all elements and the backing storage. *)

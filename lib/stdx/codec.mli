(** A reusable grow-only binary writer for state fingerprints.

    The state-space engines fingerprint millions of generated states;
    building each fingerprint as a fresh [string] (the old
    [Marshal]-and-[String.concat] pipeline) made the encoder the
    dominant allocator of the whole search.  A [Codec.t] is a single
    growable [Bytes] buffer the engine owns for the lifetime of a
    search: each state is emitted into it ([reset] + component [add_*]
    calls) and then hash-consed directly from the buffer
    ({!Intern.intern_bytes}), so no intermediate string is ever
    materialised for an already-seen state.

    The format is self-delimiting and injective by construction:
    integers are zigzag-LEB128 varints, strings are length-prefixed
    blobs.  Concatenating the emissions of two equal component
    sequences yields equal bytes, and of two differing sequences
    differing bytes — the property the qcheck suite pins against the
    semantic component-tuple equality. *)

type t

val create : ?size:int -> unit -> t
(** Fresh writer with an initial capacity of [size] bytes
    (default 64).  The buffer grows by doubling and never shrinks. *)

val reset : t -> unit
(** Forget the contents, keep the capacity — the once-per-state call
    in the engine hot loops. *)

val length : t -> int
(** Bytes written since the last [reset]. *)

val buffer : t -> Bytes.t
(** The underlying buffer; valid on [0, length t).  Borrowed, not
    copied: it is invalidated by the next [add_*] call that grows the
    writer.  Intended for {!Intern.intern_bytes}. *)

val set_length : t -> int -> unit
(** Declare [len] bytes of the buffer valid, growing capacity if
    needed.  Bytes between the old and new length are unspecified
    until the caller overwrites them — this is the page-in seam for
    {!Frontier}'s spill reader, which reads a stored chunk straight
    into {!buffer}.
    @raise Invalid_argument on a negative length. *)

val add_byte : t -> int -> unit
(** Append one raw byte (the low 8 bits of the argument). *)

val add_char : t -> char -> unit

val add_varint : t -> int -> unit
(** Append an integer as a zigzag-LEB128 varint: small magnitudes
    (of either sign) take one byte, and the encoding is a prefix code
    — no terminator or length needed. *)

val add_blob : t -> string -> unit
(** Append a string as a varint length prefix followed by the raw
    bytes.  Self-delimiting, so mixed [add_blob]/[add_varint]
    sequences are unambiguous. *)

val add_substring : t -> string -> int -> int -> unit
(** [add_substring t s pos len] appends raw bytes without a length
    prefix — for callers that have already emitted their own framing. *)

val contents : t -> string
(** Copy out the written bytes as a fresh string.  Only for
    compatibility paths ({!Kernel.Global.encode}); the engines use
    [buffer]/[length] instead. *)

(** {2 Readers}

    Decoding is only needed by tests and the bench/perf tooling; the
    engines treat fingerprints as opaque.  Offsets index into a
    string produced by [contents]. *)

val varint_at : string -> int -> int * int
(** [varint_at s off] decodes the varint at [off]; returns
    [(value, next_offset)].
    @raise Invalid_argument on a truncated varint. *)

val varint_at_bytes : Bytes.t -> int -> int * int
(** Like {!varint_at} but reads a live writer's {!buffer} in place —
    the {!Frontier} decode path, which must not copy the chunk out. *)

val blob_at : string -> int -> string * int
(** Decode a length-prefixed blob; returns [(blob, next_offset)].
    @raise Invalid_argument on a truncated blob. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------- printing ------------------------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Shortest of the standard precisions that round-trips the double, so
   printing is a pure function of the value and re-parsing recovers it
   exactly — both halves of the fixpoint the tests pin. *)
let float_repr f =
  let try_prec p =
    let s = Printf.sprintf "%.*g" p f in
    if float_of_string s = f then Some s else None
  in
  let s =
    match try_prec 12 with
    | Some s -> s
    | None -> ( match try_prec 15 with Some s -> s | None -> Printf.sprintf "%.17g" f)
  in
  (* Keep the token in the number grammar: "3" would re-parse as Int. *)
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E' || c = 'n') s then s else s ^ ".0"

let rec write buf ~indent v =
  let pad n = String.make n ' ' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (float_repr f)
      else Buffer.add_string buf "null"
  | String s -> escape buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_string buf "[";
      List.iteri
        (fun i item ->
          Buffer.add_string buf (if i = 0 then "\n" else ",\n");
          Buffer.add_string buf (pad (indent + 2));
          write buf ~indent:(indent + 2) item)
        items;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_string buf "{";
      List.iteri
        (fun i (k, item) ->
          Buffer.add_string buf (if i = 0 then "\n" else ",\n");
          Buffer.add_string buf (pad (indent + 2));
          escape buf k;
          Buffer.add_string buf ": ";
          write buf ~indent:(indent + 2) item)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf ~indent:0 v;
  Buffer.contents buf

(* ------------------------- parsing ------------------------- *)

exception Fail of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | Some _ | None -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected %C, found %C" c c')
    | None -> fail (Printf.sprintf "expected %C, found end of input" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let utf8_of_code buf code =
    (* Only the BMP; surrogate pairs in escapes are not emitted by our
       printer and are rejected here. *)
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> advance (); Buffer.add_char buf '"'; go ()
          | Some '\\' -> advance (); Buffer.add_char buf '\\'; go ()
          | Some '/' -> advance (); Buffer.add_char buf '/'; go ()
          | Some 'n' -> advance (); Buffer.add_char buf '\n'; go ()
          | Some 't' -> advance (); Buffer.add_char buf '\t'; go ()
          | Some 'r' -> advance (); Buffer.add_char buf '\r'; go ()
          | Some 'b' -> advance (); Buffer.add_char buf '\b'; go ()
          | Some 'f' -> advance (); Buffer.add_char buf '\012'; go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              let code =
                match int_of_string_opt ("0x" ^ hex) with
                | Some c -> c
                | None -> fail "bad \\u escape"
              in
              if code >= 0xd800 && code <= 0xdfff then fail "surrogate escapes unsupported";
              pos := !pos + 4;
              utf8_of_code buf code;
              go ()
          | Some c -> fail (Printf.sprintf "bad escape \\%C" c)
          | None -> fail "unterminated escape")
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | Some _ | None -> false) do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    let is_float = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok in
    if is_float then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" tok)
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> fail (Printf.sprintf "bad number %S" tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | Some c -> fail (Printf.sprintf "expected ',' or ']', found %C" c)
            | None -> fail "unterminated array"
          in
          List (items [])
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec fields acc =
            let kv = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (kv :: acc)
            | Some '}' ->
                advance ();
                List.rev (kv :: acc)
            | Some c -> fail (Printf.sprintf "expected ',' or '}', found %C" c)
            | None -> fail "unterminated object"
          in
          Obj (fields [])
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) -> Error (Printf.sprintf "json: at byte %d: %s" at msg)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool a, Bool b -> a = b
  | Int a, Int b -> a = b
  | Float a, Float b -> a = b || (Float.is_nan a && Float.is_nan b)
  | String a, String b -> String.equal a b
  | List a, List b -> List.length a = List.length b && List.for_all2 equal a b
  | Obj a, Obj b ->
      List.length a = List.length b
      && List.for_all2 (fun (ka, va) (kb, vb) -> String.equal ka kb && equal va vb) a b
  | (Null | Bool _ | Int _ | Float _ | String _ | List _ | Obj _), _ -> false

(** Minimal JSON values: the report artifacts' wire format.

    The repository's machine-readable artifacts (experiment reports,
    bench timings) are small and flat, so a dependency-free value type
    with a deterministic printer and a strict parser beats pulling in a
    json library.  The printer is stable: a given value always renders
    to the same bytes, and [to_string] ∘ [parse] is the identity on
    printer output — the round-trip property the golden schema tests
    pin. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list  (** key order is preserved verbatim *)

val to_string : t -> string
(** Deterministic, human-readable rendering (two-space indent).
    Non-finite floats render as [null] (JSON has no NaN/Inf). *)

val parse : string -> (t, string) result
(** Strict parser for the full JSON grammar.  Numbers without a
    fraction or exponent that fit in an OCaml [int] parse as [Int],
    everything else as [Float].  Errors carry a byte offset. *)

val member : string -> t -> t option
(** [member k (Obj ...)] is the value bound to [k], if any.  [None] on
    non-objects. *)

val equal : t -> t -> bool

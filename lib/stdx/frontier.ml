(* A FIFO of ints, varint-packed into a rotating pool of codec chunks,
   with an optional out-of-core spill mode.

   The joint attack BFS used to queue boxed [(int * int)] keys through
   [Stdlib.Queue]: six words of cell + tuple per enqueue, all of it
   minor-GC traffic scanned on every collection.  Here each pushed int
   is a zigzag varint appended to the current write chunk (typically
   1–2 bytes for interned ids); exhausted read chunks are reset and
   recycled as future write chunks, so a search's whole frontier
   traffic reuses a handful of fixed buffers.

   Spill mode makes the FIFO memory-oblivious: when keeping one more
   chunk resident would exceed [mem_budget_bytes], the full write
   chunk's bytes are appended to an anonymous temp file instead and a
   [Disk] marker takes its place in the pending ring.  Because chunks
   are written and consumed in strict FIFO order the file is purely
   sequential in both directions, and because a varint never straddles
   a chunk boundary (the rotation check runs before each append) a
   paged-in chunk decodes exactly like a resident one.  The file is
   unlinked the moment it is opened, so no failure path can leak it. *)

type entry = Mem of Codec.t | Disk of { off : int; len : int }

type stats = {
  peak_bytes : int;
  peak_len : int;
  peak_resident_bytes : int;
  spilled_bytes : int;
  spill_chunks : int;
}

type t = {
  chunk_bytes : int;  (* rotation threshold for the write chunk *)
  chunk_cap : int;  (* fixed chunk capacity: threshold + worst varint *)
  mem_budget : int;  (* resident-byte budget; 0 = never spill *)
  free_cap : int;  (* max drained chunks retained for reuse *)
  mutable rd : Codec.t;  (* chunk being consumed *)
  mutable rpos : int;  (* read offset into [rd] *)
  mutable wr : Codec.t;  (* chunk being filled; always distinct from [rd] *)
  pending : entry Ring.t;  (* full chunks between [rd] and [wr] *)
  mutable pending_mem : int;  (* [Mem] entries currently in [pending] *)
  mutable free : Codec.t list;  (* drained chunks awaiting reuse *)
  mutable free_n : int;
  mutable len : int;  (* ints stored *)
  mutable bytes : int;  (* encoded bytes stored (resident or spilled) *)
  mutable spill_fd : Unix.file_descr option;  (* lazily opened, unlinked *)
  mutable spill_woff : int;  (* next spill write offset *)
  mutable peak_bytes : int;
  mutable peak_len : int;
  mutable peak_resident : int;
  mutable spilled_bytes : int;
  mutable spill_chunks : int;
}

(* Chunks are sized so [add_varint]'s worst case (10 bytes) fits past
   the rotation threshold without growing the buffer — capacity is
   then a compile-time-constant per frontier, which keeps the resident
   accounting exact. *)
let cap_of chunk_bytes = chunk_bytes + 16

let create ?(chunk_bytes = 8192) ?(mem_budget_bytes = 0) () =
  let chunk_cap = cap_of chunk_bytes in
  {
    chunk_bytes;
    chunk_cap;
    mem_budget = mem_budget_bytes;
    free_cap = 8;
    rd = Codec.create ~size:chunk_cap ();
    rpos = 0;
    wr = Codec.create ~size:chunk_cap ();
    pending = Ring.create ();
    pending_mem = 0;
    free = [];
    free_n = 0;
    len = 0;
    bytes = 0;
    spill_fd = None;
    spill_woff = 0;
    peak_bytes = 0;
    peak_len = 0;
    peak_resident = 2 * chunk_cap;
    spilled_bytes = 0;
    spill_chunks = 0;
  }

let is_empty t = t.len = 0

let length t = t.len

let resident_chunks t = 2 + t.pending_mem + t.free_n

let note_resident t =
  let r = t.chunk_cap * resident_chunks t in
  if r > t.peak_resident then t.peak_resident <- r

let rec write_exact fd buf pos len =
  if len > 0 then begin
    let n = Unix.write fd buf pos len in
    write_exact fd buf (pos + n) (len - n)
  end

let rec read_exact fd buf pos len =
  if len > 0 then begin
    let n = Unix.read fd buf pos len in
    if n = 0 then invalid_arg "Frontier: truncated spill file";
    read_exact fd buf (pos + n) (len - n)
  end

let spill_file t =
  match t.spill_fd with
  | Some fd -> fd
  | None ->
      let path = Filename.temp_file "stp_frontier" ".spill" in
      let fd = Unix.openfile path [ Unix.O_RDWR ] 0o600 in
      (* Unlink immediately: the kernel reclaims the space when the fd
         closes (or the process exits), so no failure path leaks it. *)
      (try Sys.remove path with Sys_error _ -> ());
      t.spill_fd <- Some fd;
      fd

(* The write chunk is full.  Keep it resident when the budget allows
   (rotating it into [pending] and starting a fresh chunk), else spill
   its bytes to the file and reuse the same buffer — the resident set
   never grows past the point the budget was first hit. *)
let rotate_wr t =
  let must_spill =
    t.mem_budget > 0
    &&
    (* Keeping costs one more resident chunk unless a free one exists;
       [rd] + [wr] are always resident, so that is the budget floor. *)
    let keep = resident_chunks t + if t.free_n > 0 then 0 else 1 in
    keep * t.chunk_cap > max t.mem_budget (2 * t.chunk_cap)
  in
  if must_spill then begin
    let fd = spill_file t in
    let len = Codec.length t.wr in
    ignore (Unix.lseek fd t.spill_woff Unix.SEEK_SET);
    write_exact fd (Codec.buffer t.wr) 0 len;
    Ring.push t.pending (Disk { off = t.spill_woff; len });
    t.spill_woff <- t.spill_woff + len;
    t.spilled_bytes <- t.spilled_bytes + len;
    t.spill_chunks <- t.spill_chunks + 1;
    Codec.reset t.wr
  end
  else begin
    Ring.push t.pending (Mem t.wr);
    t.pending_mem <- t.pending_mem + 1;
    (match t.free with
    | c :: rest ->
        t.free <- rest;
        t.free_n <- t.free_n - 1;
        t.wr <- c
    | [] -> t.wr <- Codec.create ~size:t.chunk_cap ());
    note_resident t
  end

let push t v =
  if Codec.length t.wr >= t.chunk_bytes then rotate_wr t;
  let before = Codec.length t.wr in
  Codec.add_varint t.wr v;
  t.bytes <- t.bytes + (Codec.length t.wr - before);
  t.len <- t.len + 1;
  if t.bytes > t.peak_bytes then t.peak_bytes <- t.bytes;
  if t.len > t.peak_len then t.peak_len <- t.len

let free_chunk t c =
  Codec.reset c;
  if t.free_n < t.free_cap then begin
    t.free <- c :: t.free;
    t.free_n <- t.free_n + 1
  end
(* else drop it — the pool is bounded, so a drained sweep does not
   retain its worst-case chunk memory *)

(* [rd] is drained: move to the next chunk in FIFO order — the oldest
   pending chunk (paging it in from the spill file if it lives there),
   or the write chunk itself when nothing is pending. *)
let advance_rd t =
  Codec.reset t.rd;
  (if Ring.is_empty t.pending then begin
     let drained = t.rd in
     t.rd <- t.wr;
     t.wr <- drained
   end
   else
     match Ring.pop t.pending with
     | Mem c ->
         t.pending_mem <- t.pending_mem - 1;
         free_chunk t t.rd;
         t.rd <- c
     | Disk { off; len } ->
         (* Reuse [rd]'s own buffer as the page-in target; spilled
            chunks never exceed [chunk_cap], so this never grows. *)
         let fd =
           match t.spill_fd with Some fd -> fd | None -> assert false
         in
         Codec.set_length t.rd len;
         ignore (Unix.lseek fd off Unix.SEEK_SET);
         read_exact fd (Codec.buffer t.rd) 0 len);
  t.rpos <- 0

let pop t =
  if t.len = 0 then invalid_arg "Frontier.pop: empty";
  if t.rpos >= Codec.length t.rd then advance_rd t;
  let v, rpos = Codec.varint_at_bytes (Codec.buffer t.rd) t.rpos in
  t.bytes <- t.bytes - (rpos - t.rpos);
  t.rpos <- rpos;
  t.len <- t.len - 1;
  v

let push2 t a b =
  push t a;
  push t b

let pop2 t =
  let a = pop t in
  let b = pop t in
  (a, b)

let clear t =
  Codec.reset t.rd;
  Codec.reset t.wr;
  t.rpos <- 0;
  t.len <- 0;
  t.bytes <- 0;
  while not (Ring.is_empty t.pending) do
    match Ring.pop t.pending with
    | Mem c ->
        t.pending_mem <- t.pending_mem - 1;
        free_chunk t c
    | Disk _ -> ()
  done;
  (* Spilled extents are dead once dequeued from [pending]; rewind so
     the file space is reused rather than grown without bound. *)
  t.spill_woff <- 0

let close t =
  clear t;
  match t.spill_fd with
  | None -> ()
  | Some fd ->
      t.spill_fd <- None;
      (try Unix.close fd with Unix.Unix_error _ -> ())

let stats t =
  {
    peak_bytes = t.peak_bytes;
    peak_len = t.peak_len;
    peak_resident_bytes = t.peak_resident;
    spilled_bytes = t.spilled_bytes;
    spill_chunks = t.spill_chunks;
  }

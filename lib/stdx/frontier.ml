(* A FIFO of ints, varint-packed into a rotating pool of codec chunks.

   The joint attack BFS used to queue boxed [(int * int)] keys through
   [Stdlib.Queue]: six words of cell + tuple per enqueue, all of it
   minor-GC traffic scanned on every collection.  Here each pushed int
   is a zigzag varint appended to the current write chunk (typically
   1–2 bytes for interned ids); exhausted read chunks are reset and
   recycled as future write chunks, so a search's whole frontier
   traffic reuses a handful of fixed buffers. *)

type t = {
  chunk_bytes : int;
  mutable rd : Codec.t;  (* chunk being consumed *)
  mutable rpos : int;  (* read offset into [rd] *)
  mutable wr : Codec.t;  (* chunk being filled; always distinct from [rd] *)
  pending : Codec.t Ring.t;  (* full chunks between [rd] and [wr] *)
  mutable free : Codec.t list;  (* drained chunks awaiting reuse *)
  mutable len : int;  (* ints stored *)
}

let create ?(chunk_bytes = 8192) () =
  {
    chunk_bytes;
    rd = Codec.create ~size:chunk_bytes ();
    rpos = 0;
    wr = Codec.create ~size:chunk_bytes ();
    pending = Ring.create ();
    free = [];
    len = 0;
  }

let is_empty t = t.len = 0

let length t = t.len

let push t v =
  if Codec.length t.wr >= t.chunk_bytes then begin
    Ring.push t.pending t.wr;
    t.wr <-
      (match t.free with
      | c :: rest ->
          t.free <- rest;
          c
      | [] -> Codec.create ~size:t.chunk_bytes ())
  end;
  Codec.add_varint t.wr v;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then invalid_arg "Frontier.pop: empty";
  if t.rpos >= Codec.length t.rd then begin
    (* [rd] is drained: recycle it and move to the next chunk in FIFO
       order — the oldest pending chunk, or the write chunk itself when
       nothing is pending (then the roles swap). *)
    Codec.reset t.rd;
    if Ring.is_empty t.pending then begin
      let drained = t.rd in
      t.rd <- t.wr;
      t.wr <- drained
    end
    else begin
      t.free <- t.rd :: t.free;
      t.rd <- Ring.pop t.pending
    end;
    t.rpos <- 0
  end;
  let v, rpos = Codec.varint_at_bytes (Codec.buffer t.rd) t.rpos in
  t.rpos <- rpos;
  t.len <- t.len - 1;
  v

let push2 t a b =
  push t a;
  push t b

let pop2 t =
  let a = pop t in
  let b = pop t in
  (a, b)

let clear t =
  Codec.reset t.rd;
  Codec.reset t.wr;
  t.rpos <- 0;
  t.len <- 0;
  while not (Ring.is_empty t.pending) do
    let c = Ring.pop t.pending in
    Codec.reset c;
    t.free <- c :: t.free
  done

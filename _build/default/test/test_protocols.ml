(* Tests for every protocol in the zoo: positive correctness on the
   channel each targets, plus the designed-in failure modes. *)

module Chan = Channel.Chan
module Strategy = Kernel.Strategy
module Runner = Kernel.Runner
module Trace = Kernel.Trace
module Xset = Seqspace.Xset

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let seeds = [ 1; 2; 3; 4; 5 ]

let run_ok ?(max_steps = 20_000) p input strategy seed =
  let r =
    Runner.run p ~input:(Array.of_list input) ~strategy ~rng:(Stdx.Rng.create seed) ~max_steps
      ()
  in
  let trace = r.Runner.trace in
  (Trace.first_safety_violation trace = None, Trace.completed_at trace <> None, trace)

let assert_good ?max_steps p input strategy =
  List.iter
    (fun seed ->
      let safe, complete, trace = run_ok ?max_steps p input strategy seed in
      if not safe then
        Alcotest.failf "%s seed %d: unsafe (%a)" (Trace.protocol_name trace) seed
          Trace.pp_summary trace;
      if not complete then
        Alcotest.failf "%s seed %d: incomplete (%a)" (Trace.protocol_name trace) seed
          Trace.pp_summary trace)
    seeds

(* ------------------------- trivial ------------------------- *)

let test_trivial_perfect () =
  assert_good (Protocols.Trivial.protocol ~domain:4) [ 3; 1; 1; 0; 2 ] Strategy.round_robin

let test_trivial_empty_input () =
  assert_good (Protocols.Trivial.protocol ~domain:2) [] (Strategy.fair_random ())

(* ------------------------- norep (the paper's protocol) ------------------------- *)

let test_norep_dup_all_sequences_m3 () =
  let p = Protocols.Norep.dup ~m:3 in
  List.iter
    (fun input ->
      assert_good p input (Strategy.fair_random ());
      assert_good p input Strategy.round_robin;
      assert_good p input (Strategy.dup_flood ()))
    (Seqspace.Norep.enumerate ~m:3)

let test_norep_del_all_sequences_m3 () =
  let p = Protocols.Norep.del ~m:3 in
  List.iter
    (fun input ->
      assert_good p input (Strategy.fair_random ());
      assert_good p input (Strategy.drop_first 3 (Strategy.fair_random ())))
    (Seqspace.Norep.enumerate ~m:3)

let test_norep_message_economy () =
  (* On a benign schedule the protocol needs ~1 data message + 1 ack
     per item: check it does not spam wildly on round-robin. *)
  let p = Protocols.Norep.dup ~m:4 in
  let _, _, trace = run_ok p [ 0; 1; 2; 3 ] Strategy.round_robin 1 in
  check Alcotest.bool "bounded traffic" true (Trace.messages_sent trace <= 40)

let prop_norep_dup_random_inputs =
  QCheck.Test.make ~name:"norep-dup transmits random norep sequences (m=5)" ~count:30
    QCheck.(pair small_int (int_range 0 5))
    (fun (seed, len) ->
      let input = Seqspace.Norep.random (Stdx.Rng.create (seed + 1000)) ~m:5 ~len in
      let safe, complete, _ =
        run_ok (Protocols.Norep.dup ~m:5) input (Strategy.fair_random ()) seed
      in
      safe && complete)

let prop_norep_del_random_inputs =
  QCheck.Test.make ~name:"norep-del survives bounded deletion (m=5)" ~count:30
    QCheck.(pair small_int (int_range 0 5))
    (fun (seed, len) ->
      let input = Seqspace.Norep.random (Stdx.Rng.create (seed + 2000)) ~m:5 ~len in
      let safe, complete, _ =
        run_ok (Protocols.Norep.del ~m:5) input
          (Strategy.drop_first 4 (Strategy.fair_random ()))
          seed
      in
      safe && complete)

(* ------------------------- abp ------------------------- *)

let test_abp_fifo_lossy () =
  let p = Protocols.Abp.protocol ~domain:3 in
  assert_good p [ 0; 0; 1; 2; 2; 1 ] (Strategy.drop_rate 0.2 (Strategy.fair_random ()));
  assert_good p [ 1; 1; 1; 1 ] (Strategy.drop_rate 0.3 (Strategy.fair_random ()))

let test_abp_handles_repeats () =
  (* The whole point of the bit: consecutive equal items. *)
  assert_good (Protocols.Abp.protocol ~domain:2) [ 0; 0; 0; 0; 0 ] (Strategy.fair_random ())

let test_abp_encode_decode () =
  let m = Protocols.Abp.encode_msg ~domain:5 ~bit:1 ~data:3 in
  check (Alcotest.pair Alcotest.int Alcotest.int) "roundtrip" (1, 3)
    (Protocols.Abp.decode_msg ~domain:5 m)

(* ------------------------- stenning ------------------------- *)

let test_stenning_del () =
  let p = Protocols.Stenning.protocol ~domain:3 ~max_len:6 in
  assert_good p [ 0; 0; 2; 1; 1; 2 ] (Strategy.drop_rate 0.2 (Strategy.fair_random ()));
  assert_good p [ 2 ] (Strategy.fair_random ())

let test_stenning_dup () =
  (* Full headers survive duplication too. *)
  let p = Protocols.Stenning.protocol_on Chan.Reorder_dup ~domain:2 ~max_len:4 in
  assert_good p [ 1; 1; 0; 0 ] (Strategy.dup_flood ())

let test_stenning_mod_ok_within_window () =
  (* With enough headers for the input length it still works on a FIFO
     lossy channel. *)
  let p = Protocols.Stenning_mod.protocol_on Chan.Fifo_lossy ~domain:2 ~header_space:8 in
  assert_good p [ 0; 1; 1; 0 ] (Strategy.drop_rate 0.2 (Strategy.fair_random ()))

(* ------------------------- counting ------------------------- *)

let test_counting_perfect_ok () =
  assert_good (Protocols.Counting.protocol_on Chan.Perfect ~domain:3) [ 1; 1; 2 ]
    Strategy.round_robin

let test_counting_breaks_under_reordering () =
  (* Not an attack search here — a direct scripted interleaving. *)
  let p = Protocols.Counting.protocol_on Chan.Reorder_dup ~domain:2 in
  let module Move = Kernel.Move in
  let script =
    [ Move.Wake_sender; Move.Wake_sender; Move.Deliver_to_receiver 1; Move.Deliver_to_receiver 0 ]
  in
  let r =
    Runner.run p ~input:[| 0; 1 |] ~strategy:(Strategy.scripted script)
      ~rng:(Stdx.Rng.create 1) ~max_steps:10 ()
  in
  check Alcotest.bool "violated" true (Trace.first_safety_violation r.Runner.trace <> None)

(* ------------------------- coded ------------------------- *)

let coded_xs = [ []; [ 0 ]; [ 0; 0 ]; [ 1 ]; [ 1; 1 ] ]

let test_coded_dup_repeats () =
  match Protocols.Coded.dup ~m:2 ~xs:coded_xs with
  | Error e -> Alcotest.failf "build: %a" Seqspace.Codes.pp_error e
  | Ok p ->
      List.iter
        (fun input ->
          assert_good p input (Strategy.fair_random ());
          assert_good p input (Strategy.dup_flood ()))
        coded_xs

let test_coded_del_repeats () =
  match Protocols.Coded.del ~m:2 ~xs:coded_xs with
  | Error e -> Alcotest.failf "build: %a" Seqspace.Codes.pp_error e
  | Ok p ->
      List.iter
        (fun input -> assert_good p input (Strategy.drop_first 2 (Strategy.fair_random ())))
        coded_xs

let test_coded_rejects_foreign_input () =
  match Protocols.Coded.dup ~m:2 ~xs:coded_xs with
  | Error e -> Alcotest.failf "build: %a" Seqspace.Codes.pp_error e
  | Ok p ->
      Alcotest.check_raises "foreign input"
        (Invalid_argument "coded-dup(m=2,|X|=5): input sequence is not in the allowable set")
        (fun () -> ignore (p.Kernel.Protocol.make_sender ~input:[| 0; 1 |]))

let test_coded_build_fails_beyond_alpha () =
  let too_big = Xset.to_list (Xset.All_upto { domain = 2; max_len = 2 }) in
  check Alcotest.bool "no code" true
    (match Protocols.Coded.dup ~m:2 ~xs:too_big with Error _ -> true | Ok _ -> false)

(* ------------------------- ladder ------------------------- *)

let ladder_xset = Xset.All_upto { domain = 2; max_len = 3 }

let test_ladder_all_inputs () =
  let p = Protocols.Ladder.protocol ~xset:ladder_xset ~drop_budget:2 in
  List.iter
    (fun input ->
      assert_good ~max_steps:60_000 p input (Strategy.fair_random ());
      assert_good ~max_steps:60_000 p input (Strategy.drop_first 2 (Strategy.fair_random ())))
    (Xset.to_list ladder_xset)

let test_ladder_learning_cost_grows_with_rank () =
  let p = Protocols.Ladder.protocol ~xset:ladder_xset ~drop_budget:1 in
  let cost input =
    let _, _, trace = run_ok ~max_steps:60_000 p input Strategy.round_robin 1 in
    Trace.messages_sent trace
  in
  (* <1 1 1> has the highest rank in the enumeration; <0> nearly the
     lowest: the unbounded protocol pays proportionally. *)
  check Alcotest.bool "rank cost" true (cost [ 1; 1; 1 ] > 3 * cost [ 0 ])

let test_ladder_expected_steps_formula () =
  check Alcotest.int "rank 0" 1
    (Protocols.Ladder.expected_learning_steps ~xset:ladder_xset ~drop_budget:1 []);
  let w = Protocols.Ladder.window ~drop_budget:1 in
  check Alcotest.int "window" 3 w;
  (* rank of [0] is 1 in the enumeration: 2*1*W + 1. *)
  check Alcotest.int "rank 1" ((2 * w) + 1)
    (Protocols.Ladder.expected_learning_steps ~xset:ladder_xset ~drop_budget:1 [ 0 ])

let test_ladder_rejects_foreign_input () =
  let p = Protocols.Ladder.protocol ~xset:ladder_xset ~drop_budget:1 in
  Alcotest.check_raises "foreign" (Invalid_argument "Ladder.protocol: input not in the allowable set")
    (fun () -> ignore (p.Kernel.Protocol.make_sender ~input:[| 7 |]))

(* ------------------------- hybrid ------------------------- *)

let hybrid_xset = Xset.All_upto { domain = 2; max_len = 4 }

let test_hybrid_no_fault_runs_abp () =
  let p = Protocols.Hybrid.protocol ~xset:hybrid_xset ~domain:2 ~drop_budget:1 () in
  List.iter
    (fun input ->
      List.iter
        (fun seed ->
          let safe, complete, trace = run_ok ~max_steps:50_000 p input Strategy.round_robin seed in
          if not (safe && complete) then
            Alcotest.failf "hybrid faultless failed: %a" Trace.pp_summary trace)
        [ 1 ])
    (Xset.to_list hybrid_xset)

let test_hybrid_recovers_from_fault () =
  let p = Protocols.Hybrid.protocol ~xset:hybrid_xset ~domain:2 ~drop_budget:1 ~timeout:6 () in
  List.iter
    (fun input ->
      let safe, complete, trace =
        run_ok ~max_steps:200_000 p input
          (Strategy.drop_after ~at:6 1 Strategy.round_robin)
          1
      in
      if not (safe && complete) then
        Alcotest.failf "hybrid fault recovery failed: %a" Trace.pp_summary trace)
    [ [ 0; 1; 0 ]; [ 1; 1; 1; 1 ]; [ 0; 0 ] ]

let test_hybrid_recovery_slower_than_abp_round () =
  (* The weak-boundedness shape in miniature: with a fault, completion
     takes much longer than without. *)
  let p = Protocols.Hybrid.protocol ~xset:hybrid_xset ~domain:2 ~drop_budget:1 ~timeout:6 () in
  let time strategy =
    let _, _, trace = run_ok ~max_steps:200_000 p [ 1; 0; 1; 0 ] strategy 1 in
    Option.get (Trace.completed_at trace)
  in
  let faultless = time Strategy.round_robin in
  let faulted = time (Strategy.drop_after ~at:6 1 Strategy.round_robin) in
  check Alcotest.bool "fault is expensive" true (faulted > 2 * faultless)

let test_hybrid_symbols () =
  check Alcotest.int "a" 4 (Protocols.Hybrid.recovery_symbol_a ~domain:2);
  check Alcotest.int "b" 5 (Protocols.Hybrid.recovery_symbol_b ~domain:2);
  check Alcotest.int "echo" 2 Protocols.Hybrid.recovery_echo

let prop_gbn_random_inputs =
  QCheck.Test.make ~name:"go-back-n transmits random inputs over lossy fifo" ~count:25
    QCheck.(triple small_int (int_range 1 4) (list_of_size Gen.(int_range 0 6) (int_range 0 2)))
    (fun (seed, window, input) ->
      let p = Protocols.Go_back_n.protocol ~domain:3 ~window in
      let safe, complete, _ =
        run_ok p input (Strategy.drop_rate 0.15 (Strategy.fair_random ())) seed
      in
      safe && complete)

let prop_stenning_random_inputs =
  QCheck.Test.make ~name:"stenning transmits random inputs over reorder+del" ~count:25
    QCheck.(pair small_int (list_of_size Gen.(int_range 0 6) (int_range 0 2)))
    (fun (seed, input) ->
      let p = Protocols.Stenning.protocol ~domain:3 ~max_len:6 in
      let safe, complete, _ =
        run_ok p input (Strategy.drop_rate 0.15 (Strategy.fair_random ())) seed
      in
      safe && complete)

(* ------------------------- selective repeat ------------------------- *)

let test_sr_fifo_lossy_correct () =
  let p = Protocols.Selective_repeat.protocol ~domain:3 ~window:3 in
  List.iter
    (fun input ->
      assert_good p input (Strategy.drop_rate 0.2 (Strategy.fair_random ())))
    [ [ 0; 1; 2; 0; 1; 2; 2 ]; [ 1; 1; 1; 1 ]; [ 2 ]; [] ]

let test_sr_validation () =
  Alcotest.check_raises "window >= 1"
    (Invalid_argument "Selective_repeat.protocol: window must be >= 1") (fun () ->
      ignore (Protocols.Selective_repeat.protocol ~domain:2 ~window:0));
  Alcotest.check_raises "modulus > window"
    (Invalid_argument "Selective_repeat.protocol: modulus must exceed window") (fun () ->
      ignore
        (Protocols.Selective_repeat.protocol_mod Chan.Fifo_lossy ~domain:2 ~window:3 ~modulus:3))

let test_sr_alphabets () =
  let p = Protocols.Selective_repeat.protocol ~domain:3 ~window:4 in
  check Alcotest.int "|M_S| = 2w*d" 24 p.Kernel.Protocol.sender_alphabet;
  check Alcotest.int "|M_R| = 2w" 8 p.Kernel.Protocol.receiver_alphabet

let test_sr_small_modulus_breaks () =
  (* The textbook result: w < M < 2w admits a window-overlap attack;
     M = 2w provably does not (exhaustive search). *)
  let attack modulus =
    Core.Attack.search_single
      (Protocols.Selective_repeat.protocol_mod Chan.Fifo_lossy ~domain:2 ~window:2 ~modulus)
      ~x:[ 0; 1; 1; 1 ] ~depth:80 ~max_sends_per_sender:10 ~max_sends_per_receiver:10 ()
  in
  (match attack 3 with
  | Core.Attack.Witness _ -> ()
  | Core.Attack.No_violation _ -> Alcotest.fail "M=3 should break");
  match attack 4 with
  | Core.Attack.No_violation { closed = true; _ } -> ()
  | Core.Attack.No_violation { closed = false; _ } -> Alcotest.fail "M=4 truncated"
  | Core.Attack.Witness _ -> Alcotest.fail "M=4 should be safe"

let prop_sr_random_inputs =
  QCheck.Test.make ~name:"selective repeat transmits random inputs over lossy fifo" ~count:25
    QCheck.(triple small_int (int_range 1 4) (list_of_size Gen.(int_range 0 6) (int_range 0 2)))
    (fun (seed, window, input) ->
      let p = Protocols.Selective_repeat.protocol ~domain:3 ~window in
      let safe, complete, _ =
        run_ok p input (Strategy.drop_rate 0.15 (Strategy.fair_random ())) seed
      in
      safe && complete)

(* ------------------------- alphabets ------------------------- *)

let test_declared_alphabets () =
  let p = Protocols.Norep.dup ~m:7 in
  check Alcotest.int "norep |M_S| = m" 7 p.Kernel.Protocol.sender_alphabet;
  check Alcotest.int "norep |M_R| = m" 7 p.Kernel.Protocol.receiver_alphabet;
  let p = Protocols.Abp.protocol ~domain:5 in
  check Alcotest.int "abp |M_S| = 2d" 10 p.Kernel.Protocol.sender_alphabet;
  check Alcotest.int "abp |M_R| = 2" 2 p.Kernel.Protocol.receiver_alphabet;
  let p = Protocols.Stenning.protocol ~domain:3 ~max_len:10 in
  check Alcotest.int "stenning grows" 30 p.Kernel.Protocol.sender_alphabet;
  let p = Protocols.Ladder.protocol ~xset:ladder_xset ~drop_budget:1 in
  check Alcotest.int "ladder |M_S| = 2" 2 p.Kernel.Protocol.sender_alphabet;
  check Alcotest.int "ladder |M_R| = 1" 1 p.Kernel.Protocol.receiver_alphabet

let () =
  Alcotest.run "protocols"
    [
      ( "trivial",
        [
          Alcotest.test_case "perfect channel" `Quick test_trivial_perfect;
          Alcotest.test_case "empty input" `Quick test_trivial_empty_input;
        ] );
      ( "norep",
        [
          Alcotest.test_case "dup: all sequences m=3" `Quick test_norep_dup_all_sequences_m3;
          Alcotest.test_case "del: all sequences m=3" `Quick test_norep_del_all_sequences_m3;
          Alcotest.test_case "message economy" `Quick test_norep_message_economy;
          qtest prop_norep_dup_random_inputs;
          qtest prop_norep_del_random_inputs;
        ] );
      ( "abp",
        [
          Alcotest.test_case "fifo-lossy" `Quick test_abp_fifo_lossy;
          Alcotest.test_case "repeated items" `Quick test_abp_handles_repeats;
          Alcotest.test_case "wire encoding" `Quick test_abp_encode_decode;
        ] );
      ( "stenning",
        [
          Alcotest.test_case "reorder+del" `Quick test_stenning_del;
          Alcotest.test_case "reorder+dup" `Quick test_stenning_dup;
          Alcotest.test_case "mod headers within window" `Quick test_stenning_mod_ok_within_window;
        ] );
      ( "counting",
        [
          Alcotest.test_case "perfect ok" `Quick test_counting_perfect_ok;
          Alcotest.test_case "breaks under reordering" `Quick test_counting_breaks_under_reordering;
        ] );
      ( "coded",
        [
          Alcotest.test_case "dup on repeats" `Quick test_coded_dup_repeats;
          Alcotest.test_case "del on repeats" `Quick test_coded_del_repeats;
          Alcotest.test_case "rejects foreign input" `Quick test_coded_rejects_foreign_input;
          Alcotest.test_case "no build beyond alpha" `Quick test_coded_build_fails_beyond_alpha;
        ] );
      ( "ladder",
        [
          Alcotest.test_case "all inputs live and safe" `Quick test_ladder_all_inputs;
          Alcotest.test_case "cost grows with rank" `Quick test_ladder_learning_cost_grows_with_rank;
          Alcotest.test_case "expected steps formula" `Quick test_ladder_expected_steps_formula;
          Alcotest.test_case "rejects foreign input" `Quick test_ladder_rejects_foreign_input;
        ] );
      ( "hybrid",
        [
          Alcotest.test_case "faultless = abp" `Quick test_hybrid_no_fault_runs_abp;
          Alcotest.test_case "recovers from fault" `Quick test_hybrid_recovers_from_fault;
          Alcotest.test_case "recovery is expensive" `Quick test_hybrid_recovery_slower_than_abp_round;
          Alcotest.test_case "wire symbols" `Quick test_hybrid_symbols;
        ] );
      ( "alphabets",
        [ Alcotest.test_case "declared sizes" `Quick test_declared_alphabets ] );
      ( "selective-repeat",
        [
          Alcotest.test_case "correct on fifo-lossy" `Quick test_sr_fifo_lossy_correct;
          Alcotest.test_case "validation" `Quick test_sr_validation;
          Alcotest.test_case "alphabets" `Quick test_sr_alphabets;
          Alcotest.test_case "2w boundary" `Quick test_sr_small_modulus_breaks;
        ] );
      ( "random-input-properties",
        [
          qtest prop_gbn_random_inputs;
          qtest prop_stenning_random_inputs;
          qtest prop_sr_random_inputs;
        ] );
    ]

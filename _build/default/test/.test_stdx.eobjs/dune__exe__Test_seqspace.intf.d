test/test_seqspace.mli:

test/test_experiments.ml: Alcotest Core String

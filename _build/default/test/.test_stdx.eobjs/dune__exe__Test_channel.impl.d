test/test_channel.ml: Alcotest Channel List QCheck QCheck_alcotest Stdx

test/test_protocols.ml: Alcotest Array Channel Core Gen Kernel List Option Protocols QCheck QCheck_alcotest Seqspace Stdx

test/test_stdx.ml: Alcotest Array Float Gen Int List QCheck QCheck_alcotest Stdx String

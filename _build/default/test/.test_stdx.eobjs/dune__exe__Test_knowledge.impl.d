test/test_knowledge.ml: Alcotest Array Channel Kernel Knowledge List Protocols Seqspace Stdx

test/test_attack.ml: Alcotest Array Channel Core Kernel List Protocols Seqspace Stdx

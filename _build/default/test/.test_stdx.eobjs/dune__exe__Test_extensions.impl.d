test/test_extensions.ml: Alcotest Array Channel Core Kernel Knowledge List Protocols QCheck QCheck_alcotest Stdx String

test/test_seqspace.ml: Alcotest Array Float Fun List Option Printf QCheck QCheck_alcotest Seqspace Stdx

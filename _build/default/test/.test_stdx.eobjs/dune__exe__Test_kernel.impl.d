test/test_kernel.ml: Alcotest Array Channel Kernel List Option Protocols QCheck QCheck_alcotest Stdx

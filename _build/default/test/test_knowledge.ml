(* Tests for the epistemic layer: universes, indistinguishability,
   K_R(x_i), and learning times. *)

module Universe = Knowledge.Universe
module Learn = Knowledge.Learn
module Runner = Kernel.Runner
module Strategy = Kernel.Strategy
module Trace = Kernel.Trace

let check = Alcotest.check

let traces_for p inputs ~seeds ~post_roll =
  List.concat_map
    (fun input ->
      List.map
        (fun seed ->
          (Runner.run p ~input:(Array.of_list input) ~strategy:(Strategy.fair_random ())
             ~rng:(Stdx.Rng.create seed) ~max_steps:2_000 ~post_roll ())
            .Runner.trace)
        seeds)
    inputs

let norep_universe ?(m = 2) ?(seeds = [ 1; 2; 3 ]) () =
  let inputs = Seqspace.Norep.enumerate ~m in
  let traces = traces_for (Protocols.Norep.dup ~m) inputs ~seeds ~post_roll:20 in
  (Universe.of_traces traces, inputs, List.length seeds)

(* ------------------------- universe ------------------------- *)

let test_universe_sizes () =
  let u, inputs, n_seeds = norep_universe () in
  let tarr = Universe.traces u in
  check Alcotest.int "trace count" (List.length inputs * n_seeds) (Array.length tarr);
  let expected_points =
    Array.fold_left (fun acc t -> acc + Trace.length t + 1) 0 tarr
  in
  check Alcotest.int "points" expected_points (Universe.n_points u);
  check Alcotest.bool "classes <= points" true (Universe.n_classes u <= Universe.n_points u);
  check Alcotest.bool "classes > 1" true (Universe.n_classes u > 1)

let test_universe_initial_points_indistinguishable () =
  (* Property 1a: the receiver starts identically everywhere, so all
     time-0 points share one class. *)
  let u, _, _ = norep_universe () in
  let tarr = Universe.traces u in
  let p0 = { Universe.run = 0; time = 0 } in
  let cls = Universe.r_class u p0 in
  check Alcotest.int "all initial points together" (Array.length tarr)
    (List.length (List.filter (fun q -> q.Universe.time = 0) cls))

let test_universe_class_membership_symmetric () =
  let u, _, _ = norep_universe () in
  let p = { Universe.run = 0; time = 0 } in
  List.iter
    (fun q ->
      if not (List.mem p (Universe.r_class u q)) then Alcotest.fail "class not symmetric")
    (Universe.r_class u p)

let test_universe_input_of () =
  let u, inputs, n_seeds = norep_universe () in
  List.iteri
    (fun i input ->
      check (Alcotest.list Alcotest.int) "input_of" input
        (Array.to_list (Universe.input_of u { Universe.run = i * n_seeds; time = 0 })))
    inputs

(* ------------------------- knowledge ------------------------- *)

let test_initially_ignorant () =
  (* At time 0 the receiver knows nothing: several inputs disagree on
     x_1 and all initial points are indistinguishable. *)
  let u, _, _ = norep_universe () in
  check Alcotest.bool "no K_R(x_1) at start" false
    (Learn.knows_item u { Universe.run = 0; time = 0 } ~i:1);
  check Alcotest.int "known prefix 0" 0
    (Learn.known_prefix_length u { Universe.run = 0; time = 0 })

let test_eventually_knows_everything () =
  let u, inputs, n_seeds = norep_universe () in
  List.iteri
    (fun i input ->
      let run = i * n_seeds in
      let lt = Learn.learning_times u ~run in
      check Alcotest.int "one slot per item" (List.length input) (Array.length lt);
      Array.iteri
        (fun j t ->
          if t = None then Alcotest.failf "item %d of input %d never learned" (j + 1) i)
        lt)
    inputs

let test_learning_times_monotone () =
  let u, inputs, n_seeds = norep_universe ~m:3 ~seeds:[ 1; 2 ] () in
  List.iteri
    (fun i _ ->
      let lt = Learn.learning_times u ~run:(i * n_seeds) in
      let prev = ref 0 in
      Array.iter
        (function
          | Some t ->
              if t < !prev then Alcotest.fail "t_i not monotone";
              prev := t
          | None -> ())
        lt)
    inputs

let test_stability () =
  let u, inputs, n_seeds = norep_universe () in
  List.iteri
    (fun i _ ->
      if not (Learn.stability_ok u ~run:(i * n_seeds)) then
        Alcotest.failf "stability violated in run %d" i)
    inputs

let test_knowledge_precedes_writing () =
  let u, inputs, n_seeds = norep_universe ~m:3 ~seeds:[ 1; 2 ] () in
  List.iteri
    (fun i _ ->
      List.iter
        (function
          | Some lead when lead < 0 -> Alcotest.fail "wrote before knowing"
          | Some _ | None -> ())
        (Learn.knowledge_lead u ~run:(i * n_seeds)))
    inputs

let test_write_times_match_trace () =
  let u, _, _ = norep_universe () in
  let tarr = Universe.traces u in
  let run = 1 in
  let wt = Learn.write_times u ~run in
  Array.iteri
    (fun idx t ->
      match t with
      | Some t ->
          check Alcotest.bool "write time consistent" true
            (Trace.output_length_at tarr.(run) t >= idx + 1
            && (t = 0 || Trace.output_length_at tarr.(run) (t - 1) < idx + 1))
      | None -> Alcotest.fail "item never written")
    wt

let test_gaps () =
  check
    (Alcotest.list (Alcotest.option Alcotest.int))
    "gaps" [ Some 3; Some 4; None ]
    (Learn.gaps [| Some 3; Some 7; None |]);
  check (Alcotest.list (Alcotest.option Alcotest.int)) "empty" [] (Learn.gaps [||])

let test_knows_item_out_of_range () =
  let u, _, _ = norep_universe () in
  (* No input has a 15th item, so K_R(x_15) is false everywhere. *)
  check Alcotest.bool "beyond all inputs" false
    (Learn.knows_item u { Universe.run = 0; time = 0 } ~i:15)

(* ------------------------- hand-built universes ------------------------- *)

(* Two scripted runs of the counting protocol with different inputs:
   until the first delivery the receiver must not know x_1; after
   receiving the (distinct) first values it must. *)
let test_knowledge_flips_on_distinguishing_delivery () =
  let module Move = Kernel.Move in
  let p = Protocols.Counting.protocol_on Channel.Chan.Perfect ~domain:2 in
  let mk input first =
    let moves = [ Move.Wake_sender; Move.Deliver_to_receiver first; Move.Wake_sender ] in
    (Runner.run p ~input ~strategy:(Strategy.scripted moves) ~rng:(Stdx.Rng.create 1)
       ~max_steps:10 ())
      .Runner.trace
  in
  let u = Universe.of_traces [ mk [| 0; 1 |] 0; mk [| 1; 0 |] 1 ] in
  check Alcotest.bool "ignorant before delivery" false
    (Learn.knows_item u { Universe.run = 0; time = 1 } ~i:1);
  check Alcotest.bool "knows x_1 after delivery" true
    (Learn.knows_item u { Universe.run = 0; time = 2 } ~i:1);
  (* x_2 is already determined to the receiver because in this tiny
     universe only one input starts with 0. *)
  check Alcotest.bool "tiny universe over-knows" true
    (Learn.knows_item u { Universe.run = 0; time = 2 } ~i:2)

let test_single_run_universe_knows_all () =
  (* With a single run in the universe nothing is ever ambiguous: the
     degenerate case the documentation warns about. *)
  let p = Protocols.Norep.dup ~m:2 in
  let trace =
    (Runner.run p ~input:[| 1; 0 |] ~strategy:Strategy.round_robin ~rng:(Stdx.Rng.create 1)
       ~max_steps:500 ())
      .Runner.trace
  in
  let u = Universe.of_traces [ trace ] in
  check Alcotest.int "knows everything at t=0" 2
    (Learn.known_prefix_length u { Universe.run = 0; time = 0 })

(* ------------------------- formulas / nested knowledge ------------------------- *)

module F = Knowledge.Formula

let test_formula_knows_value_matches_learn () =
  (* K_R(x_i) as a formula must agree with Learn.knows_item. *)
  let u, inputs, n_seeds = norep_universe () in
  let domain = 2 in
  List.iteri
    (fun idx input ->
      let run = idx * n_seeds in
      let trace = (Universe.traces u).(run) in
      for time = 0 to min 10 (Trace.length trace) do
        let p = { Universe.run; time } in
        for i = 1 to List.length input do
          let via_formula = F.eval u p (F.knows_value F.Receiver ~i ~domain) in
          let via_learn = Learn.knows_item u p ~i in
          if via_formula <> via_learn then
            Alcotest.failf "disagreement at run %d time %d item %d" run time i
        done
      done)
    inputs

let test_formula_boolean_connectives () =
  let u, _, _ = norep_universe () in
  let p = { Universe.run = 0; time = 0 } in
  let t = F.Fact (F.Input_ge 0) in
  check Alcotest.bool "true fact" true (F.eval u p t);
  check Alcotest.bool "not" false (F.eval u p (F.Not t));
  check Alcotest.bool "and" false (F.eval u p (F.And (t, F.Not t)));
  check Alcotest.bool "or" true (F.eval u p (F.Or (F.Not t, t)))

let test_formula_chain_structure () =
  let phi = F.Fact (F.Output_ge 1) in
  check Alcotest.bool "chain" true
    (F.chain [ F.Sender; F.Receiver ] phi = F.Knows (F.Sender, F.Knows (F.Receiver, phi)));
  check Alcotest.bool "alternating" true
    (F.alternating ~depth:3 ~first:F.Sender phi
    = F.Knows (F.Sender, F.Knows (F.Receiver, F.Knows (F.Sender, phi))))

let test_formula_tabulate_matches_eval () =
  let u, _, _ = norep_universe () in
  let phi = F.Knows (F.Sender, F.Fact (F.Output_ge 1)) in
  let table = F.tabulate u phi in
  List.iter
    (fun p ->
      if table p <> F.eval u p phi then
        Alcotest.failf "tabulate/eval disagree at run %d time %d" p.Universe.run p.Universe.time)
    (Universe.points u)

let test_sender_knows_input_immediately () =
  (* Non-uniform senders carry X in their local state, so K_S(x_i)
     holds at time 0 — the asymmetry Property 1a imposes on R only. *)
  let u, inputs, n_seeds = norep_universe () in
  List.iteri
    (fun idx input ->
      if input <> [] then begin
        let p = { Universe.run = idx * n_seeds; time = 0 } in
        check Alcotest.bool "K_S(x_1) at start" true
          (F.eval u p (F.knows_value F.Sender ~i:1 ~domain:2));
        check Alcotest.bool "not K_R(x_1) at start" false
          (F.eval u p (F.knows_value F.Receiver ~i:1 ~domain:2))
      end)
    inputs

let test_nested_knowledge_strictly_later () =
  let u, _, n_seeds = norep_universe ~m:2 ~seeds:[ 1; 2; 3 ] () in
  (* Runs of input <0 1> start at index 3 * n_seeds in enumeration
     order ([]; [0]; [1]; [0;1]; [1;0]). *)
  let run = 3 * n_seeds in
  let phi = F.Fact (F.Output_ge 1) in
  let l1 = F.Knows (F.Sender, phi) in
  let l2 = F.Knows (F.Receiver, l1) in
  let t0 = F.first_time u ~run phi in
  let t1 = F.first_time u ~run l1 in
  let t2 = F.first_time u ~run l2 in
  match (t0, t1, t2) with
  | Some a, Some b, Some c ->
      if not (a < b && b < c) then Alcotest.failf "ladder not increasing: %d %d %d" a b c
  | _ -> Alcotest.fail "ladder levels unattained"

let test_common_knowledge_never () =
  let u, _, _ = norep_universe () in
  let phi = F.Fact (F.Output_ge 1) in
  let c = F.common u phi in
  check Alcotest.bool "C phi nowhere" false
    (List.exists (fun p -> c p) (Universe.points u))

let test_common_knowledge_of_tautology_everywhere () =
  let u, _, _ = norep_universe () in
  let taut = F.Fact (F.Input_ge 0) in
  let c = F.common u taut in
  check Alcotest.bool "C tautology everywhere" true
    (List.for_all (fun p -> c p) (Universe.points u))

let test_common_implies_every_chain () =
  (* Wherever C phi holds, every finite K-chain holds too. *)
  let u, _, _ = norep_universe () in
  let taut = F.Fact (F.Input_ge 0) in
  let c = F.common u taut in
  let chain = F.chain [ F.Sender; F.Receiver; F.Sender ] taut in
  let tbl = F.tabulate u chain in
  List.iter
    (fun p -> if c p && not (tbl p) then Alcotest.fail "C held without the chain")
    (Universe.points u)

let test_s_class_separates_inputs () =
  let u, _, n_seeds = norep_universe () in
  (* Non-uniform senders: time-0 points of different inputs are
     S-distinguishable, so the S-class of a point only contains points
     of the same input. *)
  let p = { Universe.run = 0; time = 0 } in
  let input0 = Universe.input_of u p in
  List.iter
    (fun q ->
      if Universe.input_of u q <> input0 then Alcotest.fail "S-class crossed inputs")
    (Universe.s_class u p);
  ignore n_seeds

let () =
  Alcotest.run "knowledge"
    [
      ( "universe",
        [
          Alcotest.test_case "sizes" `Quick test_universe_sizes;
          Alcotest.test_case "initial points indistinguishable" `Quick
            test_universe_initial_points_indistinguishable;
          Alcotest.test_case "class symmetric" `Quick test_universe_class_membership_symmetric;
          Alcotest.test_case "input_of" `Quick test_universe_input_of;
        ] );
      ( "learning",
        [
          Alcotest.test_case "initially ignorant" `Quick test_initially_ignorant;
          Alcotest.test_case "eventually knows all" `Quick test_eventually_knows_everything;
          Alcotest.test_case "t_i monotone" `Quick test_learning_times_monotone;
          Alcotest.test_case "stability (Sec 2.3)" `Quick test_stability;
          Alcotest.test_case "knowledge precedes writing" `Quick test_knowledge_precedes_writing;
          Alcotest.test_case "write times vs trace" `Quick test_write_times_match_trace;
          Alcotest.test_case "gaps" `Quick test_gaps;
          Alcotest.test_case "out-of-range item" `Quick test_knows_item_out_of_range;
        ] );
      ( "hand-built",
        [
          Alcotest.test_case "knowledge flips on delivery" `Quick
            test_knowledge_flips_on_distinguishing_delivery;
          Alcotest.test_case "singleton universe degenerates" `Quick
            test_single_run_universe_knows_all;
        ] );
      ( "formulas",
        [
          Alcotest.test_case "knows_value = Learn.knows_item" `Quick
            test_formula_knows_value_matches_learn;
          Alcotest.test_case "boolean connectives" `Quick test_formula_boolean_connectives;
          Alcotest.test_case "chain structure" `Quick test_formula_chain_structure;
          Alcotest.test_case "tabulate = eval" `Quick test_formula_tabulate_matches_eval;
          Alcotest.test_case "sender knows input at t=0" `Quick
            test_sender_knows_input_immediately;
          Alcotest.test_case "nested knowledge strictly later" `Quick
            test_nested_knowledge_strictly_later;
          Alcotest.test_case "S-class separates inputs" `Quick test_s_class_separates_inputs;
          Alcotest.test_case "common knowledge never (contingent)" `Quick
            test_common_knowledge_never;
          Alcotest.test_case "common knowledge of tautology" `Quick
            test_common_knowledge_of_tautology_everywhere;
          Alcotest.test_case "C implies every chain" `Quick test_common_implies_every_chain;
        ] );
    ]

(* Tests for the paper's combinatorics: alpha(m), repetition-free
   sequences, the mu(X) codes, allowable sets, and the delta recursion. *)

module Alpha = Seqspace.Alpha
module Norep = Seqspace.Norep
module Codes = Seqspace.Codes
module Xset = Seqspace.Xset
module Delta = Seqspace.Delta
module Bignat = Stdx.Bignat

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ------------------------- Alpha ------------------------- *)

let test_alpha_known_values () =
  (* OEIS A000522: total number of arrangements of an n-set. *)
  List.iter
    (fun (m, expected) -> check Alcotest.int (Printf.sprintf "alpha(%d)" m) expected (Alpha.alpha_exn m))
    [ (0, 1); (1, 2); (2, 5); (3, 16); (4, 65); (5, 326); (6, 1957); (7, 13700); (8, 109601) ]

let test_alpha_recurrence () =
  (* alpha(m) = m * alpha(m-1) + 1. *)
  for m = 1 to 15 do
    let lhs = Alpha.alpha m in
    let rhs = Bignat.add (Bignat.mul_int (Alpha.alpha (m - 1)) m) Bignat.one in
    if not (Bignat.equal lhs rhs) then Alcotest.failf "recurrence fails at m=%d" m
  done

let test_alpha_overflow_boundary () =
  check Alcotest.bool "alpha(18) fits" true (Alpha.alpha_int 18 <> None);
  check Alcotest.bool "alpha(21) overflows" true (Alpha.alpha_int 21 = None)

let test_permutations () =
  check Alcotest.string "P(5,2)" "20" (Bignat.to_string (Alpha.permutations 5 2));
  check Alcotest.string "P(5,5)" "120" (Bignat.to_string (Alpha.permutations 5 5));
  check Alcotest.string "P(5,6)" "0" (Bignat.to_string (Alpha.permutations 5 6));
  check Alcotest.string "P(5,0)" "1" (Bignat.to_string (Alpha.permutations 5 0))

let test_alpha_is_sum_of_permutations () =
  for m = 0 to 10 do
    let sum = ref Bignat.zero in
    for k = 0 to m do
      sum := Bignat.add !sum (Alpha.permutations m k)
    done;
    if not (Bignat.equal !sum (Alpha.alpha m)) then Alcotest.failf "sum mismatch at m=%d" m
  done

let test_alpha_ratio_approaches_one () =
  (match Alpha.alpha_int 10 with
  | Some a ->
      let ratio = float_of_int a /. Alpha.e_times_fact 10 in
      check Alcotest.bool "ratio near 1" true (Float.abs (ratio -. 1.0) < 1e-6)
  | None -> Alcotest.fail "alpha(10) should fit");
  check Alcotest.bool "alpha(0)/(e*0!) = 1/e" true
    (Float.abs ((1.0 /. Alpha.e_times_fact 0) -. 0.3678794) < 1e-6)

let test_alpha_bounded () =
  (* Full length recovers alpha; length 0 counts only the empty
     sequence; length 1 counts it plus the m singletons. *)
  for m = 0 to 8 do
    if not (Bignat.equal (Alpha.alpha_bounded ~m ~max_len:m) (Alpha.alpha m)) then
      Alcotest.failf "bounded at full length differs at m=%d" m;
    if not (Bignat.equal (Alpha.alpha_bounded ~m ~max_len:(m + 3)) (Alpha.alpha m)) then
      Alcotest.failf "bounded beyond full length differs at m=%d" m
  done;
  check Alcotest.string "len 0" "1" (Bignat.to_string (Alpha.alpha_bounded ~m:5 ~max_len:0));
  check Alcotest.string "len 1" "6" (Bignat.to_string (Alpha.alpha_bounded ~m:5 ~max_len:1));
  check Alcotest.string "len 2" "26" (Bignat.to_string (Alpha.alpha_bounded ~m:5 ~max_len:2))

let test_alpha_bounded_counts_enumeration () =
  for m = 0 to 5 do
    for l = 0 to m do
      let count =
        List.length (List.filter (fun x -> List.length x <= l) (Norep.enumerate ~m))
      in
      match Stdx.Bignat.to_int (Alpha.alpha_bounded ~m ~max_len:l) with
      | Some v ->
          if v <> count then Alcotest.failf "m=%d l=%d: %d vs %d" m l v count
      | None -> Alcotest.fail "overflow"
    done
  done

(* ------------------------- Norep ------------------------- *)

let test_norep_enumerate_count () =
  for m = 0 to 5 do
    check Alcotest.int
      (Printf.sprintf "enumerate m=%d" m)
      (Alpha.alpha_exn m)
      (List.length (Norep.enumerate ~m))
  done

let test_norep_enumerate_all_valid_unique () =
  let xs = Norep.enumerate ~m:4 in
  List.iter
    (fun x ->
      if not (Norep.is_norep x && Norep.is_over ~m:4 x) then Alcotest.fail "invalid member")
    xs;
  check Alcotest.int "unique" (List.length xs) (List.length (List.sort_uniq compare xs))

let test_norep_is_norep () =
  check Alcotest.bool "norep" true (Norep.is_norep [ 3; 1; 2 ]);
  check Alcotest.bool "repeat" false (Norep.is_norep [ 1; 2; 1 ]);
  check Alcotest.bool "empty" true (Norep.is_norep [])

let test_norep_rank_canonical_order () =
  let xs = Norep.enumerate ~m:4 in
  List.iteri
    (fun i x ->
      if Norep.rank ~m:4 x <> i then
        Alcotest.failf "rank of element %d disagrees with enumeration order" i)
    xs

let prop_norep_rank_unrank =
  QCheck.Test.make ~name:"rank/unrank roundtrip (m=5)"
    QCheck.(int_range 0 (326 - 1))
    (fun idx -> Norep.rank ~m:5 (Norep.unrank ~m:5 idx) = idx)

let test_norep_rank_rejects () =
  Alcotest.check_raises "repeat" (Invalid_argument "Norep.rank: sequence repeats a symbol")
    (fun () -> ignore (Norep.rank ~m:3 [ 0; 0 ]));
  Alcotest.check_raises "out of domain" (Invalid_argument "Norep.rank: symbol out of domain")
    (fun () -> ignore (Norep.rank ~m:3 [ 5 ]))

let prop_norep_random_valid =
  QCheck.Test.make ~name:"random sequences are repetition-free"
    QCheck.(pair small_int (int_range 0 6))
    (fun (seed, len) ->
      let x = Norep.random (Stdx.Rng.create seed) ~m:6 ~len in
      Norep.is_norep x && Norep.is_over ~m:6 x && List.length x = len)

let test_norep_longest () =
  check (Alcotest.list Alcotest.int) "longest" [ 0; 1; 2 ] (Norep.longest ~m:3)

let test_norep_count_matches_alpha () =
  for m = 0 to 8 do
    check Alcotest.int (Printf.sprintf "count m=%d" m) (Alpha.alpha_exn m) (Norep.count ~m)
  done

(* ------------------------- Codes ------------------------- *)

let test_codes_norep_identityish () =
  (* The full norep family always admits a code over m symbols. *)
  let xs = Norep.enumerate ~m:3 in
  match Codes.build ~m:3 xs with
  | Error e -> Alcotest.failf "build failed: %a" Codes.pp_error e
  | Ok code ->
      check Alcotest.int "trie size = |prefixes|" (List.length xs) (Codes.size code);
      List.iter
        (fun x ->
          match Codes.encode code x with
          | None -> Alcotest.fail "encode failed"
          | Some mu ->
              check Alcotest.bool "mu repetition-free" true (Norep.is_norep mu);
              check Alcotest.int "length preserved" (List.length x) (List.length mu);
              check (Alcotest.option (Alcotest.list Alcotest.int)) "decode inverts" (Some x)
                (Codes.decode code mu))
        xs

let test_codes_repeats () =
  (* Sequences with repeated *data* go through: the code symbols never
     repeat even when the data does. *)
  let xs = [ []; [ 0 ]; [ 0; 0 ]; [ 1 ]; [ 1; 1 ] ] in
  match Codes.build ~m:2 xs with
  | Error e -> Alcotest.failf "build failed: %a" Codes.pp_error e
  | Ok code -> (
      match Codes.encode code [ 0; 0 ] with
      | Some mu -> check Alcotest.bool "norep" true (Norep.is_norep mu)
      | None -> Alcotest.fail "encode failed")

let test_codes_prefix_monotone () =
  let xs = [ []; [ 0 ]; [ 0; 1 ]; [ 1 ] ] in
  match Codes.build ~m:2 xs with
  | Error e -> Alcotest.failf "build failed: %a" Codes.pp_error e
  | Ok code ->
      let enc x = Option.get (Codes.encode code x) in
      check Alcotest.bool "prefix preserved" true
        (Xset.is_prefix (enc [ 0 ]) (enc [ 0; 1 ]));
      check Alcotest.bool "non-prefix stays non-prefix" true
        (not (Xset.is_prefix (enc [ 1 ]) (enc [ 0; 1 ])))

let test_codes_too_bushy () =
  (* Three children at the root with two symbols: impossible. *)
  match Codes.build ~m:2 [ [ 0 ]; [ 1 ]; [ 2 ] ] with
  | Error (Codes.Too_many_children { needed; available; prefix }) ->
      check Alcotest.int "needed" 3 needed;
      check Alcotest.int "available" 2 available;
      check (Alcotest.list Alcotest.int) "at root" [] prefix
  | Error (Codes.Duplicate_sequence _) -> Alcotest.fail "wrong error"
  | Ok _ -> Alcotest.fail "should not build"

let test_codes_too_deep () =
  (* A path longer than m exhausts the symbols. *)
  match Codes.build ~m:2 [ [ 0; 0; 0 ] ] with
  | Error (Codes.Too_many_children { available; _ }) -> check Alcotest.int "none left" 0 available
  | Error (Codes.Duplicate_sequence _) -> Alcotest.fail "wrong error"
  | Ok _ -> Alcotest.fail "should not build"

let test_codes_duplicate () =
  match Codes.build ~m:3 [ [ 0 ]; [ 0 ] ] with
  | Error (Codes.Duplicate_sequence s) -> check (Alcotest.list Alcotest.int) "dup" [ 0 ] s
  | Error (Codes.Too_many_children _) -> Alcotest.fail "wrong error"
  | Ok _ -> Alcotest.fail "should not build"

let test_codes_navigation () =
  let xs = [ []; [ 7 ]; [ 7; 3 ] ] in
  match Codes.build ~m:2 xs with
  | Error e -> Alcotest.failf "build failed: %a" Codes.pp_error e
  | Ok code -> (
      let root = Codes.root code in
      match Codes.step_by_data code root 7 with
      | None -> Alcotest.fail "step failed"
      | Some n1 ->
          check Alcotest.int "path length" 1 (List.length (Codes.path_symbols code n1));
          let sym = Option.get (Codes.msg_of_edge code root 7) in
          check Alcotest.bool "msg/data edges agree" true
            (Codes.data_of_edge code root sym = Some 7);
          check Alcotest.bool "by_msg agrees" true (Codes.step_by_msg code root sym = Some n1))

let test_codes_alpha_capacity () =
  (* The norep family at every m <= 4 admits a code: the bound is met. *)
  List.iter
    (fun m ->
      match Codes.build ~m (Norep.enumerate ~m) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "m=%d should build: %a" m Codes.pp_error e)
    [ 0; 1; 2; 3; 4 ]

(* ------------------------- Xset ------------------------- *)

let test_xset_cardinalities () =
  check Alcotest.int "all_upto 2,3" 15
    (Xset.cardinality_int (Xset.All_upto { domain = 2; max_len = 3 }));
  check Alcotest.int "norep 3" 16 (Xset.cardinality_int (Xset.Norep_full { domain = 3 }));
  check Alcotest.int "explicit" 2 (Xset.cardinality_int (Xset.Explicit [ [ 0 ]; [ 1 ] ]))

let test_xset_to_list_matches_cardinality () =
  List.iter
    (fun xset ->
      check Alcotest.int "cardinality = |to_list|" (Xset.cardinality_int xset)
        (List.length (Xset.to_list xset)))
    [
      Xset.All_upto { domain = 3; max_len = 2 };
      Xset.Norep_full { domain = 4 };
      Xset.Explicit [ []; [ 1; 1 ] ];
    ]

let test_xset_mem () =
  let xset = Xset.All_upto { domain = 2; max_len = 2 } in
  check Alcotest.bool "member" true (Xset.mem xset [ 1; 0 ]);
  check Alcotest.bool "too long" false (Xset.mem xset [ 0; 0; 0 ]);
  check Alcotest.bool "out of domain" false (Xset.mem xset [ 2 ]);
  let norep = Xset.Norep_full { domain = 3 } in
  check Alcotest.bool "repeat rejected" false (Xset.mem norep [ 0; 0 ])

let prop_xset_lcp =
  QCheck.Test.make ~name:"lcp is a common prefix and maximal"
    QCheck.(pair (list (int_range 0 2)) (list (int_range 0 2)))
    (fun (a, b) ->
      let p = Xset.lcp a b in
      Xset.is_prefix p a && Xset.is_prefix p b
      &&
      (* maximality: the next elements differ or one list ended *)
      let n = List.length p in
      List.length a = n || List.length b = n || List.nth a n <> List.nth b n)

let prop_xset_is_prefix_via_lcp =
  QCheck.Test.make ~name:"is_prefix a b iff lcp a b = a"
    QCheck.(pair (list (int_range 0 2)) (list (int_range 0 2)))
    (fun (a, b) -> Xset.is_prefix a b = (Xset.lcp a b = a))

let test_xset_beta () =
  (* {<0>, <0 1>} : <0> is a prefix, distinguished by length at i=2;
     {<0 0>, <0 1>} : need 2 symbols. *)
  check Alcotest.int "beta distinguishes" 2 (Xset.beta (Xset.Explicit [ [ 0; 0 ]; [ 0; 1 ] ]));
  check Alcotest.int "beta 1" 1 (Xset.beta (Xset.Explicit [ [ 0 ]; [ 1 ] ]));
  check Alcotest.int "beta empty" 0 (Xset.beta (Xset.Explicit [ [] ]))

let test_xset_non_prefix_pairs () =
  let pairs = Xset.distinct_non_prefix_pairs (Xset.Explicit [ []; [ 0 ]; [ 0; 1 ]; [ 1 ] ]) in
  (* [] is a prefix of everything; <0> prefixes <0 1>.  Non-prefix
     pairs: (<0>,<1>) and (<0 1>,<1>). *)
  check Alcotest.int "pair count" 2 (List.length pairs)

let test_xset_domain () =
  check Alcotest.int "explicit domain" 4 (Xset.domain (Xset.Explicit [ [ 3 ]; [ 0 ] ]));
  check Alcotest.int "explicit empty" 1 (Xset.domain (Xset.Explicit [ [] ]));
  check Alcotest.int "all_upto" 5 (Xset.domain (Xset.All_upto { domain = 5; max_len = 1 }))

(* ------------------------- Delta ------------------------- *)

let test_delta_base () =
  let ds = Delta.deltas ~m:3 ~c:7 in
  check Alcotest.string "delta_m = c" "7" (Bignat.to_string ds.(3));
  check Alcotest.int "length" 4 (Array.length ds)

let test_delta_recursion () =
  let m = 3 and c = 5 in
  let ds = Delta.deltas ~m ~c in
  for l = 0 to m - 1 do
    let factor =
      Bignat.add Bignat.one
        (Bignat.mul_int (Bignat.mul_int (Alpha.alpha (m - l)) (m - l)) c)
    in
    if not (Bignat.equal ds.(l) (Bignat.mul ds.(l + 1) factor)) then
      Alcotest.failf "recursion fails at l=%d" l
  done

let test_delta_monotone () =
  let ds = Delta.deltas ~m:4 ~c:3 in
  for l = 0 to 3 do
    if Bignat.compare ds.(l) ds.(l + 1) <= 0 then Alcotest.failf "not decreasing at %d" l
  done

let test_c_of_f () =
  check Alcotest.int "constant f" 12 (Delta.c_of_f ~f:(fun _ -> 4) ~beta:3);
  check Alcotest.int "identity f" 6 (Delta.c_of_f ~f:Fun.id ~beta:3);
  check Alcotest.int "beta 0" 0 (Delta.c_of_f ~f:(fun _ -> 9) ~beta:0)

let () =
  Alcotest.run "seqspace"
    [
      ( "alpha",
        [
          Alcotest.test_case "known values (A000522)" `Quick test_alpha_known_values;
          Alcotest.test_case "recurrence" `Quick test_alpha_recurrence;
          Alcotest.test_case "overflow boundary" `Quick test_alpha_overflow_boundary;
          Alcotest.test_case "permutations" `Quick test_permutations;
          Alcotest.test_case "alpha = sum of P(m,k)" `Quick test_alpha_is_sum_of_permutations;
          Alcotest.test_case "ratio to e*m!" `Quick test_alpha_ratio_approaches_one;
          Alcotest.test_case "bounded-length alpha" `Quick test_alpha_bounded;
          Alcotest.test_case "bounded alpha = enumeration" `Quick
            test_alpha_bounded_counts_enumeration;
        ] );
      ( "norep",
        [
          Alcotest.test_case "enumerate counts" `Quick test_norep_enumerate_count;
          Alcotest.test_case "enumerate valid+unique" `Quick test_norep_enumerate_all_valid_unique;
          Alcotest.test_case "is_norep" `Quick test_norep_is_norep;
          Alcotest.test_case "rank = enumeration order" `Quick test_norep_rank_canonical_order;
          Alcotest.test_case "rank rejects" `Quick test_norep_rank_rejects;
          Alcotest.test_case "longest" `Quick test_norep_longest;
          Alcotest.test_case "count = alpha" `Quick test_norep_count_matches_alpha;
          qtest prop_norep_rank_unrank;
          qtest prop_norep_random_valid;
        ] );
      ( "codes",
        [
          Alcotest.test_case "norep family" `Quick test_codes_norep_identityish;
          Alcotest.test_case "repeats encodable" `Quick test_codes_repeats;
          Alcotest.test_case "prefix monotone" `Quick test_codes_prefix_monotone;
          Alcotest.test_case "too bushy" `Quick test_codes_too_bushy;
          Alcotest.test_case "too deep" `Quick test_codes_too_deep;
          Alcotest.test_case "duplicate rejected" `Quick test_codes_duplicate;
          Alcotest.test_case "trie navigation" `Quick test_codes_navigation;
          Alcotest.test_case "alpha capacity" `Quick test_codes_alpha_capacity;
        ] );
      ( "xset",
        [
          Alcotest.test_case "cardinalities" `Quick test_xset_cardinalities;
          Alcotest.test_case "to_list matches" `Quick test_xset_to_list_matches_cardinality;
          Alcotest.test_case "mem" `Quick test_xset_mem;
          Alcotest.test_case "beta" `Quick test_xset_beta;
          Alcotest.test_case "non-prefix pairs" `Quick test_xset_non_prefix_pairs;
          Alcotest.test_case "domain" `Quick test_xset_domain;
          qtest prop_xset_lcp;
          qtest prop_xset_is_prefix_via_lcp;
        ] );
      ( "delta",
        [
          Alcotest.test_case "base case" `Quick test_delta_base;
          Alcotest.test_case "recursion" `Quick test_delta_recursion;
          Alcotest.test_case "monotone decreasing" `Quick test_delta_monotone;
          Alcotest.test_case "c_of_f" `Quick test_c_of_f;
        ] );
    ]

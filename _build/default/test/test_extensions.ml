(* Tests for the extension layers: trace rendering, model audits,
   Go-Back-N, exact knowledge universes, the probabilistic estimator,
   and the protocol-space census. *)

module Chan = Channel.Chan
module Strategy = Kernel.Strategy
module Runner = Kernel.Runner
module Trace = Kernel.Trace
module Move = Kernel.Move

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let contains_substring haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let run_trace ?(max_steps = 20_000) p input strategy seed =
  (Runner.run p ~input:(Array.of_list input) ~strategy ~rng:(Stdx.Rng.create seed) ~max_steps ())
    .Runner.trace

(* ------------------------- Render ------------------------- *)

let test_render_chart_mentions_everything () =
  let trace = run_trace (Protocols.Norep.dup ~m:2) [ 1; 0 ] Strategy.round_robin 1 in
  let s = Kernel.Render.chart trace in
  check Alcotest.bool "has header" true (contains_substring s "sender");
  check Alcotest.bool "has delivery arrow" true (contains_substring s "-->");
  check Alcotest.bool "has output" true (contains_substring s "Y = <1 0>");
  (* One line per move plus the header. *)
  let lines = String.split_on_char '\n' (String.trim s) in
  check Alcotest.int "line count" (Trace.length trace + 1) (List.length lines)

let test_render_window () =
  let trace = run_trace (Protocols.Norep.dup ~m:2) [ 1; 0 ] Strategy.round_robin 1 in
  let s = Kernel.Render.chart_window trace ~from:0 ~upto:2 in
  let lines = String.split_on_char '\n' (String.trim s) in
  check Alcotest.int "windowed" 3 (List.length lines)

let test_render_drop_marker () =
  let trace =
    run_trace (Protocols.Norep.del ~m:2) [ 0; 1 ]
      (Strategy.drop_first 1 (Strategy.fair_random ()))
      3
  in
  let s = Kernel.Render.chart trace in
  check Alcotest.bool "drop marked" true (contains_substring s "--X" || contains_substring s "X--")

let test_render_replay_witness () =
  let p = Protocols.Counting.protocol_on Chan.Reorder_dup ~domain:2 in
  match Core.Attack.search_pair p ~x1:[ 0; 1 ] ~x2:[ 1; 0 ] () with
  | Core.Attack.No_violation _ -> Alcotest.fail "expected witness"
  | Core.Attack.Witness w ->
      let moves = Core.Attack.run_moves w ~which:1 in
      let trace = Kernel.Render.moves_of_witness_run p ~input:[| 0; 1 |] ~moves in
      check Alcotest.int "all moves replayed" (List.length moves) (Trace.length trace);
      check Alcotest.bool "violation visible" true
        (Trace.first_safety_violation trace <> None)

(* ------------------------- Audit ------------------------- *)

let test_audit_clean_run () =
  let trace = run_trace (Protocols.Norep.dup ~m:3) [ 0; 2; 1 ] (Strategy.fair_random ()) 1 in
  let a = Kernel.Audit.run trace in
  check Alcotest.bool "ok" true a.Kernel.Audit.ok;
  check Alcotest.bool "conserved forward" true a.Kernel.Audit.forward.Kernel.Audit.conserved

let test_audit_del_with_drops () =
  let trace =
    run_trace (Protocols.Norep.del ~m:3) [ 0; 1 ]
      (Strategy.drop_first 2 (Strategy.fair_random ()))
      1
  in
  let a = Kernel.Audit.run trace in
  check Alcotest.bool "ok" true a.Kernel.Audit.ok;
  check Alcotest.int "drops counted" 2
    (a.Kernel.Audit.forward.Kernel.Audit.dropped + a.Kernel.Audit.backward.Kernel.Audit.dropped)

let test_audit_dup_over_delivery_is_fine () =
  let trace = run_trace (Protocols.Norep.dup ~m:2) [ 0; 1 ] (Strategy.dup_flood ()) 1 in
  let a = Kernel.Audit.run trace in
  check Alcotest.bool "duplication is legal" true a.Kernel.Audit.ok;
  check Alcotest.bool "really over-delivered" true
    (a.Kernel.Audit.forward.Kernel.Audit.delivered > a.Kernel.Audit.forward.Kernel.Audit.sent
    || a.Kernel.Audit.backward.Kernel.Audit.delivered > a.Kernel.Audit.backward.Kernel.Audit.sent
    || a.Kernel.Audit.forward.Kernel.Audit.delivered = a.Kernel.Audit.forward.Kernel.Audit.sent)

let prop_audit_always_ok_on_simulator_runs =
  (* The simulator can only produce model-conforming traces, so the
     audit must pass on anything it emits — across protocols,
     channels, and schedules. *)
  QCheck.Test.make ~name:"audit passes on every simulator trace" ~count:40
    QCheck.(pair small_int (int_range 0 3))
    (fun (seed, pick) ->
      let p, input =
        match pick with
        | 0 -> (Protocols.Norep.dup ~m:3, [ 0; 1 ])
        | 1 -> (Protocols.Norep.del ~m:3, [ 2; 0 ])
        | 2 -> (Protocols.Abp.protocol ~domain:2, [ 1; 1; 0 ])
        | _ -> (Protocols.Stenning.protocol ~domain:2 ~max_len:3, [ 0; 1; 1 ])
      in
      let trace =
        run_trace ~max_steps:4_000 p input
          (Strategy.drop_rate 0.1 (Strategy.fair_random ()))
          seed
      in
      (Kernel.Audit.run trace).Kernel.Audit.ok)

(* ------------------------- Go-Back-N ------------------------- *)

let test_gbn_fifo_lossy_correct () =
  let p = Protocols.Go_back_n.protocol ~domain:3 ~window:3 in
  List.iter
    (fun input ->
      List.iter
        (fun seed ->
          let trace =
            run_trace p input (Strategy.drop_rate 0.2 (Strategy.fair_random ())) seed
          in
          if Trace.first_safety_violation trace <> None then Alcotest.fail "unsafe";
          if Trace.completed_at trace = None then Alcotest.fail "incomplete")
        [ 1; 2; 3 ])
    [ [ 0; 1; 2; 0; 1; 2; 2 ]; [ 1; 1; 1; 1 ]; [ 2 ]; [] ]

let test_gbn_window_validation () =
  Alcotest.check_raises "window >= 1"
    (Invalid_argument "Go_back_n.protocol: window must be >= 1") (fun () ->
      ignore (Protocols.Go_back_n.protocol ~domain:2 ~window:0))

let test_gbn_alphabets () =
  let p = Protocols.Go_back_n.protocol ~domain:3 ~window:4 in
  check Alcotest.int "|M_S| = (w+1)d" 15 p.Kernel.Protocol.sender_alphabet;
  check Alcotest.int "|M_R| = w+1" 5 p.Kernel.Protocol.receiver_alphabet

let test_gbn_breaks_under_reordering () =
  (* Finite headers: items 0 and 3 collide mod 3 for window 2.  The
     single-run attack search finds the stale-frame acceptance. *)
  let p = Protocols.Go_back_n.protocol_on Chan.Reorder_dup ~domain:2 ~window:2 in
  match Core.Attack.search_single p ~x:[ 0; 1; 1; 1 ] ~depth:64 () with
  | Core.Attack.Witness w -> (
      match w.Core.Attack.kind with
      | Core.Attack.Safety _ -> ()
      | Core.Attack.Starvation _ -> Alcotest.fail "expected safety")
  | Core.Attack.No_violation _ -> Alcotest.fail "expected witness"

let test_gbn_pipelines_vs_abp () =
  (* The window's purpose: fewer protocol steps per item than ABP on a
     clean FIFO channel. *)
  let steps p input =
    let trace = run_trace p input Strategy.round_robin 1 in
    match Trace.completed_at trace with
    | Some t -> t
    | None -> Alcotest.fail "incomplete"
  in
  let input = [ 0; 1; 0; 1; 0; 1; 0; 1 ] in
  let gbn = steps (Protocols.Go_back_n.protocol ~domain:2 ~window:4) input in
  let abp = steps (Protocols.Abp.protocol ~domain:2) input in
  check Alcotest.bool "pipelining helps" true (gbn <= abp)

(* ------------------------- Exact knowledge ------------------------- *)

let test_exact_universe_exhaustive_flag () =
  let p = Protocols.Norep.dup ~m:2 in
  let u, complete =
    Knowledge.Exact.universe p ~inputs:[ [ 0 ]; [ 1 ] ] ~depth:4 ()
  in
  check Alcotest.bool "exhaustive" true complete;
  check Alcotest.bool "has traces" true (Array.length (Knowledge.Universe.traces u) > 2);
  let u2, complete2 =
    Knowledge.Exact.universe p ~inputs:[ [ 0 ]; [ 1 ] ] ~depth:4 ~max_runs_per_input:3 ()
  in
  check Alcotest.bool "capped" false complete2;
  check Alcotest.int "cap respected" 6 (Array.length (Knowledge.Universe.traces u2))

let test_exact_knowledge_is_exact () =
  (* In the exhaustive depth-4 universe over inputs {<0>, <1>}, the
     receiver knows x_1 exactly when it has received the first
     message, in every run. *)
  let p = Protocols.Norep.dup ~m:2 in
  let u, complete = Knowledge.Exact.universe p ~inputs:[ [ 0 ]; [ 1 ] ] ~depth:4 () in
  check Alcotest.bool "exhaustive" true complete;
  let tarr = Knowledge.Universe.traces u in
  Array.iteri
    (fun run trace ->
      for time = 0 to Trace.length trace do
        let knows = Knowledge.Learn.knows_item u { Knowledge.Universe.run; time } ~i:1 in
        let received =
          List.exists
            (function Kernel.Hist.Got _ -> true | _ -> false)
            (Kernel.Hist.to_list (Trace.r_view trace time))
        in
        if knows <> received then
          Alcotest.failf "run %d time %d: knows=%b received=%b" run time knows received
      done)
    tarr

let test_exact_vs_sampled_ordering () =
  (* Sampled universes have fewer confusers, so sampled learning times
     can only be <= exact ones (comparing the same schedule). *)
  let p = Protocols.Norep.dup ~m:2 in
  let exact, complete = Knowledge.Exact.universe p ~inputs:[ [ 0 ]; [ 1 ] ] ~depth:6 () in
  check Alcotest.bool "exhaustive" true complete;
  let tarr = Knowledge.Universe.traces exact in
  (* Build the sampled universe from a subset of the same traces. *)
  let subset = [ tarr.(0); tarr.(Array.length tarr - 1) ] in
  let sampled = Knowledge.Universe.of_traces subset in
  List.iter
    (fun (e, s) ->
      match (e, s) with
      | Some e, Some s -> if s > e then Alcotest.fail "sampled learned later than exact"
      | None, Some _ -> () (* exact may never learn within the truncation *)
      | Some _, None -> Alcotest.fail "sampled missing a learning time exact has"
      | None, None -> ())
    (Knowledge.Exact.compare_with_sampled exact sampled ~run_exact:0 ~run_sampled:0)

(* ------------------------- Proba ------------------------- *)

let test_wilson_bounds () =
  check Alcotest.bool "zero failures small bound" true
    (Core.Proba.wilson_upper ~failures:0 ~trials:100 < 0.05);
  check Alcotest.bool "all failures near 1" true
    (Core.Proba.wilson_upper ~failures:100 ~trials:100 > 0.95);
  check (Alcotest.float 1e-9) "no trials" 1.0 (Core.Proba.wilson_upper ~failures:0 ~trials:0);
  (* Monotone in failures. *)
  check Alcotest.bool "monotone" true
    (Core.Proba.wilson_upper ~failures:10 ~trials:100
    < Core.Proba.wilson_upper ~failures:50 ~trials:100)

let test_proba_tight_protocol_never_fails () =
  let e =
    Core.Proba.estimate (Protocols.Norep.dup ~m:3) ~input:[ 0; 1; 2 ]
      ~strategy:(Strategy.fair_random ()) ~trials:30 ~max_steps:4_000 ()
  in
  check Alcotest.int "no safety failures" 0 e.Core.Proba.safety_failures;
  check Alcotest.int "no liveness failures" 0 e.Core.Proba.liveness_failures;
  check (Alcotest.float 1e-9) "p = 0" 0.0 e.Core.Proba.p_fail

let test_proba_overbound_fails_often () =
  let e =
    Core.Proba.estimate
      (Protocols.Counting.resend Chan.Reorder_dup ~domain:2)
      ~input:[ 0; 1; 0; 1 ] ~strategy:(Strategy.fair_random ()) ~trials:30 ~max_steps:4_000 ()
  in
  check Alcotest.bool "fails often" true (e.Core.Proba.p_fail > 0.5)

let test_proba_by_length_grouping () =
  let series =
    Core.Proba.failure_by_length (Protocols.Norep.dup ~m:3)
      ~inputs:[ [ 0 ]; [ 1 ]; [ 0; 1 ] ]
      ~strategy:(Strategy.fair_random ()) ~trials:5 ~max_steps:2_000 ()
  in
  check Alcotest.int "two lengths" 2 (List.length series);
  List.iter
    (fun (len, e) ->
      let expected_trials = if len = 1 then 10 else 5 in
      check Alcotest.int "pooled trials" expected_trials e.Core.Proba.trials)
    series

(* ------------------------- Spec ------------------------- *)

let test_spec_norep_recoverable () =
  let r = Core.Spec.recoverability (Protocols.Norep.del ~m:2) ~input:[ 0; 1 ] () in
  check Alcotest.bool "closed" true r.Core.Spec.closed;
  check Alcotest.int "no dead states" 0 r.Core.Spec.dead;
  check Alcotest.bool "recoverable" true (Core.Spec.recoverable r)

let test_spec_oneshot_dies () =
  let p = Protocols.Counting.protocol_on Chan.Reorder_del ~domain:2 in
  let r = Core.Spec.recoverability p ~input:[ 0; 1 ] () in
  check Alcotest.bool "closed" true r.Core.Spec.closed;
  check Alcotest.bool "dead states exist" true (r.Core.Spec.dead > 0);
  check Alcotest.bool "not recoverable" false (Core.Spec.recoverable r)

let test_spec_no_drops_rescues_oneshot () =
  (* The same one-shot protocol with deletion moves forbidden has no
     dead states: only the adversary's drops kill it. *)
  let p = Protocols.Counting.protocol_on Chan.Reorder_del ~domain:2 in
  let r = Core.Spec.recoverability p ~input:[ 0; 1 ] ~allow_drops:false () in
  check Alcotest.bool "closed" true r.Core.Spec.closed;
  check Alcotest.int "no dead without drops" 0 r.Core.Spec.dead

let test_spec_receiver_deterministic () =
  check Alcotest.bool "norep" true
    (Core.Spec.receiver_deterministic (Protocols.Norep.dup ~m:3) ~trials:5);
  check Alcotest.bool "abp" true
    (Core.Spec.receiver_deterministic (Protocols.Abp.protocol ~domain:2) ~trials:5)

let test_spec_empty_input_trivially_recoverable () =
  let r = Core.Spec.recoverability (Protocols.Norep.del ~m:2) ~input:[] () in
  check Alcotest.bool "recoverable" true (Core.Spec.recoverable r);
  check Alcotest.bool "initial state already complete" true (r.Core.Spec.completed > 0)

(* ------------------------- Census ------------------------- *)

let test_census_control () =
  check Alcotest.bool "control clean" true (Core.Census.control_is_clean ())

let test_census_no_survivors () =
  let r = Core.Census.run ~samples:60 () in
  check Alcotest.int "samples" 60 r.Core.Census.samples;
  check Alcotest.int "no survivors" 0 r.Core.Census.survivors;
  check Alcotest.int "nothing undecided" 0 r.Core.Census.undecided;
  check Alcotest.int "all classified" 60
    (r.Core.Census.broken_directly + r.Core.Census.witnessed);
  check Alcotest.bool "ok" true (Core.Census.ok r)

let test_census_deterministic () =
  let a = Core.Census.run ~samples:20 ~seed:5 () in
  let b = Core.Census.run ~samples:20 ~seed:5 () in
  check Alcotest.bool "same seed same report" true (a = b)

let () =
  Alcotest.run "extensions"
    [
      ( "render",
        [
          Alcotest.test_case "chart content" `Quick test_render_chart_mentions_everything;
          Alcotest.test_case "window" `Quick test_render_window;
          Alcotest.test_case "drop marker" `Quick test_render_drop_marker;
          Alcotest.test_case "witness replay" `Quick test_render_replay_witness;
        ] );
      ( "audit",
        [
          Alcotest.test_case "clean run" `Quick test_audit_clean_run;
          Alcotest.test_case "del with drops" `Quick test_audit_del_with_drops;
          Alcotest.test_case "dup over-delivery legal" `Quick test_audit_dup_over_delivery_is_fine;
          qtest prop_audit_always_ok_on_simulator_runs;
        ] );
      ( "go-back-n",
        [
          Alcotest.test_case "correct on fifo-lossy" `Quick test_gbn_fifo_lossy_correct;
          Alcotest.test_case "window validation" `Quick test_gbn_window_validation;
          Alcotest.test_case "alphabets" `Quick test_gbn_alphabets;
          Alcotest.test_case "breaks under reordering" `Quick test_gbn_breaks_under_reordering;
          Alcotest.test_case "pipelining vs abp" `Quick test_gbn_pipelines_vs_abp;
        ] );
      ( "exact knowledge",
        [
          Alcotest.test_case "exhaustive flag" `Quick test_exact_universe_exhaustive_flag;
          Alcotest.test_case "knowledge is exact" `Quick test_exact_knowledge_is_exact;
          Alcotest.test_case "exact vs sampled ordering" `Quick test_exact_vs_sampled_ordering;
        ] );
      ( "proba",
        [
          Alcotest.test_case "wilson bounds" `Quick test_wilson_bounds;
          Alcotest.test_case "tight protocol p=0" `Quick test_proba_tight_protocol_never_fails;
          Alcotest.test_case "over-bound fails often" `Quick test_proba_overbound_fails_often;
          Alcotest.test_case "grouping by length" `Quick test_proba_by_length_grouping;
        ] );
      ( "spec",
        [
          Alcotest.test_case "norep-del recoverable" `Quick test_spec_norep_recoverable;
          Alcotest.test_case "one-shot dies under deletion" `Quick test_spec_oneshot_dies;
          Alcotest.test_case "no drops, no deaths" `Quick test_spec_no_drops_rescues_oneshot;
          Alcotest.test_case "receiver deterministic" `Quick test_spec_receiver_deterministic;
          Alcotest.test_case "empty input" `Quick test_spec_empty_input_trivially_recoverable;
        ] );
      ( "census",
        [
          Alcotest.test_case "control clean" `Quick test_census_control;
          Alcotest.test_case "no survivors" `Quick test_census_no_survivors;
          Alcotest.test_case "deterministic" `Quick test_census_deterministic;
        ] );
    ]

examples/quickstart.ml: Core Format Kernel List Protocols Seqspace Stdx

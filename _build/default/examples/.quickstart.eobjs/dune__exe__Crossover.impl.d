examples/crossover.ml: Array Channel Core Format Kernel List Protocols

examples/quickstart.mli:

examples/knowledge_trace.ml: Array Format Fun Kernel Knowledge List Option Protocols Seqspace Stdx String

examples/knowledge_trace.mli:

examples/crossover.mli:

examples/adversary_duel.ml: Channel Core Format List Printf Protocols Seqspace

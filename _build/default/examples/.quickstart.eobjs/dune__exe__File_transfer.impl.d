examples/file_transfer.ml: Array Char Format Kernel List Protocols Stdx String

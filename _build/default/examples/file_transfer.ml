(* File transfer over an unreliable link — why real data links pay for
   sequence numbers.

   A downstream system wants to ship a byte stream (here: a short text)
   across a channel that reorders and deletes packets.  Theorem 2 of
   Wang & Zuck says a *bounded* finite-alphabet protocol can carry at
   most alpha(m) distinct payloads — hopeless for arbitrary files — so
   practical stacks escape the bound the way Stenning (1976) does:
   headers that grow with the stream.  This example runs that escape
   end to end, under deletion rates from 0% to 40%, and contrasts its
   per-item cost with the finite-alphabet protocol on the payloads it
   *can* carry.

     dune exec examples/file_transfer.exe *)

let payload = "tight bounds for STP"

let () =
  let bytes = List.init (String.length payload) (fun i -> Char.code payload.[i]) in
  let domain = 256 in
  let protocol = Protocols.Stenning.protocol ~domain ~max_len:(List.length bytes) in
  Format.printf "transferring %d bytes over reorder+delete with Stenning's protocol@."
    (List.length bytes);
  List.iter
    (fun rate ->
      let strategy = Kernel.Strategy.drop_rate rate (Kernel.Strategy.fair_random ()) in
      let result =
        Kernel.Runner.run protocol ~input:(Array.of_list bytes) ~strategy
          ~rng:(Stdx.Rng.create 7) ~max_steps:500_000 ()
      in
      let trace = result.Kernel.Runner.trace in
      let received =
        String.init
          (Kernel.Global.output_length (Kernel.Trace.final trace))
          (fun i -> Char.chr (List.nth (Kernel.Global.output (Kernel.Trace.final trace)) i))
      in
      Format.printf "  drop %.0f%%: %4d steps, %4d msgs -> %S@." (rate *. 100.)
        (Kernel.Trace.length trace) (Kernel.Trace.messages_sent trace) received;
      assert (received = payload))
    [ 0.0; 0.1; 0.25; 0.4 ];

  (* The price: Stenning's alphabet here is |M^S| = n * 256.  A
     finite-alphabet protocol stays at m symbols but can only carry
     repetition-free payloads — alpha(m) of them.  Compare costs on a
     payload both can handle. *)
  Format.printf "@.cost on a 4-item repetition-free payload:@.";
  let small = [ 2; 0; 3; 1 ] in
  let run p name strategy =
    let result =
      Kernel.Runner.run p ~input:(Array.of_list small) ~strategy ~rng:(Stdx.Rng.create 11)
        ~max_steps:100_000 ()
    in
    let trace = result.Kernel.Runner.trace in
    Format.printf "  %-28s |M_S| = %3d: %4d msgs@." name p.Kernel.Protocol.sender_alphabet
      (Kernel.Trace.messages_sent trace);
    assert (Kernel.Trace.first_safety_violation trace = None)
  in
  let lossy = Kernel.Strategy.drop_first 3 (Kernel.Strategy.fair_random ()) in
  run (Protocols.Norep.del ~m:4) "norep-del (finite alphabet)" lossy;
  run (Protocols.Stenning.protocol ~domain:4 ~max_len:4) "stenning (growing alphabet)" lossy

(* Knowledge trace: watch the receiver learn.

   The paper's measuring device is epistemic: t_i is the first moment
   the receiver *knows* the value of the i-th data item — it has seen
   enough to rule out every allowable input that disagrees.  This
   example builds a point universe from many schedules of the Section 3
   protocol, then renders one run's knowledge frontier as a timeline,
   alongside what the receiver had actually written.

     dune exec examples/knowledge_trace.exe *)

let () =
  let m = 3 in
  let input = [ 1; 2; 0 ] in
  let protocol = Protocols.Norep.dup ~m in

  (* The universe must contain runs of *other* inputs too: knowledge is
     relative to what else the observed history could have meant. *)
  let traces =
    List.concat_map
      (fun x ->
        List.map
          (fun seed ->
            (Kernel.Runner.run protocol ~input:(Array.of_list x)
               ~strategy:(Kernel.Strategy.fair_random ()) ~rng:(Stdx.Rng.create seed)
               ~max_steps:1_000 ~post_roll:20 ())
              .Kernel.Runner.trace)
          [ 1; 2; 3; 4; 5; 6; 7; 8 ])
      (Seqspace.Norep.enumerate ~m)
    in
  let u = Knowledge.Universe.of_traces traces in
  let tarr = Knowledge.Universe.traces u in
  Format.printf "universe: %d runs, %d points, %d receiver-view classes@.@."
    (Array.length tarr) (Knowledge.Universe.n_points u) (Knowledge.Universe.n_classes u);

  (* Pick the first run of our chosen input and render its frontier. *)
  let run =
    match
      List.find_opt
        (fun i -> Array.to_list (Kernel.Trace.input tarr.(i)) = input)
        (List.init (Array.length tarr) Fun.id)
    with
    | Some r -> r
    | None -> failwith "no run of the chosen input in the universe"
  in
  let trace = tarr.(run) in
  Format.printf "run %d, input %a: one row per step, K = items known, W = items written@.@."
    run Seqspace.Xset.pp_sequence input;
  let horizon = min (Kernel.Trace.length trace) 40 in
  for time = 0 to horizon do
    let known = Knowledge.Learn.known_prefix_length u { Knowledge.Universe.run; time } in
    let written = Kernel.Trace.output_length_at trace time in
    Format.printf "  t=%2d  K:%s%s  W:%s%s%s@." time (String.make known '#')
      (String.make (List.length input - known) '.')
      (String.make written '#')
      (String.make (List.length input - written) '.')
      (if time > 0 then
         Format.asprintf "   after %a" Kernel.Move.pp (Kernel.Trace.moves trace).(time - 1)
       else "")
  done;

  let lt = Knowledge.Learn.learning_times u ~run in
  let wt = Knowledge.Learn.write_times u ~run in
  Format.printf "@.learning times t_i: %s@."
    (String.concat ", "
       (Array.to_list (Array.map (function Some t -> string_of_int t | None -> "?") lt)));
  Format.printf "write times:        %s@."
    (String.concat ", "
       (Array.to_list (Array.map (function Some t -> string_of_int t | None -> "?") wt)));
  assert (Knowledge.Learn.stability_ok u ~run)

(* Finale: the mutual-knowledge ladder.  phi = "R has written the
   first item"; each wrapping K costs another acknowledgement hop. *)
let () =
  let m = 3 in
  let protocol = Protocols.Norep.del ~m in
  let traces =
    List.concat_map
      (fun x ->
        List.map
          (fun seed ->
            (Kernel.Runner.run protocol ~input:(Array.of_list x)
               ~strategy:(Kernel.Strategy.fair_random ()) ~rng:(Stdx.Rng.create seed)
               ~max_steps:1_000 ~post_roll:30 ())
              .Kernel.Runner.trace)
          [ 1; 2; 3; 4 ])
      (Seqspace.Norep.enumerate ~m)
  in
  let u = Knowledge.Universe.of_traces traces in
  let tarr = Knowledge.Universe.traces u in
  let run =
    Option.get
      (List.find_opt
         (fun i -> Array.to_list (Kernel.Trace.input tarr.(i)) = [ 0; 1; 2 ])
         (List.init (Array.length tarr) Fun.id))
  in
  let module F = Knowledge.Formula in
  Format.printf "@.mutual-knowledge ladder on the same protocol family:@.";
  let rec ladder k phi =
    if k > 4 then ()
    else begin
      (match F.first_time u ~run phi with
      | Some t -> Format.printf "  %-34s first holds at t=%d@." (Format.asprintf "%a" F.pp phi) t
      | None -> Format.printf "  %-34s never within the sampled horizon@."
                  (Format.asprintf "%a" F.pp phi));
      let outer = if k mod 2 = 0 then F.Sender else F.Receiver in
      ladder (k + 1) (F.Knows (outer, phi))
    end
  in
  ladder 0 (F.Fact (F.Output_ge 1))

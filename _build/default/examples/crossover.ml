(* Crossover: watch finite headers die as the channel gets wilder.

   The paper's theorems assume unbounded reordering.  On a channel
   where a message can be overtaken at most [lag] times, bounded
   headers come back to life — until the lag catches up with them.
   This example walks one header size across increasing lags, prints
   the attack verdicts, and renders the winning schedule as a
   message-sequence chart at the first lag that breaks the protocol.

     dune exec examples/crossover.exe *)

let header_space = 3

let input = [ 0; 0; 0; 1 ] (* 0^h then 1: the wrap-around collision writes 0 where 1 is due *)

let () =
  Format.printf "stenning-mod with %d headers over lag-bounded reordering:@.@." header_space;
  let broke = ref None in
  List.iter
    (fun lag ->
      let p =
        Protocols.Stenning_mod.protocol_on
          (Channel.Chan.Bounded_reorder { lag })
          ~domain:2 ~header_space
      in
      let outcome =
        Core.Attack.search_single p ~x:input ~depth:150 ~max_sends_per_sender:10
          ~max_sends_per_receiver:10 ~allow_drops:false ()
      in
      (match outcome with
      | Core.Attack.Witness w ->
          Format.printf "  lag %d: SAFETY witness after %d moves@." lag w.Core.Attack.depth;
          if !broke = None then broke := Some (p, w)
      | Core.Attack.No_violation { closed = true; states_explored } ->
          Format.printf "  lag %d: provably safe (%d states, space closed)@." lag
            states_explored
      | Core.Attack.No_violation { closed = false; _ } ->
          Format.printf "  lag %d: search truncated@." lag))
    [ 0; 1; 2; 3 ];
  match !broke with
  | None -> Format.printf "@.no witness found (unexpected)@."
  | Some (p, w) ->
      Format.printf "@.the first winning schedule, as a sequence chart:@.@.";
      let moves = Core.Attack.run_moves w ~which:1 in
      let trace = Kernel.Render.moves_of_witness_run p ~input:(Array.of_list input) ~moves in
      print_string (Kernel.Render.chart trace);
      assert (Kernel.Trace.first_safety_violation trace <> None);
      Format.printf "@.the stale header-0 frame of item 1 lands where item %d was due.@."
        (header_space + 1)

type 'a t = { front : 'a list; back : 'a list; len : int }
(* [front] is in order, [back] is reversed; elements flow front <- back. *)

let empty = { front = []; back = []; len = 0 }

let is_empty t = t.len = 0

let length t = t.len

let push_back t x = { t with back = x :: t.back; len = t.len + 1 }

let push_front t x = { t with front = x :: t.front; len = t.len + 1 }

let pop_front t =
  match t.front with
  | x :: front -> Some (x, { t with front; len = t.len - 1 })
  | [] -> (
      match List.rev t.back with
      | [] -> None
      | x :: front -> Some (x, { front; back = []; len = t.len - 1 }))

let peek_front t =
  match t.front with
  | x :: _ -> Some x
  | [] -> ( match List.rev t.back with [] -> None | x :: _ -> Some x)

let to_list t = t.front @ List.rev t.back

let of_list xs = { front = xs; back = []; len = List.length xs }

let fold f init t = List.fold_left f (List.fold_left f init t.front) (List.rev t.back)

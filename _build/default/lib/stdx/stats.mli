(** Summary statistics for experiment measurements.

    The experiment drivers (E1–E7) aggregate per-run measurements —
    steps, messages, learning-time gaps — into the summaries printed in
    the reproduction tables. *)

type summary = {
  n : int;  (** number of samples *)
  mean : float;
  stddev : float;  (** sample standard deviation (n-1 denominator) *)
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val summarize : float list -> summary option
(** [summarize xs] is [None] on the empty list. *)

val summarize_ints : int list -> summary option

val percentile : float array -> float -> float
(** [percentile sorted q] with [q] in [\[0,1\]] over a sorted array,
    linear interpolation between ranks.  Requires a non-empty array. *)

val mean : float list -> float
(** Requires a non-empty list. *)

val histogram : buckets:int -> float list -> (float * float * int) list
(** [histogram ~buckets xs] is a list of [(lo, hi, count)] covering
    [\[min xs, max xs\]] with equal-width buckets.  Empty input gives
    the empty list. *)

val pp_summary : Format.formatter -> summary -> unit

(** Plain-text table rendering for experiment reports.

    Every reproduction table (E1–E7) is printed through this module so
    the benchmark harness, the CLI, and EXPERIMENTS.md all show the
    same rows in the same shape. *)

type align = Left | Right

type t
(** A table under construction. *)

val create : title:string -> (string * align) list -> t
(** [create ~title columns] starts a table with the given column
    headers and alignments. *)

val add_row : t -> string list -> unit
(** [add_row t cells] appends a row.
    @raise Invalid_argument when the arity differs from the header. *)

val add_separator : t -> unit
(** Inserts a horizontal rule between row groups. *)

val render : t -> string
(** The finished table, boxed with ASCII rules. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)

val cell_int : int -> string
val cell_float : ?decimals:int -> float -> string
val cell_bool : bool -> string
(** Conventional formatting helpers ("yes"/"no" for booleans). *)

type align = Left | Right

type row = Cells of string list | Separator

type t = {
  title : string;
  headers : string list;
  aligns : align list;
  mutable rows : row list; (* reversed *)
}

let create ~title columns =
  { title; headers = List.map fst columns; aligns = List.map snd columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Tabular.add_row: arity mismatch";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let render t =
  let rows = List.rev t.rows in
  let widths = Array.of_list (List.map String.length t.headers) in
  let note_row = function
    | Separator -> ()
    | Cells cells ->
        List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells
  in
  List.iter note_row rows;
  let pad align width s =
    let gap = width - String.length s in
    match align with
    | Left -> s ^ String.make gap ' '
    | Right -> String.make gap ' ' ^ s
  in
  let buf = Buffer.create 256 in
  let rule () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let line cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i c ->
        let align = List.nth t.aligns i in
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad align widths.(i) c);
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  rule ();
  line t.headers;
  rule ();
  List.iter (function Cells cells -> line cells | Separator -> rule ()) rows;
  rule ();
  Buffer.contents buf

let print t = print_string (render t); print_newline ()

let cell_int = string_of_int

let cell_float ?(decimals = 2) f = Printf.sprintf "%.*f" decimals f

let cell_bool b = if b then "yes" else "no"

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let mean xs =
  match xs with
  | [] -> invalid_arg "Stats.mean: empty"
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if n = 1 then sorted.(0)
  else begin
    let rank = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let summarize xs =
  match xs with
  | [] -> None
  | _ ->
      let a = Array.of_list xs in
      Array.sort Float.compare a;
      let n = Array.length a in
      let m = mean xs in
      let var =
        if n < 2 then 0.0
        else
          List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs
          /. float_of_int (n - 1)
      in
      Some
        {
          n;
          mean = m;
          stddev = sqrt var;
          min = a.(0);
          max = a.(n - 1);
          p50 = percentile a 0.5;
          p90 = percentile a 0.9;
          p99 = percentile a 0.99;
        }

let summarize_ints xs = summarize (List.map float_of_int xs)

let histogram ~buckets xs =
  match (xs, buckets) with
  | [], _ | _, 0 -> []
  | _ ->
      let lo = List.fold_left Float.min infinity xs in
      let hi = List.fold_left Float.max neg_infinity xs in
      let width = if hi > lo then (hi -. lo) /. float_of_int buckets else 1.0 in
      let counts = Array.make buckets 0 in
      let bucket_of x =
        let b = int_of_float ((x -. lo) /. width) in
        if b >= buckets then buckets - 1 else if b < 0 then 0 else b
      in
      List.iter (fun x -> counts.(bucket_of x) <- counts.(bucket_of x) + 1) xs;
      List.init buckets (fun i ->
          let blo = lo +. (float_of_int i *. width) in
          (blo, blo +. width, counts.(i)))

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.2f sd=%.2f min=%.0f p50=%.1f p90=%.1f p99=%.1f max=%.0f"
    s.n s.mean s.stddev s.min s.p50 s.p90 s.p99 s.max

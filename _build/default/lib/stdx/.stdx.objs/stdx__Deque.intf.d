lib/stdx/deque.mli:

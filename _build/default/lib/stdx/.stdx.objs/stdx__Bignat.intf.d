lib/stdx/bignat.mli: Format

lib/stdx/tabular.ml: Array Buffer List Printf String

lib/stdx/multiset.mli: Format

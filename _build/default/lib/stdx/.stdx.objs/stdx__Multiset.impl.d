lib/stdx/multiset.ml: Buffer Format Int List Map Printf

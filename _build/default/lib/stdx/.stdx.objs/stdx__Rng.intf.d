lib/stdx/rng.mli:

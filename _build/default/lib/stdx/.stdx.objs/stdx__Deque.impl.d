lib/stdx/deque.ml: List

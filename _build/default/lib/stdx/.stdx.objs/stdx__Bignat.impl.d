lib/stdx/bignat.ml: Array Buffer Format Printf Stdlib

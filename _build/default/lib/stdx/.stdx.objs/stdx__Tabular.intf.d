lib/stdx/tabular.mli:

lib/stdx/stats.ml: Array Float Format List

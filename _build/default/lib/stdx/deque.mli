(** Persistent double-ended queues (Okasaki's two-list representation).

    FIFO channels (the perfect and FIFO-lossy baselines) hold their
    in-flight messages in a deque; persistence lets the explorer branch
    on channel states without copying. *)

type 'a t

val empty : 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

val push_back : 'a t -> 'a -> 'a t
(** Enqueue at the back (the sending end). *)

val push_front : 'a t -> 'a -> 'a t
(** Enqueue at the front (used to undo a pop during search). *)

val pop_front : 'a t -> ('a * 'a t) option
(** Dequeue from the front (the delivering end). *)

val peek_front : 'a t -> 'a option

val to_list : 'a t -> 'a list
(** Front to back. *)

val of_list : 'a list -> 'a t

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
(** Front-to-back fold. *)

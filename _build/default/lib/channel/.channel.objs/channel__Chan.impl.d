lib/channel/chan.ml: Buffer Format Int List Printf Set Stdx

lib/channel/chan.mli: Format Stdx

module Strategy = Kernel.Strategy
module Runner = Kernel.Runner

type spec = {
  strategies : Strategy.t list;
  seeds : int list;
  max_steps : int;
}

let default_spec ?(max_steps = 20_000) ?(n_seeds = 5) () =
  {
    strategies = [ Strategy.fair_random (); Strategy.round_robin; Strategy.newest_first ];
    seeds = List.init n_seeds (fun i -> i + 1);
    max_steps;
  }

type failure = {
  input : int list;
  strategy_name : string;
  seed : int;
  verdict : Verdict.t;
}

type report = {
  protocol_name : string;
  runs : int;
  safe_runs : int;
  complete_runs : int;
  audit_failures : int;
  failures : failure list;
  steps : Stdx.Stats.summary option;
  messages : Stdx.Stats.summary option;
  messages_per_item : Stdx.Stats.summary option;
}

let run_one p ~input ~strategy ~seed ~max_steps =
  let result =
    Runner.run p ~input:(Array.of_list input) ~strategy ~rng:(Stdx.Rng.create seed) ~max_steps ()
  in
  (Verdict.of_result result, (Kernel.Audit.run result.Runner.trace).Kernel.Audit.ok)

let verify_one p ~input spec =
  List.concat_map
    (fun strategy ->
      List.map
        (fun seed -> fst (run_one p ~input ~strategy ~seed ~max_steps:spec.max_steps))
        spec.seeds)
    spec.strategies

let verify (p : Kernel.Protocol.t) ~xs spec =
  let runs = ref 0 and safe = ref 0 and complete = ref 0 and audit_bad = ref 0 in
  let failures = ref [] in
  let steps = ref [] and messages = ref [] and per_item = ref [] in
  List.iter
    (fun input ->
      List.iter
        (fun strategy ->
          List.iter
            (fun seed ->
              let v, audit_ok = run_one p ~input ~strategy ~seed ~max_steps:spec.max_steps in
              if not audit_ok then incr audit_bad;
              incr runs;
              if v.Verdict.safe then incr safe;
              if v.Verdict.complete then incr complete;
              if Verdict.all_good v then begin
                steps := float_of_int v.Verdict.steps :: !steps;
                messages := float_of_int v.Verdict.messages :: !messages;
                let n = List.length input in
                if n > 0 then
                  per_item := (float_of_int v.Verdict.messages /. float_of_int n) :: !per_item
              end
              else
                failures :=
                  { input; strategy_name = strategy.Strategy.name; seed; verdict = v }
                  :: !failures)
            spec.seeds)
        spec.strategies)
    xs;
  {
    protocol_name = p.Kernel.Protocol.name;
    runs = !runs;
    safe_runs = !safe;
    complete_runs = !complete;
    audit_failures = !audit_bad;
    failures = List.rev !failures;
    steps = Stdx.Stats.summarize !steps;
    messages = Stdx.Stats.summarize !messages;
    messages_per_item = Stdx.Stats.summarize !per_item;
  }

let clean r = r.failures = [] && r.audit_failures = 0

let pp_report ppf r =
  Format.fprintf ppf "%s: %d runs, %d safe, %d complete, %d failures" r.protocol_name r.runs
    r.safe_runs r.complete_runs (List.length r.failures);
  match r.messages_per_item with
  | Some s -> Format.fprintf ppf " (msgs/item mean %.1f)" s.Stdx.Stats.mean
  | None -> ()

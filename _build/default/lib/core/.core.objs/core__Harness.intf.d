lib/core/harness.mli: Format Kernel Stdx Verdict

lib/core/verdict.mli: Format Kernel

lib/core/spec.ml: Array Channel Format Fun Hashtbl Kernel List Option Queue String

lib/core/harness.ml: Array Format Kernel List Stdx Verdict

lib/core/proba.mli: Kernel

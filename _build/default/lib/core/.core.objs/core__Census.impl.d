lib/core/census.ml: Array Attack Channel Harness Kernel List Stdx

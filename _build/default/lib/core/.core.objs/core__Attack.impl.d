lib/core/attack.ml: Array Channel Format Hashtbl Int Kernel List Printf Queue Seqspace Set Stack

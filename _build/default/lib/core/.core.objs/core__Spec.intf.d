lib/core/spec.mli: Format Kernel

lib/core/bounds.ml: Array Float Fun Hashtbl Int Kernel Knowledge List Option Stdx

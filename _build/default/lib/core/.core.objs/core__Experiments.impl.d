lib/core/experiments.ml: Array Attack Bounds Census Channel Float Format Fun Harness Int Kernel Knowledge List Printf Proba Protocols Seqspace Spec Stdx

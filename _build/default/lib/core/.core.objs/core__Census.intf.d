lib/core/census.mli: Kernel Stdx

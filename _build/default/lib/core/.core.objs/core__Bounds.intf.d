lib/core/bounds.mli: Kernel Stdx

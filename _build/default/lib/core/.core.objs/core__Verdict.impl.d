lib/core/verdict.ml: Format Kernel Option

lib/core/proba.ml: Array Float Hashtbl Int Kernel List Option Stdx

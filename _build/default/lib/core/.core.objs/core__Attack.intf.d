lib/core/attack.mli: Format Kernel

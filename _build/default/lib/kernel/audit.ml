module Chan = Channel.Chan
module Multiset = Stdx.Multiset

type channel_report = {
  sent : int;
  delivered : int;
  dropped : int;
  in_flight : int;
  conserved : bool;
  no_creation : bool;
  discipline : bool;
  debt : int;
}

type t = {
  forward : channel_report;
  backward : channel_report;
  ok : bool;
}

let channel_report chan =
  let sent = Chan.sent_total chan in
  let delivered = Chan.delivered_total chan in
  let dropped = Chan.dropped_total chan in
  let in_flight = Multiset.cardinal (Chan.dlvrble chan) in
  let kind = Chan.kind chan in
  (* On a duplication channel re-delivery is the point; in-flight is a
     0/1 support set, so conservation is per-message reachability, not
     counting.  Elsewhere the exact count balance must hold. *)
  let conserved =
    if Chan.duplicates kind then dropped = 0 else delivered + dropped + in_flight = sent
  in
  let messages = Chan.observed chan in
  let no_creation =
    List.for_all
      (fun m -> Chan.delivered_count chan m = 0 || Chan.sent_count chan m > 0)
      messages
  in
  let discipline =
    if Chan.duplicates kind then List.for_all (fun m -> Chan.dropped_count chan m = 0) messages
    else
      List.for_all (fun m -> Chan.delivered_count chan m <= Chan.sent_count chan m) messages
  in
  {
    sent;
    delivered;
    dropped;
    in_flight;
    conserved;
    no_creation;
    discipline;
    debt = Chan.debt chan;
  }

let run trace =
  let final = Trace.final trace in
  let forward = channel_report final.Global.chan_sr in
  let backward = channel_report final.Global.chan_rs in
  let ok_of r = r.conserved && r.no_creation && r.discipline in
  { forward; backward; ok = ok_of forward && ok_of backward }

let pp_report ppf r =
  Format.fprintf ppf "sent=%d delivered=%d dropped=%d in-flight=%d debt=%d%s" r.sent r.delivered
    r.dropped r.in_flight r.debt
    (if r.conserved && r.no_creation && r.discipline then "" else " [VIOLATION]")

let pp ppf t =
  Format.fprintf ppf "@[<v>S->R: %a@,R->S: %a@,%s@]" pp_report t.forward pp_report t.backward
    (if t.ok then "audit: ok" else "audit: MODEL VIOLATION")

type t = Send of int | Write of int

let pp ppf = function
  | Send m -> Format.fprintf ppf "send(%d)" m
  | Write d -> Format.fprintf ppf "write(%d)" d

let equal a b =
  match (a, b) with
  | Send m, Send n -> m = n
  | Write d, Write e -> d = e
  | (Send _ | Write _), _ -> false

(** Actions a process can take in response to an event.

    The sender may [Send]; the receiver may [Send] (acknowledgements)
    and [Write] (append a data item to the output tape [Y]).  The
    simulator rejects [Write] from the sender. *)

type t =
  | Send of int  (** message symbol from this process's alphabet *)
  | Write of int  (** data item appended to the output tape *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

(** Model and fairness audits over finished traces.

    The simulator enforces the hard model invariants online
    ({!Sim.Model_violation}); this module checks the *quantitative*
    properties of §2.2 after the fact, per trace:

    - conservation: on every channel,
      [delivered + dropped + in-flight = sent];
    - no-creation: nothing was delivered that was never sent
      (Property 1's "messages cannot be created by the channel");
    - duplication discipline: deletion/FIFO/perfect channels never
      delivered a message more often than it was sent; duplication
      channels never dropped anything;
    - fairness debt at the end of the run: what a fair continuation
      would still owe (Property 1c for duplication channels, pending
      in-flight copies otherwise).  A completed run may stop with
      positive debt — fairness constrains infinite runs — so the debt
      is reported, not judged.

    These checks are cheap and run over the final channel counters, so
    the harness can afford them on every run. *)

type channel_report = {
  sent : int;
  delivered : int;
  dropped : int;
  in_flight : int;
  conserved : bool;  (** [delivered + dropped + in_flight = sent] *)
  no_creation : bool;  (** per message, deliveries never exceed what duplication allows *)
  discipline : bool;  (** kind-specific: dup never drops, del never over-delivers *)
  debt : int;
}

type t = {
  forward : channel_report;  (** sender → receiver *)
  backward : channel_report;  (** receiver → sender *)
  ok : bool;  (** all boolean checks on both channels *)
}

val run : Trace.t -> t

val pp : Format.formatter -> t -> unit

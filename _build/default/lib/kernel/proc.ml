type t =
  | Proc : {
      state : 's;
      step : 's -> Event.t -> 's * Action.t list;
      encode : 's -> string;
    }
      -> t

let default_encode s = Marshal.to_string s []

let make ?(encode = default_encode) ~state ~step () = Proc { state; step; encode }

let step (Proc p) event =
  let state, actions = p.step p.state event in
  (Proc { p with state }, actions)

let encode (Proc p) = p.encode p.state

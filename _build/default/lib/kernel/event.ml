type t = Wake | Deliver of int

let pp ppf = function
  | Wake -> Format.pp_print_string ppf "wake"
  | Deliver m -> Format.fprintf ppf "deliver(%d)" m

let equal a b =
  match (a, b) with
  | Wake, Wake -> true
  | Deliver m, Deliver n -> m = n
  | (Wake | Deliver _), _ -> false

lib/kernel/sim.ml: Action Channel Event Global Hist List Move Printf Proc Protocol String

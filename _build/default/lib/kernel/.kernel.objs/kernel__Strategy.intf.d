lib/kernel/strategy.mli: Global Move Protocol Stdx

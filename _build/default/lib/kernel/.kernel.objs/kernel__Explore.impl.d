lib/kernel/explore.ml: Channel Global Hashtbl List Move Queue Sim Trace

lib/kernel/event.mli: Format

lib/kernel/action.ml: Format

lib/kernel/audit.mli: Format Trace

lib/kernel/proc.ml: Action Event Marshal

lib/kernel/proc.mli: Action Event

lib/kernel/render.ml: Array Buffer List Move Printf Protocol Sim String Trace

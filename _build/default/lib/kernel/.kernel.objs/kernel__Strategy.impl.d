lib/kernel/strategy.ml: Array Channel Global Int List Move Printf Protocol Stdx

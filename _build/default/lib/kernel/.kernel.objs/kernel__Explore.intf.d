lib/kernel/explore.mli: Global Move Protocol Trace

lib/kernel/hist.ml: Action Buffer Event Format List

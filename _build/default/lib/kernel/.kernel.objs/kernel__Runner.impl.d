lib/kernel/runner.ml: Format Global List Sim Stdx Strategy Trace

lib/kernel/protocol.ml: Action Channel Printf Proc

lib/kernel/event.ml: Format

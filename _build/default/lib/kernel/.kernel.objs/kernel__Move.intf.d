lib/kernel/move.mli: Format

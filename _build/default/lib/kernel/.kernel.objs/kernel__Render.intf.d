lib/kernel/render.mli: Move Protocol Trace

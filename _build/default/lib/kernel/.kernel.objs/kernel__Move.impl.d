lib/kernel/move.ml: Format

lib/kernel/sim.mli: Global Move Protocol

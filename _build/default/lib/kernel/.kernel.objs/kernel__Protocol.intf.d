lib/kernel/protocol.mli: Action Channel Proc

lib/kernel/trace.mli: Format Global Hist Move Protocol

lib/kernel/hist.mli: Action Event Format

lib/kernel/action.mli: Format

lib/kernel/global.mli: Channel Hist Proc Protocol

lib/kernel/global.ml: Array Channel Hist List Proc Protocol String

lib/kernel/audit.ml: Channel Format Global List Stdx Trace

lib/kernel/trace.ml: Array Channel Format Global Hist List Move Printf Protocol

lib/kernel/runner.mli: Format Protocol Stdx Strategy Trace

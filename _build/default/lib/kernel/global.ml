module Chan = Channel.Chan

type t = {
  input : int array;
  sender : Proc.t;
  receiver : Proc.t;
  s_hist : Hist.t;
  r_hist : Hist.t;
  chan_sr : Chan.t;
  chan_rs : Chan.t;
  output_rev : int list;
  time : int;
}

let initial (p : Protocol.t) ~input =
  {
    input;
    sender = p.Protocol.make_sender ~input;
    receiver = p.Protocol.make_receiver ();
    s_hist = Hist.empty;
    r_hist = Hist.empty;
    chan_sr = Chan.create p.Protocol.channel;
    chan_rs = Chan.create p.Protocol.channel;
    output_rev = [];
    time = 0;
  }

let output t = List.rev t.output_rev

let output_length t = List.length t.output_rev

let safety_ok t =
  let n = Array.length t.input in
  let rec check i = function
    | [] -> true
    | d :: older -> i < n && t.input.(i) = d && check (i - 1) older
  in
  (* output_rev is newest first: the newest item sits at index |Y|−1. *)
  check (List.length t.output_rev - 1) t.output_rev

let complete t = output_length t = Array.length t.input

let encode t =
  String.concat "|"
    [
      Proc.encode t.sender;
      Proc.encode t.receiver;
      Chan.encode t.chan_sr;
      Chan.encode t.chan_rs;
      string_of_int (output_length t);
    ]

let encode_with_r_view t = encode t ^ "|" ^ Hist.encode t.r_hist

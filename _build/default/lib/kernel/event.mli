(** Events a process can observe.

    A process takes a step either because the scheduler wakes it
    ([Wake] — a pure local step, its clock ticks) or because the
    channel delivers a message to it ([Deliver]).  Following §2.2 we
    assume a message cannot be delivered in the step it is sent and at
    most one message is delivered to a process per step. *)

type t =
  | Wake
  | Deliver of int  (** message symbol from the peer's alphabet *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

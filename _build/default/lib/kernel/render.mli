(** Plain-text rendering of traces as message-sequence charts.

    One line per move, three columns: the sender's lane, the channel,
    the receiver's lane.  Deliveries are drawn as arrows from the
    sending side's past; the output tape grows on the right margin.
    Used by the CLI's verbose mode and the examples — and invaluable
    when reading an attack witness, which is just a trace once
    projected onto one run. *)

val chart : Trace.t -> string
(** The full chart. *)

val chart_window : Trace.t -> from:int -> upto:int -> string
(** [chart_window t ~from ~upto] renders moves [from..upto-1] only
    (clamped to the trace). *)

val moves_of_witness_run :
  Protocol.t -> input:int array -> moves:Move.t list -> Trace.t
(** Replay a move script into a trace (for rendering attack
    witnesses).  Stops at the first disabled move. *)

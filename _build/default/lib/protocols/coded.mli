(** The generalized tight protocol: arbitrary allowable sets via μ(X).

    The end of §3 notes that solving [𝒳]-STP(dup) amounts to mapping
    each input sequence to a repetition-free message sequence,
    prefix-monotonically.  This protocol makes the observation
    executable for any explicit [𝒳] admitting such a code: the sender
    walks [𝒳]'s prefix trie along its input and transmits the *edge
    labels* (message symbols) instead of raw data; the receiver walks
    the same trie keyed on fresh symbols and writes the data labels of
    the edges it traverses.

    With [𝒳] = all repetition-free sequences and the identity
    labelling this degenerates to {!Norep}; with other allowable sets
    — e.g. sequences *with* repetitions such as [⟨0,0,1⟩] — it shows
    the bound is about the number of sequences, not their shape:
    anything with [|𝒳| ≤ α(m)] and a labellable trie goes through an
    [m]-symbol alphabet. *)

val make :
  name:string ->
  channel:Channel.Chan.kind ->
  m:int ->
  xs:int list list ->
  (Kernel.Protocol.t, Seqspace.Codes.error) result
(** [make ~name ~channel ~m ~xs] builds the protocol for the explicit
    allowable set [xs] over an [m]-symbol message alphabet, failing
    with the offending trie node when no repetition-free
    prefix-monotone labelling exists (which Theorem 1 guarantees
    happens whenever [|𝒳| > α(m)], and the greedy labelling may also
    report for unlucky smaller sets whose trie is too bushy). *)

val dup : m:int -> xs:int list list -> (Kernel.Protocol.t, Seqspace.Codes.error) result
(** [make] targeting the reorder+dup channel. *)

val del : m:int -> xs:int list list -> (Kernel.Protocol.t, Seqspace.Codes.error) result
(** [make] targeting the reorder+del channel. *)

(** Stenning's protocol with bounded headers — the [LMF88] victim.

    Identical to {!Stenning} except sequence numbers are taken modulo
    a fixed [header_space], making the alphabet genuinely finite:
    [|M^S| = header_space · domain].  Lynch–Mansour–Fekete (and, in
    the sharper counting form, this paper) prove such a protocol
    cannot transmit all sequences over reordering channels: two items
    whose indices collide modulo [header_space] are indistinguishable
    to the receiver once the channel holds an old copy.  The product
    attack search of E2/E3 finds the collision automatically. *)

val protocol_on : Channel.Chan.kind -> domain:int -> header_space:int -> Kernel.Protocol.t

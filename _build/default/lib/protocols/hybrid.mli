(** The §5 hybrid protocol: Alternating Bit ⊕ unbounded recovery.

    §5 of the paper exhibits a protocol that is *weakly bounded* (in
    the [LMF88] sense) yet "clearly has runs that never fully recover
    from faults", to argue that weak boundedness is too permissive and
    motivate Definition 2.  The construction: transmit with an
    Alternating Bit protocol under an assumed global clock; when a
    process fails to receive a message in time, switch to the
    [AFWZ89] protocol on a fresh message alphabet, under which the
    receiver learns the rest of the sequence only after a number of
    steps that depends on the whole input, not on the next item's
    index ("when [t_i] is obtained, so are all the [t_j]'s").

    This module reproduces that shape: ABP in normal mode (one
    outstanding message, no retransmission, a wake-count timeout
    standing in for the paper's global clock); on timeout the sender
    switches to the counting-ladder protocol ({!Ladder}) on disjoint
    symbols, which communicates the rank of the entire input; the
    receiver then writes the remaining suffix all at once.

    The protocol is weakly bounded — between faults each new item
    costs O(1) steps, and the recovery, once finished, yields *all*
    remaining [t_j] simultaneously — but not bounded: a single fault
    right after [t_i] forces a recovery of length [Θ(rank(X)·W)],
    which no function [f(i)] of the item index can bound.  Experiment
    E5 measures exactly this. *)

val protocol :
  xset:Seqspace.Xset.t ->
  domain:int ->
  drop_budget:int ->
  ?timeout:int ->
  unit ->
  Kernel.Protocol.t
(** [protocol ~xset ~domain ~drop_budget ()] — inputs come from
    [xset] over [\[0, domain)].  Sender alphabet [2·domain + 2]
    (ABP data messages plus the ladder's [a]/[b]); receiver alphabet 3
    (two ABP acknowledgements plus the ladder's echo).  [timeout]
    (default 8) is the number of fruitless wake-ups after which a
    process declares a fault.

    The ABP phase assumes the §5 synchrony (no adversarial
    reordering before the first fault); drive it with FIFO-like
    schedules as E5 does. *)

val recovery_symbol_a : domain:int -> int
(** Wire symbol of the ladder's [a] in the combined alphabet. *)

val recovery_symbol_b : domain:int -> int

val recovery_echo : int
(** Wire symbol of the ladder's echo in the receiver alphabet. *)

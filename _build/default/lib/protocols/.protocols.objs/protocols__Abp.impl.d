lib/protocols/abp.ml: Action Array Channel Event Kernel Printf Proc Protocol

lib/protocols/hybrid.ml: Action Array Channel Event Kernel Ladder List Printf Proc Protocol Seqspace

lib/protocols/coded.mli: Channel Kernel Seqspace

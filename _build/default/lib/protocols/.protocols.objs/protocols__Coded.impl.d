lib/protocols/coded.ml: Action Array Channel Event Int Kernel List Printf Proc Protocol Seqspace Set

lib/protocols/stenning_mod.mli: Channel Kernel

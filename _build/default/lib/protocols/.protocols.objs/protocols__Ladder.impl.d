lib/protocols/ladder.ml: Action Array Channel Event Kernel List Printf Proc Protocol Seqspace

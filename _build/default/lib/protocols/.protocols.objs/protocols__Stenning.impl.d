lib/protocols/stenning.ml: Action Array Channel Event Kernel Printf Proc Protocol

lib/protocols/stenning_mod.ml: Action Array Channel Event Kernel Printf Proc Protocol

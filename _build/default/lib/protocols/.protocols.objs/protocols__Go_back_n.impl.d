lib/protocols/go_back_n.ml: Action Array Channel Event Kernel Printf Proc Protocol

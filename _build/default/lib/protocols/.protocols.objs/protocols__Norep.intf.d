lib/protocols/norep.mli: Kernel

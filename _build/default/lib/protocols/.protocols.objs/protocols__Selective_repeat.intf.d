lib/protocols/selective_repeat.mli: Channel Kernel

lib/protocols/abp.mli: Channel Kernel

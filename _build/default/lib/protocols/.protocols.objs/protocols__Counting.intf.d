lib/protocols/counting.mli: Channel Kernel

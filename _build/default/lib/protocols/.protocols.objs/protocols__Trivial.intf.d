lib/protocols/trivial.mli: Kernel

lib/protocols/trivial.ml: Action Array Channel Event Kernel Proc Protocol

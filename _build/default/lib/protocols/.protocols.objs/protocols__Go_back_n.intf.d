lib/protocols/go_back_n.mli: Channel Kernel

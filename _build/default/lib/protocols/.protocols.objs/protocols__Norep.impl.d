lib/protocols/norep.ml: Action Array Channel Event Int Kernel Printf Proc Protocol Set

lib/protocols/ladder.mli: Kernel Seqspace

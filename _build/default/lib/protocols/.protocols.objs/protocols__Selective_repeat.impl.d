lib/protocols/selective_repeat.ml: Action Array Channel Event Int Kernel List Map Option Printf Proc Protocol

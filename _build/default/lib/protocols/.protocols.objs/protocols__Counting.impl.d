lib/protocols/counting.ml: Action Array Channel Event Kernel Printf Proc Protocol

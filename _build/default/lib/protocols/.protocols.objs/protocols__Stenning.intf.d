lib/protocols/stenning.mli: Channel Kernel

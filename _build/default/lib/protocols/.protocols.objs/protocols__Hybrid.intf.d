lib/protocols/hybrid.mli: Kernel Seqspace

(** The paper's tight protocols (§3 and end of §4).

    Domain [D = {0,…,m−1}]; allowable set [𝒳] = all repetition-free
    sequences over [D] — exactly [α(m)] of them, meeting the bound of
    Theorems 1 and 2.  Both alphabets equal [D].

    Sender: transmit the data items in order; wait for the matching
    acknowledgement before moving to the next (re-sending the current
    item while waiting — harmless on dup channels, necessary on del
    channels).  Receiver: a message symbol never seen before is the
    next data item — write it and acknowledge it; previously seen
    symbols are stale copies and are re-acknowledged only.

    Why reordering is harmless: the sender first sends item [i+1] only
    after receiving an acknowledgement for item [i], which the
    receiver first sent only after first receiving item [i]; so the
    *first* arrival of each fresh symbol happens in input order, and
    freshness is exactly what the receiver keys on.  Why duplication
    is harmless: duplicates are never fresh.  Why deletion is
    harmless: both sides persistently re-send their current symbol,
    and re-sent copies carry the same symbol, so they can never be
    mistaken for progress.

    The protocol is finite-state (as the paper notes) and, over
    deletion channels, bounded in the sense of Definition 2: from any
    point, a cooperative schedule lets the receiver learn the next
    item within a constant number of steps. *)

val dup : m:int -> Kernel.Protocol.t
(** The §3 instance, targeting {!Channel.Chan.Reorder_dup}. *)

val del : m:int -> Kernel.Protocol.t
(** The §4 instance, targeting {!Channel.Chan.Reorder_del}. *)

(** Go-Back-N — the classic sliding-window data-link protocol.

    Sits between the Alternating Bit protocol (window 1, two headers)
    and Stenning's protocol (unbounded headers) in the design space the
    paper's bounds carve up: headers are sequence numbers modulo
    [window + 1], frames carry [(seq mod M, data)], acknowledgements
    are cumulative ([next expected seq] modulo [M]), and the sender
    keeps up to [window] frames outstanding, cycling retransmissions
    through them.

    Correct over FIFO channels with loss (the textbook setting — the
    modulus [M = window + 1] is exactly what FIFO order makes
    sufficient).  Over reordering channels its finite header space
    makes it one more victim of the paper's theorems: a stale frame
    whose sequence number collides modulo [M] is accepted as new.  The
    attack searcher finds the collision; E7 measures the pipelining
    benefit the window buys on its home channel. *)

val protocol :
  domain:int -> window:int -> Kernel.Protocol.t
(** [protocol ~domain ~window] over {!Channel.Chan.Fifo_lossy}.
    Sender alphabet [(window+1)·domain]; receiver alphabet
    [window+1].
    @raise Invalid_argument if [window < 1]. *)

val protocol_on :
  Channel.Chan.kind -> domain:int -> window:int -> Kernel.Protocol.t
(** The same machines on another channel — the attack-experiment
    configuration. *)

(** An unbounded solution to [𝒳]-STP(del) for countable [𝒳] —
    a reconstruction of the AFWZ89 protocol's role in the paper.

    §4 and §5 of the paper lean on a protocol from [AFWZ89] ("Reliable
    communication using unreliable channels", manuscript, 1989) that
    solves [𝒳]-STP(del) for countable [𝒳] with a finite alphabet but
    is *unbounded*: the time the receiver needs to learn the next data
    item depends on the history of the run (and on the length of the
    input), not on the item's index.  The manuscript is not available
    to us, so this module implements a protocol with the same
    interface and the same properties, built from the one resource a
    reorder+delete channel cannot corrupt: {b counts} (a deletion
    channel never duplicates, so receiving [j] copies of a symbol
    certifies that at least [j] were sent).

    Mechanism ("counting ladder").  Fix an enumeration of [𝒳]; the
    sender's input has rank [k].  Let [W = 2B + 1] where [B] bounds
    the number of copies the channel may delete in a run.
    - Sender, phase 1: send copies of symbol [a], never exceeding a
      lifetime cap of [k·W] copies.
    - Receiver: echo one copy of [y] per received [a] (so its [y]
      output never exceeds its [a] intake — an unforgeable count
      certificate).
    - Sender, phase 2 (entered once it has received more than
      [(k−1)·W] echoes, which certifies the receiver already holds
      more than [(k−1)·W] copies of [a]): send up to [W] copies of a
      terminator symbol [b].
    - Receiver, on the first [b]: it now knows
      [(k−1)·W < count(a) ≤ k·W], so [k = ⌈count(a)/W⌉] exactly; it
      decodes [k], writes the rank-[k] sequence, and is done.

    Safety is unconditional (the two count bounds hold in every run of
    a non-duplicating channel).  Liveness holds in every fair run with
    at most [B] deletions.  The learning time is [Θ(rank(X)·W)] steps
    — growing with the input's rank and the deletion budget, and all
    items are learned at once (compare §5: "when [t_i] is obtained, so
    are all the [t_j]'s for every [j ≥ i]").  This is precisely the
    unboundedness the paper contrasts with Definition 2, and what
    experiments E4/E5 measure.

    Substitution note (recorded in DESIGN.md): the deletion budget [B]
    is a parameter of the run universe here, whereas [AFWZ89] handles
    unrestricted deletion with a cleverer scheme; the properties the
    *present* paper uses — existence, finite alphabet, unboundedness —
    are preserved. *)

val protocol : xset:Seqspace.Xset.t -> drop_budget:int -> Kernel.Protocol.t
(** [protocol ~xset ~drop_budget] transmits members of [xset]; sender
    alphabet [{a, b}] (2 symbols), receiver alphabet [{y}] (1 symbol).
    @raise Invalid_argument at sender construction if the input is not
    in [xset]. *)

val window : drop_budget:int -> int
(** [window ~drop_budget] is [W = 2·drop_budget + 1]. *)

val expected_learning_steps : xset:Seqspace.Xset.t -> drop_budget:int -> int list -> int
(** [expected_learning_steps ~xset ~drop_budget x] is the ideal-schedule
    message count before the receiver can decode [x] — the
    [Θ(rank·W)] cost E5 plots. *)

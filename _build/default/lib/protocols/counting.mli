(** The naive protocol that ignores the theorems — an attack victim.

    Sender: send each data item once, in order, as its own value.
    Receiver: write every delivered message.  This is the {!Trivial}
    protocol pointed at an unreliable channel, and it claims to
    transmit *all* sequences over [D] — i.e. [|𝒳| = ∞ > α(m)] with
    [m = |D|] — so by Theorems 1 and 2 it must be breakable.  It is:
    duplication makes the receiver write items twice, reordering makes
    it write them out of order, deletion makes it skip items.
    Experiments E2/E3 exhibit concrete interleavings (found by the
    product attack search) for each failure. *)

val protocol_on : Channel.Chan.kind -> domain:int -> Kernel.Protocol.t

val resend : Channel.Chan.kind -> domain:int -> Kernel.Protocol.t
(** A variant whose sender re-sends the current item until it is
    acknowledged (receiver acknowledges every delivery with the item's
    value).  Fixes nothing fundamental — the attack still wins — but
    it is the natural "add retransmission" patch a practitioner would
    try first, so the experiments include it. *)

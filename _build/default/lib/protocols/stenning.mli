(** Stenning's protocol ([Ste76]) — unbounded sequence numbers.

    Data messages carry [(seq, data)]; acknowledgements carry the
    highest in-order sequence number received.  Correct over channels
    that reorder, delete *and* duplicate, for every input set — but
    only because its alphabet grows with the input: for an input of
    length [n] over domain [d], the sender alphabet is [n·d] and the
    receiver alphabet is [n+1].

    The protocol exists here as the baseline illuminating the
    theorems: the paper's bounds say that *finite* alphabets cap
    [|𝒳|] at [α(m)]; Stenning escapes the cap exactly by not having a
    finite alphabet (its per-instance alphabet is finite but grows
    unboundedly with the sequences transmitted, i.e. there is no
    single pair of protocols with fixed [M^S], [M^R]).  Experiment E7
    measures what the escape costs in header bits. *)

val protocol : domain:int -> max_len:int -> Kernel.Protocol.t
(** [protocol ~domain ~max_len] handles inputs of length at most
    [max_len]; the declared alphabets are sized accordingly. *)

val protocol_on : Channel.Chan.kind -> domain:int -> max_len:int -> Kernel.Protocol.t

(** Selective Repeat — the buffering sliding-window protocol.

    Go-Back-N discards out-of-order frames; Selective Repeat buffers
    them.  Frames carry [(seq mod M, data)]; the receiver accepts any
    frame within its [window]-wide receive window, buffers it, writes
    the contiguous prefix, and acknowledges the specific frame (not
    cumulatively).  The sender retransmits only unacknowledged frames.

    The textbook constraint: the sequence space must satisfy
    [M ≥ 2·window], because after the receiver's window slides, the
    old and new windows must not overlap modulo [M] — otherwise a
    retransmitted old frame is mistaken for a new one.  [protocol]
    uses the safe [M = 2·window]; [protocol_mod] exposes [M] so the
    attack search can exhibit the classic failure at
    [window < M < 2·window] (experiment rows in E2/E3's spirit; see
    the test suite's [sr breaks with small modulus]).

    Like every finite-header protocol it falls to the paper's theorems
    under unbounded reordering; its home is {!Channel.Chan.Fifo_lossy}. *)

val protocol : domain:int -> window:int -> Kernel.Protocol.t
(** [M = 2·window] over {!Channel.Chan.Fifo_lossy}.  Sender alphabet
    [2·window·domain], receiver alphabet [2·window].
    @raise Invalid_argument if [window < 1]. *)

val protocol_mod :
  Channel.Chan.kind -> domain:int -> window:int -> modulus:int -> Kernel.Protocol.t
(** Explicit sequence space; [modulus > window] required. *)

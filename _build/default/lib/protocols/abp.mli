(** The Alternating Bit protocol ([BSW69]).

    The classic data-link protocol over a FIFO channel that may lose
    (but not reorder) messages.  Data messages carry one control bit
    and one data item (sender alphabet [2·domain]); acknowledgements
    carry the bit alone (receiver alphabet 2).  Both sides retransmit
    their current message on every wake-up, so any loss rate with
    eventual delivery is tolerated.

    ABP appears in the paper in §5: it is the "normal mode" of the
    weakly-bounded hybrid protocol, and it is the canonical example of
    a protocol that transmits *all* sequences over [D] — something
    Theorems 1 and 2 show is impossible once the channel may also
    reorder, which is why ABP here targets {!Channel.Chan.Fifo_lossy}
    and is demonstrably unsafe under reordering (experiment E2 attacks
    it on a reorder+dup channel). *)

val protocol : domain:int -> Kernel.Protocol.t

val protocol_on : Channel.Chan.kind -> domain:int -> Kernel.Protocol.t
(** Same machines declared against a different channel — used by the
    attack experiments to exhibit ABP's unsafety under reordering. *)

val encode_msg : domain:int -> bit:int -> data:int -> int
(** The wire encoding of data messages: [bit·domain + data]. *)

val decode_msg : domain:int -> int -> int * int
(** Inverse of {!encode_msg}: [(bit, data)]. *)

(** The trivial protocol for perfect channels (§1).

    With a channel that preserves order and loses nothing, the sender
    simply sends each data item once, in order, and the receiver
    writes every delivery.  Solves [𝒳]-STP for every [𝒳] over the
    domain — the baseline showing that all difficulty comes from the
    channel. *)

val protocol : domain:int -> Kernel.Protocol.t
(** [protocol ~domain] transmits sequences over [\[0, domain)];
    sender alphabet is [domain]. *)

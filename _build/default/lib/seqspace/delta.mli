(** The copy-count recursion of §4.

    The deletion-channel impossibility proof (Theorem 2) needs the
    channel to hoard copies of messages.  For an [f]-bounded system it
    fixes [c = Σ_{i=1}^{β} f(i)] (the step budget within which an
    "efficient" [β]-extension must let the receiver learn) and defines

    {v δ_m = c,   δ_ℓ = δ_{ℓ+1} · (1 + c·(m−ℓ)·α(m−ℓ)) v}

    so that [δ_0] copies of each message suffice to drive the induction
    of Lemma 4 down to a two-run del-decisive tuple.  These quantities
    appear in experiment E3's report to show the (enormous but finite)
    resource the constructive attack is entitled to; the attack search
    itself explores far smaller instances. *)

val c_of_f : f:(int -> int) -> beta:int -> int
(** [c_of_f ~f ~beta] is [Σ_{i=1}^{β} f(i)]. *)

val deltas : m:int -> c:int -> Stdx.Bignat.t array
(** [deltas ~m ~c] is [[|δ_0; …; δ_m|]] for the given alphabet size and
    step budget.  [δ_m = c]. *)

val delta0 : m:int -> c:int -> Stdx.Bignat.t
(** [delta0 ~m ~c = (deltas ~m ~c).(0)], the number of hoarded copies
    per message that suffices to start the induction. *)

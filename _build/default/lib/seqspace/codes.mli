(** Prefix-monotone repetition-free message codes — the [μ(X)] mapping.

    The end of §3 of the paper observes that solving [X]-STP(dup)
    requires mapping every input sequence [X ∈ 𝒳] to a message
    sequence [μ(X)] over the sender alphabet such that (1) [μ(X)] is
    repetition-free and (2) [μ(X₁)] is a prefix of [μ(X₂)] only when
    [X₁] is a prefix of [X₂].  Such a mapping exists exactly when the
    prefix tree of [𝒳] can be edge-labelled with message symbols so
    that every root path is repetition-free and siblings get distinct
    labels.

    This module builds the labelling greedily over the prefix trie of
    an explicit allowable set, reports precisely why it fails when
    [𝒳] is too big, and exposes the trie to the generalized (coded)
    protocol, which transmits arbitrary allowable sets of size up to
    [α(m)]. *)

type t
(** A built code: a labelled prefix trie. *)

type node
(** A trie node; the root corresponds to the empty input prefix. *)

type error =
  | Too_many_children of { prefix : int list; needed : int; available : int }
      (** The node for [prefix] has more outgoing data edges than
          unused message symbols remain on its root path. *)
  | Duplicate_sequence of int list
      (** The allowable set listed the same sequence twice. *)

val build : m:int -> int list list -> (t, error) result
(** [build ~m xs] labels the prefix trie of [xs] with symbols from
    [\[0, m)].  Every sequence of [xs] and every prefix of one becomes
    a trie node (allowable sets are implicitly prefix-closed here:
    transmitting [X] passes through its prefixes). *)

val root : t -> node

val step_by_data : t -> node -> int -> node option
(** [step_by_data t n d] follows the outgoing edge whose *data* label
    is [d] — the sender's view: next input item [d] selects the next
    message symbol. *)

val step_by_msg : t -> node -> int -> node option
(** [step_by_msg t n μ] follows the outgoing edge whose *message*
    label is [μ] — the receiver's view: a fresh message symbol selects
    the next data item. *)

val msg_of_edge : t -> node -> int -> int option
(** [msg_of_edge t n d] is the message symbol labelling the data-[d]
    edge out of [n], if any. *)

val data_of_edge : t -> node -> int -> int option
(** [data_of_edge t n μ] is the data item labelling the message-[μ]
    edge out of [n], if any. *)

val encode : t -> int list -> int list option
(** [encode t x] is [μ(x)]: the message sequence along [x]'s path.
    [None] when [x] is not a node of the trie. *)

val decode : t -> int list -> int list option
(** [decode t ms] inverts {!encode} along a root path. *)

val path_symbols : t -> node -> int list
(** Message symbols on the root path to [n] (root first) — by
    construction repetition-free. *)

val size : t -> int
(** Number of nodes (= number of distinct prefixes of [𝒳]). *)

val pp_error : Format.formatter -> error -> unit

module B = Stdx.Bignat

let permutations m k =
  if k < 0 || m < 0 || k > m then B.zero
  else begin
    (* P(m,k) = m·(m−1)·…·(m−k+1) *)
    let rec go acc i = if i >= k then acc else go (B.mul_int acc (m - i)) (i + 1) in
    go B.one 0
  end

let alpha m =
  if m < 0 then invalid_arg "Alpha.alpha: negative";
  let rec go acc k = if k > m then acc else go (B.add acc (permutations m k)) (k + 1) in
  go B.zero 0

let alpha_bounded ~m ~max_len =
  if m < 0 || max_len < 0 then invalid_arg "Alpha.alpha_bounded: negative";
  let upper = min m max_len in
  let rec go acc k = if k > upper then acc else go (B.add acc (permutations m k)) (k + 1) in
  go B.zero 0

let alpha_int m = B.to_int (alpha m)

let alpha_exn m =
  match alpha_int m with
  | Some n -> n
  | None -> failwith (Printf.sprintf "Alpha.alpha_exn: alpha(%d) overflows int" m)

let table m_max = List.init (m_max + 1) (fun m -> (m, alpha m))

let e_times_fact m =
  let rec fact acc i = if i > m then acc else fact (acc *. float_of_int i) (i + 1) in
  Float.exp 1.0 *. fact 1.0 1

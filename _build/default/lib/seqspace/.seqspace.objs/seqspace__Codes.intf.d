lib/seqspace/codes.mli: Format

lib/seqspace/alpha.mli: Stdx

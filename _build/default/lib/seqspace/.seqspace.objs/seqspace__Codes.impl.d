lib/seqspace/codes.ml: Array Format Fun Int List Map Option

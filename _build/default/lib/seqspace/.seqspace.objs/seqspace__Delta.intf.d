lib/seqspace/delta.mli: Stdx

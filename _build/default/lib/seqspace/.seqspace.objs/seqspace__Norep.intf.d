lib/seqspace/norep.mli: Stdx

lib/seqspace/xset.mli: Format Stdx

lib/seqspace/xset.ml: Alpha Format Fun List Norep Stdx

lib/seqspace/delta.ml: Alpha Array Stdx

lib/seqspace/alpha.ml: Float List Printf Stdx

lib/seqspace/norep.ml: Array Fun List Stdx

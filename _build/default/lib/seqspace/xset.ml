module B = Stdx.Bignat

type t =
  | Explicit of int list list
  | All_upto of { domain : int; max_len : int }
  | Norep_full of { domain : int }

let domain = function
  | Explicit xs ->
      let max_sym = List.fold_left (fun acc x -> List.fold_left max acc x) (-1) xs in
      max 1 (max_sym + 1)
  | All_upto { domain; _ } | Norep_full { domain } -> domain

let cardinality = function
  | Explicit xs -> B.of_int (List.length xs)
  | All_upto { domain; max_len } ->
      (* Σ_{k=0}^{L} domain^k *)
      let rec go acc pow k =
        if k > max_len then acc else go (B.add acc pow) (B.mul_int pow domain) (k + 1)
      in
      go B.zero B.one 0
  | Norep_full { domain } -> Alpha.alpha domain

let cardinality_int t =
  match B.to_int (cardinality t) with
  | Some n -> n
  | None -> failwith "Xset.cardinality_int: overflow"

let to_list = function
  | Explicit xs -> xs
  | All_upto { domain; max_len } ->
      let extend xs = List.map (fun s -> xs @ [ s ]) (List.init domain Fun.id) in
      let rec levels acc level k =
        if k > max_len then List.concat (List.rev acc)
        else begin
          let next = List.concat_map extend level in
          levels (next :: acc) next (k + 1)
        end
      in
      levels [ [ [] ] ] [ [] ] 1
  | Norep_full { domain } -> Norep.enumerate ~m:domain

let mem t x =
  match t with
  | Explicit xs -> List.mem x xs
  | All_upto { domain; max_len } ->
      List.length x <= max_len && List.for_all (fun s -> s >= 0 && s < domain) x
  | Norep_full { domain } -> Norep.is_norep x && Norep.is_over ~m:domain x

let rec is_prefix p x =
  match (p, x) with
  | [], _ -> true
  | _, [] -> false
  | a :: p', b :: x' -> a = b && is_prefix p' x'

let rec lcp a b =
  match (a, b) with
  | x :: a', y :: b' when x = y -> x :: lcp a' b'
  | _ -> []

let truncate i x = List.filteri (fun j _ -> j < i) x

let beta t =
  let members = to_list t in
  let distinguishes i =
    let rec pairs = function
      | [] -> true
      | x :: rest ->
          List.for_all
            (fun y ->
              let tx = truncate i x and ty = truncate i y in
              tx <> ty
              || (List.length x < i && is_prefix x y)
              || (List.length y < i && is_prefix y x))
            rest
          && pairs rest
    in
    pairs members
  in
  let max_len = List.fold_left (fun acc x -> max acc (List.length x)) 0 members in
  let rec find i = if i > max_len then max_len else if distinguishes i then i else find (i + 1) in
  find 0

let distinct_non_prefix_pairs t =
  let members = to_list t in
  let rec pairs = function
    | [] -> []
    | x :: rest ->
        List.filter_map
          (fun y -> if is_prefix x y || is_prefix y x then None else Some (x, y))
          rest
        @ pairs rest
  in
  pairs members

let pp_sequence ppf x =
  Format.fprintf ppf "<%a>"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ") Format.pp_print_int)
    x

let is_norep xs =
  let rec go seen = function
    | [] -> true
    | x :: rest -> (not (List.mem x seen)) && go (x :: seen) rest
  in
  go [] xs

let is_over ~m xs = List.for_all (fun x -> x >= 0 && x < m) xs

let perm_int m k =
  (* P(m,k) in machine integers; raises on overflow. *)
  let rec go acc i =
    if i >= k then acc
    else begin
      let f = m - i in
      if f <> 0 && acc > max_int / f then failwith "Norep: permutation count overflow";
      go (acc * f) (i + 1)
    end
  in
  if k > m then 0 else go 1 0

let count ~m =
  let rec go acc k = if k > m then acc else go (acc + perm_int m k) (k + 1) in
  go 0 0

let enumerate ~m =
  (* Breadth-first by length; each level extends every sequence of the
     previous level with every unused symbol, in ascending order.  The
     resulting order is by length then lexicographic. *)
  let extend xs = List.filter_map (fun s -> if List.mem s xs then None else Some (xs @ [ s ])) (List.init m Fun.id) in
  let rec levels acc level k =
    if k > m then List.concat (List.rev acc)
    else begin
      let next = List.concat_map extend level in
      levels (next :: acc) next (k + 1)
    end
  in
  levels [ [ [] ] ] [ [] ] 1

let rank ~m xs =
  if not (is_norep xs) then invalid_arg "Norep.rank: sequence repeats a symbol";
  if not (is_over ~m xs) then invalid_arg "Norep.rank: symbol out of domain";
  let k = List.length xs in
  (* Offset of the length-k block. *)
  let rec block_offset acc j = if j >= k then acc else block_offset (acc + perm_int m j) (j + 1) in
  (* Lexicographic rank within the length-k block. *)
  let rec lex acc used pos = function
    | [] -> acc
    | x :: rest ->
        let smaller = List.length (List.filter (fun s -> s < x && not (List.mem s used)) (List.init m Fun.id)) in
        let weight = perm_int (m - pos - 1) (k - pos - 1) in
        lex (acc + (smaller * weight)) (x :: used) (pos + 1) rest
  in
  block_offset 0 0 + lex 0 [] 0 xs

let unrank ~m idx =
  if idx < 0 then invalid_arg "Norep.unrank: negative index";
  (* Find the length block. *)
  let rec find_block k off =
    if k > m then invalid_arg "Norep.unrank: index out of range"
    else begin
      let sz = perm_int m k in
      if idx < off + sz then (k, idx - off) else find_block (k + 1) (off + sz)
    end
  in
  let k, within = find_block 0 0 in
  let rec build used pos rem =
    if pos >= k then []
    else begin
      let weight = perm_int (m - pos - 1) (k - pos - 1) in
      let avail = List.filter (fun s -> not (List.mem s used)) (List.init m Fun.id) in
      let choice = rem / weight in
      let x = List.nth avail choice in
      x :: build (x :: used) (pos + 1) (rem mod weight)
    end
  in
  build [] 0 within

let random rng ~m ~len =
  if len > m then invalid_arg "Norep.random: len > m";
  let pool = Array.init m Fun.id in
  Stdx.Rng.shuffle rng pool;
  Array.to_list (Array.sub pool 0 len)

let longest ~m = List.init m Fun.id

module IntMap = Map.Make (Int)

type node = int (* index into the node table *)

type node_record = {
  by_data : (int * node) IntMap.t; (* data item -> (message symbol, child) *)
  by_msg : (int * node) IntMap.t; (* message symbol -> (data item, child) *)
  path : int list; (* message symbols from root to this node, root first *)
}

type t = { nodes : node_record array }

type error =
  | Too_many_children of { prefix : int list; needed : int; available : int }
  | Duplicate_sequence of int list

exception Build_failed of error

(* Mutable trie used during construction. *)
type draft = {
  mutable children : (int * draft) list; (* (data, child), insertion order *)
  mutable terminal : bool;
}

let new_draft () = { children = []; terminal = false }

let insert_sequence root xs =
  let rec go node = function
    | [] ->
        if node.terminal then raise (Build_failed (Duplicate_sequence xs));
        node.terminal <- true
    | d :: rest -> (
        match List.assoc_opt d node.children with
        | Some child -> go child rest
        | None ->
            let child = new_draft () in
            node.children <- node.children @ [ (d, child) ];
            go child rest)
  in
  go root xs

let build ~m xs =
  let droot = new_draft () in
  match List.iter (insert_sequence droot) xs with
  | exception Build_failed e -> Error e
  | () -> (
      (* Label edges: at each node, children take the smallest message
         symbols unused on the root path, in data order.  Then freeze
         into an array. *)
      let records = ref [] in
      let count = ref 0 in
      let fresh_id () =
        let id = !count in
        incr count;
        id
      in
      let rec freeze draft ~path ~used ~prefix =
        let id = fresh_id () in
        let needed = List.length draft.children in
        let available = List.filter (fun s -> not (List.mem s used)) (List.init m Fun.id) in
        if needed > List.length available then
          raise
            (Build_failed
               (Too_many_children { prefix = List.rev prefix; needed; available = List.length available }));
        let labelled =
          List.map2
            (fun (d, child) sym -> (d, sym, child))
            (List.sort (fun (a, _) (b, _) -> Int.compare a b) draft.children)
            (List.filteri (fun i _ -> i < needed) available)
        in
        let child_entries =
          List.map
            (fun (d, sym, child) ->
              let cid =
                freeze child ~path:(path @ [ sym ]) ~used:(sym :: used) ~prefix:(d :: prefix)
              in
              (d, sym, cid))
            labelled
        in
        let by_data =
          List.fold_left (fun acc (d, sym, cid) -> IntMap.add d (sym, cid) acc) IntMap.empty child_entries
        in
        let by_msg =
          List.fold_left (fun acc (d, sym, cid) -> IntMap.add sym (d, cid) acc) IntMap.empty child_entries
        in
        records := (id, { by_data; by_msg; path }) :: !records;
        id
      in
      match freeze droot ~path:[] ~used:[] ~prefix:[] with
      | exception Build_failed e -> Error e
      | root_id ->
          assert (root_id = 0);
          let nodes = Array.make !count { by_data = IntMap.empty; by_msg = IntMap.empty; path = [] } in
          List.iter (fun (id, r) -> nodes.(id) <- r) !records;
          Ok { nodes })

let root (_ : t) : node = 0

let step_by_data t n d = Option.map snd (IntMap.find_opt d t.nodes.(n).by_data)

let step_by_msg t n s = Option.map snd (IntMap.find_opt s t.nodes.(n).by_msg)

let msg_of_edge t n d = Option.map fst (IntMap.find_opt d t.nodes.(n).by_data)

let data_of_edge t n s = Option.map fst (IntMap.find_opt s t.nodes.(n).by_msg)

let encode t x =
  let rec go n = function
    | [] -> Some []
    | d :: rest -> (
        match IntMap.find_opt d t.nodes.(n).by_data with
        | None -> None
        | Some (sym, child) -> Option.map (fun tail -> sym :: tail) (go child rest))
  in
  go 0 x

let decode t ms =
  let rec go n = function
    | [] -> Some []
    | s :: rest -> (
        match IntMap.find_opt s t.nodes.(n).by_msg with
        | None -> None
        | Some (d, child) -> Option.map (fun tail -> d :: tail) (go child rest))
  in
  go 0 ms

let path_symbols t n = t.nodes.(n).path

let size t = Array.length t.nodes

let pp_error ppf = function
  | Too_many_children { prefix; needed; available } ->
      Format.fprintf ppf
        "prefix [%a] needs %d distinct continuation symbols but only %d remain unused on its path"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ") Format.pp_print_int)
        prefix needed available
  | Duplicate_sequence xs ->
      Format.fprintf ppf "sequence [%a] listed twice"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ") Format.pp_print_int)
        xs

(** The bound [α(m)] of Wang & Zuck (1989).

    [α(m) = m! · Σ_{k=0}^{m} 1/k! = Σ_{k=0}^{m} m!/(m−k)!] is the
    number of repetition-free sequences (including the empty one) over
    an alphabet of [m] symbols.  Theorems 1 and 2 of the paper state
    that [α(|M^S|)] is a tight bound on the number of distinct
    sequences any solution to [X]-STP(dup), or any *bounded* solution
    to [X]-STP(del), can transmit. *)

val permutations : int -> int -> Stdx.Bignat.t
(** [permutations m k] is [P(m,k) = m!/(m−k)!], the number of
    repetition-free sequences of length exactly [k] over [m] symbols.
    Zero when [k > m] or either argument is negative. *)

val alpha : int -> Stdx.Bignat.t
(** [alpha m] is [α(m)], exactly.  [alpha 0 = 1] (the empty sequence).
    @raise Invalid_argument if [m < 0]. *)

val alpha_int : int -> int option
(** [alpha_int m] is [α(m)] as a machine integer when it fits,
    [None] otherwise (first overflow at [m = 20] on 64-bit). *)

val alpha_exn : int -> int
(** Like {!alpha_int} but raises [Failure] on overflow.  Convenience
    for the small [m] used throughout the experiments. *)

val alpha_bounded : m:int -> max_len:int -> Stdx.Bignat.t
(** [alpha_bounded ~m ~max_len = Σ_{k ≤ min(m, max_len)} P(m,k)]: the
    number of repetition-free sequences of length at most [max_len] —
    the capacity bound that applies when the allowable set is
    length-limited (e.g. {!Xset.All_upto} instances).
    [alpha_bounded ~m ~max_len:m = alpha m]. *)

val table : int -> (int * Stdx.Bignat.t) list
(** [table m_max] is [(m, α(m))] for [m = 0 .. m_max] — the data behind
    experiment E1's first two columns. *)

val e_times_fact : int -> float
(** [e_times_fact m] is the float [e·m!], the asymptotic value
    [α(m) → e·m!]; used in E1 to display the ratio [α(m)/(e·m!)]. *)

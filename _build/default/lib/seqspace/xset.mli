(** Allowable sequence sets [𝒳].

    An [𝒳]-STP instance is parameterised by the set of sequences the
    sender may be asked to transmit (§2.1).  The experiments use three
    families: explicit finite sets, the full space of sequences up to a
    length bound (countable [𝒳] restricted to a finite horizon), and
    the repetition-free family that meets the [α(m)] bound. *)

type t =
  | Explicit of int list list
      (** An explicit, duplicate-free list of sequences. *)
  | All_upto of { domain : int; max_len : int }
      (** Every sequence over [\[0, domain)] of length [≤ max_len]. *)
  | Norep_full of { domain : int }
      (** Every repetition-free sequence over [\[0, domain)] —
          cardinality [α(domain)]. *)

val domain : t -> int
(** Size of the data domain [D] the sequences range over.  For
    [Explicit] it is one more than the largest symbol mentioned
    (at least 1). *)

val cardinality : t -> Stdx.Bignat.t
(** Exact number of sequences in the set. *)

val cardinality_int : t -> int
(** @raise Failure on machine-int overflow. *)

val to_list : t -> int list list
(** All member sequences, in a deterministic order.  Intended for the
    finite instantiations used by experiments. *)

val mem : t -> int list -> bool

val beta : t -> int
(** [beta t] is the minimal [i] such that every member is uniquely
    identified by its length-[i] prefix — the [β] of §4.  For sets
    where some member is a proper prefix of another, identification
    means no *other* member shares the prefix of that length; following
    the paper we take the minimal [i] with all length-[i] truncations
    distinct among sequences of length [≥ i] and prefix-closed
    ambiguity resolved by length.  Concretely: the smallest [i] such
    that for all distinct members [x, y], [truncate i x ≠ truncate i y]
    or one of them has length [< i] and is a prefix of the other. *)

val is_prefix : int list -> int list -> bool
(** [is_prefix p x]: [p] is a (not necessarily proper) prefix of [x]. *)

val lcp : int list -> int list -> int list
(** Longest common prefix. *)

val distinct_non_prefix_pairs : t -> (int list * int list) list
(** All unordered pairs of members where neither is a prefix of the
    other — the pairs the impossibility proofs drive to a safety
    violation. *)

val pp_sequence : Format.formatter -> int list -> unit
(** Renders [\[1;0;2\]] as ["⟨1 0 2⟩"]. *)

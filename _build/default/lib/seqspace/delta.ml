module B = Stdx.Bignat

let c_of_f ~f ~beta =
  let rec go acc i = if i > beta then acc else go (acc + f i) (i + 1) in
  go 0 1

let deltas ~m ~c =
  if m < 0 then invalid_arg "Delta.deltas: negative m";
  if c < 0 then invalid_arg "Delta.deltas: negative c";
  let ds = Array.make (m + 1) B.zero in
  ds.(m) <- B.of_int c;
  for l = m - 1 downto 0 do
    let a = Alpha.alpha (m - l) in
    (* δ_ℓ = δ_{ℓ+1} · (1 + c·(m−ℓ)·α(m−ℓ)) *)
    let factor = B.add B.one (B.mul_int (B.mul_int a (m - l)) c) in
    ds.(l) <- B.mul ds.(l + 1) factor
  done;
  ds

let delta0 ~m ~c = (deltas ~m ~c).(0)

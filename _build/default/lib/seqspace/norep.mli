(** Repetition-free sequences over a finite domain.

    The set of sequences over [{0,…,m−1}] in which no symbol occurs
    twice is exactly the extremal allowable set of the paper: it has
    [α(m)] members and is transmitted by the §3 protocol over
    reorder+duplicate channels (and by its §4 variant over
    reorder+delete channels).

    The canonical order used by {!rank}/{!unrank} and {!enumerate} is
    by length first, then lexicographically; the empty sequence has
    rank 0. *)

val is_norep : int list -> bool
(** [is_norep xs] holds when no element of [xs] repeats. *)

val is_over : m:int -> int list -> bool
(** [is_over ~m xs] holds when every element lies in [\[0, m)]. *)

val count : m:int -> int
(** [count ~m] is [α(m)] as a machine integer.
    @raise Failure on overflow (use {!Alpha.alpha} for exact values). *)

val enumerate : m:int -> int list list
(** All [α(m)] repetition-free sequences in canonical order.  Intended
    for the small [m] (≤ 6 or so) used by exhaustive experiments. *)

val rank : m:int -> int list -> int
(** [rank ~m xs] is the canonical index of [xs].
    @raise Invalid_argument if [xs] repeats a symbol or leaves
    [\[0, m)]. *)

val unrank : m:int -> int -> int list
(** Inverse of {!rank}.
    @raise Invalid_argument if the index is out of range. *)

val random : Stdx.Rng.t -> m:int -> len:int -> int list
(** [random rng ~m ~len] draws a uniformly random repetition-free
    sequence of length [len] over [m] symbols.
    @raise Invalid_argument if [len > m]. *)

val longest : m:int -> int list
(** The canonical maximal sequence [0; 1; …; m−1]. *)

module Trace = Kernel.Trace

let item_value input ~i = if i <= Array.length input then Some input.(i - 1) else None

let knows_item u p ~i =
  match item_value (Universe.input_of u p) ~i with
  | None -> false (* x_i does not exist in this run, so no K_R(x_i = d) can hold *)
  | Some v ->
      List.for_all
        (fun q ->
          match item_value (Universe.input_of u q) ~i with
          | Some w -> w = v
          | None -> false)
        (Universe.r_class u p)

let known_prefix_length u p =
  let n = Array.length (Universe.input_of u p) in
  let rec go i = if i < n && knows_item u p ~i:(i + 1) then go (i + 1) else i in
  go 0

let learning_times u ~run =
  let trace = (Universe.traces u).(run) in
  let n = Array.length (Trace.input trace) in
  let horizon = Trace.length trace in
  let times = Array.make n None in
  (* Scan forward; knowledge is stable so the first time the known
     prefix reaches i gives t_i for every newly covered i. *)
  let covered = ref 0 in
  let time = ref 0 in
  while !covered < n && !time <= horizon do
    let k = known_prefix_length u { Universe.run; time = !time } in
    while !covered < min k n do
      times.(!covered) <- Some !time;
      incr covered
    done;
    incr time
  done;
  times

let gaps times =
  let prev = ref (Some 0) in
  Array.to_list
    (Array.map
       (fun t ->
         let g = match (!prev, t) with Some a, Some b -> Some (b - a) | _ -> None in
         prev := t;
         g)
       times)

let write_times u ~run =
  let trace = (Universe.traces u).(run) in
  let n = Array.length (Trace.input trace) in
  let horizon = Trace.length trace in
  Array.init n (fun idx ->
      let rec find time =
        if time > horizon then None
        else if Trace.output_length_at trace time >= idx + 1 then Some time
        else find (time + 1)
      in
      find 0)

let stability_ok u ~run =
  let trace = (Universe.traces u).(run) in
  let n = Array.length (Trace.input trace) in
  let horizon = Trace.length trace in
  let rec check_item i =
    if i > n then true
    else begin
      let rec scan time seen =
        if time > horizon then true
        else begin
          let k = knows_item u { Universe.run; time } ~i in
          if seen && not k then false else scan (time + 1) (seen || k)
        end
      in
      scan 0 false && check_item (i + 1)
    end
  in
  check_item 1

let knowledge_lead u ~run =
  let learn = learning_times u ~run in
  let write = write_times u ~run in
  Array.to_list
    (Array.map2
       (fun l w -> match (l, w) with Some l, Some w -> Some (w - l) | _ -> None)
       learn write)

module Explore = Kernel.Explore

let universe p ~inputs ~depth ?move_filter ?max_runs_per_input () =
  let traces = ref [] in
  let complete = ref true in
  List.iter
    (fun input ->
      let count = ref 0 in
      Explore.iter_runs p ~input:(Array.of_list input) ~depth ?move_filter
        ?max_runs:max_runs_per_input (fun trace ->
          incr count;
          traces := trace :: !traces);
      match max_runs_per_input with
      | Some cap when !count >= cap -> complete := false
      | Some _ | None -> ())
    inputs;
  (Universe.of_traces (List.rev !traces), !complete)

let compare_with_sampled exact sampled ~run_exact ~run_sampled =
  let lt_exact = Learn.learning_times exact ~run:run_exact in
  let lt_sampled = Learn.learning_times sampled ~run:run_sampled in
  let n = min (Array.length lt_exact) (Array.length lt_sampled) in
  List.init n (fun i -> (lt_exact.(i), lt_sampled.(i)))

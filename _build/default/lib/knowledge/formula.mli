(** Epistemic formulas over point universes (§2.3, generalised).

    The paper evaluates [K_R(x_i = d)] and Boolean combinations; its
    closing section advertises the knowledge viewpoint as broadly
    applicable.  This module supplies the full propositional epistemic
    language over both processes, so nested assertions — [K_S K_R φ],
    "the sender knows the receiver knows φ" — can be evaluated and
    timed.  Experiment E11 uses it to reproduce a classic phenomenon
    the paper's machinery makes visible: each additional level of
    mutual knowledge about a delivery costs another causal round trip,
    and no finite run reaches common knowledge. *)

type agent = Sender | Receiver

type fact =
  | Item_eq of int * int  (** [x_i = d], [i] 1-based (§2.3's basic facts) *)
  | Output_ge of int  (** [|Y| ≥ n] (§2.4's basic facts) *)
  | Input_ge of int  (** [|X| ≥ n] *)

type t =
  | Fact of fact
  | Not of t
  | And of t * t
  | Or of t * t
  | Knows of agent * t  (** [K_p φ] *)

val knows_value : agent -> i:int -> domain:int -> t
(** [knows_value p ~i ~domain] is the paper's [K_p(x_i)] abbreviation:
    [⋁_{d ∈ D} K_p(x_i = d)]. *)

val chain : agent list -> t -> t
(** [chain [S; R; S] φ = Knows (S, Knows (R, Knows (S, φ)))]. *)

val alternating : depth:int -> first:agent -> t -> t
(** The mutual-knowledge ladder: [alternating ~depth:3 ~first:Sender φ]
    is [K_S K_R K_S φ]. *)

val eval : Universe.t -> Universe.point -> t -> bool
(** Kripke semantics over the universe: facts from the point's run,
    [Knows (p, φ)] quantifying over the point's [~_p] class.
    Exponential in nesting depth in the worst case; fine at the small
    depths and universes the experiments use. *)

val tabulate : Universe.t -> t -> Universe.point -> bool
(** Bottom-up truth tables over every point of the universe: one class
    sweep per [Knows] level, so deep nesting stays linear in the
    universe instead of exponential.  Use this when evaluating the same
    formula at many points (E11 scans whole runs). *)

val common : Universe.t -> t -> Universe.point -> bool
(** Common knowledge [C φ] between sender and receiver, computed
    exactly on the finite universe as the greatest fixpoint of
    [ψ ↦ φ ∧ K_S ψ ∧ K_R ψ] (the standard finite-model construction:
    [C φ] holds at a point iff φ holds everywhere in the point's
    connected component under [~_S ∪ ~_R]).  E11 checks that
    [C(|Y| ≥ 1)] holds {e nowhere} in its universes even though every
    finite [K]-chain is eventually attained — the ladder climbs
    forever and its limit never arrives. *)

val first_time : Universe.t -> run:int -> t -> int option
(** Earliest time in the run at which the formula holds.  Nested
    knowledge of stable facts is itself stable under the
    complete-history interpretation, so this is well-defined for the
    formulas the experiments use (no stability is assumed by the
    search — it simply scans forward). *)

val pp : Format.formatter -> t -> unit

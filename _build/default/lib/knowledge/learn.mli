(** Knowledge evaluation and the learning times [t_i] (§2.3–2.4).

    [K_R(x_i)] abbreviates [∨_{d∈D} K_R(x_i = d)]: at a point, the
    receiver knows the value of the i-th input item iff every point it
    cannot tell apart carries an input whose i-th item exists and has
    the same value.

    [t_i^r] is the first time in run [r] at which
    [⋀_{j≤i} K_R(x_j)] holds — the paper's central measuring device.
    Under the complete-history interpretation knowledge is stable, so
    [t_i] is well-defined and monotone in [i]; {!stability_ok} audits
    this on the computed universe (it can only fail if the universe
    construction itself were broken). *)

val knows_item : Universe.t -> Universe.point -> i:int -> bool
(** [knows_item u p ~i] is [K_R(x_i)] at [p].  [i] is 1-based, as in
    the paper. *)

val known_prefix_length : Universe.t -> Universe.point -> int
(** The largest [i] with [⋀_{j≤i} K_R(x_j)] at the point (0 when even
    [x_1] is unknown). *)

val learning_times : Universe.t -> run:int -> int option array
(** [learning_times u ~run] has length [|X^run|]; slot [i−1] is
    [Some t_i] — the first time the receiver knows items [1..i] — or
    [None] if that never happens within the trace.  (For runs
    completing under a fair schedule the paper guarantees
    [t_i < ∞] for all [i]; a [None] in an experiment means the trace
    was truncated too early or the schedule was unfair.) *)

val gaps : int option array -> int option list
(** Successive differences [t_i − t_{i−1}] (with [t_0 = 0]);
    [None] propagates. *)

val write_times : Universe.t -> run:int -> int option array
(** The ablation variant: the first time each item is *written*
    rather than known.  The paper points out writing can lag knowing
    ("it is possible to design protocols where R writes the i-th data
    item well after R has learnt it"); E6 reports both. *)

val stability_ok : Universe.t -> run:int -> bool
(** Checks that [K_R(x_i)], once true along the run, never reverts —
    the stability property §2.3 derives from the complete-history
    interpretation. *)

val knowledge_lead : Universe.t -> run:int -> int option list
(** Per item, [write_time − learning_time]: how long the receiver sat
    on knowledge before committing it to the output tape. *)

(** Exhaustive (exact) point universes.

    {!Universe.of_traces} over sampled schedules under-approximates
    the system [ℛ], so knowledge computed from it is an
    over-approximation — fewer runs, fewer confusers.  This module
    builds the universe from {b every} run of the truncated system
    instead, via {!Kernel.Explore.iter_runs}: the resulting knowledge
    judgments and learning times are exact for the depth-[d]
    truncation (and sound lower bounds on [t_i] for the full system:
    adding longer runs can only add confusers at points beyond the
    horizon, never remove knowledge below it — knowledge at a point
    only quantifies over points with *equal* receiver views, whose
    length is bounded by the point's own time).

    The run count is exponential in the depth, so this is for the
    small instances where exactness matters: E6's ablation compares
    sampled against exact learning times, and the test suite uses
    exact universes to pin down knowledge in scripted scenarios. *)

val universe :
  Kernel.Protocol.t ->
  inputs:int list list ->
  depth:int ->
  ?move_filter:(Kernel.Global.t -> Kernel.Move.t -> bool) ->
  ?max_runs_per_input:int ->
  unit ->
  Universe.t * bool
(** [universe p ~inputs ~depth ()] enumerates every schedule of length
    [depth] for every input and pools all traces.  The boolean is
    [true] when no [max_runs_per_input] cap was hit — i.e. the
    universe really is exhaustive for the truncation.  [move_filter]
    prunes adversary choices (e.g. {!Kernel.Explore.no_drops} or
    {!Kernel.Explore.bounded_flight}); pruned universes are exact for
    the pruned system. *)

val compare_with_sampled :
  Universe.t ->
  Universe.t ->
  run_exact:int ->
  run_sampled:int ->
  (int option * int option) list
(** [compare_with_sampled exact sampled ~run_exact ~run_sampled] pairs
    the learning times of a run as computed in the exact universe with
    those of a corresponding run in the sampled universe (same input
    expected; the caller aligns the indices).  Sampled times are never
    later than exact ones — the ablation E6 quantifies the gap. *)

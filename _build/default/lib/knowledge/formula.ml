type agent = Sender | Receiver

type fact = Item_eq of int * int | Output_ge of int | Input_ge of int

type t = Fact of fact | Not of t | And of t * t | Or of t * t | Knows of agent * t

let knows_value agent ~i ~domain =
  let rec disjunction d =
    let k = Knows (agent, Fact (Item_eq (i, d))) in
    if d = domain - 1 then k else Or (k, disjunction (d + 1))
  in
  if domain <= 0 then invalid_arg "Formula.knows_value: empty domain" else disjunction 0

let chain agents phi = List.fold_right (fun a acc -> Knows (a, acc)) agents phi

let alternating ~depth ~first phi =
  let flip = function Sender -> Receiver | Receiver -> Sender in
  let rec agents a n = if n = 0 then [] else a :: agents (flip a) (n - 1) in
  chain (agents first depth) phi

let eval_fact u (p : Universe.point) = function
  | Item_eq (i, d) ->
      let input = Universe.input_of u p in
      i >= 1 && i <= Array.length input && input.(i - 1) = d
  | Output_ge n -> Universe.output_length_at u p >= n
  | Input_ge n -> Array.length (Universe.input_of u p) >= n

let rec eval u p = function
  | Fact f -> eval_fact u p f
  | Not phi -> not (eval u p phi)
  | And (a, b) -> eval u p a && eval u p b
  | Or (a, b) -> eval u p a || eval u p b
  | Knows (agent, phi) ->
      let cls = Universe.agent_class u (match agent with Sender -> `Sender | Receiver -> `Receiver) p in
      List.for_all (fun q -> eval u q phi) cls

let tabulate u phi =
  (* Bottom-up truth tables: one bool per point per subformula, so
     nested knowledge costs one class sweep per level instead of a
     class-size^depth blow-up. *)
  let traces = Universe.traces u in
  let table () =
    Array.map (fun t -> Array.make (Kernel.Trace.length t + 1) false) traces
  in
  let rec build phi =
    let tbl = table () in
    let fill f =
      Array.iteri
        (fun run row ->
          Array.iteri (fun time _ -> row.(time) <- f { Universe.run; time }) row)
        tbl
    in
    (match phi with
    | Fact fact -> fill (fun p -> eval_fact u p fact)
    | Not a ->
        let ta = build a in
        fill (fun p -> not ta.(p.Universe.run).(p.Universe.time))
    | And (a, b) ->
        let ta = build a and tb = build b in
        fill (fun p ->
            ta.(p.Universe.run).(p.Universe.time) && tb.(p.Universe.run).(p.Universe.time))
    | Or (a, b) ->
        let ta = build a and tb = build b in
        fill (fun p ->
            ta.(p.Universe.run).(p.Universe.time) || tb.(p.Universe.run).(p.Universe.time))
    | Knows (agent, a) ->
        let ta = build a in
        let side = match agent with Sender -> `Sender | Receiver -> `Receiver in
        fill (fun p ->
            List.for_all
              (fun q -> ta.(q.Universe.run).(q.Universe.time))
              (Universe.agent_class u side p)));
    tbl
  in
  let tbl = build phi in
  fun p -> tbl.(p.Universe.run).(p.Universe.time)

let common u phi =
  (* Greatest fixpoint of ψ ↦ φ ∧ K_S ψ ∧ K_R ψ over the finite point
     set: start from φ's truth table and strip points until stable. *)
  let base = tabulate u phi in
  let traces = Universe.traces u in
  let tbl = Array.map (fun t -> Array.make (Kernel.Trace.length t + 1) false) traces in
  Array.iteri
    (fun run row -> Array.iteri (fun time _ -> row.(time) <- base { Universe.run; time }) row)
    tbl;
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iteri
      (fun run row ->
        Array.iteri
          (fun time holds ->
            if holds then begin
              let p = { Universe.run; time } in
              let ok_class side =
                List.for_all
                  (fun q -> tbl.(q.Universe.run).(q.Universe.time))
                  (Universe.agent_class u side p)
              in
              if not (ok_class `Sender && ok_class `Receiver) then begin
                row.(time) <- false;
                changed := true
              end
            end)
          row)
      tbl
  done;
  fun p -> tbl.(p.Universe.run).(p.Universe.time)

let first_time u ~run phi =
  let horizon = Kernel.Trace.length (Universe.traces u).(run) in
  let rec scan time =
    if time > horizon then None
    else if eval u { Universe.run; time } phi then Some time
    else scan (time + 1)
  in
  scan 0

let rec pp ppf = function
  | Fact (Item_eq (i, d)) -> Format.fprintf ppf "x_%d=%d" i d
  | Fact (Output_ge n) -> Format.fprintf ppf "|Y|>=%d" n
  | Fact (Input_ge n) -> Format.fprintf ppf "|X|>=%d" n
  | Not phi -> Format.fprintf ppf "!(%a)" pp phi
  | And (a, b) -> Format.fprintf ppf "(%a & %a)" pp a pp b
  | Or (a, b) -> Format.fprintf ppf "(%a | %a)" pp a pp b
  | Knows (Sender, phi) -> Format.fprintf ppf "K_S %a" pp phi
  | Knows (Receiver, phi) -> Format.fprintf ppf "K_R %a" pp phi

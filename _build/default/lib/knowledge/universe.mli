(** Point universes and receiver indistinguishability.

    §2.2–2.3 of the paper: a system is a set of runs; a *point* is a
    pair [(r,t)]; the receiver cannot tell two points apart,
    [(r,t) ~_R (r',t')], when its local state — under the
    complete-history interpretation, its entire recorded history — is
    the same at both.  Knowledge is evaluated by quantifying over
    indistinguishable points.

    A universe here is a finite set of finite traces standing for the
    system [ℛ].  When the traces come from {!Kernel.Explore.iter_runs}
    the universe is the *exact* truncated system and the knowledge
    computed from it is exact for that truncation; when they come from
    sampled schedules the universe under-approximates [ℛ], so computed
    knowledge over-approximates true knowledge (fewer runs means fewer
    confusers).  Experiments state which mode they use. *)

type point = { run : int; time : int }
(** [run] indexes into the universe's trace list. *)

type t

val of_traces : Kernel.Trace.t list -> t
(** Builds the universe and indexes every point of every trace by the
    receiver's view. *)

val traces : t -> Kernel.Trace.t array

val n_points : t -> int

val points : t -> point list
(** Every point [(r,t)], [0 ≤ t ≤ length r]. *)

val input_of : t -> point -> int array
(** The input tape [X^r] of the point's run. *)

val r_class : t -> point -> point list
(** All points of the universe the receiver cannot tell apart from
    this one (including the point itself). *)

val s_class : t -> point -> point list
(** The sender-side analogue, [~_S]: all points with the same sender
    view.  Needed for nested knowledge ([K_S K_R …], experiment E11);
    note the sender's view includes its input-dependent behaviour, so
    on non-uniform protocols the sender often "knows" [X] outright —
    what it must *learn* is what the receiver has seen. *)

val agent_class : t -> [ `Sender | `Receiver ] -> point -> point list

val r_view_key : t -> point -> string
(** The encoded receiver view at the point (the [~_R]-class key). *)

val n_classes : t -> int
(** Number of distinct receiver views in the universe. *)

val output_length_at : t -> point -> int
(** [|Y|] at the point — the basic fact of §2.4's liveness clause. *)

module Trace = Kernel.Trace
module Hist = Kernel.Hist

type point = { run : int; time : int }

type t = {
  traces : Trace.t array;
  view_keys : string array array; (* receiver views, view_keys.(run).(time) *)
  classes : (string, point list) Hashtbl.t; (* receiver view key -> members *)
  s_view_keys : string array array;
  s_classes : (string, point list) Hashtbl.t;
}

let index_views traces ~view =
  let classes = Hashtbl.create 1024 in
  let keys =
    Array.mapi
      (fun run trace ->
        Array.init
          (Trace.length trace + 1)
          (fun time ->
            let key = Hist.encode (view trace time) in
            let members = Option.value ~default:[] (Hashtbl.find_opt classes key) in
            Hashtbl.replace classes key ({ run; time } :: members);
            key))
      traces
  in
  (keys, classes)

let of_traces trace_list =
  let traces = Array.of_list trace_list in
  let view_keys, classes = index_views traces ~view:Trace.r_view in
  (* The sender's complete history does not include the input tape it
     was constructed with, but its *behaviour* does; to honour the
     paper's local-state semantics (the sender's state contains X) the
     sender view key also carries the input. *)
  let s_view trace time =
    (* Append the input as [Wrote] pseudo-entries: senders never write,
       so the suffix is unambiguous and the keying exact. *)
    Array.fold_left
      (fun h d -> Hist.add h (Hist.Wrote d))
      (Trace.s_view trace time) (Trace.input trace)
  in
  let s_view_keys, s_classes = index_views traces ~view:s_view in
  { traces; view_keys; classes; s_view_keys; s_classes }

let traces t = t.traces

let n_points t =
  Array.fold_left (fun acc keys -> acc + Array.length keys) 0 t.view_keys

let points t =
  let acc = ref [] in
  Array.iteri
    (fun run keys -> Array.iteri (fun time _ -> acc := { run; time } :: !acc) keys)
    t.view_keys;
  List.rev !acc

let input_of t p = Trace.input t.traces.(p.run)

let r_view_key t p = t.view_keys.(p.run).(p.time)

let r_class t p =
  match Hashtbl.find_opt t.classes (r_view_key t p) with
  | Some members -> members
  | None -> [ p ]

let s_class t p =
  match Hashtbl.find_opt t.s_classes t.s_view_keys.(p.run).(p.time) with
  | Some members -> members
  | None -> [ p ]

let agent_class t agent p =
  match agent with `Sender -> s_class t p | `Receiver -> r_class t p

let n_classes t = Hashtbl.length t.classes

let output_length_at t p = Trace.output_length_at t.traces.(p.run) p.time

lib/knowledge/universe.ml: Array Hashtbl Kernel List Option

lib/knowledge/learn.ml: Array Kernel List Universe

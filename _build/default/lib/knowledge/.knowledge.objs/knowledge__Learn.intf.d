lib/knowledge/learn.mli: Universe

lib/knowledge/formula.ml: Array Format Kernel List Universe

lib/knowledge/universe.mli: Kernel

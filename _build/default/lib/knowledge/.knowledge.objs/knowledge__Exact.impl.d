lib/knowledge/exact.ml: Array Kernel Learn List Universe

lib/knowledge/exact.mli: Kernel Universe

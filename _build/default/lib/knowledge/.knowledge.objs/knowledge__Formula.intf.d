lib/knowledge/formula.mli: Format Universe

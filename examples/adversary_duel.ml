(* Adversary duel: watch the impossibility proofs run.

   Theorems 1 and 2 are proved by steering two runs with different
   inputs into receiver-indistinguishable points.  The attack searcher
   performs that construction on real protocols; this example prints
   the concrete winning interleavings for three classic victims, then
   shows the paper's own protocol surviving the same search.

     dune exec examples/adversary_duel.exe *)

let show title outcome =
  Format.printf "@.--- %s ---@." title;
  match outcome with
  | Core.Attack.Witness w -> Format.printf "%a@." Core.Attack.pp_witness w
  | Core.Attack.No_violation { closed; states_explored } ->
      Format.printf "adversary loses: %s (%d joint states explored)@."
        (if closed then "entire joint state space closed with no violation" else "search truncated")
        states_explored

let () =
  (* All victims come out of the protocol registry by name — the same
     lookup `stp attack -p NAME` performs.  The default config already
     pins the dup channel and header_space = 2. *)
  let resolve name =
    match
      Kernel.Registry.build_protocol ~name { Kernel.Registry.default with domain = 2 }
    with
    | Ok p -> p
    | Error e -> failwith e
  in

  (* 1. Send-and-pray under reordering: the receiver writes whatever
     arrives first. *)
  show "naive counting vs reordering (dup channel)"
    (Core.Attack.search_pair (resolve "counting") ~x1:[ 0; 1 ] ~x2:[ 1; 0 ] ());

  (* 2. Alternating Bit under duplication: an old copy of the first
     message returns after the bit has wrapped around, and the receiver
     writes a third item on a two-item input. *)
  show "alternating bit vs duplication"
    (Core.Attack.search_single (resolve "abp") ~x:[ 0; 0 ] ());

  (* 3. Bounded headers (LMF88): sequence numbers mod 2 collide two
     items apart; a stale copy is accepted as fresh. *)
  show "stenning with 2 headers vs reordering"
    (Core.Attack.search_single (resolve "stenning-mod") ~x:[ 0; 1; 0; 1 ] ());

  (* 4. The paper's protocol at the bound: the adversary provably
     cannot win — every pair of allowable inputs closes clean. *)
  let norep = resolve "norep" in
  let outcomes, witness =
    Core.Attack.search norep ~xs:(Seqspace.Norep.enumerate ~m:2) ~depth:200 ()
  in
  Format.printf "@.--- norep-dup at |X| = alpha(2) = 5 ---@.";
  List.iter
    (fun (x1, x2, o) ->
      Format.printf "  %a vs %a: %s@." Seqspace.Xset.pp_sequence x1 Seqspace.Xset.pp_sequence
        x2
        (match o with
        | Core.Attack.Witness _ -> "WITNESS (unexpected!)"
        | Core.Attack.No_violation { closed = true; states_explored } ->
            Printf.sprintf "closed clean (%d states)" states_explored
        | Core.Attack.No_violation { closed = false; _ } -> "truncated"))
    outcomes;
  assert (witness = None);

  (* 5. …and one input beyond the bound hands the adversary a fair
     starvation strategy. *)
  show "norep-dup one sequence past the bound"
    (Core.Attack.search_pair norep ~x1:[ 0; 1 ] ~x2:[ 0; 0 ] ())

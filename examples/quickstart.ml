(* Quickstart: transmit a sequence over an adversarial channel.

   The headline result of Wang & Zuck (1989): with a message alphabet of
   size m, at most alpha(m) = m! * sum 1/k! distinct sequences can be
   transmitted over a channel that reorders and duplicates — and the
   bound is achieved by a protocol whose message sequences never repeat
   a symbol.  This example runs that protocol.

     dune exec examples/quickstart.exe *)

let () =
  (* The tight bound for a few alphabet sizes. *)
  List.iter
    (fun (m, a) -> Format.printf "alpha(%d) = %s@." m (Stdx.Bignat.to_string a))
    (Seqspace.Alpha.table 6);
  Format.printf "@.";

  (* The paper's Section 3 protocol: domain = message alphabet = 4
     symbols, allowable inputs = repetition-free sequences.  Resolved
     by name through the registry, exactly as `stp -p norep` does. *)
  let resolve name cfg =
    match Kernel.Registry.build_protocol ~name cfg with Ok p -> p | Error e -> failwith e
  in
  let protocol = resolve "norep" { Kernel.Registry.default with domain = 4 } in
  let input = [| 2; 0; 3; 1 |] in

  (* A hostile schedule: the channel floods the receiver with duplicate
     copies of everything ever sent, in bursts. *)
  let strategy = Kernel.Strategy.dup_flood ~burst:4 () in
  let result =
    Kernel.Runner.run protocol ~input ~strategy ~rng:(Stdx.Rng.create 2024) ~max_steps:5_000 ()
  in
  let trace = result.Kernel.Runner.trace in
  Format.printf "run: %a@." Kernel.Trace.pp_summary trace;
  Format.printf "output tape: %a@." Seqspace.Xset.pp_sequence
    (Kernel.Global.output (Kernel.Trace.final trace));

  (* The same machinery, checked end to end: safety (the output is
     always a prefix of the input) and liveness (everything arrives). *)
  let verdict = Core.Verdict.of_result result in
  Format.printf "verdict: %a@." Core.Verdict.pp verdict;
  assert (Core.Verdict.all_good verdict);

  (* And the flip side: one sequence beyond alpha(m) and the adversary
     wins.  <0 0> repeats a symbol, so the receiver can never tell it
     apart from <0 1> forever: *)
  let outcome =
    Core.Attack.search_pair
      (resolve "norep" { Kernel.Registry.default with domain = 2 })
      ~x1:[ 0; 1 ] ~x2:[ 0; 0 ] ()
  in
  match outcome with
  | Core.Attack.Witness w -> Format.printf "@.beyond the bound: %a@." Core.Attack.pp_witness w
  | Core.Attack.No_violation _ -> Format.printf "@.unexpected: no witness found@."

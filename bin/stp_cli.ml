(* stp — command-line driver for the sequence-transmission-problem
   reproduction (Wang & Zuck, PODC 1989).

   Subcommands:
     alpha        print the alpha(m) bound table
     simulate     run one protocol / input / schedule and show the outcome
     attack       run the product impossibility search on a protocol
     knowledge    print a knowledge (t_i) timeline for a protocol instance
     verify       batch-verify a protocol over its allowable set
     recover      dead-state (Property 2) analysis
     census       sample random protocols at m=1 (E9)
     experiments  run the E1-E17 reproduction experiments
     soak         fault-injection soak battery with recovery verdicts
                  (--stab swaps in the corrupted-start battery)
     stab         corrupted-start stabilisation sweep over a protocol's
                  declared perturb space, optionally with the exact
                  corrupted-root witness search
     serve        batch daemon over the event-queue scheduler: JSON job
                  specs in, report artifacts + cumulative telemetry out
     validate     check a --json artifact against the report schema
                  (exits non-zero when any report carries ok=false)

   Protocols and experiments are resolved through {!Kernel.Registry}
   (each module registers itself at load time), and channel kinds
   through {!Channel.Chan.of_string} — this file holds no hard-coded
   lists.  Every subcommand that prints a report also accepts
   [--json PATH] to write the same data as a schema-versioned
   {!Stdx.Report} artifact. *)

open Cmdliner
module Chan = Channel.Chan
module Registry = Kernel.Registry
module Report = Stdx.Report
module Strategy = Kernel.Strategy

(* ---------------- shared argument parsing ---------------- *)

let input_conv =
  let parse s =
    if String.trim s = "" then Ok []
    else
      try Ok (List.map int_of_string (String.split_on_char ',' (String.trim s)))
      with Failure _ -> Error (`Msg "input must be comma-separated integers, e.g. 0,2,1")
  in
  let print ppf xs =
    Format.fprintf ppf "%s" (String.concat "," (List.map string_of_int xs))
  in
  Arg.conv (parse, print)

let channel_conv =
  let parse s =
    match Chan.of_string s with
    | Some k -> Ok k
    | None ->
        Error
          (`Msg
             (Printf.sprintf "channel must be one of: %s"
                (String.concat ", " (Registry.channel_forms ()))))
  in
  let print ppf k = Format.pp_print_string ppf (Chan.to_string k) in
  Arg.conv (parse, print)

let protocol_arg =
  Arg.(
    value
    & opt (enum (List.map (fun n -> (n, n)) (Registry.protocol_names ()))) "norep"
    & info [ "p"; "protocol" ] ~doc:"Protocol to run (any name in the registry).")

let channel_arg =
  Arg.(value & opt channel_conv Chan.Reorder_dup & info [ "c"; "channel" ] ~doc:"Channel kind.")

let domain_arg =
  Arg.(value & opt int 3 & info [ "d"; "domain" ] ~doc:"Data domain size |D| (also m for norep).")

let max_len_arg = Arg.(value & opt int 4 & info [ "max-len" ] ~doc:"Maximum input length.")

let header_space_arg =
  Arg.(value & opt int 2 & info [ "header-space" ] ~doc:"Header space for stenning-mod.")

let drop_budget_arg =
  Arg.(value & opt int 1 & info [ "drop-budget" ] ~doc:"Deletion budget B for ladder/hybrid.")

let window_arg =
  Arg.(
    value & opt int 2
    & info [ "window" ] ~doc:"Pipelining window for go-back-n / selective-repeat.")

let config_term =
  let make channel domain max_len header_space drop_budget window =
    { Registry.channel; domain; max_len; header_space; drop_budget; window }
  in
  Term.(
    const make $ channel_arg $ domain_arg $ max_len_arg $ header_space_arg $ drop_budget_arg
    $ window_arg)

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed.")

let jobs_arg =
  Arg.(
    value
    & opt int (Core.Par.default_jobs ())
    & info [ "j"; "jobs" ]
        ~doc:
          "Worker domains for the sweep (default: the $(b,STP_JOBS) environment variable, or 1). \
           Results are identical at every job count.")

let max_steps_arg = Arg.(value & opt int 50_000 & info [ "max-steps" ] ~doc:"Step budget.")

let strategy_arg =
  Arg.(value & opt string "fair-random"
       & info [ "s"; "strategy" ]
           ~doc:"Schedule: fair-random, round-robin, newest-first, dup-flood, drop:P (e.g. \
                 drop:0.2 over fair-random), drop-first:N.")

let build_strategy = Strategy.of_string

(* ---------------- report output ---------------- *)

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"PATH"
        ~doc:"Also write the report as a schema-versioned JSON artifact to $(docv).")

let format_arg =
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json); ("csv", `Csv) ]) `Text
    & info [ "format" ] ~doc:"Stdout format: $(b,text), $(b,json), or $(b,csv).")

let write_artifact path json =
  try
    Out_channel.with_open_bin path (fun oc ->
        Out_channel.output_string oc (Stdx.Json.to_string json);
        Out_channel.output_char oc '\n');
    Ok ()
  with Sys_error e -> Error (Printf.sprintf "cannot write artifact: %s" e)

let maybe_json report = function
  | None -> Ok ()
  | Some path -> write_artifact path (Report.to_json report)

(* ---------------- alpha ---------------- *)

let alpha_report m_max =
  let t =
    Report.table ~title:"alpha(m) = m! * sum_{k<=m} 1/k!  (Wang & Zuck 1989)"
      [ ("m", Report.Right); ("alpha(m)", Report.Right) ]
  in
  List.iter
    (fun (m, a) -> Report.row t [ Report.int m; Report.bignat a ])
    (Seqspace.Alpha.table m_max);
  Report.make ~id:"alpha" ~title:"the tight bound alpha(m)" [ Report.finish t ]

let alpha_run m_max format json =
  let r = alpha_report m_max in
  match maybe_json r json with
  | Error e -> `Error (false, e)
  | Ok () ->
      (match format with
      | `Text ->
          (* Body plus a blank line: byte-identical to Tabular.print. *)
          print_string (Report.to_text_body r);
          print_newline ()
      | `Json ->
          print_string (Stdx.Json.to_string (Report.to_json r));
          print_newline ()
      | `Csv -> print_string (Report.to_csv r));
      `Ok ()

let alpha_cmd =
  let m_max = Arg.(value & opt int 20 & info [ "m" ] ~doc:"Largest m to tabulate.") in
  Cmd.v
    (Cmd.info "alpha" ~doc:"Print the tight bound alpha(m).")
    Term.(ret (const alpha_run $ m_max $ format_arg $ json_arg))

(* ---------------- simulate ---------------- *)

let simulate_run protocol config input strategy seed max_steps verbose json =
  let ( let* ) r f = match r with Ok v -> f v | Error e -> `Error (false, e) in
  let* p = Registry.build_protocol ~name:protocol config in
  let* strat = build_strategy strategy in
  let result =
    Kernel.Runner.run p ~input:(Array.of_list input) ~strategy:strat
      ~rng:(Stdx.Rng.create seed) ~max_steps ()
  in
  let trace = result.Kernel.Runner.trace in
  Format.printf "%a@." Kernel.Trace.pp_summary trace;
  Format.printf "stop: %a, output: %a@." Kernel.Runner.pp_stop result.Kernel.Runner.stop
    Seqspace.Xset.pp_sequence
    (Kernel.Global.output (Kernel.Trace.final trace));
  if verbose then Format.printf "%s" (Kernel.Render.chart trace);
  let v = Core.Verdict.of_result result in
  Format.printf "verdict: %a@." Core.Verdict.pp v;
  let* () = maybe_json (Core.Verdict.to_report v) json in
  if Core.Verdict.all_good v then `Ok () else `Error (false, "run was not safe and complete")

let simulate_cmd =
  let input =
    Arg.(value & opt input_conv [ 0; 1; 2 ] & info [ "i"; "input" ] ~doc:"Input sequence.")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print every move.") in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run one protocol instance and report safety/liveness.")
    Term.(
      ret
        (const simulate_run $ protocol_arg $ config_term $ input $ strategy_arg $ seed_arg
       $ max_steps_arg $ verbose $ json_arg))

(* ---------------- attack ---------------- *)

let attack_run protocol config x1 x2 xs depth single symm mem_budget jobs json =
  let ( let* ) r f = match r with Ok v -> f v | Error e -> `Error (false, e) in
  let* p = Registry.build_protocol ~name:protocol config in
  (* Resource counters ride along only when --mem-budget is given: the
     report block they add is budget-invariant (spilled and resident
     runs at different budgets write byte-identical artifacts), but
     frontier peaks are not invariant under the symmetry quotient's
     reordering, so unconditionally adding them would break the
     symm/nosymm artifact cmp. *)
  let stats = Option.map (fun _ -> Core.Attack.Stats.create ()) mem_budget in
  let print_spill_summary () =
    match (mem_budget, stats) with
    | Some budget, Some st ->
        let s = Core.Attack.Stats.snapshot st in
        Format.printf
          "frontier: peak %d B queued (%d ids), peak resident %d B (budget %d B), \
           spilled %d B in %d chunks; peak joint states %d@."
          s.Core.Attack.Stats.peak_frontier_bytes s.Core.Attack.Stats.peak_frontier_len
          s.Core.Attack.Stats.peak_resident_bytes budget
          s.Core.Attack.Stats.spilled_bytes s.Core.Attack.Stats.spill_chunks
          s.Core.Attack.Stats.peak_joint_states
    | _ -> ()
  in
  let describe = function
    | Core.Attack.Witness w ->
        Format.asprintf "WITNESS (%s, depth %d, %d joint states)"
          (match w.Core.Attack.kind with
          | Core.Attack.Safety { violated_run } -> Printf.sprintf "safety, run %d" violated_run
          | Core.Attack.Starvation { starved_run } ->
              Printf.sprintf "starvation, run %d" starved_run)
          w.Core.Attack.depth w.Core.Attack.states_explored
    | Core.Attack.No_violation { closed; states_explored } ->
        Format.asprintf "no violation (%s, %d joint states)"
          (if closed then "closed" else "truncated")
          states_explored
  in
  if xs <> [] then begin
    (* Sweep mode: every eligible pair from the repeated --x inputs,
       fanned out over --jobs domains. *)
    let outcomes, witness =
      Core.Attack.search p ~xs ~depth ~jobs ~symm ?mem_budget_bytes:mem_budget ?stats ()
    in
    List.iter
      (fun (a, b, o) ->
        Format.printf "%a vs %a: %s@." Seqspace.Xset.pp_sequence a Seqspace.Xset.pp_sequence b
          (describe o))
      outcomes;
    (match witness with
    | Some w -> Format.printf "%a@." Core.Attack.pp_witness w
    | None -> Format.printf "no witness over %d pairs@." (List.length outcomes));
    print_spill_summary ();
    let* () = maybe_json (Core.Attack.search_report ?stats outcomes witness) json in
    `Ok ()
  end
  else begin
    let outcome =
      if single then
        Core.Attack.search_single p ~x:x1 ~depth ?mem_budget_bytes:mem_budget ?stats
          ~symm ()
      else
        Core.Attack.search_pair p ~x1 ~x2 ~depth ?mem_budget_bytes:mem_budget ?stats
          ~symm ()
    in
    (match outcome with
    | Core.Attack.Witness w -> Format.printf "%a@." Core.Attack.pp_witness w
    | Core.Attack.No_violation { closed; states_explored } ->
        Format.printf "no violation found (%s, %d joint states)@."
          (if closed then "state space closed — adversary provably cannot win within the move \
                           bounds" else "search truncated")
          states_explored);
    print_spill_summary ();
    let* () =
      maybe_json
        (Core.Attack.outcome_report ~x1 ~x2:(if single then x1 else x2) ?stats outcome)
        json
    in
    `Ok ()
  end

let attack_cmd =
  let x1 =
    Arg.(value & opt input_conv [ 0; 1 ] & info [ "x1" ] ~doc:"First input sequence.")
  in
  let x2 =
    Arg.(value & opt input_conv [ 1; 0 ] & info [ "x2" ] ~doc:"Second input sequence.")
  in
  let xs =
    Arg.(
      value & opt_all input_conv []
      & info [ "x" ]
          ~doc:
            "Input for an all-pairs sweep (repeatable; use $(b,-x \"\") for the empty sequence). \
             When given, overrides --x1/--x2 and searches every eligible pair, split across \
             --jobs.")
  in
  let depth = Arg.(value & opt int 64 & info [ "depth" ] ~doc:"Joint search depth.") in
  let single =
    Arg.(value & flag & info [ "single" ] ~doc:"Single-run safety search on x1 only.")
  in
  let symm =
    Arg.(
      value & flag
      & info [ "symm" ]
          ~doc:
            "Quotient the search by data-alphabet symmetry: canonicalise inputs by \
             first-occurrence relabelling, search one representative per orbit of input \
             pairs, and translate witnesses back.  Outcomes are unchanged; only protocols \
             declaring an equivariance are affected (others ignore the flag).")
  in
  let mem_budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "mem-budget" ] ~docv:"BYTES"
          ~doc:
            "Bound the BFS frontier's resident memory: past $(docv), full frontier chunks \
             spill to an unlinked temp file and stream back in FIFO order.  Outcomes and \
             --json artifacts are byte-identical to an unbounded search's; a resource \
             summary (budget-invariant metrics in the artifact, spill counters on stdout) \
             is reported.  A large value measures without spilling; 0 never spills.")
  in
  Cmd.v
    (Cmd.info "attack"
       ~doc:"Search for an impossibility witness (the Theorem 1/2 construction, executable).")
    Term.(
      ret
        (const attack_run $ protocol_arg $ config_term $ x1 $ x2 $ xs $ depth $ single
       $ symm $ mem_budget $ jobs_arg $ json_arg))

(* ---------------- knowledge ---------------- *)

let knowledge_run m seeds input json =
  let xs = Seqspace.Norep.enumerate ~m in
  let input = if input = [] then Seqspace.Norep.longest ~m else input in
  if not (List.mem input xs) then
    `Error (false, "input must be a repetition-free sequence over 0..m-1")
  else begin
    let p = Protocols.Norep.dup ~m in
    let traces =
      List.concat_map
        (fun x ->
          List.map
            (fun seed ->
              (Kernel.Runner.run p ~input:(Array.of_list x)
                 ~strategy:(Strategy.fair_random ()) ~rng:(Stdx.Rng.create seed)
                 ~max_steps:2_000 ~post_roll:30 ())
                .Kernel.Runner.trace)
            (List.init seeds (fun i -> i + 1)))
        xs
    in
    let u = Knowledge.Universe.of_traces traces in
    let tarr = Knowledge.Universe.traces u in
    Format.printf "universe: %d traces, %d points, %d receiver-view classes@."
      (Array.length tarr) (Knowledge.Universe.n_points u) (Knowledge.Universe.n_classes u);
    let table =
      Report.table ~title:"learning vs write times"
        [ ("run", Report.Right); ("t_i", Report.Left); ("writes", Report.Left) ]
    in
    Array.iteri
      (fun run trace ->
        if Array.to_list (Kernel.Trace.input trace) = input && run < List.length xs * seeds then begin
          let lt = Knowledge.Learn.learning_times u ~run in
          let wt = Knowledge.Learn.write_times u ~run in
          let cell = function Some t -> string_of_int t | None -> "?" in
          let times a = String.concat "; " (Array.to_list (Array.map cell a)) in
          Format.printf "run %d (input %a): t_i = [%s], writes = [%s]@." run
            Seqspace.Xset.pp_sequence input (times lt) (times wt);
          Report.row table
            [ Report.int run; Report.str ("[" ^ times lt ^ "]"); Report.str ("[" ^ times wt ^ "]") ]
        end)
      tarr;
    match
      maybe_json
        (Report.make ~id:"knowledge"
           ~title:(Printf.sprintf "learning times t_i over the m=%d norep universe" m)
           [
             Report.Metrics
               {
                 title = None;
                 pairs =
                   [
                     ("traces", Report.int (Array.length tarr));
                     ("points", Report.int (Knowledge.Universe.n_points u));
                     ("classes", Report.int (Knowledge.Universe.n_classes u));
                   ];
               };
             Report.finish table;
           ])
        json
    with
    | Ok () -> `Ok ()
    | Error e -> `Error (false, e)
  end

let knowledge_cmd =
  let m = Arg.(value & opt int 3 & info [ "m" ] ~doc:"Alphabet/domain size.") in
  let seeds = Arg.(value & opt int 6 & info [ "seeds" ] ~doc:"Schedules per input.") in
  let input =
    Arg.(value & opt input_conv [] & info [ "i"; "input" ] ~doc:"Run to report (default 0..m-1).")
  in
  Cmd.v
    (Cmd.info "knowledge" ~doc:"Compute the learning times t_i of Sec 2.3 on sampled universes.")
    Term.(ret (const knowledge_run $ m $ seeds $ input $ json_arg))

(* ---------------- verify ---------------- *)

let verify_run protocol config seeds max_steps max_failures jobs json =
  let ( let* ) r f = match r with Ok v -> f v | Error e -> `Error (false, e) in
  let* p = Registry.build_protocol ~name:protocol config in
  let xs =
    if protocol = "norep" then Seqspace.Norep.enumerate ~m:config.Registry.domain
    else
      Seqspace.Xset.to_list
        (Seqspace.Xset.All_upto
           { domain = config.Registry.domain; max_len = config.Registry.max_len })
  in
  let spec = Core.Harness.default_spec ~max_steps ~n_seeds:seeds () in
  let report = Core.Harness.verify p ~xs ?max_failures ~jobs spec in
  Format.printf "%a@." Core.Harness.pp_report report;
  List.iteri
    (fun i f ->
      if i < 10 then
        Format.printf "  failure: input %a, %s, seed %d: %a@." Seqspace.Xset.pp_sequence
          f.Core.Harness.input f.Core.Harness.strategy_name f.Core.Harness.seed
          Core.Verdict.pp f.Core.Harness.verdict)
    report.Core.Harness.failures;
  let* () = maybe_json (Core.Harness.to_report report) json in
  if Core.Harness.clean report then `Ok ()
  else `Error (false, "verification found failing runs")

let verify_cmd =
  let seeds = Arg.(value & opt int 3 & info [ "seeds" ] ~doc:"Seeds per schedule.") in
  let max_failures =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-failures" ]
          ~doc:
            "Keep only the earliest $(docv) failure records; the failure count and the exit \
             status still reflect every failing run."
          ~docv:"N")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Batch-verify a protocol over its whole allowable set under a schedule battery.")
    Term.(
      ret
        (const verify_run $ protocol_arg $ config_term $ seeds $ max_steps_arg $ max_failures
       $ jobs_arg $ json_arg))

(* ---------------- recover ---------------- *)

let recover_run protocol config input json =
  let ( let* ) r f = match r with Ok v -> f v | Error e -> `Error (false, e) in
  let* p = Registry.build_protocol ~name:protocol config in
  let r = Core.Spec.recoverability p ~input () in
  Format.printf "%a@." Core.Spec.pp_recoverability r;
  Format.printf "recoverable: %b (Property 2's executable face — see DESIGN.md E12)@."
    (Core.Spec.recoverable r);
  let* () = maybe_json (Core.Spec.recoverability_report ~protocol r) json in
  `Ok ()

let recover_cmd =
  let input =
    Arg.(value & opt input_conv [ 0; 1 ] & info [ "i"; "input" ] ~doc:"Input sequence.")
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:"Exhaustive dead-state analysis: can every reachable state still complete?")
    Term.(ret (const recover_run $ protocol_arg $ config_term $ input $ json_arg))

(* ---------------- census ---------------- *)

let census_run samples states jobs json =
  let control = Core.Census.control_is_clean () in
  let r = Core.Census.run ~samples ~states ~jobs () in
  Format.printf
    "census over %d random non-uniform protocols (m=1, |X|=3 > alpha(1)=2):@.\
     \ \ broken directly: %d@.\ \ witnessed by attack: %d@.\ \ undecided: %d@.\
     \ \ survivors: %d@.control protocol at the bound: %s@."
    r.Core.Census.samples r.Core.Census.broken_directly r.Core.Census.witnessed
    r.Core.Census.undecided r.Core.Census.survivors
    (if control then "clean" else "BROKEN");
  match maybe_json (Core.Census.to_report ~control r) json with
  | Error e -> `Error (false, e)
  | Ok () ->
      if Core.Census.ok r && control then `Ok ()
      else `Error (false, "census found a survivor or was inconclusive")

let census_cmd =
  let samples = Arg.(value & opt int 300 & info [ "samples" ] ~doc:"Protocols to sample.") in
  let states = Arg.(value & opt int 3 & info [ "states" ] ~doc:"Control states per process.") in
  Cmd.v
    (Cmd.info "census" ~doc:"Sample random protocols at m=1 and classify them (E9).")
    Term.(ret (const census_run $ samples $ states $ jobs_arg $ json_arg))

(* ---------------- experiments ---------------- *)

let experiments_run quick only format json =
  let entries = Registry.experiments () in
  let entries =
    match only with
    | [] -> entries
    | ids ->
        let ids = List.map String.lowercase_ascii ids in
        List.filter
          (fun e -> List.mem (String.lowercase_ascii e.Registry.e_id) ids)
          entries
  in
  let results =
    List.map (fun e -> if quick then e.Registry.e_quick () else e.Registry.e_full ()) entries
  in
  match
    match json with Some path -> write_artifact path (Report.set_to_json results) | None -> Ok ()
  with
  | Error e -> `Error (false, e)
  | Ok () ->
  (match format with
  | `Text -> List.iter (fun r -> Format.printf "%a@.@." Core.Experiments.pp_result r) results
  | `Json ->
      print_string (Stdx.Json.to_string (Report.set_to_json results));
      print_newline ()
  | `Csv -> List.iter (fun r -> print_string (Report.to_csv r)) results);
  if List.for_all Core.Experiments.ok results then `Ok ()
  else `Error (false, "some experiment shapes were violated")

let experiments_cmd =
  let quick = Arg.(value & flag & info [ "quick" ] ~doc:"Small parameters (test scale).") in
  let only =
    Arg.(value & opt_all string [] & info [ "only" ] ~doc:"Run only this experiment id (repeatable).")
  in
  Cmd.v
    (Cmd.info "experiments" ~doc:"Run the E1-E17 reproduction experiments.")
    Term.(ret (const experiments_run $ quick $ only $ format_arg $ json_arg))

(* ---------------- soak ---------------- *)

let soak_run seed jobs random_plans stab max_seconds format json =
  let cases =
    if stab then Faults.Soak.stab_battery ~random_plans ~seed ()
    else Faults.Soak.default_battery ~random_plans ~seed ()
  in
  let r = Faults.Soak.run ~jobs ?max_seconds ~seed cases in
  match maybe_json r json with
  | Error e -> `Error (false, e)
  | Ok () ->
      (match format with
      | `Text -> print_string (Report.to_text r)
      | `Json ->
          print_string (Stdx.Json.to_string (Report.to_json r));
          print_newline ()
      | `Csv -> print_string (Report.to_csv r));
      if r.Report.ok = Some true then `Ok ()
      else `Error (false, "soak battery was truncated before completing")

let soak_cmd =
  let random_plans =
    Arg.(
      value & opt int 4
      & info [ "random-plans" ] ~doc:"Seeded random fault plans per protocol.")
  in
  let stab =
    Arg.(
      value & flag
      & info [ "stab" ]
          ~doc:
            "Run the corrupted-start battery instead: every single-sided corrupted start of \
             each stabilising family (abp-stab, stenning-stab, gbn-stab) as a \
             $(b,corrupt-state) plan, composed plans pairing corrupted starts with mid-run \
             faults (including mid-run receiver corruption), stock ABP for contrast, plus \
             seeded random plans drawing from the full corruption space alongside the \
             ordinary fault kinds.")
  in
  let max_seconds =
    Arg.(
      value
      & opt (some float) None
      & info [ "max-seconds" ]
          ~doc:
            "Wall-clock budget; when exhausted the remaining cases are skipped and the report \
             carries a truncation note (and exits non-zero).")
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "Run the fault-injection soak battery: scripted and random fault plans over the \
          registered protocols, with per-run recovery verdicts.  Bit-identical at every \
          --jobs count.")
    Term.(
      ret
        (const soak_run $ seed_arg $ jobs_arg $ random_plans $ stab $ max_seconds $ format_arg
       $ json_arg))

(* ---------------- stab ---------------- *)

let stab_run protocol config input within max_steps seed jobs search depth max_states
    max_sends format json =
  let ( let* ) r f = match r with Ok v -> f v | Error e -> `Error (false, e) in
  let* p = Registry.build_protocol ~name:protocol config in
  let input = Array.of_list input in
  match Core.Stab.sweep ~jobs ~max_steps p ~input ~within ~seed () with
  | exception Invalid_argument e -> `Error (false, e)
  | sweep ->
      let outcome =
        if search then
          Some
            (Core.Stab.search ~depth ~max_states ~max_sends_per_sender:max_sends
               ~max_sends_per_receiver:max_sends p ~input ())
        else None
      in
      let r = Core.Stab.sweep_report sweep in
      let r =
        match outcome with
        | None -> r
        | Some o ->
            let violation_free =
              match o with Core.Stab.No_violation _ -> true | Core.Stab.Violation _ -> false
            in
            {
              r with
              Report.items = r.Report.items @ Core.Stab.outcome_items o;
              ok = Some (sweep.Core.Stab.all_stabilised && violation_free);
            }
      in
      let* () = maybe_json r json in
      (match format with
      | `Text -> print_string (Report.to_text r)
      | `Json ->
          print_string (Stdx.Json.to_string (Report.to_json r));
          print_newline ()
      | `Csv -> print_string (Report.to_csv r));
      if r.Report.ok = Some true then `Ok ()
      else `Error (false, "a corrupted start failed to stabilise (or reached a violation)")

let stab_cmd =
  let protocol =
    Arg.(
      value
      & opt (enum (List.map (fun n -> (n, n)) (Registry.protocol_names ()))) "abp-stab"
      & info [ "p"; "protocol" ] ~doc:"Protocol to sweep (must declare a perturb space).")
  in
  (* The shared config term defaults to the attack surface's
     reorder+dup / d=3; the stabilisation sweep's canonical subject is
     abp-stab on its native channel at E15's parameters. *)
  let config_term =
    let make channel domain max_len header_space drop_budget window =
      { Registry.channel; domain; max_len; header_space; drop_budget; window }
    in
    let channel =
      Arg.(value & opt channel_conv Chan.Fifo_lossy & info [ "c"; "channel" ] ~doc:"Channel kind.")
    in
    let domain =
      Arg.(value & opt int 2 & info [ "d"; "domain" ] ~doc:"Data domain size |D|.")
    in
    Term.(
      const make $ channel $ domain $ max_len_arg $ header_space_arg $ drop_budget_arg
      $ window_arg)
  in
  let input =
    Arg.(value & opt input_conv [ 0; 1; 1; 0 ] & info [ "i"; "input" ] ~doc:"Input sequence.")
  in
  let within =
    Arg.(
      value & opt int 256
      & info [ "within" ] ~doc:"Stabilisation window in steps from the corrupted start.")
  in
  let search =
    Arg.(
      value & flag
      & info [ "search" ]
          ~doc:
            "Also run the exact corrupted-root witness search: a capped BFS rooted at every \
             corrupted start simultaneously, hunting for a reachable safety violation.")
  in
  let depth = Arg.(value & opt int 64 & info [ "depth" ] ~doc:"Search depth cap.") in
  let max_states =
    Arg.(value & opt int 200_000 & info [ "max-states" ] ~doc:"Search state cap.")
  in
  let max_sends =
    Arg.(value & opt int 4 & info [ "max-sends" ] ~doc:"Search cap on sends per side.")
  in
  let max_steps =
    Arg.(value & opt int 20_000 & info [ "max-steps" ] ~doc:"Step budget per sweep point.")
  in
  Cmd.v
    (Cmd.info "stab"
       ~doc:
         "Sweep a protocol's declared corrupted-start space: one deterministic session per \
          corrupted pair, per-point stabilisation verdicts, worst-case time-to-stabilise, \
          and (with --search) an exact witness search over the union of corrupted roots.")
    Term.(
      ret
        (const stab_run $ protocol $ config_term $ input $ within $ max_steps $ seed_arg
       $ jobs_arg $ search $ depth $ max_states $ max_sends $ format_arg $ json_arg))

(* ---------------- serve ---------------- *)

let serve_run once spool jobs timeslice results_only poll_seconds max_batches idle_exit format
    json =
  match (once, spool) with
  | None, None | Some _, Some _ ->
      `Error (true, "serve needs exactly one of --once FILE or --spool DIR")
  | Some path, None -> (
      (* Drain one batch file and exit: the cram-testable path. *)
      match Serve.load_batch path with
      | Error e -> `Error (false, Printf.sprintf "%s: %s" path e)
      | Ok batch -> (
          let t0 = Unix.gettimeofday () in
          let outcomes, stats = Serve.run_batch ~jobs ~timeslice batch in
          let telemetry =
            Serve.observe Serve.telemetry_zero stats
              ~wall_seconds:(Unix.gettimeofday () -. t0)
          in
          let results = Serve.results_report ~label:(Filename.basename path) outcomes in
          let telemetry_r = Serve.telemetry_report telemetry in
          let art = Serve.artifact ~results_only ~results ~telemetry:telemetry_r () in
          let shown = if results_only then [ results ] else [ results; telemetry_r ] in
          (match format with
          | `Text -> List.iter (fun r -> print_string (Report.to_text r)) shown
          | `Json ->
              print_string (Stdx.Json.to_string art);
              print_newline ()
          | `Csv -> List.iter (fun r -> print_string (Report.to_csv r)) shown);
          match json with
          | None -> `Ok ()
          | Some out -> (
              match write_artifact out art with
              | Ok () -> `Ok ()
              | Error e -> `Error (false, e))))
  | None, Some dir -> (
      match
        Serve.spool ~jobs ~timeslice ~poll_seconds ?max_batches ?idle_exit ~dir ()
      with
      | Error e -> `Error (false, e)
      | Ok telemetry ->
          print_string (Report.to_text (Serve.telemetry_report telemetry));
          `Ok ())

let serve_cmd =
  let once =
    Arg.(
      value
      & opt (some string) None
      & info [ "once" ] ~docv:"FILE"
          ~doc:"Execute one JSON batch file as a scheduler batch, emit its artifact, and exit.")
  in
  let spool =
    Arg.(
      value
      & opt (some string) None
      & info [ "spool" ] ~docv:"DIR"
          ~doc:
            "Run as a daemon: poll $(docv) for $(b,*.json) batch files, execute each, write \
             $(b,<name>.report.json) beside it (with cumulative telemetry), and rename the \
             input to $(b,<name>.json.done).")
  in
  let timeslice =
    Arg.(
      value
      & opt int Kernel.Sched.default_timeslice
      & info [ "timeslice" ]
          ~doc:
            "Simulation steps one session may take per scheduler tick.  Results are identical \
             at every value; this only tunes fairness granularity.")
  in
  let results_only =
    Arg.(
      value & flag
      & info [ "results-only" ]
          ~doc:
            "Omit the telemetry report from the artifact, leaving only the deterministic \
             per-job results — artifacts then compare byte-identical across --jobs counts.")
  in
  let poll_seconds =
    Arg.(value & opt float 0.5 & info [ "poll-seconds" ] ~doc:"Spool-directory poll interval.")
  in
  let max_batches =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-batches" ] ~doc:"Exit the daemon after $(docv) batches." ~docv:"N")
  in
  let idle_exit =
    Arg.(
      value
      & opt (some float) None
      & info [ "idle-exit" ]
          ~doc:"Exit the daemon after $(docv) seconds with no batch file to process."
          ~docv:"SECONDS")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Timeslice many sessions per domain behind a batch daemon: read JSON job specs \
          (protocol x channel x plan x budget), execute them on the event-queue scheduler \
          sharded over --jobs domains, and stream report-IR artifacts with cumulative \
          telemetry.")
    Term.(
      ret
        (const serve_run $ once $ spool $ jobs_arg $ timeslice $ results_only $ poll_seconds
       $ max_batches $ idle_exit $ format_arg $ json_arg))

(* ---------------- validate ---------------- *)

let validate_run path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> `Error (false, e)
  | contents -> (
      match Report.validate_artifact contents with
      | Ok n -> (
          (* Schema-valid; now surface the verdict envelope: an
             artifact recording a failure must fail the pipeline. *)
          let failed =
            match Result.bind (Stdx.Json.parse contents) Report.set_of_json with
            | Ok reports ->
                List.filter_map
                  (fun r -> if r.Report.ok = Some false then Some r.Report.id else None)
                  reports
            | Error _ -> []
          in
          match failed with
          | [] ->
              Format.printf "%s: valid report artifact, %d report(s), schema version %d@." path
                n Report.schema_version;
              `Ok ()
          | ids ->
              `Error
                ( false,
                  Printf.sprintf "%s: schema-valid, but report(s) carry ok=false: %s" path
                    (String.concat ", " ids) ))
      | Error e -> `Error (false, Printf.sprintf "%s: invalid artifact: %s" path e))

let validate_cmd =
  let path =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"PATH" ~doc:"Artifact to check.")
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:"Parse a --json artifact, check its schema, and round-trip it through the report IR.")
    Term.(ret (const validate_run $ path))

let () =
  let doc = "Tight bounds for the sequence transmission problem (Wang & Zuck, PODC 1989)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "stp" ~doc)
          [
            alpha_cmd;
            simulate_cmd;
            attack_cmd;
            knowledge_cmd;
            verify_cmd;
            recover_cmd;
            census_cmd;
            experiments_cmd;
            soak_cmd;
            stab_cmd;
            serve_cmd;
            validate_cmd;
          ]))

(* Unit and property tests for the stdx utility library. *)

module Rng = Stdx.Rng
module Bignat = Stdx.Bignat
module Multiset = Stdx.Multiset
module Deque = Stdx.Deque
module Stats = Stdx.Stats
module Tabular = Stdx.Tabular
module Intern = Stdx.Intern
module Codec = Stdx.Codec
module Frontier = Stdx.Frontier

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ------------------------- Rng ------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  check Alcotest.bool "different seeds differ" false (Rng.bits64 a = Rng.bits64 b)

let test_rng_copy_replays () =
  let a = Rng.create 7 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  check Alcotest.int64 "copy replays" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a 0 in
  check Alcotest.bool "split streams differ" false (Rng.bits64 a = Rng.bits64 b)

let test_rng_split_pure () =
  let a = Rng.create 11 in
  let b1 = Rng.bits64 (Rng.split a 3) in
  (* Deriving other children (in any order) must not perturb child 3,
     and the parent must not advance. *)
  ignore (Rng.bits64 (Rng.split a 0));
  ignore (Rng.bits64 (Rng.split a 7));
  let b2 = Rng.bits64 (Rng.split a 3) in
  check Alcotest.int64 "split is pure in the parent" b1 b2;
  check Alcotest.int64 "parent state unmoved" (Rng.bits64 (Rng.create 11)) (Rng.bits64 a)

let prop_rng_split_prefixes_disjoint =
  QCheck.Test.make ~name:"Rng.split streams are stable and prefix-disjoint"
    QCheck.(pair small_int (pair (int_range 0 50) (int_range 0 50)))
    (fun (seed, (i, j)) ->
      let prefix k =
        let r = Rng.split (Rng.create seed) k in
        List.init 32 (fun _ -> Rng.bits64 r)
      in
      let again = prefix i in
      prefix i = again
      && (i = j
         || List.for_all (fun v -> not (List.mem v (prefix j))) again))

let prop_rng_int_range =
  QCheck.Test.make ~name:"Rng.int stays in range"
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let v = Rng.int rng n in
      v >= 0 && v < n)

let test_rng_bool_both_values () =
  let rng = Rng.create 3 in
  let seen_true = ref false and seen_false = ref false in
  for _ = 1 to 200 do
    if Rng.bool rng then seen_true := true else seen_false := true
  done;
  check Alcotest.bool "both" true (!seen_true && !seen_false)

let test_rng_float_range () =
  let rng = Rng.create 5 in
  for _ = 1 to 1000 do
    let f = Rng.float rng in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "float out of range: %f" f
  done

let test_rng_pick_weighted () =
  let rng = Rng.create 9 in
  (* Zero-weight choices must never be picked. *)
  for _ = 1 to 200 do
    check Alcotest.string "never zero-weight" "a"
      (Rng.pick_weighted rng [ ("a", 5); ("b", 0) ])
  done

let prop_rng_shuffle_permutes =
  QCheck.Test.make ~name:"Rng.shuffle is a permutation"
    QCheck.(pair small_int (list small_int))
    (fun (seed, xs) ->
      let a = Array.of_list xs in
      Rng.shuffle (Rng.create seed) a;
      List.sort compare (Array.to_list a) = List.sort compare xs)

(* ------------------------- Bignat ------------------------- *)

let prop_bignat_int_roundtrip =
  QCheck.Test.make ~name:"Bignat of_int/to_int roundtrip"
    QCheck.(int_range 0 max_int)
    (fun n -> Bignat.to_int (Bignat.of_int n) = Some n)

let prop_bignat_add_matches_int =
  QCheck.Test.make ~name:"Bignat.add matches int addition"
    QCheck.(pair (int_range 0 1_000_000_000) (int_range 0 1_000_000_000))
    (fun (a, b) ->
      Bignat.to_int (Bignat.add (Bignat.of_int a) (Bignat.of_int b)) = Some (a + b))

let prop_bignat_mul_matches_int =
  QCheck.Test.make ~name:"Bignat.mul matches int multiplication"
    QCheck.(pair (int_range 0 1_000_000) (int_range 0 1_000_000))
    (fun (a, b) ->
      Bignat.to_int (Bignat.mul (Bignat.of_int a) (Bignat.of_int b)) = Some (a * b))

let prop_bignat_divmod =
  QCheck.Test.make ~name:"Bignat.divmod_int reconstructs"
    QCheck.(pair (int_range 0 1_000_000_000) (int_range 1 100_000))
    (fun (a, k) ->
      let q, r = Bignat.divmod_int (Bignat.of_int a) k in
      match Bignat.to_int q with Some q -> (q * k) + r = a && r >= 0 && r < k | None -> false)

let test_bignat_factorial () =
  check Alcotest.string "20!" "2432902008176640000" (Bignat.to_string (Bignat.factorial 20));
  check Alcotest.string "25!" "15511210043330985984000000"
    (Bignat.to_string (Bignat.factorial 25));
  check Alcotest.string "0!" "1" (Bignat.to_string (Bignat.factorial 0))

let test_bignat_overflow_detection () =
  check Alcotest.bool "25! does not fit" true (Bignat.to_int (Bignat.factorial 25) = None)

let prop_bignat_compare_total =
  QCheck.Test.make ~name:"Bignat.compare matches int compare"
    QCheck.(pair (int_range 0 2_000_000_000) (int_range 0 2_000_000_000))
    (fun (a, b) ->
      Bignat.compare (Bignat.of_int a) (Bignat.of_int b) = Int.compare a b)

let test_bignat_zero_one () =
  check Alcotest.string "zero" "0" (Bignat.to_string Bignat.zero);
  check Alcotest.string "one" "1" (Bignat.to_string Bignat.one);
  check Alcotest.bool "0 = of_int 0" true (Bignat.equal Bignat.zero (Bignat.of_int 0))

let test_bignat_mul_int_carry () =
  (* Exercise the multi-limb carry path. *)
  let big = Bignat.factorial 30 in
  let doubled = Bignat.mul_int big 2 in
  check Alcotest.bool "2*30! = 30!+30!" true (Bignat.equal doubled (Bignat.add big big))

(* ------------------------- Multiset ------------------------- *)

let prop_multiset_counts =
  QCheck.Test.make ~name:"Multiset.of_list counts occurrences"
    QCheck.(list (int_range 0 10))
    (fun xs ->
      let ms = Multiset.of_list xs in
      List.for_all
        (fun x -> Multiset.count ms x = List.length (List.filter (( = ) x) xs))
        (List.sort_uniq compare xs))

let prop_multiset_roundtrip =
  QCheck.Test.make ~name:"Multiset to_list/of_list roundtrip (sorted)"
    QCheck.(list (int_range 0 10))
    (fun xs -> Multiset.to_list (Multiset.of_list xs) = List.sort compare xs)

let test_multiset_remove () =
  let ms = Multiset.of_list [ 1; 1; 2 ] in
  (match Multiset.remove ms 1 with
  | Some ms' -> check Alcotest.int "count drops" 1 (Multiset.count ms' 1)
  | None -> Alcotest.fail "remove failed");
  check Alcotest.bool "remove absent" true (Multiset.remove ms 9 = None)

let test_multiset_remove_to_empty () =
  let ms = Multiset.of_list [ 5 ] in
  match Multiset.remove ms 5 with
  | Some ms' ->
      check Alcotest.bool "empty" true (Multiset.is_empty ms');
      check Alcotest.int "support gone" 0 (List.length (Multiset.support ms'))
  | None -> Alcotest.fail "remove failed"

let prop_multiset_leq =
  QCheck.Test.make ~name:"Multiset.leq iff pointwise"
    QCheck.(pair (list (int_range 0 5)) (list (int_range 0 5)))
    (fun (xs, ys) ->
      let a = Multiset.of_list xs and b = Multiset.of_list ys in
      Multiset.leq a b
      = List.for_all (fun x -> Multiset.count a x <= Multiset.count b x) (List.sort_uniq compare xs))

let prop_multiset_union_adds =
  QCheck.Test.make ~name:"Multiset.union adds multiplicities"
    QCheck.(pair (list (int_range 0 5)) (list (int_range 0 5)))
    (fun (xs, ys) ->
      let u = Multiset.union (Multiset.of_list xs) (Multiset.of_list ys) in
      List.for_all
        (fun x ->
          Multiset.count u x
          = List.length (List.filter (( = ) x) xs) + List.length (List.filter (( = ) x) ys))
        (List.sort_uniq compare (xs @ ys)))

let test_multiset_encode_distinct () =
  check Alcotest.bool "encode distinguishes" true
    (Multiset.encode (Multiset.of_list [ 1; 1 ]) <> Multiset.encode (Multiset.of_list [ 1 ]))

let test_multiset_cardinal_distinct () =
  let ms = Multiset.of_list [ 3; 3; 3; 7 ] in
  check Alcotest.int "cardinal" 4 (Multiset.cardinal ms);
  check Alcotest.int "distinct" 2 (Multiset.distinct ms)

let test_multiset_add_times () =
  let ms = Multiset.add ~times:5 Multiset.empty 2 in
  check Alcotest.int "times" 5 (Multiset.count ms 2);
  check Alcotest.bool "times=0 is empty" true (Multiset.is_empty (Multiset.add ~times:0 Multiset.empty 2))

(* ------------------------- Deque ------------------------- *)

let prop_deque_fifo =
  QCheck.Test.make ~name:"Deque push_back/pop_front is a queue"
    QCheck.(list small_int)
    (fun xs ->
      let q = List.fold_left Deque.push_back Deque.empty xs in
      let rec drain q acc =
        match Deque.pop_front q with
        | Some (x, q') -> drain q' (x :: acc)
        | None -> List.rev acc
      in
      drain q [] = xs)

let prop_deque_to_list =
  QCheck.Test.make ~name:"Deque.to_list front-to-back"
    QCheck.(list small_int)
    (fun xs -> Deque.to_list (Deque.of_list xs) = xs)

let test_deque_push_front () =
  let q = Deque.push_front (Deque.of_list [ 2; 3 ]) 1 in
  check (Alcotest.list Alcotest.int) "front insert" [ 1; 2; 3 ] (Deque.to_list q)

let test_deque_length () =
  check Alcotest.int "length" 3 (Deque.length (Deque.of_list [ 1; 2; 3 ]));
  check Alcotest.bool "empty" true (Deque.is_empty Deque.empty)

let test_deque_peek () =
  check (Alcotest.option Alcotest.int) "peek" (Some 9) (Deque.peek_front (Deque.of_list [ 9; 1 ]));
  check (Alcotest.option Alcotest.int) "peek empty" None (Deque.peek_front Deque.empty)

let test_deque_fold () =
  check Alcotest.int "fold order" 123
    (Deque.fold (fun acc x -> (acc * 10) + x) 0 (Deque.of_list [ 1; 2; 3 ]))

(* ------------------------- Stats ------------------------- *)

let test_stats_summary () =
  match Stats.summarize [ 1.0; 2.0; 3.0; 4.0 ] with
  | None -> Alcotest.fail "summarize failed"
  | Some s ->
      check (Alcotest.float 1e-9) "mean" 2.5 s.Stats.mean;
      check (Alcotest.float 1e-9) "min" 1.0 s.Stats.min;
      check (Alcotest.float 1e-9) "max" 4.0 s.Stats.max;
      check (Alcotest.float 1e-9) "p50" 2.5 s.Stats.p50;
      check Alcotest.int "n" 4 s.Stats.n

let test_stats_empty () = check Alcotest.bool "empty" true (Stats.summarize [] = None)

let test_stats_single () =
  match Stats.summarize [ 7.0 ] with
  | Some s ->
      check (Alcotest.float 1e-9) "mean" 7.0 s.Stats.mean;
      check (Alcotest.float 1e-9) "sd" 0.0 s.Stats.stddev
  | None -> Alcotest.fail "single failed"

let test_stats_percentile () =
  let sorted = [| 10.0; 20.0; 30.0 |] in
  check (Alcotest.float 1e-9) "p0" 10.0 (Stats.percentile sorted 0.0);
  check (Alcotest.float 1e-9) "p100" 30.0 (Stats.percentile sorted 1.0);
  check (Alcotest.float 1e-9) "p50" 20.0 (Stats.percentile sorted 0.5);
  check (Alcotest.float 1e-9) "p25 interpolates" 15.0 (Stats.percentile sorted 0.25)

let test_stats_histogram () =
  let h = Stats.histogram ~buckets:2 [ 0.0; 1.0; 2.0; 3.0 ] in
  check Alcotest.int "buckets" 2 (List.length h);
  let total = List.fold_left (fun acc (_, _, c) -> acc + c) 0 h in
  check Alcotest.int "total count" 4 total

let prop_stats_mean_bounds =
  QCheck.Test.make ~name:"mean between min and max"
    QCheck.(list_of_size Gen.(int_range 1 50) (float_range (-1000.0) 1000.0))
    (fun xs ->
      let m = Stats.mean xs in
      let lo = List.fold_left Float.min infinity xs in
      let hi = List.fold_left Float.max neg_infinity xs in
      m >= lo -. 1e-9 && m <= hi +. 1e-9)

(* ------------------------- Tabular ------------------------- *)

let contains_substring haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_tabular_render () =
  let t = Tabular.create ~title:"T" [ ("a", Tabular.Left); ("b", Tabular.Right) ] in
  Tabular.add_row t [ "x"; "1" ];
  Tabular.add_row t [ "longer"; "22" ];
  let s = Tabular.render t in
  check Alcotest.bool "contains title" true (String.length s > 0 && String.sub s 0 1 = "T");
  check Alcotest.bool "contains cell" true (contains_substring s "longer")

let test_tabular_arity () =
  let t = Tabular.create ~title:"T" [ ("a", Tabular.Left) ] in
  Alcotest.check_raises "arity mismatch" (Invalid_argument "Tabular.add_row: arity mismatch")
    (fun () -> Tabular.add_row t [ "x"; "y" ])

let test_tabular_cells () =
  check Alcotest.string "int" "42" (Tabular.cell_int 42);
  check Alcotest.string "float" "3.14" (Tabular.cell_float ~decimals:2 3.14159);
  check Alcotest.string "bool" "yes" (Tabular.cell_bool true)

(* ------------------------- Codec ------------------------- *)

let test_codec_varint_known () =
  (* One-byte zigzag range and the extremes. *)
  List.iter
    (fun n ->
      let c = Codec.create ~size:1 () in
      Codec.add_varint c n;
      let v, off = Codec.varint_at (Codec.contents c) 0 in
      check Alcotest.int (Printf.sprintf "varint %d" n) n v;
      check Alcotest.int "consumed whole encoding" (Codec.length c) off)
    [ 0; -1; 1; -64; 63; -65; 64; 1000; -1000; max_int; min_int ]

let test_codec_varint_width () =
  let width n =
    let c = Codec.create () in
    Codec.add_varint c n;
    Codec.length c
  in
  check Alcotest.int "0 is one byte" 1 (width 0);
  check Alcotest.int "63 is one byte" 1 (width 63);
  check Alcotest.int "-64 is one byte" 1 (width (-64));
  check Alcotest.int "64 is two bytes" 2 (width 64)

let test_codec_blob_mixed () =
  let c = Codec.create ~size:1 () in
  Codec.add_varint c 7;
  Codec.add_blob c "hello";
  Codec.add_blob c "";
  Codec.add_varint c (-3);
  let s = Codec.contents c in
  let v1, off = Codec.varint_at s 0 in
  let b1, off = Codec.blob_at s off in
  let b2, off = Codec.blob_at s off in
  let v2, off = Codec.varint_at s off in
  check Alcotest.int "leading varint" 7 v1;
  check Alcotest.string "blob" "hello" b1;
  check Alcotest.string "empty blob" "" b2;
  check Alcotest.int "trailing varint" (-3) v2;
  check Alcotest.int "stream fully consumed" (String.length s) off

let test_codec_reset () =
  let c = Codec.create ~size:1 () in
  Codec.add_blob c "some bytes";
  Codec.reset c;
  check Alcotest.int "reset clears length" 0 (Codec.length c);
  check Alcotest.string "reset clears contents" "" (Codec.contents c);
  Codec.add_varint c 5;
  check Alcotest.(pair int int) "writes restart at 0" (5, 1)
    (Codec.varint_at (Codec.contents c) 0)

let test_codec_truncation () =
  let c = Codec.create () in
  Codec.add_varint c 1_000_000;
  let s = Codec.contents c in
  Alcotest.check_raises "truncated varint"
    (Invalid_argument "Codec.varint_at: truncated varint") (fun () ->
      ignore (Codec.varint_at (String.sub s 0 (String.length s - 1)) 0));
  let c = Codec.create () in
  Codec.add_blob c "abcdef";
  let s = Codec.contents c in
  Alcotest.check_raises "truncated blob" (Invalid_argument "Codec.blob_at: truncated blob")
    (fun () -> ignore (Codec.blob_at (String.sub s 0 3) 0))

let prop_codec_varint_roundtrip =
  QCheck.Test.make ~name:"Codec varint sequences round-trip"
    QCheck.(small_list int)
    (fun ns ->
      let c = Codec.create ~size:1 () in
      List.iter (Codec.add_varint c) ns;
      let s = Codec.contents c in
      let decoded, off =
        List.fold_left
          (fun (acc, off) _ ->
            let v, off = Codec.varint_at s off in
            (v :: acc, off))
          ([], 0) ns
      in
      List.rev decoded = ns && off = String.length s)

let prop_codec_blob_roundtrip =
  QCheck.Test.make ~name:"Codec blob sequences round-trip"
    QCheck.(small_list small_string)
    (fun ss ->
      let c = Codec.create ~size:1 () in
      List.iter (Codec.add_blob c) ss;
      let s = Codec.contents c in
      let decoded, off =
        List.fold_left
          (fun (acc, off) _ ->
            let b, off = Codec.blob_at s off in
            (b :: acc, off))
          ([], 0) ss
      in
      List.rev decoded = ss && off = String.length s)

(* Emitting a component sequence and interning the buffer in place
   must agree exactly with interning the copied-out string — the
   engines rely on [intern_bytes] never seeing different bytes than
   [contents] would produce. *)
let prop_codec_intern_bytes_agrees =
  QCheck.Test.make ~name:"Intern.intern_bytes agrees with intern on codec contents"
    QCheck.(small_list (small_list small_string))
    (fun states ->
      let by_string = Intern.create () and by_bytes = Intern.create () in
      let c = Codec.create ~size:1 () in
      List.for_all
        (fun components ->
          Codec.reset c;
          List.iter (Codec.add_blob c) components;
          let id_s, fresh_s = Intern.intern by_string (Codec.contents c) in
          let id_b, fresh_b =
            Intern.intern_bytes by_bytes (Codec.buffer c) ~pos:0 ~len:(Codec.length c)
          in
          id_s = id_b && fresh_s = fresh_b)
        states
      && Intern.length by_string = Intern.length by_bytes)

let test_intern_bytes_slice () =
  let t = Intern.create () in
  let b = Bytes.of_string "xxhelloyy" in
  let id, fresh = Intern.intern_bytes t b ~pos:2 ~len:5 in
  check Alcotest.(pair int bool) "slice interned fresh" (0, true) (id, fresh);
  check Alcotest.(pair int bool) "same slice via string" (0, false) (Intern.intern t "hello");
  check Alcotest.string "name is the slice" "hello" (Intern.name t 0)

(* ------------------------- Intern ------------------------- *)

let test_intern_ids_dense () =
  let t = Intern.create () in
  check Alcotest.int "first id" 0 (Intern.id t "a");
  check Alcotest.int "second id" 1 (Intern.id t "b");
  check Alcotest.int "repeat is stable" 0 (Intern.id t "a");
  check Alcotest.int "third id" 2 (Intern.id t "c");
  check Alcotest.int "length" 3 (Intern.length t)

let test_intern_fresh_flag () =
  let t = Intern.create () in
  check Alcotest.(pair int bool) "first sight" (0, true) (Intern.intern t "x");
  check Alcotest.(pair int bool) "second sight" (0, false) (Intern.intern t "x");
  check Alcotest.(pair int bool) "new string" (1, true) (Intern.intern t "y")

let test_intern_roundtrip () =
  let t = Intern.create ~size:2 () in
  (* Push past the initial names capacity to exercise growth. *)
  let strs = List.init 200 (fun i -> Printf.sprintf "s%d" i) in
  let ids = List.map (Intern.id t) strs in
  List.iter2 (fun s i -> check Alcotest.string "name round-trip" s (Intern.name t i)) strs ids;
  check Alcotest.(option int) "find_opt hit" (Some 7) (Intern.find_opt t "s7");
  check Alcotest.(option int) "find_opt miss" None (Intern.find_opt t "absent");
  Alcotest.check_raises "bad id" (Invalid_argument "Intern.name: id 200 not allocated")
    (fun () -> ignore (Intern.name t 200))

let prop_intern_bijective =
  QCheck.Test.make ~name:"interning is a bijection on distinct strings"
    QCheck.(small_list small_string)
    (fun ss ->
      let t = Intern.create () in
      let ids = List.map (Intern.id t) ss in
      List.for_all2 (fun s i -> Intern.name t i = s) ss ids
      && Intern.length t = List.length (List.sort_uniq String.compare ss))

(* ------------------------- Frontier ------------------------- *)

(* An op list drives both a spilled frontier (tiny chunks, one-chunk
   budget: every rotation pages through the spill file) and an
   unbounded in-memory one; negative ops pop, non-negative ops push.
   The pager must be invisible: identical pop sequences, identical
   lengths, for arbitrary interleavings. *)
let prop_frontier_spill_transparent =
  QCheck.Test.make ~count:300 ~name:"frontier: spilled = unbounded pop sequence"
    QCheck.(list (int_range (-1) 1_000_000))
    (fun ops ->
      let spilled = Frontier.create ~chunk_bytes:32 ~mem_budget_bytes:1 () in
      let unbounded = Frontier.create () in
      let interp f =
        let popped = ref [] in
        List.iter
          (fun op ->
            if op < 0 then begin
              if not (Frontier.is_empty f) then popped := Frontier.pop f :: !popped
            end
            else Frontier.push f op)
          ops;
        (* Drain what remains so the law covers the tail too. *)
        while not (Frontier.is_empty f) do
          popped := Frontier.pop f :: !popped
        done;
        List.rev !popped
      in
      let a = interp spilled and b = interp unbounded in
      Frontier.close spilled;
      Frontier.close unbounded;
      a = b)

let test_frontier_spill_stats () =
  let f = Frontier.create ~chunk_bytes:32 ~mem_budget_bytes:1 () in
  for i = 0 to 999 do
    Frontier.push f (i * 1000)
  done;
  let s = Frontier.stats f in
  check Alcotest.bool "chunks spilled" true (s.Frontier.spill_chunks > 0);
  check Alcotest.bool "bytes spilled" true (s.Frontier.spilled_bytes > 0);
  check Alcotest.bool "resident bounded" true
    (s.Frontier.peak_resident_bytes <= 2 * (32 + 16));
  check Alcotest.int "peak ids" 1000 s.Frontier.peak_len;
  for i = 0 to 999 do
    check Alcotest.int "fifo through spill" (i * 1000) (Frontier.pop f)
  done;
  check Alcotest.bool "drained" true (Frontier.is_empty f);
  (* clear rewinds the spill write offset; the pool keeps working. *)
  Frontier.push f 7;
  Frontier.clear f;
  check Alcotest.bool "cleared" true (Frontier.is_empty f);
  Frontier.push f 9;
  check Alcotest.int "usable after clear" 9 (Frontier.pop f);
  Frontier.close f;
  Frontier.close f (* idempotent *)

let test_frontier_unbounded_never_spills () =
  let f = Frontier.create ~chunk_bytes:32 () in
  for i = 0 to 999 do
    Frontier.push f i
  done;
  let s = Frontier.stats f in
  check Alcotest.int "no spill without budget" 0 s.Frontier.spill_chunks;
  check Alcotest.bool "bytes tracked" true (s.Frontier.peak_bytes > 0);
  Frontier.close f

let () =
  Alcotest.run "stdx"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "copy replays" `Quick test_rng_copy_replays;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "split pure in parent" `Quick test_rng_split_pure;
          Alcotest.test_case "bool both values" `Quick test_rng_bool_both_values;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "pick_weighted zero weight" `Quick test_rng_pick_weighted;
          qtest prop_rng_split_prefixes_disjoint;
          qtest prop_rng_int_range;
          qtest prop_rng_shuffle_permutes;
        ] );
      ( "bignat",
        [
          Alcotest.test_case "factorial known values" `Quick test_bignat_factorial;
          Alcotest.test_case "overflow detection" `Quick test_bignat_overflow_detection;
          Alcotest.test_case "zero and one" `Quick test_bignat_zero_one;
          Alcotest.test_case "mul_int carry" `Quick test_bignat_mul_int_carry;
          qtest prop_bignat_int_roundtrip;
          qtest prop_bignat_add_matches_int;
          qtest prop_bignat_mul_matches_int;
          qtest prop_bignat_divmod;
          qtest prop_bignat_compare_total;
        ] );
      ( "multiset",
        [
          Alcotest.test_case "remove" `Quick test_multiset_remove;
          Alcotest.test_case "remove to empty" `Quick test_multiset_remove_to_empty;
          Alcotest.test_case "encode distinct" `Quick test_multiset_encode_distinct;
          Alcotest.test_case "cardinal/distinct" `Quick test_multiset_cardinal_distinct;
          Alcotest.test_case "add ~times" `Quick test_multiset_add_times;
          qtest prop_multiset_counts;
          qtest prop_multiset_roundtrip;
          qtest prop_multiset_leq;
          qtest prop_multiset_union_adds;
        ] );
      ( "deque",
        [
          Alcotest.test_case "push_front" `Quick test_deque_push_front;
          Alcotest.test_case "length/empty" `Quick test_deque_length;
          Alcotest.test_case "peek" `Quick test_deque_peek;
          Alcotest.test_case "fold order" `Quick test_deque_fold;
          qtest prop_deque_fifo;
          qtest prop_deque_to_list;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "single" `Quick test_stats_single;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "histogram" `Quick test_stats_histogram;
          qtest prop_stats_mean_bounds;
        ] );
      ( "tabular",
        [
          Alcotest.test_case "render" `Quick test_tabular_render;
          Alcotest.test_case "arity" `Quick test_tabular_arity;
          Alcotest.test_case "cells" `Quick test_tabular_cells;
        ] );
      ( "codec",
        [
          Alcotest.test_case "varint known values" `Quick test_codec_varint_known;
          Alcotest.test_case "varint widths" `Quick test_codec_varint_width;
          Alcotest.test_case "mixed blob/varint stream" `Quick test_codec_blob_mixed;
          Alcotest.test_case "reset" `Quick test_codec_reset;
          Alcotest.test_case "truncation errors" `Quick test_codec_truncation;
          qtest prop_codec_varint_roundtrip;
          qtest prop_codec_blob_roundtrip;
        ] );
      ( "intern",
        [
          Alcotest.test_case "dense stable ids" `Quick test_intern_ids_dense;
          Alcotest.test_case "fresh flag" `Quick test_intern_fresh_flag;
          Alcotest.test_case "round-trip and growth" `Quick test_intern_roundtrip;
          Alcotest.test_case "intern_bytes slice" `Quick test_intern_bytes_slice;
          qtest prop_intern_bijective;
          qtest prop_codec_intern_bytes_agrees;
        ] );
      ( "frontier",
        [
          Alcotest.test_case "spill stats and fifo" `Quick test_frontier_spill_stats;
          Alcotest.test_case "no budget, no spill" `Quick
            test_frontier_unbounded_never_spills;
          qtest prop_frontier_spill_transparent;
        ] );
    ]

(* End-to-end tests: the reproduction experiments must report their
   paper-predicted shapes at test-scale parameters.  These are the
   binding contract between the test suite and EXPERIMENTS.md. *)

let check = Alcotest.check

let assert_ok r =
  if not (Core.Experiments.ok r) then
    Alcotest.failf "%s shape violated:@.%s@.%s" (Core.Experiments.id r)
      (Core.Experiments.table r)
      (String.concat "\n" (Core.Experiments.notes r))

let test_e1 () =
  let r = Core.Experiments.e1_alpha_tightness ~m_max:6 ~m_verify:2 ~seeds:2 () in
  assert_ok r;
  check Alcotest.string "id" "E1" (Core.Experiments.id r)

let test_e2 () = assert_ok (Core.Experiments.e2_dup_attacks ~m:2 ())

let test_e3 () = assert_ok (Core.Experiments.e3_del_attacks ~m:2 ())

let test_e4 () = assert_ok (Core.Experiments.e4_boundedness ~domain:3 ~max_len:2 ~seeds:2 ())

let test_e5 () =
  assert_ok (Core.Experiments.e5_weak_boundedness ~domain:2 ~max_len:4 ~seeds:2 ())

let test_e6 () = assert_ok (Core.Experiments.e6_knowledge_timeline ~m:2 ~seeds:4 ())

let test_e7 () = assert_ok (Core.Experiments.e7_throughput ~seeds:2 ~max_len:2 ())

let test_e8 () = assert_ok (Core.Experiments.e8_probabilistic ~trials:10 ~max_len:3 ())

let test_e9 () = assert_ok (Core.Experiments.e9_census ~samples:30 ())

let test_e10 () = assert_ok (Core.Experiments.e10_crossover ~h_max:2 ~lag_max:1 ())

let test_e11 () = assert_ok (Core.Experiments.e11_knowledge_ladder ~m:2 ~seeds:3 ~depth:4 ())

let test_e12 () = assert_ok (Core.Experiments.e12_recoverability ~input:[ 0 ] ())

let test_e13 () =
  let r = Faults.E13.report ~max_steps:60_000 ~shrink_trials:80 () in
  assert_ok r;
  check Alcotest.string "id" "E13" (Core.Experiments.id r)

let test_tables_render () =
  let r = Core.Experiments.e1_alpha_tightness ~m_max:3 ~m_verify:0 ~seeds:1 () in
  check Alcotest.bool "nonempty table" true (String.length (Core.Experiments.table r) > 0);
  check Alcotest.bool "has notes" true (Core.Experiments.notes r <> [])

let () =
  Alcotest.run "experiments"
    [
      ( "shapes",
        [
          Alcotest.test_case "E1 alpha tightness" `Quick test_e1;
          Alcotest.test_case "E2 dup attacks" `Quick test_e2;
          Alcotest.test_case "E3 del attacks" `Quick test_e3;
          Alcotest.test_case "E4 boundedness" `Slow test_e4;
          Alcotest.test_case "E5 weak boundedness" `Slow test_e5;
          Alcotest.test_case "E6 knowledge timeline" `Slow test_e6;
          Alcotest.test_case "E7 throughput" `Slow test_e7;
          Alcotest.test_case "E8 probabilistic" `Slow test_e8;
          Alcotest.test_case "E9 census" `Slow test_e9;
          Alcotest.test_case "E10 crossover" `Slow test_e10;
          Alcotest.test_case "E11 knowledge ladder" `Slow test_e11;
          Alcotest.test_case "E12 recoverability" `Slow test_e12;
          Alcotest.test_case "E13 fault recovery" `Slow test_e13;
          Alcotest.test_case "tables render" `Quick test_tables_render;
        ] );
    ]

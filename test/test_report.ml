(* The report IR: golden schema pins, renderer parity, round-trip
   fixpoints, and the registry cross-checks.

   The JSON golden below is the schema contract for --json artifacts:
   if it moves, downstream tooling breaks, so any intentional change
   must bump [Report.schema_version] and update the golden here. *)

module R = Stdx.Report
module Json = Stdx.Json

let check = Alcotest.check

(* ------------------------- synthetic sample ------------------------- *)

(* One report exercising every cell type, both alignments, units,
   separators, metrics, free text, and a nested section. *)
let sample () =
  let t =
    R.table_cols ~title:"cells"
      [ R.column ~align:R.Right "n"; R.column ~unit_:"ms" ~align:R.Right "t"; R.column "name" ]
  in
  R.row t [ R.int 1; R.float 0.5; R.str "a" ];
  R.sep t;
  R.row t [ R.int 22; R.float ~decimals:3 1.25; R.str "b" ];
  R.make ~id:"sample" ~title:"synthetic sample" ~ok:true ~notes:[ "pinned" ]
    [
      R.finish t;
      R.Metrics
        {
          title = Some "m";
          pairs = [ ("big", R.bignat (Stdx.Bignat.of_int 7)); ("flag", R.bool false) ];
        };
      R.Text "free text";
      R.Section { heading = "sec"; items = [ R.Text "inner" ] };
    ]

let golden_json = {golden|{
  "schema_version": 1,
  "id": "sample",
  "title": "synthetic sample",
  "ok": true,
  "notes": ["pinned"],
  "items": [
    {
      "kind": "table",
      "title": "cells",
      "columns": [
        {"header": "n", "align": "right", "unit": null},
        {"header": "t", "align": "right", "unit": "ms"},
        {"header": "name", "align": "left", "unit": null}
      ],
      "rows": [
        {"kind": "cells", "cells": [{"type": "int", "value": 1}, {"type": "float", "value": 0.5, "decimals": 2}, {"type": "string", "value": "a"}]},
        {"kind": "separator"},
        {"kind": "cells", "cells": [{"type": "int", "value": 22}, {"type": "float", "value": 1.25, "decimals": 3}, {"type": "string", "value": "b"}]}
      ]
    },
    {
      "kind": "metrics",
      "title": "m",
      "pairs": [
        {"key": "big", "value": {"type": "bignat", "value": "7"}},
        {"key": "flag", "value": {"type": "bool", "value": false}}
      ]
    },
    {"kind": "text", "text": "free text"},
    {
      "kind": "section",
      "heading": "sec",
      "items": [{"kind": "text", "text": "inner"}]
    }
  ]
}|golden}

let test_golden_json () =
  (* Compare as parsed values so the pin is about structure, then as
     strings so the printer itself cannot drift either. *)
  let actual = R.to_json (sample ()) in
  let expected =
    match Json.parse golden_json with
    | Ok j -> j
    | Error e -> Alcotest.failf "golden does not parse: %s" e
  in
  if not (Json.equal actual expected) then
    Alcotest.failf "golden JSON drifted; actual:@.%s" (Json.to_string actual)

let test_text_matches_tabular () =
  (* The text renderer must be byte-identical to the original Tabular
     renderer on the same content — the guarantee that kept the E1-E12
     output stable across the IR refactor. *)
  let t =
    Stdx.Tabular.create ~title:"cells"
      [ ("n", Stdx.Tabular.Right); ("t", Stdx.Tabular.Right); ("name", Stdx.Tabular.Left) ]
  in
  Stdx.Tabular.add_row t [ "1"; "0.50"; "a" ];
  Stdx.Tabular.add_separator t;
  Stdx.Tabular.add_row t [ "22"; "1.250"; "b" ];
  let ir_table =
    match (sample ()).R.items with
    | R.Table tbl :: _ -> tbl
    | _ -> Alcotest.fail "sample lost its table"
  in
  check Alcotest.string "tabular parity" (Stdx.Tabular.render t) (R.table_to_text ir_table)

let contains ~needle hay =
  let n = String.length needle in
  let rec scan i = i + n <= String.length hay && (String.sub hay i n = needle || scan (i + 1)) in
  scan 0

let test_csv () =
  let csv = R.to_csv (sample ()) in
  check Alcotest.bool "has unit suffix header" true (contains ~needle:"t (ms)" csv);
  check Alcotest.bool "quotes nothing needlessly" true (contains ~needle:"free text" csv)

(* ------------------------- round-trip fixpoint ------------------------- *)

let round_trips name r =
  let j = R.to_json r in
  match R.of_json j with
  | Error e -> Alcotest.failf "%s: of_json failed: %s" name e
  | Ok r' ->
      if not (Json.equal j (R.to_json r')) then
        Alcotest.failf "%s: to_json . of_json is not a fixpoint" name

let test_round_trip_sample () = round_trips "sample" (sample ())

let test_validate_artifact () =
  let artifact = Json.to_string (R.set_to_json [ sample (); sample () ]) in
  (match R.validate_artifact artifact with
  | Ok 2 -> ()
  | Ok n -> Alcotest.failf "expected 2 reports, got %d" n
  | Error e -> Alcotest.failf "valid artifact rejected: %s" e);
  (match R.validate_artifact "{\"schema_version\": 99}" with
  | Ok _ -> Alcotest.fail "wrong schema version accepted"
  | Error _ -> ());
  match R.validate_artifact "not json" with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error _ -> ()

(* ------------------------- producer schemas ------------------------- *)

(* One report per producer: pin the stable id, the item shapes, and
   the round-trip — the parts downstream tooling keys on — without
   pinning computed numbers. *)

let item_kind = function
  | R.Table _ -> "table"
  | R.Metrics _ -> "metrics"
  | R.Text _ -> "text"
  | R.Section _ -> "section"

let assert_shape name r ~id ~kinds =
  check Alcotest.string (name ^ " id") id r.R.id;
  check (Alcotest.list Alcotest.string) (name ^ " item kinds") kinds
    (List.map item_kind r.R.items);
  round_trips name r

let test_e1_schema () =
  let r = Core.Experiments.e1_alpha_tightness ~m_max:4 ~m_verify:2 ~seeds:1 () in
  assert_shape "E1" r ~id:"E1" ~kinds:[ "table" ];
  check Alcotest.bool "E1 ok" true (Core.Experiments.ok r)

let test_attack_schema () =
  let p = Protocols.Norep.dup ~m:2 in
  match Core.Attack.search_pair p ~x1:[ 0; 1 ] ~x2:[ 0; 0 ] () with
  | Core.Attack.No_violation _ -> Alcotest.fail "expected a witness past the bound"
  | outcome ->
      let r = Core.Attack.outcome_report ~x1:[ 0; 1 ] ~x2:[ 0; 0 ] outcome in
      assert_shape "attack" r ~id:"attack" ~kinds:[ "metrics"; "metrics" ];
      check Alcotest.bool "attack ok is None" true (r.R.ok = None)

let test_verify_schema () =
  let p = Protocols.Norep.dup ~m:2 in
  let spec = Core.Harness.default_spec ~max_steps:2_000 ~n_seeds:1 () in
  let report = Core.Harness.verify p ~xs:(Seqspace.Norep.enumerate ~m:2) spec in
  let r = Core.Harness.to_report report in
  assert_shape "verify" r ~id:"verify" ~kinds:[ "metrics" ];
  check Alcotest.bool "verify ok" true (r.R.ok = Some true)

let test_census_schema () =
  let control = Core.Census.control_is_clean () in
  let report = Core.Census.run ~samples:5 ~states:3 ~jobs:1 () in
  let r = Core.Census.to_report ~control report in
  assert_shape "census" r ~id:"census" ~kinds:[ "metrics" ]

let test_bounds_schema () =
  let p = Protocols.Norep.dup ~m:2 in
  let ms =
    Core.Bounds.measure p
      ~xs:[ [ 0 ]; [ 0; 1 ] ]
      ~strategy:(Kernel.Strategy.fair_random ()) ~seeds:[ 1 ] ~max_steps:2_000 ()
  in
  let r = Core.Bounds.to_report ~title:"gap profile" ms in
  assert_shape "bounds" r ~id:"bounds" ~kinds:[ "table" ]

let test_proba_schema () =
  let p = Protocols.Norep.dup ~m:2 in
  let e =
    Core.Proba.estimate p ~input:[ 0; 1 ] ~strategy:(Kernel.Strategy.fair_random ()) ~trials:5
      ~max_steps:2_000 ()
  in
  let r = Core.Proba.to_report [ (2, e) ] in
  assert_shape "proba" r ~id:"proba" ~kinds:[ "table" ]

(* ------------------------- harness truncation ------------------------- *)

let test_harness_truncation () =
  (* Counting over a reordering channel is the canonical broken
     protocol (E2): plenty of failing runs to truncate. *)
  let p = Protocols.Counting.protocol_on Channel.Chan.Reorder_dup ~domain:2 in
  let xs = [ [ 0; 1 ]; [ 1; 0 ] ] in
  let spec = Core.Harness.default_spec ~max_steps:2_000 ~n_seeds:3 () in
  let full = Core.Harness.verify p ~xs spec in
  let capped = Core.Harness.verify p ~xs ~max_failures:1 spec in
  check Alcotest.int "total failures unaffected by the cap" full.Core.Harness.failures_total
    capped.Core.Harness.failures_total;
  check Alcotest.bool "cap respected" true (List.length capped.Core.Harness.failures <= 1);
  check Alcotest.bool "clean ignores the cap" (Core.Harness.clean full)
    (Core.Harness.clean capped);
  check Alcotest.bool "chronological prefix" true
    (match (full.Core.Harness.failures, capped.Core.Harness.failures) with
    | f :: _, [ c ] -> f = c
    | _ :: _, [] -> false
    | [], [] -> true
    | _ -> false);
  if capped.Core.Harness.failures_total > List.length capped.Core.Harness.failures then
    check Alcotest.bool "truncation noted in IR" true
      ((Core.Harness.to_report capped).R.notes <> [])

(* ------------------------- registry cross-checks ------------------------- *)

let sorted = List.sort String.compare

let test_registry_protocols () =
  (* Set equality, not order: registration order is link order. *)
  check (Alcotest.list Alcotest.string) "protocol names"
    (sorted
       [
         "norep"; "coded"; "abp"; "abp-stab"; "stenning"; "stenning-mod"; "stenning-stab";
         "counting"; "counting-resend"; "trivial"; "ladder"; "hybrid"; "go-back-n";
         "gbn-stab"; "selective-repeat";
       ])
    (sorted (Kernel.Registry.protocol_names ()));
  (* Every registered builder produces a protocol under the default
     config (or a clean error, never an exception). *)
  List.iter
    (fun name ->
      match Kernel.Registry.build_protocol ~name Kernel.Registry.default with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%s failed to build under defaults: %s" name e)
    (Kernel.Registry.protocol_names ())

let test_registry_experiments () =
  check (Alcotest.list Alcotest.string) "experiment ids"
    [ "E1"; "E2"; "E3"; "E4"; "E5"; "E6"; "E7"; "E8"; "E9"; "E10"; "E11"; "E12"; "E13";
      "E14"; "E15"; "E16"; "E17" ]
    (Kernel.Registry.experiment_ids ());
  check Alcotest.bool "case-insensitive lookup" true
    (match Kernel.Registry.find_experiment "e3" with
    | Some e -> e.Kernel.Registry.e_id = "E3"
    | None -> false)

let test_registry_channels () =
  List.iter
    (fun form ->
      let form = if form = "lag:K" then "lag:2" else form in
      match Channel.Chan.of_string form with
      | Some k ->
          check Alcotest.string ("round-trip " ^ form) form (Channel.Chan.to_string k)
      | None -> Alcotest.failf "documented channel form %S does not parse" form)
    (Kernel.Registry.channel_forms ())

let () =
  Alcotest.run "report"
    [
      ( "golden",
        [
          Alcotest.test_case "json schema" `Quick test_golden_json;
          Alcotest.test_case "text = tabular" `Quick test_text_matches_tabular;
          Alcotest.test_case "csv units" `Quick test_csv;
          Alcotest.test_case "round trip" `Quick test_round_trip_sample;
          Alcotest.test_case "validate artifact" `Quick test_validate_artifact;
        ] );
      ( "producers",
        [
          Alcotest.test_case "E1" `Quick test_e1_schema;
          Alcotest.test_case "attack" `Quick test_attack_schema;
          Alcotest.test_case "verify" `Quick test_verify_schema;
          Alcotest.test_case "census" `Quick test_census_schema;
          Alcotest.test_case "bounds" `Quick test_bounds_schema;
          Alcotest.test_case "proba" `Quick test_proba_schema;
        ] );
      ( "harness",
        [ Alcotest.test_case "max_failures truncation" `Quick test_harness_truncation ] );
      ( "registry",
        [
          Alcotest.test_case "protocols" `Quick test_registry_protocols;
          Alcotest.test_case "experiments" `Quick test_registry_experiments;
          Alcotest.test_case "channel forms" `Quick test_registry_channels;
        ] );
    ]

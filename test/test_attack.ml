(* Tests for the constructive impossibility machinery: the product
   attack search, witness reconstruction, and the harness/verdict/
   bounds layers around it. *)

module Attack = Core.Attack
module Chan = Channel.Chan
module Move = Kernel.Move
module Strategy = Kernel.Strategy
module Runner = Kernel.Runner
module Trace = Kernel.Trace

let check = Alcotest.check

let witness_exn = function
  | Attack.Witness w -> w
  | Attack.No_violation _ -> Alcotest.fail "expected a witness"

(* ------------------------- safety witnesses ------------------------- *)

let test_counting_reorder_witness () =
  let p = Protocols.Counting.protocol_on Chan.Reorder_dup ~domain:2 in
  let w = witness_exn (Attack.search_pair p ~x1:[ 0; 1 ] ~x2:[ 1; 0 ] ()) in
  (match w.Attack.kind with
  | Attack.Safety _ -> ()
  | Attack.Starvation _ -> Alcotest.fail "expected safety");
  check Alcotest.bool "short witness" true (w.Attack.depth <= 8)

let test_abp_duplication_witness () =
  let p = Protocols.Abp.protocol_on Chan.Reorder_dup ~domain:2 in
  let w = witness_exn (Attack.search_single p ~x:[ 0; 0 ] ()) in
  match w.Attack.kind with
  | Attack.Safety { violated_run } -> check Alcotest.int "run 1" 1 violated_run
  | Attack.Starvation _ -> Alcotest.fail "expected safety"

let test_stenning_mod_wraparound_witness () =
  let p = Protocols.Stenning_mod.protocol_on Chan.Reorder_dup ~domain:2 ~header_space:2 in
  ignore (witness_exn (Attack.search_single p ~x:[ 0; 1; 0; 1 ] ()))

(* ------------------------- witness replay ------------------------- *)

let test_witness_replays_to_violation () =
  (* The joint path projected on the violated run, fed back through the
     scripted strategy, must reproduce the safety violation — the
     witness is a real schedule, not an artifact of the search. *)
  let p = Protocols.Counting.protocol_on Chan.Reorder_dup ~domain:2 in
  let w = witness_exn (Attack.search_pair p ~x1:[ 0; 1 ] ~x2:[ 1; 0 ] ()) in
  let violated_run, input =
    match w.Attack.kind with
    | Attack.Safety { violated_run } ->
        (violated_run, if violated_run = 1 then w.Attack.x1 else w.Attack.x2)
    | Attack.Starvation _ -> Alcotest.fail "expected safety"
  in
  let moves = Attack.run_moves w ~which:violated_run in
  let r =
    Runner.run p ~input:(Array.of_list input) ~strategy:(Strategy.scripted moves)
      ~rng:(Stdx.Rng.create 1)
      ~max_steps:(List.length moves + 1)
      ()
  in
  check Alcotest.bool "replayed violation" true
    (Trace.first_safety_violation r.Runner.trace <> None)

let test_single_witness_replays () =
  let p = Protocols.Abp.protocol_on Chan.Reorder_dup ~domain:2 in
  let w = witness_exn (Attack.search_single p ~x:[ 0; 0 ] ()) in
  let moves = Attack.run_moves w ~which:1 in
  (* The ABP overshoot happens *after* the output is complete, so the
     replay must keep rolling past completion. *)
  let r =
    Runner.run p ~input:[| 0; 0 |] ~strategy:(Strategy.scripted moves)
      ~rng:(Stdx.Rng.create 1)
      ~max_steps:(List.length moves + 1)
      ~post_roll:(List.length moves) ()
  in
  check Alcotest.bool "replayed violation" true
    (Trace.first_safety_violation r.Runner.trace <> None)

(* ------------------------- closures at the bound ------------------------- *)

let test_norep_dup_closes_clean () =
  let p = Protocols.Norep.dup ~m:2 in
  let outcomes, first = Attack.search p ~xs:(Seqspace.Norep.enumerate ~m:2) ~depth:200 () in
  check Alcotest.bool "no witness" true (first = None);
  List.iter
    (fun (_, _, o) ->
      match o with
      | Attack.No_violation { closed = true; _ } -> ()
      | Attack.No_violation { closed = false; _ } -> Alcotest.fail "truncated"
      | Attack.Witness _ -> Alcotest.fail "witness at the bound")
    outcomes

let test_norep_del_closes_clean () =
  let p = Protocols.Norep.del ~m:2 in
  let outcomes, first =
    Attack.search p ~xs:(Seqspace.Norep.enumerate ~m:2) ~depth:200 ~max_sends_per_sender:4
      ~max_sends_per_receiver:4 ()
  in
  check Alcotest.bool "no witness" true (first = None);
  List.iter
    (fun (_, _, o) ->
      match o with
      | Attack.No_violation { closed = true; _ } -> ()
      | Attack.No_violation { closed = false; _ } -> Alcotest.fail "truncated"
      | Attack.Witness _ -> Alcotest.fail "witness at the bound")
    outcomes

(* ------------------------- starvation witnesses ------------------------- *)

let test_norep_dup_starvation_beyond_bound () =
  let p = Protocols.Norep.dup ~m:2 in
  let w = witness_exn (Attack.search_pair p ~x1:[ 0; 1 ] ~x2:[ 0; 0 ] ~depth:200 ()) in
  match w.Attack.kind with
  | Attack.Starvation { starved_run } ->
      (* <0 0> is the sequence outside the repetition-free family. *)
      check Alcotest.int "starved run is the repeat" 2 starved_run
  | Attack.Safety _ -> Alcotest.fail "expected starvation"

let test_norep_del_starvation_beyond_bound () =
  let p = Protocols.Norep.del ~m:2 in
  let w =
    witness_exn
      (Attack.search_pair p ~x1:[ 0; 1 ] ~x2:[ 0; 0 ] ~depth:200 ~max_sends_per_sender:4
         ~max_sends_per_receiver:4 ())
  in
  match w.Attack.kind with
  | Attack.Starvation { starved_run } -> check Alcotest.int "starved run" 2 starved_run
  | Attack.Safety _ -> Alcotest.fail "expected starvation"

let test_prefix_pairs_excluded () =
  let p = Protocols.Norep.dup ~m:2 in
  let outcomes, _ = Attack.search p ~xs:[ [ 0 ]; [ 0; 1 ] ] () in
  check Alcotest.int "prefix pair skipped" 0 (List.length outcomes)

(* ------------------------- search controls ------------------------- *)

let test_depth_truncation_reported () =
  let p = Protocols.Norep.del ~m:2 in
  match Attack.search_pair p ~x1:[ 0; 1 ] ~x2:[ 0; 0 ] ~depth:2 () with
  | Attack.No_violation { closed; _ } -> check Alcotest.bool "truncated" false closed
  | Attack.Witness _ -> Alcotest.fail "cannot witness at depth 2"

let test_max_states_truncation () =
  let p = Protocols.Norep.del ~m:2 in
  match
    Attack.search_pair p ~x1:[ 0; 1 ] ~x2:[ 0; 0 ] ~depth:200 ~max_states:50 ()
  with
  | Attack.No_violation { closed; states_explored } ->
      check Alcotest.bool "truncated" false closed;
      check Alcotest.bool "respected budget" true (states_explored <= 50)
  | Attack.Witness _ -> Alcotest.fail "cannot witness within 50 states"

let test_stenning_full_headers_survive () =
  (* The escape hatch: per-instance finite but growing alphabet. *)
  let p = Protocols.Stenning.protocol_on Chan.Reorder_dup ~domain:2 ~max_len:2 in
  match Attack.search_pair p ~x1:[ 0; 1 ] ~x2:[ 1; 0 ] ~depth:200 () with
  | Attack.No_violation { closed = true; _ } -> ()
  | Attack.No_violation { closed = false; _ } -> Alcotest.fail "truncated"
  | Attack.Witness w -> Alcotest.failf "stenning broken: %a" Attack.pp_witness w

(* ------------------------- verdict / harness / bounds ------------------------- *)

let test_verdict_good_run () =
  let p = Protocols.Norep.dup ~m:2 in
  let r =
    Runner.run p ~input:[| 0; 1 |] ~strategy:Strategy.round_robin ~rng:(Stdx.Rng.create 1)
      ~max_steps:500 ()
  in
  let v = Core.Verdict.of_result r in
  check Alcotest.bool "good" true (Core.Verdict.all_good v);
  check Alcotest.bool "not deadlocked" false v.Core.Verdict.deadlocked

let test_harness_clean_on_tight_protocol () =
  let report =
    Core.Harness.verify (Protocols.Norep.dup ~m:2) ~xs:(Seqspace.Norep.enumerate ~m:2)
      (Core.Harness.default_spec ~n_seeds:2 ())
  in
  check Alcotest.bool "clean" true (Core.Harness.clean report);
  check Alcotest.int "all runs counted" (5 * 3 * 2) report.Core.Harness.runs;
  check Alcotest.int "all safe" report.Core.Harness.runs report.Core.Harness.safe_runs

let test_harness_reports_failures () =
  (* The counting protocol under a hostile deterministic reordering
     schedule must produce failures the harness surfaces. *)
  let report =
    Core.Harness.verify
      (Protocols.Counting.protocol_on Chan.Reorder_dup ~domain:2)
      ~xs:[ [ 0; 1 ] ]
      {
        Core.Harness.strategies = [ Strategy.newest_first; Strategy.dup_flood () ];
        seeds = [ 1; 2 ];
        max_steps = 2_000;
      }
  in
  check Alcotest.bool "failures reported" true (not (Core.Harness.clean report))

let test_bounds_growth_slope () =
  check (Alcotest.float 1e-6) "flat" 0.0 (Core.Bounds.growth_slope [ (1, 5.0); (2, 5.0); (3, 5.0) ]);
  check (Alcotest.float 1e-6) "unit slope" 1.0
    (Core.Bounds.growth_slope [ (1, 1.0); (2, 2.0); (3, 3.0) ]);
  check (Alcotest.float 1e-6) "degenerate" 0.0 (Core.Bounds.growth_slope [ (1, 9.0) ])

let test_bounds_measure_shapes () =
  let ms =
    Core.Bounds.measure (Protocols.Norep.del ~m:2)
      ~xs:[ [ 0 ]; [ 1 ]; [ 0; 1 ] ]
      ~strategy:(Strategy.fair_random ()) ~seeds:[ 1; 2 ] ~max_steps:2_000 ()
  in
  check Alcotest.int "one measurement per run" 6 (List.length ms);
  List.iter
    (fun m ->
      check Alcotest.int "gap arity" (List.length m.Core.Bounds.input)
        (List.length m.Core.Bounds.learning_gaps))
    ms;
  let by_len = Core.Bounds.gap_by_length ms in
  check Alcotest.bool "grouped" true (List.length by_len >= 1)

(* ------------------------- engine baselines ------------------------- *)

(* Recorded against the pre-interning string-keyed engine on the E2,
   E3 and E10 fixtures.  These pin the BFS semantics across engine
   rewrites: the states-explored counts and witness kinds must never
   move.  Safety-witness depths are BFS-minimal and therefore also
   pinned; starvation representatives depend on table iteration order,
   so E3's depth is deliberately left free. *)

let test_e2_baseline () =
  let p = Protocols.Counting.protocol_on Chan.Reorder_dup ~domain:2 in
  let w = witness_exn (Attack.search_pair p ~x1:[ 0; 1 ] ~x2:[ 1; 0 ] ()) in
  (match w.Attack.kind with
  | Attack.Safety { violated_run } -> check Alcotest.int "violated run" 1 violated_run
  | Attack.Starvation _ -> Alcotest.fail "expected safety");
  check Alcotest.int "depth" 4 w.Attack.depth;
  check Alcotest.int "states explored" 9 w.Attack.states_explored

let test_e3_baseline () =
  let w =
    witness_exn
      (Attack.search_pair (Protocols.Norep.del ~m:2) ~x1:[ 0; 1 ] ~x2:[ 0; 0 ] ~depth:200
         ~max_sends_per_sender:4 ~max_sends_per_receiver:4 ())
  in
  (match w.Attack.kind with
  | Attack.Starvation { starved_run } -> check Alcotest.int "starved run" 2 starved_run
  | Attack.Safety _ -> Alcotest.fail "expected starvation");
  check Alcotest.int "states explored" 4084 w.Attack.states_explored

let test_e10_baseline () =
  let p =
    Protocols.Stenning_mod.protocol_on (Chan.Bounded_reorder { lag = 1 }) ~domain:2
      ~header_space:2
  in
  let w =
    witness_exn
      (Attack.search_single p ~x:[ 0; 0; 1 ] ~depth:80 ~max_sends_per_sender:8
         ~max_sends_per_receiver:8 ~allow_drops:false ())
  in
  (match w.Attack.kind with
  | Attack.Safety { violated_run } -> check Alcotest.int "violated run" 1 violated_run
  | Attack.Starvation _ -> Alcotest.fail "expected safety");
  check Alcotest.int "depth" 7 w.Attack.depth;
  check Alcotest.int "states explored" 69 w.Attack.states_explored

(* The out-of-core frontier's exactness contract on the engine
   baselines: a budgeted search (4096 B forces the pager to its
   two-chunk floor) renders byte-identical reports to the default
   unbounded one.  The stats rider is deliberately absent — it is the
   budget-variant half of the API and never enters artifacts. *)
let report_bytes ~x1 ~x2 o =
  Stdx.Json.to_string (Stdx.Report.to_json (Attack.outcome_report ~x1 ~x2 o))

let test_mem_budget_report_identity () =
  let pin name ~x1 ~x2 search =
    check Alcotest.string name
      (report_bytes ~x1 ~x2 (search ?mem_budget_bytes:None ()))
      (report_bytes ~x1 ~x2 (search ?mem_budget_bytes:(Some 4096) ()))
  in
  let e2 = Protocols.Counting.protocol_on Chan.Reorder_dup ~domain:2 in
  pin "e2 report bytes" ~x1:[ 0; 1 ] ~x2:[ 1; 0 ] (fun ?mem_budget_bytes () ->
      Attack.search_pair e2 ~x1:[ 0; 1 ] ~x2:[ 1; 0 ] ?mem_budget_bytes ());
  pin "e3 report bytes" ~x1:[ 0; 1 ] ~x2:[ 0; 0 ] (fun ?mem_budget_bytes () ->
      Attack.search_pair (Protocols.Norep.del ~m:2) ~x1:[ 0; 1 ] ~x2:[ 0; 0 ] ~depth:200
        ~max_sends_per_sender:4 ~max_sends_per_receiver:4 ?mem_budget_bytes ());
  let e10 =
    Protocols.Stenning_mod.protocol_on (Chan.Bounded_reorder { lag = 1 }) ~domain:2
      ~header_space:2
  in
  pin "e10 report bytes" ~x1:[ 0; 0; 1 ] ~x2:[ 0; 0; 1 ] (fun ?mem_budget_bytes () ->
      Attack.search_single e10 ~x:[ 0; 0; 1 ] ~depth:80 ~max_sends_per_sender:8
        ~max_sends_per_receiver:8 ~allow_drops:false ?mem_budget_bytes ())

(* A genuinely spilling search agrees with the unbounded one outcome
   for outcome, and its counters prove both sides of the contract:
   chunks actually paged to disk, and the resident peak stayed at the
   pager's floor. *)
let test_mem_budget_spill_exactness () =
  let p = Protocols.Norep.del ~m:4 in
  let x1 = [ 0; 1; 2; 3 ] and x2 = [ 0; 1; 3; 2 ] in
  let search ?mem_budget_bytes ?stats () =
    Attack.search_pair p ~x1 ~x2 ~depth:200 ~max_sends_per_sender:4
      ~max_sends_per_receiver:4 ?mem_budget_bytes ?stats ()
  in
  let stats = Attack.Stats.create () in
  let spilled = search ~mem_budget_bytes:1 ~stats () in
  let unbounded = search () in
  check Alcotest.string "report bytes identical"
    (report_bytes ~x1 ~x2 unbounded)
    (report_bytes ~x1 ~x2 spilled);
  let s = Attack.Stats.snapshot stats in
  check Alcotest.bool "chunks spilled" true (s.Attack.Stats.spill_chunks > 0);
  check Alcotest.bool "bytes spilled" true (s.Attack.Stats.spilled_bytes > 0);
  check Alcotest.bool "resident at floor" true
    (s.Attack.Stats.peak_resident_bytes <= 2 * 8208);
  check Alcotest.bool "queued overflowed a chunk" true
    (s.Attack.Stats.peak_frontier_bytes > 8192)

(* Every byte of the E1-E12 quick-mode tables and notes, pinned as MD5
   digests recorded before the fault-injection layer landed: restart
   moves, recovery verdicts, and the budget plumbing must be invisible
   to every schedule that injects no fault. *)
let e_digests_pre =
  [
    ("E1", "50418b1e2e7002106beb17f8a5f7f420", "1b14d7c01af322d73c50e3d94a8f5b6f");
    ("E2", "69d0be95c305a736da152e2cdc0531db", "b8393ae9253269aabdede27257fb2cb1");
    ("E3", "815fa94ed0b548d69f3925b3da825b2d", "9385a0dbc29cb743ff71c936fd3b85cd");
    ("E4", "167d47a89defd88cd84020ea805e6733", "7e6353aa471c5a0bbfb659762ba6312f");
    ("E5", "87b636635ad806b6cc5ffbf149426faa", "d4b8b83ca8bf459d18838132fded0b4c");
    ("E6", "9b4de806ac45a7ca7248e4187e2419e6", "b39e195eee2041ef19d1afc4625b4ed6");
    ("E7", "4aebacfe8b3c4c6641c40fddc8fcf327", "618de41397e566be94fec97e2416b288");
    ("E8", "7530afa8c20d8153a3d4f2e66895e5b7", "8e9a7e6b17140a11a0442ba8c1e94bdd");
    ("E9", "55253e89c58249287694b887a45f1a2a", "f045ddce509025cbdf8a8e46e849f317");
    ("E10", "7e17aa20a57fda7be09add0375b3598c", "6d365baa712d46749a764bac92c7de3e");
    ("E11", "deb59a3f00a747e198e00cc2741d9c57", "5a71dcb87f87a265ed692f6ef3623aad");
    ("E12", "b3a05a9c8d937cd1e68d820f55588c14", "9541fe15645fcdac15abf15731a93845");
  ]

let test_experiment_digests () =
  List.iter
    (fun (id, table_md5, notes_md5) ->
      match Kernel.Registry.find_experiment id with
      | None -> Alcotest.failf "experiment %s not registered" id
      | Some e ->
          let r = e.Kernel.Registry.e_quick () in
          let digest s = Digest.to_hex (Digest.string s) in
          check Alcotest.string (id ^ " table bytes") table_md5
            (digest (Core.Experiments.table r));
          check Alcotest.string (id ^ " notes bytes") notes_md5
            (digest (String.concat "\n" (Core.Experiments.notes r))))
    e_digests_pre

let test_search_jobs_equivalence () =
  let p = Protocols.Counting.protocol_on Chan.Reorder_dup ~domain:2 in
  let xs = [ [ 0; 1 ]; [ 1; 0 ]; [ 1 ]; [ 0 ] ] in
  let strip (a, b, o) =
    ( a,
      b,
      match o with
      | Attack.Witness w -> `W (w.Attack.kind, w.Attack.depth, w.Attack.states_explored)
      | Attack.No_violation { closed; states_explored } -> `N (closed, states_explored) )
  in
  let o1, w1 = Attack.search p ~xs ~jobs:1 () in
  let o4, w4 = Attack.search p ~xs ~jobs:4 () in
  check Alcotest.bool "outcomes identical" true (List.map strip o1 = List.map strip o4);
  check Alcotest.bool "first witness identical" true
    (Option.map (fun w -> w.Attack.kind) w1 = Option.map (fun w -> w.Attack.kind) w4)

let test_runstate_sharing_invariant () =
  (* Private stores, stores shared across pairs, and disabled memo
     must all produce identical outcomes — sharing changes only the
     work.  The shared stores must actually be reused (hits from more
     than one pair land in the same store). *)
  let p = Protocols.Norep.del ~m:2 in
  let caps = 3 in
  let pairs = [ ([ 0; 1 ], [ 1; 0 ]); ([ 0; 1 ], [ 1 ]); ([ 1; 0 ], [ 0 ]) ] in
  let search ?runstates (x1, x2) =
    Attack.search_pair p ~x1 ~x2 ~depth:200 ~max_sends_per_sender:caps
      ~max_sends_per_receiver:caps ?runstates ()
  in
  let stores = Hashtbl.create 4 in
  let store ?memo x =
    match Hashtbl.find_opt stores x with
    | Some rs -> rs
    | None ->
        let rs = Attack.Runstate.create ?memo p ~x in
        Hashtbl.add stores x rs;
        rs
  in
  List.iter
    (fun ((x1, x2) as pair) ->
      let private_ = search pair in
      let shared = search ~runstates:(store x1, store x2) pair in
      let nomemo =
        search
          ~runstates:
            ( Attack.Runstate.create ~memo:false p ~x:x1,
              Attack.Runstate.create ~memo:false p ~x:x2 )
          pair
      in
      check Alcotest.bool "shared = private" true (shared = private_);
      check Alcotest.bool "nomemo = private" true (nomemo = private_))
    pairs;
  let rs01 = store [ 0; 1 ] in
  check Alcotest.bool "shared store interned states" true (Attack.Runstate.states rs01 > 1);
  check Alcotest.bool "shared store was hit" true (Attack.Runstate.hits rs01 > 0)

let () =
  Alcotest.run "attack"
    [
      ( "safety witnesses",
        [
          Alcotest.test_case "counting vs reorder" `Quick test_counting_reorder_witness;
          Alcotest.test_case "abp vs duplication" `Quick test_abp_duplication_witness;
          Alcotest.test_case "stenning-mod wraparound" `Quick test_stenning_mod_wraparound_witness;
        ] );
      ( "replay",
        [
          Alcotest.test_case "pair witness replays" `Quick test_witness_replays_to_violation;
          Alcotest.test_case "single witness replays" `Quick test_single_witness_replays;
        ] );
      ( "closure at the bound",
        [
          Alcotest.test_case "norep-dup closes" `Quick test_norep_dup_closes_clean;
          Alcotest.test_case "norep-del closes" `Quick test_norep_del_closes_clean;
          Alcotest.test_case "stenning survives" `Quick test_stenning_full_headers_survive;
        ] );
      ( "starvation beyond the bound",
        [
          Alcotest.test_case "dup starves the repeat" `Quick test_norep_dup_starvation_beyond_bound;
          Alcotest.test_case "del starves the repeat" `Quick test_norep_del_starvation_beyond_bound;
          Alcotest.test_case "prefix pairs excluded" `Quick test_prefix_pairs_excluded;
        ] );
      ( "engine baselines",
        [
          Alcotest.test_case "e2 dup attack" `Quick test_e2_baseline;
          Alcotest.test_case "e3 del attack" `Quick test_e3_baseline;
          Alcotest.test_case "e10 crossover cell" `Quick test_e10_baseline;
          Alcotest.test_case "mem-budget report identity" `Quick
            test_mem_budget_report_identity;
          Alcotest.test_case "spilled search exactness" `Quick
            test_mem_budget_spill_exactness;
          Alcotest.test_case "e1-e12 quick output bytes" `Slow test_experiment_digests;
          Alcotest.test_case "jobs-invariant sweep" `Quick test_search_jobs_equivalence;
          Alcotest.test_case "runstate sharing invariant" `Quick test_runstate_sharing_invariant;
        ] );
      ( "search controls",
        [
          Alcotest.test_case "depth truncation" `Quick test_depth_truncation_reported;
          Alcotest.test_case "state budget" `Quick test_max_states_truncation;
        ] );
      ( "verdict/harness/bounds",
        [
          Alcotest.test_case "verdict good run" `Quick test_verdict_good_run;
          Alcotest.test_case "harness clean" `Quick test_harness_clean_on_tight_protocol;
          Alcotest.test_case "harness failures" `Quick test_harness_reports_failures;
          Alcotest.test_case "growth slope" `Quick test_bounds_growth_slope;
          Alcotest.test_case "bounds measure" `Quick test_bounds_measure_shapes;
        ] );
    ]

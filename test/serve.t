The serve daemon: JSON job specs in, report-IR artifacts out, over
the event-queue scheduler.  --once executes a single batch file and
exits, which is what this test drives; --spool is the long-lived
polling loop, exercised at the end with --max-batches.

A small mixed batch: a clean abp run, a norep run on the duplicating
channel, and an abp run under a declarative drop-burst fault plan
(compiled through Faults.Inject, recovery judged within 64 steps):

  $ cat > jobs.json <<'EOF'
  > {
  >   "jobs": [
  >     { "label": "abp-clean", "protocol": "abp", "channel": "fifo-lossy",
  >       "domain": 2, "input": [0, 1, 1, 0],
  >       "strategy": "round-robin", "seed": 1 },
  >     { "label": "norep-dup", "protocol": "norep", "channel": "dup",
  >       "domain": 3, "input": [0, 1, 2], "seed": 7 },
  >     { "label": "abp-faulted", "protocol": "abp", "channel": "fifo-lossy",
  >       "domain": 2, "input": [0, 1, 1, 0],
  >       "strategy": "round-robin", "seed": 1, "within": 64,
  >       "plan": { "name": "drop1",
  >                 "events": [ { "kind": "drop-burst", "at": 6,
  >                               "target": "to-receiver", "count": 1 } ] } }
  >   ]
  > }
  > EOF

The per-job results are fully deterministic (the telemetry report is
not — it embeds wall-clock throughput — so it is cut from the text
here and from the byte-compared artifacts below):

  $ stp serve --once jobs.json --json out.json | sed -n '/serve-telemetry/q;p'
  == serve: serve batch jobs.json (3 jobs) [ok]
  batch
    jobs: 3
    stop_completed: 3
    safe: 3
    complete: 3
    with_plan: 1
    recovered: 1
  
  per-job results
  +-------------+----------+-------------+-------------+------+-----------+-------+------+----------+-----------+-----+
  | job         | protocol | channel     | strategy    | seed | stop      | steps | safe | complete | recovered | ttr |
  +-------------+----------+-------------+-------------+------+-----------+-------+------+----------+-----------+-----+
  | abp-clean   | abp      | fifo-lossy  | round-robin |    1 | completed |    30 |  yes |      yes | -         |   - |
  | norep-dup   | norep    | reorder+dup | fair-random |    7 | completed |    28 |  yes |      yes | -         |   - |
  | abp-faulted | abp      | fifo-lossy  | round-robin |    1 | completed |    26 |  yes |      yes | yes       |  12 |
  +-------------+----------+-------------+-------------+------+-----------+-------+------+----------+-----------+-----+

The artifact carries both reports and passes the schema gate:

  $ stp validate out.json
  out.json: valid report artifact, 2 report(s), schema version 1

The acceptance pin: a 100-job mixed battery is bit-identical at every
--jobs count and timeslice, because sessions own their rng and the
scheduler never lets one session's slices affect another's steps.

  $ { printf '[\n'
  >   i=1
  >   while [ $i -le 100 ]; do
  >     [ $i -gt 1 ] && printf ',\n'
  >     case $((i % 3)) in
  >       0) printf '{"label":"j%03d","protocol":"abp","channel":"fifo-lossy","domain":2,"input":[0,1,1,0],"strategy":"fair-random","seed":%d,"max_steps":5000}' $i $i ;;
  >       1) printf '{"label":"j%03d","protocol":"norep","channel":"dup","domain":3,"input":[0,1,2],"strategy":"fair-random","seed":%d,"max_steps":5000}' $i $i ;;
  >       2) printf '{"label":"j%03d","protocol":"counting-resend","channel":"dup","domain":2,"input":[1,0],"strategy":"round-robin","seed":%d,"max_steps":5000}' $i $i ;;
  >     esac
  >     i=$((i+1))
  >   done
  >   printf '\n]\n'; } > big.json

  $ stp serve --once big.json --results-only --jobs 1 --json big1.json > /dev/null
  $ stp serve --once big.json --results-only --jobs 4 --json big4.json > /dev/null
  $ stp serve --once big.json --results-only --jobs 4 --timeslice 7 --json big7.json > /dev/null
  $ cmp big1.json big4.json
  $ cmp big1.json big7.json
  $ stp validate big1.json
  big1.json: valid report artifact, 1 report(s), schema version 1

A corrupt-state plan in a job spec: legal exactly when the protocol
declares a corrupted-start space (abp-stab does; the same plan
against a protocol without the seam is a static error naming the
offending event):

  $ cat > corrupt.json <<'EOF'
  > [ { "label": "stab-corrupted", "protocol": "abp-stab",
  >     "channel": "fifo-lossy", "domain": 2, "max_len": 4,
  >     "input": [0, 1, 1, 0],
  >     "strategy": "round-robin", "seed": 1, "within": 256,
  >     "plan": { "name": "cS4",
  >               "events": [ { "kind": "corrupt-state", "at": 0,
  >                             "who": "sender", "index": 4 } ] } } ]
  > EOF
  $ stp serve --once corrupt.json --results-only --json corrupt1.json | grep -A 5 'per-job results'
  per-job results
  +----------------+----------+------------+-------------+------+-----------+-------+------+----------+-----------+-----+
  | job            | protocol | channel    | strategy    | seed | stop      | steps | safe | complete | recovered | ttr |
  +----------------+----------+------------+-------------+------+-----------+-------+------+----------+-----------+-----+
  | stab-corrupted | abp-stab | fifo-lossy | round-robin |    1 | completed |   126 |  yes |      yes | yes       | 126 |
  +----------------+----------+------------+-------------+------+-----------+-------+------+----------+-----------+-----+
  $ stp validate corrupt1.json
  corrupt1.json: valid report artifact, 1 report(s), schema version 1

A mid-run receiver corruption against one of the new stabilising
families: the written-count convention anchors the drawn state to the
live tape length, so the event is legal at any time and the windowed
protocol recovers:

  $ cat > midrun.json <<'EOF'
  > [ { "label": "gbn-midrun-R", "protocol": "gbn-stab",
  >     "channel": "fifo-lossy", "domain": 2, "max_len": 4, "window": 2,
  >     "input": [0, 1, 1, 0],
  >     "strategy": "round-robin", "seed": 3, "within": 256,
  >     "plan": { "name": "midR",
  >               "events": [ { "kind": "corrupt-state", "at": 6,
  >                             "who": "receiver", "index": 0 } ] } } ]
  > EOF
  $ stp serve --once midrun.json --results-only --json midrun1.json | grep -A 5 'per-job results'
  per-job results
  +--------------+----------+------------+-------------+------+-----------+-------+------+----------+-----------+-----+
  | job          | protocol | channel    | strategy    | seed | stop      | steps | safe | complete | recovered | ttr |
  +--------------+----------+------------+-------------+------+-----------+-------+------+----------+-----------+-----+
  | gbn-midrun-R | gbn-stab | fifo-lossy | round-robin |    3 | completed |    14 |  yes |      yes | yes       |   8 |
  +--------------+----------+------------+-------------+------+-----------+-------+------+----------+-----------+-----+
  $ stp validate midrun1.json
  midrun1.json: valid report artifact, 1 report(s), schema version 1

  $ sed 's/abp-stab/trivial/' corrupt.json > corrupt-bad.json
  $ stp serve --once corrupt-bad.json --json nope.json
  stp: corrupt-bad.json: job 0: corrupt-S@0#4: protocol declares no corrupted-start space
  [124]

A malformed batch names the offending job and fails without writing
an artifact:

  $ echo '{"jobs": [{"protocol": "nope", "input": [0]}]}' > bad.json
  $ stp serve --once bad.json --json bad-out.json
  stp: bad.json: job 0: unknown protocol "nope"
  [124]
  $ test -f bad-out.json && echo artifact || echo no-artifact
  no-artifact

The spool daemon: drop a batch file into a directory, let the daemon
execute it, and find the artifact beside the renamed input.  A second
malformed file is parked as .failed without stopping the service:

  $ mkdir spool
  $ cp jobs.json spool/b1.json
  $ cp bad.json spool/b2.json
  $ stp serve --spool spool --max-batches 2 --poll-seconds 0.01 > /dev/null 2>&1
  $ ls spool
  b1.json.done
  b1.report.json
  b2.json.failed
  $ stp validate spool/b1.report.json
  spool/b1.report.json: valid report artifact, 2 report(s), schema version 1

Artifacts land atomically: the daemon writes to a dotted temp file
and renames it into place, so no temp residue survives (and a reader
polling the directory can never see a half-written report):

  $ find spool -name '*.tmp*'

(* Tests for the simulation kernel: histories, processes, the
   transition relation, the run driver, schedulers, and the explorer. *)

module Hist = Kernel.Hist
module Event = Kernel.Event
module Action = Kernel.Action
module Proc = Kernel.Proc
module Protocol = Kernel.Protocol
module Global = Kernel.Global
module Move = Kernel.Move
module Sim = Kernel.Sim
module Trace = Kernel.Trace
module Strategy = Kernel.Strategy
module Runner = Kernel.Runner
module Explore = Kernel.Explore
module Chan = Channel.Chan

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ------------------------- Hist ------------------------- *)

let test_hist_append_order () =
  let h = Hist.add (Hist.add Hist.empty Hist.Woke) (Hist.Got 3) in
  check Alcotest.int "length" 2 (Hist.length h);
  check Alcotest.bool "order" true (Hist.to_list h = [ Hist.Woke; Hist.Got 3 ])

let test_hist_encode_injective_cases () =
  let enc entries = Hist.encode (List.fold_left Hist.add Hist.empty entries) in
  check Alcotest.bool "got vs sent" true (enc [ Hist.Got 1 ] <> enc [ Hist.Sent 1 ]);
  check Alcotest.bool "symbol matters" true (enc [ Hist.Got 1 ] <> enc [ Hist.Got 2 ]);
  check Alcotest.bool "order matters" true
    (enc [ Hist.Got 1; Hist.Woke ] <> enc [ Hist.Woke; Hist.Got 1 ]);
  (* Multi-digit symbols must not glue ambiguously. *)
  check Alcotest.bool "12 vs 1,2" true (enc [ Hist.Got 12 ] <> enc [ Hist.Got 1; Hist.Got 2 ])

let test_hist_prefix () =
  let h = List.fold_left Hist.add Hist.empty [ Hist.Woke; Hist.Got 1; Hist.Sent 2 ] in
  let p = Hist.prefix h 2 in
  check Alcotest.bool "prefix content" true (Hist.to_list p = [ Hist.Woke; Hist.Got 1 ]);
  check Alcotest.bool "full prefix" true (Hist.equal (Hist.prefix h 3) h);
  check Alcotest.int "empty prefix" 0 (Hist.length (Hist.prefix h 0));
  Alcotest.check_raises "too long" (Invalid_argument "Hist.prefix: bad length") (fun () ->
      ignore (Hist.prefix h 4))

let test_hist_event_action_mapping () =
  let h = Hist.add_event Hist.empty (Event.Deliver 7) in
  let h = Hist.add_action h (Action.Write 3) in
  check Alcotest.bool "mapped" true (Hist.to_list h = [ Hist.Got 7; Hist.Wrote 3 ])

(* ------------------------- Proc ------------------------- *)

let test_proc_step_and_encode () =
  let p =
    Proc.make ~state:0
      ~step:(fun s -> function
        | Event.Wake -> (s + 1, [ Action.Send s ])
        | Event.Deliver _ -> (s, []))
      ()
  in
  let before = Proc.encode p in
  let p', actions = Proc.step p Event.Wake in
  check Alcotest.bool "action emitted" true (actions = [ Action.Send 0 ]);
  check Alcotest.bool "encode changed" true (Proc.encode p' <> before);
  let p2 = Proc.make ~state:0 ~step:(fun s _ -> (s, [])) () in
  check Alcotest.string "same state same encode" (Proc.encode p2) before

(* ------------------------- a tiny test protocol ------------------------- *)

(* Sender emits one message (its first input item) on first wake;
   receiver writes every delivery.  Enough to probe the kernel. *)
let tiny channel =
  {
    Protocol.name = "tiny";
    sender_alphabet = 4;
    receiver_alphabet = 1;
    channel;
    make_sender =
      (fun ~input ->
        Proc.make ~state:false
          ~step:(fun sent -> function
            | Event.Wake when (not sent) && Array.length input > 0 ->
                (true, [ Action.Send input.(0) ])
            | Event.Wake | Event.Deliver _ -> (sent, []))
          ());
    make_receiver =
      (fun () ->
        Proc.make ~state:()
          ~step:(fun () -> function
            | Event.Deliver d -> ((), [ Action.Write d ])
            | Event.Wake -> ((), []))
          ());
    symmetry = None;
    perturb = None;
  }

let bad_sender_writes =
  {
    Protocol.name = "bad-writer";
    sender_alphabet = 1;
    receiver_alphabet = 1;
    channel = Chan.Perfect;
    make_sender =
      (fun ~input:_ ->
        Proc.make ~state:() ~step:(fun () _ -> ((), [ Action.Write 0 ])) ());
    make_receiver = (fun () -> Proc.make ~state:() ~step:(fun () _ -> ((), [])) ());
    symmetry = None;
    perturb = None;
  }

let bad_alphabet =
  {
    Protocol.name = "bad-alphabet";
    sender_alphabet = 2;
    receiver_alphabet = 1;
    channel = Chan.Perfect;
    make_sender =
      (fun ~input:_ -> Proc.make ~state:() ~step:(fun () _ -> ((), [ Action.Send 7 ])) ());
    make_receiver = (fun () -> Proc.make ~state:() ~step:(fun () _ -> ((), [])) ());
    symmetry = None;
    perturb = None;
  }

(* ------------------------- Global / Sim ------------------------- *)

let test_global_initial () =
  let g = Global.initial (tiny Chan.Perfect) ~input:[| 1; 2 |] in
  check Alcotest.int "no output" 0 (Global.output_length g);
  check Alcotest.bool "safe" true (Global.safety_ok g);
  check Alcotest.bool "incomplete" false (Global.complete g);
  check Alcotest.int "time 0" 0 g.Global.time

let test_global_empty_input_complete () =
  let g = Global.initial (tiny Chan.Perfect) ~input:[||] in
  check Alcotest.bool "empty input complete at start" true (Global.complete g)

let test_sim_wake_and_deliver () =
  let p = tiny Chan.Perfect in
  let g = Global.initial p ~input:[| 3 |] in
  check Alcotest.bool "initial moves: wakes only" true
    (Sim.enabled p g = [ Move.Wake_sender; Move.Wake_receiver ]);
  let g = Sim.apply p g Move.Wake_sender in
  check Alcotest.bool "delivery now enabled" true
    (List.mem (Move.Deliver_to_receiver 3) (Sim.enabled p g));
  let g = Sim.apply p g (Move.Deliver_to_receiver 3) in
  check Alcotest.bool "output written" true (Global.output g = [ 3 ]);
  check Alcotest.bool "complete" true (Global.complete g);
  check Alcotest.int "time advanced" 2 g.Global.time

let test_sim_histories_recorded () =
  let p = tiny Chan.Perfect in
  let g = Global.initial p ~input:[| 3 |] in
  let g = Sim.apply p g Move.Wake_sender in
  let g = Sim.apply p g (Move.Deliver_to_receiver 3) in
  check Alcotest.bool "sender history" true
    (Hist.to_list g.Global.s_hist = [ Hist.Woke; Hist.Sent 3 ]);
  check Alcotest.bool "receiver history" true
    (Hist.to_list g.Global.r_hist = [ Hist.Got 3; Hist.Wrote 3 ])

let test_sim_rejects_sender_write () =
  let g = Global.initial bad_sender_writes ~input:[| 0 |] in
  Alcotest.check_raises "sender write"
    (Sim.Model_violation "sender attempted to write the output tape") (fun () ->
      ignore (Sim.apply bad_sender_writes g Move.Wake_sender))

let test_sim_rejects_alphabet_violation () =
  let g = Global.initial bad_alphabet ~input:[| 0 |] in
  Alcotest.check_raises "alphabet"
    (Sim.Model_violation "message symbol 7 outside declared alphabet of size 2") (fun () ->
      ignore (Sim.apply bad_alphabet g Move.Wake_sender))

let test_sim_rejects_bogus_delivery () =
  let p = tiny Chan.Perfect in
  let g = Global.initial p ~input:[| 1 |] in
  Alcotest.check_raises "not deliverable"
    (Sim.Model_violation "message 1 not deliverable to R") (fun () ->
      ignore (Sim.apply p g (Move.Deliver_to_receiver 1)))

let test_safety_detects_wrong_write () =
  let p = tiny Chan.Perfect in
  (* tiny receiver blindly writes whatever arrives — feed it a
     mismatching input by sending input.(0) on an input whose first
     element differs... easiest: input [|2|], deliver, then output [2]
     is a prefix.  For a violation, use input [||] so any write
     overshoots. *)
  let g = Global.initial p ~input:[||] in
  (* Sender sends nothing on empty input, so force a channel message by
     crafting the global by hand is impossible here; instead check the
     prefix logic directly through Trace on the counting protocol in
     test_protocols.  Here: outputs equal to input stay safe. *)
  check Alcotest.bool "empty stays safe" true (Global.safety_ok g)

let test_wake_only_complete_detects_deadlock () =
  (* A protocol that does nothing at all deadlocks immediately. *)
  let inert =
    {
      Protocol.name = "inert";
      sender_alphabet = 1;
      receiver_alphabet = 1;
      channel = Chan.Perfect;
      make_sender =
        (fun ~input:_ -> Proc.make ~state:() ~step:(fun () _ -> ((), [])) ());
      make_receiver = (fun () -> Proc.make ~state:() ~step:(fun () _ -> ((), [])) ());
      symmetry = None;
      perturb = None;
    }
  in
  let g = Global.initial inert ~input:[| 0 |] in
  check Alcotest.bool "quiescent" true (Sim.wake_only_complete inert g);
  let p = tiny Chan.Perfect in
  let g = Global.initial p ~input:[| 0 |] in
  check Alcotest.bool "tiny is not quiescent (sender will send)" false
    (Sim.wake_only_complete p g)

(* ------------------------- Runner ------------------------- *)

let test_runner_completes () =
  let p = tiny Chan.Perfect in
  let r =
    Runner.run p ~input:[| 2 |] ~strategy:Strategy.round_robin ~rng:(Stdx.Rng.create 1)
      ~max_steps:100 ()
  in
  check Alcotest.bool "completed" true (r.Runner.stop = Runner.Completed);
  check (Alcotest.option Alcotest.int) "no violation" None
    (Trace.first_safety_violation r.Runner.trace)

let test_runner_budget () =
  let inert =
    {
      Protocol.name = "inert2";
      sender_alphabet = 1;
      receiver_alphabet = 1;
      channel = Chan.Reorder_dup;
      make_sender =
        (* Sends forever so the system is never quiescent. *)
        (fun ~input:_ -> Proc.make ~state:() ~step:(fun () _ -> ((), [ Action.Send 0 ])) ());
      make_receiver = (fun () -> Proc.make ~state:() ~step:(fun () _ -> ((), [])) ());
      symmetry = None;
      perturb = None;
    }
  in
  let r =
    Runner.run inert ~input:[| 0 |] ~strategy:(Strategy.fair_random ())
      ~rng:(Stdx.Rng.create 1) ~max_steps:50 ()
  in
  check Alcotest.bool "budget" true (r.Runner.stop = Runner.Budget);
  check Alcotest.int "steps = budget" 50 r.Runner.steps

let test_runner_quiescent () =
  let inert =
    {
      Protocol.name = "inert3";
      sender_alphabet = 1;
      receiver_alphabet = 1;
      channel = Chan.Perfect;
      make_sender = (fun ~input:_ -> Proc.make ~state:() ~step:(fun () _ -> ((), [])) ());
      make_receiver = (fun () -> Proc.make ~state:() ~step:(fun () _ -> ((), [])) ());
      symmetry = None;
      perturb = None;
    }
  in
  let r =
    Runner.run inert ~input:[| 0 |] ~strategy:Strategy.round_robin ~rng:(Stdx.Rng.create 1)
      ~max_steps:100 ()
  in
  check Alcotest.bool "deadlock detected" true (r.Runner.stop = Runner.Quiescent)

let test_runner_post_roll () =
  let p = tiny Chan.Perfect in
  let r =
    Runner.run p ~input:[| 2 |] ~strategy:Strategy.round_robin ~rng:(Stdx.Rng.create 1)
      ~max_steps:100 ~post_roll:5 ()
  in
  let completed = Option.get (Trace.completed_at r.Runner.trace) in
  check Alcotest.bool "rolled past completion" true (Trace.length r.Runner.trace >= completed + 5)

let test_runner_deterministic () =
  let p = tiny Chan.Perfect in
  let run seed =
    let r =
      Runner.run p ~input:[| 1 |] ~strategy:(Strategy.fair_random ())
        ~rng:(Stdx.Rng.create seed) ~max_steps:100 ()
    in
    Array.to_list (Trace.moves r.Runner.trace)
  in
  check Alcotest.bool "same seed same run" true (run 5 = run 5)

(* ------------------------- Strategy ------------------------- *)

let test_scripted_replay () =
  let p = tiny Chan.Perfect in
  let script = [ Move.Wake_sender; Move.Deliver_to_receiver 3 ] in
  let r =
    Runner.run p ~input:[| 3 |] ~strategy:(Strategy.scripted script) ~rng:(Stdx.Rng.create 1)
      ~max_steps:100 ()
  in
  check Alcotest.bool "script reaches completion" true (r.Runner.stop = Runner.Completed);
  check Alcotest.bool "moves = script" true (Array.to_list (Trace.moves r.Runner.trace) = script)

let test_scripted_stops_on_disabled () =
  let p = tiny Chan.Perfect in
  let script = [ Move.Deliver_to_receiver 3 ] in
  let r =
    Runner.run p ~input:[| 3 |] ~strategy:(Strategy.scripted script) ~rng:(Stdx.Rng.create 1)
      ~max_steps:100 ()
  in
  check Alcotest.bool "ends" true (r.Runner.stop = Runner.Strategy_end);
  check Alcotest.int "nothing happened" 0 (Trace.length r.Runner.trace)

let test_drop_first_budget () =
  (* drop_first must stop dropping after its budget. *)
  let p = Protocols.Norep.del ~m:3 in
  let r =
    Runner.run p ~input:[| 0; 1; 2 |]
      ~strategy:(Strategy.drop_first 3 (Strategy.fair_random ()))
      ~rng:(Stdx.Rng.create 2) ~max_steps:5_000 ()
  in
  let final = Trace.final r.Runner.trace in
  let dropped =
    Chan.dropped_total final.Global.chan_sr + Chan.dropped_total final.Global.chan_rs
  in
  check Alcotest.int "exactly the budget" 3 dropped;
  check Alcotest.bool "still completes" true (r.Runner.stop = Runner.Completed)

let test_starve_receiver () =
  let p = tiny Chan.Perfect in
  let r =
    Runner.run p ~input:[| 1 |]
      ~strategy:(Strategy.starve_receiver ~until:20 Strategy.round_robin)
      ~rng:(Stdx.Rng.create 1) ~max_steps:200 ()
  in
  (* Nothing may reach R before time 20. *)
  check Alcotest.int "no output before starvation lifts" 0
    (Trace.output_length_at r.Runner.trace (min 20 (Trace.length r.Runner.trace)));
  check Alcotest.bool "completes afterwards" true (r.Runner.stop = Runner.Completed)

(* Every accepted spelling parses to the strategy whose name the help
   text promises — and parsing is a pure function of the spelling. *)
let strategy_spelling_gen =
  QCheck.Gen.(
    oneof
      [
        oneofl [ "fair-random"; "round-robin"; "newest-first"; "dup-flood" ];
        map (fun p -> Printf.sprintf "drop:%.2f" p) (float_bound_inclusive 1.0);
        map (fun n -> Printf.sprintf "drop-first:%d" n) (int_bound 50);
      ])

let expected_strategy_name s =
  match String.split_on_char ':' s with
  | [ "dup-flood" ] -> "dup-flood(3)"
  | [ "drop"; p ] -> Printf.sprintf "fair-random+drop(%.2f)" (float_of_string p)
  | [ "drop-first"; n ] -> Printf.sprintf "fair-random+drop-first(%s)" n
  | _ -> s

let prop_strategy_of_string_roundtrip =
  QCheck.Test.make ~name:"Strategy.of_string round-trips accepted spellings" ~count:200
    (QCheck.make ~print:(fun s -> s) strategy_spelling_gen)
    (fun s ->
      match (Strategy.of_string s, Strategy.of_string s) with
      | Ok a, Ok b -> a.Strategy.name = expected_strategy_name s && a.Strategy.name = b.Strategy.name
      | _ -> false)

let test_strategy_of_string_errors () =
  let err s = match Strategy.of_string s with Error e -> e | Ok _ -> "OK" in
  (* Pinned: the unknown-name error quotes the offending spelling. *)
  check Alcotest.string "unknown name" {|unknown strategy "no-such"|} (err "no-such");
  check Alcotest.string "unknown with arg" {|unknown strategy "drop:0.2:extra"|}
    (err "drop:0.2:extra");
  check Alcotest.string "bad drop probability" "drop:P needs a float probability"
    (err "drop:lots");
  check Alcotest.string "bad drop-first count" "drop-first:N needs an integer"
    (err "drop-first:x")

let prop_fair_random_picks_enabled =
  QCheck.Test.make ~name:"fair_random picks an enabled move" QCheck.small_int (fun seed ->
      let p = tiny Chan.Reorder_dup in
      let g = Sim.apply p (Global.initial p ~input:[| 1 |]) Move.Wake_sender in
      let enabled = Sim.enabled p g in
      let s = Strategy.fair_random () in
      match s.Strategy.choose (Stdx.Rng.create seed) p g enabled with
      | Some m -> List.exists (Move.equal m) enabled
      | None -> false)

(* ------------------------- Trace ------------------------- *)

let test_trace_views_monotone () =
  let p = Protocols.Norep.dup ~m:3 in
  let r =
    Runner.run p ~input:[| 1; 0 |] ~strategy:Strategy.round_robin ~rng:(Stdx.Rng.create 1)
      ~max_steps:500 ()
  in
  let trace = r.Runner.trace in
  for t = 0 to Trace.length trace - 1 do
    let a = Hist.length (Trace.r_view trace t) in
    let b = Hist.length (Trace.r_view trace (t + 1)) in
    if b < a then Alcotest.failf "receiver view shrank at %d" t;
    if Trace.output_length_at trace (t + 1) < Trace.output_length_at trace t then
      Alcotest.failf "output shrank at %d" t
  done

let test_trace_view_prefix_property () =
  let p = Protocols.Norep.dup ~m:3 in
  let r =
    Runner.run p ~input:[| 2; 1 |] ~strategy:Strategy.round_robin ~rng:(Stdx.Rng.create 1)
      ~max_steps:500 ()
  in
  let trace = r.Runner.trace in
  let n = Trace.length trace in
  let final_view = Trace.r_view trace n in
  for t = 0 to n do
    let v = Trace.r_view trace t in
    if not (Hist.equal v (Hist.prefix final_view (Hist.length v))) then
      Alcotest.failf "view at %d is not a prefix of the final view" t
  done

(* ------------------------- Explore ------------------------- *)

let test_explore_reachable_tiny () =
  let p = tiny Chan.Perfect in
  let stats = Explore.reachable p ~input:[| 1 |] ~depth:10 () in
  check Alcotest.bool "some states" true (stats.Explore.states > 1);
  check Alcotest.int "no violations" 0 stats.Explore.safety_violations;
  check Alcotest.bool "completion reachable" true (stats.Explore.complete_states > 0)

let test_explore_iter_runs_counts () =
  let p = tiny Chan.Perfect in
  let count = ref 0 in
  Explore.iter_runs p ~input:[| 1 |] ~depth:3 (fun _ -> incr count);
  (* Depth-3 runs over a branching system: more than one, finitely many. *)
  check Alcotest.bool "enumerated" true (!count > 1)

let test_explore_max_runs () =
  let p = tiny Chan.Reorder_dup in
  let count = ref 0 in
  Explore.iter_runs p ~input:[| 1 |] ~depth:6 ~max_runs:10 (fun _ -> incr count);
  check Alcotest.int "capped" 10 !count

let test_explore_no_drops_filter () =
  let p = Protocols.Norep.del ~m:2 in
  let saw_drop = ref false in
  Explore.iter_runs p ~input:[| 0 |] ~depth:4 ~move_filter:Explore.no_drops ~max_runs:200
    (fun trace ->
      Array.iter
        (function
          | Move.Drop_to_receiver _ | Move.Drop_to_sender _ -> saw_drop := true
          | Move.Wake_sender | Move.Wake_receiver | Move.Deliver_to_receiver _
          | Move.Deliver_to_sender _ | Move.Restart_sender | Move.Restart_receiver
          | Move.Corrupt_sender _ | Move.Corrupt_receiver _ ->
              ())
        (Trace.moves trace));
  check Alcotest.bool "filter removes drops" false !saw_drop

let test_explore_dead_end_emitted () =
  (* A move filter that refuses everything makes the initial state a
     dead end: the enumeration must still emit that (empty) run rather
     than silently produce nothing. *)
  let p = tiny Chan.Perfect in
  let traces = ref [] in
  Explore.iter_runs p ~input:[| 1 |] ~depth:5
    ~move_filter:(fun _ _ -> false)
    (fun t -> traces := t :: !traces);
  match !traces with
  | [ t ] -> check Alcotest.int "empty run" 0 (Trace.length t)
  | ts -> Alcotest.failf "expected exactly one dead-end trace, got %d" (List.length ts)

(* The binary fingerprint must behave exactly like semantic equality
   of the fingerprinted components on states the engine visits: equal
   bytes iff equal (sender, receiver, channel bodies, output length).
   This is the injectivity/self-delimitation property the codec-based
   state tables rely on. *)
let prop_global_fingerprint_iff_components =
  QCheck.Test.make ~name:"Global fingerprint equality iff component equality" ~count:60
    QCheck.(pair small_int (int_range 5 40))
    (fun (seed, steps) ->
      let p = Protocols.Norep.del ~m:2 in
      let rng = Stdx.Rng.create seed in
      let g = ref (Global.initial p ~input:[| 0; 1 |]) in
      let states = ref [ !g ] in
      (try
         for _ = 1 to steps do
           match Sim.enabled p !g with
           | [] -> raise Exit
           | moves ->
               let m = List.nth moves (Stdx.Rng.int rng (List.length moves)) in
               g := Sim.apply p !g m;
               states := !g :: !states
         done
       with Exit -> ());
      let comps (g : Global.t) =
        ( Proc.encode g.Global.sender,
          Proc.encode g.Global.receiver,
          Chan.encode g.Global.chan_sr,
          Chan.encode g.Global.chan_rs,
          Global.output_length g )
      in
      List.for_all
        (fun a ->
          List.for_all
            (fun b -> String.equal (Global.encode a) (Global.encode b) = (comps a = comps b))
            !states)
        !states)

let () =
  Alcotest.run "kernel"
    [
      ( "hist",
        [
          Alcotest.test_case "append order" `Quick test_hist_append_order;
          Alcotest.test_case "encode distinguishes" `Quick test_hist_encode_injective_cases;
          Alcotest.test_case "prefix" `Quick test_hist_prefix;
          Alcotest.test_case "event/action mapping" `Quick test_hist_event_action_mapping;
        ] );
      ( "proc",
        [ Alcotest.test_case "step and encode" `Quick test_proc_step_and_encode ] );
      ( "sim",
        [
          Alcotest.test_case "initial global" `Quick test_global_initial;
          Alcotest.test_case "empty input complete" `Quick test_global_empty_input_complete;
          Alcotest.test_case "wake and deliver" `Quick test_sim_wake_and_deliver;
          Alcotest.test_case "histories recorded" `Quick test_sim_histories_recorded;
          Alcotest.test_case "rejects sender write" `Quick test_sim_rejects_sender_write;
          Alcotest.test_case "rejects alphabet violation" `Quick test_sim_rejects_alphabet_violation;
          Alcotest.test_case "rejects bogus delivery" `Quick test_sim_rejects_bogus_delivery;
          Alcotest.test_case "safety on empty" `Quick test_safety_detects_wrong_write;
          Alcotest.test_case "quiescence detection" `Quick test_wake_only_complete_detects_deadlock;
        ] );
      ( "runner",
        [
          Alcotest.test_case "completes" `Quick test_runner_completes;
          Alcotest.test_case "budget stop" `Quick test_runner_budget;
          Alcotest.test_case "quiescent stop" `Quick test_runner_quiescent;
          Alcotest.test_case "post roll" `Quick test_runner_post_roll;
          Alcotest.test_case "deterministic" `Quick test_runner_deterministic;
        ] );
      ( "strategy",
        [
          Alcotest.test_case "scripted replay" `Quick test_scripted_replay;
          Alcotest.test_case "scripted stops when disabled" `Quick test_scripted_stops_on_disabled;
          Alcotest.test_case "drop_first budget" `Quick test_drop_first_budget;
          Alcotest.test_case "starve receiver" `Quick test_starve_receiver;
          Alcotest.test_case "of_string errors pinned" `Quick test_strategy_of_string_errors;
          qtest prop_fair_random_picks_enabled;
          qtest prop_strategy_of_string_roundtrip;
        ] );
      ( "trace",
        [
          Alcotest.test_case "views monotone" `Quick test_trace_views_monotone;
          Alcotest.test_case "view prefix property" `Quick test_trace_view_prefix_property;
        ] );
      ( "explore",
        [
          Alcotest.test_case "reachable" `Quick test_explore_reachable_tiny;
          Alcotest.test_case "iter_runs" `Quick test_explore_iter_runs_counts;
          Alcotest.test_case "max_runs cap" `Quick test_explore_max_runs;
          Alcotest.test_case "no_drops filter" `Quick test_explore_no_drops_filter;
          Alcotest.test_case "dead end emitted" `Quick test_explore_dead_end_emitted;
          qtest prop_global_fingerprint_iff_components;
        ] );
    ]

(* Tests for the fault-injection subsystem: plan legality against
   channel capabilities, injected runs staying inside the model,
   shrinking, soak determinism, and the resource guards. *)

module Plan = Faults.Plan
module Inject = Faults.Inject
module Shrink = Faults.Shrink
module Soak = Faults.Soak
module Chan = Channel.Chan
module Move = Kernel.Move
module Sim = Kernel.Sim
module Strategy = Kernel.Strategy
module Rng = Stdx.Rng

let check = Alcotest.check

let drop ~at ~count = Plan.Drop_burst { at; target = Plan.To_receiver; count }

let plan name events = { Plan.name; events }

let all_channels =
  [ Chan.Perfect; Chan.Fifo_lossy; Chan.Reorder_dup; Chan.Reorder_del;
    Chan.Bounded_reorder { lag = 2 } ]

(* ------------------------- plan validation ------------------------- *)

let test_capability_rejection () =
  let drops = plan "d" [ drop ~at:3 ~count:1 ] in
  let dups = plan "u" [ Plan.Dup_burst { at = 3; target = Plan.To_sender; count = 2 } ] in
  let storm = plan "s" [ Plan.Reorder_storm { at = 3; len = 2 } ] in
  let ok c p = Result.is_ok (Plan.validate ~channel:c p) in
  (* drops need a deleting channel: rejected on reorder+dup *)
  check Alcotest.bool "drop on dup rejected" false (ok Chan.Reorder_dup drops);
  check Alcotest.bool "drop on lossy ok" true (ok Chan.Fifo_lossy drops);
  (* dups need a duplicating channel: rejected on reorder+del *)
  check Alcotest.bool "dup on del rejected" false (ok Chan.Reorder_del dups);
  check Alcotest.bool "dup on dup ok" true (ok Chan.Reorder_dup dups);
  (* storms need reordering *)
  check Alcotest.bool "storm on lossy rejected" false (ok Chan.Fifo_lossy storm);
  check Alcotest.bool "storm on del ok" true (ok Chan.Reorder_del storm);
  (* blackout and crash are always legal *)
  List.iter
    (fun c ->
      check Alcotest.bool "blackout legal" true
        (ok c (plan "b" [ Plan.Blackout { at = 0; len = 3 } ]));
      check Alcotest.bool "crash legal" true
        (ok c (plan "c" [ Plan.Crash_restart { at = 4; who = Plan.Receiver } ])))
    all_channels

let test_malformed_rejected () =
  let bad e = Result.is_error (Plan.validate ~channel:Chan.Reorder_del (plan "x" [ e ])) in
  check Alcotest.bool "negative at" true
    (bad (Plan.Blackout { at = -1; len = 2 }));
  check Alcotest.bool "zero-length window" true
    (bad (Plan.Blackout { at = 2; len = 0 }));
  check Alcotest.bool "empty burst" true (bad (drop ~at:2 ~count:0))

let prop_random_plans_validate =
  QCheck.Test.make ~name:"random plans validate on their channel" ~count:200
    QCheck.(pair small_nat (int_bound 4))
    (fun (seed, ci) ->
      let channel = List.nth all_channels ci in
      let rng = Rng.create seed in
      let p = Plan.random ~channel ~rng () in
      Result.is_ok (Plan.validate ~channel p))

let prop_plan_json_roundtrip =
  QCheck.Test.make ~name:"plan JSON round-trip" ~count:200
    QCheck.(pair small_nat (int_bound 4))
    (fun (seed, ci) ->
      let channel = List.nth all_channels ci in
      let p = Plan.random ~channel ~rng:(Rng.create seed) () in
      Plan.of_json (Plan.to_json p) = Ok p)

(* ------------------- corrupt-state plan events ------------------- *)

let corrupt ~at ~who ~index = Plan.Corrupt_state { at; who; index }

let test_corrupt_needs_space () =
  let p = plan "c" [ corrupt ~at:0 ~who:Plan.Sender ~index:1 ] in
  (* Without a declared corrupted-start space, corruption is as
     illegal as a drop on a perfect channel. *)
  check Alcotest.bool "rejected without space" true
    (Result.is_error (Plan.validate ~channel:Chan.Fifo_lossy p));
  check Alcotest.bool "accepted inside space" true
    (Result.is_ok (Plan.validate ~channel:Chan.Fifo_lossy ~corrupt_space:(3, 2) p));
  check Alcotest.bool "index out of range" true
    (Result.is_error
       (Plan.validate ~channel:Chan.Fifo_lossy ~corrupt_space:(1, 2) p));
  check Alcotest.bool "receiver side checked separately" true
    (Result.is_error
       (Plan.validate ~channel:Chan.Fifo_lossy ~corrupt_space:(0, 1)
          (plan "r" [ corrupt ~at:0 ~who:Plan.Receiver ~index:1 ])));
  check Alcotest.bool "negative index" true
    (Result.is_error
       (Plan.validate ~channel:Chan.Fifo_lossy ~corrupt_space:(3, 2)
          (plan "n" [ corrupt ~at:0 ~who:Plan.Sender ~index:(-1) ])))

let test_corrupt_absent_from_default_stream () =
  (* The corrupt kind must be strictly opt-in: the default draw stream
     (and hence every pinned seeded battery) is unchanged, and an
     empty declared space draws nothing either. *)
  List.iter
    (fun seed ->
      let draw cs =
        Plan.random ~channel:Chan.Fifo_lossy ~rng:(Rng.create seed) ?corrupt_space:cs ()
      in
      check Alcotest.bool "empty space = default stream" true
        (draw None = draw (Some (0, 0))))
    [ 1; 2; 3; 7; 42 ]

let test_random_draws_receiver_corruptions () =
  (* With a receiver-only space every corruption drawn must target the
     receiver (written-count convention makes any tape length legal),
     and across seeds the pool actually yields some. *)
  let count who space =
    List.concat_map
      (fun seed ->
        let p =
          Plan.random ~channel:Chan.Fifo_lossy ~rng:(Rng.create seed)
            ~corrupt_space:space ()
        in
        List.filter_map
          (function
            | Plan.Corrupt_state { who = w; index; _ } when w = who -> Some index
            | _ -> None)
          p.Plan.events)
      (List.init 60 (fun i -> i))
  in
  let r_only = count Plan.Receiver (0, 3) in
  let s_in_r_only = count Plan.Sender (0, 3) in
  check Alcotest.bool "receiver-only space draws receivers" true (r_only <> []);
  check Alcotest.int "receiver-only space never draws senders" 0
    (List.length s_in_r_only);
  check Alcotest.bool "receiver indices in range" true
    (List.for_all (fun i -> i >= 0 && i < 3) r_only);
  let r_mixed = count Plan.Receiver (5, 2) in
  check Alcotest.bool "mixed space draws receivers too" true (r_mixed <> []);
  check Alcotest.bool "mixed receiver indices in range" true
    (List.for_all (fun i -> i >= 0 && i < 2) r_mixed)

let prop_corrupt_random_plans_validate =
  QCheck.Test.make ~name:"random corrupt-enabled plans validate" ~count:200
    QCheck.(pair small_nat (pair (int_bound 4) (int_bound 4)))
    (fun (seed, (ns, nr)) ->
      let corrupt_space = (ns + 1, nr) in
      let p =
        Plan.random ~channel:Chan.Fifo_lossy ~rng:(Rng.create seed) ~corrupt_space ()
      in
      Result.is_ok (Plan.validate ~channel:Chan.Fifo_lossy ~corrupt_space p))

let prop_corrupt_plan_json_roundtrip =
  QCheck.Test.make ~name:"corrupt-enabled plan JSON round-trip" ~count:200
    QCheck.small_nat
    (fun seed ->
      let p =
        Plan.random ~channel:Chan.Fifo_lossy ~rng:(Rng.create seed) ~corrupt_space:(5, 2) ()
      in
      Plan.of_json (Plan.to_json p) = Ok p)

(* ------------------------- injection legality ------------------------- *)

(* Drive a run by hand: whatever the injected strategy picks must be
   either a move the simulator listed as enabled or a restart (which
   [Sim.apply] accepts unconditionally) — so no injected schedule can
   ever raise [Model_violation]. *)
let drive_checked protocol ~input ~plan ~seed ~steps =
  let strategy = Inject.strategy ~plan ~base:Strategy.round_robin in
  let rng = Rng.create seed in
  let g = ref (Kernel.Global.initial protocol ~input) in
  let ok = ref true in
  (try
     for _ = 1 to steps do
       let enabled = Sim.enabled protocol !g in
       match strategy.Strategy.choose rng protocol !g enabled with
       | None -> raise Exit
       | Some m ->
           let legal =
             List.exists (Move.equal m) enabled
             || m = Move.Restart_sender || m = Move.Restart_receiver
           in
           if not legal then ok := false;
           g := Sim.apply protocol !g m
     done
   with Exit -> ());
  !ok

let prop_injected_moves_legal =
  QCheck.Test.make ~name:"injected strategies only play enabled-or-restart moves" ~count:60
    QCheck.(pair small_nat bool)
    (fun (seed, on_lossy) ->
      let protocol, channel =
        if on_lossy then (Protocols.Abp.protocol ~domain:2, Chan.Fifo_lossy)
        else
          ( Protocols.Ladder.protocol
              ~xset:(Seqspace.Xset.All_upto { domain = 2; max_len = 3 })
              ~drop_budget:1,
            Chan.Reorder_del )
      in
      let plan = Plan.random ~channel ~rng:(Rng.create (seed + 1)) () in
      drive_checked protocol ~input:[| 0; 1 |] ~plan ~seed ~steps:300)

let test_empty_plan_transparent () =
  (* The wrapper with no events must replay the base schedule exactly:
     same moves, same verdict — the fault layer is zero-cost when no
     plan is active. *)
  let p = Protocols.Abp.protocol ~domain:2 in
  let input = [| 0; 1; 1; 0 |] in
  let run strategy =
    Kernel.Runner.run p ~input ~strategy ~rng:(Rng.create 7) ~max_steps:5_000 ()
  in
  let base = run Strategy.round_robin in
  let wrapped = run (Inject.strategy ~plan:(plan "empty" []) ~base:Strategy.round_robin) in
  check Alcotest.int "same steps" base.Kernel.Runner.steps wrapped.Kernel.Runner.steps;
  check Alcotest.bool "same stop" true
    (base.Kernel.Runner.stop = wrapped.Kernel.Runner.stop)

let test_active_drop_accounting () =
  let p =
    plan "two-bursts"
      [ drop ~at:2 ~count:1;
        Plan.Drop_burst { at = 20; target = Plan.To_receiver; count = 2 } ]
  in
  let active ~time ~n = Inject.active p ~time ~dropped:(fun _ -> n) in
  (* first burst live until its drop lands, then inert *)
  check Alcotest.bool "armed before drop" true (active ~time:2 ~n:0 <> None);
  check Alcotest.bool "spent after drop" true (active ~time:5 ~n:1 = None);
  (* second burst accounts for the first's budget *)
  check Alcotest.bool "second armed at 1 prior drop" true (active ~time:20 ~n:1 <> None);
  check Alcotest.bool "second spent at 3 total" true (active ~time:20 ~n:3 = None);
  (* outside every window: inert regardless *)
  check Alcotest.bool "window closed" true (active ~time:50 ~n:0 = None)

let test_crash_restart_resets_process () =
  (* After Restart_receiver, writing resumes from scratch: item 0 is
     re-written, which on a non-empty output violates the prefix
     property only if the input disagrees — here it repeats, staying
     safe, but the receiver's protocol state is demonstrably reset
     (it re-acknowledges from bit 0). *)
  let p = Protocols.Abp.protocol ~domain:2 in
  let crash = plan "crash" [ Plan.Crash_restart { at = 5; who = Plan.Receiver } ] in
  let r =
    Kernel.Runner.run p ~input:[| 0; 1; 0; 1 |]
      ~strategy:(Inject.strategy ~plan:crash ~base:Strategy.round_robin)
      ~rng:(Rng.create 3) ~max_steps:5_000 ()
  in
  let moves = Kernel.Trace.moves r.Kernel.Runner.trace in
  check Alcotest.bool "restart move recorded" true
    (List.exists (fun m -> m = Move.Restart_receiver) (Array.to_list moves))

let test_corrupt_state_injected () =
  (* A scripted corruption plan compiles to a Corrupt move the
     simulator accepts, and the stabilising protocol still completes. *)
  let p = Protocols.Abp_stab.protocol ~domain:2 ~max_len:4 in
  let cplan = plan "c" [ corrupt ~at:0 ~who:Plan.Sender ~index:3 ] in
  let r =
    Kernel.Runner.run p ~input:[| 0; 1; 1; 0 |]
      ~strategy:(Inject.strategy ~plan:cplan ~base:Strategy.round_robin)
      ~rng:(Rng.create 3) ~max_steps:5_000 ()
  in
  let moves = Array.to_list (Kernel.Trace.moves r.Kernel.Runner.trace) in
  check Alcotest.bool "corrupt move recorded" true
    (List.exists (fun m -> m = Move.Corrupt_sender 3) moves);
  check Alcotest.bool "still completes" true
    (r.Kernel.Runner.stop = Kernel.Runner.Completed)

(* ------------------------- shrinking ------------------------- *)

let test_shrink_corrupt_index_toward_zero () =
  (* The "smaller" corruption is the one nearer the designated state:
     ddmin over a corrupt+blackout plan whose failure only needs some
     corruption must land on a single index-0 corrupt event. *)
  let noisy =
    plan "noisy"
      [ Plan.Blackout { at = 2; len = 3 }; corrupt ~at:0 ~who:Plan.Sender ~index:4 ]
  in
  let still_failing p =
    List.exists (function Plan.Corrupt_state _ -> true | _ -> false) p.Plan.events
  in
  let shrunk, _ =
    Shrink.run ~channel:Chan.Fifo_lossy ~corrupt_space:(5, 2) ~still_failing noisy
  in
  match shrunk.Plan.events with
  | [ Plan.Corrupt_state { index; _ } ] -> check Alcotest.int "index shrunk to 0" 0 index
  | _ -> Alcotest.fail "expected a single corrupt-state event"

let test_shrink_to_single_event () =
  let noisy =
    plan "noisy"
      [ Plan.Blackout { at = 1; len = 3 };
        drop ~at:6 ~count:2;
        Plan.Reorder_storm { at = 11; len = 4 } ]
  in
  (* Failure predicate: the plan still forces at least one drop before
     t=20 — only the drop burst matters, so ddmin must strip the rest. *)
  let still_failing p =
    List.exists
      (function Plan.Drop_burst { at; count; _ } -> at <= 20 && count >= 1 | _ -> false)
      p.Plan.events
  in
  let shrunk, stats = Shrink.run ~channel:Chan.Reorder_del ~still_failing noisy in
  check Alcotest.int "one event left" 1 (List.length shrunk.Plan.events);
  (match shrunk.Plan.events with
  | [ Plan.Drop_burst { count; _ } ] -> check Alcotest.int "burst shrunk to 1" 1 count
  | _ -> Alcotest.fail "expected a single drop burst");
  check Alcotest.bool "made progress" true (stats.Shrink.improved > 0)

let test_shrink_requires_failing_entry () =
  let p = plan "fine" [ drop ~at:3 ~count:1 ] in
  let shrunk, stats = Shrink.run ~channel:Chan.Reorder_del ~still_failing:(fun _ -> false) p in
  check Alcotest.bool "unchanged" true (shrunk = p);
  check Alcotest.int "zero trials" 0 stats.Shrink.trials

let test_shrink_never_emits_illegal () =
  (* Every candidate the predicate sees must validate on the channel. *)
  let noisy = plan "noisy" [ drop ~at:4 ~count:3; Plan.Blackout { at = 9; len = 2 } ] in
  let saw_illegal = ref false in
  let still_failing p =
    if Result.is_error (Plan.validate ~channel:Chan.Fifo_lossy p) then saw_illegal := true;
    List.exists (function Plan.Drop_burst _ -> true | _ -> false) p.Plan.events
  in
  ignore (Shrink.run ~channel:Chan.Fifo_lossy ~still_failing noisy);
  check Alcotest.bool "all candidates legal" false !saw_illegal

(* ------------------------- soak ------------------------- *)

let small_battery () = Soak.default_battery ~random_plans:1 ~seed:5 ()

let test_soak_jobs_invariant () =
  let report jobs = Stdx.Json.to_string (Stdx.Report.to_json (Soak.run ~jobs ~seed:5 (small_battery ()))) in
  let r1 = report 1 in
  check Alcotest.string "jobs 2 identical" r1 (report 2);
  check Alcotest.string "jobs 4 identical" r1 (report 4)

let test_soak_report_shape () =
  let r = Soak.run ~jobs:1 ~seed:5 (small_battery ()) in
  check Alcotest.string "id" "soak" r.Stdx.Report.id;
  check Alcotest.bool "ok when not truncated" true (r.Stdx.Report.ok = Some true);
  (* round-trips through the artifact schema *)
  check Alcotest.bool "artifact validates" true
    (Result.is_ok (Stdx.Report.validate_artifact (Stdx.Json.to_string (Stdx.Report.to_json r))))

let test_soak_wall_budget_truncates () =
  let r = Soak.run ~jobs:1 ~max_seconds:0.0 ~seed:5 (small_battery ()) in
  check Alcotest.bool "ok=false" true (r.Stdx.Report.ok = Some false);
  check Alcotest.bool "truncation note" true
    (List.exists
       (fun n -> String.length n >= 9 && String.sub n 0 9 = "TRUNCATED")
       r.Stdx.Report.notes)

let test_stab_battery_jobs_invariant () =
  let cases = Soak.stab_battery ~random_plans:1 ~seed:5 () in
  let report jobs = Stdx.Json.to_string (Stdx.Report.to_json (Soak.run ~jobs ~seed:5 cases)) in
  let r1 = report 1 in
  check Alcotest.string "jobs 2 identical" r1 (report 2);
  check Alcotest.string "jobs 4 identical" r1 (report 4);
  check Alcotest.string "jobs 7 identical" r1 (report 7)

(* ------------------------- resource guards ------------------------- *)

let test_explore_state_budget () =
  let p = Protocols.Abp.protocol ~domain:2 in
  let full = Kernel.Explore.reachable p ~input:[| 0; 1 |] ~depth:10 () in
  let capped = Kernel.Explore.reachable p ~input:[| 0; 1 |] ~depth:10 ~max_states:5 () in
  check Alcotest.bool "full not truncated" false full.Kernel.Explore.truncated;
  check Alcotest.bool "capped truncated" true capped.Kernel.Explore.truncated;
  check Alcotest.bool "budget respected" true (capped.Kernel.Explore.states <= 5)

let test_attack_wall_budget () =
  let p = Protocols.Counting.protocol_on Chan.Reorder_dup ~domain:2 in
  match Core.Attack.search_pair p ~x1:[ 0; 1 ] ~x2:[ 1; 0 ] ~max_seconds:0.0 () with
  | Core.Attack.No_violation { closed; _ } ->
      check Alcotest.bool "truncated, not closed" false closed
  | Core.Attack.Witness _ -> Alcotest.fail "deadline 0 must truncate before searching"

let test_runner_wall_budget () =
  (* A starved run never completes, so only the clock can stop it
     short of the (huge) step budget. *)
  let p = Protocols.Abp.protocol ~domain:2 in
  let r =
    Kernel.Runner.run p ~input:[| 0; 1; 0; 1 |]
      ~strategy:(Strategy.starve_receiver ~until:max_int Strategy.round_robin)
      ~rng:(Rng.create 1) ~max_steps:1_000_000 ~max_seconds:0.0 ()
  in
  check Alcotest.bool "budget stop" true (r.Kernel.Runner.stop = Kernel.Runner.Budget);
  check Alcotest.bool "stopped by the clock, not the step budget" true
    (r.Kernel.Runner.steps < 1_000_000)

(* ------------------------- recovery verdicts ------------------------- *)

let test_recovery_verdict () =
  let v =
    {
      Core.Verdict.safe = true; complete = true; deadlocked = false; steps = 40;
      messages = 10; first_violation = None; completed_at = Some 30; recovered = None;
      stabilised = None;
    }
  in
  let a = Core.Verdict.assess_recovery ~last_fault:10 ~within:20 v in
  check Alcotest.bool "recovered in window" true (a.Core.Verdict.recovered = Some true);
  let b = Core.Verdict.assess_recovery ~last_fault:10 ~within:5 v in
  check Alcotest.bool "missed window" true (b.Core.Verdict.recovered = Some false);
  check Alcotest.bool "ttr" true (Core.Verdict.time_to_recover ~last_fault:10 v = Some 20);
  let unsafe = { v with Core.Verdict.safe = false } in
  check Alcotest.bool "unsafe never recovers" true
    ((Core.Verdict.assess_recovery ~last_fault:10 ~within:100 unsafe).Core.Verdict.recovered
     = Some false);
  check Alcotest.bool "unsafe has no ttr" true
    (Core.Verdict.time_to_recover ~last_fault:10 unsafe = None)

let test_recovery_verdict_edges () =
  let v =
    {
      Core.Verdict.safe = true; complete = true; deadlocked = false; steps = 40;
      messages = 10; first_violation = None; completed_at = Some 30; recovered = None;
      stabilised = None;
    }
  in
  (* A claimed fault beyond the trace end never landed: that is a
     vacuous non-recovery, not a pass, and it has no recovery time. *)
  let late = Core.Verdict.assess_recovery ~last_fault:41 ~within:100 v in
  check Alcotest.bool "fault beyond trace: not recovered" true
    (late.Core.Verdict.recovered = Some false);
  check Alcotest.bool "fault beyond trace: no ttr" true
    (Core.Verdict.time_to_recover ~last_fault:41 v = None);
  (* last_fault exactly at the trace end still counts as landed, and
     a run that had already completed before it recovered for free. *)
  let at_end = Core.Verdict.assess_recovery ~last_fault:40 ~within:0 v in
  check Alcotest.bool "fault at trace end assessable" true
    (at_end.Core.Verdict.recovered = Some true);
  check Alcotest.bool "completed before the fault: ttr 0" true
    (Core.Verdict.time_to_recover ~last_fault:40 v = Some 0);
  (* within = 0 is the defined boundary "completed at the fault". *)
  let boundary = Core.Verdict.assess_recovery ~last_fault:30 ~within:0 v in
  check Alcotest.bool "within=0, completed at fault: recovered" true
    (boundary.Core.Verdict.recovered = Some true);
  let missed = Core.Verdict.assess_recovery ~last_fault:29 ~within:0 v in
  check Alcotest.bool "within=0, completed after fault: missed" true
    (missed.Core.Verdict.recovered = Some false);
  check Alcotest.bool "negative last_fault raises" true
    (match Core.Verdict.assess_recovery ~last_fault:(-1) ~within:5 v with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check Alcotest.bool "negative within raises" true
    (match Core.Verdict.assess_recovery ~last_fault:1 ~within:(-5) v with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check Alcotest.bool "negative last_fault raises in ttr" true
    (match Core.Verdict.time_to_recover ~last_fault:(-1) v with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_stabilisation_verdict () =
  let v =
    {
      Core.Verdict.safe = true; complete = true; deadlocked = false; steps = 40;
      messages = 10; first_violation = None; completed_at = Some 30; recovered = None;
      stabilised = None;
    }
  in
  check Alcotest.bool "stabilised inside window" true
    ((Core.Verdict.assess_stabilisation ~within:30 v).Core.Verdict.stabilised = Some true);
  check Alcotest.bool "missed by one" true
    ((Core.Verdict.assess_stabilisation ~within:29 v).Core.Verdict.stabilised = Some false);
  check Alcotest.bool "tts" true (Core.Verdict.time_to_stabilise v = Some 30);
  let unsafe = { v with Core.Verdict.safe = false } in
  check Alcotest.bool "unsafe never stabilises" true
    ((Core.Verdict.assess_stabilisation ~within:100 unsafe).Core.Verdict.stabilised
     = Some false);
  check Alcotest.bool "unsafe has no tts" true
    (Core.Verdict.time_to_stabilise unsafe = None);
  check Alcotest.bool "negative within raises" true
    (match Core.Verdict.assess_stabilisation ~within:(-1) v with
    | exception Invalid_argument _ -> true
    | _ -> false)

let qsuite = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "faults"
    [
      ( "plans",
        [
          Alcotest.test_case "capability rejection" `Quick test_capability_rejection;
          Alcotest.test_case "malformed rejected" `Quick test_malformed_rejected;
        ]
        @ qsuite [ prop_random_plans_validate; prop_plan_json_roundtrip ] );
      ( "corrupt-state",
        [
          Alcotest.test_case "needs a declared space" `Quick test_corrupt_needs_space;
          Alcotest.test_case "opt-in draw stream" `Quick test_corrupt_absent_from_default_stream;
          Alcotest.test_case "receiver corruptions drawn" `Quick
            test_random_draws_receiver_corruptions;
          Alcotest.test_case "injected and survivable" `Quick test_corrupt_state_injected;
          Alcotest.test_case "shrinks index toward 0" `Quick test_shrink_corrupt_index_toward_zero;
        ]
        @ qsuite [ prop_corrupt_random_plans_validate; prop_corrupt_plan_json_roundtrip ] );
      ( "injection",
        [
          Alcotest.test_case "empty plan transparent" `Quick test_empty_plan_transparent;
          Alcotest.test_case "drop-burst accounting" `Quick test_active_drop_accounting;
          Alcotest.test_case "crash-restart resets" `Quick test_crash_restart_resets_process;
        ]
        @ qsuite [ prop_injected_moves_legal ] );
      ( "shrinking",
        [
          Alcotest.test_case "reduces to one event" `Quick test_shrink_to_single_event;
          Alcotest.test_case "non-failing entry unchanged" `Quick test_shrink_requires_failing_entry;
          Alcotest.test_case "candidates stay legal" `Quick test_shrink_never_emits_illegal;
        ] );
      ( "soak",
        [
          Alcotest.test_case "jobs invariant" `Quick test_soak_jobs_invariant;
          Alcotest.test_case "report shape" `Quick test_soak_report_shape;
          Alcotest.test_case "wall budget truncates" `Quick test_soak_wall_budget_truncates;
          Alcotest.test_case "stab battery jobs invariant" `Quick test_stab_battery_jobs_invariant;
        ] );
      ( "guards",
        [
          Alcotest.test_case "explore state budget" `Quick test_explore_state_budget;
          Alcotest.test_case "attack wall budget" `Quick test_attack_wall_budget;
          Alcotest.test_case "runner wall budget" `Quick test_runner_wall_budget;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "verdict semantics" `Quick test_recovery_verdict;
          Alcotest.test_case "trace-end and zero-window edges" `Quick test_recovery_verdict_edges;
          Alcotest.test_case "stabilisation semantics" `Quick test_stabilisation_verdict;
        ] );
    ]

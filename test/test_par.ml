(* Tests for the multicore fan-out: Par.map must be a drop-in
   List.map at every job count, and the sweeps built on it must
   produce bit-identical reports whether they run on one domain or
   several. *)

module Par = Core.Par

let check = Alcotest.check

let test_map_is_list_map () =
  let xs = List.init 100 Fun.id in
  let f x = (x * x) + 1 in
  List.iter
    (fun jobs ->
      check Alcotest.(list int)
        (Printf.sprintf "jobs=%d" jobs)
        (List.map f xs) (Par.map ~jobs f xs))
    [ 1; 2; 4; 7 ]

let test_map_empty_and_singleton () =
  check Alcotest.(list int) "empty" [] (Par.map ~jobs:4 (fun x -> x) []);
  check Alcotest.(list int) "singleton" [ 42 ] (Par.map ~jobs:4 (fun x -> x + 1) [ 41 ])

let test_map_more_jobs_than_tasks () =
  check Alcotest.(list int) "jobs > n" [ 2; 3 ] (Par.map ~jobs:16 (fun x -> x + 1) [ 1; 2 ])

exception Boom of int

let test_map_propagates_exception () =
  List.iter
    (fun jobs ->
      match Par.map ~jobs (fun x -> if x = 13 then raise (Boom x) else x) (List.init 40 Fun.id) with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom 13 -> ())
    [ 1; 4 ]

let test_map_reentrant_across_batches () =
  (* The pool is persistent: repeated batches must reuse it cleanly. *)
  for round = 1 to 5 do
    let xs = List.init 20 (fun i -> (round * 100) + i) in
    check Alcotest.(list int) "round" (List.map succ xs) (Par.map ~jobs:3 succ xs)
  done

let test_default_jobs_positive () =
  check Alcotest.bool "positive" true (Par.default_jobs () >= 1)

let test_census_jobs_invariant () =
  let r1 = Core.Census.run ~samples:25 ~jobs:1 () in
  let r4 = Core.Census.run ~samples:25 ~jobs:4 () in
  check Alcotest.bool "reports identical" true (r1 = r4)

let test_proba_jobs_invariant () =
  let p = Protocols.Counting.resend Channel.Chan.Reorder_dup ~domain:2 in
  let e jobs =
    Core.Proba.estimate p ~input:[ 0; 1 ] ~strategy:(Kernel.Strategy.fair_random ()) ~trials:20
      ~max_steps:2_000 ~jobs ()
  in
  check Alcotest.bool "estimates identical" true (e 1 = e 4)

let test_bounds_jobs_invariant () =
  let p = Protocols.Norep.del ~m:2 in
  let m jobs =
    Core.Bounds.measure p
      ~xs:[ [ 0 ]; [ 1 ]; [ 0; 1 ] ]
      ~strategy:(Kernel.Strategy.fair_random ()) ~seeds:[ 1; 2 ] ~max_steps:2_000 ~jobs ()
  in
  check Alcotest.bool "measurements identical" true (m 1 = m 4)

let test_attack_jobs_invariant () =
  (* The all-pairs attack sweep shares one Runstate store per input
     across domains; outcomes, witness, and the rendered report must
     be bit-identical at every job count. *)
  let p = Protocols.Norep.del ~m:2 in
  let xs = Seqspace.Norep.enumerate ~m:2 in
  let run jobs =
    Core.Attack.search p ~xs ~depth:200 ~max_sends_per_sender:3 ~max_sends_per_receiver:3 ~jobs
      ()
  in
  let render (outcomes, w) =
    Stdx.Json.to_string (Stdx.Report.to_json (Core.Attack.search_report outcomes w))
  in
  let r1 = run 1 in
  List.iter
    (fun jobs ->
      let r = run jobs in
      check Alcotest.bool (Printf.sprintf "outcomes identical at jobs=%d" jobs) true (r1 = r);
      check Alcotest.string
        (Printf.sprintf "rendered report identical at jobs=%d" jobs)
        (render r1) (render r))
    [ 2; 4; 7 ]

let test_attack_symm_jobs_invariant () =
  (* The symmetry-quotiented sweep adds a layer on top: representatives
     fan out over domains and outcomes are expanded back per pair.
     Par.map's order preservation must make the expanded list — and its
     rendered report — bit-identical at every job count, and identical
     to the unquotiented sweep. *)
  let p = Protocols.Norep.del ~m:3 in
  let xs = Seqspace.Norep.enumerate ~m:3 in
  let run ~symm jobs =
    Core.Attack.search p ~xs ~depth:200 ~max_sends_per_sender:3 ~max_sends_per_receiver:3
      ~symm ~jobs ()
  in
  let render (outcomes, w) =
    Stdx.Json.to_string (Stdx.Report.to_json (Core.Attack.search_report outcomes w))
  in
  let r1 = run ~symm:true 1 in
  List.iter
    (fun jobs ->
      check Alcotest.string
        (Printf.sprintf "symm sweep identical at jobs=%d" jobs)
        (render r1)
        (render (run ~symm:true jobs)))
    [ 2; 4; 7 ];
  check Alcotest.string "symm report = plain report" (render (run ~symm:false 1)) (render r1)

let () =
  Alcotest.run "par"
    [
      ( "map",
        [
          Alcotest.test_case "equals List.map" `Quick test_map_is_list_map;
          Alcotest.test_case "empty/singleton" `Quick test_map_empty_and_singleton;
          Alcotest.test_case "jobs > tasks" `Quick test_map_more_jobs_than_tasks;
          Alcotest.test_case "exception propagation" `Quick test_map_propagates_exception;
          Alcotest.test_case "pool reuse" `Quick test_map_reentrant_across_batches;
          Alcotest.test_case "default jobs" `Quick test_default_jobs_positive;
        ] );
      ( "sweeps are jobs-invariant",
        [
          Alcotest.test_case "census" `Quick test_census_jobs_invariant;
          Alcotest.test_case "proba" `Quick test_proba_jobs_invariant;
          Alcotest.test_case "bounds" `Quick test_bounds_jobs_invariant;
          Alcotest.test_case "attack sweep" `Quick test_attack_jobs_invariant;
          Alcotest.test_case "symm attack sweep" `Quick test_attack_symm_jobs_invariant;
        ] );
    ]

(* The symmetry quotient: first-occurrence canonicalisation laws, the
   equivariance of the engines under alphabet relabelling, and the
   baseline-parity pins for [~symm:false]. *)

module Symm = Kernel.Symm
module Attack = Core.Attack
module Chan = Channel.Chan

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let m = 4

(* A uniform permutation of [0, m) from a seed. *)
let perm_of_seed seed =
  let a = Array.init m Fun.id in
  Stdx.Rng.shuffle (Stdx.Rng.create seed) a;
  a

let seq_gen = QCheck.(list_of_size Gen.(0 -- 6) (int_range 0 (m - 1)))

(* ------------------------- canonicalisation laws ------------------------- *)

let prop_canon_is_perm_image =
  QCheck.Test.make ~name:"canon_seqs returns its own permutation's image"
    QCheck.(pair seq_gen seq_gen)
    (fun (x1, x2) ->
      let cs, pi = Symm.canon_seqs ~m [ x1; x2 ] in
      Symm.is_perm pi && cs = List.map (Symm.apply_seq pi) [ x1; x2 ])

let prop_canon_idempotent =
  QCheck.Test.make ~name:"canonicalisation is idempotent"
    QCheck.(pair seq_gen seq_gen)
    (fun (x1, x2) ->
      let cs, _ = Symm.canon_seqs ~m [ x1; x2 ] in
      let cs', pi' = Symm.canon_seqs ~m cs in
      cs' = cs && pi' = Symm.identity m)

let prop_canon_orbit_invariant =
  QCheck.Test.make ~name:"canonical image is constant on orbits"
    QCheck.(pair (pair seq_gen seq_gen) small_int)
    (fun ((x1, x2), seed) ->
      let pi = perm_of_seed seed in
      let key, _ = Symm.canon_pair ~m x1 x2 in
      let key', _ =
        Symm.canon_pair ~m (Symm.apply_seq pi x1) (Symm.apply_seq pi x2)
      in
      key = key')

let prop_canon_distinguishes_non_orbit =
  (* Soundness in the other direction: equal canonical images really do
     mean some permutation maps one pair onto the other. *)
  QCheck.Test.make ~name:"equal canonical images witness a relabelling"
    QCheck.(pair (pair seq_gen seq_gen) (pair seq_gen seq_gen))
    (fun ((x1, x2), (y1, y2)) ->
      let kx, px = Symm.canon_pair ~m x1 x2 in
      let ky, py = Symm.canon_pair ~m y1 y2 in
      kx <> ky
      ||
      let map_through pi = Symm.apply_seq (Symm.invert py) (Symm.apply_seq pi x1) in
      ignore (map_through px);
      (* π = py⁻¹ ∘ px maps (x1, x2) onto (y1, y2) componentwise. *)
      let f x = Symm.apply_seq (Symm.invert py) (Symm.apply_seq px x) in
      f x1 = y1 && f x2 = y2)

let test_invert_roundtrip () =
  List.iter
    (fun seed ->
      let pi = perm_of_seed seed in
      let inv = Symm.invert pi in
      for i = 0 to m - 1 do
        check Alcotest.int "inv(pi(i)) = i" i (Symm.apply inv (Symm.apply pi i))
      done)
    [ 1; 2; 3; 4; 5 ]

let test_canon_rejects_out_of_domain () =
  Alcotest.check_raises "symbol out of domain"
    (Invalid_argument "Symm.canon_seqs: symbol outside [0, m)") (fun () ->
      ignore (Symm.canon_seqs ~m:2 [ [ 0; 2 ] ]))

(* ------------------------- engine equivariance ------------------------- *)

(* Relabelling the input of an equivariant protocol relabels the whole
   reachable state graph: same state count, same transition count, same
   completion structure. *)
let prop_reachable_equivariant =
  QCheck.Test.make ~count:20 ~name:"reachable stats invariant under relabelling"
    QCheck.(pair (list_of_size Gen.(1 -- 3) (int_range 0 2)) small_int)
    (fun (x, seed) ->
      let p = Protocols.Norep.dup ~m:3 in
      let a = Array.init 3 Fun.id in
      Stdx.Rng.shuffle (Stdx.Rng.create seed) a;
      let stats input =
        Kernel.Explore.reachable p ~input:(Array.of_list input) ~depth:6 ()
      in
      stats x = stats (Symm.apply_seq a x))

let strip = function
  | Attack.Witness w -> `W (w.Attack.kind, w.Attack.depth, w.Attack.states_explored)
  | Attack.No_violation { closed; states_explored } -> `N (closed, states_explored)

let prop_search_pair_orbit_invariant =
  (* A symmetry-quotiented pair search must answer identically (same
     verdict, same BFS-minimal depth, same state count) on every member
     of an orbit — the searched representative is shared. *)
  QCheck.Test.make ~count:15 ~name:"search_pair ~symm invariant across an orbit"
    QCheck.(pair (pair seq_gen seq_gen) small_int)
    (fun ((x1, x2), seed) ->
      QCheck.assume (x1 <> [] && x2 <> []);
      let p = Protocols.Norep.dup ~m in
      let pi = perm_of_seed seed in
      let run a b =
        strip
          (Attack.search_pair p ~x1:a ~x2:b ~depth:24 ~max_states:20_000 ~symm:true ())
      in
      run x1 x2 = run (Symm.apply_seq pi x1) (Symm.apply_seq pi x2))

let test_symm_sweep_matches_nosymm () =
  (* The quotiented sweep must reproduce the plain sweep's outcome list
     exactly — same pairs, same order, same verdicts. *)
  let p = Protocols.Norep.del ~m:2 in
  let xs = Seqspace.Norep.enumerate ~m:2 in
  let run ~symm =
    let outcomes, _ =
      Attack.search p ~xs ~depth:200 ~max_sends_per_sender:3 ~max_sends_per_receiver:3
        ~symm ()
    in
    List.map (fun (a, b, o) -> (a, b, strip o)) outcomes
  in
  check Alcotest.bool "symm sweep = plain sweep" true (run ~symm:true = run ~symm:false)

let test_symm_witness_relabels_back () =
  (* A witness found on the canonical representative must come back
     expressed over the *original* alphabet: searching the relabelled
     pair (1,0)/(0,1) of the counting protocol yields the E2 witness
     with its moves mapped through π⁻¹, and the original inputs. *)
  let p = Protocols.Counting.protocol_on Chan.Reorder_dup ~domain:2 in
  let w =
    match Attack.search_pair p ~x1:[ 1; 0 ] ~x2:[ 0; 1 ] ~symm:true () with
    | Attack.Witness w -> w
    | Attack.No_violation _ -> Alcotest.fail "expected a witness"
  in
  check Alcotest.bool "x1 preserved" true (w.Attack.x1 = [ 1; 0 ]);
  check Alcotest.bool "x2 preserved" true (w.Attack.x2 = [ 0; 1 ]);
  check Alcotest.int "depth matches E2" 4 w.Attack.depth;
  check Alcotest.int "states match E2" 9 w.Attack.states_explored;
  (* The replayed witness must actually violate safety on the original
     input — the relabelled path is a real schedule, not bookkeeping. *)
  let violated_run, input =
    match w.Attack.kind with
    | Attack.Safety { violated_run } ->
        (violated_run, if violated_run = 1 then w.Attack.x1 else w.Attack.x2)
    | Attack.Starvation _ -> Alcotest.fail "expected safety"
  in
  let moves = Attack.run_moves w ~which:violated_run in
  let r =
    Kernel.Runner.run p ~input:(Array.of_list input)
      ~strategy:(Kernel.Strategy.scripted moves) ~rng:(Stdx.Rng.create 1)
      ~max_steps:(List.length moves + 1)
      ()
  in
  check Alcotest.bool "relabelled witness replays" true
    (Kernel.Trace.first_safety_violation r.Kernel.Runner.trace <> None)

let test_symm_noop_without_equivariance () =
  (* A protocol declaring no equivariance must be untouched by ~symm. *)
  let p = Protocols.Stenning.protocol_on Chan.Reorder_dup ~domain:2 ~max_len:2 in
  let run ~symm =
    strip (Attack.search_pair p ~x1:[ 1; 0 ] ~x2:[ 0; 1 ] ~depth:200 ~symm ())
  in
  check Alcotest.bool "stenning unaffected" true (run ~symm:true = run ~symm:false)

(* ------------------------- baseline parity (~symm:false) ------------------------- *)

(* The PR3 engine state counts, re-pinned through the explicit opt-out:
   with the quotient disabled the succinct-frontier engine must walk
   exactly the PR3 spaces. *)

let test_e2_parity_nosymm () =
  let p = Protocols.Counting.protocol_on Chan.Reorder_dup ~domain:2 in
  match Attack.search_pair p ~x1:[ 0; 1 ] ~x2:[ 1; 0 ] ~symm:false () with
  | Attack.Witness w -> check Alcotest.int "e2 states" 9 w.Attack.states_explored
  | Attack.No_violation _ -> Alcotest.fail "expected the E2 witness"

let test_e3_parity_nosymm () =
  match
    Attack.search_pair (Protocols.Norep.del ~m:2) ~x1:[ 0; 1 ] ~x2:[ 0; 0 ] ~depth:200
      ~max_sends_per_sender:4 ~max_sends_per_receiver:4 ~symm:false ()
  with
  | Attack.Witness w -> check Alcotest.int "e3 states" 4084 w.Attack.states_explored
  | Attack.No_violation _ -> Alcotest.fail "expected the E3 witness"

let test_e10_parity_nosymm () =
  let p =
    Protocols.Stenning_mod.protocol_on (Chan.Bounded_reorder { lag = 1 }) ~domain:2
      ~header_space:2
  in
  match
    Attack.search_single p ~x:[ 0; 0; 1 ] ~depth:80 ~max_sends_per_sender:8
      ~max_sends_per_receiver:8 ~allow_drops:false ~symm:false ()
  with
  | Attack.Witness w -> check Alcotest.int "e10 states" 69 w.Attack.states_explored
  | Attack.No_violation _ -> Alcotest.fail "expected the E10 witness"

let test_orbit_reduction_counts () =
  (* The m! win the quotient is for: the 20 eligible m=3 pairs fall
     into far fewer orbits, and every orbit has a canonical member. *)
  let xs = Seqspace.Norep.enumerate ~m:3 in
  let pairs = Attack.eligible_pairs ~xs in
  let orbits = Hashtbl.create 16 in
  List.iter
    (fun (x1, x2) ->
      let key, _ = Symm.canon_pair ~m:3 x1 x2 in
      Hashtbl.replace orbits key ())
    pairs;
  let n_orbits = Hashtbl.length orbits in
  check Alcotest.bool "orbits strictly fewer than pairs" true
    (n_orbits < List.length pairs);
  Hashtbl.iter
    (fun (c1, c2) () ->
      let (c1', c2'), _ = Symm.canon_pair ~m:3 c1 c2 in
      check Alcotest.bool "orbit keys are canonical" true (c1' = c1 && c2' = c2))
    orbits

(* ------------------------- the swap quotient ------------------------- *)

(* ~symm now composes the alphabet quotient with the joint-space run
   swap: for a swap-asymmetric pair only one ordering is searched and
   the other's outcome is mirrored back.  The composition must stay
   invisible — same outcome lists as the plain sweep — while strictly
   shrinking the representative set. *)

let test_swap_sweep_matches_plain () =
  let p = Protocols.Norep.del ~m:3 in
  let xs = Seqspace.Norep.enumerate ~m:3 in
  let run ~symm ~swap_symm =
    let outcomes, _ =
      Attack.search p ~xs ~depth:200 ~max_sends_per_sender:3 ~max_sends_per_receiver:3
        ~symm ~swap_symm ()
    in
    List.map (fun (a, b, o) -> (a, b, strip o)) outcomes
  in
  let plain = run ~symm:false ~swap_symm:true in
  check Alcotest.bool "composed quotient = plain sweep" true
    (run ~symm:true ~swap_symm:true = plain);
  check Alcotest.bool "perm-only quotient = plain sweep" true
    (run ~symm:true ~swap_symm:false = plain)

let test_swap_sweep_witness_parity () =
  (* Witness outcomes survive the mirror: a sweep whose pairs include
     safety witnesses (the counting protocol beyond its bound) reports
     the same verdict, violated run, depth, and state count whether the
     ordering searched was the literal one or its swap image. *)
  let p = Protocols.Counting.protocol_on Chan.Reorder_dup ~domain:2 in
  let xs = [ [ 0; 1 ]; [ 1; 0 ]; [ 0 ]; [ 1 ] ] in
  let run ~symm =
    let outcomes, _ = Attack.search p ~xs ~depth:24 ~symm () in
    List.map (fun (a, b, o) -> (a, b, strip o)) outcomes
  in
  check Alcotest.bool "witness sweep: quotient = plain" true
    (run ~symm:true = run ~symm:false)

let test_swap_artifact_bytes () =
  (* The acceptance contract, engine-level: quotiented and plain sweeps
     of the closed fixture write byte-identical artifacts. *)
  let p = Protocols.Norep.del ~m:2 in
  let xs = [ [ 0; 1 ]; [ 1; 0 ]; [ 0 ]; [ 1 ] ] in
  let bytes ~symm =
    let outcomes, witness = Attack.search p ~xs ~depth:64 ~symm () in
    Stdx.Json.to_string (Stdx.Report.to_json (Attack.search_report outcomes witness))
  in
  check Alcotest.string "artifact bytes" (bytes ~symm:false) (bytes ~symm:true)

let test_swap_reduction_m4 () =
  (* The strict win on the E14 space: composing the run swap shrinks
     the m=4 representative set from 106 perm-orbits to 91, over the
     1884 eligible pairs.  Composed keys are fixpoints: the canonical
     pair canonicalises to itself, unswapped. *)
  let m = 4 in
  let xs = Seqspace.Norep.enumerate ~m in
  let pairs = Attack.eligible_pairs ~xs in
  let perm_orbits = Hashtbl.create 256 in
  let swap_orbits = Hashtbl.create 256 in
  List.iter
    (fun (x1, x2) ->
      let key, _ = Symm.canon_pair ~m x1 x2 in
      Hashtbl.replace perm_orbits key ();
      let skey, _, _ = Attack.canon_pair_swap ~m x1 x2 in
      Hashtbl.replace swap_orbits skey ())
    pairs;
  check Alcotest.int "eligible pairs" 1884 (List.length pairs);
  check Alcotest.int "perm-only representatives" 106 (Hashtbl.length perm_orbits);
  check Alcotest.int "composed representatives" 91 (Hashtbl.length swap_orbits);
  check Alcotest.bool "strict reduction" true
    (Hashtbl.length swap_orbits < Hashtbl.length perm_orbits);
  Hashtbl.iter
    (fun (c1, c2) () ->
      let (c1', c2'), _, swapped = Attack.canon_pair_swap ~m c1 c2 in
      check Alcotest.bool "composed keys are fixpoints" true
        (c1' = c1 && c2' = c2 && not swapped))
    swap_orbits

let () =
  Alcotest.run "symm"
    [
      ( "canonicalisation laws",
        [
          qtest prop_canon_is_perm_image;
          qtest prop_canon_idempotent;
          qtest prop_canon_orbit_invariant;
          qtest prop_canon_distinguishes_non_orbit;
          Alcotest.test_case "invert roundtrip" `Quick test_invert_roundtrip;
          Alcotest.test_case "domain validation" `Quick test_canon_rejects_out_of_domain;
        ] );
      ( "engine equivariance",
        [
          qtest prop_reachable_equivariant;
          qtest prop_search_pair_orbit_invariant;
          Alcotest.test_case "symm sweep = plain sweep" `Quick test_symm_sweep_matches_nosymm;
          Alcotest.test_case "witness relabels back" `Quick test_symm_witness_relabels_back;
          Alcotest.test_case "no-op without equivariance" `Quick test_symm_noop_without_equivariance;
          Alcotest.test_case "orbit reduction counts" `Quick test_orbit_reduction_counts;
        ] );
      ( "baseline parity",
        [
          Alcotest.test_case "e2 states with symm off" `Quick test_e2_parity_nosymm;
          Alcotest.test_case "e3 states with symm off" `Quick test_e3_parity_nosymm;
          Alcotest.test_case "e10 states with symm off" `Quick test_e10_parity_nosymm;
        ] );
      ( "swap quotient",
        [
          Alcotest.test_case "composed sweep = plain" `Quick test_swap_sweep_matches_plain;
          Alcotest.test_case "witness sweep parity" `Quick test_swap_sweep_witness_parity;
          Alcotest.test_case "artifact bytes identical" `Quick test_swap_artifact_bytes;
          Alcotest.test_case "strict m=4 reduction" `Quick test_swap_reduction_m4;
        ] );
    ]

(* Tests for the self-stabilisation layer: the perturb seam and its
   validation, corrupt moves through the simulator, multi-root
   exploration, and the Core.Stab sweep/search pair. *)

module Protocol = Kernel.Protocol
module Global = Kernel.Global
module Move = Kernel.Move
module Sim = Kernel.Sim
module Explore = Kernel.Explore
module Stab = Core.Stab
module Runstate = Core.Attack.Runstate

let check = Alcotest.check

let abp () = Protocols.Abp.protocol ~domain:2
let stab_p () = Protocols.Abp_stab.protocol ~domain:2 ~max_len:4

(* ------------------------- the perturb seam ------------------------- *)

let test_perturb_validates () =
  let input = [| 0; 1; 1; 0 |] in
  check Alcotest.bool "abp perturb well-formed" true
    (Protocol.validate_perturb (abp ()) ~input = Ok ());
  check Alcotest.bool "abp-stab perturb well-formed" true
    (Protocol.validate_perturb (stab_p ()) ~input = Ok ());
  (* No seam is fine (nothing to validate) ... *)
  check Alcotest.bool "no seam validates" true
    (Protocol.validate_perturb (Protocols.Trivial.protocol ~domain:2) ~input = Ok ());
  (* ... and declares no space. *)
  check Alcotest.bool "no seam, no space" true
    (Protocol.corrupt_space (Protocols.Trivial.protocol ~domain:2) ~input = None)

let test_corrupt_space_sizes () =
  let input = [| 0; 1; 1; 0 |] in
  (* abp-stab: cursor in [0..max_len] x {fresh, started}. *)
  check Alcotest.bool "abp-stab space" true
    (Protocol.corrupt_space (stab_p ()) ~input = Some (5, 2));
  (* abp: (next in [0..n]) x bit, and expected-bit x started. *)
  check Alcotest.bool "abp space" true
    (Protocol.corrupt_space (abp ()) ~input = Some (10, 4));
  check Alcotest.int "product space" 10
    (List.length (Stab.space (stab_p ()) ~input))

let test_designated_state_first () =
  (* Index 0 of each enumeration is the designated boot state: the
     corrupt move with index 0 must behave like a clean start. *)
  let p = stab_p () in
  let input = [| 0; 1 |] in
  let g0 = Global.initial p ~input in
  let g = Sim.apply p (Sim.apply p g0 (Move.Corrupt_sender 0)) (Move.Corrupt_receiver 0) in
  (* Drive both to completion under the same schedule; the corrupted
     copy only differs in its time counter. *)
  let drive g =
    let g = ref g in
    for _ = 1 to 50 do
      match Sim.enabled p !g with
      | m :: _ -> g := Sim.apply p !g m
      | [] -> ()
    done;
    Global.output !g
  in
  check Alcotest.bool "same output from designated corrupt" true (drive g0 = drive g)

(* ------------------------- corrupt moves ------------------------- *)

let test_corrupt_move_guards () =
  let input = [| 0; 1 |] in
  let raises f = match f () with exception Sim.Model_violation _ -> true | _ -> false in
  (* No seam: the move is a model violation, like an illegal symbol. *)
  let trivial = Protocols.Trivial.protocol ~domain:2 in
  check Alcotest.bool "no seam rejected" true
    (raises (fun () ->
         Sim.apply trivial (Global.initial trivial ~input) (Move.Corrupt_sender 0)));
  (* Out-of-range index. *)
  let p = stab_p () in
  check Alcotest.bool "index out of range rejected" true
    (raises (fun () -> Sim.apply p (Global.initial p ~input) (Move.Corrupt_sender 99)));
  check Alcotest.bool "receiver index out of range rejected" true
    (raises (fun () -> Sim.apply p (Global.initial p ~input) (Move.Corrupt_receiver 2)))

let test_corrupt_never_enabled () =
  (* Corrupt moves are roots/injections, never scheduled choices. *)
  let p = stab_p () in
  let g = Global.initial p ~input:[| 0; 1 |] in
  check Alcotest.bool "not listed" false
    (List.exists
       (function Move.Corrupt_sender _ | Move.Corrupt_receiver _ -> true | _ -> false)
       (Sim.enabled p g))

let test_runstate_rejects_corrupt_transitions () =
  let p = stab_p () in
  let rs = Runstate.create p ~x:[ 0; 1 ] in
  let g = Global.initial p ~input:[| 0; 1 |] in
  let id = Runstate.seed rs g in
  check Alcotest.bool "corrupt is not a transition" true
    (match Runstate.apply rs g id (Move.Corrupt_sender 1) with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------- multi-root explore ------------------------- *)

let test_explore_multi_root () =
  let p = stab_p () in
  let input = [| 0; 1 |] in
  let single = Explore.reachable p ~input ~depth:8 () in
  let starts =
    List.map
      (fun (s, r) -> Global.initial ~sender:s.Protocol.proc ~receiver:r.Protocol.proc p ~input)
      (Stab.space p ~input)
  in
  let multi = Explore.reachable p ~input ~depth:8 ~starts () in
  check Alcotest.bool "union space at least as large" true
    (multi.Explore.states >= single.Explore.states);
  (* Duplicate roots dedup down to the single-root space. *)
  let dup = Explore.reachable p ~input ~depth:8 ~starts:[ Global.initial p ~input; Global.initial p ~input ] () in
  check Alcotest.int "duplicate roots dedup" single.Explore.states dup.Explore.states

(* ------------------------- sweep ------------------------- *)

let sweep ?(jobs = 1) () =
  Stab.sweep ~jobs (stab_p ()) ~input:[| 0; 1; 1; 0 |] ~within:256 ~seed:7 ()

let test_sweep_stabilises () =
  let s = sweep () in
  check Alcotest.int "whole space swept" 10 s.Stab.space_size;
  check Alcotest.bool "all stabilised" true s.Stab.all_stabilised;
  (* Pinned worst case: the absolute-resync protocol from any corrupted
     cursor costs one wasted round trip before the first ack lands. *)
  check Alcotest.bool "worst tts" true (s.Stab.worst_tts = Some 62)

let test_sweep_jobs_invariant () =
  let show s =
    Stdx.Json.to_string (Stdx.Report.to_json (Stab.sweep_report s))
  in
  let r1 = show (sweep ~jobs:1 ()) in
  List.iter
    (fun j -> check Alcotest.string (Printf.sprintf "jobs %d identical" j) r1 (show (sweep ~jobs:j ())))
    [ 2; 4; 7 ]

let test_sweep_needs_seam () =
  check Alcotest.bool "no seam raises" true
    (match Stab.sweep (Protocols.Trivial.protocol ~domain:2) ~input:[| 0 |] ~within:8 ~seed:1 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------- search ------------------------- *)

let search p input =
  Stab.search ~depth:64 ~max_states:200_000 ~max_sends_per_sender:4
    ~max_sends_per_receiver:4 p ~input ()

let test_search_closes_stabilising () =
  match search (stab_p ()) [| 0; 1 |] with
  | Stab.No_violation { closed; states } ->
      check Alcotest.bool "closed" true closed;
      check Alcotest.bool "explored something" true (states > 0)
  | Stab.Violation _ -> Alcotest.fail "abp-stab must have no reachable violation"

let test_search_finds_abp_witness () =
  let p = abp () in
  let input = [| 0; 1 |] in
  match search p input with
  | Stab.No_violation _ -> Alcotest.fail "stock ABP must have a corrupted-start violation"
  | Stab.Violation w ->
      check Alcotest.bool "witness replays to a violation" true (Stab.replay p ~input w);
      (* Relabel-replayability: the same schedule violates safety on
         the permuted input. *)
      let pi = function 0 -> 1 | 1 -> 0 | d -> d in
      let eq = Option.get p.Protocol.symmetry in
      let w' = Stab.relabel_witness eq pi w in
      check Alcotest.bool "relabelled witness replays" true
        (Stab.replay p ~input:(Array.map pi input) w')

let test_sweep_report_shape () =
  let r = Stab.sweep_report (sweep ()) in
  check Alcotest.string "id" "stab" r.Stdx.Report.id;
  check Alcotest.bool "ok" true (r.Stdx.Report.ok = Some true);
  check Alcotest.bool "artifact validates" true
    (Result.is_ok
       (Stdx.Report.validate_artifact (Stdx.Json.to_string (Stdx.Report.to_json r))))

let () =
  Alcotest.run "stab"
    [
      ( "perturb",
        [
          Alcotest.test_case "validates" `Quick test_perturb_validates;
          Alcotest.test_case "space sizes" `Quick test_corrupt_space_sizes;
          Alcotest.test_case "designated state first" `Quick test_designated_state_first;
        ] );
      ( "moves",
        [
          Alcotest.test_case "guards" `Quick test_corrupt_move_guards;
          Alcotest.test_case "never enabled" `Quick test_corrupt_never_enabled;
          Alcotest.test_case "runstate rejects" `Quick test_runstate_rejects_corrupt_transitions;
        ] );
      ( "explore",
        [ Alcotest.test_case "multi-root union" `Quick test_explore_multi_root ] );
      ( "sweep",
        [
          Alcotest.test_case "stabilises with pinned worst tts" `Quick test_sweep_stabilises;
          Alcotest.test_case "jobs invariant" `Quick test_sweep_jobs_invariant;
          Alcotest.test_case "needs a seam" `Quick test_sweep_needs_seam;
          Alcotest.test_case "report shape" `Quick test_sweep_report_shape;
        ] );
      ( "search",
        [
          Alcotest.test_case "closes abp-stab" `Quick test_search_closes_stabilising;
          Alcotest.test_case "finds and replays abp witness" `Quick test_search_finds_abp_witness;
        ] );
    ]

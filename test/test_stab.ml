(* Tests for the self-stabilisation layer: the perturb seam and its
   validation, corrupt moves through the simulator, multi-root
   exploration, and the Core.Stab sweep/search pair. *)

module Protocol = Kernel.Protocol
module Global = Kernel.Global
module Move = Kernel.Move
module Sim = Kernel.Sim
module Explore = Kernel.Explore
module Stab = Core.Stab
module Runstate = Core.Attack.Runstate

let check = Alcotest.check

let abp () = Protocols.Abp.protocol ~domain:2
let stab_p () = Protocols.Abp_stab.protocol ~domain:2 ~max_len:4

(* ------------------------- the perturb seam ------------------------- *)

let test_perturb_validates () =
  let input = [| 0; 1; 1; 0 |] in
  check Alcotest.bool "abp perturb well-formed" true
    (Protocol.validate_perturb (abp ()) ~input = Ok ());
  check Alcotest.bool "abp-stab perturb well-formed" true
    (Protocol.validate_perturb (stab_p ()) ~input = Ok ());
  (* No seam is fine (nothing to validate) ... *)
  check Alcotest.bool "no seam validates" true
    (Protocol.validate_perturb (Protocols.Trivial.protocol ~domain:2) ~input = Ok ());
  (* ... and declares no space. *)
  check Alcotest.bool "no seam, no space" true
    (Protocol.corrupt_space (Protocols.Trivial.protocol ~domain:2) ~input = None)

let test_corrupt_space_sizes () =
  let input = [| 0; 1; 1; 0 |] in
  (* abp-stab: cursor in [0..max_len] x {fresh, started}. *)
  check Alcotest.bool "abp-stab space" true
    (Protocol.corrupt_space (stab_p ()) ~input = Some (5, 2));
  (* abp: (next in [0..n]) x bit, and expected-bit x started. *)
  check Alcotest.bool "abp space" true
    (Protocol.corrupt_space (abp ()) ~input = Some (10, 4));
  check Alcotest.int "product space" 10
    (List.length (Stab.space (stab_p ()) ~input))

let test_designated_state_first () =
  (* Index 0 of each enumeration is the designated boot state: the
     corrupt move with index 0 must behave like a clean start. *)
  let p = stab_p () in
  let input = [| 0; 1 |] in
  let g0 = Global.initial p ~input in
  let g = Sim.apply p (Sim.apply p g0 (Move.Corrupt_sender 0)) (Move.Corrupt_receiver 0) in
  (* Drive both to completion under the same schedule; the corrupted
     copy only differs in its time counter. *)
  let drive g =
    let g = ref g in
    for _ = 1 to 50 do
      match Sim.enabled p !g with
      | m :: _ -> g := Sim.apply p !g m
      | [] -> ()
    done;
    Global.output !g
  in
  check Alcotest.bool "same output from designated corrupt" true (drive g0 = drive g)

(* ------------------------- corrupt moves ------------------------- *)

let test_corrupt_move_guards () =
  let input = [| 0; 1 |] in
  let raises f = match f () with exception Sim.Model_violation _ -> true | _ -> false in
  (* No seam: the move is a model violation, like an illegal symbol. *)
  let trivial = Protocols.Trivial.protocol ~domain:2 in
  check Alcotest.bool "no seam rejected" true
    (raises (fun () ->
         Sim.apply trivial (Global.initial trivial ~input) (Move.Corrupt_sender 0)));
  (* Out-of-range index. *)
  let p = stab_p () in
  check Alcotest.bool "index out of range rejected" true
    (raises (fun () -> Sim.apply p (Global.initial p ~input) (Move.Corrupt_sender 99)));
  check Alcotest.bool "receiver index out of range rejected" true
    (raises (fun () -> Sim.apply p (Global.initial p ~input) (Move.Corrupt_receiver 2)))

let test_corrupt_never_enabled () =
  (* Corrupt moves are roots/injections, never scheduled choices. *)
  let p = stab_p () in
  let g = Global.initial p ~input:[| 0; 1 |] in
  check Alcotest.bool "not listed" false
    (List.exists
       (function Move.Corrupt_sender _ | Move.Corrupt_receiver _ -> true | _ -> false)
       (Sim.enabled p g))

let test_runstate_rejects_corrupt_transitions () =
  let p = stab_p () in
  let rs = Runstate.create p ~x:[ 0; 1 ] in
  let g = Global.initial p ~input:[| 0; 1 |] in
  let id = Runstate.seed rs g in
  check Alcotest.bool "corrupt is not a transition" true
    (match Runstate.apply rs g id (Move.Corrupt_sender 1) with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------- multi-root explore ------------------------- *)

let test_explore_multi_root () =
  let p = stab_p () in
  let input = [| 0; 1 |] in
  let single = Explore.reachable p ~input ~depth:8 () in
  let starts =
    List.map
      (fun (s, r) -> Global.initial ~sender:s.Protocol.proc ~receiver:r.Protocol.proc p ~input)
      (Stab.space p ~input)
  in
  let multi = Explore.reachable p ~input ~depth:8 ~starts () in
  check Alcotest.bool "union space at least as large" true
    (multi.Explore.states >= single.Explore.states);
  (* Duplicate roots dedup down to the single-root space. *)
  let dup = Explore.reachable p ~input ~depth:8 ~starts:[ Global.initial p ~input; Global.initial p ~input ] () in
  check Alcotest.int "duplicate roots dedup" single.Explore.states dup.Explore.states

(* ------------------------- sweep ------------------------- *)

let sweep ?(jobs = 1) () =
  Stab.sweep ~jobs (stab_p ()) ~input:[| 0; 1; 1; 0 |] ~within:256 ~seed:7 ()

let test_sweep_stabilises () =
  let s = sweep () in
  check Alcotest.int "whole space swept" 10 s.Stab.space_size;
  check Alcotest.bool "all stabilised" true s.Stab.all_stabilised;
  (* Pinned worst case: the absolute-resync protocol from any corrupted
     cursor costs one wasted round trip before the first ack lands. *)
  check Alcotest.bool "worst tts" true (s.Stab.worst_tts = Some 62)

let test_sweep_jobs_invariant () =
  let show s =
    Stdx.Json.to_string (Stdx.Report.to_json (Stab.sweep_report s))
  in
  let r1 = show (sweep ~jobs:1 ()) in
  List.iter
    (fun j -> check Alcotest.string (Printf.sprintf "jobs %d identical" j) r1 (show (sweep ~jobs:j ())))
    [ 2; 4; 7 ]

let test_sweep_needs_seam () =
  check Alcotest.bool "no seam raises" true
    (match Stab.sweep (Protocols.Trivial.protocol ~domain:2) ~input:[| 0 |] ~within:8 ~seed:1 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------- search ------------------------- *)

let search p input =
  Stab.search ~depth:64 ~max_states:200_000 ~max_sends_per_sender:4
    ~max_sends_per_receiver:4 p ~input ()

let test_search_closes_stabilising () =
  match search (stab_p ()) [| 0; 1 |] with
  | Stab.No_violation { closed; states } ->
      check Alcotest.bool "closed" true closed;
      check Alcotest.bool "explored something" true (states > 0)
  | Stab.Violation _ -> Alcotest.fail "abp-stab must have no reachable violation"

let test_search_finds_abp_witness () =
  let p = abp () in
  let input = [| 0; 1 |] in
  match search p input with
  | Stab.No_violation _ -> Alcotest.fail "stock ABP must have a corrupted-start violation"
  | Stab.Violation w ->
      check Alcotest.bool "witness replays to a violation" true (Stab.replay p ~input w);
      (* Relabel-replayability: the same schedule violates safety on
         the permuted input. *)
      let pi = function 0 -> 1 | 1 -> 0 | d -> d in
      let eq = Option.get p.Protocol.symmetry in
      let w' = Stab.relabel_witness eq pi w in
      check Alcotest.bool "relabelled witness replays" true
        (Stab.replay p ~input:(Array.map pi input) w')

let test_sweep_report_shape () =
  let r = Stab.sweep_report (sweep ()) in
  check Alcotest.string "id" "stab" r.Stdx.Report.id;
  check Alcotest.bool "ok" true (r.Stdx.Report.ok = Some true);
  check Alcotest.bool "artifact validates" true
    (Result.is_ok
       (Stdx.Report.validate_artifact (Stdx.Json.to_string (Stdx.Report.to_json r))))

let test_margins () =
  let s = sweep () in
  let s_margin, r_margin = Stab.margins s in
  check Alcotest.int "one row per sender start" 5 (List.length s_margin);
  check Alcotest.int "one row per receiver start" 2 (List.length r_margin);
  let points rows = List.fold_left (fun acc (_, n, _, _) -> acc + n) 0 rows in
  check Alcotest.int "sender rows cover the space" s.Stab.space_size (points s_margin);
  check Alcotest.int "receiver rows cover the space" s.Stab.space_size (points r_margin);
  let worst rows =
    List.fold_left
      (fun acc (_, _, _, wt) ->
        match (acc, wt) with
        | None, t -> t
        | Some a, Some t -> Some (max a t)
        | Some a, None -> Some a)
      None rows
  in
  check Alcotest.bool "sender marginal max = global worst" true
    (worst s_margin = s.Stab.worst_tts);
  check Alcotest.bool "receiver marginal max = global worst" true
    (worst r_margin = s.Stab.worst_tts)

(* ------------------------- the protocol families ------------------------- *)

(* Every seamed protocol in the registry, with the corrupt-space sizes
   the seams pin on input [0;1;1;0] (ladder on [0;1] in its small
   allowable set). *)
let input4 = [| 0; 1; 1; 0 |]

let ladder_small () =
  Protocols.Ladder.protocol
    ~xset:(Seqspace.Xset.All_upto { domain = 2; max_len = 2 })
    ~drop_budget:1

let families () =
  [
    ("abp", abp (), input4, Some (10, 4));
    ("abp-stab", stab_p (), input4, Some (5, 2));
    ("stenning", Protocols.Stenning.protocol ~domain:2 ~max_len:4, input4, Some (5, 1));
    ( "stenning-mod",
      Protocols.Stenning_mod.protocol_on Channel.Chan.Fifo_lossy ~domain:2 ~header_space:2,
      input4,
      Some (5, 2) );
    ( "stenning-stab",
      Protocols.Stenning_stab.protocol ~domain:2 ~max_len:4,
      input4,
      Some (5, 2) );
    ("go-back-n", Protocols.Go_back_n.protocol ~domain:2 ~window:2, input4, Some (5, 3));
    ( "gbn-stab",
      Protocols.Gbn_stab.protocol ~domain:2 ~max_len:4 ~window:2,
      input4,
      Some (5, 2) );
    ( "selective-repeat",
      Protocols.Selective_repeat.protocol ~domain:2 ~window:2,
      input4,
      (* base in [0..4]; clean + one poison offset x two data values. *)
      Some (5, 3) );
    (* sender: got_y in [0..k·w] with k=4, w=3; receiver: got_a in
       [0..kmax·w] with kmax=6 over the 7-element allowable set. *)
    ("ladder", ladder_small (), [| 0; 1 |], Some (13, 19));
  ]

let test_family_seams_validate () =
  List.iter
    (fun (name, p, input, space) ->
      check Alcotest.bool (name ^ " validates") true
        (Protocol.validate_perturb p ~input = Ok ());
      check Alcotest.bool (name ^ " space size") true
        (Protocol.corrupt_space p ~input = space))
    (families ())

let test_family_clean_boot_first () =
  (* Index 0 of each enumeration IS the clean boot state, checked by
     state encoding, not just behaviour. *)
  List.iter
    (fun (name, p, input, _) ->
      match Stab.space p ~input with
      | (s0, r0) :: _ ->
          check Alcotest.string (name ^ " sender index 0 = clean boot")
            (Kernel.Proc.encode (p.Protocol.make_sender ~input))
            (Kernel.Proc.encode s0.Protocol.proc);
          check Alcotest.string (name ^ " receiver index 0 = clean boot")
            (Kernel.Proc.encode (p.Protocol.make_receiver ()))
            (Kernel.Proc.encode r0.Protocol.proc)
      | [] -> Alcotest.failf "%s: empty corrupted-start space" name)
    (families ())

let prop_receiver_enumeration_written_invariant =
  (* The written-count convention, as a law: at every tape length the
     receiver enumeration has the same labels in the same order. *)
  QCheck.Test.make ~name:"receiver enumeration is written-invariant" ~count:100
    QCheck.(pair (int_bound 8) (int_bound 20))
    (fun (fi, written) ->
      let fams = families () in
      let _, p, _, _ = List.nth fams (fi mod List.length fams) in
      match p.Protocol.perturb with
      | None -> QCheck.assume_fail ()
      | Some pe ->
          let labels w = List.map (fun c -> c.Protocol.label) (pe.Protocol.receiver_states ~written:w) in
          labels written = labels 0)

(* Drive a run preferring deliveries so the pair makes real progress
   under a deterministic schedule. *)
let drive_until p g ~steps ~stop =
  (* Fair rotation through the four move kinds: every kind that stays
     enabled is taken infinitely often, so acks reach the sender even
     while it keeps refilling its own channel. *)
  let g = ref g in
  let n = ref 0 in
  while (not (stop !g)) && !n < steps do
    let moves = Sim.enabled p !g in
    let pick f = List.find_opt f moves in
    let wake_s = Some Move.Wake_sender in
    let to_r = pick (function Move.Deliver_to_receiver _ -> true | _ -> false) in
    let wake_r = Some Move.Wake_receiver in
    let to_s = pick (function Move.Deliver_to_sender _ -> true | _ -> false) in
    let order =
      match !n mod 4 with
      | 0 -> [ wake_s; to_r; wake_r; to_s ]
      | 1 -> [ to_r; wake_r; to_s; wake_s ]
      | 2 -> [ wake_r; to_s; wake_s; to_r ]
      | _ -> [ to_s; wake_s; to_r; wake_r ]
    in
    let m = Option.get (List.find_map Fun.id order) in
    g := Sim.apply p !g m;
    incr n
  done;
  !g

let test_midrun_receiver_corruption () =
  (* Corrupting the receiver mid-run draws from the enumeration at the
     live tape length: the tape survives untouched and the stabilising
     protocol still finishes the transmission. *)
  let p = Protocols.Gbn_stab.protocol ~domain:2 ~max_len:4 ~window:2 in
  let input = input4 in
  let g = Global.initial p ~input in
  let g = drive_until p g ~steps:500 ~stop:(fun g -> Global.output_length g >= 2) in
  check Alcotest.bool "made progress first" true (Global.output_length g >= 2);
  let before = Global.output g in
  (* Index 0 at the live length is the fresh-but-anchored state. *)
  let g' = Sim.apply p g (Move.Corrupt_receiver 0) in
  check Alcotest.bool "tape untouched by corruption" true (Global.output g' = before);
  let g' =
    drive_until p g' ~steps:2_000 ~stop:(fun g ->
        Global.output g = Array.to_list input)
  in
  check Alcotest.bool "still safe" true (Global.safety_ok g');
  check Alcotest.bool "still completes" true (Global.output g' = Array.to_list input)

let test_family_witnesses_relabel () =
  (* The aliasing families with data-independent corrupted starts:
     their witnesses replay, and relabel-replay on the permuted
     input.  (selective-repeat's poisoned buffers and ladder's
     rank-coding are outside the relabel guarantee by design.) *)
  let pi = function 0 -> 1 | 1 -> 0 | d -> d in
  List.iter
    (fun (name, p, input) ->
      match search p input with
      | Stab.No_violation _ ->
          Alcotest.failf "%s must have a corrupted-start violation" name
      | Stab.Violation w ->
          check Alcotest.bool (name ^ " witness replays") true (Stab.replay p ~input w);
          let eq = Option.get p.Protocol.symmetry in
          let w' = Stab.relabel_witness eq pi w in
          check Alcotest.bool (name ^ " relabelled witness replays") true
            (Stab.replay p ~input:(Array.map pi input) w'))
    [
      ( "stenning-mod",
        Protocols.Stenning_mod.protocol_on Channel.Chan.Fifo_lossy ~domain:2 ~header_space:2,
        input4 );
      ("go-back-n", Protocols.Go_back_n.protocol ~domain:2 ~window:2, input4);
    ]

let test_stabilising_families_close () =
  (* Both new stabilising variants: sweep converges everywhere and the
     capped BFS closes their corrupted-root spaces violation-free. *)
  List.iter
    (fun (name, p) ->
      let s = Stab.sweep p ~input:input4 ~within:256 ~seed:7 () in
      check Alcotest.bool (name ^ " all stabilised") true s.Stab.all_stabilised;
      match search p [| 0; 1 |] with
      | Stab.No_violation { closed; _ } -> check Alcotest.bool (name ^ " closed") true closed
      | Stab.Violation _ -> Alcotest.failf "%s must have no reachable violation" name)
    [
      ("stenning-stab", Protocols.Stenning_stab.protocol ~domain:2 ~max_len:4);
      ("gbn-stab", Protocols.Gbn_stab.protocol ~domain:2 ~max_len:4 ~window:2);
    ]

let test_new_family_sweep_jobs_invariant () =
  let p () = Protocols.Gbn_stab.protocol ~domain:2 ~max_len:4 ~window:2 in
  let show jobs =
    Stdx.Json.to_string
      (Stdx.Report.to_json
         (Stab.sweep_report (Stab.sweep ~jobs (p ()) ~input:input4 ~within:256 ~seed:7 ())))
  in
  let r1 = show 1 in
  List.iter
    (fun j -> check Alcotest.string (Printf.sprintf "jobs %d identical" j) r1 (show j))
    [ 4; 7 ]

let test_written_variant_enumeration_rejected () =
  (* The validator rejects a seam whose receiver labels depend on the
     written count — indices must name the same corruption at every
     injection time. *)
  let p = stab_p () in
  let bad =
    {
      p with
      Protocol.perturb =
        Some
          {
            Protocol.sender_states =
              (fun ~input -> (Option.get p.Protocol.perturb).Protocol.sender_states ~input);
            receiver_states =
              (fun ~written ->
                [
                  {
                    Protocol.label = Printf.sprintf "R:w=%d" written;
                    proc = p.Protocol.make_receiver ();
                  };
                ]);
          };
    }
  in
  check Alcotest.bool "written-dependent labels rejected" true
    (match Protocol.validate_perturb bad ~input:input4 with
    | Error _ -> true
    | Ok () -> false)

let () =
  Alcotest.run "stab"
    [
      ( "perturb",
        [
          Alcotest.test_case "validates" `Quick test_perturb_validates;
          Alcotest.test_case "space sizes" `Quick test_corrupt_space_sizes;
          Alcotest.test_case "designated state first" `Quick test_designated_state_first;
        ] );
      ( "moves",
        [
          Alcotest.test_case "guards" `Quick test_corrupt_move_guards;
          Alcotest.test_case "never enabled" `Quick test_corrupt_never_enabled;
          Alcotest.test_case "runstate rejects" `Quick test_runstate_rejects_corrupt_transitions;
        ] );
      ( "explore",
        [ Alcotest.test_case "multi-root union" `Quick test_explore_multi_root ] );
      ( "sweep",
        [
          Alcotest.test_case "stabilises with pinned worst tts" `Quick test_sweep_stabilises;
          Alcotest.test_case "jobs invariant" `Quick test_sweep_jobs_invariant;
          Alcotest.test_case "needs a seam" `Quick test_sweep_needs_seam;
          Alcotest.test_case "report shape" `Quick test_sweep_report_shape;
          Alcotest.test_case "margins" `Quick test_margins;
        ] );
      ( "search",
        [
          Alcotest.test_case "closes abp-stab" `Quick test_search_closes_stabilising;
          Alcotest.test_case "finds and replays abp witness" `Quick test_search_finds_abp_witness;
        ] );
      ( "families",
        [
          Alcotest.test_case "seams validate with pinned spaces" `Quick
            test_family_seams_validate;
          Alcotest.test_case "index 0 is the clean boot" `Quick test_family_clean_boot_first;
          QCheck_alcotest.to_alcotest prop_receiver_enumeration_written_invariant;
          Alcotest.test_case "mid-run receiver corruption" `Quick
            test_midrun_receiver_corruption;
          Alcotest.test_case "witnesses relabel-replay" `Quick test_family_witnesses_relabel;
          Alcotest.test_case "stabilising variants close" `Quick
            test_stabilising_families_close;
          Alcotest.test_case "new family jobs invariant" `Quick
            test_new_family_sweep_jobs_invariant;
          Alcotest.test_case "written-dependent enumeration rejected" `Quick
            test_written_variant_enumeration_rejected;
        ] );
    ]

(* Deterministic-interleaving tests for the event-queue scheduler.

   The contract (see the determinism note in Kernel.Sched): a batch of
   N sessions produces results byte-identical to N sequential
   Runner.run calls, at every timeslice and every --jobs count,
   because sessions own their rng and Sim.apply is pure.  These tests
   pin that against a mixed battery of protocols, strategies, and
   seeds — the property the serve daemon and every ported engine
   (Proba, Bounds, Harness, Soak) rests on. *)

module Sched = Kernel.Sched
module Runner = Kernel.Runner
module Strategy = Kernel.Strategy
module Move = Kernel.Move
module Trace = Kernel.Trace

let check = Alcotest.check

(* One spec = one session, as plain data so we can build it twice
   (once for the sequential baseline, once for the batch). *)
type spec = {
  protocol : Kernel.Protocol.t;
  input : int array;
  strategy : unit -> Strategy.t;
  seed : int;
  max_steps : int;
  post_roll : int;
}

let battery () =
  let abp = Protocols.Abp.protocol ~domain:2 in
  let norep = Protocols.Norep.del ~m:3 in
  let counting = Protocols.Counting.resend Channel.Chan.Reorder_dup ~domain:2 in
  let specs = ref [] in
  let add protocol input strategy seed post_roll =
    specs :=
      { protocol; input; strategy; seed; max_steps = 3_000; post_roll } :: !specs
  in
  List.iter
    (fun seed ->
      add abp [| 0; 1; 1; 0 |] (fun () -> Strategy.fair_random ()) seed 0;
      add abp [| 1; 0 |] (fun () -> Strategy.round_robin) seed 2;
      add norep [| 0; 2 |] (fun () -> Strategy.fair_random ()) seed 0;
      add norep [| 1 |] (fun () -> Strategy.newest_first) seed 0;
      add counting [| 0; 1 |] (fun () -> Strategy.fair_random ()) seed 1;
      add counting [| 1; 1; 0 |]
        (fun () -> Strategy.drop_rate 0.2 (Strategy.fair_random ()))
        seed 0)
    [ 1; 2; 5; 11; 42 ];
  List.rev !specs

let session_of_spec s =
  Sched.session s.protocol ~input:s.input ~strategy:(s.strategy ())
    ~rng:(Stdx.Rng.create s.seed) ~max_steps:s.max_steps ~post_roll:s.post_roll ()

let sequential_of_spec s =
  Runner.run s.protocol ~input:s.input ~strategy:(s.strategy ())
    ~rng:(Stdx.Rng.create s.seed) ~max_steps:s.max_steps ~post_roll:s.post_roll ()

(* Everything observable about a result, compared field by field so a
   mismatch names the session and the field. *)
let check_result_eq label (a : Runner.result) (b : Runner.result) =
  check Alcotest.string (label ^ ": stop")
    (Format.asprintf "%a" Runner.pp_stop a.stop)
    (Format.asprintf "%a" Runner.pp_stop b.stop);
  check Alcotest.int (label ^ ": steps") a.steps b.steps;
  check Alcotest.int (label ^ ": trace length") (Trace.length a.trace)
    (Trace.length b.trace);
  check Alcotest.bool (label ^ ": moves") true
    (let ma = Trace.moves a.trace and mb = Trace.moves b.trace in
     Array.length ma = Array.length mb
     && Array.for_all2 Move.equal ma mb);
  check Alcotest.(option int)
    (label ^ ": completed_at")
    (Trace.completed_at a.trace)
    (Trace.completed_at b.trace);
  check Alcotest.(option int)
    (label ^ ": first_safety_violation")
    (Trace.first_safety_violation a.trace)
    (Trace.first_safety_violation b.trace)

let test_batch_matches_sequential () =
  let specs = battery () in
  let baseline = List.map sequential_of_spec specs in
  List.iter
    (fun jobs ->
      let batch = Core.Batch.run ~jobs (List.map session_of_spec specs) in
      check Alcotest.int
        (Printf.sprintf "jobs=%d: result count" jobs)
        (List.length baseline) (List.length batch);
      List.iteri
        (fun i (a, b) ->
          check_result_eq (Printf.sprintf "jobs=%d session=%d" jobs i) a b)
        (List.combine baseline batch))
    [ 1; 2; 4; 7 ]

let test_timeslice_invariant () =
  let specs = battery () in
  let baseline = List.map sequential_of_spec specs in
  List.iter
    (fun timeslice ->
      let batch = Sched.run ~timeslice (List.map session_of_spec specs) in
      List.iteri
        (fun i (a, b) ->
          check_result_eq
            (Printf.sprintf "timeslice=%d session=%d" timeslice i)
            a b)
        (List.combine baseline batch))
    [ 1; 3; Sched.default_timeslice ]

let test_stats_histogram () =
  let specs = battery () in
  let results, stats = Sched.run_stats (List.map session_of_spec specs) in
  check Alcotest.int "sessions" (List.length specs) stats.Sched.sessions;
  check Alcotest.int "peak_live" (List.length specs) stats.Sched.peak_live;
  check Alcotest.int "histogram sums to sessions" stats.Sched.sessions
    (stats.Sched.completed + stats.Sched.quiescent + stats.Sched.budget
   + stats.Sched.strategy_end);
  check Alcotest.int "steps = sum of per-session steps"
    (List.fold_left (fun acc (r : Sched.result) -> acc + r.steps) 0 results)
    stats.Sched.steps;
  check Alcotest.bool "ticks >= sessions" true
    (stats.Sched.ticks >= stats.Sched.sessions)

let test_stats_merge () =
  let specs = battery () in
  (* A session is consumed by the run that retires it, so each
     run_stats below gets a freshly built batch. *)
  let _, whole = Sched.run_stats (List.map session_of_spec specs) in
  let merged =
    Core.Batch.shard ~jobs:3 (List.map session_of_spec specs)
    |> List.map (fun shard -> snd (Sched.run_stats shard))
    |> List.fold_left Sched.stats_merge Sched.stats_zero
  in
  check Alcotest.int "sessions" whole.Sched.sessions merged.Sched.sessions;
  check Alcotest.int "steps" whole.Sched.steps merged.Sched.steps;
  check Alcotest.int "completed" whole.Sched.completed merged.Sched.completed;
  check Alcotest.bool "peak_live is max of shards" true
    (merged.Sched.peak_live <= whole.Sched.peak_live)

let test_run_seeds_max_seconds () =
  (* The per-run CPU budget threads through run_seeds.  An already
     expired deadline (negative budget — zero would race the clock's
     granularity against the strict > in the guard) stops every run
     before its first step. *)
  let p = Protocols.Abp.protocol ~domain:2 in
  let results =
    Runner.run_seeds p ~input:[| 0; 1 |]
      ~strategy:(Strategy.fair_random ())
      ~seeds:[ 1; 2; 3 ] ~max_steps:3_000 ~max_seconds:(-1.0) ()
  in
  check Alcotest.int "three runs" 3 (List.length results);
  List.iteri
    (fun i (r : Runner.result) ->
      check Alcotest.bool (Printf.sprintf "run %d stopped on budget" i) true
        (r.stop = Runner.Budget);
      check Alcotest.int (Printf.sprintf "run %d took no steps" i) 0 r.steps)
    results

let test_shard_partition () =
  List.iter
    (fun (jobs, n) ->
      let xs = List.init n Fun.id in
      let shards = Core.Batch.shard ~jobs xs in
      check Alcotest.(list int)
        (Printf.sprintf "jobs=%d n=%d: concat" jobs n)
        xs (List.concat shards);
      check Alcotest.bool
        (Printf.sprintf "jobs=%d n=%d: shard count" jobs n)
        true
        (List.length shards <= jobs);
      let lens = List.map List.length shards in
      check Alcotest.bool
        (Printf.sprintf "jobs=%d n=%d: balanced" jobs n)
        true
        (match (List.sort compare lens, List.rev (List.sort compare lens)) with
        | min :: _, max :: _ -> max - min <= 1
        | _ -> n = 0))
    [ (1, 10); (3, 10); (4, 4); (7, 3); (2, 0); (5, 1) ]

let () =
  Alcotest.run "sched"
    [
      ( "determinism",
        [
          Alcotest.test_case "batch = sequential at jobs 1/2/4/7" `Quick
            test_batch_matches_sequential;
          Alcotest.test_case "timeslice invariant" `Quick
            test_timeslice_invariant;
        ] );
      ( "stats",
        [
          Alcotest.test_case "histogram and counters" `Quick
            test_stats_histogram;
          Alcotest.test_case "stats_merge" `Quick test_stats_merge;
        ] );
      ( "budgets",
        [
          Alcotest.test_case "run_seeds threads max_seconds" `Quick
            test_run_seeds_max_seconds;
        ] );
      ( "sharding",
        [ Alcotest.test_case "shard partitions" `Quick test_shard_partition ] );
    ]

Every --json artifact the CLI writes must validate against the
report schema (lib/stdx/report.mli) — this is the report-schema gate
that `make verify` also runs.

An experiment report set:

  $ stp experiments --quick --only E1 --json exp.json > /dev/null
  $ stp validate exp.json
  exp.json: valid report artifact, 1 report(s), schema version 1

An attack search outcome (two allowable inputs: the space closes with
no witness, and the artifact still validates):

  $ stp attack -p norep -d 2 --json attack.json > /dev/null
  $ stp validate attack.json
  attack.json: valid report artifact, 1 report(s), schema version 1

The E14 artifact — the full m=4 all-pairs sweep through the symmetry
quotient, with ok=true load-bearing (any non-closed pair or witness
would flip it and fail validation).  Its bytes embed a wall-clock
measurement, so the pin is the schema + verdict gate, not a digest:

  $ stp experiments --quick --only E14 --json e14.json > /dev/null
  $ stp validate e14.json
  e14.json: valid report artifact, 1 report(s), schema version 1

A symmetry-quotiented sweep writes the same artifact shape as a plain
one, and the quotient is invisible to the report consumer:

  $ stp attack -p norep -d 2 --symm -x 0,1 -x 1,0 -x 0 -x 1 --json symm.json > /dev/null
  $ stp attack -p norep -d 2 -x 0,1 -x 1,0 -x 0 -x 1 --json nosymm.json > /dev/null
  $ cmp symm.json nosymm.json
  $ stp validate symm.json
  symm.json: valid report artifact, 1 report(s), schema version 1

The alpha table, plus the CSV renderer on stdout:

  $ stp alpha -m 3 --format csv --json alpha.json
  # report: alpha: the tight bound alpha(m)
  # table: alpha(m) = m! * sum_{k<=m} 1/k!  (Wang & Zuck 1989)
  m,alpha(m)
  0,1
  1,2
  2,5
  3,16
  $ stp validate alpha.json
  alpha.json: valid report artifact, 1 report(s), schema version 1

A soak battery (fault injection): bit-identical at every job count,
and its artifact passes the same gate:

  $ stp soak --seed 5 --random-plans 1 --jobs 1 --json soak1.json > /dev/null
  $ stp soak --seed 5 --random-plans 1 --jobs 3 --json soak3.json > /dev/null
  $ cmp soak1.json soak3.json
  $ stp validate soak1.json
  soak1.json: valid report artifact, 1 report(s), schema version 1

The E15 artifact — the self-stabilisation contrast.  Deterministic
(no wall-clock in its bytes) and gated on its verdict envelope: a
non-converging corrupted start of the stabilising protocol, a missing
stock-ABP witness, or a failed replay would all flip ok and fail here:

  $ stp experiments --quick --only E15 --json e15.json > /dev/null
  $ stp validate e15.json
  e15.json: valid report artifact, 1 report(s), schema version 1

The stab subcommand writes the same sweep as a standalone artifact,
bit-identical at every job count; with --search it appends the
corrupted-root witness search.  On the stabilising protocol ok holds;
on stock ABP the sweep records non-stabilising points and the gate
rejects the artifact:

  $ stp stab --jobs 1 --json stab1.json > /dev/null
  $ stp stab --jobs 3 --json stab3.json > /dev/null
  $ cmp stab1.json stab3.json
  $ stp validate stab1.json
  stab1.json: valid report artifact, 1 report(s), schema version 1
  $ stp stab -p abp -i 0,1 --search --json stab-abp.json > /dev/null
  stp: a corrupted start failed to stabilise (or reached a violation)
  [124]
  $ stp validate stab-abp.json
  stp: stab-abp.json: schema-valid, but report(s) carry ok=false: stab
  [124]

The same sweep runs over every family with a perturb seam.  The
stabilising variants converge (jobs-invariant like the canonical
subject); a stock aliasing family hit with --search yields a witness
and the gate rejects the artifact:

  $ stp stab -p stenning-stab --jobs 1 --json sstab1.json > /dev/null
  $ stp stab -p stenning-stab --jobs 3 --json sstab3.json > /dev/null
  $ cmp sstab1.json sstab3.json
  $ stp validate sstab1.json
  sstab1.json: valid report artifact, 1 report(s), schema version 1
  $ stp stab -p gbn-stab --search --json gstab.json > /dev/null
  $ stp validate gstab.json
  gstab.json: valid report artifact, 1 report(s), schema version 1
  $ stp stab -p go-back-n --search --json gbn.json > /dev/null
  stp: a corrupted start failed to stabilise (or reached a violation)
  [124]
  $ stp validate gbn.json
  stp: gbn.json: schema-valid, but report(s) carry ok=false: stab
  [124]

The E17 artifact — stabilisation scaling curves across the families
plus the per-family witness searches.  Deterministic bytes, with the
verdict envelope gating every curve point and every witness replay:

  $ stp experiments --quick --only E17 --json e17.json > /dev/null
  $ stp validate e17.json
  e17.json: valid report artifact, 1 report(s), schema version 1

The corrupted-start soak battery rides the same machinery (scripted
corrupt-state plans over the stabilising families, composed with
mid-run faults, stock ABP for contrast), bit-identical across job
counts:

  $ stp soak --stab --seed 5 --random-plans 1 --jobs 1 --json stab-soak1.json > /dev/null
  $ stp soak --stab --seed 5 --random-plans 1 --jobs 4 --json stab-soak4.json > /dev/null
  $ stp soak --stab --seed 5 --random-plans 1 --jobs 7 --json stab-soak7.json > /dev/null
  $ cmp stab-soak1.json stab-soak4.json
  $ cmp stab-soak1.json stab-soak7.json
  $ stp validate stab-soak1.json
  stab-soak1.json: valid report artifact, 1 report(s), schema version 1

A schema-valid artifact that records a failure fails validation: the
verdict envelope is load-bearing, so a truncated soak (wall budget 0)
exits non-zero end to end:

  $ stp soak --seed 5 --random-plans 1 --max-seconds 0 --json trunc.json > /dev/null
  stp: soak battery was truncated before completing
  [124]
  $ stp validate trunc.json
  stp: trunc.json: schema-valid, but report(s) carry ok=false: soak
  [124]

A failing verify run exits non-zero and its artifact is likewise
rejected (ABP is unsafe under reordering):

  $ stp verify -p abp -c dup -d 2 --seeds 1 --max-failures 0 --json unsafe.json > /dev/null
  stp: verification found failing runs
  [124]
  $ stp validate unsafe.json
  stp: unsafe.json: schema-valid, but report(s) carry ok=false: verify
  [124]

Corrupt artifacts are rejected:

  $ echo '{"schema_version": 99, "id": "x"}' > bad.json
  $ stp validate bad.json
  stp: bad.json: invalid artifact: unsupported schema_version 99 (expected 1)
  [124]

Every --json artifact the CLI writes must validate against the
report schema (lib/stdx/report.mli) — this is the report-schema gate
that `make verify` also runs.

An experiment report set:

  $ stp experiments --quick --only E1 --json exp.json > /dev/null
  $ stp validate exp.json
  exp.json: valid report artifact, 1 report(s), schema version 1

An attack search outcome (two allowable inputs: the space closes with
no witness, and the artifact still validates):

  $ stp attack -p norep -d 2 --json attack.json > /dev/null
  $ stp validate attack.json
  attack.json: valid report artifact, 1 report(s), schema version 1

The alpha table, plus the CSV renderer on stdout:

  $ stp alpha -m 3 --format csv --json alpha.json
  # report: alpha: the tight bound alpha(m)
  # table: alpha(m) = m! * sum_{k<=m} 1/k!  (Wang & Zuck 1989)
  m,alpha(m)
  0,1
  1,2
  2,5
  3,16
  $ stp validate alpha.json
  alpha.json: valid report artifact, 1 report(s), schema version 1

Corrupt artifacts are rejected:

  $ echo '{"schema_version": 99, "id": "x"}' > bad.json
  $ stp validate bad.json
  stp: bad.json: invalid artifact: unsupported schema_version 99 (expected 1)
  [124]

Every --json artifact the CLI writes must validate against the
report schema (lib/stdx/report.mli) — this is the report-schema gate
that `make verify` also runs.

An experiment report set:

  $ stp experiments --quick --only E1 --json exp.json > /dev/null
  $ stp validate exp.json
  exp.json: valid report artifact, 1 report(s), schema version 1

An attack search outcome (two allowable inputs: the space closes with
no witness, and the artifact still validates):

  $ stp attack -p norep -d 2 --json attack.json > /dev/null
  $ stp validate attack.json
  attack.json: valid report artifact, 1 report(s), schema version 1

The alpha table, plus the CSV renderer on stdout:

  $ stp alpha -m 3 --format csv --json alpha.json
  # report: alpha: the tight bound alpha(m)
  # table: alpha(m) = m! * sum_{k<=m} 1/k!  (Wang & Zuck 1989)
  m,alpha(m)
  0,1
  1,2
  2,5
  3,16
  $ stp validate alpha.json
  alpha.json: valid report artifact, 1 report(s), schema version 1

A soak battery (fault injection): bit-identical at every job count,
and its artifact passes the same gate:

  $ stp soak --seed 5 --random-plans 1 --jobs 1 --json soak1.json > /dev/null
  $ stp soak --seed 5 --random-plans 1 --jobs 3 --json soak3.json > /dev/null
  $ cmp soak1.json soak3.json
  $ stp validate soak1.json
  soak1.json: valid report artifact, 1 report(s), schema version 1

A schema-valid artifact that records a failure fails validation: the
verdict envelope is load-bearing, so a truncated soak (wall budget 0)
exits non-zero end to end:

  $ stp soak --seed 5 --random-plans 1 --max-seconds 0 --json trunc.json > /dev/null
  stp: soak battery was truncated before completing
  [124]
  $ stp validate trunc.json
  stp: trunc.json: schema-valid, but report(s) carry ok=false: soak
  [124]

A failing verify run exits non-zero and its artifact is likewise
rejected (ABP is unsafe under reordering):

  $ stp verify -p abp -c dup -d 2 --seeds 1 --max-failures 0 --json unsafe.json > /dev/null
  stp: verification found failing runs
  [124]
  $ stp validate unsafe.json
  stp: unsafe.json: schema-valid, but report(s) carry ok=false: verify
  [124]

Corrupt artifacts are rejected:

  $ echo '{"schema_version": 99, "id": "x"}' > bad.json
  $ stp validate bad.json
  stp: bad.json: invalid artifact: unsupported schema_version 99 (expected 1)
  [124]

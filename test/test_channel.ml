(* Tests for the channel semantics of §2.2 / Property 1. *)

module Chan = Channel.Chan
module Multiset = Stdx.Multiset

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let deliver_exn t m =
  match Chan.deliver t m with Some t' -> t' | None -> Alcotest.failf "deliver %d failed" m

let drop_exn t m =
  match Chan.drop t m with Some t' -> t' | None -> Alcotest.failf "drop %d failed" m

(* ------------------------- kind predicates ------------------------- *)

let test_kind_predicates () =
  check Alcotest.bool "perfect no reorder" false (Chan.reorders Chan.Perfect);
  check Alcotest.bool "fifo no reorder" false (Chan.reorders Chan.Fifo_lossy);
  check Alcotest.bool "dup reorders" true (Chan.reorders Chan.Reorder_dup);
  check Alcotest.bool "del reorders" true (Chan.reorders Chan.Reorder_del);
  check Alcotest.bool "dup never deletes" false (Chan.deletes Chan.Reorder_dup);
  check Alcotest.bool "del deletes" true (Chan.deletes Chan.Reorder_del);
  check Alcotest.bool "fifo deletes" true (Chan.deletes Chan.Fifo_lossy);
  check Alcotest.bool "only dup duplicates" true
    (Chan.duplicates Chan.Reorder_dup
    && (not (Chan.duplicates Chan.Perfect))
    && (not (Chan.duplicates Chan.Fifo_lossy))
    && not (Chan.duplicates Chan.Reorder_del))

(* ------------------------- perfect / fifo ------------------------- *)

let test_perfect_fifo_order () =
  let t = Chan.send (Chan.send (Chan.create Chan.Perfect) 1) 2 in
  check (Alcotest.list Alcotest.int) "head only" [ 1 ] (Chan.deliverable t);
  let t = deliver_exn t 1 in
  check (Alcotest.list Alcotest.int) "then second" [ 2 ] (Chan.deliverable t);
  let t = deliver_exn t 2 in
  check (Alcotest.list Alcotest.int) "empty" [] (Chan.deliverable t)

let test_perfect_cannot_skip () =
  let t = Chan.send (Chan.send (Chan.create Chan.Perfect) 1) 2 in
  check Alcotest.bool "cannot deliver out of order" true (Chan.deliver t 2 = None)

let test_perfect_cannot_drop () =
  let t = Chan.send (Chan.create Chan.Perfect) 1 in
  check (Alcotest.list Alcotest.int) "no droppable" [] (Chan.droppable t);
  check Alcotest.bool "drop refused" true (Chan.drop t 1 = None)

let test_fifo_lossy_drop_head () =
  let t = Chan.send (Chan.send (Chan.create Chan.Fifo_lossy) 1) 2 in
  check (Alcotest.list Alcotest.int) "droppable = head" [ 1 ] (Chan.droppable t);
  let t = drop_exn t 1 in
  check (Alcotest.list Alcotest.int) "second surfaces" [ 2 ] (Chan.deliverable t);
  check Alcotest.int "dropped counter" 1 (Chan.dropped_total t)

(* ------------------------- reorder+dup ------------------------- *)

let test_dup_delivery_keeps_message () =
  let t = Chan.send (Chan.create Chan.Reorder_dup) 3 in
  let t = deliver_exn t 3 in
  check Alcotest.bool "still deliverable" true (Chan.can_deliver t 3);
  let t = deliver_exn t 3 in
  let t = deliver_exn t 3 in
  check Alcotest.int "delivered thrice" 3 (Chan.delivered_total t);
  check Alcotest.int "sent once" 1 (Chan.sent_total t)

let test_dup_set_semantics () =
  let t = Chan.send (Chan.send (Chan.create Chan.Reorder_dup) 5) 5 in
  check (Alcotest.list Alcotest.int) "set, not multiset" [ 5 ] (Chan.deliverable t);
  check Alcotest.int "dlvrble 0/1" 1 (Multiset.count (Chan.dlvrble t) 5)

let test_dup_any_order () =
  let t = Chan.send (Chan.send (Chan.create Chan.Reorder_dup) 1) 2 in
  (* Reordering: the later message can be delivered first. *)
  let t = deliver_exn t 2 in
  check Alcotest.bool "1 still there" true (Chan.can_deliver t 1)

let test_dup_never_drops () =
  let t = Chan.send (Chan.create Chan.Reorder_dup) 1 in
  check (Alcotest.list Alcotest.int) "no droppable" [] (Chan.droppable t)

let test_dup_debt () =
  let t = Chan.send (Chan.send (Chan.create Chan.Reorder_dup) 1) 1 in
  check Alcotest.int "owes two" 2 (Chan.debt t);
  let t = deliver_exn t 1 in
  check Alcotest.int "owes one" 1 (Chan.debt t);
  let t = deliver_exn t 1 in
  let t = deliver_exn t 1 in
  check Alcotest.int "overpaid is settled" 0 (Chan.debt t)

(* ------------------------- reorder+del ------------------------- *)

let test_del_delivery_consumes () =
  let t = Chan.send (Chan.create Chan.Reorder_del) 4 in
  let t = deliver_exn t 4 in
  check Alcotest.bool "gone" false (Chan.can_deliver t 4);
  check Alcotest.bool "second delivery refused" true (Chan.deliver t 4 = None)

let test_del_multiset_semantics () =
  let t = Chan.send (Chan.send (Chan.create Chan.Reorder_del) 4) 4 in
  check Alcotest.int "two copies" 2 (Multiset.count (Chan.dlvrble t) 4);
  let t = deliver_exn t 4 in
  check Alcotest.int "one copy left" 1 (Multiset.count (Chan.dlvrble t) 4)

let test_del_drop_any () =
  let t = Chan.send (Chan.send (Chan.create Chan.Reorder_del) 1) 2 in
  check (Alcotest.list Alcotest.int) "both droppable" [ 1; 2 ] (Chan.droppable t);
  let t = drop_exn t 2 in
  check Alcotest.bool "2 gone" false (Chan.can_deliver t 2);
  check Alcotest.bool "1 alive" true (Chan.can_deliver t 1)

let test_del_debt_is_in_flight () =
  let t = Chan.send (Chan.send (Chan.create Chan.Reorder_del) 1) 2 in
  check Alcotest.int "two in flight" 2 (Chan.debt t);
  let t = drop_exn t 1 in
  check Alcotest.int "drop clears debt too" 1 (Chan.debt t)

(* ------------------------- bounded reorder ------------------------- *)

let test_lag0_is_fifo () =
  let t = Chan.send (Chan.send (Chan.create (Chan.Bounded_reorder { lag = 0 })) 1) 2 in
  check (Alcotest.list Alcotest.int) "head only" [ 1 ] (Chan.deliverable t);
  check Alcotest.bool "cannot overtake" true (Chan.deliver t 2 = None)

let test_lag1_allows_one_overtake () =
  let t = Chan.send (Chan.send (Chan.create (Chan.Bounded_reorder { lag = 1 })) 1) 2 in
  check (Alcotest.list Alcotest.int) "both reachable" [ 1; 2 ] (Chan.deliverable t);
  let t = deliver_exn t 2 in
  (* 1 has now been overtaken once; a further newcomer cannot pass it. *)
  let t = Chan.send t 3 in
  check (Alcotest.list Alcotest.int) "blocker" [ 1 ] (Chan.deliverable t);
  let t = deliver_exn t 1 in
  check (Alcotest.list Alcotest.int) "unblocked" [ 3 ] (Chan.deliverable t)

let test_lag_charges_all_older () =
  (* Delivering the third copy overtakes both older ones at once. *)
  let t = Chan.create (Chan.Bounded_reorder { lag = 1 }) in
  let t = Chan.send (Chan.send (Chan.send t 1) 2) 3 in
  let t = deliver_exn t 3 in
  let t = Chan.send t 4 in
  (* 1 is at its overtake limit, so it blocks everything younger —
     including 2, whose own delivery would overtake 1 a second time. *)
  check (Alcotest.list Alcotest.int) "oldest blocks" [ 1 ] (Chan.deliverable t);
  let t = deliver_exn t 1 in
  check (Alcotest.list Alcotest.int) "2 next (4 still behind it)" [ 2 ] (Chan.deliverable t);
  let t = deliver_exn t 2 in
  check (Alcotest.list Alcotest.int) "then 4" [ 4 ] (Chan.deliverable t)

let test_lag_drop_any_no_charge () =
  let t = Chan.send (Chan.send (Chan.create (Chan.Bounded_reorder { lag = 0 })) 1) 2 in
  check (Alcotest.list Alcotest.int) "any droppable" [ 1; 2 ] (Chan.droppable t);
  let t = drop_exn t 1 in
  (* Dropping the head is not an overtake: 2 arrives fresh. *)
  check (Alcotest.list Alcotest.int) "head now 2" [ 2 ] (Chan.deliverable t);
  let t = deliver_exn t 2 in
  check Alcotest.int "conserved" 2
    (Chan.delivered_total t + Chan.dropped_total t)

let test_lag_kind_predicates () =
  check Alcotest.bool "lag 0 no reorder" false (Chan.reorders (Chan.Bounded_reorder { lag = 0 }));
  check Alcotest.bool "lag 2 reorders" true (Chan.reorders (Chan.Bounded_reorder { lag = 2 }));
  check Alcotest.bool "deletes" true (Chan.deletes (Chan.Bounded_reorder { lag = 2 }));
  check Alcotest.bool "no dup" false (Chan.duplicates (Chan.Bounded_reorder { lag = 2 }))

(* ------------------------- counters & encode ------------------------- *)

let test_counters () =
  let t = Chan.create Chan.Reorder_del in
  let t = Chan.send t 0 in
  let t = Chan.send t 0 in
  let t = Chan.send t 1 in
  let t = deliver_exn t 0 in
  let t = drop_exn t 1 in
  check Alcotest.int "sent 0" 2 (Chan.sent_count t 0);
  check Alcotest.int "sent 1" 1 (Chan.sent_count t 1);
  check Alcotest.int "delivered 0" 1 (Chan.delivered_count t 0);
  check Alcotest.int "dropped 1" 1 (Chan.dropped_count t 1);
  check Alcotest.int "sent total" 3 (Chan.sent_total t)

let test_encode_transition_relevant_only () =
  (* Same contents reached by different histories encode equally: the
     dup channel after send;deliver;send looks like send (the set is
     what matters), and counters are excluded. *)
  let a = deliver_exn (Chan.send (Chan.create Chan.Reorder_dup) 1) 1 in
  let b = Chan.send (Chan.create Chan.Reorder_dup) 1 in
  check Alcotest.string "dup encode ignores counters" (Chan.encode b) (Chan.encode a)

let test_encode_distinguishes_contents () =
  let a = Chan.send (Chan.create Chan.Reorder_del) 1 in
  let b = Chan.send (Chan.send (Chan.create Chan.Reorder_del) 1) 1 in
  check Alcotest.bool "del counts matter" true (Chan.encode a <> Chan.encode b);
  let c = Chan.send (Chan.send (Chan.create Chan.Perfect) 1) 2 in
  let d = Chan.send (Chan.send (Chan.create Chan.Perfect) 2) 1 in
  check Alcotest.bool "fifo order matters" true (Chan.encode c <> Chan.encode d)

let test_run_key_refines_encode () =
  (* send-then-drop returns a del channel to an empty body — the
     fingerprint coincides with a fresh channel's — but the cumulative
     counters differ, so the run key (the Runstate memo key) must
     distinguish them. *)
  let fresh = Chan.create Chan.Reorder_del in
  let spent = drop_exn (Chan.send fresh 1) 1 in
  let key emit c =
    let b = Stdx.Codec.create () in
    emit b c;
    Stdx.Codec.contents b
  in
  check Alcotest.string "fingerprints coincide" (Chan.encode fresh) (Chan.encode spent);
  check Alcotest.string "emit matches encode framing" (key Chan.emit fresh) (key Chan.emit spent);
  check Alcotest.bool "run keys differ" true
    (key Chan.emit_run_key fresh <> key Chan.emit_run_key spent)

let prop_del_conservation =
  QCheck.Test.make ~name:"del channel: delivered+dropped+in-flight = sent"
    QCheck.(list (pair (int_range 0 3) bool))
    (fun script ->
      (* Interpret the script: send the symbol; on [true] try to
         deliver the oldest deliverable, on [false] try to drop. *)
      let t =
        List.fold_left
          (fun t (m, act) ->
            let t = Chan.send t m in
            if act then
              match Chan.deliverable t with [] -> t | x :: _ -> deliver_exn t x
            else match Chan.droppable t with [] -> t | x :: _ -> drop_exn t x)
          (Chan.create Chan.Reorder_del) script
      in
      Chan.sent_total t = Chan.delivered_total t + Chan.dropped_total t + Chan.debt t)

let prop_lag_conservation =
  QCheck.Test.make ~name:"lag channel: delivered+dropped+in-flight = sent"
    QCheck.(triple (int_range 0 3) (list (pair (int_range 0 3) bool)) bool)
    (fun (lag, script, drop_mode) ->
      let t =
        List.fold_left
          (fun t (m, act) ->
            let t = Chan.send t m in
            if act then
              match Chan.deliverable t with [] -> t | x :: _ -> deliver_exn t x
            else if drop_mode then
              match Chan.droppable t with [] -> t | x :: _ -> drop_exn t x
            else t)
          (Chan.create (Chan.Bounded_reorder { lag }))
          script
      in
      Chan.sent_total t = Chan.delivered_total t + Chan.dropped_total t + Chan.debt t)

let prop_lag_zero_delivers_in_order =
  QCheck.Test.make ~name:"lag 0: deliveries come out in send order"
    QCheck.(list (int_range 0 5))
    (fun sends ->
      let t = List.fold_left Chan.send (Chan.create (Chan.Bounded_reorder { lag = 0 })) sends in
      let rec drain t acc =
        match Chan.deliverable t with
        | [] -> List.rev acc
        | m :: _ -> drain (deliver_exn t m) (m :: acc)
      in
      drain t [] = sends)

let prop_dup_deliverable_monotone =
  QCheck.Test.make ~name:"dup channel: deliverable set only grows"
    QCheck.(list (int_range 0 4))
    (fun sends ->
      let _, ok =
        List.fold_left
          (fun (t, ok) m ->
            let t' = Chan.send t m in
            let old_set = Chan.deliverable t in
            (t', ok && List.for_all (fun x -> Chan.can_deliver t' x) old_set))
          (Chan.create Chan.Reorder_dup, true)
          sends
      in
      ok)

(* ------------------------- kind names ------------------------- *)

(* [of_string] is the single channel-kind parser (CLI, bench,
   examples); it must invert [to_string] on every kind. *)
let kind_gen =
  QCheck.Gen.(
    oneof
      [
        oneofl [ Chan.Perfect; Chan.Fifo_lossy; Chan.Reorder_dup; Chan.Reorder_del ];
        map (fun lag -> Chan.Bounded_reorder { lag }) (int_bound 50);
      ])

let kind_arbitrary = QCheck.make ~print:Chan.kind_name kind_gen

let prop_kind_string_round_trip =
  QCheck.Test.make ~name:"of_string (to_string k) = Some k" ~count:200 kind_arbitrary (fun k ->
      Chan.of_string (Chan.to_string k) = Some k)

let test_kind_string_aliases () =
  let parses s k = check Alcotest.bool s true (Chan.of_string s = Some k) in
  parses "fifo" Chan.Fifo_lossy;
  parses "lossy" Chan.Fifo_lossy;
  parses "reorder+dup" Chan.Reorder_dup;
  parses "reorder-dup" Chan.Reorder_dup;
  parses "reorder+del" Chan.Reorder_del;
  parses "reorder-del" Chan.Reorder_del;
  parses "lag=3" (Chan.Bounded_reorder { lag = 3 });
  parses "lag:0" (Chan.Bounded_reorder { lag = 0 });
  check Alcotest.bool "negative lag rejected" true (Chan.of_string "lag:-1" = None);
  check Alcotest.bool "junk rejected" true (Chan.of_string "carrier-pigeon" = None);
  check Alcotest.bool "empty rejected" true (Chan.of_string "" = None)

let () =
  Alcotest.run "channel"
    [
      ( "kinds",
        [
          Alcotest.test_case "predicates" `Quick test_kind_predicates;
          Alcotest.test_case "name aliases" `Quick test_kind_string_aliases;
          qtest prop_kind_string_round_trip;
        ] );
      ( "perfect/fifo",
        [
          Alcotest.test_case "fifo order" `Quick test_perfect_fifo_order;
          Alcotest.test_case "cannot skip" `Quick test_perfect_cannot_skip;
          Alcotest.test_case "cannot drop" `Quick test_perfect_cannot_drop;
          Alcotest.test_case "lossy drops head" `Quick test_fifo_lossy_drop_head;
        ] );
      ( "reorder+dup",
        [
          Alcotest.test_case "delivery keeps message" `Quick test_dup_delivery_keeps_message;
          Alcotest.test_case "set semantics" `Quick test_dup_set_semantics;
          Alcotest.test_case "any order" `Quick test_dup_any_order;
          Alcotest.test_case "never drops" `Quick test_dup_never_drops;
          Alcotest.test_case "debt (Property 1c)" `Quick test_dup_debt;
          qtest prop_dup_deliverable_monotone;
        ] );
      ( "reorder+del",
        [
          Alcotest.test_case "delivery consumes" `Quick test_del_delivery_consumes;
          Alcotest.test_case "multiset semantics" `Quick test_del_multiset_semantics;
          Alcotest.test_case "drop any copy" `Quick test_del_drop_any;
          Alcotest.test_case "debt = in flight" `Quick test_del_debt_is_in_flight;
          qtest prop_del_conservation;
        ] );
      ( "bounded-reorder-props",
        [ qtest prop_lag_conservation; qtest prop_lag_zero_delivers_in_order ] );
      ( "bounded-reorder",
        [
          Alcotest.test_case "lag 0 = fifo" `Quick test_lag0_is_fifo;
          Alcotest.test_case "lag 1 one overtake" `Quick test_lag1_allows_one_overtake;
          Alcotest.test_case "charges all older" `Quick test_lag_charges_all_older;
          Alcotest.test_case "drop charges nothing" `Quick test_lag_drop_any_no_charge;
          Alcotest.test_case "kind predicates" `Quick test_lag_kind_predicates;
        ] );
      ( "bookkeeping",
        [
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "encode ignores counters" `Quick test_encode_transition_relevant_only;
          Alcotest.test_case "encode sees contents" `Quick test_encode_distinguishes_contents;
          Alcotest.test_case "run key refines encode" `Quick test_run_key_refines_encode;
        ] );
    ]
